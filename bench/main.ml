(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section on the synthetic Table 1 workloads, and
   runs Bechamel micro-benchmarks of the pipeline stages.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig8    # one experiment
     dune exec bench/main.exe -- --quick # A-inputs only, shorter micro runs
     dune exec bench/main.exe -- --jobs 4 fig8   # 4 domains
     dune exec bench/main.exe -- --quick micro --json bench.json
                                         # machine-readable estimates
     dune exec bench/main.exe -- --trace bench-trace.json fig8
                                         # vp-obs-trace/1 span/counter log
     dune exec bench/main.exe -- --backend compiled --quick micro
                                         # functional backend for all runs

   Experiments: table1 table2 fig8 table3 fig9 fig10
   baseline-aggregate aggregate ablation-bbb ablation-growth
   ablation-sink ablation-superblock session micro overhead.

   The workload x configuration matrix is executed up front by
   Vacuum.Engine on a domain pool (--jobs N, default = the machine's
   domain count); tables are then rendered from the engine's caches,
   so stdout is byte-identical for every --jobs value.  The per-task
   timing summary goes to stderr. *)

module Registry = Vp_workloads.Registry
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator
module Tabular = Vp_util.Tabular
module Stats = Vp_util.Stats
module Phase_log = Vp_phase.Phase_log
module Categorize = Vp_phase.Categorize
module Engine = Vacuum.Engine

(* The four configurations of Figures 8 and 10, in the paper's bar
   order: inference x linking. *)
let configurations =
  [
    (false, false, "no inf, no link");
    (false, true, "no inf, link");
    (true, false, "inf, no link");
    (true, true, "inf, link");
  ]

(* ------------------------------------------------------------------ *)
(* Pipeline artefacts — one profile per workload, one rewrite per
   workload x configuration, shared by all experiments — live in the
   engine's caches, populated in parallel before the tables render. *)

let engine = ref (Engine.create ~jobs:1 ())

(* Which functional emulator produces every retire stream this process
   runs (--backend); all backends are bit-identical, so tables do not
   change with the selection — only wall-clock does. *)
let backend = ref Emulator.Decoded

let spec_of w =
  {
    Engine.name = Registry.name w;
    load = (fun () -> Program.layout (w.Registry.program ()));
  }

let config_of ~inference ~linking =
  Vacuum.Config.with_backend !backend
    (Vacuum.Config.experiment ~inference ~linking)

let cell_of ~inference ~linking =
  {
    Engine.key = Printf.sprintf "%b%b" inference linking;
    config = config_of ~inference ~linking;
  }

let image_of w = Engine.image !engine (spec_of w)

(* A truncated profiling run would silently undercount coverage and
   speedup; fail loudly instead (the driver has already logged it). *)
let fail_truncated name =
  Printf.eprintf
    "bench: profile of %s exhausted its fuel before halting; results would \
     reflect a partial run (raise Config.fuel)\n"
    name;
  exit 2

let profile_of w =
  let p = Engine.profile !engine (spec_of w) in
  if p.Vacuum.Driver.truncated then fail_truncated (Registry.name w);
  p

let rewrite_of w ~inference ~linking =
  Engine.rewrite !engine (spec_of w) (cell_of ~inference ~linking)

let coverage_of w ~inference ~linking =
  Engine.coverage !engine (spec_of w) (cell_of ~inference ~linking)

(* ------------------------------------------------------------------ *)

let heading title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let table1 workloads =
  heading "Table 1: benchmarks and inputs";
  let t =
    Tabular.create
      ~header:
        [
          ("Benchmark", Tabular.Left);
          ("Input", Tabular.Left);
          ("# of Inst", Tabular.Right);
          ("Cond branches", Tabular.Right);
          ("Static size", Tabular.Right);
        ]
  in
  List.iter
    (fun w ->
      let p = profile_of w in
      let o = p.Vacuum.Driver.outcome in
      Tabular.add_row t
        [
          w.Registry.bench;
          w.Registry.input;
          Printf.sprintf "%.1fM" (float_of_int o.Emulator.instructions /. 1e6);
          Printf.sprintf "%.2fM" (float_of_int o.Emulator.cond_branches /. 1e6);
          string_of_int (Vp_prog.Image.size p.Vacuum.Driver.image);
        ])
    workloads;
  Tabular.print t

let table2 () =
  heading "Table 2: simulated EPIC machine model";
  Format.printf "%a@." Vp_cpu.Config.pp Vp_cpu.Config.default;
  let d = Vp_hsd.Config.default in
  let t = Tabular.create ~header:[ ("HSD parameter", Tabular.Left); ("Value", Tabular.Right) ] in
  Tabular.add_row t [ "BBB associativity"; Printf.sprintf "%d-way" d.Vp_hsd.Config.assoc ];
  Tabular.add_row t [ "Num BBB sets"; string_of_int d.Vp_hsd.Config.sets ];
  Tabular.add_row t [ "Candidate branch threshold"; string_of_int d.Vp_hsd.Config.candidate_threshold ];
  Tabular.add_row t [ "Refresh timer interval"; Printf.sprintf "%d br" d.Vp_hsd.Config.refresh_interval ];
  Tabular.add_row t [ "Clear timer interval"; Printf.sprintf "%d br" d.Vp_hsd.Config.clear_interval ];
  Tabular.add_row t [ "Hot spot detection cntr size"; Printf.sprintf "%d bits" d.Vp_hsd.Config.hdc_bits ];
  Tabular.add_row t [ "Hot spot detection cntr inc"; string_of_int d.Vp_hsd.Config.hdc_inc ];
  Tabular.add_row t [ "Hot spot detection cntr dec"; string_of_int d.Vp_hsd.Config.hdc_dec ];
  Tabular.add_row t [ "Exec and taken counter size"; Printf.sprintf "%d bits" d.Vp_hsd.Config.counter_bits ];
  Tabular.print t

let fig8 workloads =
  heading "Figure 8: percent of dynamic instructions from within packages";
  let t =
    Tabular.create
      ~header:
        (("Benchmark", Tabular.Left)
        :: List.map (fun (_, _, name) -> (name, Tabular.Right)) configurations
        @ [ ("equivalent", Tabular.Right) ])
  in
  let sums = Array.make (List.length configurations) 0.0 in
  List.iter
    (fun w ->
      let cells, all_equiv =
        List.fold_left
          (fun (cells, equiv) (inference, linking, _) ->
            let c = coverage_of w ~inference ~linking in
            (cells @ [ c ], equiv && c.Vacuum.Coverage.equivalent))
          ([], true) configurations
      in
      List.iteri
        (fun i c -> sums.(i) <- sums.(i) +. c.Vacuum.Coverage.coverage_pct)
        cells;
      Tabular.add_row t
        (Registry.name w
        :: List.map (fun c -> Tabular.cell_pct c.Vacuum.Coverage.coverage_pct) cells
        @ [ (if all_equiv then "yes" else "NO") ]))
    workloads;
  Tabular.add_separator t;
  let n = float_of_int (List.length workloads) in
  Tabular.add_row t
    ("average" :: Array.to_list (Array.map (fun s -> Tabular.cell_pct (s /. n)) sums));
  Tabular.print t

let table3 workloads =
  heading "Table 3: code expansion (full configuration)";
  let t =
    Tabular.create
      ~header:
        [
          ("Benchmark", Tabular.Left);
          ("% Incr in size", Tabular.Right);
          ("% Static inst selected", Tabular.Right);
          ("Replication", Tabular.Right);
        ]
  in
  let incrs = ref [] in
  let selects = ref [] in
  List.iter
    (fun w ->
      let r = rewrite_of w ~inference:true ~linking:true in
      let e = Vacuum.Expansion.measure r in
      incrs := e.Vacuum.Expansion.increase_pct :: !incrs;
      selects := e.Vacuum.Expansion.selected_pct :: !selects;
      Tabular.add_row t
        [
          Registry.name w;
          Tabular.cell_pct e.Vacuum.Expansion.increase_pct;
          Tabular.cell_pct e.Vacuum.Expansion.selected_pct;
          Tabular.cell_float ~decimals:2 e.Vacuum.Expansion.replication;
        ])
    workloads;
  Tabular.add_separator t;
  Tabular.add_row t
    [
      "average";
      Tabular.cell_pct (Stats.mean !incrs);
      Tabular.cell_pct (Stats.mean !selects);
    ];
  Tabular.print t

let fig9 workloads =
  heading "Figure 9: categorisation of hot spot branch behaviour (% of dynamic branches)";
  let t =
    Tabular.create
      ~header:
        (("Benchmark", Tabular.Left)
        :: List.map
             (fun c -> (Categorize.category_name c, Tabular.Right))
             Categorize.all_categories)
  in
  List.iter
    (fun w ->
      let p = profile_of w in
      let ws =
        Categorize.weighted p.Vacuum.Driver.log ~dynamic:p.Vacuum.Driver.aggregate
      in
      Tabular.add_row t
        (Registry.name w :: List.map (fun (_, pct) -> Tabular.cell_pct pct) ws))
    workloads;
  Tabular.print t

let fig10 workloads =
  heading "Figure 10: speedup from package relayout and rescheduling";
  let t =
    Tabular.create
      ~header:
        (("Benchmark", Tabular.Left)
        :: List.map (fun (_, _, name) -> (name, Tabular.Right)) configurations)
  in
  let per_config = Array.make (List.length configurations) [] in
  List.iter
    (fun w ->
      let config = config_of ~inference:true ~linking:true in
      let baseline =
        Engine.baseline !engine (spec_of w) ~cpu:(Vacuum.Config.cpu config)
      in
      let cells =
        List.mapi
          (fun i (inference, linking, _) ->
            let optimized =
              Engine.optimized !engine (spec_of w) (cell_of ~inference ~linking)
            in
            let s = Vp_cpu.Pipeline.speedup ~baseline ~optimized in
            per_config.(i) <- s :: per_config.(i);
            s)
          configurations
      in
      Tabular.add_row t
        (Registry.name w :: List.map (Tabular.cell_float ~decimals:3) cells))
    workloads;
  Tabular.add_separator t;
  Tabular.add_row t
    ("average"
    :: Array.to_list
         (Array.map (fun l -> Tabular.cell_float ~decimals:3 (Stats.mean l)) per_config));
  Tabular.print t

(* ------------------------------------------------------------------ *)
(* Ablations for the design choices called out in DESIGN.md. *)

(* Inference only matters when the BBB actually loses branches.  The
   full-size table (2048 entries) never conflicts on these workloads,
   so this ablation re-runs the coverage experiment under a
   16-entry BBB where contention is real. *)
let ablation_bbb workloads =
  heading
    "Ablation: inference under BBB contention (16-entry BBB, coverage %)";
  let small_bbb =
    { Vp_hsd.Config.default with Vp_hsd.Config.sets = 4; candidate_threshold = 16 }
  in
  let t =
    Tabular.create
      ~header:
        [
          ("Benchmark", Tabular.Left);
          ("no inference", Tabular.Right);
          ("with inference", Tabular.Right);
          ("delta", Tabular.Right);
        ]
  in
  let deltas = ref [] in
  List.iter
    (fun w ->
      let base_config =
        Vacuum.Config.with_detector small_bbb Vacuum.Config.default
      in
      let profile = Vacuum.Driver.profile ~config:base_config (image_of w) in
      if profile.Vacuum.Driver.truncated then
        fail_truncated (Registry.name w ^ " [small-bbb]");
      let coverage inference =
        let config =
          Vacuum.Config.with_detector small_bbb
            (config_of ~inference ~linking:true)
        in
        (Vacuum.Coverage.measure ~config
           (Vacuum.Driver.rewrite_of_profile ~config profile))
          .Vacuum.Coverage.coverage_pct
      in
      let off = coverage false in
      let on_ = coverage true in
      deltas := (on_ -. off) :: !deltas;
      Tabular.add_row t
        [
          Registry.name w;
          Tabular.cell_pct off;
          Tabular.cell_pct on_;
          Printf.sprintf "%+.1f" (on_ -. off);
        ])
    workloads;
  Tabular.add_separator t;
  Tabular.add_row t
    [ "average delta"; ""; ""; Printf.sprintf "%+.1f" (Stats.mean !deltas) ];
  Tabular.print t

(* Contribution of the heuristic-growth machinery: entry predecessor
   growth (MAX_BLOCKS) and opportunistic connector adoption. *)
let ablation_growth workloads =
  heading "Ablation: heuristic growth (coverage %, full configuration)";
  let variants =
    [
      ("no growth", 0, 0);
      ("connectors only", 0, 6);
      ("entries only (MAX_BLOCKS=1)", 1, 0);
      ("paper (MAX_BLOCKS=1 + connectors)", 1, 6);
    ]
  in
  let t =
    Tabular.create
      ~header:
        (("Benchmark", Tabular.Left)
        :: List.map (fun (n, _, _) -> (n, Tabular.Right)) variants)
  in
  let sums = Array.make (List.length variants) 0.0 in
  List.iter
    (fun w ->
      let profile = profile_of w in
      let cells =
        List.mapi
          (fun i (_, max_blocks, max_connector) ->
            let base = config_of ~inference:true ~linking:true in
            let config =
              Vacuum.Config.map_identify
                (fun identify ->
                  { identify with Vp_region.Identify.max_blocks; max_connector })
                base
            in
            let c =
              Vacuum.Coverage.measure ~config
                (Vacuum.Driver.rewrite_of_profile ~config profile)
            in
            sums.(i) <- sums.(i) +. c.Vacuum.Coverage.coverage_pct;
            c.Vacuum.Coverage.coverage_pct)
          variants
      in
      Tabular.add_row t (Registry.name w :: List.map Tabular.cell_pct cells))
    workloads;
  Tabular.add_separator t;
  let n = float_of_int (List.length workloads) in
  Tabular.add_row t
    ("average" :: Array.to_list (Array.map (fun s -> Tabular.cell_pct (s /. n)) sums));
  Tabular.print t

(* The baseline the paper argues against: one package set formed from
   the whole-run aggregate profile, with no phase sensitivity. *)
let baseline_aggregate workloads =
  heading
    "Baseline: aggregate-profile packing vs phase packing (full configuration)";
  let t =
    Tabular.create
      ~header:
        [
          ("Benchmark", Tabular.Left);
          ("agg coverage", Tabular.Right);
          ("phase coverage", Tabular.Right);
          ("agg speedup", Tabular.Right);
          ("phase speedup", Tabular.Right);
        ]
  in
  let agg_speeds = ref [] in
  let phase_speeds = ref [] in
  List.iter
    (fun w ->
      let profile = profile_of w in
      let config = config_of ~inference:true ~linking:true in
      let agg = Vacuum.Aggregate.rewrite ~config profile in
      let agg_cov = Vacuum.Coverage.measure ~config agg in
      let phase_cov = coverage_of w ~inference:true ~linking:true in
      let baseline =
        Engine.baseline !engine (spec_of w) ~cpu:(Vacuum.Config.cpu config)
      in
      let time r =
        Vp_cpu.Pipeline.speedup ~baseline
          ~optimized:
            (Vp_cpu.Pipeline.simulate ~config:(Vacuum.Config.cpu config)
               (Vacuum.Driver.rewritten_image r))
      in
      let agg_speed = time agg in
      let phase_speed =
        Vp_cpu.Pipeline.speedup ~baseline
          ~optimized:
            (Engine.optimized !engine (spec_of w)
               (cell_of ~inference:true ~linking:true))
      in
      agg_speeds := agg_speed :: !agg_speeds;
      phase_speeds := phase_speed :: !phase_speeds;
      Tabular.add_row t
        [
          Registry.name w;
          Tabular.cell_pct agg_cov.Vacuum.Coverage.coverage_pct;
          Tabular.cell_pct phase_cov.Vacuum.Coverage.coverage_pct;
          Tabular.cell_float ~decimals:3 agg_speed;
          Tabular.cell_float ~decimals:3 phase_speed;
        ])
    workloads;
  Tabular.add_separator t;
  Tabular.add_row t
    [
      "average";
      "";
      "";
      Tabular.cell_float ~decimals:3 (Stats.mean !agg_speeds);
      Tabular.cell_float ~decimals:3 (Stats.mean !phase_speeds);
    ];
  Tabular.print t

(* Fleet-scale profile aggregation: each workload's profiling run seen
   through per-machine noise on N emulated user machines, aggregated
   into one consensus profile per binary.  The table is deterministic
   (exact sums, order-fixed digests); the snapshots/sec throughput is
   timing, so it goes to stderr and the --json export. *)

(* (workload, snapshots ingested, snapshots/sec) rows from the last
   [aggregate] run, kept for the --json export. *)
let aggregate_results : (string * int * float) list ref = ref []

let fleet_aggregate workloads ~quick ~jobs =
  heading "Fleet aggregation: consensus profile per binary (emulated fleet)";
  let runs = if quick then 64 else 256 in
  let t =
    Tabular.create
      ~header:
        [
          ("Benchmark", Tabular.Left);
          ("runs", Tabular.Right);
          ("snapshots", Tabular.Right);
          ("classified", Tabular.Right);
          ("dropped", Tabular.Right);
          ("classes", Tabular.Right);
          ("digest", Tabular.Right);
        ]
  in
  aggregate_results := [];
  List.iter
    (fun w ->
      let base = profile_of w in
      let wire = Vacuum.Fleet.emulate_runs ~runs base in
      let t0 = Unix.gettimeofday () in
      let fleet = Vacuum.Fleet.aggregate ~jobs ~base wire in
      let dt = Unix.gettimeofday () -. t0 in
      let stats = fleet.Vacuum.Fleet.stats in
      let snaps = stats.Vp_aggregate.Shard.snapshots in
      let per_sec = float_of_int snaps /. Float.max dt 1e-9 in
      aggregate_results :=
        (Registry.name w, snaps, per_sec) :: !aggregate_results;
      Tabular.add_row t
        [
          Registry.name w;
          string_of_int stats.Vp_aggregate.Shard.runs;
          string_of_int snaps;
          string_of_int stats.Vp_aggregate.Shard.classified;
          string_of_int stats.Vp_aggregate.Shard.dropped;
          string_of_int (List.length fleet.Vacuum.Fleet.classes);
          Printf.sprintf "%016x" fleet.Vacuum.Fleet.digest;
        ];
      Printf.eprintf "aggregate %s: %.0f snapshots/sec (%.3f s, %d jobs)\n"
        (Registry.name w) per_sec dt jobs)
    workloads;
  aggregate_results := List.rev !aggregate_results;
  Tabular.print t

(* Superblock formation: chain merging + speculative hoisting — this
   repository's extension of the paper's "basic rescheduling",
   exercising the region-level scheduling scope Section 2 motivates. *)
let ablation_superblock workloads =
  heading "Ablation: superblock formation (beyond the paper's study)";
  let t =
    Tabular.create
      ~header:
        [
          ("Benchmark", Tabular.Left);
          ("paper opt", Tabular.Right);
          ("+superblocks", Tabular.Right);
        ]
  in
  let base_speeds = ref [] in
  let sb_speeds = ref [] in
  List.iter
    (fun w ->
      let profile = profile_of w in
      let paper_cfg = config_of ~inference:true ~linking:true in
      let sb_cfg = Vacuum.Config.with_opt Vp_opt.Opt.default paper_cfg in
      let baseline =
        Engine.baseline !engine (spec_of w) ~cpu:(Vacuum.Config.cpu paper_cfg)
      in
      let time config =
        let r = Vacuum.Driver.rewrite_of_profile ~config profile in
        Vp_cpu.Pipeline.speedup ~baseline
          ~optimized:
            (Vp_cpu.Pipeline.simulate ~config:(Vacuum.Config.cpu config)
               (Vacuum.Driver.rewritten_image r))
      in
      let a = time paper_cfg in
      let b = time sb_cfg in
      base_speeds := a :: !base_speeds;
      sb_speeds := b :: !sb_speeds;
      Tabular.add_row t
        [
          Registry.name w;
          Tabular.cell_float ~decimals:3 a;
          Tabular.cell_float ~decimals:3 b;
        ])
    workloads;
  Tabular.add_separator t;
  Tabular.add_row t
    [
      "average";
      Tabular.cell_float ~decimals:3 (Stats.mean !base_speeds);
      Tabular.cell_float ~decimals:3 (Stats.mean !sb_speeds);
    ];
  Tabular.print t

(* Exit-block sinking (Section 5.4's suggested redundancy elimination,
   not applied in the paper's own study). *)
let ablation_sink workloads =
  heading "Ablation: exit-block sinking (full configuration)";
  let t =
    Tabular.create
      ~header:
        [
          ("Benchmark", Tabular.Left);
          ("sunk", Tabular.Right);
          ("deleted", Tabular.Right);
          ("speedup w/o sink", Tabular.Right);
          ("speedup w/ sink", Tabular.Right);
        ]
  in
  List.iter
    (fun w ->
      let profile = profile_of w in
      let base = config_of ~inference:true ~linking:true in
      let sink_cfg =
        Vacuum.Config.with_opt Vp_opt.Opt.with_sinking base
      in
      (* Count what the pass does on the linked packages. *)
      let r_plain = rewrite_of w ~inference:true ~linking:true in
      let sunk = ref 0 in
      let deleted = ref 0 in
      List.iter
        (fun p ->
          let _, stats = Vp_opt.Sink.run p in
          sunk := !sunk + stats.Vp_opt.Sink.sunk;
          deleted := !deleted + stats.Vp_opt.Sink.deleted)
        r_plain.Vacuum.Driver.packages;
      let r_sink = Vacuum.Driver.rewrite_of_profile ~config:sink_cfg profile in
      let baseline =
        Engine.baseline !engine (spec_of w) ~cpu:(Vacuum.Config.cpu base)
      in
      let time r =
        Vp_cpu.Pipeline.speedup ~baseline
          ~optimized:
            (Vp_cpu.Pipeline.simulate ~config:(Vacuum.Config.cpu base)
               (Vacuum.Driver.rewritten_image r))
      in
      Tabular.add_row t
        [
          Registry.name w;
          string_of_int !sunk;
          string_of_int !deleted;
          Tabular.cell_float ~decimals:3 (time r_plain);
          Tabular.cell_float ~decimals:3 (time r_sink);
        ])
    workloads;
  Tabular.print t

(* ------------------------------------------------------------------ *)
(* Online re-optimization: Vacuum.Session epochs against the one-shot
   post-link rewrite.  The session column is live coverage — the share
   of instructions actually retired from package space while the
   workload ran under the patch-profile-repackage loop — so it also
   pays for the epochs spent profiling before the first activation. *)

let session_exp workloads =
  heading "Session: online re-optimization loop vs single-shot rewrite";
  let cell = cell_of ~inference:true ~linking:true in
  (* The engine memoizes per (workload, cell); warm the session cache
     in parallel, then render serially from the memo. *)
  ignore
    (Vp_util.Pool.map ~jobs:(Engine.jobs !engine)
       (fun w -> ignore (Engine.session !engine (spec_of w) cell))
       workloads);
  let t =
    Tabular.create
      ~header:
        [
          ("Benchmark", Tabular.Left);
          ("single-shot", Tabular.Right);
          ("session", Tabular.Right);
          ("epochs", Tabular.Right);
          ("activations", Tabular.Right);
          ("cache", Tabular.Right);
          ("equivalent", Tabular.Right);
        ]
  in
  let single_sum = ref 0.0 and session_sum = ref 0.0 in
  List.iter
    (fun w ->
      let c = coverage_of w ~inference:true ~linking:true in
      let r = Engine.session !engine (spec_of w) cell in
      single_sum := !single_sum +. c.Vacuum.Coverage.coverage_pct;
      session_sum := !session_sum +. r.Vacuum.Session.coverage_pct;
      Tabular.add_row t
        [
          Registry.name w;
          Tabular.cell_pct c.Vacuum.Coverage.coverage_pct;
          Tabular.cell_pct r.Vacuum.Session.coverage_pct;
          string_of_int (List.length r.Vacuum.Session.epochs);
          string_of_int r.Vacuum.Session.activations;
          string_of_int r.Vacuum.Session.final_cache_entries;
          (match r.Vacuum.Session.equivalent with
          | Some true -> "yes"
          | Some false -> "NO"
          | None -> "-");
        ])
    workloads;
  Tabular.add_separator t;
  let n = float_of_int (List.length workloads) in
  Tabular.add_row t
    [
      "average";
      Tabular.cell_pct (!single_sum /. n);
      Tabular.cell_pct (!session_sum /. n);
      ""; ""; ""; "";
    ];
  Tabular.print t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the pipeline stages. *)

(* (stage name, ns/run, r^2) rows from the last [micro] run, kept for
   the --json export. *)
let micro_results : (string * float * float option) list ref = ref []

(* Ditto for the last [overhead] run. *)
let overhead_results : (string * float * float option) list ref = ref []

(* Run a Bechamel test tree and return its OLS estimates as sorted
   (name, ns/run, r^2) rows.  Hashtbl.iter order depends on internal
   hashing; sorting by stage name keeps the table (and the JSON
   export) stable run to run. *)
let bechamel_rows ~quick tests =
  let open Bechamel in
  let open Toolkit in
  let quota = if quick then Time.second 0.25 else Time.second 1.0 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~stabilize:false ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols_result acc ->
      let nanos =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      let r2 = Analyze.OLS.r_square ols_result in
      (name, nanos, r2) :: acc)
    results []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let print_bechamel_rows rows =
  let t =
    Tabular.create
      ~header:
        [ ("stage", Tabular.Left); ("time/run", Tabular.Right); ("r^2", Tabular.Right) ]
  in
  List.iter
    (fun (name, nanos, r2) ->
      let pretty =
        if nanos > 1e9 then Printf.sprintf "%.2f s" (nanos /. 1e9)
        else if nanos > 1e6 then Printf.sprintf "%.2f ms" (nanos /. 1e6)
        else if nanos > 1e3 then Printf.sprintf "%.2f us" (nanos /. 1e3)
        else Printf.sprintf "%.0f ns" nanos
      in
      let r2 =
        match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-"
      in
      Tabular.add_row t [ name; pretty; r2 ])
    rows;
  Tabular.print t

let micro ~quick =
  heading "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let sample = Option.get (Registry.find ~bench:"134.perl" ~input:"B") in
  let img = image_of sample in
  let profile = profile_of sample in
  let snapshot =
    (List.hd (Phase_log.phases profile.Vacuum.Driver.log)).Phase_log.representative
  in
  let region = Vp_region.Identify.identify img snapshot in
  let pkgs = Vp_package.Build.build region ~prefix:"bench$p0" in
  let detector_stream =
    Staged.stage (fun () ->
        let d = Vp_hsd.Detector.create ~config:Vp_hsd.Config.default () in
        for i = 0 to 9_999 do
          Vp_hsd.Detector.on_branch d ~pc:(100 + (i mod 24)) ~taken:(i land 3 <> 0)
        done)
  in
  let identify =
    Staged.stage (fun () -> ignore (Vp_region.Identify.identify img snapshot))
  in
  let build =
    Staged.stage (fun () ->
        ignore (Vp_package.Build.build region ~prefix:"bench$p1"))
  in
  let emit =
    Staged.stage (fun () -> ignore (Vp_package.Emit.emit img pkgs))
  in
  let optimize =
    Staged.stage (fun () ->
        List.iter (fun p -> ignore (Vp_opt.Opt.transform p)) pkgs)
  in
  let snaps = profile.Vacuum.Driver.snapshots in
  let chaos_plan =
    Option.get (Vp_fault.Plan.find_preset "duplicate-reorder")
  in
  (* Guard: a clean plan must be physically inert — the injector
     returns its input list untouched, so this clocks at bare
     call-dispatch cost.  The active plan row shows the (bounded,
     per-snapshot) price actually paid under chaos testing. *)
  let inject_clean =
    Staged.stage (fun () ->
        ignore
          (Vp_fault.Inject.snapshots ~plan:Vp_fault.Plan.clean ~counter_max:511
             snaps))
  in
  let inject_active =
    Staged.stage (fun () ->
        ignore
          (Vp_fault.Inject.snapshots ~plan:chaos_plan ~counter_max:511 snaps))
  in
  let emulate_100k =
    Staged.stage (fun () ->
        ignore (Emulator.run_backend ~backend:!backend ~fuel:100_000 img))
  in
  let timing_100k =
    Staged.stage (fun () ->
        ignore (Vp_cpu.Pipeline.simulate ~backend:!backend ~fuel:100_000 img))
  in
  let tests =
    Test.make_grouped ~name:"vacuum"
      [
        Test.make ~name:"hsd detector (10k branches)" detector_stream;
        Test.make ~name:"region identify (134.perl phase)" identify;
        Test.make ~name:"package build" build;
        Test.make ~name:"package emit" emit;
        Test.make ~name:"layout+schedule" optimize;
        Test.make ~name:"fault inject (clean plan)" inject_clean;
        Test.make ~name:"fault inject (duplicate-reorder)" inject_active;
        Test.make ~name:"emulator (100k instrs)" emulate_100k;
        Test.make ~name:"timing model (100k instrs)" timing_100k;
      ]
  in
  let rows = bechamel_rows ~quick tests in
  micro_results := rows;
  print_bechamel_rows rows

(* The generative corpus: program generation, trace record/codec
   throughput, and the end-to-end campaign case rate — the budget that
   sizes CI's fuzz-smoke sweep (cases/second x wall budget = corpus
   size). *)
let gen_results : (string * float * float option) list ref = ref []

let gen_exp ~quick =
  heading "Generative corpus: generation, trace codec and campaign case rates";
  let open Bechamel in
  let params = Vp_gen.Gen.default in
  let image = Vp_prog.Program.layout (Vp_gen.Gen.program ~seed:1 params) in
  let trace, _ = Vp_gen.Trace.record ~backend:!backend image in
  let enc = Vp_gen.Trace.encode trace in
  let spec = Vp_gen.Campaign.spec_of_index ~root_seed:1 0 in
  let generate =
    Staged.stage (fun () -> ignore (Vp_gen.Gen.program ~seed:1 params))
  in
  let layout =
    Staged.stage (fun () ->
        ignore (Vp_prog.Program.layout (Vp_gen.Gen.program ~seed:1 params)))
  in
  let record =
    Staged.stage (fun () -> ignore (Vp_gen.Trace.record ~backend:!backend image))
  in
  let encode = Staged.stage (fun () -> ignore (Vp_gen.Trace.encode trace)) in
  let decode = Staged.stage (fun () -> ignore (Vp_gen.Trace.decode enc)) in
  let case =
    Staged.stage (fun () ->
        ignore
          (Vp_gen.Campaign.run_case
             ~config:
               (Vacuum.Config.with_backend !backend
                  Vp_gen.Campaign.default_config)
             ~index:0 spec))
  in
  let tests =
    Test.make_grouped ~name:"gen"
      [
        Test.make ~name:"generate (default params)" generate;
        Test.make ~name:"generate + layout" layout;
        Test.make ~name:(Printf.sprintf "trace record (%d events)" (Vp_gen.Trace.length trace)) record;
        Test.make ~name:"trace encode" encode;
        Test.make ~name:"trace decode + checksum" decode;
        Test.make ~name:"campaign case (full pipeline)" case;
      ]
  in
  let rows = bechamel_rows ~quick tests in
  gen_results := rows;
  print_bechamel_rows rows

(* The cost of the metrics plane itself: registry operations on a
   disabled vs enabled registry, and the emulator micro with a
   disabled registry observed once per run — the instrumentation shape
   of Driver.profile.  The disabled rows are the always-on price every
   hot loop pays (they must clock at bare call-dispatch cost; the
   alloc-flatness test in test_metrics pins the zero-allocation
   half of that claim). *)
let overhead ~quick =
  heading "Overhead: metrics plane enabled vs disabled";
  let open Bechamel in
  let sample = Option.get (Registry.find ~bench:"134.perl" ~input:"B") in
  let img = image_of sample in
  let off = Vp_metrics.disabled in
  let on_ = Vp_metrics.create () in
  let bump_1k m =
    Staged.stage (fun () ->
        for _ = 1 to 1_000 do
          Vp_metrics.Counter.bump m "bench.counter" 1
        done)
  in
  let observe_1k m =
    Staged.stage (fun () ->
        for i = 1 to 1_000 do
          Vp_metrics.Histogram.observe m "bench.hist" i
        done)
  in
  let emulate m =
    Staged.stage (fun () ->
        let o = Emulator.run_backend ~backend:!backend ~fuel:100_000 img in
        Vp_metrics.Histogram.observe m "bench.emulator.instructions"
          o.Emulator.instructions)
  in
  let tests =
    Test.make_grouped ~name:"overhead"
      [
        Test.make ~name:"counter bump x1k (disabled)" (bump_1k off);
        Test.make ~name:"counter bump x1k (enabled)" (bump_1k on_);
        Test.make ~name:"hist observe x1k (disabled)" (observe_1k off);
        Test.make ~name:"hist observe x1k (enabled)" (observe_1k on_);
        Test.make ~name:"emulator (100k instrs, disabled)" (emulate off);
        Test.make ~name:"emulator (100k instrs, enabled)" (emulate on_);
      ]
  in
  let rows = bechamel_rows ~quick tests in
  overhead_results := rows;
  print_bechamel_rows rows

(* ------------------------------------------------------------------ *)

(* What each experiment needs pre-computed by the engine: the matrix
   rewrites/coverages, and the timing simulations. *)
let needs = function
  | "fig8" | "table3" | "ablation-sink" | "session" -> (true, false)
  | "fig10" | "baseline-aggregate" | "ablation-superblock" -> (true, true)
  | _ -> (false, false)

(* Pull "--name VALUE" or "--name=VALUE" out of the argument list. *)
let parse_valued ~name args =
  let flag = "--" ^ name in
  let prefix = flag ^ "=" in
  let plen = String.length prefix in
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | [ arg ] when arg = flag ->
      Printf.eprintf "bench: %s expects a value\n" flag;
      exit 2
    | arg :: v :: rest when arg = flag -> (Some v, List.rev_append acc rest)
    | arg :: rest
      when String.length arg > plen && String.sub arg 0 plen = prefix ->
      (Some (String.sub arg plen (String.length arg - plen)),
       List.rev_append acc rest)
    | arg :: rest -> go (arg :: acc) rest
  in
  go [] args

let parse_jobs args =
  match parse_valued ~name:"jobs" args with
  | None, rest -> (None, rest)
  | Some n, rest -> (
    match int_of_string_opt n with
    | Some j -> (Some j, rest)
    | None ->
      Printf.eprintf "bench: --jobs expects an integer, got %S\n" n;
      exit 2)

(* ------------------------------------------------------------------ *)
(* --json FILE: machine-readable export of the micro estimates and the
   engine's per-task wall-clock timings (hand-rolled writer — the tree
   is tiny and the build carries no JSON library). *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let write_json ~path ~jobs ~engine_metrics ~counters ~timeline =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  let backend_name = Emulator.backend_name !backend in
  (* Every experiment record repeats the run metadata, so records stay
     self-describing when jq slices one array out of the file. *)
  let meta () = Printf.sprintf "\"backend\": \"%s\", \"jobs\": %d" (json_escape backend_name) jobs in
  out "{\n  \"schema\": \"vacuum-bench/2\",\n";
  out "  \"backend\": \"%s\",\n  \"jobs\": %d,\n" (json_escape backend_name) jobs;
  (match timeline with
  | None -> ()
  | Some (trace, tls) ->
    out "  \"timeline\": {\n    \"trace\": \"%s\",\n" (json_escape trace);
    out "    \"series\": [";
    let first = ref true in
    List.iter
      (fun tl ->
        List.iter
          (fun (name, samples, min_v, max_v, total) ->
            out "%s\n      {\"name\": \"%s\", \"samples\": %d, \"min\": %d, \
                 \"max\": %d, \"total\": %d}"
              (if !first then "" else ",")
              (json_escape name) samples min_v max_v total;
            first := false)
          (Vp_telemetry.Sink.summary tl))
      tls;
    out "\n    ],\n    \"events\": [";
    let first = ref true in
    List.iter
      (fun tl ->
        List.iter
          (fun (kind, count) ->
            out "%s\n      {\"kind\": \"%s\", \"count\": %d}"
              (if !first then "" else ",")
              (json_escape kind) count;
            first := false)
          (Vp_telemetry.Sink.event_counts tl))
      tls;
    out "\n    ]\n  },\n");
  out "  \"aggregate\": [";
  List.iteri
    (fun i (name, snapshots, per_sec) ->
      out
        "%s\n    {\"name\": \"%s\", %s, \"snapshots\": %d, \
         \"snapshots_per_sec\": %s}"
        (if i = 0 then "" else ",")
        (json_escape name) (meta ()) snapshots (json_float per_sec))
    !aggregate_results;
  out "\n  ],\n";
  let bechamel_array key rows =
    out "  \"%s\": [" key;
    List.iteri
      (fun i (name, nanos, r2) ->
        out
          "%s\n    {\"name\": \"%s\", %s, \"ns_per_run\": %s, \
           \"r_square\": %s}"
          (if i = 0 then "" else ",")
          (json_escape name) (meta ()) (json_float nanos)
          (match r2 with Some r -> json_float r | None -> "null"))
      rows;
    out "\n  ],\n"
  in
  bechamel_array "micro" !micro_results;
  bechamel_array "overhead" !overhead_results;
  bechamel_array "gen" !gen_results;
  out "  \"tasks\": [";
  List.iteri
    (fun i m ->
      out
        "%s\n    {\"kind\": \"%s\", \"label\": \"%s\", %s, \"wall_s\": %s, \
         \"instructions\": %d}"
        (if i = 0 then "" else ",")
        (json_escape m.Engine.kind) (json_escape m.Engine.label) (meta ())
        (json_float m.Engine.wall_s) m.Engine.instructions)
    engine_metrics;
  out "\n  ],\n";
  out "  \"counters\": [";
  List.iteri
    (fun i (name, value) ->
      out "%s\n    {\"name\": \"%s\", %s, \"value\": %d}"
        (if i = 0 then "" else ",")
        (json_escape name) (meta ()) value)
    counters;
  out "\n  ]\n}\n";
  close_out oc

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let args = List.tl (Array.to_list Sys.argv) in
  let jobs_opt, args = parse_jobs args in
  let backend_opt, args = parse_valued ~name:"backend" args in
  (match backend_opt with
  | None -> ()
  | Some s -> (
    match Emulator.backend_of_string s with
    | Some b -> backend := b
    | None ->
      Printf.eprintf
        "bench: --backend expects reference, decoded or compiled, got %S\n" s;
      exit 2));
  let json_path, args = parse_valued ~name:"json" args in
  let trace_path, args = parse_valued ~name:"trace" args in
  let timeline_path, args = parse_valued ~name:"timeline" args in
  let jobs = Option.value ~default:(Vp_util.Pool.default_jobs ()) jobs_opt in
  let quick = List.mem "--quick" args in
  let selected = List.filter (fun a -> a <> "--quick") args in
  let workloads =
    if quick then List.filter (fun w -> w.Registry.input = "A") Registry.all
    else Registry.all
  in
  let run = function
    | "table1" -> table1 workloads
    | "table2" -> table2 ()
    | "fig8" -> fig8 workloads
    | "table3" -> table3 workloads
    | "fig9" -> fig9 workloads
    | "fig10" -> fig10 workloads
    | "baseline-aggregate" -> baseline_aggregate workloads
    | "aggregate" -> fleet_aggregate workloads ~quick ~jobs
    | "ablation-bbb" -> ablation_bbb workloads
    | "ablation-growth" -> ablation_growth workloads
    | "ablation-sink" -> ablation_sink workloads
    | "ablation-superblock" -> ablation_superblock workloads
    | "session" -> session_exp workloads
    | "micro" -> micro ~quick
    | "overhead" -> overhead ~quick
    | "gen" -> gen_exp ~quick
    | other ->
      Printf.eprintf "unknown experiment %s\n" other;
      exit 1
  in
  let all =
    [
      "table1"; "table2"; "fig8"; "table3"; "fig9"; "fig10";
      "baseline-aggregate"; "aggregate"; "ablation-bbb"; "ablation-growth";
      "ablation-sink"; "ablation-superblock"; "session"; "micro"; "overhead";
      "gen";
    ]
  in
  let picks = match selected with [] -> all | picks -> picks in
  (* Reject unknown experiments before the engine does minutes of
     profiling work. *)
  List.iter
    (fun pick ->
      if not (List.mem pick all) then begin
        Printf.eprintf "unknown experiment %s\n" pick;
        exit 1
      end)
    picks;
  (* Populate the engine caches in parallel before any table renders;
     the DAG covers the union of what the picked experiments read. *)
  let obs =
    match trace_path with
    | Some _ -> Vp_obs.create ()
    | None -> Vp_obs.disabled
  in
  engine :=
    Engine.create ~jobs
      ~profile_config:
        (Vacuum.Config.with_backend !backend
           (Vacuum.Config.with_obs obs Vacuum.Config.default))
      ~obs ();
  let rewrites, timing =
    List.fold_left
      (fun (r, t) pick ->
        let r', t' = needs pick in
        (r || r', t || t'))
      (false, false) picks
  in
  Engine.run ~rewrites ~timing !engine
    ~specs:(List.map spec_of workloads)
    ~cells:
      (List.map
         (fun (inference, linking, _) -> cell_of ~inference ~linking)
         configurations)
    ();
  (match Engine.truncated_profiles !engine with
  | [] -> ()
  | name :: _ -> fail_truncated name);
  List.iter run picks;
  (match trace_path with
  | Some path -> Vp_obs.Sink.write_trace obs ~path
  | None -> ());
  (* --timeline FILE: one telemetry-enabled run of the reference
     workload (profile + rewritten run + timing model), written as a
     merged vp-timeline-trace/1 file with its per-series summaries
     folded into the --json export. *)
  let timeline_tls =
    match timeline_path with
    | None -> None
    | Some path ->
      let w = Option.get (Registry.find ~bench:"134.perl" ~input:"A") in
      let config =
        Vacuum.Config.with_telemetry
          (Vp_telemetry.on ())
          (config_of ~inference:true ~linking:true)
      in
      let profile = Vacuum.Driver.profile ~config (image_of w) in
      let r = Vacuum.Driver.rewrite_of_profile ~config profile in
      let cov = Vacuum.Coverage.measure ~config r in
      let tt = Vp_telemetry.create (Vacuum.Config.telemetry config) in
      ignore
        (Vp_cpu.Pipeline.simulate ~config:(Vacuum.Config.cpu config)
           ~telemetry:tt
           (Vacuum.Driver.rewritten_image r));
      let tls =
        [ profile.Vacuum.Driver.timeline; cov.Vacuum.Coverage.residency; tt ]
      in
      Vp_telemetry.Sink.write_trace ~path tls;
      Printf.eprintf "timeline: %s -> %s\n" (Registry.name w) path;
      Some (path, tls)
  in
  (match json_path with
  | Some path ->
    write_json ~path ~jobs
      ~engine_metrics:(Engine.metrics !engine)
      ~counters:(Vp_obs.Sink.counters obs)
      ~timeline:timeline_tls
  | None -> ());
  Format.eprintf "@.%a" Engine.pp_summary !engine
