(* The vpack binary is a shim: the whole command table lives in
   Vp_cli.Vpack so the test suite can exercise parsing and help
   generation in-process. *)

let () = Vp_cli.Vpack.main ()
