(* vpack: command-line front end for the Vacuum Packing pipeline.

   Subcommands: list, run, phases, extract, aggregate, report, diag,
   asm, disasm, machine.

   Exit codes: 0 success, 2 command-line error (unknown subcommand,
   unknown/ambiguous workload, bad flags), 3 pipeline error, 4
   verifier rejection, 5 chaos-matrix failure. *)

module Registry = Vp_workloads.Registry
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator

open Cmdliner

(* Accept the exact Table 1 bench name or any unambiguous suffix:
   "134.perl" and "perl" both name 134.perl. *)
let resolve_bench bench =
  if List.mem bench Registry.benches then Some bench
  else
    let matches name =
      match String.index_opt name '.' with
      | Some i -> String.sub name (i + 1) (String.length name - i - 1) = bench
      | None -> false
    in
    match List.filter matches Registry.benches with
    | [ name ] -> Some name
    | [] -> None
    | _ :: _ :: _ as multi ->
      (* A usage error, not a pipeline failure: raise on the typed
         channel with the [cli] stage so the top level can print usage
         and exit 2, matching cmdliner's own parse errors. *)
      Vacuum.Error.failf ~stage:"cli" "ambiguous workload %s (matches %s)"
        bench
        (String.concat ", " multi)

let find_workload spec =
  let bench, input =
    match String.index_opt spec '/' with
    | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> (spec, "A")
  in
  match
    Option.bind (resolve_bench bench) (fun bench -> Registry.find ~bench ~input)
  with
  | Some w -> w
  | None ->
    Vacuum.Error.failf ~stage:"cli" "unknown workload %s (try `vpack list`)"
      spec

let workload_arg =
  let doc = "Workload as BENCH or BENCH/INPUT (see `vpack list`)." in
  Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let no_inference =
  Arg.(value & flag & info [ "no-inference" ] ~doc:"Disable hot-block inference.")

let no_linking =
  Arg.(value & flag & info [ "no-linking" ] ~doc:"Disable package linking.")

let timing =
  Arg.(value & flag & info [ "timing" ] ~doc:"Run the cycle-level timing model.")

let jobs_arg =
  let doc =
    "Evaluate up to $(docv) workloads in parallel on separate domains \
     (default: the machine's recommended domain count)."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs n = if n <= 0 then Vp_util.Pool.default_jobs () else n

let config_of ~inference ~linking =
  Vacuum.Config.experiment ~inference ~linking

(* --backend: which functional emulator executes every run the command
   performs.  The backends are bit-identical (the differential suite
   asserts it), so the selection only changes wall-clock speed.  An
   unknown name raises on the [cli] stage: usage + exit 2, like any
   other flag error. *)
let backend_arg =
  let doc =
    "Functional emulator backend: $(b,reference), $(b,decoded) (default) \
     or $(b,compiled).  All backends produce bit-identical results; the \
     choice only affects simulation speed."
  in
  Arg.(value & opt string "decoded" & info [ "backend" ] ~docv:"BACKEND" ~doc)

let resolve_backend name =
  match Emulator.backend_of_string name with
  | Some b -> b
  | None ->
    Vacuum.Error.failf ~stage:"cli"
      "unknown backend %s (expected reference, decoded or compiled)" name

(* --- list --- *)

let list_cmd =
  let run () =
    let t =
      Vp_util.Tabular.create
        ~header:
          [
            ("workload", Vp_util.Tabular.Left);
            ("static instrs", Vp_util.Tabular.Right);
            ("description", Vp_util.Tabular.Left);
          ]
    in
    List.iter
      (fun w ->
        let p = w.Registry.program () in
        Vp_util.Tabular.add_row t
          [
            Registry.name w;
            string_of_int (Program.static_size p);
            w.Registry.description;
          ])
      Registry.all;
    Vp_util.Tabular.print t
  in
  Cmd.v (Cmd.info "list" ~doc:"List the Table 1 workload inventory.")
    Term.(const run $ const ())

(* --- run --- *)

let run_cmd =
  let run spec backend =
    let backend = resolve_backend backend in
    let w = find_workload spec in
    let img = Program.layout (w.Registry.program ()) in
    let o = Emulator.run_backend ~backend img in
    Printf.printf "%s: %d instructions, %d conditional branches, result %d%s\n"
      (Registry.name w) o.Emulator.instructions o.Emulator.cond_branches
      o.Emulator.result
      (if o.Emulator.halted then "" else " (fuel exhausted)")
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a workload on the functional emulator.")
    Term.(const run $ workload_arg $ backend_arg)

(* --- phases --- *)

let phases_cmd =
  let ipc_flag =
    Arg.(value & flag & info [ "ipc" ] ~doc:"Also report per-phase IPC on the EPIC model.")
  in
  let run spec ipc backend =
    let backend = resolve_backend backend in
    let w = find_workload spec in
    let img = Program.layout (w.Registry.program ()) in
    let profile =
      Vacuum.Driver.profile
        ~config:(Vacuum.Config.with_backend backend Vacuum.Config.default)
        img
    in
    Printf.printf "%s: %d raw detections, %d recordings\n" (Registry.name w)
      profile.Vacuum.Driver.detections
      (List.length profile.Vacuum.Driver.snapshots);
    Format.printf "%a@." Vp_phase.Phase_log.pp profile.Vacuum.Driver.log;
    let timeline = Vp_phase.Phase_log.timeline profile.Vacuum.Driver.log in
    List.iter
      (fun (s, e, p) -> Printf.printf "  [%9d, %9d) phase %d\n" s e p)
      timeline;
    if ipc then begin
      Printf.printf "\nper-phase timing (phase -1 = detector warm-up):\n";
      List.iter
        (fun (ps : Vp_cpu.Pipeline.phase_stats) ->
          Printf.printf
            "  phase %2d: %9d branches, %10d instrs, %10d cycles, IPC %.3f\n"
            ps.Vp_cpu.Pipeline.phase ps.Vp_cpu.Pipeline.branches
            ps.Vp_cpu.Pipeline.seg_instructions ps.Vp_cpu.Pipeline.seg_cycles
            ps.Vp_cpu.Pipeline.seg_ipc)
        (Vp_cpu.Pipeline.simulate_phases ~backend ~timeline img)
    end
  in
  Cmd.v
    (Cmd.info "phases" ~doc:"Profile a workload and show its detected phases.")
    Term.(const run $ workload_arg $ ipc_flag $ backend_arg)

(* --- extract --- *)

let extract_cmd =
  let run spec no_inf no_link backend =
    let backend = resolve_backend backend in
    let w = find_workload spec in
    let img = Program.layout (w.Registry.program ()) in
    let config =
      Vacuum.Config.with_backend backend
        (config_of ~inference:(not no_inf) ~linking:(not no_link))
    in
    let r = Vacuum.Driver.rewrite ~config img in
    List.iter
      (fun (info : Vacuum.Driver.region_info) ->
        Printf.printf "phase %d: %d functions, %d hot blocks, %d instructions selected\n"
          info.Vacuum.Driver.phase.Vp_phase.Phase_log.id
          info.Vacuum.Driver.stats.Vp_region.Identify.functions
          info.Vacuum.Driver.stats.Vp_region.Identify.hot_blocks
          info.Vacuum.Driver.stats.Vp_region.Identify.selected_instructions)
      r.Vacuum.Driver.regions;
    List.iter
      (fun p ->
        Printf.printf "package %s: root %s, %d blocks, %d entries, %d branch sites\n"
          p.Vp_package.Pkg.id p.Vp_package.Pkg.root
          (List.length p.Vp_package.Pkg.blocks)
          (List.length p.Vp_package.Pkg.entries)
          (Vp_package.Pkg.branch_count p))
      r.Vacuum.Driver.packages;
    Printf.printf "emitted %d package instructions, %d launch points\n"
      r.Vacuum.Driver.emitted.Vp_package.Emit.package_instructions
      (List.length r.Vacuum.Driver.emitted.Vp_package.Emit.launch_patches)
  in
  Cmd.v
    (Cmd.info "extract" ~doc:"Run region identification and package extraction.")
    Term.(const run $ workload_arg $ no_inference $ no_linking $ backend_arg)

(* --- aggregate --- *)

let aggregate_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload as BENCH or BENCH/INPUT.")
  in
  let runs_arg =
    let doc = "Emulate $(docv) user-machine runs (ignored with --ingest)." in
    Arg.(value & opt int 256 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc = "Partition the fleet over $(docv) aggregation shards." in
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S" ~doc:"Root seed of the per-machine noise.")
  in
  let wire_out_arg =
    let doc = "Also write the fleet's vp-profile-wire/1 stream to $(docv)." in
    Arg.(value & opt (some string) None & info [ "wire" ] ~docv:"FILE" ~doc)
  in
  let ingest_arg =
    let doc =
      "Ingest runs from this vp-profile-wire/1 file instead of emulating \
       them (repeatable)."
    in
    Arg.(value & opt_all file [] & info [ "ingest" ] ~docv:"FILE" ~doc)
  in
  let run spec runs shards seed jobs wire_out ingest backend =
    let backend = resolve_backend backend in
    let w = find_workload spec in
    let img = Program.layout (w.Registry.program ()) in
    let config = Vacuum.Config.with_backend backend Vacuum.Config.default in
    let base = Vacuum.Driver.profile ~config img in
    let wire_runs =
      if ingest <> [] then
        List.concat_map
          (fun path ->
            match Vp_aggregate.Wire.read_file ~path with
            | Ok rs -> rs
            | Error e -> Vacuum.Error.failf ~stage:"wire" "%s: %s" path e)
          ingest
      else Vacuum.Fleet.emulate_runs ~config ~seed ~runs base
    in
    (match wire_out with
    | None -> ()
    | Some path ->
      Vp_aggregate.Wire.write_file ~path wire_runs;
      Printf.eprintf "wire: %d runs -> %s\n" (List.length wire_runs) path);
    let t0 = Unix.gettimeofday () in
    let fleet =
      Vacuum.Fleet.aggregate ~config ~shards ~jobs:(resolve_jobs jobs) ~base
        wire_runs
    in
    let dt = Unix.gettimeofday () -. t0 in
    let stats = fleet.Vacuum.Fleet.stats in
    (* Everything on stdout is a pure function of the ingested fleet:
       CI asserts shard/job invariance by diffing stdout across
       --shards and --jobs values.  Sharding geometry and throughput
       go to stderr. *)
    Printf.printf "%s: %d runs, %d snapshots (%d classified, %d dropped)\n"
      (Registry.name w) stats.Vp_aggregate.Shard.runs
      stats.Vp_aggregate.Shard.snapshots stats.Vp_aggregate.Shard.classified
      stats.Vp_aggregate.Shard.dropped;
    List.iter
      (fun (id, (p : Vp_aggregate.Profile.t)) ->
        Printf.printf
          "  class %d: %d runs, %d snapshots, %d branches, est weight %d\n" id
          p.Vp_aggregate.Profile.runs p.Vp_aggregate.Profile.snapshots
          (Vp_aggregate.Profile.branch_count p)
          (Vp_aggregate.Profile.total_estimated p))
      fleet.Vacuum.Fleet.classes;
    Printf.printf "aggregate digest %016x\n" fleet.Vacuum.Fleet.digest;
    let r =
      Vacuum.Driver.rewrite_of_profile ~config
        (Vacuum.Fleet.profile_of_fleet ~config ~base fleet)
    in
    Printf.printf "consensus rewrite: %d packages, %d package instructions\n"
      (List.length r.Vacuum.Driver.packages)
      r.Vacuum.Driver.emitted.Vp_package.Emit.package_instructions;
    Printf.eprintf "aggregated over %d shards, %d jobs: %.0f snapshots/sec (%.3f s)\n"
      stats.Vp_aggregate.Shard.shards stats.Vp_aggregate.Shard.jobs
      (float_of_int stats.Vp_aggregate.Shard.snapshots /. Float.max dt 1e-9)
      dt
  in
  Cmd.v
    (Cmd.info "aggregate"
       ~doc:
         "Aggregate a fleet of per-machine profile streams (emulated, or \
          ingested from vp-profile-wire/1 files) into one consensus profile \
          and feed it through the packaging pipeline.  Stdout is \
          byte-identical for every --shards/--jobs value."
       ~man:
         [
           `S Cmdliner.Manpage.s_exit_status;
           `P "0 on success, 2 on a command-line error, 3 on a pipeline or \
               wire-format error.";
         ])
    Term.(
      const run $ spec_arg $ runs_arg $ shards_arg $ seed_arg $ jobs_arg
      $ wire_out_arg $ ingest_arg $ backend_arg)

(* --- report --- *)

let trace_arg =
  let doc =
    "Record pipeline spans and counters and write a JSON-lines trace \
     (schema vp-obs-trace/1, one object per line) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let report_cmd =
  let workloads_arg =
    let doc =
      "Workload as BENCH or BENCH/INPUT (repeatable; see `vpack list`)."
    in
    Arg.(
      non_empty & opt_all string [] & info [ "w"; "workload" ] ~docv:"NAME" ~doc)
  in
  let run specs no_inf no_link timing jobs trace backend =
    let backend = resolve_backend backend in
    let ws = List.map find_workload specs in
    let obs =
      match trace with Some _ -> Vp_obs.create () | None -> Vp_obs.disabled
    in
    let config =
      Vacuum.Config.with_backend backend
        (Vacuum.Config.with_obs obs
           (config_of ~inference:(not no_inf) ~linking:(not no_link)))
    in
    (* Each evaluation is an isolated profile/rewrite/simulate chain;
       run them on a domain pool and print in request order. *)
    let reports =
      Vp_util.Pool.map ~jobs:(resolve_jobs jobs)
        (fun w ->
          let img = Program.layout (w.Registry.program ()) in
          Vacuum.Report.evaluate ~config ~timing ~name:(Registry.name w) img)
        ws
    in
    List.iter (fun report -> Format.printf "%a@." Vacuum.Report.pp report) reports;
    match trace with
    | None -> ()
    | Some path ->
      Vp_obs.Sink.write_trace obs ~path;
      Printf.printf "trace: %d spans, %d counters -> %s\n"
        (List.length (Vp_obs.Sink.spans obs))
        (List.length (Vp_obs.Sink.counters obs))
        path
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Full evaluation of one or more workloads (coverage, expansion, \
          optional timing), in parallel under --jobs.")
    Term.(
      const run $ workloads_arg $ no_inference $ no_linking $ timing $ jobs_arg
      $ trace_arg $ backend_arg)

(* --- stats --- *)

let stats_cmd =
  let run spec no_inf no_link timing trace backend =
    let backend = resolve_backend backend in
    let w = find_workload spec in
    let obs = Vp_obs.create () in
    let config =
      Vacuum.Config.with_backend backend
        (Vacuum.Config.with_obs obs
           (config_of ~inference:(not no_inf) ~linking:(not no_link)))
    in
    let img = Program.layout (w.Registry.program ()) in
    let report =
      Vacuum.Report.evaluate ~config ~timing ~name:(Registry.name w) img
    in
    Format.printf "%a@." Vacuum.Report.pp report;
    Printf.printf "\npipeline spans (%s):\n" (Registry.name w);
    Vp_util.Tabular.print (Vp_obs.Sink.span_table obs);
    Printf.printf "\npipeline counters:\n";
    Vp_util.Tabular.print (Vp_obs.Sink.counter_table obs);
    (match Vp_obs.Sink.dropped_spans obs with
    | 0 -> ()
    | n -> Printf.printf "(%d spans dropped to ring wrap-around)\n" n);
    match trace with
    | None -> ()
    | Some path -> Vp_obs.Sink.write_trace obs ~path
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Evaluate one workload with the observability recorder enabled and \
          print per-stage span and counter tables.")
    Term.(
      const run $ workload_arg $ no_inference $ no_linking $ timing $ trace_arg
      $ backend_arg)

(* --- timeline --- *)

let timeline_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload as BENCH or BENCH/INPUT.")
  in
  let interval_arg =
    let doc = "Sampling interval in retired instructions." in
    Arg.(
      value
      & opt int Vp_telemetry.default_interval
      & info [ "interval" ] ~docv:"N" ~doc)
  in
  let width_arg =
    Arg.(value & opt int 72 & info [ "width" ] ~docv:"COLS" ~doc:"Render width.")
  in
  let tl_trace_arg =
    let doc =
      "Also write the merged vp-timeline-trace/1 JSON-lines trace \
       (profile + rewritten-run + timing timelines) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run spec interval width timing no_inf no_link trace backend =
    let backend = resolve_backend backend in
    let w = find_workload spec in
    let img = Program.layout (w.Registry.program ()) in
    let config =
      Vacuum.Config.with_backend backend
        (Vacuum.Config.with_telemetry
           (Vp_telemetry.on ~interval ())
           (config_of ~inference:(not no_inf) ~linking:(not no_link)))
    in
    let profile = Vacuum.Driver.profile ~config img in
    let tl = profile.Vacuum.Driver.timeline in
    let series name =
      Option.value ~default:[||] (Vp_telemetry.Series.find tl name)
    in
    Printf.printf "%s: %d instructions, %d intervals of %d\n" (Registry.name w)
      profile.Vacuum.Driver.outcome.Emulator.instructions
      (Vp_telemetry.intervals tl) interval;
    let bar name values =
      Printf.printf "%-14s|%s|\n" name (Vp_telemetry.Render.sparkline ~width values)
    in
    Printf.printf "\nprofiling run (detector state per interval):\n";
    bar "hdc" (series "profile.hdc");
    bar "bbb occupancy" (series "profile.bbb_occupancy");
    bar "branches" (series "profile.branches");
    List.iter
      (fun kind ->
        Printf.printf "%-14s%d events\n" kind
          (Vp_telemetry.Event.count tl ~kind))
      [ "detect"; "record"; "rearm" ];
    (* Phase extents: map the phase log's branch-index spans onto the
       interval axis through the cumulative branch series. *)
    let branches = series "profile.branches" in
    let cum = Array.make (Array.length branches) 0 in
    let acc = ref 0 in
    Array.iteri
      (fun i b ->
        acc := !acc + b;
        cum.(i) <- !acc)
      branches;
    let extents = Vp_phase.Phase_log.timeline profile.Vacuum.Driver.log in
    Printf.printf "\nphase extents:\n";
    List.iter
      (fun (id, row) -> Printf.printf "phase %-8d|%s|\n" id row)
      (Vp_telemetry.Render.extent_rows ~width ~cum extents);
    (* Rewrite, then attribute the rewritten run's retirement stream to
       original code vs. each emitted package. *)
    let r = Vacuum.Driver.rewrite_of_profile ~config profile in
    let cov = Vacuum.Coverage.measure ~config r in
    let res = cov.Vacuum.Coverage.residency in
    let total =
      Option.value ~default:[||]
        (Vp_telemetry.Series.find res "run.instructions")
    in
    Printf.printf
      "\nrewritten run residency (coverage %.1f%%, %d launches, %d side exits):\n"
      cov.Vacuum.Coverage.coverage_pct
      (Vp_telemetry.Event.count res ~kind:"launch")
      (Vp_telemetry.Event.count res ~kind:"side_exit");
    List.iter
      (fun name ->
        match Vp_telemetry.Series.find res name with
        | Some part when name <> "run.instructions" ->
          let label =
            String.sub name 4 (String.length name - 4 - 13)
            (* strip "run." and ".instructions" *)
          in
          let share =
            Vp_util.Stats.pct
              (Array.fold_left ( + ) 0 part)
              (Array.fold_left ( + ) 0 total)
          in
          Printf.printf "%-14s|%s| %5.1f%%\n"
            (if String.length label > 14 then String.sub label 0 14 else label)
            (Vp_telemetry.Render.lane ~width ~total part)
            share
        | _ -> ())
      (Vp_telemetry.Series.names res);
    let timelines = ref [ tl; res ] in
    if timing then begin
      let tt = Vp_telemetry.create (Vacuum.Config.telemetry config) in
      let stats =
        Vp_cpu.Pipeline.simulate ~config:(Vacuum.Config.cpu config)
          ~backend:(Vacuum.Config.backend config)
          ~fuel:(Vacuum.Config.fuel config)
          ~mem_words:(Vacuum.Config.mem_words config) ~telemetry:tt
          (Vacuum.Driver.rewritten_image r)
      in
      timelines := !timelines @ [ tt ];
      let tseries name =
        Option.value ~default:[||] (Vp_telemetry.Series.find tt name)
      in
      Printf.printf "\ntiming model on the rewritten binary (IPC %.3f):\n"
        stats.Vp_cpu.Pipeline.ipc;
      Printf.printf "%-14s|%s|\n" "cycles"
        (Vp_telemetry.Render.sparkline ~width (tseries "timing.cycles"));
      Printf.printf "%-14s|%s|\n" "icache miss"
        (Vp_telemetry.Render.sparkline ~width (tseries "timing.icache_misses"));
      Printf.printf "%-14s|%s|\n" "dcache miss"
        (Vp_telemetry.Render.sparkline ~width (tseries "timing.dcache_misses"));
      Printf.printf "%-14s|%s|\n" "mispredicts"
        (Vp_telemetry.Render.sparkline ~width (tseries "timing.mispredicts"));
      Printf.printf "%-14s|%s|\n" "fetch stalls"
        (Vp_telemetry.Render.sparkline ~width (tseries "timing.fetch_stalls"))
    end;
    match trace with
    | None -> ()
    | Some path ->
      Vp_telemetry.Sink.write_trace ~path !timelines;
      Printf.printf "\ntrace: %d timelines -> %s\n" (List.length !timelines) path
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Render a workload's interval timeline: detector state and phase \
          extents of the profiling run, package residency lanes of the \
          rewritten run, and (with --timing) timing-model series.")
    Term.(
      const run $ spec_arg $ interval_arg $ width_arg $ timing $ no_inference
      $ no_linking $ tl_trace_arg $ backend_arg)

(* --- trace-check --- *)

let trace_check_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Trace file to validate.")
  in
  (* Dispatch on the meta line: vpack emits both vp-obs-trace/1
     (pipeline spans/counters) and vp-timeline-trace/1 (run telemetry)
     JSON-lines files. *)
  let schema_of file =
    let ic = open_in file in
    let first = try input_line ic with End_of_file -> "" in
    close_in ic;
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    if contains first "vp-timeline-trace/1" then `Timeline
    else if contains first "vp-profile-wire/1" then `Wire
    else `Obs
  in
  let run file =
    match schema_of file with
    | `Timeline -> (
      match Vp_telemetry.Sink.validate_file ~path:file with
      | Ok n -> Printf.printf "%s: valid vp-timeline-trace/1, %d lines\n" file n
      | Error e ->
        Printf.eprintf "%s: invalid trace: %s\n" file e;
        exit 1)
    | `Wire -> (
      match Vp_aggregate.Wire.validate_file ~path:file with
      | Ok (runs, snapshots) ->
        Printf.printf "%s: valid vp-profile-wire/1, %d runs, %d snapshots\n"
          file runs snapshots
      | Error e ->
        Printf.eprintf "%s: invalid wire stream: %s\n" file e;
        exit 1)
    | `Obs -> (
      match Vp_obs.Sink.validate_file ~path:file with
      | Ok n -> Printf.printf "%s: valid vp-obs-trace/1, %d lines\n" file n
      | Error e ->
        Printf.eprintf "%s: invalid trace: %s\n" file e;
        exit 1)
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate a trace file against its schema (vp-obs-trace/1, \
          vp-timeline-trace/1 or vp-profile-wire/1, detected from the first \
          line).")
    Term.(const run $ file_arg)

(* --- asm / disasm --- *)

let asm_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembly source.")
  in
  let run file backend =
    let backend = resolve_backend backend in
    let ic = open_in file in
    let n = in_channel_length ic in
    let source = really_input_string ic n in
    close_in ic;
    match Vp_prog.Asm.parse_program source with
    | Error e ->
      Format.eprintf "%s: %a@." file Vp_prog.Asm.pp_error e;
      exit 1
    | Ok p ->
      let o = Emulator.run_backend ~backend (Program.layout p) in
      Printf.printf "%s: %d instructions, result %d%s\n" file o.Emulator.instructions
        o.Emulator.result
        (if o.Emulator.halted then "" else " (fuel exhausted)")
  in
  Cmd.v (Cmd.info "asm" ~doc:"Assemble and run a textual-assembly source file.")
    Term.(const run $ file_arg $ backend_arg)

let disasm_cmd =
  let run spec =
    let w = find_workload spec in
    print_string (Vp_prog.Asm.print_program (w.Registry.program ()))
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Print a workload's program as textual assembly.")
    Term.(const run $ workload_arg)

(* --- diag --- *)

let diag_cmd =
  let addr_arg =
    let doc = "Also disassemble around this address of the rewritten image." in
    Arg.(value & opt (some int) None & info [ "addr" ] ~docv:"ADDR" ~doc)
  in
  let run spec addr backend =
    let backend = resolve_backend backend in
    let w = find_workload spec in
    let img = Program.layout (w.Registry.program ()) in
    let config = Vacuum.Config.with_backend backend Vacuum.Config.default in
    let r = Vacuum.Driver.rewrite ~config img in
    let rimg = Vacuum.Driver.rewritten_image r in
    let module Image = Vp_prog.Image in
    let limit = img.Image.orig_limit in
    let exits = Hashtbl.create 64 in
    let entries = Hashtbl.create 64 in
    let bump tbl k =
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
    in
    let on_retire ~pc ~taken:_ ~next_pc ~mem_addr:_ =
      if next_pc >= 0 then begin
        let from_pkg = pc >= limit in
        let to_pkg = next_pc >= limit in
        if from_pkg && not to_pkg then bump exits (pc, next_pc);
        if (not from_pkg) && to_pkg then bump entries (pc, next_pc)
      end
    in
    let o = Emulator.run_backend ~backend ~on_retire rimg in
    Printf.printf "coverage %.1f%% (%d/%d instructions in packages)\n"
      (Vp_util.Stats.pct o.Emulator.package_instructions o.Emulator.instructions)
      o.Emulator.package_instructions o.Emulator.instructions;
    let top tbl name =
      let l = Hashtbl.fold (fun k v acc -> (v, k) :: acc) tbl [] in
      let l = List.sort (fun a b -> compare (fst b) (fst a)) l in
      Printf.printf "%s (%d distinct):\n" name (List.length l);
      List.iteri
        (fun i (count, (src, dst)) ->
          if i < 12 then begin
            let sym a =
              match Image.sym_at rimg a with Some s -> s.Image.name | None -> "?"
            in
            Printf.printf "  %8d  0x%x (%s) -> 0x%x (%s)\n" count src (sym src) dst
              (sym dst)
          end)
        l
    in
    top exits "exits package->original";
    top entries "entries original->package";
    match addr with
    | None -> ()
    | Some center ->
      Printf.printf "\ndisassembly around 0x%x:\n" center;
      for a = max 0 (center - 10) to min (Image.size rimg - 1) (center + 10) do
        Printf.printf "%s %5x: %s\n"
          (if a = center then ">" else " ")
          a
          (Vp_isa.Instr.to_string (Image.fetch rimg a))
      done
  in
  Cmd.v
    (Cmd.info "diag"
       ~doc:"Run the rewritten binary and histogram package boundary crossings.")
    Term.(const run $ workload_arg $ addr_arg $ backend_arg)

(* --- verify --- *)

let verify_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload as BENCH or BENCH/INPUT.")
  in
  let run spec no_inf no_link backend =
    let backend = resolve_backend backend in
    let w = find_workload spec in
    let img = Program.layout (w.Registry.program ()) in
    (* Degradation off: the point of this subcommand is to see the
       verdict on everything the pipeline wanted to emit, not on what
       survived the demotion ladder. *)
    let config =
      Vacuum.Config.with_backend backend
        (Vacuum.Config.with_degrade false
           (config_of ~inference:(not no_inf) ~linking:(not no_link)))
    in
    let r = Vacuum.Driver.rewrite ~config img in
    let report = r.Vacuum.Driver.verification in
    Format.printf "%s: %a@." (Registry.name w) Vp_package.Verify.pp_report
      report;
    if not (Vp_package.Verify.ok report) then exit 4
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the pipeline and the package soundness verifier on every \
          emitted package; exit 4 if any check fails."
       ~man:
         [
           `S Cmdliner.Manpage.s_exit_status;
           `P "0 on a sound image, 4 on a verifier rejection, 3 on a \
               pipeline error.";
         ])
    Term.(const run $ spec_arg $ no_inference $ no_linking $ backend_arg)

(* --- chaos --- *)

let chaos_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload as BENCH or BENCH/INPUT.")
  in
  let seeds_arg =
    Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per fault plan.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Root seed of the matrix.")
  in
  let report_arg =
    let doc = "Write the cell table (plus failures) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let run spec seeds seed jobs report_file backend =
    let backend = resolve_backend backend in
    let w = find_workload spec in
    let img = Program.layout (w.Registry.program ()) in
    let result =
      Vacuum.Chaos.matrix
        ~config:(Vacuum.Config.with_backend backend Vacuum.Config.default)
        ~seeds ~seed ~jobs:(resolve_jobs jobs) img
    in
    let table = Vacuum.Chaos.table result in
    Printf.printf "%s: %d fault plans x %d seeds\n%s\n" (Registry.name w)
      (List.length Vp_fault.Plan.presets) seeds table;
    let failed =
      List.filter
        (fun (c : Vacuum.Chaos.cell) ->
          not (c.Vacuum.Chaos.equivalent && c.Vacuum.Chaos.verified))
        result.Vacuum.Chaos.cells
    in
    (match report_file with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Printf.fprintf oc "%s: %d fault plans x %d seeds, root seed %d\n%s\n"
        (Registry.name w)
        (List.length Vp_fault.Plan.presets)
        seeds seed table;
      List.iter
        (fun (c : Vacuum.Chaos.cell) ->
          Printf.fprintf oc "FAILED: %s\n"
            (Format.asprintf "%a seed-index %d%s%s" Vp_fault.Plan.pp
               c.Vacuum.Chaos.plan c.Vacuum.Chaos.seed_index
               (if c.Vacuum.Chaos.verified then "" else " [verifier rejection]")
               (if c.Vacuum.Chaos.equivalent then "" else " [oracle mismatch]")))
        failed;
      close_out oc;
      Printf.printf "report -> %s\n" path);
    if failed <> [] then begin
      Printf.eprintf "chaos: %d of %d cells failed the oracle or verifier\n"
        (List.length failed)
        (List.length result.Vacuum.Chaos.cells);
      exit 5
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the seed x fault-plan chaos matrix: every preset fault plan, \
          asserting the differential oracle on each rewritten image; exit 5 \
          on any cell failure."
       ~man:
         [
           `S Cmdliner.Manpage.s_exit_status;
           `P "0 when every cell is equivalent and verified, 5 otherwise, 3 \
               on a pipeline error.";
         ])
    Term.(
      const run $ spec_arg $ seeds_arg $ seed_arg $ jobs_arg $ report_arg
      $ backend_arg)

(* --- machine --- *)

let machine_cmd =
  let run () = Format.printf "%a@." Vp_cpu.Config.pp Vp_cpu.Config.default in
  Cmd.v (Cmd.info "machine" ~doc:"Print the simulated EPIC machine model (Table 2).")
    Term.(const run $ const ())

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let doc = "Vacuum Packing: phase-based post-link optimization" in
  let info = Cmd.info "vpack" ~version:"1.0.0" ~doc in
  let cmd =
    Cmd.group info
      [
        list_cmd; run_cmd; phases_cmd; extract_cmd; aggregate_cmd; report_cmd;
        stats_cmd; timeline_cmd; trace_check_cmd; verify_cmd; chaos_cmd;
        diag_cmd; asm_cmd; disasm_cmd; machine_cmd;
      ]
  in
  (* Pipeline failures carry a structured payload; render it and exit
     cleanly instead of dumping a backtrace.  Usage errors — an unknown
     subcommand or bad flag (cmdliner's own parse failures, routed to
     exit 2 via [~term_err]) and an unknown or ambiguous workload (the
     [cli] stage) — all land on exit 2 with a pointer at the usage. *)
  match Cmd.eval ~catch:false ~term_err:2 cmd with
  | code -> exit code
  | exception Vacuum.Error.Error e when e.Vacuum.Error.stage = "cli" ->
    Format.eprintf "vpack: %a@." Vacuum.Error.pp e;
    Format.eprintf "Usage: vpack COMMAND …; try 'vpack --help'.@.";
    exit 2
  | exception Vacuum.Error.Error e ->
    Format.eprintf "vpack: %a@." Vacuum.Error.pp e;
    exit 3
