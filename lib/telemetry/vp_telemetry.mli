(** Runtime phase telemetry: per-interval time-series of a single run.

    Where {!Vp_obs} observes the {e software pipeline} (stage spans and
    counters), this module observes the {e simulated machine}: a
    {!t} is a per-run timeline that samples the execution every
    [interval] retired instructions, recording named integer series
    (HDC value, BBB occupancy, package residency, cache misses, …) and
    discrete events (detections, recordings, launches, side exits)
    stamped with their position in the run.

    {b Ownership.}  A timeline belongs to exactly one run: the driver
    creates one per profiling run, the coverage pass one per rewritten
    run, the timing model one per simulation.  Single-writer by
    construction — no locking — and every recorded value is a
    deterministic function of the run, so series and trace files are
    byte-identical across [Vacuum.Engine --jobs] schedules.

    {b Cost.}  Series storage is preallocated and grows by doubling;
    pushes are array stores.  The {!disabled} timeline turns every
    entry point into an early-out on one immutable boolean, and
    callers on the decoded hot loop are expected to not install their
    sampling callback at all when telemetry is off (see
    [Vacuum.Driver]), so the disabled path adds nothing to the decoded
    core. *)

type config = {
  enabled : bool;
  interval : int;  (** retired instructions per sample *)
}

val off : config
(** Telemetry disabled; the default everywhere. *)

val on : ?interval:int -> unit -> config
(** Enabled with the given sampling interval (default
    {!default_interval} retired instructions). *)

val default_interval : int
(** 10_000 retired instructions. *)

type t
(** A per-run timeline; either {!disabled} or created by {!create}. *)

val disabled : t
(** The shared no-op timeline: every operation returns immediately. *)

val create : ?name:string -> config -> t
(** A fresh timeline for one run; returns {!disabled} when
    [config.enabled] is false (so [create] composes with
    [Vacuum.Config] without an option).  [name] labels the run —
    session epochs use ["epoch-K"] — and is written as an extra
    ["run"] key on every series/event record the trace writer emits
    for this timeline (schema-compatible: vp-timeline-trace/1 readers
    only require the base keys). *)

val enabled : t -> bool
val interval_length : t -> int

val name : t -> string option
(** The run label given at {!create} time, if any. *)

val intervals : t -> int
(** Completed intervals recorded so far: the length of the longest
    series. *)

(** Named per-interval series of ints.  Each sampler pushes one value
    per interval boundary; series are dense from interval 0. *)
module Series : sig
  type id

  val register : t -> string -> id
  (** Idempotent: the same name returns the same series.  On
      {!disabled} returns a dummy id whose pushes are dropped. *)

  val push : t -> id -> int -> unit
  (** Append the next interval's value: one array store (amortised). *)

  val length : t -> id -> int
  val values : t -> id -> int array
  (** A copy of the recorded values, oldest first. *)

  val names : t -> string list
  (** Registered series names, sorted. *)

  val find : t -> string -> int array option
end

(** Discrete run events: detections, recordings, re-arms, package
    launches, side exits.  Rare by construction — emission may
    allocate. *)
module Event : sig
  val emit : t -> kind:string -> at:int -> value:int -> unit
  (** [at] is the event's position in the run, in whatever unit the
      recording pass samples (retired-branch index for detector
      events, retired-instruction index for residency events). *)

  val all : t -> (string * int * int) list
  (** [(kind, at, value)] in emission order. *)

  val count : t -> kind:string -> int
end

(** Export: per-series summaries and [vp-timeline-trace/1] JSON-lines
    files. *)
module Sink : sig
  val summary : t -> (string * int * int * int * int) list
  (** Per series, sorted by name: (name, samples, min, max, total).
      Empty for {!disabled}. *)

  val event_counts : t -> (string * int) list
  (** Events per kind, sorted by kind. *)

  val write_trace : path:string -> t list -> unit
  (** JSON-lines trace (schema [vp-timeline-trace/1], documented in
      DESIGN.md): one meta line, then one [series] object per series
      of each timeline in order, then one [event] object per event.
      Passing several timelines merges the runs of one workload
      (profile + rewritten + timing) into one file; disabled timelines
      contribute nothing.  Contains no wall-clock readings, so the
      file is byte-identical for identical runs. *)

  val validate_line : string -> (unit, string) result

  val validate_file : path:string -> (int, string) result
  (** Validate every line; [Ok n] is the number of lines checked.
      Fails on an empty file, a missing or foreign-schema meta line,
      or any malformed line. *)
end

(** ASCII rendering primitives for Figure 5-style timelines; composed
    by [vpack timeline]. *)
module Render : sig
  val sparkline : ?width:int -> int array -> string
  (** Eight-level density sparkline (glyphs [" .:-=+*#"]), max-pooled
      down to [width] (default 72) columns.  Empty input renders "". *)

  val lane : ?width:int -> total:int array -> int array -> string
  (** A residency lane: per column, the fraction [part/total] over the
      column's intervals as a five-level glyph ([" .:oO#"] at 0, >0,
      >=25%, >=50%, >=90%). *)

  val extent_rows :
    ?width:int -> cum:int array -> (int * int * int) list -> (int * string) list
  (** Phase extent bars: [cum.(i)] is the cumulative branch count at
      the end of interval [i]; the timeline is
      [Vp_phase.Phase_log.timeline]'s [(start, stop, phase)] list in
      branch indices.  Returns one [(phase_id, row)] per phase id,
      sorted, with ['='] in every column whose branch span intersects
      an extent of that phase. *)
end
