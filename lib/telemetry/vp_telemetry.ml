(* Timeline internals.  Everything behind [on]: the disabled timeline
   has empty storage and every entry point tests [on] first.  A
   timeline is single-writer (one per run) so there is no locking;
   determinism across engine schedules follows from per-run ownership,
   not synchronisation. *)

type config = { enabled : bool; interval : int }

let default_interval = 10_000
let off = { enabled = false; interval = default_interval }
let on ?(interval = default_interval) () = { enabled = true; interval }

type series = { sname : string; mutable data : int array; mutable len : int }

type t = {
  on : bool;
  interval : int;
  name : string option;
  mutable series : series array;
  mutable scount : int;
  sindex : (string, int) Hashtbl.t;
  (* Events in parallel growable arrays: (kind, at, value). *)
  mutable ekind : string array;
  mutable eat : int array;
  mutable evalue : int array;
  mutable ecount : int;
}

let make ?name ~on ~interval () =
  {
    on;
    interval;
    name;
    series = [||];
    scount = 0;
    sindex = Hashtbl.create 16;
    ekind = [||];
    eat = [||];
    evalue = [||];
    ecount = 0;
  }

let disabled = make ~on:false ~interval:default_interval ()

let create ?name (c : config) =
  if not c.enabled then disabled
  else begin
    if c.interval <= 0 then
      Vp_util.Error.failf ~stage:"telemetry"
        "Telemetry.create: interval must be positive, got %d" c.interval;
    make ?name ~on:true ~interval:c.interval ()
  end

let enabled t = t.on
let interval_length t = t.interval
let name t = t.name

let intervals t =
  let n = ref 0 in
  for i = 0 to t.scount - 1 do
    if t.series.(i).len > !n then n := t.series.(i).len
  done;
  !n

module Series = struct
  type id = int

  let register t name =
    if not t.on then 0
    else
      match Hashtbl.find_opt t.sindex name with
      | Some id -> id
      | None ->
        if t.scount = Array.length t.series then begin
          let cap = Stdlib.max 8 (2 * t.scount) in
          let series =
            Array.init cap (fun i ->
                if i < t.scount then t.series.(i)
                else { sname = ""; data = [||]; len = 0 })
          in
          t.series <- series
        end;
        let id = t.scount in
        t.series.(id) <- { sname = name; data = Array.make 512 0; len = 0 };
        t.scount <- id + 1;
        Hashtbl.replace t.sindex name id;
        id

  let push t id v =
    if t.on then begin
      let s = t.series.(id) in
      if s.len = Array.length s.data then begin
        let data = Array.make (2 * s.len) 0 in
        Array.blit s.data 0 data 0 s.len;
        s.data <- data
      end;
      s.data.(s.len) <- v;
      s.len <- s.len + 1
    end

  let length t id = if t.on then t.series.(id).len else 0

  let values t id =
    if not t.on then [||]
    else
      let s = t.series.(id) in
      Array.sub s.data 0 s.len

  let names t =
    if not t.on then []
    else
      List.init t.scount (fun i -> t.series.(i).sname)
      |> List.sort String.compare

  let find t name =
    if not t.on then None
    else Option.map (values t) (Hashtbl.find_opt t.sindex name)
end

module Event = struct
  let emit t ~kind ~at ~value =
    if t.on then begin
      if t.ecount = Array.length t.ekind then begin
        let cap = Stdlib.max 64 (2 * t.ecount) in
        let grow a fill =
          let b = Array.make cap fill in
          Array.blit a 0 b 0 t.ecount;
          b
        in
        t.ekind <- grow t.ekind "";
        t.eat <- grow t.eat 0;
        t.evalue <- grow t.evalue 0
      end;
      t.ekind.(t.ecount) <- kind;
      t.eat.(t.ecount) <- at;
      t.evalue.(t.ecount) <- value;
      t.ecount <- t.ecount + 1
    end

  let all t =
    List.init t.ecount (fun i -> (t.ekind.(i), t.eat.(i), t.evalue.(i)))

  let count t ~kind =
    let n = ref 0 in
    for i = 0 to t.ecount - 1 do
      if String.equal t.ekind.(i) kind then incr n
    done;
    !n
end

module Sink = struct
  let summary t =
    if not t.on then []
    else
      List.init t.scount (fun i ->
          let s = t.series.(i) in
          let mn = ref max_int and mx = ref min_int and total = ref 0 in
          for j = 0 to s.len - 1 do
            let v = s.data.(j) in
            if v < !mn then mn := v;
            if v > !mx then mx := v;
            total := !total + v
          done;
          if s.len = 0 then (s.sname, 0, 0, 0, 0)
          else (s.sname, s.len, !mn, !mx, !total))
      |> List.sort compare

  let event_counts t =
    let tbl = Hashtbl.create 8 in
    for i = 0 to t.ecount - 1 do
      let k = t.ekind.(i) in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
    done;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let write_trace ~path ts =
    let live = List.filter (fun t -> t.on) ts in
    let interval =
      match live with t :: _ -> t.interval | [] -> default_interval
    in
    let total_intervals =
      List.fold_left (fun acc t -> Stdlib.max acc (intervals t)) 0 live
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Printf.fprintf oc
          "{\"type\": \"meta\", \"schema\": \"vp-timeline-trace/1\", \
           \"interval\": %d, \"intervals\": %d}\n"
          interval total_intervals;
        (* A named timeline (one session epoch, say) stamps every one
           of its records with an extra ["run"] key; the validator only
           checks required keys, so stamped and unstamped traces share
           the vp-timeline-trace/1 schema. *)
        let run_field t =
          match t.name with
          | None -> ""
          | Some n -> Printf.sprintf "\"run\": \"%s\", " (json_escape n)
        in
        List.iter
          (fun t ->
            for i = 0 to t.scount - 1 do
              let s = t.series.(i) in
              Printf.fprintf oc "{\"type\": \"series\", %s\"name\": \"%s\", \"values\": ["
                (run_field t) (json_escape s.sname);
              for j = 0 to s.len - 1 do
                if j > 0 then output_string oc ", ";
                output_string oc (string_of_int s.data.(j))
              done;
              output_string oc "]}\n"
            done)
          live;
        List.iter
          (fun t ->
            for i = 0 to t.ecount - 1 do
              Printf.fprintf oc
                "{\"type\": \"event\", %s\"kind\": \"%s\", \"at\": %d, \
                 \"value\": %d}\n"
                (run_field t) (json_escape t.ekind.(i))
                t.eat.(i) t.evalue.(i)
            done)
          live)

  (* ---- validation ---- *)

  (* Pragmatic line checker matched to our own writer, in the mould of
     {!Vp_obs.Sink.validate_line}: one object per line, a [type] tag,
     the schema's required keys present.  Not a general JSON parser —
     the format is fully under this module's control. *)

  let required_keys = function
    | "meta" -> Some [ "schema"; "interval"; "intervals" ]
    | "series" -> Some [ "name"; "values" ]
    | "event" -> Some [ "kind"; "at"; "value" ]
    | _ -> None

  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0

  let type_of_line line =
    let tag = "\"type\": \"" in
    let tl = String.length tag in
    let rec find i =
      if i + tl > String.length line then None
      else if String.sub line i tl = tag then
        let rest = i + tl in
        match String.index_from_opt line rest '"' with
        | Some j -> Some (String.sub line rest (j - rest))
        | None -> None
      else find (i + 1)
    in
    find 0

  let validate_line line =
    let line = String.trim line in
    let n = String.length line in
    if n < 2 || line.[0] <> '{' || line.[n - 1] <> '}' then
      Error "not a single-line JSON object"
    else
      match type_of_line line with
      | None -> Error "missing \"type\" tag"
      | Some ty -> (
        match required_keys ty with
        | None -> Error (Printf.sprintf "unknown record type %S" ty)
        | Some keys -> (
          match
            List.find_opt
              (fun k -> not (contains ~needle:(Printf.sprintf "\"%s\":" k) line))
              keys
          with
          | Some missing ->
            Error (Printf.sprintf "%s record lacks key %S" ty missing)
          | None -> Ok ()))

  let validate_file ~path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go n =
          match input_line ic with
          | exception End_of_file -> Ok n
          | line -> (
            match validate_line line with
            | Error e -> Error (Printf.sprintf "line %d: %s" (n + 1) e)
            | Ok () ->
              if n = 0 then
                let l = String.trim line in
                if type_of_line l <> Some "meta" then
                  Error "line 1: expected the meta record first"
                else if
                  not (contains ~needle:"\"vp-timeline-trace/1\"" l)
                then Error "line 1: not a vp-timeline-trace/1 meta record"
                else go 1
              else go (n + 1))
        in
        match go 0 with
        | Ok 0 -> Error "empty trace"
        | r -> r)
end

module Render = struct
  let glyphs = " .:-=+*#"

  (* Map [0, n) columns onto [0, len) source intervals: column c
     covers [lo c, lo (c+1)). *)
  let bucket ~len ~width c = c * len / width

  let sparkline ?(width = 72) values =
    let len = Array.length values in
    if len = 0 then ""
    else begin
      let width = Stdlib.min width len in
      let mx = Array.fold_left Stdlib.max 1 values in
      String.init width (fun c ->
          let lo = bucket ~len ~width c in
          let hi = Stdlib.max (lo + 1) (bucket ~len ~width (c + 1)) in
          let m = ref 0 in
          for i = lo to Stdlib.min (hi - 1) (len - 1) do
            if values.(i) > !m then m := values.(i)
          done;
          (* 0 maps to ' '; any non-zero value renders at least '.'. *)
          if !m = 0 then glyphs.[0]
          else
            let level = 1 + (!m * (String.length glyphs - 2) / mx) in
            glyphs.[Stdlib.min level (String.length glyphs - 1)])
    end

  let lane_glyphs = " .:oO#"

  let lane ?(width = 72) ~total part =
    let len = Stdlib.min (Array.length total) (Array.length part) in
    if len = 0 then ""
    else begin
      let width = Stdlib.min width len in
      String.init width (fun c ->
          let lo = bucket ~len ~width c in
          let hi = Stdlib.max (lo + 1) (bucket ~len ~width (c + 1)) in
          let p = ref 0 and t = ref 0 in
          for i = lo to Stdlib.min (hi - 1) (len - 1) do
            p := !p + part.(i);
            t := !t + total.(i)
          done;
          if !t = 0 || !p = 0 then lane_glyphs.[0]
          else
            let f = float_of_int !p /. float_of_int !t in
            if f >= 0.9 then lane_glyphs.[5]
            else if f >= 0.5 then lane_glyphs.[4]
            else if f >= 0.25 then lane_glyphs.[3]
            else if f >= 0.05 then lane_glyphs.[2]
            else lane_glyphs.[1])
    end

  let extent_rows ?(width = 72) ~cum timeline =
    let len = Array.length cum in
    let ids =
      List.sort_uniq compare (List.map (fun (_, _, p) -> p) timeline)
    in
    if len = 0 then List.map (fun id -> (id, "")) ids
    else begin
      let width = Stdlib.min width len in
      (* Branch span of column c: [lo_branch, hi_branch). *)
      let col_span c =
        let lo = bucket ~len ~width c in
        let hi = Stdlib.max (lo + 1) (bucket ~len ~width (c + 1)) in
        let lo_branch = if lo = 0 then 0 else cum.(lo - 1) in
        let hi_branch = cum.(Stdlib.min (hi - 1) (len - 1)) in
        (lo_branch, hi_branch)
      in
      List.map
        (fun id ->
          let extents =
            List.filter_map
              (fun (s, e, p) -> if p = id then Some (s, e) else None)
              timeline
          in
          let row =
            String.init width (fun c ->
                let lo, hi = col_span c in
                if List.exists (fun (s, e) -> s < hi && e > lo) extents then '='
                else ' ')
          in
          (id, row))
        ids
    end
end
