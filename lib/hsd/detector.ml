type raw = { id : int; detected_at : int; entries : Snapshot.entry list }

type t = {
  cfg : Config.t;
  bbb : Bbb.t;
  history_size : int;
  same : Snapshot.t -> Snapshot.t -> bool;
  mutable hdc : int;
  mutable branches : int;
  mutable since_refresh : int;
  mutable since_clear : int;
  mutable recorded_rev : raw list;
  mutable recorded_count : int;  (* List.length recorded_rev, kept O(1) *)
  mutable raw_detections : int;
  mutable rearms : int;
  mutable history_hits : int;
  (* Telemetry hooks, fired at detection/recording/re-arm time only —
     never on the per-branch path — so an unhooked detector pays one
     [None] match per (rare) event. *)
  mutable hook_detect : (branches:int -> detections:int -> unit) option;
  mutable hook_record : (branches:int -> id:int -> unit) option;
  mutable hook_rearm : (branches:int -> rearms:int -> unit) option;
}

let create ?(config = Config.default) ?(history_size = 0) ?(same = fun _ _ -> false)
    () =
  (match Config.validate config with
  | Ok () -> ()
  | Error e -> Vp_util.Error.failf ~stage:"detector" "Detector.create: %s" e);
  {
    cfg = config;
    bbb = Bbb.create config;
    history_size;
    same;
    hdc = Config.hdc_max config;
    branches = 0;
    since_refresh = 0;
    since_clear = 0;
    recorded_rev = [];
    recorded_count = 0;
    raw_detections = 0;
    rearms = 0;
    history_hits = 0;
    hook_detect = None;
    hook_record = None;
    hook_rearm = None;
  }

let config t = t.cfg

let set_hooks ?on_detect ?on_record ?on_rearm t =
  (match on_detect with Some _ -> t.hook_detect <- on_detect | None -> ());
  (match on_record with Some _ -> t.hook_record <- on_record | None -> ());
  match on_rearm with Some _ -> t.hook_rearm <- on_rearm | None -> ()

(* View a raw recording as a snapshot for history comparison; the
   extent is irrelevant to similarity. *)
let snapshot_of_raw r =
  { Snapshot.id = r.id; detected_at = r.detected_at; ended_at = r.detected_at;
    branches = r.entries }

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let in_history t entries =
  if t.history_size = 0 then false
  else
    let candidate =
      { Snapshot.id = -1; detected_at = t.branches; ended_at = t.branches;
        branches = entries }
    in
    List.exists
      (fun r -> t.same candidate (snapshot_of_raw r))
      (take t.history_size t.recorded_rev)

let rearm t =
  t.rearms <- t.rearms + 1;
  Bbb.clear t.bbb;
  t.hdc <- Config.hdc_max t.cfg;
  t.since_refresh <- 0;
  t.since_clear <- 0;
  match t.hook_rearm with
  | Some f -> f ~branches:t.branches ~rearms:t.rearms
  | None -> ()

let on_branch t ~pc ~taken =
  t.branches <- t.branches + 1;
  t.since_refresh <- t.since_refresh + 1;
  t.since_clear <- t.since_clear + 1;
  let verdict = Bbb.record t.bbb ~pc ~taken in
  let hdc_max = Config.hdc_max t.cfg in
  (match verdict with
  | Bbb.Candidate -> let v = t.hdc - t.cfg.Config.hdc_dec in
    t.hdc <- (if v > 0 then v else 0)
  | Bbb.Non_candidate | Bbb.Dropped ->
    t.hdc <- Stdlib.min hdc_max (t.hdc + t.cfg.Config.hdc_inc));
  if t.hdc = 0 then begin
    t.raw_detections <- t.raw_detections + 1;
    (match t.hook_detect with
    | Some f -> f ~branches:t.branches ~detections:t.raw_detections
    | None -> ());
    let entries = Bbb.snapshot_entries t.bbb in
    (if entries <> [] then
       if in_history t entries then t.history_hits <- t.history_hits + 1
       else begin
         let id = t.recorded_count in
         t.recorded_rev <-
           { id; detected_at = t.branches; entries } :: t.recorded_rev;
         t.recorded_count <- id + 1;
         match t.hook_record with
         | Some f -> f ~branches:t.branches ~id
         | None -> ()
       end);
    rearm t
  end
  else begin
    if t.since_refresh >= t.cfg.Config.refresh_interval then begin
      Bbb.refresh t.bbb;
      t.since_refresh <- 0
    end;
    if t.since_clear >= t.cfg.Config.clear_interval then rearm t
  end

let replay t events =
  Array.iter (fun (pc, taken) -> on_branch t ~pc ~taken) events

let snapshots t =
  let raws = List.rev t.recorded_rev in
  let rec build = function
    | [] -> []
    | [ r ] ->
      [ { Snapshot.id = r.id; detected_at = r.detected_at; ended_at = t.branches;
          branches = r.entries } ]
    | r :: (next :: _ as rest) ->
      { Snapshot.id = r.id; detected_at = r.detected_at;
        ended_at = next.detected_at; branches = r.entries }
      :: build rest
  in
  build raws

let branches_seen t = t.branches
let hdc_value t = t.hdc
let bbb_occupancy t = Bbb.occupancy t.bbb
let bbb_candidates t = Bbb.candidates t.bbb
let detections t = t.raw_detections
let recordings t = t.recorded_count
let rearms t = t.rearms
let history_suppressed t = t.history_hits
