(** The composite Hot Spot Detector: Branch Behavior Buffer plus Hot
    Spot Detection Counter, with the refresh and clear timers of the
    paper's Table 2.

    Operation: the HDC starts saturated at its maximum.  Every retired
    conditional branch updates the BBB; a candidate branch drives the
    HDC down by [hdc_dec], a non-candidate (or dropped) branch drives
    it up by [hdc_inc], saturating at both ends.  When the HDC reaches
    zero, candidate branches account for more than inc/(inc+dec) of
    recent control flow — a hot spot.  The BBB candidate set is
    recorded, the table is cleared, and monitoring re-arms, so a
    stable phase is re-detected and re-recorded periodically — exactly
    the paper's baseline behaviour, with redundant recordings removed
    later in software ({!Vp_phase}) or, optionally, suppressed in
    hardware by a snapshot history (the enhancement of [4]), modelled
    by the [history] parameters below.

    The refresh timer periodically zeroes non-candidate counters so
    cold branches cannot accumulate into candidacy across unrelated
    execution; the clear timer empties the table when nothing has been
    detected for a long time. *)

type t

val create :
  ?config:Config.t ->
  ?history_size:int ->
  ?same:(Snapshot.t -> Snapshot.t -> bool) ->
  unit ->
  t
(** [history_size] (default 0) keeps the last N recorded snapshots in
    a hardware-style history; a new detection matching any of them
    under [same] is not recorded again (its extent still extends the
    match).  [same] defaults to never-equal, so by default every
    detection is recorded. *)

val config : t -> Config.t

val set_hooks :
  ?on_detect:(branches:int -> detections:int -> unit) ->
  ?on_record:(branches:int -> id:int -> unit) ->
  ?on_rearm:(branches:int -> rearms:int -> unit) ->
  t ->
  unit
(** Install run-time event callbacks (the telemetry layer's view of
    the hardware).  [on_detect] fires at every raw detection (HDC
    reached zero) with the retired-branch index and the running
    detection count; [on_record] fires when a snapshot is actually
    recorded, stamped with the same retired-branch index the
    snapshot's [detected_at] carries — phase extents are recoverable
    from the stamps alone, without re-running; [on_rearm] fires at
    every detector reset (one per detection, plus clear-interval
    expiries).  Hooks fire only at these rare events, never on the
    per-branch path; omitted arguments leave the existing hook in
    place. *)

val on_branch : t -> pc:int -> taken:bool -> unit
(** Feed one retired conditional branch; wire this to
    [Vp_exec.Emulator.run ~on_branch]. *)

val replay : t -> (int * bool) array -> unit
(** Feed a recorded (pc, taken) stream through {!on_branch} in order —
    the external-trace ingestion entry: a detector replaying a trace
    reaches exactly the state of one that watched the run live. *)

val snapshots : t -> Snapshot.t list
(** Recorded hot spots in detection order.  Each snapshot's extent
    runs from its detection to the next recording (or to the current
    branch count for the last one). *)

val branches_seen : t -> int
val hdc_value : t -> int

val bbb_occupancy : t -> int
(** Valid BBB entries right now (= {!Bbb.occupancy}); sampled by the
    telemetry layer at interval boundaries. *)

val bbb_candidates : t -> int
(** BBB entries whose candidate flag is set right now. *)

val detections : t -> int
(** Raw detections, including ones suppressed by the history. *)

val recordings : t -> int
(** Snapshots actually recorded (= length of {!snapshots}). *)

val rearms : t -> int
(** Detector resets: one per detection, plus one per clear-interval
    expiry with nothing detected. *)

val history_suppressed : t -> int
(** Detections whose snapshot matched the hardware history and was
    therefore not recorded. *)
