module Counter = Vp_util.Counter

type slot = {
  mutable valid : bool;
  mutable tag : int;
  counter : Counter.t;
  mutable candidate : bool;
}

type t = { config : Config.t; slots : slot array (* sets * assoc, set-major *) }

type verdict = Candidate | Non_candidate | Dropped

let create (config : Config.t) =
  (match Config.validate config with
  | Ok () -> ()
  | Error e -> Vp_util.Error.failf ~stage:"detector" "Bbb.create: %s" e);
  let slots =
    Array.init (Config.capacity config) (fun _ ->
        {
          valid = false;
          tag = 0;
          counter = Counter.create ~bits:config.Config.counter_bits;
          candidate = false;
        })
  in
  { config; slots }

let set_range t pc =
  let set = pc mod t.config.Config.sets in
  let base = set * t.config.Config.assoc in
  (base, base + t.config.Config.assoc - 1)

let find_slot t pc =
  let lo, hi = set_range t pc in
  let rec go i =
    if i > hi then None
    else if t.slots.(i).valid && t.slots.(i).tag = pc then Some t.slots.(i)
    else go (i + 1)
  in
  go lo

let find_victim t pc =
  let lo, hi = set_range t pc in
  (* Prefer an invalid way; otherwise evict a non-candidate. *)
  let rec find_invalid i =
    if i > hi then None
    else if not t.slots.(i).valid then Some t.slots.(i)
    else find_invalid (i + 1)
  in
  match find_invalid lo with
  | Some s -> Some s
  | None ->
    let rec find_noncand i =
      if i > hi then None
      else if not t.slots.(i).candidate then Some t.slots.(i)
      else find_noncand (i + 1)
    in
    find_noncand lo

let bump t slot ~taken =
  Counter.record slot.counter ~taken;
  if Counter.executed slot.counter >= t.config.Config.candidate_threshold then
    slot.candidate <- true;
  if slot.candidate then Candidate else Non_candidate

let record t ~pc ~taken =
  match find_slot t pc with
  | Some slot -> bump t slot ~taken
  | None -> (
    match find_victim t pc with
    | Some slot ->
      slot.valid <- true;
      slot.tag <- pc;
      slot.candidate <- false;
      Counter.reset slot.counter;
      bump t slot ~taken
    | None -> Dropped)

let refresh t =
  Array.iter
    (fun s -> if s.valid && not s.candidate then Counter.reset s.counter)
    t.slots

let clear t =
  Array.iter
    (fun s ->
      s.valid <- false;
      s.candidate <- false;
      Counter.reset s.counter)
    t.slots

let snapshot_entries t =
  Array.to_list t.slots
  |> List.filter_map (fun s ->
         if s.valid && s.candidate then
           Some
             {
               Snapshot.pc = s.tag;
               executed = Counter.executed s.counter;
               taken = Counter.taken s.counter;
             }
         else None)
  |> List.sort (fun (a : Snapshot.entry) b -> compare a.Snapshot.pc b.Snapshot.pc)

let occupancy t =
  Array.fold_left (fun acc s -> if s.valid then acc + 1 else acc) 0 t.slots

let candidates t =
  Array.fold_left (fun acc s -> if s.valid && s.candidate then acc + 1 else acc) 0 t.slots

let tracked t ~pc = find_slot t pc <> None
