(** The statistical chaos campaign: the full pipeline over a corpus of
    generated binaries.

    Each case generates one program from a sampled {!Gen.params}
    point, then holds it to three property families:

    - {e chaos}: the full fault-plan × seed matrix
      ({!Vacuum.Chaos.matrix}, which includes the clean plan and hence
      the plain differential oracle) — every cell must come back
      verified and architecturally equivalent;
    - {e trace}: a retired-branch trace recorded from a clean run must
      round-trip through [vp-retire-trace/1] byte-exactly, ingest into
      a profile whose snapshot stream matches the live run's, and
      package into a verified, equivalent rewrite — the
      emulator-free path;
    - {e never-crash}: deterministic truncations and bit flips of the
      encoded trace must come back as validation [Error]s, and no
      stage of any of the above may let an exception escape.

    A failing case is shrunk: {!Gen.shrinks} candidates (and trace
    prefixes, for trace-stage failures) are retried greedily while the
    failure reproduces at the same stage, and the minimal point is
    rendered as a [vp-fuzz-repro/1] file — the replayable regression
    corpus under [test/corpus/].

    Campaign reports are deterministic: case specs derive from
    {!Vp_util.Rng.stream} keyed by case index, every case runs its
    matrix with [jobs:1] internally, and outcomes are reassembled in
    index order — so {!render} output is byte-identical across
    [--jobs] values and emulator backends. *)

type spec = {
  seed : int;  (** generator seed *)
  params : Gen.params;
  trace_frac_pct : int;  (** trace prefix kept for ingestion (100 = all) *)
}

type failure = {
  stage : string;
      (** ["generate"], ["chaos"], ["trace-roundtrip"],
          ["trace-ingest"], ["trace-corrupt"] or ["crash"] *)
  detail : string;
}

type outcome = {
  index : int;
  spec : spec;
  static_size : int;  (** image size of the generated binary *)
  instructions : int;  (** clean-run dynamic instructions *)
  snapshots : int;  (** live profile's recorded snapshots *)
  phases : int;  (** filtered phase-log classes *)
  cells : int;  (** chaos matrix cells run *)
  trace_events : int;
  failure : failure option;
}

type repro = { spec : spec; stage : string; detail : string }

type report = {
  count : int;
  chaos_seeds : int;
  root_seed : int;
  outcomes : outcome list;  (** case-index order *)
  repros : repro list;  (** shrunk, one per failed case, index order *)
  shrink_attempts : int;
}

val campaign_detector : Vp_hsd.Config.t
(** The corpus detector: tiny's fast refresh/clear timers and narrow
    HDC, with enough BBB sets (64) to hold a generated phase's branch
    working set — tiny's 4-entry table thrashes on generated code and
    never fires. *)

val default_config : Vacuum.Config.t
(** {!campaign_detector} (generated binaries retire well under a million
    instructions), degradation on — the envelope every case runs
    under.  The per-case fuel is re-derived from the clean baseline
    run so fuel-starvation plans bite regardless of binary size. *)

val spec_of_index :
  ?bounds:Gen.bounds -> root_seed:int -> int -> spec
(** The campaign's case derivation: spec [i] depends only on
    [root_seed] and [i] (via {!Vp_util.Rng.stream}), never on
    scheduling. *)

val run_case :
  ?config:Vacuum.Config.t -> ?chaos_seeds:int -> index:int -> spec -> outcome
(** Run one case.  Never raises: any escaping exception is caught as a
    ["crash"] failure with the backtrace in [detail]. *)

val shrink :
  ?config:Vacuum.Config.t ->
  ?chaos_seeds:int ->
  ?max_attempts:int ->
  spec ->
  failure ->
  repro * int
(** Greedy descent over {!Gen.shrinks} (plus trace-prefix halving for
    trace-stage failures): take the first candidate that still fails
    at the same stage, repeat from there, stop at a fixpoint or after
    [max_attempts] (default 48) case runs.  Returns the minimal repro
    and the number of runs spent. *)

val run :
  ?config:Vacuum.Config.t ->
  ?bounds:Gen.bounds ->
  ?chaos_seeds:int ->
  ?jobs:int ->
  ?root_seed:int ->
  ?shrink_budget:int ->
  count:int ->
  unit ->
  report
(** The campaign: [count] cases on a {!Vp_util.Pool} of [jobs]
    workers (default 1), then sequential shrinking of any failures.
    [chaos_seeds] (default 1) seeds per fault plan per case. *)

val ok : report -> bool
(** No case failed. *)

val render : report -> string
(** The campaign report: parameters, a summary line, aggregate
    coverage statistics and one block per failure with its shrunk
    repro.  Byte-identical across [jobs] and backends. *)

(** {1 Repro files} *)

val repro_schema : string
(** ["vp-fuzz-repro/1"]. *)

val repro_to_string : repro -> string

val repro_of_string : string -> (repro, string) result
(** Total parser for {!repro_to_string} output. *)

val save_repros : dir:string -> report -> string list
(** Write one [seed-<n>.repro] per shrunk failure into [dir]
    (created if missing); returns the paths, index order. *)

val load_repro_file : path:string -> (repro, string) result

val replay :
  ?config:Vacuum.Config.t -> ?chaos_seeds:int -> repro -> (outcome, failure) result
(** Re-run a repro's spec: [Ok] if the case now passes (the regression
    is fixed), [Error] with the fresh failure otherwise. *)
