module B = Vp_prog.Builder
module Op = Vp_isa.Op
module R = Vp_util.Rng

type params = {
  phases : int;
  hot_funcs : int;
  call_depth : int;
  loop_nesting : int;
  body_blocks : int;
  share_pct : int;
  phase_iters : int;
  rounds : int;
  globals : int;
}

let default =
  {
    phases = 3;
    hot_funcs = 3;
    call_depth = 2;
    loop_nesting = 2;
    body_blocks = 3;
    share_pct = 25;
    phase_iters = 40;
    rounds = 2;
    globals = 64;
  }

let rec pow2_up n = if n >= 1024 then 1024 else if n land (n - 1) = 0 then n else pow2_up (n + 1)

let clamp p =
  {
    phases = max 1 (min 8 p.phases);
    hot_funcs = max 1 (min 12 p.hot_funcs);
    call_depth = max 1 (min 4 p.call_depth);
    loop_nesting = max 0 (min 3 p.loop_nesting);
    body_blocks = max 1 (min 6 p.body_blocks);
    share_pct = max 0 (min 100 p.share_pct);
    phase_iters = max 1 (min 400 p.phase_iters);
    rounds = max 1 (min 4 p.rounds);
    globals = pow2_up (max 8 (min 1024 p.globals));
  }

(* Dynamic-size proxy: each root call executes every hot function of
   its phase once (the DAG covers all of them), each body costs
   roughly [body_blocks * 3^loop_nesting] elements, and sharing can at
   worst chain every phase's DAG behind one root. *)
let weight p =
  let p = clamp p in
  let rec pow3 n = if n <= 0 then 1 else 3 * pow3 (n - 1) in
  let body = p.body_blocks * pow3 p.loop_nesting in
  let share_chain = if p.share_pct > 0 then 2 else 1 in
  (p.rounds * p.phases * p.phase_iters * p.hot_funcs * body * share_chain)
  + p.globals + p.call_depth

let fields p =
  [
    ("phases", p.phases);
    ("hot_funcs", p.hot_funcs);
    ("call_depth", p.call_depth);
    ("loop_nesting", p.loop_nesting);
    ("body_blocks", p.body_blocks);
    ("share_pct", p.share_pct);
    ("phase_iters", p.phase_iters);
    ("rounds", p.rounds);
    ("globals", p.globals);
  ]

let of_fields kvs =
  let set p (k, v) =
    match k with
    | "phases" -> Ok { p with phases = v }
    | "hot_funcs" -> Ok { p with hot_funcs = v }
    | "call_depth" -> Ok { p with call_depth = v }
    | "loop_nesting" -> Ok { p with loop_nesting = v }
    | "body_blocks" -> Ok { p with body_blocks = v }
    | "share_pct" -> Ok { p with share_pct = v }
    | "phase_iters" -> Ok { p with phase_iters = v }
    | "rounds" -> Ok { p with rounds = v }
    | "globals" -> Ok { p with globals = v }
    | _ -> Error (Printf.sprintf "unknown generator parameter %S" k)
  in
  let rec go p = function
    | [] -> Ok (clamp p)
    | kv :: rest -> ( match set p kv with Ok p -> go p rest | Error _ as e -> e)
  in
  go default kvs

let pp ppf p =
  Format.fprintf ppf "%s"
    (String.concat " "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (fields p)))

type bounds = {
  max_phases : int;
  max_hot_funcs : int;
  max_call_depth : int;
  max_loop_nesting : int;
  max_body_blocks : int;
  max_phase_iters : int;
  max_rounds : int;
}

let default_bounds =
  {
    max_phases = 4;
    max_hot_funcs = 5;
    max_call_depth = 3;
    max_loop_nesting = 2;
    max_body_blocks = 4;
    max_phase_iters = 60;
    max_rounds = 2;
  }

let sample bounds rng =
  clamp
    {
      phases = 1 + R.int rng (max 1 bounds.max_phases);
      hot_funcs = 1 + R.int rng (max 1 bounds.max_hot_funcs);
      call_depth = 1 + R.int rng (max 1 bounds.max_call_depth);
      loop_nesting = R.int rng (max 1 (bounds.max_loop_nesting + 1));
      body_blocks = 1 + R.int rng (max 1 bounds.max_body_blocks);
      share_pct = 10 * R.int rng 8;
      phase_iters = 10 + R.int rng (max 1 (bounds.max_phase_iters - 9));
      rounds = 1 + R.int rng (max 1 bounds.max_rounds);
      globals = [| 16; 64; 256 |].(R.int rng 3);
    }

(* ---- body elements ----

   Like the test suite's snapshot-side generators these are structured
   (arith / global traffic / diamond / counted loop), but loop bounds
   are kept at 2–3 so a nest of [loop_nesting] loops multiplies the
   body by at most 3^nesting — the generator's termination and size
   arguments both rest on every loop being small and counted. *)

let arith_ops = [| Op.Add; Op.Sub; Op.Mul; Op.And; Op.Or; Op.Xor; Op.Slt |]

let arith rng fb regs =
  let n = Array.length regs in
  for _ = 1 to 2 + R.int rng 4 do
    let op = arith_ops.(R.int rng (Array.length arith_ops)) in
    let dst = regs.(R.int rng n) in
    let src = regs.(R.int rng n) in
    let operand =
      if R.bool rng 0.5 then B.V regs.(R.int rng n)
      else B.K (R.int_in rng (-40) 40)
    in
    B.alu fb op dst src operand;
    if op = Op.Mul then B.alu fb Op.And dst dst (B.K 0xFFFFF)
  done

let global_traffic rng fb ~base ~len regs =
  let n = Array.length regs in
  let addr = B.vreg fb in
  let v = regs.(R.int rng n) in
  B.alu fb Op.And addr regs.(R.int rng n) (B.K (len - 1));
  B.alu fb Op.Add addr addr (B.K base);
  if R.bool rng 0.5 then B.store fb v ~base:addr ~off:0
  else B.load fb v ~base:addr ~off:0

let rec element rng fb ~nesting ~base ~len regs =
  match R.int rng (if nesting > 0 then 4 else 3) with
  | 0 -> arith rng fb regs
  | 1 -> global_traffic rng fb ~base ~len regs
  | 2 ->
    let n = Array.length regs in
    let a = regs.(R.int rng n) in
    B.if_ fb
      ((if R.bool rng 0.5 then Op.Lt else Op.Ge), a, B.K (R.int_in rng (-10) 10))
      (fun () -> arith rng fb regs)
      (fun () -> arith rng fb regs)
  | _ ->
    let i = B.vreg fb in
    B.for_ fb i ~from:(B.K 0) ~below:(B.K (2 + R.int rng 2)) (fun () ->
        element rng fb ~nesting:(nesting - 1) ~base ~len regs)

(* One hot function: [body_blocks] elements with the function's calls
   (its DAG out-edges) interleaved at top level — never under a loop,
   so the per-root-call cost is the sum of the bodies, not a
   product. *)
let define_function b rng ~name ~callees ~base ~len ~(p : params) =
  let rng_body = R.split rng in
  B.func b name ~nargs:2 (fun fb args ->
      let x = args.(0) in
      let salt = args.(1) in
      let locals = Array.init 3 (fun _ -> B.vreg fb) in
      Array.iteri (fun k v -> B.li fb v ((k * 7) + 1)) locals;
      let regs = Array.append [| x; salt |] locals in
      let nregs = Array.length regs in
      let slots =
        List.map (fun c -> (R.int rng_body p.body_blocks, c)) callees
      in
      for k = 0 to p.body_blocks - 1 do
        element rng_body fb ~nesting:p.loop_nesting ~base ~len regs;
        List.iter
          (fun (slot, callee) ->
            if slot = k then begin
              let r = B.call fb callee [ regs.(R.int rng_body nregs); salt ] in
              B.alu fb Op.Xor x x (B.V r)
            end)
          slots
      done;
      B.ret fb (Some regs.(R.int rng_body nregs)))

let func_name ~phase ~level ~index =
  Printf.sprintf "p%d_l%d_f%d" phase level index

(* Distribute [hot_funcs] nodes over a chain of levels: the root is
   level 0, alone; the rest round-robin over levels 1..levels-1.  A
   caller [i] at level [d] calls every level-[d+1] function [j] with
   [j mod counts.(d) = i], so the union of out-edges covers the next
   level — every hot function is reachable, and each root call
   executes each function of its phase exactly once. *)
let level_counts (p : params) =
  let levels = 1 + min p.call_depth (p.hot_funcs - 1) in
  let counts = Array.make levels 0 in
  counts.(0) <- 1;
  for k = 0 to p.hot_funcs - 2 do
    let d = if levels = 1 then 0 else 1 + (k mod (levels - 1)) in
    counts.(d) <- counts.(d) + 1
  done;
  counts

let program ~seed p =
  let p = clamp p in
  let rng = R.create ~seed in
  let b = B.create () in
  let len = p.globals in
  let base = B.global b ~words:len in
  let counts = level_counts p in
  let levels = Array.length counts in
  let roots = Array.make p.phases "" in
  for ph = 0 to p.phases - 1 do
    (* Deepest level first so every callee exists textually before its
       caller; the previous phase (and hence its root, the shared
       launch point) is fully defined before this one starts. *)
    let share_prev = ph > 0 && R.bool rng (float_of_int p.share_pct /. 100.) in
    for d = levels - 1 downto 0 do
      for i = 0 to counts.(d) - 1 do
        let callees =
          if d = levels - 1 then []
          else
            List.filter_map
              (fun j ->
                if j mod counts.(d) = i then
                  Some (func_name ~phase:ph ~level:(d + 1) ~index:j)
                else None)
              (List.init counts.(d + 1) Fun.id)
        in
        let callees =
          if d = 0 && share_prev then callees @ [ roots.(ph - 1) ]
          else callees
        in
        define_function b rng
          ~name:(func_name ~phase:ph ~level:d ~index:i)
          ~callees ~base ~len ~p
      done
    done;
    roots.(ph) <- func_name ~phase:ph ~level:0 ~index:0
  done;
  (* Phase extents differ (0.75–1.5x) and each phase folds its result
     with a different operator, so consecutive phases are distinct to
     both the detector and the differential oracle. *)
  let fold_ops = [| Op.Add; Op.Xor; Op.Sub; Op.Or |] in
  let plan =
    Array.to_list
      (Array.mapi
         (fun ph root ->
           let iters =
             max 1 (p.phase_iters * (75 + R.int rng 76) / 100)
           in
           (root, iters, fold_ops.(ph mod Array.length fold_ops)))
         roots)
  in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let acc = B.vreg fb in
      let salt = B.vreg fb in
      B.li fb acc 1;
      B.li fb salt 3;
      let round = B.vreg fb in
      B.for_ fb round ~from:(B.K 0) ~below:(B.K p.rounds) (fun () ->
          List.iter
            (fun (root, iters, op) ->
              let i = B.vreg fb in
              B.for_ fb i ~from:(B.K 0) ~below:(B.K iters) (fun () ->
                  let r = B.call fb root [ acc; salt ] in
                  B.alu fb op acc acc (B.V r);
                  B.alu fb Op.And acc acc (B.K 0xFFFFFF)))
            plan);
      B.store_abs fb acc base;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"

let shrinks p =
  let p = clamp p in
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let add q =
    let q = clamp q in
    if q <> p && weight q < weight p && not (Hashtbl.mem seen q) then begin
      Hashtbl.add seen q ();
      acc := q :: !acc
    end
  in
  (* Floors first (biggest reduction), then halvings, field by field
     in decreasing impact order. *)
  add { p with phases = 1 };
  add { p with hot_funcs = 1 };
  add { p with phase_iters = 1 };
  add { p with rounds = 1 };
  add { p with loop_nesting = 0 };
  add { p with body_blocks = 1 };
  add { p with call_depth = 1 };
  add { p with share_pct = 0 };
  add { p with phases = p.phases / 2 };
  add { p with hot_funcs = p.hot_funcs / 2 };
  add { p with phase_iters = p.phase_iters / 2 };
  add { p with loop_nesting = p.loop_nesting / 2 };
  add { p with body_blocks = p.body_blocks / 2 };
  add { p with call_depth = p.call_depth / 2 };
  add { p with globals = 16 };
  List.rev !acc
