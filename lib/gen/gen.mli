(** Phase-structured random program generation.

    Grows the test suite's adversarial {e snapshot} generators into
    full random CFG {e binaries} with planted phase skeletons: each
    generated program is a set of per-phase hot-function DAGs (acyclic
    calls, counted loops only, so every program provably halts) driven
    by a main loop that cycles through the phases — the ground-truth
    structure the Hot Spot Detector is supposed to rediscover.

    Generation is fully deterministic: equal [(seed, params)] pairs
    yield byte-identical programs whatever machine, [--jobs] count or
    backend builds them.  All randomness flows through
    {!Vp_util.Rng}. *)

type params = {
  phases : int;  (** planted phases; main cycles through them *)
  hot_funcs : int;  (** hot functions per phase (the DAG's node count) *)
  call_depth : int;  (** max call-chain length below a phase root *)
  loop_nesting : int;  (** max counted-loop nesting inside a body *)
  body_blocks : int;  (** structured elements per function body *)
  share_pct : int;
      (** probability (percent) that a phase root also calls the
          previous phase's root — shared launch points, the hard case
          for package linking *)
  phase_iters : int;  (** root calls per phase per round (scaled
          0.75–1.5x per phase so phase extents differ) *)
  rounds : int;  (** full phase cycles the main loop performs *)
  globals : int;  (** global data words (rounded up to a power of 2) *)
}

val default : params

val clamp : params -> params
(** Clamp every field into its supported range (and [globals] up to a
    power of two): [program] applies it, so any int tuple — including
    a hostile one — names a valid generator input. *)

val weight : params -> int
(** Monotone size proxy used to order shrink candidates: an estimate
    of the dynamic instruction count a program built from [params]
    retires. *)

val fields : params -> (string * int) list
(** Stable [(name, value)] rendering, the serialization used by repro
    files; inverse of {!of_fields}. *)

val of_fields : (string * int) list -> (params, string) result
(** Rebuild params from {!fields} output.  Unknown keys are errors;
    missing keys take their {!default} value; values are clamped. *)

val pp : Format.formatter -> params -> unit
(** One line, [key=value] pairs in {!fields} order. *)

type bounds = {
  max_phases : int;
  max_hot_funcs : int;
  max_call_depth : int;
  max_loop_nesting : int;
  max_body_blocks : int;
  max_phase_iters : int;
  max_rounds : int;
}
(** Upper bounds for {!sample} — the campaign's size envelope. *)

val default_bounds : bounds
(** Sized so a generated binary retires well under a million
    instructions: small enough that a chaos matrix over hundreds of
    binaries stays a smoke test, large enough to exercise multi-phase
    detection, call chains and loop nests. *)

val sample : bounds -> Vp_util.Rng.t -> params
(** Draw a random (clamped) parameter point under [bounds]. *)

val program : seed:int -> params -> Vp_prog.Program.t
(** Build the program.  Structure: for each phase, [hot_funcs]
    functions are arranged in levels (a chain of at most [call_depth]
    calls below the root); every function is reachable, calls only go
    to deeper levels (acyclic), and all loops are counted with small
    constant bounds, so the program halts on every input.  [main]
    iterates [rounds] cycles of the phases, calling each root
    [phase_iters] (scaled) times. *)

val shrinks : params -> params list
(** Strictly-smaller candidate parameter points, biggest reduction
    first — the shrinking lattice {!Campaign} walks while a failure
    still reproduces.  Every candidate is clamped and has a strictly
    smaller {!weight}, so greedy descent terminates. *)
