let schema = "vp-retire-trace/1"
let header = schema ^ "\n"

type t = {
  image_size : int;
  instructions : int;
  pcs : int array;
  takens : bool array;
}

let length t = Array.length t.pcs

let events t = Array.init (length t) (fun i -> (t.pcs.(i), t.takens.(i)))

let of_events ?(image_size = 0) ?(instructions = 0) evs =
  let n = Array.length evs in
  let pcs = Array.make n 0 and takens = Array.make n false in
  Array.iteri
    (fun i (pc, taken) ->
      if pc < 0 then invalid_arg "Trace.of_events: negative pc";
      pcs.(i) <- pc;
      takens.(i) <- taken)
    evs;
  { image_size; instructions; pcs; takens }

let record ?backend ?fuel ?mem_words image =
  let pcs = ref [] and n = ref 0 in
  let on_branch ~pc ~taken =
    incr n;
    pcs := (pc, taken) :: !pcs
  in
  let outcome =
    Vp_exec.Emulator.run_backend ?backend ?fuel ?mem_words ~on_branch image
  in
  let evs = Array.make !n (0, false) in
  List.iteri (fun i e -> evs.(!n - 1 - i) <- e) !pcs;
  ( of_events ~image_size:(Vp_prog.Image.size image)
      ~instructions:outcome.Vp_exec.Emulator.instructions evs,
    outcome )

let prefix t n =
  let n = max 0 (min n (length t)) in
  let instructions =
    if length t = 0 then 0 else t.instructions * n / length t
  in
  {
    image_size = t.image_size;
    instructions;
    pcs = Array.sub t.pcs 0 n;
    takens = Array.sub t.takens 0 n;
  }

let equal a b =
  a.image_size = b.image_size
  && a.instructions = b.instructions
  && a.pcs = b.pcs && a.takens = b.takens

(* ---- primitives (see Vp_aggregate.Wire for the shared idiom) ---- *)

let put_varint buf v =
  if v < 0 then invalid_arg "Trace.put_varint: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let fnv1a s ~pos ~len =
  let h = ref 0xbf29ce484222325 in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code s.[i]) * 0x100000001b3
  done;
  !h land max_int

(* Zigzag over 62-bit native ints: deltas between branch pcs go both
   ways, varints only carry non-negative values. *)
let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag z = (z lsr 1) lxor (-(z land 1))

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let get_varint s pos =
  let n = String.length s in
  let acc = ref 0 and shift = ref 0 and p = ref !pos and fin = ref false in
  while not !fin do
    if !p >= n then malformed "truncated varint at byte %d" !p;
    if !shift > 56 then malformed "varint overflow at byte %d" !pos;
    let b = Char.code s.[!p] in
    let bits = b land 0x7f in
    (* A 9th byte may only carry value bits 56..61; more wraps into
       the sign bit and would decode as an accepted negative value. *)
    if !shift = 56 && bits > 0x3f then
      malformed "varint overflow at byte %d" !pos;
    acc := !acc lor (bits lsl !shift);
    incr p;
    if b < 0x80 then fin := true else shift := !shift + 7
  done;
  pos := !p;
  !acc

(* ---- encoding ---- *)

let chunk_events = 4096

let encode t =
  let n = length t in
  let body = Buffer.create (16 + (2 * n)) in
  Buffer.add_char body 'M';
  put_varint body t.image_size;
  put_varint body t.instructions;
  put_varint body n;
  let prev = ref 0 in
  let i = ref 0 in
  while !i < n do
    let count = min chunk_events (n - !i) in
    Buffer.add_char body 'C';
    put_varint body count;
    for k = !i to !i + count - 1 do
      let pc = t.pcs.(k) in
      let bit = if t.takens.(k) then 1 else 0 in
      put_varint body ((zigzag (pc - !prev) lsl 1) lor bit);
      prev := pc
    done;
    i := !i + count
  done;
  let body = Buffer.contents body in
  let out = Buffer.create (String.length header + String.length body + 16) in
  Buffer.add_string out header;
  Buffer.add_string out body;
  Buffer.add_char out 'E';
  put_varint out n;
  put_varint out (fnv1a body ~pos:0 ~len:(String.length body));
  Buffer.contents out

(* ---- decoding ---- *)

let decode_exn s =
  let hn = String.length header in
  if String.length s < hn || String.sub s 0 hn <> header then
    malformed "missing %s header" schema;
  let n = String.length s in
  let pos = ref hn in
  let body_start = hn in
  if !pos >= n || s.[!pos] <> 'M' then
    malformed "missing metadata record at byte %d" !pos;
  incr pos;
  let image_size = get_varint s pos in
  let instructions = get_varint s pos in
  let total = get_varint s pos in
  (* Every event costs at least one body byte, so a hostile count
     cannot force a huge allocation. *)
  if total > n - !pos then
    malformed "declared %d events exceeds the %d remaining bytes" total
      (n - !pos);
  let pcs = Array.make total 0 in
  let takens = Array.make total false in
  let filled = ref 0 in
  let prev = ref 0 in
  let fin = ref false in
  while not !fin do
    if !pos >= n then malformed "truncated stream: no trailer";
    match s.[!pos] with
    | 'C' ->
      incr pos;
      let count = get_varint s pos in
      if !filled + count > total then
        malformed "chunk at byte %d overflows the declared %d events"
          (!pos - 1) total;
      for _ = 1 to count do
        let v = get_varint s pos in
        let pc = !prev + unzigzag (v lsr 1) in
        if pc < 0 then
          malformed "event %d: pc delta walks before address 0" !filled;
        if image_size > 0 && pc >= image_size then
          malformed "event %d: pc %d outside the declared image size %d"
            !filled pc image_size;
        pcs.(!filled) <- pc;
        takens.(!filled) <- v land 1 = 1;
        prev := pc;
        incr filled
      done
    | 'E' ->
      let body_len = !pos - body_start in
      incr pos;
      let count = get_varint s pos in
      let sum = get_varint s pos in
      if count <> total then
        malformed "trailer counts %d events, metadata declares %d" count
          total;
      if !filled <> total then
        malformed "stream carries %d events, metadata declares %d" !filled
          total;
      let actual = fnv1a s ~pos:body_start ~len:body_len in
      if sum <> actual then malformed "checksum mismatch";
      if !pos <> n then malformed "%d trailing bytes after trailer" (n - !pos);
      fin := true
    | c -> malformed "unknown record tag %C at byte %d" c !pos
  done;
  { image_size; instructions; pcs; takens }

(* Total over arbitrary input: [Malformed] carries the diagnosis; any
   other exception is a decoder bug, reported rather than re-raised. *)
let decode s =
  try Ok (decode_exn s) with
  | Malformed e -> Error e
  | exn -> Error ("decoder failure: " ^ Printexc.to_string exn)

let validate s = Result.map length (decode s)

let write_file ~path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode t))

let read_file ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> decode s
  | exception Sys_error e -> Error e

let validate_file ~path = Result.map length (read_file ~path)
