(** [vp-retire-trace/1]: an external retired-branch trace.

    The on-disk record of the one hardware event stream the Hot Spot
    Detector consumes — (pc, taken) per retired conditional branch —
    so a profile can be captured on one machine (or by a real PMU
    shim) and ingested elsewhere, driving detection and packaging
    {e without} the emulator ({!Vacuum.Driver.profile_of_events}).

    Wire layout: a [vp-retire-trace/1\n] header line; an ['M'] record
    carrying image size, retired-instruction count and total event
    count; ['C'] chunks of delta-coded events (zigzag pc delta and the
    taken bit packed into one varint each); an ['E'] trailer repeating
    the event count and an FNV-1a checksum of the body.  Varints are
    LEB128 over non-negative 62-bit ints — a 9th byte carrying more
    than 6 value bits is rejected, so no hostile encoding can smuggle
    a negative value through native-int wraparound.

    {!decode} and {!validate} are total: any byte string yields [Ok]
    or a diagnostic [Error] naming the failing byte offset — never an
    exception. *)

val schema : string

type t = {
  image_size : int;  (** static size of the profiled image (0 unknown) *)
  instructions : int;  (** instructions retired over the run (0 unknown) *)
  pcs : int array;  (** branch pc per event, in retirement order *)
  takens : bool array;  (** outcome per event; same length as [pcs] *)
}

val length : t -> int
(** Event count. *)

val events : t -> (int * bool) array
(** The (pc, taken) stream, ready for
    {!Vacuum.Driver.profile_of_events}. *)

val of_events :
  ?image_size:int -> ?instructions:int -> (int * bool) array -> t
(** Package an event stream; raises [Invalid_argument] on a negative
    pc. *)

val record :
  ?backend:Vp_exec.Emulator.backend ->
  ?fuel:int ->
  ?mem_words:int ->
  Vp_prog.Image.t ->
  t * Vp_exec.Emulator.outcome
(** Run the image, recording every retired conditional branch — the
    reference trace writer.  The trace carries the image size and the
    run's retired-instruction count. *)

val prefix : t -> int -> t
(** First [n] events (clamped); [instructions] is scaled
    proportionally.  The campaign's trace-shrinking hook. *)

val equal : t -> t -> bool

val encode : t -> string

val decode : string -> (t, string) result
(** Total: structural errors, truncations (named byte offset),
    overlong varints, negative deltas walking before pc 0, checksum
    and count mismatches all come back as [Error]. *)

val validate : string -> (int, string) result
(** {!decode} reduced to the event count — what [vpack trace-check]
    prints. *)

val write_file : path:string -> t -> unit
val read_file : path:string -> (t, string) result
val validate_file : path:string -> (int, string) result
