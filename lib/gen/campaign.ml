module R = Vp_util.Rng
module Config = Vacuum.Config
module Driver = Vacuum.Driver
module Chaos = Vacuum.Chaos
module Emulator = Vp_exec.Emulator
module Phase_log = Vp_phase.Phase_log

type spec = { seed : int; params : Gen.params; trace_frac_pct : int }
type failure = { stage : string; detail : string }

type outcome = {
  index : int;
  spec : spec;
  static_size : int;
  instructions : int;
  snapshots : int;
  phases : int;
  cells : int;
  trace_events : int;
  failure : failure option;
}

type repro = { spec : spec; stage : string; detail : string }

type report = {
  count : int;
  chaos_seeds : int;
  root_seed : int;
  outcomes : outcome list;
  repros : repro list;
  shrink_attempts : int;
}

(* Between the Table 2 detector (sized for billion-instruction runs)
   and the test suite's tiny one (1 set x 4 ways, sized for toy
   loops): generated binaries execute tens of thousands of branches
   over working sets of a few dozen, so keep tiny's fast timers and
   narrow HDC but give the BBB enough sets to hold a generated
   phase's branch working set. *)
let campaign_detector = { Vp_hsd.Config.tiny with Vp_hsd.Config.sets = 64 }

let default_config = Config.with_detector campaign_detector Config.default

let spec_of_index ?(bounds = Gen.default_bounds) ~root_seed i =
  let rng = R.stream (R.create ~seed:root_seed) i in
  {
    seed = R.int rng 1_000_000_000;
    params = Gen.sample bounds rng;
    trace_frac_pct = 100;
  }

(* Failure details end up on single lines of repro files and reports. *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* Deterministic corruption sweep over an encoded trace: every
   truncation must come back a validation [Error]; a single bit flip
   must never be silently accepted (the body is checksummed, the
   header and trailer are structurally checked); nothing may raise.
   Returns a diagnostic when a corruption slipped through. *)
let corrupt_check ~seed enc =
  let rng = R.stream (R.create ~seed) 0xC0FFEE in
  let n = String.length enc in
  let bad = ref None in
  let note what = if !bad = None then bad := Some what in
  let expect_error what s =
    match Trace.decode s with
    | Ok _ -> note (what ^ ": accepted by the validator")
    | Error _ -> ()
    | exception exn ->
      note (what ^ ": escaped exception " ^ Printexc.to_string exn)
  in
  expect_error "empty input" "";
  expect_error "junk input" "not a trace at all";
  for _ = 1 to 8 do
    let cut = R.int rng (max 1 n) in
    expect_error
      (Printf.sprintf "truncation to %d bytes" cut)
      (String.sub enc 0 cut)
  done;
  for _ = 1 to 8 do
    let at = R.int rng (max 1 n) in
    let bit = R.int rng 8 in
    let b = Bytes.of_string enc in
    Bytes.set b at (Char.chr (Char.code enc.[at] lxor (1 lsl bit)));
    expect_error
      (Printf.sprintf "bit %d flipped at byte %d" bit at)
      (Bytes.to_string b)
  done;
  !bad

let run_case ?(config = default_config) ?(chaos_seeds = 1) ~index spec =
  let base =
    {
      index;
      spec;
      static_size = 0;
      instructions = 0;
      snapshots = 0;
      phases = 0;
      cells = 0;
      trace_events = 0;
      failure = None;
    }
  in
  let fail base stage detail =
    { base with failure = Some { stage; detail = one_line detail } }
  in
  try
    let image = Vp_prog.Program.layout (Gen.program ~seed:spec.seed spec.params) in
    let base = { base with static_size = Vp_prog.Image.size image } in
    let trace, clean =
      Trace.record ~backend:(Config.backend config) ~fuel:(Config.fuel config)
        ~mem_words:(Config.mem_words config) image
    in
    let base =
      { base with
        instructions = clean.Emulator.instructions;
        trace_events = Trace.length trace;
      }
    in
    if not clean.Emulator.halted then
      fail base "generate"
        (Printf.sprintf "did not halt within %d instructions"
           (Config.fuel config))
    else begin
      (* Re-derive the fuel envelope from this binary's clean run so
         fuel-starvation plans truncate meaningfully whatever the
         generated size, while layout overhead in the rewritten image
         never trips the clean-fuel oracle runs. *)
      let config =
        Config.with_fuel ((2 * clean.Emulator.instructions) + 10_000) config
      in
      let matrix =
        Chaos.matrix ~config ~seeds:chaos_seeds ~seed:spec.seed ~jobs:1 image
      in
      let base = { base with cells = List.length matrix.Chaos.cells } in
      let bad =
        List.filter
          (fun (c : Chaos.cell) -> not (c.Chaos.verified && c.Chaos.equivalent))
          matrix.Chaos.cells
      in
      if bad <> [] then
        fail base "chaos"
          (Printf.sprintf "%d cell(s) violated the oracle: %s"
             (List.length bad)
             (String.concat ", "
                (List.filteri (fun i _ -> i < 4)
                   (List.map
                      (fun (c : Chaos.cell) ->
                        Printf.sprintf "%s/s%d" c.Chaos.plan.Vp_fault.Plan.name
                          c.Chaos.seed_index)
                      bad))))
      else begin
        let t =
          if spec.trace_frac_pct >= 100 then trace
          else
            Trace.prefix trace
              (Trace.length trace * max 0 spec.trace_frac_pct / 100)
        in
        let enc = Trace.encode t in
        match Trace.decode enc with
        | Error e -> fail base "trace-roundtrip" ("fresh encode rejected: " ^ e)
        | Ok t' when not (Trace.equal t t') ->
          fail base "trace-roundtrip" "decode . encode is not the identity"
        | Ok _ -> begin
          let live = Driver.profile ~config image in
          let base =
            { base with
              snapshots = List.length live.Driver.snapshots;
              phases = List.length (Phase_log.phases live.Driver.log);
            }
          in
          let ingested =
            Driver.profile_of_events ~config
              ~instructions:t.Trace.instructions image (Trace.events t)
          in
          if
            spec.trace_frac_pct >= 100
            && ingested.Driver.snapshots <> live.Driver.snapshots
          then
            fail base "trace-ingest"
              (Printf.sprintf
                 "ingested snapshot stream diverges from the live profile \
                  (%d vs %d snapshots)"
                 (List.length ingested.Driver.snapshots)
                 (List.length live.Driver.snapshots))
          else begin
            let rw = Driver.rewrite_of_profile ~config ingested in
            let out =
              Emulator.run_backend ~backend:(Config.backend config)
                ~fuel:(Config.fuel config)
                ~mem_words:(Config.mem_words config)
                (Driver.rewritten_image rw)
            in
            if not (Vp_package.Verify.ok rw.Driver.verification) then
              fail base "trace-ingest"
                "rewrite of the ingested profile failed verification"
            else if
              not
                (out.Emulator.halted
                && out.Emulator.result = clean.Emulator.result
                && out.Emulator.checksum = clean.Emulator.checksum)
            then
              fail base "trace-ingest"
                "image rewritten from the ingested trace diverges from the \
                 original"
            else begin
              match corrupt_check ~seed:spec.seed enc with
              | Some what -> fail base "trace-corrupt" what
              | None -> base
            end
          end
        end
      end
    end
  with exn -> fail base "crash" (Printexc.to_string exn)

let is_trace_stage stage = String.length stage >= 5 && String.sub stage 0 5 = "trace"

let shrink ?config ?chaos_seeds ?(max_attempts = 48) spec0 (failure0 : failure) =
  let attempts = ref 0 in
  let reproduces spec stage =
    if !attempts >= max_attempts then None
    else begin
      incr attempts;
      match (run_case ?config ?chaos_seeds ~index:0 spec).failure with
      | Some f when f.stage = stage -> Some f
      | _ -> None
    end
  in
  let candidates spec stage =
    List.map (fun q -> { spec with params = q }) (Gen.shrinks spec.params)
    @
    if is_trace_stage stage && spec.trace_frac_pct > 12 then
      [ { spec with trace_frac_pct = spec.trace_frac_pct / 2 } ]
    else []
  in
  let rec descend spec (f : failure) =
    let rec first = function
      | [] -> { spec; stage = f.stage; detail = f.detail }
      | c :: rest -> (
        match reproduces c f.stage with
        | Some f' -> descend c f'
        | None ->
          if !attempts >= max_attempts then
            { spec; stage = f.stage; detail = f.detail }
          else first rest)
    in
    first (candidates spec f.stage)
  in
  let repro = descend spec0 failure0 in
  (repro, !attempts)

let run ?(config = default_config) ?(bounds = Gen.default_bounds)
    ?(chaos_seeds = 1) ?(jobs = 1) ?(root_seed = 0) ?(shrink_budget = 48)
    ~count () =
  let specs = List.init count (fun i -> (i, spec_of_index ~bounds ~root_seed i)) in
  let outcomes =
    Vp_util.Pool.map ~jobs
      (fun (i, s) -> run_case ~config ~chaos_seeds ~index:i s)
      specs
  in
  (* Shrinking is sequential and in case order, after the parallel
     sweep: the report stays byte-identical whatever [jobs] ran it. *)
  let shrink_attempts = ref 0 in
  let repros =
    List.filter_map
      (fun o ->
        match o.failure with
        | None -> None
        | Some f ->
          let r, n =
            shrink ~config ~chaos_seeds ~max_attempts:shrink_budget o.spec f
          in
          shrink_attempts := !shrink_attempts + n;
          Some r)
      outcomes
  in
  {
    count;
    chaos_seeds;
    root_seed;
    outcomes;
    repros;
    shrink_attempts = !shrink_attempts;
  }

let ok r = List.for_all (fun o -> o.failure = None) r.outcomes

let render r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let failures = List.filter (fun o -> o.failure <> None) r.outcomes in
  line "vp-fuzz campaign";
  line "  cases         %d" r.count;
  line "  root seed     %d" r.root_seed;
  line "  chaos seeds   %d" r.chaos_seeds;
  line "  failures      %d" (List.length failures);
  line "  shrink runs   %d" r.shrink_attempts;
  let stat name f =
    match r.outcomes with
    | [] -> ()
    | os ->
      let vs = List.map f os in
      let lo = List.fold_left min max_int vs
      and hi = List.fold_left max min_int vs
      and sum = List.fold_left ( + ) 0 vs in
      line "  %-13s min %d / mean %d / max %d / total %d" name lo
        (sum / List.length vs) hi sum
  in
  stat "static size" (fun o -> o.static_size);
  stat "instructions" (fun o -> o.instructions);
  stat "snapshots" (fun o -> o.snapshots);
  stat "phases" (fun o -> o.phases);
  stat "chaos cells" (fun o -> o.cells);
  stat "trace events" (fun o -> o.trace_events);
  if failures = [] then line "result: all %d cases passed" r.count
  else begin
    List.iter
      (fun o ->
        match o.failure with
        | None -> ()
        | Some f ->
          line "FAIL case %d seed %d [%s]" o.index o.spec.seed f.stage;
          line "  %s" f.detail;
          line "  params %s"
            (Format.asprintf "%a" Gen.pp o.spec.params))
      failures;
    List.iter
      (fun (rp : repro) ->
        line "shrunk repro: seed %d trace_frac_pct %d [%s] %s" rp.spec.seed
          rp.spec.trace_frac_pct rp.stage
          (Format.asprintf "%a" Gen.pp rp.spec.params))
      r.repros;
    line "result: %d of %d cases FAILED" (List.length failures) r.count
  end;
  Buffer.contents b

(* ---- repro files ---- *)

let repro_schema = "vp-fuzz-repro/1"

let repro_to_string (r : repro) =
  let b = Buffer.create 256 in
  Buffer.add_string b ("# " ^ repro_schema ^ "\n");
  Printf.bprintf b "seed %d\n" r.spec.seed;
  Printf.bprintf b "trace_frac_pct %d\n" r.spec.trace_frac_pct;
  List.iter
    (fun (k, v) -> Printf.bprintf b "%s %d\n" k v)
    (Gen.fields r.spec.params);
  Printf.bprintf b "stage %s\n" r.stage;
  Printf.bprintf b "detail %s\n" (one_line r.detail);
  Buffer.contents b

let repro_of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | first :: rest when String.trim first = "# " ^ repro_schema ->
    let seed = ref None
    and frac = ref 100
    and stage = ref None
    and detail = ref ""
    and fields = ref []
    and err = ref None in
    List.iter
      (fun l ->
        if !err = None && String.trim l <> "" then
          match String.index_opt l ' ' with
          | None -> err := Some (Printf.sprintf "malformed repro line %S" l)
          | Some sp -> (
            let k = String.sub l 0 sp in
            let v = String.sub l (sp + 1) (String.length l - sp - 1) in
            match k with
            | "stage" -> stage := Some v
            | "detail" -> detail := v
            | _ -> (
              match int_of_string_opt (String.trim v) with
              | None ->
                err := Some (Printf.sprintf "repro key %s: %S is not an int" k v)
              | Some n -> (
                match k with
                | "seed" -> seed := Some n
                | "trace_frac_pct" -> frac := n
                | _ -> fields := (k, n) :: !fields)))
        )
      rest;
    (match !err with
    | Some e -> Error e
    | None -> (
      match (!seed, !stage) with
      | None, _ -> Error "repro file missing its seed"
      | _, None -> Error "repro file missing its stage"
      | Some seed, Some stage -> (
        match Gen.of_fields (List.rev !fields) with
        | Error e -> Error e
        | Ok params ->
          Ok
            {
              spec = { seed; params; trace_frac_pct = max 1 (min 100 !frac) };
              stage;
              detail = !detail;
            })))
  | _ -> Error (Printf.sprintf "missing %s header" repro_schema)

let save_repros ~dir r =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  List.map
    (fun (rp : repro) ->
      let path = Filename.concat dir (Printf.sprintf "seed-%d.repro" rp.spec.seed) in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (repro_to_string rp));
      path)
    r.repros

let load_repro_file ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> repro_of_string s
  | exception Sys_error e -> Error e

let replay ?config ?chaos_seeds (r : repro) =
  let o = run_case ?config ?chaos_seeds ~index:0 r.spec in
  match o.failure with None -> Ok o | Some f -> Error f
