module Pool = Vp_util.Pool

type stats = {
  runs : int;
  snapshots : int;
  classified : int;
  dropped : int;
  shards : int;
  jobs : int;
}

(* Class maps are sorted assoc lists keyed by class id — small (one
   entry per phase class) and deterministic to merge. *)
let rec merge_maps a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, pa) :: a', (kb, pb) :: b' ->
    if ka < kb then (ka, pa) :: merge_maps a' b
    else if kb < ka then (kb, pb) :: merge_maps a b'
    else (ka, Profile.merge pa pb) :: merge_maps a' b'

let add_to_map map key profile =
  merge_maps map [ (key, profile) ]

(* One shard: fold its runs in input order.  Pure up to its own
   accumulator, per the pool's determinism contract. *)
let fold_shard ~counter_max ~classify shard_runs =
  List.fold_left
    (fun (map, classified, dropped) (r : Wire.run) ->
      let by_class = ref [] in
      let classified = ref classified and dropped = ref dropped in
      List.iter
        (fun snap ->
          match classify snap with
          | None -> incr dropped
          | Some cls ->
            incr classified;
            by_class :=
              (match List.assoc_opt cls !by_class with
              | Some snaps -> (cls, snap :: snaps) :: List.remove_assoc cls !by_class
              | None -> (cls, [ snap ]) :: !by_class))
        r.Wire.snapshots;
      let map =
        List.fold_left
          (fun map (cls, rev_snaps) ->
            add_to_map map cls
              (Profile.of_snapshots ~weight:r.Wire.weight ~counter_max
                 (List.rev rev_snaps)))
          map
          (List.sort compare !by_class)
      in
      (map, !classified, !dropped))
    ([], 0, 0) shard_runs

let aggregate_classes ?(shards = 8) ?(jobs = 1) ~counter_max ~classify runs =
  let shards = Stdlib.max 1 shards in
  let jobs = Stdlib.max 1 jobs in
  List.iter
    (fun (r : Wire.run) ->
      if r.Wire.counter_max <> counter_max then
        Vp_util.Error.failf ~stage:"aggregate"
          "run %d carries counter cap %d, aggregator expects %d" r.Wire.run_id
          r.Wire.counter_max counter_max)
    runs;
  let snapshots =
    List.fold_left (fun acc r -> acc + List.length r.Wire.snapshots) 0 runs
  in
  (* Deterministic partition: run index mod shards, each shard keeping
     its runs in input order. *)
  let buckets = Array.make shards [] in
  List.iteri (fun i r -> buckets.(i mod shards) <- r :: buckets.(i mod shards)) runs;
  let shard_inputs =
    Array.to_list (Array.map List.rev buckets)
  in
  let results =
    Pool.map ~jobs (fold_shard ~counter_max ~classify) shard_inputs
  in
  (* Shard-merge in fixed shard order; associativity + commutativity
     of Profile.merge make the grouping (and hence the shard count)
     invisible in the result. *)
  let map, classified, dropped =
    List.fold_left
      (fun (map, c, d) (m, c', d') -> (merge_maps map m, c + c', d + d'))
      ([], 0, 0) results
  in
  ( map,
    {
      runs = List.length runs;
      snapshots;
      classified;
      dropped;
      shards;
      jobs;
    } )

let aggregate ?shards ?jobs ~counter_max runs =
  let map, stats =
    aggregate_classes ?shards ?jobs ~counter_max
      ~classify:(fun _ -> Some 0)
      runs
  in
  let profile =
    match map with
    | [] -> Profile.empty ~counter_max
    | [ (_, p) ] -> p
    | _ -> assert false
  in
  (profile, stats)
