(** Mergeable weighted fleet profiles.

    One emulated "user machine" run yields a stream of BBB snapshots;
    a fleet of thousands yields thousands of streams that must be
    combined into one packaging decision per binary.  This module is
    the algebra that combination runs on: a {!t} is a weighted
    aggregate over a snapshot multiset, and {!merge} is associative
    and commutative with {!empty} as identity, so any sharding of the
    ingest work — by run, by machine, by data-center rack — folds to
    the same profile.

    {b Saturation censoring.}  The hardware's 9-bit counters are
    lossy: an entry observed at the counter cap says "at least this
    many", not "exactly this many" (the BBB halves on overflow, so the
    true count at snapshot time lies in [[cap, 2*cap)]).  Summing such
    counts as if they were exact would systematically under-weight
    exactly the branches that matter most.  {!merge} therefore carries
    saturated observations as {e censored}: the raw sums stay exact
    lower bounds, a per-entry censored-observation count travels with
    them, and {!estimated_executed} applies the censoring correction
    (one extra cap per censored observation — the midpoint of the
    halving interval) only at read time.  Merging never bakes the
    correction into the sums, which is what keeps the operation
    associative. *)

type entry = {
  pc : int;  (** static address of the conditional branch *)
  obs : int;  (** snapshot entries that contributed *)
  executed : int;  (** exact sum of observed executed counts *)
  taken : int;  (** exact sum of observed taken counts *)
  censored : int;
      (** observations whose executed count sat at the counter cap:
          the [executed] sum is a lower bound by at least this many
          observation intervals *)
}

type t = {
  counter_max : int;  (** the cap the ingested counters saturate at *)
  weight : int;  (** total run weight merged in *)
  runs : int;  (** distinct runs merged in *)
  snapshots : int;  (** snapshots ingested *)
  entries : entry list;  (** canonical form: strictly ascending by pc *)
}

val empty : counter_max:int -> t
(** The merge identity: zero weight, no entries. *)

val is_empty : t -> bool

val of_snapshots : ?weight:int -> counter_max:int -> Vp_hsd.Snapshot.t list -> t
(** Ingest one run's snapshot stream as a profile of [runs = 1] and
    the given [weight] (default 1).  Counts are clamped into
    [[0, counter_max]] through {!Vp_util.Counter.saturating_add} on
    the way in — wire files and faulted streams may carry counts the
    hardware never could — and an entry clamping at (or arriving at)
    the cap is recorded as one censored observation. *)

val merge : t -> t -> t
(** Associative, commutative, with {!empty} as identity: entry lists
    merge-join on pc and every component sums exactly.  Raises a typed
    [Vp_util.Error] when the two profiles disagree on [counter_max] —
    profiles from different counter geometries do not mix. *)

val merge_all : counter_max:int -> t list -> t
(** Left fold of {!merge} over {!empty}. *)

val estimated_executed : t -> entry -> int
(** The censoring-corrected executed count: [executed + censored *
    counter_max].  Monotone in every component — in particular, adding
    a censored observation raises the estimate by at least the cap,
    never lowers it. *)

val estimated_taken : t -> entry -> int
(** [taken] scaled by the same correction factor, preserving the
    observed taken fraction (the one thing hardware halving keeps
    exact). *)

val taken_fraction : entry -> float
(** [taken / executed] over the exact sums; 0 when nothing was
    observed. *)

val branch_count : t -> int

val total_estimated : t -> int
(** Sum of {!estimated_executed} over all entries. *)

val to_snapshot : ?id:int -> ?scale_to:int -> t -> Vp_hsd.Snapshot.t
(** Collapse the profile into one synthetic BBB snapshot for the
    packaging pipeline: censoring-corrected counts are renormalised so
    the hottest branch reads [scale_to] (default [counter_max] — the
    scale every downstream threshold is calibrated to), taken counts
    keep their observed fraction, and branches that round to zero
    weight are dropped (the profile is deliberately lossy, per the
    paper).  [detected_at] is 0 and [ended_at] the ingested snapshot
    count, so the snapshot's extent reflects how much evidence backs
    it. *)

val digest : t -> int
(** FNV-1a digest of the canonical form (counter geometry, weights,
    every entry component), as a non-negative int.  Equal profiles —
    and only equal profiles, up to hash collision — share a digest;
    the CLI uses it to assert shard-count invariance. *)

val pp : Format.formatter -> t -> unit
