module Snapshot = Vp_hsd.Snapshot
module Counter = Vp_util.Counter

type entry = {
  pc : int;
  obs : int;
  executed : int;
  taken : int;
  censored : int;
}

type t = {
  counter_max : int;
  weight : int;
  runs : int;
  snapshots : int;
  entries : entry list;
}

let empty ~counter_max =
  if counter_max <= 0 then
    Vp_util.Error.failf ~stage:"aggregate" "counter_max must be positive (got %d)"
      counter_max;
  { counter_max; weight = 0; runs = 0; snapshots = 0; entries = [] }

let is_empty t = t.runs = 0 && t.entries = []

(* One snapshot entry becomes one observation.  Counts outside the
   hardware's range (wire files, faulted streams) clamp through the
   shared saturating-add primitive; clamping at the cap is itself a
   censored observation — the count certainly reached the cap. *)
let observation ~counter_max (e : Snapshot.entry) =
  let executed = Counter.saturating_add ~max:counter_max e.Snapshot.executed 0 in
  let taken = min (Counter.saturating_add ~max:counter_max e.Snapshot.taken 0) executed in
  {
    pc = e.Snapshot.pc;
    obs = 1;
    executed;
    taken;
    censored = (if executed >= counter_max then 1 else 0);
  }

let combine a b =
  {
    pc = a.pc;
    obs = a.obs + b.obs;
    executed = a.executed + b.executed;
    taken = a.taken + b.taken;
    censored = a.censored + b.censored;
  }

(* Merge-join two strictly-ascending entry lists, summing on equal
   pcs.  Tail-recursive: fleet profiles can hold every branch of a
   large image. *)
let merge_entries xs ys =
  let rec go acc xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs', y :: ys' ->
      if x.pc < y.pc then go (x :: acc) xs' ys
      else if y.pc < x.pc then go (y :: acc) xs ys'
      else go (combine x y :: acc) xs' ys'
  in
  go [] xs ys

(* Snapshot entries are ascending by pc (the hardware invariant), but
   wire-ingested streams are untrusted: sort, then coalesce duplicate
   pcs so the result is strictly ascending — canonical form. *)
let obs_of_snapshot ~counter_max (s : Snapshot.t) =
  let sorted =
    List.sort
      (fun (a : Snapshot.entry) b -> compare a.Snapshot.pc b.Snapshot.pc)
      s.Snapshot.branches
  in
  List.fold_left
    (fun acc e ->
      let o = observation ~counter_max e in
      match acc with
      | prev :: rest when prev.pc = o.pc -> combine prev o :: rest
      | _ -> o :: acc)
    [] sorted
  |> List.rev

let of_snapshots ?(weight = 1) ~counter_max snaps =
  let base = empty ~counter_max in
  let entries =
    List.fold_left
      (fun acc s -> merge_entries acc (obs_of_snapshot ~counter_max s))
      [] snaps
  in
  {
    base with
    weight = max 0 weight;
    runs = 1;
    snapshots = List.length snaps;
    entries;
  }

let merge a b =
  if a.counter_max <> b.counter_max then
    Vp_util.Error.failf ~stage:"aggregate"
      "cannot merge profiles with counter caps %d and %d" a.counter_max
      b.counter_max;
  {
    counter_max = a.counter_max;
    weight = a.weight + b.weight;
    runs = a.runs + b.runs;
    snapshots = a.snapshots + b.snapshots;
    entries = merge_entries a.entries b.entries;
  }

let merge_all ~counter_max ts = List.fold_left merge (empty ~counter_max) ts

let estimated_executed t e = e.executed + (e.censored * t.counter_max)

let estimated_taken t e =
  if e.executed = 0 then 0
  else
    (* Preserve the observed taken fraction under the censoring
       correction; exact integer scaling, rounded down. *)
    e.taken * estimated_executed t e / e.executed

let taken_fraction e =
  if e.executed = 0 then 0.0
  else float_of_int e.taken /. float_of_int e.executed

let branch_count t = List.length t.entries

let total_estimated t =
  List.fold_left (fun acc e -> acc + estimated_executed t e) 0 t.entries

let to_snapshot ?(id = 0) ?scale_to t =
  let scale_to = Option.value ~default:t.counter_max scale_to in
  let peak =
    List.fold_left (fun acc e -> max acc (estimated_executed t e)) 0 t.entries
  in
  let branches =
    if peak = 0 then []
    else
      List.filter_map
        (fun e ->
          let est = estimated_executed t e in
          let executed = est * scale_to / peak in
          if executed <= 0 then None
          else
            let taken =
              min executed
                (int_of_float
                   (Float.round (taken_fraction e *. float_of_int executed)))
            in
            Some { Snapshot.pc = e.pc; executed; taken })
        t.entries
  in
  { Snapshot.id; detected_at = 0; ended_at = max 1 t.snapshots; branches }

(* FNV-1a over the canonical field sequence, masked to stay a
   non-negative OCaml int. *)
let digest t =
  let h = ref 0xbf29ce484222325 in
  let mix v =
    (* Feed the int byte by byte so entry boundaries cannot alias. *)
    for shift = 0 to 7 do
      let byte = (v lsr (shift * 8)) land 0xff in
      h := (!h lxor byte) * 0x100000001b3
    done
  in
  mix t.counter_max;
  mix t.weight;
  mix t.runs;
  mix t.snapshots;
  List.iter
    (fun e ->
      mix e.pc;
      mix e.obs;
      mix e.executed;
      mix e.taken;
      mix e.censored)
    t.entries;
  !h land max_int

let pp fmt t =
  Format.fprintf fmt
    "@[<v>fleet profile: %d runs (weight %d), %d snapshots, %d branches@,"
    t.runs t.weight t.snapshots (branch_count t);
  List.iter
    (fun e ->
      Format.fprintf fmt "  %6x obs %5d exec %8d (est %8d) taken %8d%s@," e.pc
        e.obs e.executed (estimated_executed t e) e.taken
        (if e.censored > 0 then Printf.sprintf " [%d censored]" e.censored
         else ""))
    t.entries;
  Format.fprintf fmt "@]"
