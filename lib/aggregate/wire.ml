module Snapshot = Vp_hsd.Snapshot

let schema = "vp-profile-wire/1"
let header = schema ^ "\n"

type run = {
  run_id : int;
  weight : int;
  counter_max : int;
  snapshots : Snapshot.t list;
}

(* ---- primitives ---- *)

(* Unsigned LEB128 over non-negative OCaml ints (62 value bits). *)
let put_varint buf v =
  if v < 0 then
    Vp_util.Error.failf ~stage:"wire" "cannot encode negative integer %d" v;
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

(* FNV-1a over a substring, masked non-negative so it round-trips
   through the varint encoding. *)
let fnv1a s ~pos ~len =
  let h = ref 0xbf29ce484222325 in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code s.[i]) * 0x100000001b3
  done;
  !h land max_int

(* ---- encoding ---- *)

let encode_snapshot buf (s : Snapshot.t) =
  put_varint buf s.Snapshot.id;
  put_varint buf s.Snapshot.detected_at;
  put_varint buf s.Snapshot.ended_at;
  put_varint buf (List.length s.Snapshot.branches);
  let prev = ref (-1) in
  List.iter
    (fun (e : Snapshot.entry) ->
      let delta = e.Snapshot.pc - !prev in
      if delta <= 0 then
        Vp_util.Error.failf ~stage:"wire" ~pc:e.Snapshot.pc
          "snapshot %d: branch pcs not strictly ascending" s.Snapshot.id;
      (* First entry ships its pc + 1 (delta from the sentinel -1), so
         every on-wire delta is positive and pc 0 stays encodable. *)
      put_varint buf delta;
      put_varint buf e.Snapshot.executed;
      put_varint buf e.Snapshot.taken;
      prev := e.Snapshot.pc)
    s.Snapshot.branches

let encode runs =
  let body = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_char body 'R';
      put_varint body r.run_id;
      put_varint body r.weight;
      put_varint body r.counter_max;
      put_varint body (List.length r.snapshots);
      List.iter (encode_snapshot body) r.snapshots)
    runs;
  let body = Buffer.contents body in
  let out = Buffer.create (String.length header + String.length body + 16) in
  Buffer.add_string out header;
  Buffer.add_string out body;
  Buffer.add_char out 'E';
  put_varint out (List.length runs);
  put_varint out (fnv1a body ~pos:0 ~len:(String.length body));
  Buffer.contents out

(* ---- decoding ---- *)

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let get_varint s pos =
  let n = String.length s in
  let acc = ref 0 and shift = ref 0 and p = ref !pos and fin = ref false in
  while not !fin do
    if !p >= n then malformed "truncated varint at byte %d" !p;
    if !shift > 56 then malformed "varint overflow at byte %d" !pos;
    let b = Char.code s.[!p] in
    let bits = b land 0x7f in
    (* The 9th byte sits at shift 56 and may only carry the 6 value
       bits 56..61: anything above wraps into the native int's sign
       bit and would decode as an accepted negative value. *)
    if !shift = 56 && bits > 0x3f then
      malformed "varint overflow at byte %d" !pos;
    acc := !acc lor (bits lsl !shift);
    incr p;
    if b < 0x80 then fin := true else shift := !shift + 7
  done;
  pos := !p;
  !acc

let decode_snapshot s pos ~counter_max =
  let id = get_varint s pos in
  let detected_at = get_varint s pos in
  let ended_at = get_varint s pos in
  if ended_at < detected_at then
    malformed "snapshot %d: ended_at %d before detected_at %d" id ended_at
      detected_at;
  let nbranches = get_varint s pos in
  let prev = ref (-1) in
  let branches = ref [] in
  for _ = 1 to nbranches do
    let delta = get_varint s pos in
    if delta <= 0 then malformed "snapshot %d: non-ascending branch pc" id;
    let pc = !prev + delta in
    let executed = get_varint s pos in
    let taken = get_varint s pos in
    if executed > counter_max then
      malformed "snapshot %d pc %x: executed %d exceeds counter cap %d" id pc
        executed counter_max;
    if taken > executed then
      malformed "snapshot %d pc %x: taken %d exceeds executed %d" id pc taken
        executed;
    branches := { Snapshot.pc; executed; taken } :: !branches;
    prev := pc
  done;
  { Snapshot.id; detected_at; ended_at; branches = List.rev !branches }

let decode_exn s =
  let hn = String.length header in
  if String.length s < hn || String.sub s 0 hn <> header then
    malformed "missing %s header" schema;
  let pos = ref hn in
  let n = String.length s in
  let runs = ref [] in
  let body_start = hn in
  let fin = ref false in
  while not !fin do
    if !pos >= n then malformed "truncated stream: no trailer";
    match s.[!pos] with
    | 'R' ->
      incr pos;
      let run_id = get_varint s pos in
      let weight = get_varint s pos in
      let counter_max = get_varint s pos in
      if counter_max <= 0 then
        malformed "run %d: counter cap must be positive" run_id;
      let nsnaps = get_varint s pos in
      let snaps = ref [] in
      for _ = 1 to nsnaps do
        snaps := decode_snapshot s pos ~counter_max :: !snaps
      done;
      runs :=
        { run_id; weight; counter_max; snapshots = List.rev !snaps } :: !runs
    | 'E' ->
      let body_len = !pos - body_start in
      incr pos;
      let count = get_varint s pos in
      let sum = get_varint s pos in
      if count <> List.length !runs then
        malformed "trailer counts %d runs, stream carries %d" count
          (List.length !runs);
      let actual = fnv1a s ~pos:body_start ~len:body_len in
      if sum <> actual then malformed "checksum mismatch";
      if !pos <> n then malformed "%d trailing bytes after trailer" (n - !pos);
      fin := true
    | c -> malformed "unknown record tag %C at byte %d" c !pos
  done;
  List.rev !runs

(* Total over arbitrary input: [Malformed] carries the diagnosis; any
   other exception is a decoder bug, reported rather than re-raised so
   a hostile stream can never crash an ingesting process. *)
let decode s =
  try Ok (decode_exn s) with
  | Malformed e -> Error e
  | exn -> Error ("decoder failure: " ^ Printexc.to_string exn)

let write_file ~path runs =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode runs))

let read_file ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> decode s
  | exception Sys_error e -> Error e

let validate s =
  match decode s with
  | Error e -> Error e
  | Ok runs ->
    Ok
      ( List.length runs,
        List.fold_left (fun acc r -> acc + List.length r.snapshots) 0 runs )

let validate_file ~path =
  match read_file ~path with
  | Error e -> Error e
  | Ok runs ->
    Ok
      ( List.length runs,
        List.fold_left (fun acc r -> acc + List.length r.snapshots) 0 runs )
