(** The sharded fleet aggregator.

    Ingests wire-format run streams on a {!Vp_util.Pool} of domains:
    runs are partitioned over [shards] by [run index mod shards], each
    shard folds its runs into per-class profiles in input order, and
    the shard results merge in fixed shard order.  Because
    {!Profile.merge} is associative and commutative with exact integer
    sums, the aggregate is {e byte-identical} for every [shards] and
    [jobs] setting — the determinism contract the whole pipeline
    carries, extended to the fleet layer.

    Classification happens before aggregation: a [classify] function
    maps each snapshot to a phase class (or to nothing — unmatched
    snapshots are counted and dropped).  It must be pure; it runs on
    worker domains. *)

type stats = {
  runs : int;  (** run records ingested *)
  snapshots : int;  (** snapshots ingested (before classification) *)
  classified : int;  (** snapshots that landed in a class *)
  dropped : int;  (** snapshots no class would take *)
  shards : int;
  jobs : int;
}

val aggregate_classes :
  ?shards:int ->
  ?jobs:int ->
  counter_max:int ->
  classify:(Vp_hsd.Snapshot.t -> int option) ->
  Wire.run list ->
  (int * Profile.t) list * stats
(** Per-class aggregation; the result is sorted by class id.  [shards]
    defaults to [8], [jobs] to sequential.  Raises a typed
    [Vp_util.Error] if a run's [counter_max] disagrees with the
    aggregator's — mixed counter geometries must be rejected, not
    silently clamped. *)

val aggregate :
  ?shards:int ->
  ?jobs:int ->
  counter_max:int ->
  Wire.run list ->
  Profile.t * stats
(** Phase-agnostic aggregation: every snapshot in one class. *)
