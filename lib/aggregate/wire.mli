(** [vp-profile-wire/1]: the compact binary wire format for BBB
    snapshot streams.

    A fleet deployment moves profiles, not binaries: each user machine
    serialises its run's snapshot stream and ships it to the
    aggregation service.  The format is deliberately small — LEB128
    varints, delta-coded branch pcs — because a stream is mostly tiny
    integers, and versioned-plus-checksummed because it crosses
    machine boundaries, mirroring the [vp-obs-trace/1] /
    [vp-timeline-trace/1] pattern of a self-identifying header and a
    validator that rejects anything malformed before the pipeline sees
    it.

    Layout: the ASCII header line ["vp-profile-wire/1\n"], then one
    ['R'] record per run ([run_id], [weight], [counter_max], snapshot
    count, then each snapshot as [id], [detected_at], [ended_at],
    branch count and delta-coded [(pc, executed, taken)] entries —
    entries strictly ascending by pc), then one ['E'] trailer carrying
    the run count and an FNV-1a checksum of every body byte before
    it.  All integers are unsigned LEB128. *)

val schema : string
(** ["vp-profile-wire/1"]. *)

type run = {
  run_id : int;  (** stable per-machine identifier *)
  weight : int;  (** merge weight of this run (usually 1) *)
  counter_max : int;  (** cap of the counters in the stream *)
  snapshots : Vp_hsd.Snapshot.t list;
}

val encode : run list -> string
(** Serialise a stream of runs.  Raises a typed [Vp_util.Error] on a
    run that cannot be represented: a negative field, or snapshot
    entries not strictly ascending by pc. *)

val decode : string -> (run list, string) result
(** Parse and fully check a wire image: header, record structure,
    trailer count and checksum, per-snapshot entry ordering and the
    [taken <= executed <= counter_max] counter invariants. *)

val write_file : path:string -> run list -> unit

val read_file : path:string -> (run list, string) result

val validate : string -> (int * int, string) result
(** [Ok (runs, snapshots)] when the image decodes cleanly. *)

val validate_file : path:string -> (int * int, string) result
