(** Step 2 initialisation (Section 3.2.1): superimpose one hot-spot
    snapshot onto recovered CFGs.

    Every block containing a snapshot branch becomes [Hot] with the
    branch's executed count as weight and taken fraction as taken
    probability.  The branch's out-arcs get weights from the taken and
    executed counters and a temperature: [Hot] when the direction
    carries at least [arc_hot_fraction] of the branch's flow {e or}
    more than [hot_arc_weight_threshold] executions, [Cold]
    otherwise. *)

type config = {
  arc_hot_fraction : float;  (** default 0.25 *)
  hot_arc_weight_threshold : int;  (** default 16, the HSD candidate threshold *)
}

val default : config

type stats = {
  marked : int;  (** snapshot entries superimposed *)
  skipped_no_symbol : int;  (** branch pc outside every symbol *)
  skipped_no_block : int;  (** branch pc in no recovered block *)
  skipped_not_terminator : int;  (** pc is not its block's branch *)
}

val no_stats : stats

val mark_with_stats : ?config:config -> Region.t -> stats
(** Superimpose the snapshot; entries that do not map onto the program
    (hardware noise: BBB aliasing, stale or perturbed entries) are
    skipped and counted, never fatal — the pipeline's contract is to
    survive a lossy profile. *)

val mark : ?config:config -> Region.t -> unit
(** {!mark_with_stats} with the counts discarded. *)
