module Cfg = Vp_cfg.Cfg
module Image = Vp_prog.Image

type arc_key = int * int * Cfg.arc_kind

let key_of (a : Cfg.arc) : arc_key = (a.Cfg.src, a.Cfg.dst, a.Cfg.kind)

type mf = {
  cfg : Cfg.t;
  block_temp : Temperature.t array;
  block_weight : int array;
  block_taken_prob : float option array;
  arc_temps : (arc_key, Temperature.t) Hashtbl.t;
  arc_weights : (arc_key, int) Hashtbl.t;
  region_conflicts : int ref;
}

type t = {
  image : Image.t;
  snapshot : Vp_hsd.Snapshot.t;
  mutable order : string list;  (* reversed insertion order *)
  table : (string, mf) Hashtbl.t;
  conflict_count : int ref;
}

let create image snapshot =
  { image; snapshot; order = []; table = Hashtbl.create 16; conflict_count = ref 0 }

let image t = t.image
let snapshot t = t.snapshot

let add_func t name =
  match Hashtbl.find_opt t.table name with
  | Some mf -> mf
  | None ->
    let sym =
      match Image.find_sym t.image name with
      | Some s -> s
      | None -> Vp_util.Error.failf ~stage:"region" ~label:name "add_func: unknown symbol %s" name
    in
    let cfg = Cfg.recover t.image sym in
    let n = Cfg.num_blocks cfg in
    let mf =
      {
        cfg;
        block_temp = Array.make n Temperature.Unknown;
        block_weight = Array.make n 0;
        block_taken_prob = Array.make n None;
        arc_temps = Hashtbl.create 32;
        arc_weights = Hashtbl.create 32;
        region_conflicts = t.conflict_count;
      }
    in
    Hashtbl.replace t.table name mf;
    t.order <- name :: t.order;
    mf

let find_func t name = Hashtbl.find_opt t.table name

let funcs t =
  List.rev_map (fun name -> (name, Hashtbl.find t.table name)) t.order

let cfg mf = mf.cfg

let temp mf b = mf.block_temp.(b)

let refine current proposed conflicts =
  match (current, proposed) with
  | _, Temperature.Unknown -> (current, false)
  | Temperature.Unknown, t -> (t, true)
  | Temperature.Hot, Temperature.Hot | Temperature.Cold, Temperature.Cold ->
    (current, false)
  | Temperature.Hot, Temperature.Cold ->
    incr conflicts;
    (Temperature.Hot, false)
  | Temperature.Cold, Temperature.Hot ->
    incr conflicts;
    (Temperature.Hot, true)

let set_temp mf b proposed =
  let updated, changed = refine mf.block_temp.(b) proposed mf.region_conflicts in
  mf.block_temp.(b) <- updated;
  changed

let force_hot mf b = mf.block_temp.(b) <- Temperature.Hot

let weight mf b = mf.block_weight.(b)

let add_weight mf b w = mf.block_weight.(b) <- mf.block_weight.(b) + w

let taken_prob mf b = mf.block_taken_prob.(b)

let set_taken_prob mf b p = mf.block_taken_prob.(b) <- Some p

let arc_temp mf a =
  Option.value ~default:Temperature.Unknown (Hashtbl.find_opt mf.arc_temps (key_of a))

let set_arc_temp mf a proposed =
  let current = arc_temp mf a in
  let updated, changed = refine current proposed mf.region_conflicts in
  if changed || not (Temperature.equal current updated) then
    Hashtbl.replace mf.arc_temps (key_of a) updated;
  changed

let force_hot_arc mf a = Hashtbl.replace mf.arc_temps (key_of a) Temperature.Hot

let arc_weight mf a =
  Option.value ~default:0 (Hashtbl.find_opt mf.arc_weights (key_of a))

let set_arc_weight mf a w = Hashtbl.replace mf.arc_weights (key_of a) w

let hot_blocks mf =
  List.filter
    (fun b -> Temperature.is_hot mf.block_temp.(b))
    (List.init (Cfg.num_blocks mf.cfg) Fun.id)

let hot_arcs mf =
  List.filter
    (fun (a : Cfg.arc) ->
      Temperature.is_hot (arc_temp mf a)
      && Temperature.is_hot mf.block_temp.(a.Cfg.src)
      && Temperature.is_hot mf.block_temp.(a.Cfg.dst))
    (Cfg.arcs mf.cfg)

let exit_arcs mf =
  List.filter
    (fun (a : Cfg.arc) ->
      Temperature.is_hot mf.block_temp.(a.Cfg.src)
      && not
           (Temperature.is_hot (arc_temp mf a)
           && Temperature.is_hot mf.block_temp.(a.Cfg.dst)))
    (Cfg.arcs mf.cfg)

let hot_call_sites mf =
  List.filter (fun (b, _) -> Temperature.is_hot mf.block_temp.(b)) (Cfg.call_sites mf.cfg)

let selected_instructions t =
  List.fold_left
    (fun acc (_, mf) ->
      List.fold_left (fun acc b -> acc + Cfg.len mf.cfg b) acc (hot_blocks mf))
    0 (funcs t)

let conflicts t = !(t.conflict_count)

let pp fmt t =
  Format.fprintf fmt "@[<v>region for hotspot %d:@," t.snapshot.Vp_hsd.Snapshot.id;
  List.iter
    (fun (name, mf) ->
      Format.fprintf fmt "  %s: %d/%d hot blocks@," name
        (List.length (hot_blocks mf))
        (Cfg.num_blocks mf.cfg))
    (funcs t);
  Format.fprintf fmt "@]"
