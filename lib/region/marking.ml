module Cfg = Vp_cfg.Cfg
module Image = Vp_prog.Image
module Snapshot = Vp_hsd.Snapshot

type config = {
  arc_hot_fraction : float;
  hot_arc_weight_threshold : int;
}

let default = { arc_hot_fraction = 0.25; hot_arc_weight_threshold = 16 }

let classify_direction config ~executed ~weight =
  let fraction =
    if executed = 0 then 0.0 else float_of_int weight /. float_of_int executed
  in
  if fraction >= config.arc_hot_fraction || weight > config.hot_arc_weight_threshold
  then Temperature.Hot
  else Temperature.Cold

let mark_entry config region (e : Snapshot.entry) =
  let image = Region.image region in
  match Image.sym_at image e.Snapshot.pc with
  | None ->
    Vp_util.Error.failf ~stage:"marking" ~pc:e.Snapshot.pc "branch 0x%x outside any symbol" e.Snapshot.pc
  | Some sym ->
    let mf = Region.add_func region sym.Image.name in
    let cfg = Region.cfg mf in
    let b =
      match Cfg.block_at cfg e.Snapshot.pc with
      | Some b -> b
      | None -> Vp_util.Error.failf ~stage:"marking" "branch address not in recovered CFG"
    in
    if Cfg.branch_addr cfg b <> Some e.Snapshot.pc then
      Vp_util.Error.failf ~stage:"marking" ~pc:e.Snapshot.pc
        "0x%x does not terminate block %d" e.Snapshot.pc b;
    let _ = Region.set_temp mf b Temperature.Hot in
    Region.add_weight mf b e.Snapshot.executed;
    Region.set_taken_prob mf b (Snapshot.taken_fraction e);
    List.iter
      (fun (a : Cfg.arc) ->
        let weight =
          match a.Cfg.kind with
          | Cfg.Taken -> e.Snapshot.taken
          | Cfg.Fallthrough -> e.Snapshot.executed - e.Snapshot.taken
        in
        Region.set_arc_weight mf a weight;
        let t = classify_direction config ~executed:e.Snapshot.executed ~weight in
        let _ = Region.set_arc_temp mf a t in
        ())
      (Cfg.succs cfg b)

let mark ?(config = default) region =
  let snapshot = Region.snapshot region in
  List.iter (mark_entry config region) snapshot.Snapshot.branches
