module Cfg = Vp_cfg.Cfg
module Image = Vp_prog.Image
module Snapshot = Vp_hsd.Snapshot

type config = {
  arc_hot_fraction : float;
  hot_arc_weight_threshold : int;
}

let default = { arc_hot_fraction = 0.25; hot_arc_weight_threshold = 16 }

type stats = {
  marked : int;
  skipped_no_symbol : int;
  skipped_no_block : int;
  skipped_not_terminator : int;
}

let no_stats =
  { marked = 0; skipped_no_symbol = 0; skipped_no_block = 0;
    skipped_not_terminator = 0 }

let classify_direction config ~executed ~weight =
  let fraction =
    if executed = 0 then 0.0 else float_of_int weight /. float_of_int executed
  in
  if fraction >= config.arc_hot_fraction || weight > config.hot_arc_weight_threshold
  then Temperature.Hot
  else Temperature.Cold

(* A BBB entry that does not map back onto the program — an address
   outside every symbol, inside no recovered block, or not the block's
   branch — is hardware noise (aliasing, a stale entry, a perturbed
   profile).  The paper's pipeline must survive a lossy profile, so
   such entries are skipped and counted rather than fatal. *)
type outcome = Marked | No_symbol | No_block | Not_terminator

let mark_entry config region (e : Snapshot.entry) =
  let image = Region.image region in
  match Image.sym_at image e.Snapshot.pc with
  | None -> No_symbol
  | Some sym ->
    let mf = Region.add_func region sym.Image.name in
    let cfg = Region.cfg mf in
    (match Cfg.block_at cfg e.Snapshot.pc with
    | None -> No_block
    | Some b ->
      if Cfg.branch_addr cfg b <> Some e.Snapshot.pc then Not_terminator
      else begin
        let _ = Region.set_temp mf b Temperature.Hot in
        Region.add_weight mf b e.Snapshot.executed;
        Region.set_taken_prob mf b (Snapshot.taken_fraction e);
        List.iter
          (fun (a : Cfg.arc) ->
            let weight =
              match a.Cfg.kind with
              | Cfg.Taken -> e.Snapshot.taken
              | Cfg.Fallthrough -> e.Snapshot.executed - e.Snapshot.taken
            in
            Region.set_arc_weight mf a weight;
            let t = classify_direction config ~executed:e.Snapshot.executed ~weight in
            let _ = Region.set_arc_temp mf a t in
            ())
          (Cfg.succs cfg b);
        Marked
      end)

let mark_with_stats ?(config = default) region =
  let snapshot = Region.snapshot region in
  List.fold_left
    (fun acc e ->
      match mark_entry config region e with
      | Marked -> { acc with marked = acc.marked + 1 }
      | No_symbol -> { acc with skipped_no_symbol = acc.skipped_no_symbol + 1 }
      | No_block -> { acc with skipped_no_block = acc.skipped_no_block + 1 }
      | Not_terminator ->
        { acc with skipped_not_terminator = acc.skipped_not_terminator + 1 })
    no_stats snapshot.Snapshot.branches

let mark ?config region = ignore (mark_with_stats ?config region)
