module Instr = Vp_isa.Instr

type sym = { name : string; start : int; len : int }

type t = {
  code : Instr.t array;
  syms : sym list;
  entry : int;
  orig_limit : int;
  data_init : (int * int) list;
  data_break : int;
}

let size t = Array.length t.code

let fetch t addr =
  if addr < 0 || addr >= size t then
    Vp_util.Error.failf ~stage:"image" ~pc:addr "fetch: address 0x%x out of range" addr
  else t.code.(addr)

let in_range t addr = addr >= 0 && addr < size t

let in_package t addr = addr >= t.orig_limit && addr < size t

let sym_at t addr =
  List.find_opt (fun s -> addr >= s.start && addr < s.start + s.len) t.syms

let find_sym t name = List.find_opt (fun s -> s.name = name) t.syms

let functions t = t.syms

let resolved i =
  match Instr.target i with
  | Some (Instr.Label _) -> false
  | Some (Instr.Addr _) | None -> true

let append_many t sections =
  List.iter
    (fun (_, code) ->
      Array.iter
        (fun i ->
          if not (resolved i) then
            Vp_util.Error.failf ~stage:"image" "append: unresolved label in appended code")
        code)
    sections;
  (* One concatenation and one symbol-list extension for the whole
     batch: appending n sections one by one is quadratic in both the
     code array and the symbol list. *)
  let starts_rev, syms_rev, _ =
    List.fold_left
      (fun (starts, syms, pos) (name, code) ->
        ( pos :: starts,
          { name; start = pos; len = Array.length code } :: syms,
          pos + Array.length code ))
      ([], [], size t) sections
  in
  let image =
    {
      t with
      code = Array.concat (t.code :: List.map snd sections);
      syms = t.syms @ List.rev syms_rev;
    }
  in
  (image, List.rev starts_rev)

let append t ~name code =
  match append_many t [ (name, code) ] with
  | image, [ start ] -> (image, start)
  | _ -> assert false

let patch t patches =
  let code = Array.copy t.code in
  List.iter
    (fun (addr, i) ->
      if addr < 0 || addr >= Array.length code then
        Vp_util.Error.failf ~stage:"image" ~pc:addr "patch: address 0x%x out of range" addr;
      code.(addr) <- i)
    patches;
  { t with code }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let n = size t in
  if t.entry < 0 || t.entry >= n then err "entry 0x%x out of range" t.entry
  else
    let rec check_syms last = function
      | [] -> Ok ()
      | s :: rest ->
        if s.start < last then err "symbol %s overlaps previous" s.name
        else if s.start + s.len > n then err "symbol %s exceeds image" s.name
        else check_syms (s.start + s.len) rest
    in
    match check_syms 0 t.syms with
    | Error _ as e -> e
    | Ok () ->
      let bad = ref None in
      Array.iteri
        (fun addr i ->
          if !bad = None then
            match Instr.target i with
            | Some (Instr.Label l) ->
              bad := Some (Printf.sprintf "unresolved label %s at 0x%x" l addr)
            | Some (Instr.Addr a) when a < 0 || a >= n ->
              bad := Some (Printf.sprintf "target 0x%x out of range at 0x%x" a addr)
            | Some (Instr.Addr _) | None -> ())
        t.code;
      (match !bad with Some msg -> Error msg | None -> Ok ())

let static_instruction_count t =
  Array.fold_left (fun acc i -> if i = Instr.Nop then acc else acc + 1) 0 t.code

let pp_listing fmt t =
  List.iter
    (fun s ->
      Format.fprintf fmt "@[<v><%s>:@," s.name;
      for addr = s.start to s.start + s.len - 1 do
        Format.fprintf fmt "  %6x: %a@," addr Instr.pp t.code.(addr)
      done;
      Format.fprintf fmt "@]")
    t.syms
