(** The linked binary image: a flat, address-indexed code array plus a
    symbol table.  This is what the post-link pipeline operates on —
    CFGs are recovered from here, packages are appended here, and the
    emulator fetches from here.

    Addresses are instruction indices (one instruction per address
    unit) starting at 0.  [orig_limit] records where the original
    program ends; everything at or above it was appended by the
    packager, which is how coverage accounting distinguishes package
    execution from original-code execution. *)

type sym = { name : string; start : int; len : int }

type t = {
  code : Vp_isa.Instr.t array;
  syms : sym list;  (** ascending by [start], non-overlapping *)
  entry : int;  (** address where execution starts *)
  orig_limit : int;  (** first address past the original program *)
  data_init : (int * int) list;  (** initial (address, value) memory contents *)
  data_break : int;  (** first data address unused by globals *)
}

val size : t -> int

val fetch : t -> int -> Vp_isa.Instr.t
(** Raises [Invalid_argument] outside [0, size). *)

val in_range : t -> int -> bool

val in_package : t -> int -> bool
(** True when the address belongs to appended (package) code. *)

val sym_at : t -> int -> sym option
(** The symbol whose range contains the address. *)

val find_sym : t -> string -> sym option

val functions : t -> sym list
(** All symbols, ascending. *)

val append : t -> name:string -> Vp_isa.Instr.t array -> t * int
(** Append a code section as a new symbol; returns the image and the
    section's start address.  The code must contain only resolved
    ([Addr]) targets. *)

val append_many : t -> (string * Vp_isa.Instr.t array) list -> t * int list
(** Append a batch of named sections in order, with a single code
    concatenation and symbol-table extension; returns the image and
    each section's start address.  Appending one by one with {!append}
    is quadratic in the batch size. *)

val patch : t -> (int * Vp_isa.Instr.t) list -> t
(** Replace the instructions at the given addresses. *)

val validate : t -> (unit, string) result
(** Check structural soundness: all control targets resolved and in
    range, symbols non-overlapping and covering their code, entry in
    range. *)

val static_instruction_count : t -> int
(** Instructions excluding [Nop] padding — the denominator of the
    paper's code-expansion numbers. *)

val pp_listing : Format.formatter -> t -> unit
(** Disassembly-style listing with symbol headers. *)
