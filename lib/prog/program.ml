module Instr = Vp_isa.Instr

type t = {
  funcs : Func.t list;
  entry : string;
  data_init : (int * int) list;
  data_break : int;
}

let check_unique what names =
  let sorted = List.sort compare names in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  match dup sorted with
  | Some n -> Vp_util.Error.failf ~stage:"program" "duplicate %s %s" what n
  | None -> ()

let v ?(data_init = []) ?(data_break = 16) ~entry funcs =
  check_unique "function" (List.map Func.name funcs);
  let labels =
    List.concat_map (fun f -> List.map Block.label (Func.blocks f)) funcs
  in
  check_unique "label" labels;
  check_unique "label/function name" (labels @ List.map Func.name funcs);
  if not (List.exists (fun f -> Func.name f = entry) funcs) then
    Vp_util.Error.failf ~stage:"program" ~label:entry "entry function %s undefined" entry;
  { funcs; entry; data_init; data_break }

let find_func t name = List.find_opt (fun f -> Func.name f = name) t.funcs

let static_size t = List.fold_left (fun acc f -> acc + Func.size f) 0 t.funcs

let layout t =
  (* First pass: assign addresses to every block label and function. *)
  let table = Hashtbl.create 256 in
  let addr = ref 0 in
  let syms =
    List.map
      (fun f ->
        let start = !addr in
        Hashtbl.replace table (Func.name f) start;
        List.iter
          (fun b ->
            Hashtbl.replace table (Block.label b) !addr;
            addr := !addr + Block.size b)
          (Func.blocks f);
        { Image.name = Func.name f; start; len = !addr - start })
      t.funcs
  in
  let lookup name =
    match Hashtbl.find_opt table name with
    | Some a -> a
    | None -> Vp_util.Error.failf ~stage:"program" ~label:name "layout: undefined label %s" name
  in
  (* Second pass: emit resolved instructions. *)
  let code = Array.make !addr Instr.Nop in
  let pos = ref 0 in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              code.(!pos) <- Instr.resolve lookup i;
              incr pos)
            (Block.body b))
        (Func.blocks f))
    t.funcs;
  {
    Image.code;
    syms;
    entry = lookup t.entry;
    orig_limit = !addr;
    data_init = t.data_init;
    data_break = t.data_break;
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>program (entry %s)@," t.entry;
  List.iter (fun f -> Format.fprintf fmt "%a@," Func.pp f) t.funcs;
  Format.fprintf fmt "@]"
