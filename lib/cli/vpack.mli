(** The [vpack] command-line tool, as one declarative {!Spec.tool}
    table.  The binary under [bin/] is a one-line shim around
    {!main}; the table lives in a library so the test suite can parse
    arguments and render help without spawning a process. *)

val tool : Spec.tool
(** The full command table: list, run, phases, extract, aggregate,
    report, stats, timeline, serve, trace-check, verify, chaos, fuzz,
    diag, asm, disasm, machine. *)

val main : unit -> unit
(** Parse [Sys.argv], dispatch, and exit: 0 success, 2 command-line
    error, 3 pipeline error, 4 verifier rejection (and [serve] epochs
    falling back or failing the oracle), 5 chaos-matrix failure, 6
    fuzz-campaign failure (a generated case crashed or failed an
    oracle). *)
