(* vpack: command-line front end for the Vacuum Packing pipeline.

   Every subcommand is a row of one declarative Spec table; flags
   shared across subcommands ([--backend], [--jobs], [--seeds], the
   workload selectors) are defined exactly once below, so they parse
   and document identically everywhere, and --help/usage text is
   generated from the table.

   Exit codes: 0 success, 2 command-line error (unknown subcommand,
   unknown/ambiguous workload, bad flags), 3 pipeline error, 4
   verifier rejection (verify; serve on a fallback or oracle failure),
   5 chaos-matrix failure, 6 fuzz-campaign failure. *)

module Registry = Vp_workloads.Registry
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator
module Session = Vacuum.Session
module Config = Vacuum.Config

(* Accept the exact Table 1 bench name or any unambiguous suffix:
   "134.perl" and "perl" both name 134.perl. *)
let resolve_bench bench =
  if List.mem bench Registry.benches then Some bench
  else
    let matches name =
      match String.index_opt name '.' with
      | Some i -> String.sub name (i + 1) (String.length name - i - 1) = bench
      | None -> false
    in
    match List.filter matches Registry.benches with
    | [ name ] -> Some name
    | [] -> None
    | _ :: _ :: _ as multi ->
      (* A usage error, not a pipeline failure: raise on the typed
         channel with the [cli] stage so the top level can print usage
         and exit 2, matching the parser's own errors. *)
      Vacuum.Error.failf ~stage:"cli" "ambiguous workload %s (matches %s)"
        bench
        (String.concat ", " multi)

let find_workload spec =
  let bench, input =
    match String.index_opt spec '/' with
    | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> (spec, "A")
  in
  match
    Option.bind (resolve_bench bench) (fun bench -> Registry.find ~bench ~input)
  with
  | Some w -> w
  | None ->
    Vacuum.Error.failf ~stage:"cli" "unknown workload %s (try `vpack list`)"
      spec

(* ---- the shared flag definitions ---- *)

let workload_flag =
  Spec.flag ~kind:Spec.Value ~docv:"NAME" ~required:true
    ~doc:"Workload as BENCH or BENCH/INPUT (see `vpack list`)."
    [ "w"; "workload" ]

let workloads_flag =
  Spec.flag ~kind:Spec.Value ~docv:"NAME" ~required:true ~repeatable:true
    ~doc:"Workload as BENCH or BENCH/INPUT (see `vpack list`)."
    [ "w"; "workload" ]

let workload_pos =
  {
    Spec.pos_docv = "WORKLOAD";
    pos_doc = "Workload as BENCH or BENCH/INPUT.";
    pos_required = true;
  }

let backend_flag =
  Spec.flag ~kind:Spec.Value ~docv:"BACKEND" ~default:"decoded"
    ~doc:
      "Functional emulator backend: reference, decoded or compiled.  All \
       backends produce bit-identical results; the choice only affects \
       simulation speed."
    [ "backend" ]

let jobs_flag =
  Spec.flag ~kind:Spec.Value ~docv:"N" ~default:"0" ~check:Spec.check_int
    ~doc:
      "Evaluate up to N workloads in parallel on separate domains (0 = the \
       machine's recommended domain count)."
    [ "j"; "jobs" ]

let seeds_flag =
  Spec.flag ~kind:Spec.Value ~docv:"N" ~default:"5" ~check:Spec.check_int
    ~doc:"Seeds per fault plan." [ "seeds" ]

let no_inference_flag =
  Spec.flag ~kind:Spec.Bool ~doc:"Disable hot-block inference."
    [ "no-inference" ]

let no_linking_flag =
  Spec.flag ~kind:Spec.Bool ~doc:"Disable package linking." [ "no-linking" ]

let timing_flag =
  Spec.flag ~kind:Spec.Bool ~doc:"Run the cycle-level timing model."
    [ "timing" ]

let trace_flag doc = Spec.flag ~kind:Spec.Value ~docv:"FILE" ~doc [ "trace" ]

let obs_trace_flag =
  trace_flag
    "Record pipeline spans and counters and write a JSON-lines trace (schema \
     vp-obs-trace/1, one object per line) to FILE."

let ingest_trace_flag =
  Spec.flag ~kind:Spec.Value ~docv:"FILE"
    ~doc:
      "Ingest a vp-retire-trace/1 retired-branch trace instead of running \
       the emulator: the recorded stream drives the detector, phase \
       filtering and packaging exactly as a live run's would."
    [ "ingest-trace" ]

let record_trace_flag =
  Spec.flag ~kind:Spec.Value ~docv:"FILE"
    ~doc:
      "Record the run's retired-branch stream to FILE (schema \
       vp-retire-trace/1), for later --ingest-trace or trace-check."
    [ "record-trace" ]

(* Profile through the emulator, or — under --ingest-trace — from the
   recorded stream, the emulator-free path.  Trace problems are
   pipeline errors (exit 3), not usage errors: the command line was
   fine, the file was not. *)
let profile_or_ingest m ~config img =
  match Spec.value m "ingest-trace" with
  | None -> Vacuum.Driver.profile ~config img
  | Some path -> (
    match Vp_gen.Trace.read_file ~path with
    | Error e -> Vacuum.Error.failf ~stage:"trace" "%s: %s" path e
    | Ok t ->
      let p =
        Vacuum.Driver.profile_of_events ~config
          ~instructions:t.Vp_gen.Trace.instructions img
          (Vp_gen.Trace.events t)
      in
      List.iter
        (fun w -> Format.eprintf "warning: %a@." Vacuum.Error.pp w)
        p.Vacuum.Driver.warnings;
      p)

let resolve_jobs m =
  let n = Spec.int_value m "jobs" ~default:0 in
  if n <= 0 then Vp_util.Pool.default_jobs () else n

let resolve_backend m =
  let name = Option.value ~default:"decoded" (Spec.value m "backend") in
  match Emulator.backend_of_string name with
  | Some b -> b
  | None ->
    Vacuum.Error.failf ~stage:"cli"
      "unknown backend %s (expected reference, decoded or compiled)" name

let config_of m =
  Config.experiment
    ~inference:(not (Spec.flag_set m "no-inference"))
    ~linking:(not (Spec.flag_set m "no-linking"))

let workload_of m = find_workload (Option.get (Spec.value m "workload"))
let workload_of_pos m = find_workload (List.hd (Spec.positional m))

(* --- list --- *)

let list_cmd =
  Spec.cmd ~name:"list" ~doc:"List the Table 1 workload inventory." ~flags:[]
    (fun _ ->
      let t =
        Vp_util.Tabular.create
          ~header:
            [
              ("workload", Vp_util.Tabular.Left);
              ("static instrs", Vp_util.Tabular.Right);
              ("description", Vp_util.Tabular.Left);
            ]
      in
      List.iter
        (fun w ->
          let p = w.Registry.program () in
          Vp_util.Tabular.add_row t
            [
              Registry.name w;
              string_of_int (Program.static_size p);
              w.Registry.description;
            ])
        Registry.all;
      Vp_util.Tabular.print t)

(* --- run --- *)

let run_cmd =
  Spec.cmd ~name:"run" ~doc:"Execute a workload on the functional emulator."
    ~flags:[ workload_flag; backend_flag; record_trace_flag ] (fun m ->
      let backend = resolve_backend m in
      let w = workload_of m in
      let img = Program.layout (w.Registry.program ()) in
      let o =
        match Spec.value m "record-trace" with
        | None -> Emulator.run_backend ~backend img
        | Some path ->
          let t, o = Vp_gen.Trace.record ~backend img in
          Vp_gen.Trace.write_file ~path t;
          Printf.printf "trace: %d events -> %s\n" (Vp_gen.Trace.length t) path;
          o
      in
      Printf.printf "%s: %d instructions, %d conditional branches, result %d%s\n"
        (Registry.name w) o.Emulator.instructions o.Emulator.cond_branches
        o.Emulator.result
        (if o.Emulator.halted then "" else " (fuel exhausted)"))

(* --- phases --- *)

let phases_cmd =
  let ipc_flag =
    Spec.flag ~kind:Spec.Bool
      ~doc:"Also report per-phase IPC on the EPIC model." [ "ipc" ]
  in
  Spec.cmd ~name:"phases"
    ~doc:"Profile a workload and show its detected phases."
    ~flags:[ workload_flag; ipc_flag; backend_flag; ingest_trace_flag ]
    (fun m ->
      let backend = resolve_backend m in
      let w = workload_of m in
      let img = Program.layout (w.Registry.program ()) in
      let profile =
        profile_or_ingest m
          ~config:(Config.with_backend backend Config.default)
          img
      in
      Printf.printf "%s: %d raw detections, %d recordings\n" (Registry.name w)
        profile.Vacuum.Driver.detections
        (List.length profile.Vacuum.Driver.snapshots);
      Format.printf "%a@." Vp_phase.Phase_log.pp profile.Vacuum.Driver.log;
      let timeline = Vp_phase.Phase_log.timeline profile.Vacuum.Driver.log in
      List.iter
        (fun (s, e, p) -> Printf.printf "  [%9d, %9d) phase %d\n" s e p)
        timeline;
      if Spec.flag_set m "ipc" then begin
        Printf.printf "\nper-phase timing (phase -1 = detector warm-up):\n";
        List.iter
          (fun (ps : Vp_cpu.Pipeline.phase_stats) ->
            Printf.printf
              "  phase %2d: %9d branches, %10d instrs, %10d cycles, IPC %.3f\n"
              ps.Vp_cpu.Pipeline.phase ps.Vp_cpu.Pipeline.branches
              ps.Vp_cpu.Pipeline.seg_instructions ps.Vp_cpu.Pipeline.seg_cycles
              ps.Vp_cpu.Pipeline.seg_ipc)
          (Vp_cpu.Pipeline.simulate_phases ~backend ~timeline img)
      end)

(* --- extract --- *)

let extract_cmd =
  Spec.cmd ~name:"extract"
    ~doc:"Run region identification and package extraction."
    ~flags:
      [
        workload_flag; no_inference_flag; no_linking_flag; backend_flag;
        ingest_trace_flag;
      ]
    (fun m ->
      let backend = resolve_backend m in
      let w = workload_of m in
      let img = Program.layout (w.Registry.program ()) in
      let config = Config.with_backend backend (config_of m) in
      let r =
        Vacuum.Driver.rewrite_of_profile ~config
          (profile_or_ingest m ~config img)
      in
      List.iter
        (fun (info : Vacuum.Driver.region_info) ->
          Printf.printf
            "phase %d: %d functions, %d hot blocks, %d instructions selected\n"
            info.Vacuum.Driver.phase.Vp_phase.Phase_log.id
            info.Vacuum.Driver.stats.Vp_region.Identify.functions
            info.Vacuum.Driver.stats.Vp_region.Identify.hot_blocks
            info.Vacuum.Driver.stats.Vp_region.Identify.selected_instructions)
        r.Vacuum.Driver.regions;
      List.iter
        (fun p ->
          Printf.printf
            "package %s: root %s, %d blocks, %d entries, %d branch sites\n"
            p.Vp_package.Pkg.id p.Vp_package.Pkg.root
            (List.length p.Vp_package.Pkg.blocks)
            (List.length p.Vp_package.Pkg.entries)
            (Vp_package.Pkg.branch_count p))
        r.Vacuum.Driver.packages;
      Printf.printf "emitted %d package instructions, %d launch points\n"
        r.Vacuum.Driver.emitted.Vp_package.Emit.package_instructions
        (List.length r.Vacuum.Driver.emitted.Vp_package.Emit.launch_patches))

(* --- aggregate --- *)

let aggregate_cmd =
  let runs_flag =
    Spec.flag ~kind:Spec.Value ~docv:"N" ~default:"256" ~check:Spec.check_int
      ~doc:"Emulate N user-machine runs (ignored with --ingest)." [ "runs" ]
  in
  let shards_flag =
    Spec.flag ~kind:Spec.Value ~docv:"N" ~default:"8" ~check:Spec.check_int
      ~doc:"Partition the fleet over N aggregation shards." [ "shards" ]
  in
  let seed_flag =
    Spec.flag ~kind:Spec.Value ~docv:"S" ~default:"42" ~check:Spec.check_int
      ~doc:"Root seed of the per-machine noise." [ "seed" ]
  in
  let wire_flag =
    Spec.flag ~kind:Spec.Value ~docv:"FILE"
      ~doc:"Also write the fleet's vp-profile-wire/1 stream to FILE."
      [ "wire" ]
  in
  let ingest_flag =
    Spec.flag ~kind:Spec.Value ~docv:"FILE" ~repeatable:true
      ~doc:
        "Ingest runs from this vp-profile-wire/1 file instead of emulating \
         them."
      [ "ingest" ]
  in
  Spec.cmd ~name:"aggregate"
    ~doc:
      "Aggregate a fleet of per-machine profile streams (emulated, or \
       ingested from vp-profile-wire/1 files) into one consensus profile and \
       feed it through the packaging pipeline.  Stdout is byte-identical for \
       every --shards/--jobs value."
    ~positional:workload_pos
    ~exits:
      [
        (0, "success");
        (2, "command-line error");
        (3, "pipeline or wire-format error");
      ]
    ~flags:
      [
        runs_flag; shards_flag; seed_flag; jobs_flag; wire_flag; ingest_flag;
        backend_flag;
      ]
    (fun m ->
      let backend = resolve_backend m in
      let w = workload_of_pos m in
      let img = Program.layout (w.Registry.program ()) in
      let config = Config.with_backend backend Config.default in
      let base = Vacuum.Driver.profile ~config img in
      let ingest = Spec.values m "ingest" in
      let wire_runs =
        if ingest <> [] then
          List.concat_map
            (fun path ->
              match Vp_aggregate.Wire.read_file ~path with
              | Ok rs -> rs
              | Error e -> Vacuum.Error.failf ~stage:"wire" "%s: %s" path e)
            ingest
        else
          Vacuum.Fleet.emulate_runs ~config
            ~seed:(Spec.int_value m "seed" ~default:42)
            ~runs:(Spec.int_value m "runs" ~default:256)
            base
      in
      (match Spec.value m "wire" with
      | None -> ()
      | Some path ->
        Vp_aggregate.Wire.write_file ~path wire_runs;
        Printf.eprintf "wire: %d runs -> %s\n" (List.length wire_runs) path);
      let t0 = Unix.gettimeofday () in
      let fleet =
        Vacuum.Fleet.aggregate ~config
          ~shards:(Spec.int_value m "shards" ~default:8)
          ~jobs:(resolve_jobs m) ~base wire_runs
      in
      let dt = Unix.gettimeofday () -. t0 in
      let stats = fleet.Vacuum.Fleet.stats in
      (* Everything on stdout is a pure function of the ingested fleet:
         CI asserts shard/job invariance by diffing stdout across
         --shards and --jobs values.  Sharding geometry and throughput
         go to stderr. *)
      Printf.printf "%s: %d runs, %d snapshots (%d classified, %d dropped)\n"
        (Registry.name w) stats.Vp_aggregate.Shard.runs
        stats.Vp_aggregate.Shard.snapshots stats.Vp_aggregate.Shard.classified
        stats.Vp_aggregate.Shard.dropped;
      List.iter
        (fun (id, (p : Vp_aggregate.Profile.t)) ->
          Printf.printf
            "  class %d: %d runs, %d snapshots, %d branches, est weight %d\n"
            id p.Vp_aggregate.Profile.runs p.Vp_aggregate.Profile.snapshots
            (Vp_aggregate.Profile.branch_count p)
            (Vp_aggregate.Profile.total_estimated p))
        fleet.Vacuum.Fleet.classes;
      Printf.printf "aggregate digest %016x\n" fleet.Vacuum.Fleet.digest;
      let r =
        Vacuum.Driver.rewrite_of_profile ~config
          (Vacuum.Fleet.profile_of_fleet ~config ~base fleet)
      in
      Printf.printf "consensus rewrite: %d packages, %d package instructions\n"
        (List.length r.Vacuum.Driver.packages)
        r.Vacuum.Driver.emitted.Vp_package.Emit.package_instructions;
      Printf.eprintf
        "aggregated over %d shards, %d jobs: %.0f snapshots/sec (%.3f s)\n"
        stats.Vp_aggregate.Shard.shards stats.Vp_aggregate.Shard.jobs
        (float_of_int stats.Vp_aggregate.Shard.snapshots /. Float.max dt 1e-9)
        dt)

(* --- report --- *)

let report_cmd =
  Spec.cmd ~name:"report"
    ~doc:
      "Full evaluation of one or more workloads (coverage, expansion, \
       optional timing), in parallel under --jobs."
    ~flags:
      [
        workloads_flag; no_inference_flag; no_linking_flag; timing_flag;
        jobs_flag; obs_trace_flag; backend_flag;
      ]
    (fun m ->
      let backend = resolve_backend m in
      let ws = List.map find_workload (Spec.values m "workload") in
      let trace = Spec.value m "trace" in
      let obs =
        match trace with Some _ -> Vp_obs.create () | None -> Vp_obs.disabled
      in
      let config =
        Config.with_backend backend (Config.with_obs obs (config_of m))
      in
      let timing = Spec.flag_set m "timing" in
      (* Each evaluation is an isolated profile/rewrite/simulate chain;
         run them on a domain pool and print in request order. *)
      let reports =
        Vp_util.Pool.map ~jobs:(resolve_jobs m)
          (fun w ->
            let img = Program.layout (w.Registry.program ()) in
            Vacuum.Report.evaluate ~config ~timing ~name:(Registry.name w) img)
          ws
      in
      List.iter
        (fun report -> Format.printf "%a@." Vacuum.Report.pp report)
        reports;
      match trace with
      | None -> ()
      | Some path ->
        Vp_obs.Sink.write_trace obs ~path;
        Printf.printf "trace: %d spans, %d counters -> %s\n"
          (List.length (Vp_obs.Sink.spans obs))
          (List.length (Vp_obs.Sink.counters obs))
          path)

(* --- stats --- *)

let stats_cmd =
  let metrics_flag =
    Spec.flag ~kind:Spec.Bool
      ~doc:
        "Also enable the metrics registry and print its one-shot OpenMetrics \
         snapshot (volatile section included)."
      [ "metrics" ]
  in
  Spec.cmd ~name:"stats"
    ~doc:
      "Evaluate one workload with the observability recorder enabled and \
       print the effective configuration plus per-stage span and counter \
       tables."
    ~flags:
      [
        workload_flag; no_inference_flag; no_linking_flag; timing_flag;
        obs_trace_flag; metrics_flag; backend_flag;
      ]
    (fun m ->
      let backend = resolve_backend m in
      let w = workload_of m in
      let obs = Vp_obs.create () in
      let metrics =
        if Spec.flag_set m "metrics" then Vp_metrics.create ()
        else Vp_metrics.disabled
      in
      let config =
        Config.with_backend backend
          (Config.with_obs obs
             (Config.with_metrics metrics (config_of m)))
      in
      let img = Program.layout (w.Registry.program ()) in
      let report =
        Vacuum.Report.evaluate ~config
          ~timing:(Spec.flag_set m "timing")
          ~name:(Registry.name w) img
      in
      Format.printf "%a@." Vacuum.Report.pp report;
      Printf.printf "\neffective configuration (%s):\n" (Registry.name w);
      Format.printf "%a@." Config.pp config;
      Printf.printf "\npipeline spans (%s):\n" (Registry.name w);
      Vp_util.Tabular.print (Vp_obs.Sink.span_table obs);
      Printf.printf "\npipeline counters:\n";
      Vp_util.Tabular.print (Vp_obs.Sink.counter_table obs);
      (match Vp_obs.Sink.dropped_spans obs with
      | 0 -> ()
      | n -> Printf.printf "(%d spans dropped to ring wrap-around)\n" n);
      if Vp_metrics.enabled metrics then begin
        Printf.printf "\nmetrics snapshot:\n";
        print_string (Vp_metrics.Snapshot.render ~volatile:true metrics)
      end;
      match Spec.value m "trace" with
      | None -> ()
      | Some path -> Vp_obs.Sink.write_trace obs ~path)

(* --- timeline --- *)

let timeline_cmd =
  let interval_flag =
    Spec.flag ~kind:Spec.Value ~docv:"N"
      ~default:(string_of_int Vp_telemetry.default_interval)
      ~check:Spec.check_int ~doc:"Sampling interval in retired instructions."
      [ "interval" ]
  in
  let width_flag =
    Spec.flag ~kind:Spec.Value ~docv:"COLS" ~default:"72"
      ~check:Spec.check_int ~doc:"Render width." [ "width" ]
  in
  let tl_trace_flag =
    trace_flag
      "Also write the merged vp-timeline-trace/1 JSON-lines trace (profile + \
       rewritten-run + timing timelines) to FILE."
  in
  Spec.cmd ~name:"timeline"
    ~doc:
      "Render a workload's interval timeline: detector state and phase \
       extents of the profiling run, package residency lanes of the \
       rewritten run, and (with --timing) timing-model series."
    ~positional:workload_pos
    ~flags:
      [
        interval_flag; width_flag; timing_flag; no_inference_flag;
        no_linking_flag; tl_trace_flag; backend_flag;
      ]
    (fun m ->
      let backend = resolve_backend m in
      let w = workload_of_pos m in
      let interval =
        Spec.int_value m "interval" ~default:Vp_telemetry.default_interval
      in
      let width = Spec.int_value m "width" ~default:72 in
      let img = Program.layout (w.Registry.program ()) in
      let config =
        Config.with_backend backend
          (Config.with_telemetry (Vp_telemetry.on ~interval ()) (config_of m))
      in
      let profile = Vacuum.Driver.profile ~config img in
      let tl = profile.Vacuum.Driver.timeline in
      let series name =
        Option.value ~default:[||] (Vp_telemetry.Series.find tl name)
      in
      Printf.printf "%s: %d instructions, %d intervals of %d\n"
        (Registry.name w) profile.Vacuum.Driver.outcome.Emulator.instructions
        (Vp_telemetry.intervals tl) interval;
      let bar name values =
        Printf.printf "%-14s|%s|\n" name
          (Vp_telemetry.Render.sparkline ~width values)
      in
      Printf.printf "\nprofiling run (detector state per interval):\n";
      bar "hdc" (series "profile.hdc");
      bar "bbb occupancy" (series "profile.bbb_occupancy");
      bar "branches" (series "profile.branches");
      List.iter
        (fun kind ->
          Printf.printf "%-14s%d events\n" kind
            (Vp_telemetry.Event.count tl ~kind))
        [ "detect"; "record"; "rearm" ];
      (* Phase extents: map the phase log's branch-index spans onto the
         interval axis through the cumulative branch series. *)
      let branches = series "profile.branches" in
      let cum = Array.make (Array.length branches) 0 in
      let acc = ref 0 in
      Array.iteri
        (fun i b ->
          acc := !acc + b;
          cum.(i) <- !acc)
        branches;
      let extents = Vp_phase.Phase_log.timeline profile.Vacuum.Driver.log in
      Printf.printf "\nphase extents:\n";
      List.iter
        (fun (id, row) -> Printf.printf "phase %-8d|%s|\n" id row)
        (Vp_telemetry.Render.extent_rows ~width ~cum extents);
      (* Rewrite, then attribute the rewritten run's retirement stream
         to original code vs. each emitted package. *)
      let r = Vacuum.Driver.rewrite_of_profile ~config profile in
      let cov = Vacuum.Coverage.measure ~config r in
      let res = cov.Vacuum.Coverage.residency in
      let total =
        Option.value ~default:[||]
          (Vp_telemetry.Series.find res "run.instructions")
      in
      Printf.printf
        "\nrewritten run residency (coverage %.1f%%, %d launches, %d side \
         exits):\n"
        cov.Vacuum.Coverage.coverage_pct
        (Vp_telemetry.Event.count res ~kind:"launch")
        (Vp_telemetry.Event.count res ~kind:"side_exit");
      List.iter
        (fun name ->
          match Vp_telemetry.Series.find res name with
          | Some part when name <> "run.instructions" ->
            let label =
              String.sub name 4 (String.length name - 4 - 13)
              (* strip "run." and ".instructions" *)
            in
            let share =
              Vp_util.Stats.pct
                (Array.fold_left ( + ) 0 part)
                (Array.fold_left ( + ) 0 total)
            in
            Printf.printf "%-14s|%s| %5.1f%%\n"
              (if String.length label > 14 then String.sub label 0 14
               else label)
              (Vp_telemetry.Render.lane ~width ~total part)
              share
          | _ -> ())
        (Vp_telemetry.Series.names res);
      let timelines = ref [ tl; res ] in
      if Spec.flag_set m "timing" then begin
        let tt = Vp_telemetry.create (Config.telemetry config) in
        let stats =
          Vp_cpu.Pipeline.simulate ~config:(Config.cpu config)
            ~backend:(Config.backend config) ~fuel:(Config.fuel config)
            ~mem_words:(Config.mem_words config) ~telemetry:tt
            (Vacuum.Driver.rewritten_image r)
        in
        timelines := !timelines @ [ tt ];
        let tseries name =
          Option.value ~default:[||] (Vp_telemetry.Series.find tt name)
        in
        Printf.printf "\ntiming model on the rewritten binary (IPC %.3f):\n"
          stats.Vp_cpu.Pipeline.ipc;
        Printf.printf "%-14s|%s|\n" "cycles"
          (Vp_telemetry.Render.sparkline ~width (tseries "timing.cycles"));
        Printf.printf "%-14s|%s|\n" "icache miss"
          (Vp_telemetry.Render.sparkline ~width
             (tseries "timing.icache_misses"));
        Printf.printf "%-14s|%s|\n" "dcache miss"
          (Vp_telemetry.Render.sparkline ~width
             (tseries "timing.dcache_misses"));
        Printf.printf "%-14s|%s|\n" "mispredicts"
          (Vp_telemetry.Render.sparkline ~width (tseries "timing.mispredicts"));
        Printf.printf "%-14s|%s|\n" "fetch stalls"
          (Vp_telemetry.Render.sparkline ~width (tseries "timing.fetch_stalls"))
      end;
      match Spec.value m "trace" with
      | None -> ()
      | Some path ->
        Vp_telemetry.Sink.write_trace ~path !timelines;
        Printf.printf "\ntrace: %d timelines -> %s\n"
          (List.length !timelines)
          path)

(* --- serve --- *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '-')
    name

let serve_cmd =
  let epochs_flag =
    Spec.flag ~kind:Spec.Value ~docv:"N"
      ~default:(string_of_int Config.default_session.Config.epochs)
      ~check:Spec.check_int ~doc:"Number of re-optimization epochs to run."
      [ "epochs" ]
  in
  let epoch_fuel_flag =
    Spec.flag ~kind:Spec.Value ~docv:"N" ~default:"0" ~check:Spec.check_int
      ~doc:
        "Instructions per epoch (0 = a clean run's length divided by \
         --epochs)."
      [ "epoch-fuel" ]
  in
  let cache_pct_flag =
    Spec.flag ~kind:Spec.Value ~docv:"PCT"
      ~default:
        (Printf.sprintf "%g" Config.default_session.Config.cache_pct)
      ~check:Spec.check_float
      ~doc:
        "Package-cache budget as a percentage of the original's static size \
         (the Table 3 expansion budget); least-resident entries are evicted \
         beyond it."
      [ "cache-pct" ]
  in
  let drift_flag =
    Spec.flag ~kind:Spec.Value ~docv:"T"
      ~default:
        (Printf.sprintf "%g" Config.default_session.Config.drift_threshold)
      ~check:Spec.check_float
      ~doc:
        "Similarity threshold below which a detected phase counts as drift \
         and is packaged anew."
      [ "drift" ]
  in
  let grace_flag =
    Spec.flag ~kind:Spec.Value ~docv:"N"
      ~default:(string_of_int Config.default_session.Config.patch_grace)
      ~check:Spec.check_int
      ~doc:
        "Extra instructions an epoch may run while seeking a quiescent \
         launch point before the swap is deferred."
      [ "grace" ]
  in
  let no_oracle_flag =
    Spec.flag ~kind:Spec.Bool
      ~doc:
        "Skip the per-epoch differential oracle (verifier-only gating of \
         activations)."
      [ "no-oracle" ]
  in
  let trace_dir_flag =
    Spec.flag ~kind:Spec.Value ~docv:"DIR"
      ~doc:
        "Write one vp-timeline-trace/1 file per workload to DIR \
         (session-WORKLOAD.jsonl), every epoch's series and events tagged \
         with its epoch-K run label."
      [ "trace-dir" ]
  in
  let interval_flag =
    Spec.flag ~kind:Spec.Value ~docv:"N"
      ~default:(string_of_int Vp_telemetry.default_interval)
      ~check:Spec.check_int
      ~doc:"Telemetry sampling interval for --trace-dir, in retired \
            instructions."
      [ "interval" ]
  in
  let metrics_file_flag =
    Spec.flag ~kind:Spec.Value ~docv:"FILE"
      ~doc:
        "Rewrite an OpenMetrics snapshot (schema vp-metrics-snapshot/1) of \
         the stable metric registry to FILE after every epoch — a \
         scrape-able live view, byte-identical for every --jobs value and \
         backend."
      [ "metrics" ]
  in
  let perfetto_flag =
    Spec.flag ~kind:Spec.Value ~docv:"FILE"
      ~doc:
        "Write a Chrome trace-event / Perfetto JSON timeline (schema \
         vp-perfetto-trace/1) to FILE: pipeline spans on the driver lane, \
         per-epoch session slices on one lane per workload."
      [ "perfetto" ]
  in
  let flight_dir_flag =
    Spec.flag ~kind:Spec.Value ~docv:"DIR"
      ~doc:
        "Flight recorder: on a fallback to the original image, a verifier \
         rejection or an oracle failure, dump the metric registry with its \
         recent mark ring (plus the obs trace, if recording) to DIR."
      [ "flight-dir" ]
  in
  Spec.cmd ~name:"serve"
    ~doc:
      "Run the online re-optimization loop on one or more workloads: \
       profile, package, hot-patch the running image at a verified safe \
       launch point, keep profiling the rewritten image, and re-package on \
       phase drift — the package cache bounded by --cache-pct.  Stdout is \
       byte-identical for every --jobs value and backend."
    ~exits:
      [
        (0, "every epoch verifier-clean and oracle-clean");
        (2, "command-line error");
        (3, "pipeline error");
        (4, "an epoch fell back to the original image or failed the oracle");
      ]
    ~flags:
      [
        workloads_flag; epochs_flag; epoch_fuel_flag; cache_pct_flag;
        drift_flag; grace_flag; no_oracle_flag; trace_dir_flag; interval_flag;
        metrics_file_flag; perfetto_flag; flight_dir_flag; jobs_flag;
        backend_flag;
      ]
    (fun m ->
      let backend = resolve_backend m in
      let ws = List.map find_workload (Spec.values m "workload") in
      let epochs =
        Spec.int_value m "epochs"
          ~default:Config.default_session.Config.epochs
      in
      let trace_dir = Spec.value m "trace-dir" in
      let metrics_path = Spec.value m "metrics" in
      let perfetto_path = Spec.value m "perfetto" in
      let flight_dir = Spec.value m "flight-dir" in
      let metrics =
        match (metrics_path, flight_dir) with
        | None, None -> Vp_metrics.disabled
        | _ -> Vp_metrics.create ?flight_dir ()
      in
      let obs =
        match perfetto_path with
        | Some _ -> Vp_obs.create ()
        | None -> Vp_obs.disabled
      in
      let config =
        Config.default
        |> Config.with_backend backend
        |> Config.map_session (fun _ ->
               {
                 Config.epochs;
                 epoch_fuel = Spec.int_value m "epoch-fuel" ~default:0;
                 cache_pct =
                   Spec.float_value m "cache-pct"
                     ~default:Config.default_session.Config.cache_pct;
                 drift_threshold =
                   Spec.float_value m "drift"
                     ~default:Config.default_session.Config.drift_threshold;
                 patch_grace =
                   Spec.int_value m "grace"
                     ~default:Config.default_session.Config.patch_grace;
                 oracle = not (Spec.flag_set m "no-oracle");
               })
        |> Config.with_metrics metrics
        |> Config.with_obs obs
        |> fun c ->
        match trace_dir with
        | None -> c
        | Some _ ->
          Config.with_telemetry
            (Vp_telemetry.on
               ~interval:
                 (Spec.int_value m "interval"
                    ~default:Vp_telemetry.default_interval)
               ())
            c
      in
      (* One session per workload, stepped in lock-step epoch rounds on
         the domain pool — equivalent to [Session.run] per workload
         (resume is a pinned contract) but lets --metrics publish a
         fleet-wide snapshot after every epoch.  Reports print in
         request order, so stdout is independent of the schedule. *)
      let jobs = resolve_jobs m in
      let sessions =
        List.mapi
          (fun i w ->
            (i, w, Session.create ~config (Program.layout (w.Registry.program ()))))
          ws
      in
      let perfetto_on = perfetto_path <> None in
      let ev_lock = Mutex.create () in
      let epoch_events = ref [] in
      for epoch = 0 to epochs - 1 do
        ignore
          (Vp_util.Pool.map ~jobs
             ?hooks:(Vp_metrics.Sched.hooks metrics)
             (fun (i, _w, s) ->
               if not (Session.halted s) then begin
                 let t0 = if perfetto_on then Unix.gettimeofday () else 0.0 in
                 ignore (Session.step s);
                 if perfetto_on then begin
                   let dur = Unix.gettimeofday () -. t0 in
                   Mutex.lock ev_lock;
                   epoch_events := (i, epoch, t0, dur) :: !epoch_events;
                   Mutex.unlock ev_lock
                 end
               end)
             sessions);
        match metrics_path with
        | Some path -> Vp_metrics.Snapshot.write metrics ~path
        | None -> ()
      done;
      let results = List.map (fun (_, w, s) -> (w, Session.report s)) sessions in
      let bad = ref false in
      List.iter
        (fun (w, (r : Session.report)) ->
          Printf.printf "%s: config %s\n" (Registry.name w)
            (Config.to_json config);
          Format.printf "%a@." Session.pp_report r;
          List.iter
            (fun (e : Session.epoch_report) ->
              if e.Session.fallback || e.Session.oracle_ok = Some false then
                bad := true)
            r.Session.epochs;
          if r.Session.equivalent = Some false then bad := true;
          match trace_dir with
          | None -> ()
          | Some dir ->
            let path =
              Filename.concat dir
                (Printf.sprintf "session-%s.jsonl" (sanitize (Registry.name w)))
            in
            Vp_telemetry.Sink.write_trace ~path
              (List.map
                 (fun (e : Session.epoch_report) -> e.Session.timeline)
                 r.Session.epochs);
            Printf.printf "trace: %d epochs -> %s\n"
              (List.length r.Session.epochs)
              path)
        results;
      (* Export reports go to stderr: event counts and paths are stable
         but wall-clock contents are not, and stdout is the artifact CI
         diffs across --jobs. *)
      (match metrics_path with
      | Some path ->
        Vp_metrics.Snapshot.write metrics ~path;
        Printf.eprintf "metrics -> %s\n%!" path
      | None -> ());
      (match perfetto_path with
      | Some path ->
        let session_events =
          List.rev_map
            (fun (i, epoch, t0, dur) ->
              {
                Vp_metrics.Perfetto.name = Printf.sprintf "epoch-%d" epoch;
                cat = "session";
                pid = 3;
                tid = i;
                ts_us = t0 *. 1e6;
                dur_us = dur *. 1e6;
              })
            !epoch_events
        in
        let events =
          Vp_metrics.Perfetto.of_spans ~pid:1 ~cat:"driver"
            (Vp_obs.Sink.spans obs)
          @ session_events
        in
        Vp_metrics.Perfetto.write
          ~processes:[ (1, "driver"); (3, "session") ]
          ~path events;
        Printf.eprintf "perfetto: %d events -> %s\n%!" (List.length events) path
      | None -> ());
      if !bad then exit 4)

(* --- trace-check --- *)

let trace_check_cmd =
  Spec.cmd ~name:"trace-check"
    ~doc:
      "Validate a trace file against its schema (vp-obs-trace/1, \
       vp-timeline-trace/1, vp-profile-wire/1, vp-retire-trace/1, \
       vp-metrics-snapshot/1 or vp-perfetto-trace/1, detected from the \
       first line); failures name the schema and the offending line."
    ~positional:
      {
        Spec.pos_docv = "FILE";
        pos_doc = "Trace file to validate.";
        pos_required = true;
      }
    ~flags:[]
    (fun m ->
      let file = List.hd (Spec.positional m) in
      (* One dispatch table over every schema vpack emits, sniffed from
         the meta line; unmatched files fall through to vp-obs-trace/1
         (the only schema whose meta line is per-record).  Success and
         failure messages are uniform across schemas. *)
      let validators =
        [
          ( "vp-timeline-trace/1",
            fun path ->
              Result.map
                (Printf.sprintf "%d lines")
                (Vp_telemetry.Sink.validate_file ~path) );
          ( "vp-profile-wire/1",
            fun path ->
              Result.map
                (fun (runs, snapshots) ->
                  Printf.sprintf "%d runs, %d snapshots" runs snapshots)
                (Vp_aggregate.Wire.validate_file ~path) );
          ( "vp-retire-trace/1",
            fun path ->
              Result.map
                (Printf.sprintf "%d events")
                (Vp_gen.Trace.validate_file ~path) );
          ( "vp-metrics-snapshot/1",
            fun path ->
              Result.map
                (Printf.sprintf "%d lines")
                (Vp_metrics.Snapshot.validate_file ~path) );
          ( "vp-perfetto-trace/1",
            fun path ->
              Result.map
                (Printf.sprintf "%d events")
                (Vp_metrics.Perfetto.validate_file ~path) );
          ( "vp-obs-trace/1",
            fun path ->
              Result.map
                (Printf.sprintf "%d lines")
                (Vp_obs.Sink.validate_file ~path) );
        ]
      in
      (* A zero-byte file matches no schema and would otherwise fall
         through to the vp-obs-trace/1 parser's own complaint; report
         it for what it is. *)
      let size, first =
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let l = try input_line ic with End_of_file -> "" in
        close_in ic;
        (n, l)
      in
      if size = 0 then begin
        Printf.eprintf "%s: invalid trace: empty trace (0 bytes)\n" file;
        exit 1
      end;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      let schema, validate =
        match List.find_opt (fun (tag, _) -> contains first tag) validators with
        | Some v -> v
        | None -> List.nth validators (List.length validators - 1)
      in
      match validate file with
      | Ok detail -> Printf.printf "%s: valid %s, %s\n" file schema detail
      | Error e ->
        Printf.eprintf "%s: invalid %s: %s\n" file schema e;
        exit 1)

(* --- top --- *)

let top_cmd =
  let watch_flag =
    Spec.flag ~kind:Spec.Bool
      ~doc:
        "Refresh forever (ANSI clear between frames, --interval apart) \
         instead of rendering one frame."
      [ "watch" ]
  in
  let top_interval_flag =
    Spec.flag ~kind:Spec.Value ~docv:"MS" ~default:"1000"
      ~check:Spec.check_int ~doc:"Refresh interval for --watch, in \
                                  milliseconds."
      [ "interval" ]
  in
  let width_flag =
    Spec.flag ~kind:Spec.Value ~docv:"COLS" ~default:"48"
      ~check:Spec.check_int ~doc:"Histogram sparkline width."
      [ "width" ]
  in
  Spec.cmd ~name:"top"
    ~doc:
      "Dashboard over a `vpack serve --metrics` snapshot: counter and cache \
       tables, per-histogram bucket sparklines with p50/p90/p99.  Renders \
       one frame by default; --watch re-reads and redraws live."
    ~exits:
      [
        (0, "snapshot rendered");
        (1, "unreadable or invalid snapshot");
        (2, "command-line error");
      ]
    ~positional:
      {
        Spec.pos_docv = "FILE";
        pos_doc = "vp-metrics-snapshot/1 file (see `vpack serve --metrics`).";
        pos_required = true;
      }
    ~flags:[ watch_flag; top_interval_flag; width_flag ]
    (fun m ->
      let file = List.hd (Spec.positional m) in
      let width = Spec.int_value m "width" ~default:48 in
      let is_cache name =
        String.length name >= 13 && String.sub name 0 13 = "session_cache"
      in
      let frame () =
        match Vp_metrics.Snapshot.read ~path:file with
        | Error e ->
          Printf.eprintf "%s: invalid vp-metrics-snapshot/1: %s\n" file e;
          exit 1
        | Ok samples ->
          Printf.printf "vpack top — %s\n" file;
          let counters, gauges, hists =
            List.fold_left
              (fun (cs, gs, hs) (name, sample) ->
                match sample with
                | Vp_metrics.Snapshot.Counter v -> ((name, v) :: cs, gs, hs)
                | Vp_metrics.Snapshot.Gauge v -> (cs, (name, v) :: gs, hs)
                | Vp_metrics.Snapshot.Hist h -> (cs, gs, (name, h) :: hs))
              ([], [], []) samples
          in
          let counters = List.rev counters
          and gauges = List.rev gauges
          and hists = List.rev hists in
          let table title rows =
            if rows <> [] then begin
              Printf.printf "\n%s:\n" title;
              let t =
                Vp_util.Tabular.create
                  ~header:
                    [
                      ("metric", Vp_util.Tabular.Left);
                      ("value", Vp_util.Tabular.Right);
                    ]
              in
              List.iter
                (fun (n, v) -> Vp_util.Tabular.add_row t [ n; string_of_int v ])
                rows;
              Vp_util.Tabular.print t
            end
          in
          table "cache"
            (List.filter (fun (n, _) -> is_cache n) (counters @ gauges));
          table "counters"
            (List.filter (fun (n, _) -> not (is_cache n)) counters);
          table "gauges"
            (List.filter (fun (n, _) -> not (is_cache n)) gauges);
          if hists <> [] then begin
            Printf.printf "\nhistograms (log2 buckets):\n";
            List.iter
              (fun (n, h) ->
                let buckets =
                  Array.init Vp_metrics.Hist.buckets
                    (Vp_metrics.Hist.bucket_count h)
                in
                Printf.printf "%-28s|%s| n=%d sum=%d p50=%d p90=%d p99=%d\n" n
                  (Vp_telemetry.Render.sparkline ~width buckets)
                  (Vp_metrics.Hist.count h) (Vp_metrics.Hist.sum h)
                  (Vp_metrics.Hist.quantile h 0.5)
                  (Vp_metrics.Hist.quantile h 0.9)
                  (Vp_metrics.Hist.quantile h 0.99))
              hists
          end
      in
      if not (Spec.flag_set m "watch") then frame ()
      else
        let pause = float_of_int (Spec.int_value m "interval" ~default:1000) /. 1000. in
        while true do
          print_string "\027[2J\027[H";
          frame ();
          flush stdout;
          Unix.sleepf pause
        done)

(* --- asm / disasm --- *)

let asm_cmd =
  Spec.cmd ~name:"asm" ~doc:"Assemble and run a textual-assembly source file."
    ~positional:
      {
        Spec.pos_docv = "FILE";
        pos_doc = "Assembly source.";
        pos_required = true;
      }
    ~flags:[ backend_flag ]
    (fun m ->
      let backend = resolve_backend m in
      let file = List.hd (Spec.positional m) in
      let ic = open_in file in
      let n = in_channel_length ic in
      let source = really_input_string ic n in
      close_in ic;
      match Vp_prog.Asm.parse_program source with
      | Error e ->
        Format.eprintf "%s: %a@." file Vp_prog.Asm.pp_error e;
        exit 1
      | Ok p ->
        let o = Emulator.run_backend ~backend (Program.layout p) in
        Printf.printf "%s: %d instructions, result %d%s\n" file
          o.Emulator.instructions o.Emulator.result
          (if o.Emulator.halted then "" else " (fuel exhausted)"))

let disasm_cmd =
  Spec.cmd ~name:"disasm"
    ~doc:"Print a workload's program as textual assembly."
    ~flags:[ workload_flag ]
    (fun m ->
      let w = workload_of m in
      print_string (Vp_prog.Asm.print_program (w.Registry.program ())))

(* --- diag --- *)

let diag_cmd =
  let addr_flag =
    Spec.flag ~kind:Spec.Value ~docv:"ADDR" ~check:Spec.check_int
      ~doc:"Also disassemble around this address of the rewritten image."
      [ "addr" ]
  in
  Spec.cmd ~name:"diag"
    ~doc:"Run the rewritten binary and histogram package boundary crossings."
    ~flags:[ workload_flag; addr_flag; backend_flag ]
    (fun m ->
      let backend = resolve_backend m in
      let w = workload_of m in
      let img = Program.layout (w.Registry.program ()) in
      let config = Config.with_backend backend Config.default in
      let r = Vacuum.Driver.rewrite ~config img in
      let rimg = Vacuum.Driver.rewritten_image r in
      let module Image = Vp_prog.Image in
      let limit = img.Image.orig_limit in
      let exits = Hashtbl.create 64 in
      let entries = Hashtbl.create 64 in
      let bump tbl k =
        Hashtbl.replace tbl k
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      in
      let on_retire ~pc ~taken:_ ~next_pc ~mem_addr:_ =
        if next_pc >= 0 then begin
          let from_pkg = pc >= limit in
          let to_pkg = next_pc >= limit in
          if from_pkg && not to_pkg then bump exits (pc, next_pc);
          if (not from_pkg) && to_pkg then bump entries (pc, next_pc)
        end
      in
      let o = Emulator.run_backend ~backend ~on_retire rimg in
      Printf.printf "coverage %.1f%% (%d/%d instructions in packages)\n"
        (Vp_util.Stats.pct o.Emulator.package_instructions
           o.Emulator.instructions)
        o.Emulator.package_instructions o.Emulator.instructions;
      let top tbl name =
        let l = Hashtbl.fold (fun k v acc -> (v, k) :: acc) tbl [] in
        let l = List.sort (fun a b -> compare (fst b) (fst a)) l in
        Printf.printf "%s (%d distinct):\n" name (List.length l);
        List.iteri
          (fun i (count, (src, dst)) ->
            if i < 12 then begin
              let sym a =
                match Image.sym_at rimg a with
                | Some s -> s.Image.name
                | None -> "?"
              in
              Printf.printf "  %8d  0x%x (%s) -> 0x%x (%s)\n" count src
                (sym src) dst (sym dst)
            end)
          l
      in
      top exits "exits package->original";
      top entries "entries original->package";
      match Spec.value m "addr" with
      | None -> ()
      | Some addr ->
        let center = int_of_string addr in
        Printf.printf "\ndisassembly around 0x%x:\n" center;
        for a = max 0 (center - 10) to min (Image.size rimg - 1) (center + 10)
        do
          Printf.printf "%s %5x: %s\n"
            (if a = center then ">" else " ")
            a
            (Vp_isa.Instr.to_string (Image.fetch rimg a))
        done)

(* --- verify --- *)

let verify_cmd =
  Spec.cmd ~name:"verify"
    ~doc:
      "Run the pipeline and the package soundness verifier on every emitted \
       package; exit 4 if any check fails."
    ~positional:workload_pos
    ~exits:
      [
        (0, "a sound image");
        (4, "a verifier rejection");
        (3, "a pipeline error");
      ]
    ~flags:[ no_inference_flag; no_linking_flag; backend_flag ]
    (fun m ->
      let backend = resolve_backend m in
      let w = workload_of_pos m in
      let img = Program.layout (w.Registry.program ()) in
      (* Degradation off: the point of this subcommand is to see the
         verdict on everything the pipeline wanted to emit, not on what
         survived the demotion ladder. *)
      let config =
        Config.with_backend backend (Config.with_degrade false (config_of m))
      in
      let r = Vacuum.Driver.rewrite ~config img in
      let report = r.Vacuum.Driver.verification in
      Format.printf "%s: %a@." (Registry.name w) Vp_package.Verify.pp_report
        report;
      if not (Vp_package.Verify.ok report) then exit 4)

(* --- chaos --- *)

let chaos_cmd =
  let seed_flag =
    Spec.flag ~kind:Spec.Value ~docv:"S" ~default:"0" ~check:Spec.check_int
      ~doc:"Root seed of the matrix." [ "seed" ]
  in
  let report_flag =
    Spec.flag ~kind:Spec.Value ~docv:"FILE"
      ~doc:"Write the cell table (plus failures) to FILE." [ "report" ]
  in
  Spec.cmd ~name:"chaos"
    ~doc:
      "Run the seed x fault-plan chaos matrix: every preset fault plan, \
       asserting the differential oracle on each rewritten image; exit 5 on \
       any cell failure."
    ~positional:workload_pos
    ~exits:
      [
        (0, "every cell equivalent and verified");
        (5, "a cell failure");
        (3, "a pipeline error");
      ]
    ~flags:[ seeds_flag; seed_flag; jobs_flag; report_flag; backend_flag ]
    (fun m ->
      let backend = resolve_backend m in
      let w = workload_of_pos m in
      let seeds = Spec.int_value m "seeds" ~default:5 in
      let seed = Spec.int_value m "seed" ~default:0 in
      let img = Program.layout (w.Registry.program ()) in
      let result =
        Vacuum.Chaos.matrix
          ~config:(Config.with_backend backend Config.default)
          ~seeds ~seed ~jobs:(resolve_jobs m) img
      in
      let table = Vacuum.Chaos.table result in
      Printf.printf "%s: %d fault plans x %d seeds\n%s\n" (Registry.name w)
        (List.length Vp_fault.Plan.presets)
        seeds table;
      let failed =
        List.filter
          (fun (c : Vacuum.Chaos.cell) ->
            not (c.Vacuum.Chaos.equivalent && c.Vacuum.Chaos.verified))
          result.Vacuum.Chaos.cells
      in
      (match Spec.value m "report" with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        Printf.fprintf oc "%s: %d fault plans x %d seeds, root seed %d\n%s\n"
          (Registry.name w)
          (List.length Vp_fault.Plan.presets)
          seeds seed table;
        List.iter
          (fun (c : Vacuum.Chaos.cell) ->
            Printf.fprintf oc "FAILED: %s\n"
              (Format.asprintf "%a seed-index %d%s%s" Vp_fault.Plan.pp
                 c.Vacuum.Chaos.plan c.Vacuum.Chaos.seed_index
                 (if c.Vacuum.Chaos.verified then ""
                  else " [verifier rejection]")
                 (if c.Vacuum.Chaos.equivalent then ""
                  else " [oracle mismatch]")))
          failed;
        close_out oc;
        Printf.printf "report -> %s\n" path);
      if failed <> [] then begin
        Printf.eprintf "chaos: %d of %d cells failed the oracle or verifier\n"
          (List.length failed)
          (List.length result.Vacuum.Chaos.cells);
        exit 5
      end)

(* --- fuzz --- *)

let fuzz_cmd =
  let count_flag =
    Spec.flag ~kind:Spec.Value ~docv:"N" ~default:"50" ~check:Spec.check_int
      ~doc:"Generated binaries to put through the campaign." [ "count" ]
  in
  let fuzz_seeds_flag =
    Spec.flag ~kind:Spec.Value ~docv:"N" ~default:"1" ~check:Spec.check_int
      ~doc:"Chaos seeds per fault plan per generated binary." [ "seeds" ]
  in
  let seed_flag =
    Spec.flag ~kind:Spec.Value ~docv:"S" ~default:"0" ~check:Spec.check_int
      ~doc:"Root seed of the campaign's case derivation." [ "seed" ]
  in
  let report_flag =
    Spec.flag ~kind:Spec.Value ~docv:"FILE"
      ~doc:"Write the campaign report to FILE as well as stdout." [ "report" ]
  in
  let corpus_flag =
    Spec.flag ~kind:Spec.Value ~docv:"DIR"
      ~doc:
        "Write one shrunk vp-fuzz-repro/1 file per failing case into DIR \
         (created if missing)."
      [ "corpus" ]
  in
  let replay_flag =
    Spec.flag ~kind:Spec.Value ~docv:"FILE" ~repeatable:true
      ~doc:
        "Replay committed vp-fuzz-repro/1 file(s) instead of sampling new \
         cases; exit 6 if any still fails."
      [ "replay" ]
  in
  let max_phases_flag =
    Spec.flag ~kind:Spec.Value ~docv:"N" ~default:"4" ~check:Spec.check_int
      ~doc:"Largest planted phase count sampled." [ "max-phases" ]
  in
  let max_hot_flag =
    Spec.flag ~kind:Spec.Value ~docv:"N" ~default:"5" ~check:Spec.check_int
      ~doc:"Largest per-phase hot-function count sampled." [ "max-hot" ]
  in
  let max_iters_flag =
    Spec.flag ~kind:Spec.Value ~docv:"N" ~default:"60" ~check:Spec.check_int
      ~doc:"Largest per-phase iteration count sampled." [ "max-iters" ]
  in
  Spec.cmd ~name:"fuzz"
    ~doc:
      "Statistical chaos campaign over generated binaries: each case runs \
       the full profile -> package -> verify -> rewrite pipeline under the \
       fault-plan matrix with the differential oracle, plus \
       vp-retire-trace/1 round-trip, ingestion-equivalence and \
       corruption-totality checks; failures are shrunk to minimal repro \
       files.  Reports are byte-identical across --jobs and backends."
    ~exits:
      [
        (0, "every case passed");
        (6, "a case crashed or failed an oracle (after shrinking)");
        (3, "a pipeline error");
      ]
    ~flags:
      [
        count_flag; fuzz_seeds_flag; seed_flag; jobs_flag; backend_flag;
        report_flag; corpus_flag; replay_flag; max_phases_flag; max_hot_flag;
        max_iters_flag;
      ]
    (fun m ->
      let backend = resolve_backend m in
      let config = Config.with_backend backend Vp_gen.Campaign.default_config in
      let chaos_seeds = Spec.int_value m "seeds" ~default:1 in
      match Spec.values m "replay" with
      | _ :: _ as files ->
        let failed =
          List.filter
            (fun path ->
              match Vp_gen.Campaign.load_repro_file ~path with
              | Error e -> Vacuum.Error.failf ~stage:"trace" "%s: %s" path e
              | Ok r -> (
                match Vp_gen.Campaign.replay ~config ~chaos_seeds r with
                | Ok o ->
                  Printf.printf
                    "%s: seed %d passes (%d cells, %d trace events)\n" path
                    r.Vp_gen.Campaign.spec.Vp_gen.Campaign.seed
                    o.Vp_gen.Campaign.cells o.Vp_gen.Campaign.trace_events;
                  false
                | Error f ->
                  Printf.printf "%s: seed %d still FAILS [%s] %s\n" path
                    r.Vp_gen.Campaign.spec.Vp_gen.Campaign.seed
                    f.Vp_gen.Campaign.stage f.Vp_gen.Campaign.detail;
                  true))
            files
        in
        if failed <> [] then begin
          Printf.eprintf "fuzz: %d of %d repro(s) still failing\n"
            (List.length failed) (List.length files);
          exit 6
        end
      | [] ->
        let bounds =
          {
            Vp_gen.Gen.default_bounds with
            Vp_gen.Gen.max_phases = Spec.int_value m "max-phases" ~default:4;
            max_hot_funcs = Spec.int_value m "max-hot" ~default:5;
            max_phase_iters = Spec.int_value m "max-iters" ~default:60;
          }
        in
        let report =
          Vp_gen.Campaign.run ~config ~bounds ~chaos_seeds
            ~jobs:(resolve_jobs m)
            ~root_seed:(Spec.int_value m "seed" ~default:0)
            ~count:(Spec.int_value m "count" ~default:50)
            ()
        in
        let text = Vp_gen.Campaign.render report in
        print_string text;
        (match Spec.value m "report" with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Printf.printf "report -> %s\n" path);
        (match Spec.value m "corpus" with
        | Some dir when report.Vp_gen.Campaign.repros <> [] ->
          List.iter
            (Printf.printf "repro -> %s\n")
            (Vp_gen.Campaign.save_repros ~dir report)
        | _ -> ());
        if not (Vp_gen.Campaign.ok report) then begin
          Printf.eprintf "fuzz: %d of %d cases failed\n"
            (List.length
               (List.filter
                  (fun (o : Vp_gen.Campaign.outcome) ->
                    o.Vp_gen.Campaign.failure <> None)
                  report.Vp_gen.Campaign.outcomes))
            report.Vp_gen.Campaign.count;
          exit 6
        end)

(* --- machine --- *)

let machine_cmd =
  Spec.cmd ~name:"machine"
    ~doc:"Print the simulated EPIC machine model (Table 2)." ~flags:[]
    (fun _ -> Format.printf "%a@." Vp_cpu.Config.pp Vp_cpu.Config.default)

(* ---- the tool table ---- *)

let tool =
  {
    Spec.tool_name = "vpack";
    version = "1.0.0";
    tool_doc = "Vacuum Packing: phase-based post-link optimization";
    cmds =
      [
        list_cmd; run_cmd; phases_cmd; extract_cmd; aggregate_cmd; report_cmd;
        stats_cmd; timeline_cmd; serve_cmd; top_cmd; trace_check_cmd;
        verify_cmd;
        chaos_cmd; fuzz_cmd; diag_cmd; asm_cmd; disasm_cmd; machine_cmd;
      ];
  }

let main () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  (* Pipeline failures carry a structured payload; render it and exit
     cleanly instead of dumping a backtrace.  Usage errors — an unknown
     subcommand or bad flag (the Spec dispatcher's own exit 2) and an
     unknown or ambiguous workload (the [cli] stage) — all land on exit
     2 with a pointer at the usage. *)
  match Spec.main tool Sys.argv with
  | code -> exit code
  | exception Vacuum.Error.Error e when e.Vacuum.Error.stage = "cli" ->
    Format.eprintf "vpack: %a@." Vacuum.Error.pp e;
    Format.eprintf "Usage: vpack COMMAND …; try 'vpack --help'.@.";
    exit 2
  | exception Vacuum.Error.Error e ->
    Format.eprintf "vpack: %a@." Vacuum.Error.pp e;
    exit 3
