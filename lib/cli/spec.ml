(* A declarative command-line spec: every subcommand is a row of one
   table (name, doc, positional, flags), every flag one record (names,
   docv, doc, kind, validator, default).  Parsing is a pure function
   over that table — the same tokenizer, the same unknown-flag rule and
   the same help renderer for every subcommand — so flags shared across
   subcommands cannot drift apart, and usage errors are enforced in
   exactly one place. *)

type kind = Bool | Value

type flag = {
  names : string list;  (* without dashes; short names are 1 char *)
  docv : string;
  doc : string;
  kind : kind;
  repeatable : bool;
  required : bool;
  default : string option;  (* for help only; absent flags read as None *)
  check : string -> string option;  (* value validator: Some = error *)
}

type pos = { pos_docv : string; pos_doc : string; pos_required : bool }

type matches = {
  present : (string list * string list ref) list;
      (* one slot per spec flag: (names, values in parse order); a bare
         boolean occurrence pushes "" *)
  mutable positional : string list;  (* reverse order while parsing *)
}

type cmd = {
  name : string;
  cmd_doc : string;
  positional : pos option;
  flags : flag list;
  exits : (int * string) list;
  run : matches -> unit;
}

type tool = { tool_name : string; version : string; tool_doc : string; cmds : cmd list }

let no_check _ = None

let flag ?(docv = "VAL") ?(doc = "") ?default ?(check = no_check)
    ?(repeatable = false) ?(required = false) ~kind names =
  { names; docv; doc; kind; repeatable; required; default; check }

let check_int s =
  match int_of_string_opt s with
  | Some _ -> None
  | None -> Some (Printf.sprintf "expected an integer, got %S" s)

let check_float s =
  match float_of_string_opt s with
  | Some _ -> None
  | None -> Some (Printf.sprintf "expected a number, got %S" s)

let cmd ~name ~doc ?positional ?(exits = []) ~flags run =
  { name; cmd_doc = doc; positional; flags; exits; run }

(* The one flag every subcommand has. *)
let help_flag =
  flag ~kind:Bool ~doc:"Show this help." [ "help" ]

(* ---- match accessors ---- *)

let slot (m : matches) name =
  List.find_opt (fun (names, _) -> List.mem name names) m.present

let values m name = match slot m name with Some (_, r) -> List.rev !r | None -> []
let flag_set m name = values m name <> []
let value m name = match values m name with [] -> None | v :: _ -> Some v
let positional (m : matches) = List.rev m.positional

let int_value m name ~default =
  match value m name with None -> default | Some v -> int_of_string v

let float_value m name ~default =
  match value m name with None -> default | Some v -> float_of_string v

(* ---- parsing ---- *)

let find_flag cmd name =
  List.find_opt (fun f -> List.mem name f.names) (help_flag :: cmd.flags)

let parse cmd args =
  let m =
    {
      present =
        List.map (fun f -> (f.names, ref [])) (help_flag :: cmd.flags);
      positional = [];
    }
  in
  let record f v =
    match List.find_opt (fun (names, _) -> names == f.names) m.present with
    | Some (_, r) -> r := v :: !r
    | None -> ()
  in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec go = function
    | [] -> Ok ()
    | "--" :: rest ->
      m.positional <- List.rev_append rest m.positional;
      Ok ()
    | arg :: rest when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      let body = String.sub arg 2 (String.length arg - 2) in
      let name, inline =
        match String.index_opt body '=' with
        | Some i ->
          ( String.sub body 0 i,
            Some (String.sub body (i + 1) (String.length body - i - 1)) )
        | None -> (body, None)
      in
      dispatch arg name inline rest
    | arg :: rest when String.length arg >= 2 && arg.[0] = '-' && arg.[1] <> '-'
      ->
      let name = String.make 1 arg.[1] in
      let inline =
        if String.length arg > 2 then
          Some (String.sub arg 2 (String.length arg - 2))
        else None
      in
      dispatch arg name inline rest
    | arg :: rest ->
      m.positional <- arg :: m.positional;
      go rest
  and dispatch arg name inline rest =
    match find_flag cmd name with
    | None -> err "unknown option '%s'" arg
    | Some f -> (
      match (f.kind, inline, rest) with
      | Bool, Some _, _ -> err "option '%s' takes no value" arg
      | Bool, None, _ ->
        record f "";
        go rest
      | Value, Some v, _ ->
        record f v;
        go rest
      | Value, None, v :: rest ->
        record f v;
        go rest
      | Value, None, [] -> err "option '%s' needs a %s value" arg f.docv)
  in
  match go args with
  | Error _ as e -> e
  | Ok () ->
    if flag_set m "help" then Ok m
    else
      (* Arity and validity, centrally. *)
      let problem =
        List.find_map
          (fun f ->
            let canon = List.nth f.names (List.length f.names - 1) in
            let vs = values m canon in
            if f.required && vs = [] then
              Some (Printf.sprintf "missing required option '--%s'" canon)
            else if (not f.repeatable) && List.length vs > 1 then
              Some (Printf.sprintf "option '--%s' given more than once" canon)
            else if f.kind = Value then
              List.find_map
                (fun v ->
                  Option.map
                    (fun e -> Printf.sprintf "option '--%s': %s" canon e)
                    (f.check v))
                vs
            else None)
          cmd.flags
      in
      let problem =
        match (problem, cmd.positional) with
        | Some _, _ -> problem
        | None, Some p when p.pos_required && positional m = [] ->
          Some (Printf.sprintf "missing %s argument" p.pos_docv)
        | None, None when positional m <> [] ->
          Some
            (Printf.sprintf "unexpected argument '%s'"
               (List.hd (positional m)))
        | None, _ -> None
      in
      (match problem with Some e -> Error e | None -> Ok m)

(* ---- help rendering ---- *)

let flag_lhs f =
  let dashed n = if String.length n = 1 then "-" ^ n else "--" ^ n in
  let names = String.concat ", " (List.map dashed f.names) in
  match f.kind with Bool -> names | Value -> names ^ " " ^ f.docv

let wrap_doc doc =
  (* help is golden-tested; keep rendering trivial and stable *)
  String.concat " " (String.split_on_char '\n' doc)

let usage_line tool cmd =
  Printf.sprintf "usage: %s %s [OPTION]...%s" tool.tool_name cmd.name
    (match cmd.positional with
    | Some p ->
      if p.pos_required then " " ^ p.pos_docv else " [" ^ p.pos_docv ^ "]"
    | None -> "")

let cmd_help tool cmd =
  let b = Buffer.create 512 in
  Buffer.add_string b (usage_line tool cmd ^ "\n");
  Buffer.add_string b (wrap_doc cmd.cmd_doc ^ "\n");
  (match cmd.positional with
  | Some p ->
    Buffer.add_string b "\narguments:\n";
    Buffer.add_string b (Printf.sprintf "  %-26s %s\n" p.pos_docv (wrap_doc p.pos_doc))
  | None -> ());
  Buffer.add_string b "\noptions:\n";
  List.iter
    (fun f ->
      let lhs = flag_lhs f in
      let doc =
        wrap_doc f.doc
        ^ (match f.default with
          | Some d -> Printf.sprintf " (default %s)" d
          | None -> "")
        ^ (if f.repeatable then " (repeatable)" else "")
      in
      if String.length lhs <= 26 then
        Buffer.add_string b (Printf.sprintf "  %-26s %s\n" lhs doc)
      else Buffer.add_string b (Printf.sprintf "  %s\n  %-26s %s\n" lhs "" doc))
    (cmd.flags @ [ help_flag ]);
  (match cmd.exits with
  | [] -> ()
  | exits ->
    Buffer.add_string b "\nexit codes:\n";
    List.iter
      (fun (code, doc) ->
        Buffer.add_string b (Printf.sprintf "  %-4d %s\n" code (wrap_doc doc)))
      exits);
  Buffer.contents b

let tool_help tool =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "usage: %s COMMAND [OPTION]...\n%s\n\ncommands:\n"
       tool.tool_name (wrap_doc tool.tool_doc));
  List.iter
    (fun c ->
      Buffer.add_string b (Printf.sprintf "  %-12s %s\n" c.name (wrap_doc c.cmd_doc)))
    tool.cmds;
  Buffer.add_string b
    (Printf.sprintf
       "\nSee '%s COMMAND --help' for command options.  '--version' prints \
        the version.\n"
       tool.tool_name);
  Buffer.contents b

(* ---- dispatch ---- *)

let find_cmd tool name = List.find_opt (fun c -> c.name = name) tool.cmds

let main tool argv =
  let args = Array.to_list argv |> List.tl in
  match args with
  | [] ->
    prerr_string (tool_help tool);
    2
  | [ "--help" ] | [ "help" ] ->
    print_string (tool_help tool);
    0
  | [ "--version" ] ->
    print_endline tool.version;
    0
  | name :: rest -> (
    match find_cmd tool name with
    | None ->
      Printf.eprintf "%s: unknown command '%s'\n\n" tool.tool_name name;
      prerr_string (tool_help tool);
      2
    | Some cmd -> (
      match parse cmd rest with
      | Error e ->
        Printf.eprintf "%s %s: %s\n\n" tool.tool_name cmd.name e;
        prerr_string (cmd_help tool cmd);
        2
      | Ok m when flag_set m "help" ->
        print_string (cmd_help tool cmd);
        0
      | Ok m ->
        cmd.run m;
        0))
