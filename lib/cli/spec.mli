(** The declarative command-line engine behind [vpack].

    Every subcommand is one {!cmd} row in one {!tool} table; every flag
    one {!flag} record (names, docv, doc, kind, validator, default).
    Because all subcommands go through the same {!parse}, the rules are
    enforced in exactly one place: an unknown flag or subcommand prints
    the relevant usage and exits 2, [--help] prints generated help and
    exits 0, shared flags (e.g. [--backend], [--jobs]) are defined once
    and mean the same thing everywhere they appear.

    {!parse} is pure — it returns a [result] rather than exiting — so
    the tests exercise the tokenizer and the arity/validity rules
    directly; only {!main} talks to the process. *)

type kind = Bool  (** present or absent, no value *) | Value  (** takes one value *)

type flag

val flag :
  ?docv:string ->
  ?doc:string ->
  ?default:string ->
  ?check:(string -> string option) ->
  ?repeatable:bool ->
  ?required:bool ->
  kind:kind ->
  string list ->
  flag
(** A flag answering to every name in the list (1-character names parse
    as [-x], longer ones as [--name]; [--name=v], [--name v], [-x v]
    and [-xv] all work).  [check] validates each value at parse time
    and returns an error message on rejection; [default] is rendered in
    the generated help (absent flags simply read back as [None]). *)

val check_int : string -> string option
val check_float : string -> string option

(** The result of a successful parse.  Accessors take any of the
    flag's names. *)
type matches

val flag_set : matches -> string -> bool
val value : matches -> string -> string option
val values : matches -> string -> string list
(** All occurrences of a repeatable flag, in command-line order. *)

val positional : matches -> string list

val int_value : matches -> string -> default:int -> int
(** The flag's value as an integer, [default] when absent.  Safe after
    a successful {!parse} of a flag declared with {!check_int}. *)

val float_value : matches -> string -> default:float -> float

type pos = { pos_docv : string; pos_doc : string; pos_required : bool }

type cmd

val cmd :
  name:string ->
  doc:string ->
  ?positional:pos ->
  ?exits:(int * string) list ->
  flags:flag list ->
  (matches -> unit) ->
  cmd

type tool = {
  tool_name : string;
  version : string;
  tool_doc : string;
  cmds : cmd list;
}

val find_cmd : tool -> string -> cmd option
(** Look a subcommand up by name — how both {!main} and the test suite
    reach an individual table row. *)

val parse : cmd -> string list -> (matches, string) result
(** Pure: tokenize [args] against the command's flag table, then check
    arity (required, non-repeatable given once) and run every value
    validator.  [Error] carries the message the dispatcher prints
    before the usage. *)

val usage_line : tool -> cmd -> string
val cmd_help : tool -> cmd -> string
val tool_help : tool -> string
(** Help text is generated from the spec table — there is no
    hand-maintained usage string anywhere. *)

val main : tool -> string array -> int
(** Full dispatch on [argv]: resolve the subcommand, parse, honour
    [--help]/[--version], run.  Returns the exit code (0 success, 2 for
    any command-line error); pipeline exceptions from command bodies
    propagate to the caller. *)
