(* Continuous-profiling metrics plane (see vp_metrics.mli).

   One mutex guards the whole registry: every update is a cold
   once-per-stage or once-per-epoch event (the hot execution loops are
   never instrumented directly), so contention is irrelevant and the
   single lock buys the deterministic-merge discipline for free —
   counters are plain additions and histograms merge additively, so
   any interleaving of writers yields the same stable readings.

   Volatility: each metric is tagged at first registration.  Stable
   metrics (schedule-independent values) form the default snapshot;
   volatile metrics (wall clock, scheduler occupancy, every gauge)
   render only on request, after a `# volatile` marker. *)

(* ------------------------------------------------------------------ *)
(* Histogram: 64 log2 buckets, exact count and sum.                    *)

module Hist = struct
  type h = { counts : int array; mutable count : int; mutable sum : int }

  let buckets = 64

  let create () = { counts = Array.make buckets 0; count = 0; sum = 0 }

  (* floor (log2 v) for v >= 1, by shifting. *)
  let floor_log2 v =
    let l = ref 0 and v = ref v in
    while !v > 1 do
      incr l;
      v := !v lsr 1
    done;
    !l

  let index v =
    if v <= 0 then 0
    else begin
      let f = floor_log2 v in
      let ceil_log2 = if v land (v - 1) = 0 then f else f + 1 in
      Stdlib.min (buckets - 1) (1 + ceil_log2)
    end

  (* OCaml ints are 63-bit, so [1 lsl 62] would wrap negative; the
     last bucket absorbs everything larger anyway, so its bound is
     max_int. *)
  let bound i =
    if i <= 0 then 0 else if i >= buckets - 1 then max_int else 1 lsl (i - 1)

  let observe h v =
    h.counts.(index v) <- h.counts.(index v) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum + v

  let count h = h.count
  let sum h = h.sum
  let bucket_count h i = h.counts.(i)

  let quantile h q =
    if h.count = 0 then 0
    else begin
      let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
      let cum = ref 0 and result = ref (bound (buckets - 1)) in
      (try
         for i = 0 to buckets - 1 do
           cum := !cum + h.counts.(i);
           if !cum >= rank then begin
             result := bound i;
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  let merge_into ~dst src =
    for i = 0 to buckets - 1 do
      dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
    done;
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum + src.sum

  let copy h = { counts = Array.copy h.counts; count = h.count; sum = h.sum }
end

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)

type metric = M_counter of int ref | M_gauge of int ref | M_hist of Hist.h
type entry = { volatile : bool; metric : metric }

type reg = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  flight_cap : int;
  flight_dir : string option;
  fl_kind : string array;
  fl_label : string array;
  fl_seq : int array;
  mutable fl_total : int;
  fl_dumps : (string, int) Hashtbl.t;  (* per-label dump sequence *)
  mutable dump_total : int;
}

type t = Disabled | Enabled of reg

let disabled = Disabled

let create ?(flight_capacity = 64) ?flight_dir () =
  let cap = Stdlib.max 1 flight_capacity in
  Enabled
    {
      mutex = Mutex.create ();
      table = Hashtbl.create 64;
      flight_cap = cap;
      flight_dir;
      fl_kind = Array.make cap "";
      fl_label = Array.make cap "";
      fl_seq = Array.make cap 0;
      fl_total = 0;
      fl_dumps = Hashtbl.create 8;
      dump_total = 0;
    }

let enabled = function Disabled -> false | Enabled _ -> true

let locked r f =
  Mutex.lock r.mutex;
  match f () with
  | v ->
    Mutex.unlock r.mutex;
    v
  | exception e ->
    Mutex.unlock r.mutex;
    raise e

(* First registration fixes a name's kind and volatility; a later use
   under a different kind is dropped rather than raising — metrics
   must never take the pipeline down. *)
let counter_cell r ~volatile name =
  match Hashtbl.find_opt r.table name with
  | Some { metric = M_counter c; _ } -> Some c
  | Some _ -> None
  | None ->
    let c = ref 0 in
    Hashtbl.replace r.table name { volatile; metric = M_counter c };
    Some c

let gauge_cell r name =
  match Hashtbl.find_opt r.table name with
  | Some { metric = M_gauge c; _ } -> Some c
  | Some _ -> None
  | None ->
    let c = ref 0 in
    Hashtbl.replace r.table name { volatile = true; metric = M_gauge c };
    Some c

let hist_cell r ~volatile name =
  match Hashtbl.find_opt r.table name with
  | Some { metric = M_hist h; _ } -> Some h
  | Some _ -> None
  | None ->
    let h = Hist.create () in
    Hashtbl.replace r.table name { volatile; metric = M_hist h };
    Some h

module Counter = struct
  let bump ?(volatile = false) t name n =
    match t with
    | Disabled -> ()
    | Enabled r ->
      locked r (fun () ->
          match counter_cell r ~volatile name with
          | Some c -> c := !c + n
          | None -> ())

  let value t name =
    match t with
    | Disabled -> 0
    | Enabled r ->
      locked r (fun () ->
          match Hashtbl.find_opt r.table name with
          | Some { metric = M_counter c; _ } -> !c
          | _ -> 0)
end

module Gauge = struct
  let set t name v =
    match t with
    | Disabled -> ()
    | Enabled r ->
      locked r (fun () ->
          match gauge_cell r name with Some c -> c := v | None -> ())

  let value t name =
    match t with
    | Disabled -> 0
    | Enabled r ->
      locked r (fun () ->
          match Hashtbl.find_opt r.table name with
          | Some { metric = M_gauge c; _ } -> !c
          | _ -> 0)
end

module Histogram = struct
  let observe ?(volatile = false) t name v =
    match t with
    | Disabled -> ()
    | Enabled r ->
      locked r (fun () ->
          match hist_cell r ~volatile name with
          | Some h -> Hist.observe h v
          | None -> ())

  let get t name =
    match t with
    | Disabled -> None
    | Enabled r ->
      locked r (fun () ->
          match Hashtbl.find_opt r.table name with
          | Some { metric = M_hist h; _ } -> Some (Hist.copy h)
          | _ -> None)
end

(* ------------------------------------------------------------------ *)
(* OpenMetrics-style text exposition: vp-metrics-snapshot/1.           *)

module Snapshot = struct
  type sample = Counter of int | Gauge of int | Hist of Hist.h

  let schema = "# vp-metrics-snapshot/1"

  let sanitize name =
    String.map
      (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
      name

  (* A frozen copy of the registry, split by volatility, each half
     sorted by name. *)
  let sections t =
    match t with
    | Disabled -> ([], [])
    | Enabled r ->
      let stable, vol =
        locked r (fun () ->
            Hashtbl.fold
              (fun name e (s, v) ->
                let sample =
                  match e.metric with
                  | M_counter c -> Counter !c
                  | M_gauge g -> Gauge !g
                  | M_hist h -> Hist (Hist.copy h)
                in
                if e.volatile then (s, (name, sample) :: v)
                else ((name, sample) :: s, v))
              r.table ([], []))
      in
      let by_name (a, _) (b, _) = compare (a : string) b in
      (List.sort by_name stable, List.sort by_name vol)

  let samples ?(volatile = false) t =
    let stable, vol = sections t in
    if volatile then stable @ vol else stable

  let render_sample buf (name, sample) =
    let n = sanitize name in
    match sample with
    | Counter v ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string buf (Printf.sprintf "%s_total %d\n" n v)
    | Gauge v ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n v)
    | Hist h ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      for i = 0 to Hist.buckets - 1 do
        let c = Hist.bucket_count h i in
        if c > 0 then begin
          cum := !cum + c;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n (Hist.bound i) !cum)
        end
      done;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (Hist.count h));
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n (Hist.sum h));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n (Hist.count h));
      Buffer.add_string buf (Printf.sprintf "%s_p50 %d\n" n (Hist.quantile h 0.50));
      Buffer.add_string buf (Printf.sprintf "%s_p90 %d\n" n (Hist.quantile h 0.90));
      Buffer.add_string buf (Printf.sprintf "%s_p99 %d\n" n (Hist.quantile h 0.99))

  let render ?(volatile = false) t =
    let stable, vol = sections t in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (schema ^ "\n");
    List.iter (render_sample buf) stable;
    if volatile && vol <> [] then begin
      Buffer.add_string buf "# volatile\n";
      List.iter (render_sample buf) vol
    end;
    Buffer.add_string buf "# EOF\n";
    Buffer.contents buf

  let write_file ~path content =
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc content;
    close_out oc;
    Sys.rename tmp path

  let write ?volatile t ~path = write_file ~path (render ?volatile t)

  let read_lines path =
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    List.rev !lines

  let starts_with ~prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix

  let validate_lines lines =
    let n = List.length lines in
    if n = 0 then Error "empty snapshot"
    else if List.nth lines 0 <> schema then
      Error (Printf.sprintf "line 1: expected %S meta line" schema)
    else if List.nth lines (n - 1) <> "# EOF" then
      Error (Printf.sprintf "line %d: missing \"# EOF\" trailer" n)
    else begin
      let check i line =
        if i = 0 || i = n - 1 then Ok ()
        else if line = "" then Error (Printf.sprintf "line %d: empty line" (i + 1))
        else if line = "# EOF" then
          Error (Printf.sprintf "line %d: unexpected \"# EOF\"" (i + 1))
        else if starts_with ~prefix:"# TYPE " line then begin
          match String.split_on_char ' ' line with
          | [ _; _; _; ("counter" | "gauge" | "histogram") ] -> Ok ()
          | _ ->
            Error
              (Printf.sprintf
                 "line %d: malformed TYPE line (want \"# TYPE name \
                  counter|gauge|histogram\")"
                 (i + 1))
        end
        else if line.[0] = '#' then Ok () (* comment: # volatile, # mark, ... *)
        else begin
          match String.rindex_opt line ' ' with
          | None ->
            Error (Printf.sprintf "line %d: expected \"name value\"" (i + 1))
          | Some sp ->
            let name = String.sub line 0 sp in
            let v = String.sub line (sp + 1) (String.length line - sp - 1) in
            if name = "" then
              Error (Printf.sprintf "line %d: empty metric name" (i + 1))
            else if
              not
                (match name.[0] with
                | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
                | _ -> false)
            then Error (Printf.sprintf "line %d: bad metric name %S" (i + 1) name)
            else begin
              match int_of_string_opt v with
              | Some _ -> Ok ()
              | None ->
                Error (Printf.sprintf "line %d: malformed value %S" (i + 1) v)
            end
        end
      in
      let rec walk i = function
        | [] -> Ok n
        | line :: rest -> (
          match check i line with Ok () -> walk (i + 1) rest | Error e -> Error e)
      in
      walk 0 lines
    end

  let validate_file ~path =
    match read_lines path with
    | exception Sys_error e -> Error e
    | lines -> validate_lines lines

  (* Parse an exposition file back into samples, reconstructing
     histograms from their cumulative bucket lines.  Names come back
     in sanitized (rendered) form, in file order. *)
  let find_sub hay needle =
    let hn = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > hn then None
      else if String.sub hay i nn = needle then Some i
      else go (i + 1)
    in
    go 0

  let read ~path =
    match validate_file ~path with
    | Error e -> Error e
    | Ok _ ->
      let lines = read_lines path in
      let order = ref [] in
      let vals : (string, int) Hashtbl.t = Hashtbl.create 64 in
      let bucks : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun line ->
          if starts_with ~prefix:"# TYPE " line then begin
            match String.split_on_char ' ' line with
            | [ _; _; name; kind ] -> order := (name, kind) :: !order
            | _ -> ()
          end
          else if line <> "" && line.[0] <> '#' then begin
            match String.rindex_opt line ' ' with
            | None -> ()
            | Some sp ->
              let name = String.sub line 0 sp in
              let v =
                Stdlib.Option.value ~default:0
                  (int_of_string_opt
                     (String.sub line (sp + 1) (String.length line - sp - 1)))
              in
              (match find_sub name "_bucket{le=\"" with
              | Some i -> (
                let base = String.sub name 0 i in
                let j = i + String.length "_bucket{le=\"" in
                match String.index_from_opt name j '"' with
                | None -> ()
                | Some k ->
                  let le = String.sub name j (k - j) in
                  if le <> "+Inf" then begin
                    let cell =
                      match Hashtbl.find_opt bucks base with
                      | Some l -> l
                      | None ->
                        let l = ref [] in
                        Hashtbl.replace bucks base l;
                        l
                    in
                    match int_of_string_opt le with
                    | Some b -> cell := (b, v) :: !cell
                    | None -> ()
                  end)
              | None -> Hashtbl.replace vals name v)
          end)
        lines;
      let lookup name = Stdlib.Option.value ~default:0 (Hashtbl.find_opt vals name) in
      let sample_of (name, kind) =
        match kind with
        | "counter" -> Some (name, Counter (lookup (name ^ "_total")))
        | "gauge" -> Some (name, Gauge (lookup name))
        | "histogram" ->
          let h = Hist.create () in
          let cum =
            match Hashtbl.find_opt bucks name with
            | Some l -> List.sort compare !l
            | None -> []
          in
          let prev = ref 0 in
          List.iter
            (fun (le, c) ->
              let inc = c - !prev in
              prev := c;
              let i = Hist.index le in
              h.Hist.counts.(i) <- h.Hist.counts.(i) + inc)
            cum;
          h.Hist.count <- lookup (name ^ "_count");
          h.Hist.sum <- lookup (name ^ "_sum");
          Some (name, Hist h)
        | _ -> None
      in
      Ok (List.filter_map sample_of (List.rev !order))
end

(* ------------------------------------------------------------------ *)
(* Chrome trace-event / Perfetto JSON export: vp-perfetto-trace/1.     *)

module Perfetto = struct
  type event = {
    name : string;
    cat : string;
    pid : int;
    tid : int;
    ts_us : float;
    dur_us : float;
  }

  let schema = "vp-perfetto-trace/1"

  let of_spans ~pid ?tid ~cat spans =
    List.map
      (fun (s : Vp_obs.span) ->
        {
          name = s.Vp_obs.name;
          cat;
          pid;
          tid = (match tid with Some t -> t | None -> s.Vp_obs.depth);
          ts_us = s.Vp_obs.start_s *. 1e6;
          dur_us = s.Vp_obs.wall_s *. 1e6;
        })
      spans

  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let write ?(processes = []) ~path events =
    let t0 =
      List.fold_left (fun acc e -> Float.min acc e.ts_us) infinity events
    in
    let t0 = if events = [] then 0.0 else t0 in
    let meta =
      List.map
        (fun (pid, label) ->
          Printf.sprintf
            "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
            pid (json_escape label))
        processes
    in
    let evs =
      List.map
        (fun e ->
          Printf.sprintf
            "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
            (json_escape e.name) (json_escape e.cat) e.pid e.tid
            (e.ts_us -. t0) e.dur_us)
        events
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf "{\"schema\":\"%s\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
         schema);
    let rec emit = function
      | [] -> ()
      | [ last ] ->
        Buffer.add_string buf last;
        Buffer.add_char buf '\n'
      | x :: rest ->
        Buffer.add_string buf x;
        Buffer.add_string buf ",\n";
        emit rest
    in
    emit (meta @ evs);
    Buffer.add_string buf "]}\n";
    Snapshot.write_file ~path (Buffer.contents buf)

  let contains hay needle =
    match Snapshot.find_sub hay needle with Some _ -> true | None -> false

  let validate_file ~path =
    match Snapshot.read_lines path with
    | exception Sys_error e -> Error e
    | [] -> Error "empty trace"
    | first :: rest ->
      if not (contains first ("\"" ^ schema ^ "\"")) then
        Error (Printf.sprintf "line 1: missing %S schema tag" schema)
      else if not (contains first "\"traceEvents\":[") then
        Error "line 1: missing \"traceEvents\" array opener"
      else begin
        let n = List.length rest in
        if n = 0 || List.nth rest (n - 1) <> "]}" then
          Error
            (Printf.sprintf "line %d: missing \"]}\" array closer" (n + 1))
        else begin
          let body = List.filteri (fun i _ -> i < n - 1) rest in
          let check i line =
            let lineno = i + 2 in
            let line =
              if String.length line > 0 && line.[String.length line - 1] = ','
              then String.sub line 0 (String.length line - 1)
              else line
            in
            if
              String.length line < 2
              || line.[0] <> '{'
              || line.[String.length line - 1] <> '}'
            then Error (Printf.sprintf "line %d: not a JSON object" lineno)
            else if contains line "\"ph\":\"M\"" then
              if contains line "\"name\":" && contains line "\"pid\":" then Ok ()
              else
                Error
                  (Printf.sprintf "line %d: metadata event missing name/pid"
                     lineno)
            else if contains line "\"ph\":\"X\"" then
              if
                contains line "\"name\":"
                && contains line "\"pid\":"
                && contains line "\"tid\":"
                && contains line "\"ts\":"
                && contains line "\"dur\":"
              then Ok ()
              else
                Error
                  (Printf.sprintf
                     "line %d: complete event missing name/pid/tid/ts/dur"
                     lineno)
            else Error (Printf.sprintf "line %d: unknown event phase" lineno)
          in
          let rec walk i = function
            | [] -> Ok (List.length body)
            | line :: more -> (
              match check i line with
              | Ok () -> walk (i + 1) more
              | Error e -> Error e)
          in
          walk 0 body
        end
      end
end

(* ------------------------------------------------------------------ *)
(* Flight recorder.                                                    *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

module Flight = struct
  let note t ~kind ~label =
    match t with
    | Disabled -> ()
    | Enabled r ->
      locked r (fun () ->
          let i = r.fl_total mod r.flight_cap in
          r.fl_kind.(i) <- kind;
          r.fl_label.(i) <- label;
          r.fl_seq.(i) <- r.fl_total;
          r.fl_total <- r.fl_total + 1)

  (* Oldest-first surviving marks. *)
  let marks r =
    locked r (fun () ->
        let n = Stdlib.min r.fl_total r.flight_cap in
        List.init n (fun j ->
            let i = (r.fl_total - n + j) mod r.flight_cap in
            (r.fl_seq.(i), r.fl_kind.(i), r.fl_label.(i))))

  let file_label label =
    String.map
      (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_') as c -> c | _ -> '-')
      label

  let dump t ?obs ~reason ~label () =
    match t with
    | Disabled -> ()
    | Enabled r -> (
      match r.flight_dir with
      | None -> ()
      | Some dir ->
        let seq =
          locked r (fun () ->
              let n =
                Stdlib.Option.value ~default:0 (Hashtbl.find_opt r.fl_dumps label)
              in
              Hashtbl.replace r.fl_dumps label (n + 1);
              r.dump_total <- r.dump_total + 1;
              n)
        in
        mkdir_p dir;
        let base = Printf.sprintf "flight-%s-%d" (file_label label) seq in
        (* Splice the reason and the mark ring in as comment lines
           right after the schema line, so the dump stays a valid
           vp-metrics-snapshot/1 file. *)
        let rendered = Snapshot.render ~volatile:true t in
        let cut = String.index rendered '\n' + 1 in
        let buf = Buffer.create (String.length rendered + 256) in
        Buffer.add_string buf (String.sub rendered 0 cut);
        Buffer.add_string buf (Printf.sprintf "# reason %s\n" reason);
        List.iter
          (fun (seq, kind, lbl) ->
            Buffer.add_string buf (Printf.sprintf "# mark %d %s %s\n" seq kind lbl))
          (marks r);
        Buffer.add_string buf
          (String.sub rendered cut (String.length rendered - cut));
        Snapshot.write_file
          ~path:(Filename.concat dir (base ^ ".metrics"))
          (Buffer.contents buf);
        (match obs with
        | Some o when Vp_obs.enabled o ->
          Vp_obs.Sink.write_trace o
            ~path:(Filename.concat dir (base ^ "-obs.jsonl"))
        | _ -> ()))

  let dumps t =
    match t with Disabled -> 0 | Enabled r -> locked r (fun () -> r.dump_total)
end

(* ------------------------------------------------------------------ *)
(* Pool scheduler hooks.                                               *)

module Sched = struct
  (* Worker indices are dense (0 .. jobs-1); 256 slots is far beyond
     any plausible pool and the mask keeps a stray index safe. *)
  let slots = 256

  let hooks t =
    match t with
    | Disabled -> None
    | Enabled _ ->
      let starts = Array.make slots 0.0 in
      Some
        {
          Vp_util.Pool.on_submit =
            (fun ~depth ->
              Histogram.observe ~volatile:true t "pool.queue_depth" depth);
          on_start =
            (fun ~domain ~depth ->
              ignore depth;
              starts.(domain land (slots - 1)) <- Unix.gettimeofday ();
              Counter.bump ~volatile:true t "pool.tasks" 1;
              Counter.bump ~volatile:true t
                (Printf.sprintf "pool.tasks.d%d" domain)
                1);
          on_finish =
            (fun ~domain ->
              let i = domain land (slots - 1) in
              let busy = Unix.gettimeofday () -. starts.(i) in
              Counter.bump ~volatile:true t
                (Printf.sprintf "pool.busy_us.d%d" domain)
                (int_of_float (busy *. 1e6)));
        }
end
