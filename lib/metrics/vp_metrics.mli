(** Continuous-profiling metrics plane: the aggregated, always-on
    counterpart to the event-shaped {!Vp_obs} spans and
    {!Vp_telemetry} series.

    A {!t} is a {e registry} of named counters, gauges, and
    fixed-bucket log-scale {!Hist}ograms, threaded through
    [Vacuum.Config] the same way as the obs recorder.  The
    {!disabled} registry turns every operation into an early-out on
    one immutable boolean, so instrumented paths cost nothing — and
    allocate nothing — when metrics are off.

    {b Determinism contract.}  Metrics come in two volatility
    classes.  {e Stable} metrics (the default for counters and
    histograms) carry schedule-independent values: instruction
    counts, cache events, demotion outcomes.  Their rendered
    snapshot is byte-identical for any [--jobs]/[--shards] and
    across execution backends, the same discipline as
    [Vp_aggregate.Profile].  {e Volatile} metrics (wall-clock
    readings, scheduler occupancy; every gauge) are excluded from
    the default snapshot and only appear under a [# volatile]
    marker when explicitly requested — so CI can diff the stable
    exposition while humans still see latency quantiles.

    {b Domains.}  All registry updates take the registry mutex;
    histograms merge additively (bucket vectors, exact count and
    sum), so concurrent writers from pool domains produce the same
    stable readings as the sequential schedule. *)

type t
(** A registry; either {!disabled} or created by {!create}. *)

val disabled : t
(** The shared no-op registry: every operation returns immediately
    and records nothing.  This is the default everywhere. *)

val create : ?flight_capacity:int -> ?flight_dir:string -> unit -> t
(** A fresh enabled registry.  [flight_capacity] (default [64])
    bounds the flight-recorder mark ring; [flight_dir], when given,
    enables {!Flight.dump} to write post-hoc diagnosis files there
    (created on first dump). *)

val enabled : t -> bool

(** Fixed-bucket log-scale histogram with exact count and sum.

    64 buckets: bucket 0 holds values [<= 0], bucket [i >= 1] holds
    values in [(2^(i-2), 2^(i-1)]] (upper bound [2^(i-1)]), with the
    last bucket absorbing everything larger.  Quantiles are read as
    the upper bound of the bucket where the cumulative count first
    reaches [ceil (q * count)] — an upper bound with at most 2x
    relative error, which is what a log-scale histogram promises.
    [merge_into] adds bucket vectors, counts and sums, and is
    associative and commutative, so parallel shards fold to the
    same reading in any order. *)
module Hist : sig
  type h

  val buckets : int
  (** Number of buckets, [64]. *)

  val create : unit -> h
  val observe : h -> int -> unit
  val count : h -> int
  val sum : h -> int

  val bound : int -> int
  (** Upper bound of bucket [i]: [bound 0 = 0], [bound i = 2^(i-1)]. *)

  val index : int -> int
  (** Bucket index for a value. *)

  val bucket_count : h -> int -> int
  (** Observations landing in bucket [i] (not cumulative). *)

  val quantile : h -> float -> int
  (** [quantile h q] for [q] in [0, 1]; [0] on an empty histogram. *)

  val merge_into : dst:h -> h -> unit
  val copy : h -> h
end

(** Named monotone counters.  [~volatile:true] marks a counter
    schedule-dependent; it is then excluded from the stable
    snapshot. *)
module Counter : sig
  val bump : ?volatile:bool -> t -> string -> int -> unit
  val value : t -> string -> int
end

(** Named last-writer-wins cells.  Gauges are {e always} volatile:
    under concurrent writers the surviving value is
    schedule-dependent, so no gauge may appear in the stable
    snapshot.  Use a histogram observed once per epoch for stable
    size readings. *)
module Gauge : sig
  val set : t -> string -> int -> unit
  val value : t -> string -> int
end

(** Named histograms (see {!Hist}).  [~volatile:true] for wall-clock
    series; instruction-count series default stable. *)
module Histogram : sig
  val observe : ?volatile:bool -> t -> string -> int -> unit
  val get : t -> string -> Hist.h option
  (** A copy of the named histogram's current state. *)
end

(** OpenMetrics-style text exposition (schema
    [vp-metrics-snapshot/1], documented in DESIGN.md).

    The file is line-oriented: [# vp-metrics-snapshot/1] first,
    [# EOF] last; metric names have [.]/[-] mapped to [_];
    counters render as [# TYPE n counter] + [n_total V]; gauges as
    [# TYPE n gauge] + [n V]; histograms as cumulative
    [n_bucket{le="B"} C] lines (non-empty buckets plus
    [le="+Inf"]), [n_sum]/[n_count], and [n_p50]/[n_p90]/[n_p99]
    readouts.  Stable metrics sorted by name come first; with
    [~volatile:true] a [# volatile] marker follows, then the
    volatile metrics. *)
module Snapshot : sig
  type sample =
    | Counter of int
    | Gauge of int
    | Hist of Hist.h

  val samples : ?volatile:bool -> t -> (string * sample) list
  (** Current values, sorted by name; [volatile] (default [false])
      appends the volatile section after the stable one. *)

  val render : ?volatile:bool -> t -> string

  val write : ?volatile:bool -> t -> path:string -> unit
  (** Atomic rewrite: renders to [path ^ ".tmp"] then renames, so a
      concurrent reader ([vpack top]) never sees a torn file. *)

  val validate_file : path:string -> (int, string) result
  (** Schema check; [Ok n] is the number of lines.  Errors name the
      offending line: ["line 12: ..."]. *)

  val read : path:string -> ((string * sample) list, string) result
  (** Parse an exposition file back into samples (names in rendered,
      sanitized form) — the [vpack top] ingestion path. *)
end

(** Chrome trace-event / Perfetto JSON export (schema
    [vp-perfetto-trace/1]): one complete event ([ph:"X"]) per line,
    pid = component, tid = domain/lane, timestamps in microseconds
    normalized to the earliest event. *)
module Perfetto : sig
  type event = {
    name : string;
    cat : string;
    pid : int;
    tid : int;
    ts_us : float;  (** absolute; normalized on write *)
    dur_us : float;
  }

  val of_spans : pid:int -> ?tid:int -> cat:string -> Vp_obs.span list -> event list
  (** Obs spans as events; [tid] defaults to the span's nesting
      depth. *)

  val write : ?processes:(int * string) list -> path:string -> event list -> unit
  (** [processes] adds [process_name] metadata records
      (pid, label). *)

  val validate_file : path:string -> (int, string) result
end

(** Flight recorder: a bounded ring of recent marks (demotions,
    rejections, oracle failures) plus the full metrics state,
    dumped to files on demand for post-hoc diagnosis of dirty
    epochs. *)
module Flight : sig
  val note : t -> kind:string -> label:string -> unit
  (** Record a mark in the ring; no I/O, no-op when disabled. *)

  val dump : t -> ?obs:Vp_obs.t -> reason:string -> label:string -> unit -> unit
  (** Write [<flight_dir>/flight-<label>-<n>.metrics] (a
      vp-metrics-snapshot/1 file with [# reason]/[# mark] comment
      lines, volatile section included) and, when [obs] is an
      enabled recorder, [flight-<label>-<n>-obs.jsonl]
      (vp-obs-trace/1).  [n] counts dumps per label.  No-op when
      disabled or no [flight_dir] was configured. *)

  val dumps : t -> int
  (** Total dumps written so far. *)
end

(** Pool scheduler telemetry: {!hooks} adapts a registry to
    {!Vp_util.Pool.hooks}, recording per-domain task counts
    ([pool.tasks.dK]), queue depth at submit ([pool.queue_depth])
    and per-domain busy time ([pool.busy_us.dK]) — all volatile,
    since scheduling is inherently schedule-dependent. *)
module Sched : sig
  val hooks : t -> Vp_util.Pool.hooks option
  (** [None] when the registry is disabled, so the pool's no-hook
      fast path is taken. *)
end
