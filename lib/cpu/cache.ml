type t = {
  sets : int;
  assoc : int;
  line_bytes : int;
  line_shift : int;  (* log2 line_bytes, or -1 when not a power of two *)
  set_mask : int;  (* sets - 1, or -1 when sets is not a power of two *)
  tags : int array;  (* sets * assoc, -1 = invalid *)
  lru : int array;  (* higher = more recently used *)
  mru : int array;  (* per set: slot index of the most recent hit/fill *)
  mutable clock : int;
  mutable access_count : int;
  mutable miss_count : int;
}

(* log2 of a power of two, -1 otherwise: lets {!access} use shift/mask
   instead of hardware division on the usual geometries. *)
let log2_pow2 n =
  if n <= 0 || n land (n - 1) <> 0 then -1
  else begin
    let k = ref 0 in
    while 1 lsl !k < n do
      incr k
    done;
    !k
  end

let create (g : Config.cache_geometry) =
  let lines = g.Config.size_bytes / g.Config.line_bytes in
  let sets = max 1 (lines / g.Config.assoc) in
  {
    sets;
    assoc = g.Config.assoc;
    line_bytes = g.Config.line_bytes;
    line_shift = log2_pow2 g.Config.line_bytes;
    set_mask = (if log2_pow2 sets >= 0 then sets - 1 else -1);
    tags = Array.make (sets * g.Config.assoc) (-1);
    lru = Array.make (sets * g.Config.assoc) 0;
    mru = Array.init sets (fun s -> s * g.Config.assoc);
    clock = 0;
    access_count = 0;
    miss_count = 0;
  }

(* Unchecked array access for the per-instruction path: every index
   below is a set or slot number masked (or mod-reduced) into range,
   so the bounds checks only cost cycles. *)
external ( .!() ) : 'a array -> int -> 'a = "%array_unsafe_get"
external ( .!()<- ) : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

let access t ~addr =
  t.access_count <- t.access_count + 1;
  t.clock <- t.clock + 1;
  let line =
    if t.line_shift >= 0 then addr lsr t.line_shift else addr / t.line_bytes
  in
  let set = if t.set_mask >= 0 then line land t.set_mask else line mod t.sets in
  (* Fast path: consecutive accesses overwhelmingly hit the line they
     hit last time (sequential fetch within a cache line, load/store
     streams).  Checking the set's most-recent slot first skips the
     associative scan without changing which tag matches. *)
  let m = t.mru.!(set) in
  if t.tags.!(m) = line then begin
    t.lru.!(m) <- t.clock;
    true
  end
  else begin
    let base = set * t.assoc in
    (* Plain int scan, no option: this runs once per simulated
       instruction fetch and once per memory access. *)
    let slot = ref (-1) in
    let i = ref 0 in
    while !slot < 0 && !i < t.assoc do
      if t.tags.!(base + !i) = line then slot := base + !i;
      incr i
    done;
    if !slot >= 0 then begin
      t.lru.!(!slot) <- t.clock;
      t.mru.!(set) <- !slot;
      true
    end
    else begin
      t.miss_count <- t.miss_count + 1;
      (* LRU victim (invalid slots have lru 0 and lose ties). *)
      let victim = ref base in
      for i = 1 to t.assoc - 1 do
        if t.lru.!(base + i) < t.lru.!(!victim) then victim := base + i
      done;
      t.tags.!(!victim) <- line;
      t.lru.!(!victim) <- t.clock;
      t.mru.!(set) <- !victim;
      false
    end
  end

(* Return the model to its post-{!create} state: all lines invalid,
   statistics zeroed.  Lets a pool reuse the multi-kilobyte tag/LRU
   arrays instead of reallocating them for every simulation. *)
let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0;
  Array.iteri (fun s _ -> t.mru.(s) <- s * t.assoc) t.mru;
  t.clock <- 0;
  t.access_count <- 0;
  t.miss_count <- 0

let line_index t addr =
  if t.line_shift >= 0 then addr lsr t.line_shift else addr / t.line_bytes

let accesses t = t.access_count
let misses t = t.miss_count

let miss_rate t =
  if t.access_count = 0 then 0.0
  else float_of_int t.miss_count /. float_of_int t.access_count

let reset_stats t =
  t.access_count <- 0;
  t.miss_count <- 0
