(** Set-associative LRU cache model shared by the I-cache, D-cache and
    L2 of the timing pipeline. *)

type t

val create : Config.cache_geometry -> t

val access : t -> addr:int -> bool
(** True on hit; a miss installs the line (allocate-on-miss, LRU
    victim). *)

val line_index : t -> int -> int
(** The line number [addr] maps to.  Lets a client model a line
    buffer: a repeat access to the line it just accessed is a
    guaranteed hit (nothing can have evicted it in between) and may
    be skipped without changing any future hit/miss or eviction
    decision — collapsing a contiguous same-line run to its first
    access preserves the per-set order of last touches. *)

val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float

val reset_stats : t -> unit

val reset : t -> unit
(** Back to the post-{!create} state: every line invalid, stats
    zeroed.  For pools that reuse the arrays across simulations. *)
