(** Branch prediction hardware of Table 2: a gshare direction
    predictor (2-bit counters, global history), a direct-mapped tagged
    BTB for taken-target lookup, and a return-address stack. *)

type t

val create : Config.t -> t

val predict_branch : t -> pc:int -> taken:bool -> bool
(** Predict-and-update for a conditional branch at [pc] with actual
    outcome [taken]; returns whether the prediction was correct. *)

val btb_lookup : t -> pc:int -> target:int -> bool
(** Was the taken-target available in the BTB?  Installs/updates the
    entry either way. *)

val call_push : t -> return_addr:int -> unit

val ret_predict : t -> actual:int -> bool
(** Pop the RAS and compare with the actual return address. *)

type stats = {
  branches : int;
  mispredictions : int;
  btb_lookups : int;
  btb_misses : int;
  returns : int;
  ras_misses : int;
}

val stats : t -> stats

val reset : t -> unit
(** Back to the post-{!create} state, reusing the arrays (see
    {!Cache.reset}). *)
