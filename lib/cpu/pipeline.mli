(** Trace-driven timing model of the Table 2 EPIC machine.

    The functional emulator supplies the retired instruction stream;
    this model charges cycles for in-order multi-issue with functional
    unit contention, operand latency interlocks, I-cache/D-cache/L2
    misses, taken-branch fetch redirects and branch/return
    mispredictions (charged at the 7-cycle resolution depth).
    Wrong-path cache pollution is not simulated — the misprediction
    penalty is the paper's fixed resolution latency (documented
    substitution in DESIGN.md). *)

type stats = {
  cycles : int;
  instructions : int;
  ipc : float;
  branch_mispredicts : int;
  ras_mispredicts : int;
  taken_redirects : int;  (** correctly predicted taken-branch bubbles *)
  icache_misses : int;
  dcache_misses : int;
  l2_misses : int;
  fetch_stall_cycles : int;
  data_stall_cycles : int;
  fetch_line_buffer_hits : int;
      (** fetches absorbed by the I-side line buffer (no cache access) *)
  data_line_buffer_hits : int;
      (** loads/stores absorbed by the D-side line buffer *)
}

val simulate :
  ?config:Config.t ->
  ?backend:Vp_exec.Emulator.backend ->
  ?fuel:int ->
  ?mem_words:int ->
  ?telemetry:Vp_telemetry.t ->
  Vp_prog.Image.t ->
  stats
(** Emulate the image and time its retirement stream.  [backend]
    selects which functional emulator produces the retire feed
    (default {!Vp_exec.Emulator.Decoded}); all backends deliver
    bit-identical streams, so the choice only affects wall-clock
    simulation speed.  With an enabled
    [telemetry] timeline, per-interval deltas of the timing series are
    recorded under the [timing.*] names ([instructions], [cycles],
    [icache_misses], [dcache_misses], [l2_misses], [mispredicts],
    [fetch_stalls], [data_stalls]); the disabled default costs one
    immutable-boolean test per retirement. *)

type phase_stats = {
  phase : int;  (** phase id from the timeline; -1 = between intervals *)
  branches : int;  (** retired conditional branches attributed *)
  seg_cycles : int;
  seg_instructions : int;
  seg_ipc : float;
}

val simulate_phases :
  ?config:Config.t ->
  ?backend:Vp_exec.Emulator.backend ->
  ?fuel:int ->
  ?mem_words:int ->
  timeline:(int * int * int) list ->
  Vp_prog.Image.t ->
  phase_stats list
(** Attribute cycles and instructions to the phases of a
    {!Vp_phase.Phase_log.timeline} — per-phase IPC on the Table 2
    machine.  Sorted by phase id; detector warm-up windows between
    intervals report as phase [-1]. *)

val speedup : baseline:stats -> optimized:stats -> float
(** [baseline.cycles / optimized.cycles]. *)

val pp : Format.formatter -> stats -> unit
