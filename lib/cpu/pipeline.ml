module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Reg = Vp_isa.Reg
module Emulator = Vp_exec.Emulator
module Decode = Vp_exec.Decode

type stats = {
  cycles : int;
  instructions : int;
  ipc : float;
  branch_mispredicts : int;
  ras_mispredicts : int;
  taken_redirects : int;
  icache_misses : int;
  dcache_misses : int;
  l2_misses : int;
  fetch_stall_cycles : int;
  data_stall_cycles : int;
  fetch_line_buffer_hits : int;
  data_line_buffer_hits : int;
}

(* Unchecked array access in the retire path: [pc] was validated by
   the emulator before retiring, the decoded tables have one entry per
   pc ([uses_off]/[defs_off] have [n + 1]), register numbers are in
   [0, Reg.count) by construction, and FU indices are in [0, 4). *)
external ( .!() ) : 'a array -> int -> 'a = "%array_unsafe_get"
external ( .!()<- ) : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

(* Monomorphic int max: [Stdlib.max] is polymorphic and goes through
   the generic comparison — a real function call at least once per
   retired instruction on this path. *)
let imax (a : int) (b : int) = if a >= b then a else b

let fu_index = function
  | Op.Ialu -> 0
  | Op.Fp | Op.Long_fp -> 1
  | Op.Mem -> 2
  | Op.Control -> 3

(* Domain-local pool of timing models (three caches + predictor).
   Their tag/LRU/counter arrays are ~160 KB per simulation and live on
   the major heap; reusing them across runs replaces that churn with a
   cheap reset.  Same steal-on-use discipline as [State]'s arena: the
   slot is emptied while the models are live, so a re-entrant
   simulation on the same domain simply allocates fresh ones. *)
let model_pool :
    (Config.t * (Cache.t * Cache.t * Cache.t * Predictor.t)) option ref
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let take_models (config : Config.t) =
  let slot = Domain.DLS.get model_pool in
  match !slot with
  | Some (key, ((l1i, l1d, l2, pred) as models)) when key == config ->
    slot := None;
    Cache.reset l1i;
    Cache.reset l1d;
    Cache.reset l2;
    Predictor.reset pred;
    models
  | _ ->
    ( Cache.create config.Config.l1i,
      Cache.create config.Config.l1d,
      Cache.create config.Config.l2,
      Predictor.create config )

let release_models config models =
  Domain.DLS.get model_pool := Some (config, models)

let simulate_internal ?(config = Config.default)
    ?(backend = Emulator.Decoded) ?fuel ?mem_words ?on_branch_progress
    ?(telemetry = Vp_telemetry.disabled) image =
  let d = Decode.of_image image in
  (* Per-pc tables, decoded once: the retire callback below reads
     these flat arrays instead of matching on boxed [Instr.t] and
     rebuilding use/def lists every retirement. *)
  let tag = d.Decode.tag in
  let btarget = d.Decode.target in
  let base_latency = d.Decode.latency in
  let uses_off = d.Decode.uses_off in
  let uses = d.Decode.uses in
  let defs_off = d.Decode.defs_off in
  let defs = d.Decode.defs in
  let fu_of_pc = Array.map fu_index d.Decode.fu in
  let ((l1i, l1d, l2, pred) as models) = take_models config in
  let fu_limit =
    [|
      config.Config.ialu_units;
      config.Config.fp_units;
      config.Config.mem_units;
      config.Config.branch_units;
    |]
  in
  (* Captured as immediate ints so the retire closure does not chase
     the config record on every instruction. *)
  let instr_bytes = config.Config.instr_bytes in
  let word_bytes = config.Config.word_bytes in
  let issue_width = config.Config.issue_width in
  let l2_latency = config.Config.l2_latency in
  let memory_latency = config.Config.memory_latency in
  let branch_resolution = config.Config.branch_resolution in
  let fu_used = Array.make 4 0 in
  let reg_ready = Array.make Reg.count 0 in
  let cycle = ref 0 in
  let width_used = ref 0 in
  let fetch_ready = ref 0 in
  let fetch_stalls = ref 0 in
  let data_stalls = ref 0 in
  let taken_redirects = ref 0 in
  let instructions = ref 0 in
  (* Line buffers, as in a real fetch/load unit: a repeat access to
     the line the cache just served is a guaranteed hit (no other
     access to that cache intervened, so nothing evicted it) and is
     not replayed.  Skipping these replays provably leaves every
     hit/miss count and LRU victim unchanged (see {!Cache.line_index}),
     and it removes a model call from the common sequential-fetch and
     stack-traffic paths. *)
  let fetch_line = ref (-1) in
  let data_line = ref (-1) in
  let fetch_lb_hits = ref 0 in
  let data_lb_hits = ref 0 in
  (* Telemetry: per-interval deltas of the timing-model series.  The
     retire path tests one immutable boolean; all registration and
     last-value state exists only when the timeline is enabled (the
     registers are no-ops on the disabled timeline). *)
  let tl = telemetry in
  let tl_on = Vp_telemetry.enabled tl in
  let tl_interval = Vp_telemetry.interval_length tl in
  let s_instr = Vp_telemetry.Series.register tl "timing.instructions" in
  let s_cycles = Vp_telemetry.Series.register tl "timing.cycles" in
  let s_icache = Vp_telemetry.Series.register tl "timing.icache_misses" in
  let s_dcache = Vp_telemetry.Series.register tl "timing.dcache_misses" in
  let s_l2 = Vp_telemetry.Series.register tl "timing.l2_misses" in
  let s_mispred = Vp_telemetry.Series.register tl "timing.mispredicts" in
  let s_fstall = Vp_telemetry.Series.register tl "timing.fetch_stalls" in
  let s_dstall = Vp_telemetry.Series.register tl "timing.data_stalls" in
  let tl_count = ref 0 in
  let tl_last = Array.make 7 0 in
  let tl_flush n =
    Vp_telemetry.Series.push tl s_instr n;
    let delta i s cur =
      Vp_telemetry.Series.push tl s (cur - tl_last.(i));
      tl_last.(i) <- cur
    in
    (* [!cycle + 1] is the cycle-count convention of [stats.cycles]
       (index of the last cycle -> number of cycles), so the interval
       deltas telescope to exactly the reported total. *)
    delta 0 s_cycles (!cycle + 1);
    delta 1 s_icache (Cache.misses l1i);
    delta 2 s_dcache (Cache.misses l1d);
    delta 3 s_l2 (Cache.misses l2);
    delta 4 s_mispred (Predictor.stats pred).Predictor.mispredictions;
    delta 5 s_fstall !fetch_stalls;
    delta 6 s_dstall !data_stalls
  in
  let advance_to c =
    if c > !cycle then begin
      cycle := c;
      width_used := 0;
      Array.fill fu_used 0 4 0
    end
  in
  (* Extra latency after an L1 miss; the L1-hit fast path is inlined
     at the call sites so the per-instruction cost is one [Cache.access]
     call, not a closure call wrapping it. *)
  let l2_penalty addr =
    if Cache.access l2 ~addr then l2_latency
    else l2_latency + memory_latency
  in
  let on_retire ~pc ~taken ~next_pc ~mem_addr =
    incr instructions;
    (* Fetch: I-cache access for this instruction's line. *)
    let fetch_addr = pc * instr_bytes in
    let line = Cache.line_index l1i fetch_addr in
    if line = !fetch_line then incr fetch_lb_hits
    else begin
      fetch_line := line;
      if not (Cache.access l1i ~addr:fetch_addr) then begin
        let fetch_pen = l2_penalty fetch_addr in
        fetch_ready := imax !fetch_ready (!cycle + fetch_pen)
      end
    end;
    (* Earliest issue: fetch and operands (decoded use set). *)
    let op_ready = ref 0 in
    for i = uses_off.!(pc) to uses_off.!(pc + 1) - 1 do
      let r = reg_ready.!(Reg.to_int uses.!(i)) in
      if r > !op_ready then op_ready := r
    done;
    let op_ready = !op_ready in
    let earliest = imax !fetch_ready op_ready in
    if earliest > !cycle then begin
      (if !fetch_ready >= op_ready then
         fetch_stalls := !fetch_stalls + (earliest - !cycle)
       else data_stalls := !data_stalls + (earliest - !cycle));
      advance_to earliest
    end;
    (* Structural hazards: issue width and FU availability. *)
    let fu = fu_of_pc.!(pc) in
    while
      !width_used >= issue_width || fu_used.!(fu) >= fu_limit.!(fu)
    do
      advance_to (!cycle + 1)
    done;
    fu_used.!(fu) <- fu_used.!(fu) + 1;
    incr width_used;
    (* Result latency, plus D-cache behaviour for memory operations
       ([mem_addr] is -1 for non-memory instructions). *)
    let t = tag.!(pc) in
    let latency =
      if t = Decode.tag_load then
        base_latency.!(pc)
        + (if mem_addr >= 0 then begin
             let a = mem_addr * word_bytes in
             let line = Cache.line_index l1d a in
             if line = !data_line then begin
               incr data_lb_hits;
               0
             end
             else begin
               data_line := line;
               if Cache.access l1d ~addr:a then 0 else l2_penalty a
             end
           end
           else 0)
      else begin
        if t = Decode.tag_store && mem_addr >= 0 then begin
          let a = mem_addr * word_bytes in
          let line = Cache.line_index l1d a in
          if line = !data_line then incr data_lb_hits
          else begin
            data_line := line;
            if not (Cache.access l1d ~addr:a) then ignore (l2_penalty a)
          end
        end;
        base_latency.!(pc)
      end
    in
    for i = defs_off.!(pc) to defs_off.!(pc + 1) - 1 do
      reg_ready.!(Reg.to_int defs.!(i)) <- !cycle + latency
    done;
    (* Control flow: fetch redirects and mispredictions.  Every
       conditional branch must consult the predictor and fire
       [on_branch_progress]: the emulator and the HSD count every
       [Br], so skipping any here would silently shift phase
       attribution in {!simulate_phases}. *)
    if t = Decode.tag_br then begin
      let correct = Predictor.predict_branch pred ~pc ~taken in
      if not correct then
        fetch_ready := imax !fetch_ready (!cycle + branch_resolution)
      else if taken then begin
        let btb_hit = Predictor.btb_lookup pred ~pc ~target:btarget.!(pc) in
        incr taken_redirects;
        fetch_ready := imax !fetch_ready (!cycle + if btb_hit then 1 else 2)
      end;
      match on_branch_progress with
      | Some f -> f ~cycles:!cycle ~instructions:!instructions
      | None -> ()
    end
    else if t = Decode.tag_jmp then fetch_ready := imax !fetch_ready (!cycle + 1)
    else if t = Decode.tag_call then begin
      Predictor.call_push pred ~return_addr:(pc + 1);
      fetch_ready := imax !fetch_ready (!cycle + 1)
    end
    else if t = Decode.tag_ret then begin
      let correct = Predictor.ret_predict pred ~actual:next_pc in
      fetch_ready :=
        imax !fetch_ready
          (!cycle + if correct then 1 else branch_resolution)
    end
    else if t = Decode.tag_br_unresolved then
      (* Reachable only when not taken — a taken unresolved branch
         already faulted inside the emulator. *)
      (match Instr.target d.Decode.code.(pc) with
      | Some (Instr.Label l) ->
        Vp_util.Error.failf ~stage:"pipeline" ~label:l ~pc
          "unresolved label %s in branch at 0x%x" l pc
      | _ -> assert false);
    if tl_on then begin
      incr tl_count;
      if !tl_count = tl_interval then begin
        tl_count := 0;
        tl_flush tl_interval
      end
    end
  in
  (* The retire feed driving the timing model comes from whichever
     functional backend is selected; the timing tables above are keyed
     by pc only, so the feed's provenance is transparent. *)
  let (_ : Emulator.outcome) =
    match backend with
    | Emulator.Decoded -> Emulator.run_decoded ?fuel ?mem_words ~on_retire d
    | Emulator.Compiled ->
      Emulator.run_compiled ?fuel ?mem_words ~on_retire
        (Vp_exec.Compile.of_image image)
    | Emulator.Reference ->
      Emulator.run_backend ~backend:Emulator.Reference ?fuel ?mem_words
        ~on_retire image
  in
  if tl_on && !tl_count > 0 then tl_flush !tl_count;
  let pstats = Predictor.stats pred in
  let total_cycles = !cycle + 1 in
  let result =
    {
      cycles = total_cycles;
      instructions = !instructions;
      ipc =
        (if total_cycles = 0 then 0.0
         else float_of_int !instructions /. float_of_int total_cycles);
      branch_mispredicts = pstats.Predictor.mispredictions;
      ras_mispredicts = pstats.Predictor.ras_misses;
      taken_redirects = !taken_redirects;
      icache_misses = Cache.misses l1i;
      dcache_misses = Cache.misses l1d;
      l2_misses = Cache.misses l2;
      fetch_stall_cycles = !fetch_stalls;
      data_stall_cycles = !data_stalls;
      fetch_line_buffer_hits = !fetch_lb_hits;
      data_line_buffer_hits = !data_lb_hits;
    }
  in
  release_models config models;
  result

let simulate ?config ?backend ?fuel ?mem_words ?telemetry image =
  simulate_internal ?config ?backend ?fuel ?mem_words ?telemetry image

type phase_stats = {
  phase : int;
  branches : int;
  seg_cycles : int;
  seg_instructions : int;
  seg_ipc : float;
}

let simulate_phases ?config ?backend ?fuel ?mem_words ~timeline image =
  (* The timeline gives [(start, stop, phase)] intervals in dynamic
     conditional-branch indices; attribute cycle/instruction deltas to
     the phase active at each retired branch (interval gaps — detector
     warmup — attribute to phase -1). *)
  let acc : (int, int * int * int) Hashtbl.t = Hashtbl.create 8 in
  let branch_index = ref 0 in
  let last_cycles = ref 0 in
  let last_instructions = ref 0 in
  (* The timeline is sorted and branch indices arrive monotonically, so
     a cursor suffices. *)
  let remaining = ref timeline in
  let phase_of i =
    let rec advance () =
      match !remaining with
      | (_, e, _) :: rest when i >= e ->
        remaining := rest;
        advance ()
      | _ -> ()
    in
    advance ();
    match !remaining with
    | (s, _, p) :: _ when i >= s -> p
    | _ -> -1
  in
  let on_branch_progress ~cycles ~instructions =
    incr branch_index;
    let p = phase_of !branch_index in
    let b, c, n = Option.value ~default:(0, 0, 0) (Hashtbl.find_opt acc p) in
    Hashtbl.replace acc p
      (b + 1, c + (cycles - !last_cycles), n + (instructions - !last_instructions));
    last_cycles := cycles;
    last_instructions := instructions
  in
  let (_ : stats) =
    simulate_internal ?config ?backend ?fuel ?mem_words ~on_branch_progress
      image
  in
  Hashtbl.fold
    (fun phase (branches, seg_cycles, seg_instructions) l ->
      {
        phase;
        branches;
        seg_cycles;
        seg_instructions;
        seg_ipc =
          (if seg_cycles = 0 then 0.0
           else float_of_int seg_instructions /. float_of_int seg_cycles);
      }
      :: l)
    acc []
  |> List.sort (fun a b -> compare a.phase b.phase)

let speedup ~baseline ~optimized =
  if optimized.cycles = 0 then 0.0
  else float_of_int baseline.cycles /. float_of_int optimized.cycles

let pp fmt s =
  Format.fprintf fmt
    "@[<v>cycles %d, instructions %d, IPC %.3f@,\
     mispredicts %d (ras %d), taken redirects %d@,\
     misses: L1I %d, L1D %d, L2 %d@,\
     stalls: fetch %d, data %d@]"
    s.cycles s.instructions s.ipc s.branch_mispredicts s.ras_mispredicts
    s.taken_redirects s.icache_misses s.dcache_misses s.l2_misses
    s.fetch_stall_cycles s.data_stall_cycles
