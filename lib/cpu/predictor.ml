type t = {
  history_mask : int;
  mutable history : int;
  counters : int array;  (* 2-bit saturating *)
  btb_tags : int array;
  btb_targets : int array;
  btb_mask : int;  (* entries - 1 when a power of two, else -1 *)
  ras : int array;
  ras_mask : int;  (* entries - 1 when a power of two, else -1 *)
  mutable ras_top : int;  (* number of valid entries, wraps *)
  mutable n_branches : int;
  mutable n_mispredictions : int;
  mutable n_btb_lookups : int;
  mutable n_btb_misses : int;
  mutable n_returns : int;
  mutable n_ras_misses : int;
}

type stats = {
  branches : int;
  mispredictions : int;
  btb_lookups : int;
  btb_misses : int;
  returns : int;
  ras_misses : int;
}

let pow2_mask n = if n > 0 && n land (n - 1) = 0 then n - 1 else -1

(* Unchecked array access: every index below is masked (or
   mod-reduced) into the table's range first. *)
external ( .!() ) : 'a array -> int -> 'a = "%array_unsafe_get"
external ( .!()<- ) : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

let create (cfg : Config.t) =
  let table_size = 1 lsl cfg.Config.gshare_history_bits in
  {
    history_mask = table_size - 1;
    history = 0;
    counters = Array.make table_size 1;
    btb_tags = Array.make cfg.Config.btb_entries (-1);
    btb_targets = Array.make cfg.Config.btb_entries 0;
    btb_mask = pow2_mask cfg.Config.btb_entries;
    ras = Array.make cfg.Config.ras_entries 0;
    ras_mask = pow2_mask cfg.Config.ras_entries;
    ras_top = 0;
    n_branches = 0;
    n_mispredictions = 0;
    n_btb_lookups = 0;
    n_btb_misses = 0;
    n_returns = 0;
    n_ras_misses = 0;
  }

(* Post-{!create} state, reusing the arrays (see {!Cache.reset}). *)
let reset t =
  t.history <- 0;
  Array.fill t.counters 0 (Array.length t.counters) 1;
  Array.fill t.btb_tags 0 (Array.length t.btb_tags) (-1);
  Array.fill t.btb_targets 0 (Array.length t.btb_targets) 0;
  Array.fill t.ras 0 (Array.length t.ras) 0;
  t.ras_top <- 0;
  t.n_branches <- 0;
  t.n_mispredictions <- 0;
  t.n_btb_lookups <- 0;
  t.n_btb_misses <- 0;
  t.n_returns <- 0;
  t.n_ras_misses <- 0

let predict_branch t ~pc ~taken =
  t.n_branches <- t.n_branches + 1;
  let index = (pc lxor t.history) land t.history_mask in
  let counter = t.counters.!(index) in
  let prediction = counter >= 2 in
  t.counters.!(index) <-
    (if taken then min 3 (counter + 1) else max 0 (counter - 1));
  t.history <- ((t.history lsl 1) lor if taken then 1 else 0) land t.history_mask;
  let correct = prediction = taken in
  if not correct then t.n_mispredictions <- t.n_mispredictions + 1;
  correct

let btb_lookup t ~pc ~target =
  t.n_btb_lookups <- t.n_btb_lookups + 1;
  let slot =
    if t.btb_mask >= 0 then pc land t.btb_mask
    else pc mod Array.length t.btb_tags
  in
  let hit = t.btb_tags.!(slot) = pc && t.btb_targets.!(slot) = target in
  if not hit then begin
    t.n_btb_misses <- t.n_btb_misses + 1;
    t.btb_tags.!(slot) <- pc;
    t.btb_targets.!(slot) <- target
  end;
  hit

let ras_slot t i =
  if t.ras_mask >= 0 then i land t.ras_mask else i mod Array.length t.ras

let call_push t ~return_addr =
  t.ras.!(ras_slot t t.ras_top) <- return_addr;
  t.ras_top <- t.ras_top + 1

let ret_predict t ~actual =
  t.n_returns <- t.n_returns + 1;
  let correct =
    if t.ras_top = 0 then false
    else begin
      t.ras_top <- t.ras_top - 1;
      t.ras.!(ras_slot t t.ras_top) = actual
    end
  in
  if not correct then t.n_ras_misses <- t.n_ras_misses + 1;
  correct

let stats t =
  {
    branches = t.n_branches;
    mispredictions = t.n_mispredictions;
    btb_lookups = t.n_btb_lookups;
    btb_misses = t.n_btb_misses;
    returns = t.n_returns;
    ras_misses = t.n_ras_misses;
  }
