module Instr = Vp_isa.Instr
module Image = Vp_prog.Image

type arc_kind = Taken | Fallthrough

type arc = { src : int; dst : int; kind : arc_kind }

type t = {
  sym : Image.sym;
  image : Image.t;
  starts : int array;
  lens : int array;
  succs : arc list array;
  preds : arc list array;
  calls : (int * int) list;
  back : (int * int) list;
}

let sym t = t.sym
let image t = t.image
let num_blocks t = Array.length t.starts
let entry _ = 0
let start t b = t.starts.(b)
let len t b = t.lens.(b)

let block_at t addr =
  let n = num_blocks t in
  let rec bsearch lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      if addr < t.starts.(mid) then bsearch lo (mid - 1)
      else if addr >= t.starts.(mid) + t.lens.(mid) then bsearch (mid + 1) hi
      else Some mid
  in
  bsearch 0 (n - 1)

let instrs t b =
  List.init t.lens.(b) (fun i -> Image.fetch t.image (t.starts.(b) + i))

let terminator t b =
  let last = Image.fetch t.image (t.starts.(b) + t.lens.(b) - 1) in
  if Instr.is_control last then Some last else None

let branch_addr t b =
  match terminator t b with
  | Some (Instr.Br _) -> Some (t.starts.(b) + t.lens.(b) - 1)
  | _ -> None

let succs t b = t.succs.(b)
let preds t b = t.preds.(b)

let arcs t =
  Array.to_list t.succs |> List.concat

let call_sites t = t.calls

let back_edges t = t.back

let preds_ignoring_back_edges t b =
  List.filter (fun a -> not (List.mem (a.src, a.dst) t.back)) t.preds.(b)

(* Depth-first search from the entry, classifying back edges (an arc
   into a block currently on the DFS stack). *)
let compute_back_edges starts succs =
  let n = Array.length starts in
  let state = Array.make n `White in
  let back = ref [] in
  let rec dfs b =
    state.(b) <- `Grey;
    List.iter
      (fun a ->
        match state.(a.dst) with
        | `Grey -> back := (a.src, a.dst) :: !back
        | `White -> dfs a.dst
        | `Black -> ())
      succs.(b);
    state.(b) <- `Black
  in
  if n > 0 then dfs 0;
  List.rev !back

let recover image (s : Image.sym) =
  let lo = s.Image.start in
  let hi = lo + s.Image.len in
  let in_func a = a >= lo && a < hi in
  (* Pass 1: leaders. *)
  let leaders = Hashtbl.create 64 in
  Hashtbl.replace leaders lo ();
  for addr = lo to hi - 1 do
    let i = Image.fetch image addr in
    (match i with
    | Instr.Br { target = Instr.Addr a; _ } | Instr.Jmp { target = Instr.Addr a } ->
      if in_func a then Hashtbl.replace leaders a ()
    | _ -> ());
    if Instr.is_control i && addr + 1 < hi then Hashtbl.replace leaders (addr + 1) ()
  done;
  let starts =
    Hashtbl.fold (fun a () acc -> a :: acc) leaders [] |> List.sort compare |> Array.of_list
  in
  let n = Array.length starts in
  let lens =
    Array.init n (fun b ->
        let next = if b + 1 < n then starts.(b + 1) else hi in
        next - starts.(b))
  in
  let id_of_addr = Hashtbl.create 64 in
  Array.iteri (fun b a -> Hashtbl.replace id_of_addr a b) starts;
  let block_of a = Hashtbl.find_opt id_of_addr a in
  (* Pass 2: arcs and calls. *)
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let calls = ref [] in
  let add_arc src dst kind =
    let a = { src; dst; kind } in
    succs.(src) <- succs.(src) @ [ a ];
    preds.(dst) <- preds.(dst) @ [ a ]
  in
  for b = 0 to n - 1 do
    let last_addr = starts.(b) + lens.(b) - 1 in
    let last = Image.fetch image last_addr in
    let fallthrough () =
      if b + 1 < n then add_arc b (b + 1) Fallthrough
    in
    match last with
    | Instr.Br { target = Instr.Addr a; _ } ->
      (match block_of a with Some d -> add_arc b d Taken | None -> ());
      fallthrough ()
    | Instr.Jmp { target = Instr.Addr a } ->
      (match block_of a with Some d -> add_arc b d Taken | None -> ())
    | Instr.Call { target = Instr.Addr a } ->
      calls := (b, a) :: !calls;
      fallthrough ()
    | Instr.Ret | Instr.Halt -> ()
    | Instr.Br _ | Instr.Jmp _ | Instr.Call _ ->
      Vp_util.Error.failf ~stage:"cfg" "recover: unresolved label in image"
    | Instr.Alu _ | Instr.Li _ | Instr.La _ | Instr.Load _ | Instr.Store _
    | Instr.Nop ->
      fallthrough ()
  done;
  let back = compute_back_edges starts succs in
  { sym = s; image; starts; lens; succs; preds; calls = List.rev !calls; back }

let pp fmt t =
  Format.fprintf fmt "@[<v>cfg %s (%d blocks)@," t.sym.Image.name (num_blocks t);
  for b = 0 to num_blocks t - 1 do
    let succ_str =
      String.concat ", "
        (List.map
           (fun a ->
             Printf.sprintf "%d%s" a.dst
               (match a.kind with Taken -> "t" | Fallthrough -> "f"))
           t.succs.(b))
    in
    Format.fprintf fmt "  B%d @@%x len %d -> [%s]@," b t.starts.(b) t.lens.(b) succ_str
  done;
  Format.fprintf fmt "@]"
