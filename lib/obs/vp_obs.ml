(* Recorder internals.  Everything behind [on]: the disabled recorder
   has empty storage and every entry point tests [on] first, so the
   instrumented pipeline costs one branch per call site when
   observability is off. *)

type counters = {
  mutable cnames : string array;
  mutable cvals : int array;
  mutable ccount : int;
  cindex : (string, int) Hashtbl.t;
}

(* Per-domain open-span stack: spans nest within one domain; tasks on
   other domains get their own stack, so concurrent stages never see
   each other's nesting. *)
type frame = {
  mutable fname : string;
  mutable fstart : float;
  mutable fminor : float;
  mutable fmajor : float;
}

type dstack = { frames : frame array; mutable depth : int }

let max_nesting = 64

type t = {
  on : bool;
  lock : Mutex.t;
  (* Completed-span ring, parallel arrays; slot = seq mod capacity. *)
  capacity : int;
  rnames : string array;
  rdepth : int array;
  rstart : float array;
  rwall : float array;
  rwork : int array;
  rminor : float array;
  rmajor : float array;
  mutable total : int;  (* spans ever appended; next seq *)
  mutable extra_dropped : int;  (* dropped counts inherited by merge *)
  counters : counters;
  stack : dstack Domain.DLS.key;
}

let make ~on ~capacity =
  {
    on;
    lock = Mutex.create ();
    capacity;
    rnames = Array.make capacity "";
    rdepth = Array.make capacity 0;
    rstart = Array.make capacity 0.0;
    rwall = Array.make capacity 0.0;
    rwork = Array.make capacity 0;
    rminor = Array.make capacity 0.0;
    rmajor = Array.make capacity 0.0;
    total = 0;
    extra_dropped = 0;
    counters =
      { cnames = [||]; cvals = [||]; ccount = 0; cindex = Hashtbl.create 32 };
    stack =
      Domain.DLS.new_key (fun () ->
          {
            frames =
              Array.init max_nesting (fun _ ->
                  { fname = ""; fstart = 0.0; fminor = 0.0; fmajor = 0.0 });
            depth = 0;
          });
  }

let disabled = make ~on:false ~capacity:1
let create ?(span_capacity = 4096) () = make ~on:true ~capacity:span_capacity
let enabled t = t.on

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let append t ~name ~depth ~start_s ~wall_s ~work ~minor ~major =
  locked t (fun () ->
      let slot = t.total mod t.capacity in
      t.rnames.(slot) <- name;
      t.rdepth.(slot) <- depth;
      t.rstart.(slot) <- start_s;
      t.rwall.(slot) <- wall_s;
      t.rwork.(slot) <- work;
      t.rminor.(slot) <- minor;
      t.rmajor.(slot) <- major;
      t.total <- t.total + 1)

module Counter = struct
  type id = int

  let register_unlocked t name =
    let c = t.counters in
    match Hashtbl.find_opt c.cindex name with
    | Some id -> id
    | None ->
      if c.ccount = Array.length c.cvals then begin
        let cap = Stdlib.max 16 (2 * c.ccount) in
        let cnames = Array.make cap "" in
        let cvals = Array.make cap 0 in
        Array.blit c.cnames 0 cnames 0 c.ccount;
        Array.blit c.cvals 0 cvals 0 c.ccount;
        c.cnames <- cnames;
        c.cvals <- cvals
      end;
      let id = c.ccount in
      c.cnames.(id) <- name;
      c.cvals.(id) <- 0;
      c.ccount <- id + 1;
      Hashtbl.replace c.cindex name id;
      id

  let register t name =
    if not t.on then 0 else locked t (fun () -> register_unlocked t name)

  let incr t id = if t.on then t.counters.cvals.(id) <- t.counters.cvals.(id) + 1
  let add t id n = if t.on then t.counters.cvals.(id) <- t.counters.cvals.(id) + n
  let value t id = if t.on then t.counters.cvals.(id) else 0

  (* The flush entry point: one locked read-modify-write, so concurrent
     tasks (engine workers) can flush the same counter name without
     losing updates — counter sums stay schedule-independent. *)
  let bump t name n =
    if t.on && n <> 0 then
      locked t (fun () ->
          let id = register_unlocked t name in
          t.counters.cvals.(id) <- t.counters.cvals.(id) + n)
end

module Span = struct
  type token = int
  (* 0 = null; otherwise the frame's stack position + 1 on the
     entering domain. *)

  let null = 0

  let enter t name =
    if not t.on then null
    else begin
      let st = Domain.DLS.get t.stack in
      if st.depth >= max_nesting then null
      else begin
        let f = st.frames.(st.depth) in
        f.fname <- name;
        f.fminor <- Gc.minor_words ();
        f.fmajor <- (Gc.quick_stat ()).Gc.major_words;
        f.fstart <- Unix.gettimeofday ();
        st.depth <- st.depth + 1;
        st.depth
      end
    end

  let exit ?(work = 0) t token =
    if t.on && token > 0 then begin
      let st = Domain.DLS.get t.stack in
      if token <= st.depth then begin
        let stop = Unix.gettimeofday () in
        let minor = Gc.minor_words () in
        let major = (Gc.quick_stat ()).Gc.major_words in
        (* Pop down to this frame; unclosed children (a raise skipped
           their exit) are discarded with their parent's extent. *)
        let f = st.frames.(token - 1) in
        st.depth <- token - 1;
        append t ~name:f.fname ~depth:(token - 1) ~start_s:f.fstart
          ~wall_s:(stop -. f.fstart) ~work ~minor:(minor -. f.fminor)
          ~major:(major -. f.fmajor)
      end
    end

  let record ?work t name f =
    if not t.on then f ()
    else begin
      let token = enter t name in
      match f () with
      | v ->
        exit ?work:(Option.map (fun w -> w v) work) t token;
        v
      | exception e ->
        exit ~work:(-1) t token;
        raise e
    end

  let note t name ~wall_s ~work =
    if t.on then
      append t ~name ~depth:0 ~start_s:(Unix.gettimeofday () -. wall_s) ~wall_s
        ~work ~minor:0.0 ~major:0.0
end

type span = {
  name : string;
  depth : int;
  seq : int;
  start_s : float;
  wall_s : float;
  work : int;
  minor_words : float;
  major_words : float;
}

module Sink = struct
  let spans t =
    if not t.on then []
    else
      locked t (fun () ->
          let kept = Stdlib.min t.total t.capacity in
          List.init kept (fun i ->
              let seq = t.total - kept + i in
              let slot = seq mod t.capacity in
              {
                name = t.rnames.(slot);
                depth = t.rdepth.(slot);
                seq;
                start_s = t.rstart.(slot);
                wall_s = t.rwall.(slot);
                work = t.rwork.(slot);
                minor_words = t.rminor.(slot);
                major_words = t.rmajor.(slot);
              }))

  let counters t =
    if not t.on then []
    else
      locked t (fun () ->
          let c = t.counters in
          List.init c.ccount (fun i -> (c.cnames.(i), c.cvals.(i)))
          |> List.sort compare)

  let dropped_spans t =
    if not t.on then 0
    else
      locked t (fun () -> t.extra_dropped + Stdlib.max 0 (t.total - t.capacity))

  let summary t =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun s ->
        let count, work =
          Option.value ~default:(0, 0) (Hashtbl.find_opt tbl s.name)
        in
        Hashtbl.replace tbl s.name (count + 1, work + s.work))
      (spans t);
    Hashtbl.fold (fun name (count, work) acc -> (name, count, work) :: acc) tbl []
    |> List.sort compare

  let merge_into ~dst src =
    if dst.on && src.on && dst != src then begin
      let src_spans = spans src in
      let src_counters = counters src in
      let src_dropped = dropped_spans src in
      List.iter
        (fun s ->
          append dst ~name:s.name ~depth:s.depth ~start_s:s.start_s
            ~wall_s:s.wall_s ~work:s.work ~minor:s.minor_words
            ~major:s.major_words)
        src_spans;
      List.iter (fun (name, v) -> Counter.bump dst name v) src_counters;
      locked dst (fun () -> dst.extra_dropped <- dst.extra_dropped + src_dropped)
    end

  (* Human tables: spans in chronological (start) order, indented by
     nesting depth; counters sorted by name. *)
  let span_table t =
    let tab =
      Vp_util.Tabular.create
        ~header:
          [
            ("span", Vp_util.Tabular.Left);
            ("wall", Vp_util.Tabular.Right);
            ("work", Vp_util.Tabular.Right);
            ("minor words", Vp_util.Tabular.Right);
            ("major words", Vp_util.Tabular.Right);
          ]
    in
    let by_start =
      List.sort
        (fun a b -> compare (a.start_s, a.seq) (b.start_s, b.seq))
        (spans t)
    in
    List.iter
      (fun s ->
        Vp_util.Tabular.add_row tab
          [
            String.make (2 * s.depth) ' ' ^ s.name;
            Printf.sprintf "%.3f ms" (1e3 *. s.wall_s);
            (if s.work = 0 then "-" else string_of_int s.work);
            Printf.sprintf "%.0f" s.minor_words;
            Printf.sprintf "%.0f" s.major_words;
          ])
      by_start;
    tab

  let counter_table t =
    let tab =
      Vp_util.Tabular.create
        ~header:
          [ ("counter", Vp_util.Tabular.Left); ("value", Vp_util.Tabular.Right) ]
    in
    List.iter
      (fun (name, v) -> Vp_util.Tabular.add_row tab [ name; string_of_int v ])
      (counters t);
    tab

  (* ---- JSON-lines trace (schema vp-obs-trace/1) ---- *)

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let json_float f = if Float.is_finite f then Printf.sprintf "%.6f" f else "0"

  let write_trace t ~path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Printf.fprintf oc
          "{\"type\": \"meta\", \"schema\": \"vp-obs-trace/1\", \
           \"dropped_spans\": %d}\n"
          (dropped_spans t);
        List.iter
          (fun s ->
            Printf.fprintf oc
              "{\"type\": \"span\", \"name\": \"%s\", \"depth\": %d, \"seq\": \
               %d, \"start_s\": %s, \"wall_s\": %s, \"work\": %d, \
               \"minor_words\": %s, \"major_words\": %s}\n"
              (json_escape s.name) s.depth s.seq (json_float s.start_s)
              (json_float s.wall_s) s.work (json_float s.minor_words)
              (json_float s.major_words))
          (spans t);
        List.iter
          (fun (name, v) ->
            Printf.fprintf oc
              "{\"type\": \"counter\", \"name\": \"%s\", \"value\": %d}\n"
              (json_escape name) v)
          (counters t))

  (* ---- validation ---- *)

  (* Pragmatic line checker matched to our own writer: one object per
     line, a [type] tag, and the schema's required keys all present.
     Not a general JSON parser — the trace format is fully under this
     module's control. *)

  let required_keys = function
    | "meta" -> Some [ "schema"; "dropped_spans" ]
    | "span" ->
      Some
        [
          "name"; "depth"; "seq"; "start_s"; "wall_s"; "work"; "minor_words";
          "major_words";
        ]
    | "counter" -> Some [ "name"; "value" ]
    | _ -> None

  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0

  let type_of_line line =
    let tag = "\"type\": \"" in
    match String.index_opt line '"' with
    | None -> None
    | Some _ ->
      let tl = String.length tag in
      let rec find i =
        if i + tl > String.length line then None
        else if String.sub line i tl = tag then
          let rest = i + tl in
          match String.index_from_opt line rest '"' with
          | Some j -> Some (String.sub line rest (j - rest))
          | None -> None
        else find (i + 1)
      in
      find 0

  let validate_line line =
    let line = String.trim line in
    let n = String.length line in
    if n < 2 || line.[0] <> '{' || line.[n - 1] <> '}' then
      Error "not a single-line JSON object"
    else
      match type_of_line line with
      | None -> Error "missing \"type\" tag"
      | Some ty -> (
        match required_keys ty with
        | None -> Error (Printf.sprintf "unknown record type %S" ty)
        | Some keys -> (
          match
            List.find_opt
              (fun k -> not (contains ~needle:(Printf.sprintf "\"%s\":" k) line))
              keys
          with
          | Some missing ->
            Error (Printf.sprintf "%s record lacks key %S" ty missing)
          | None -> Ok ()))

  let validate_file ~path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go n =
          match input_line ic with
          | exception End_of_file -> Ok n
          | line -> (
            match validate_line line with
            | Error e -> Error (Printf.sprintf "line %d: %s" (n + 1) e)
            | Ok () ->
              if n = 0 && type_of_line (String.trim line) <> Some "meta" then
                Error "line 1: expected the meta record first"
              else go (n + 1))
        in
        match go 0 with
        | Ok 0 -> Error "empty trace"
        | r -> r)
end
