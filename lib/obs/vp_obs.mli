(** Low-overhead pipeline observability: stage spans and counters.

    A {!t} is a {e recorder}.  The pipeline threads one recorder (via
    {!Vacuum.Config}) through every stage; stages wrap their work in
    {!Span.record} and flush stage statistics into named {!Counter}s.
    The {!disabled} recorder turns every operation into an early-out on
    one immutable boolean, so instrumented code paths cost nothing when
    observability is off — in particular the decoded execution core
    stays allocation-free (it is never instrumented directly; spans
    wrap it from outside and take their work figure from the
    emulator's outcome).

    {b Storage.}  Completed spans go into a ring of parallel arrays
    preallocated at {!create} time; when the ring wraps, the oldest
    spans are dropped and counted ({!Sink.dropped_spans}).  Counters
    are a registry of plain [int] cells; {!Counter.incr} is an array
    store.

    {b Domains.}  Ring appends and counter registration are guarded by
    a mutex, and the open-span stack is domain-local, so concurrent
    tasks (the {!Vacuum.Engine} DAG) can share one enabled recorder:
    counter {e sums} and the per-name span summary are deterministic
    for any schedule, while raw span order and wall-clock readings are
    not.  {!Counter.incr}/{!Counter.add} are unsynchronised plain
    stores — single-writer per counter, or flush domain-local tallies
    with one [add] per stage as the pipeline does. *)

type t
(** A recorder; either {!disabled} or created by {!create}. *)

val disabled : t
(** The shared no-op recorder: every operation returns immediately and
    records nothing.  This is the default everywhere. *)

val create : ?span_capacity:int -> unit -> t
(** A fresh enabled recorder.  [span_capacity] (default [4096]) bounds
    the span ring; the counter registry grows on demand. *)

val enabled : t -> bool

(** Stage counters: named monotone integers. *)
module Counter : sig
  type id
  (** Index into the recorder's counter registry. *)

  val register : t -> string -> id
  (** Idempotent: registering the same name twice returns the same
      cell.  On {!disabled} returns a dummy id whose updates are
      dropped. *)

  val incr : t -> id -> unit
  (** One plain array store; no lock, no allocation. *)

  val add : t -> id -> int -> unit
  val value : t -> id -> int

  val bump : t -> string -> int -> unit
  (** [register] + [add] under the recorder's mutex — the flush entry
      point for cold once-per-stage tallies.  Unlike {!incr}/{!add},
      safe from concurrently running tasks. *)
end

(** Nestable stage spans. *)
module Span : sig
  type token
  (** An open span, held by the caller between {!enter} and {!exit}. *)

  val null : token
  (** The token {!enter} returns on a disabled recorder; {!exit}
      ignores it. *)

  val enter : t -> string -> token
  (** Open a span.  Nesting is tracked per domain: a span entered
      while another is open on the same domain records one level
      deeper. *)

  val exit : ?work:int -> t -> token -> unit
  (** Close the span and append it to the ring with its wall-clock
      seconds, minor/major allocation words, and [work] (default [0];
      the pipeline reports retired instructions here). *)

  val record : ?work:('a -> int) -> t -> string -> (unit -> 'a) -> 'a
  (** [record t name f] = [enter] / [f ()] / [exit], exception-safe;
      [work] maps the result to the span's work figure.  A span whose
      [f] raises is recorded with work [-1]. *)

  val note : t -> string -> wall_s:float -> work:int -> unit
  (** Append an already-measured span (depth 0) — the adapter for
      externally-timed metrics such as the engine's task table. *)
end

(** One completed span, as exported by {!Sink}. *)
type span = {
  name : string;
  depth : int;  (** nesting level at entry, 0 = top *)
  seq : int;
      (** global completion index; after ring wrap-around the oldest
          surviving span's [seq] equals {!Sink.dropped_spans} *)
  start_s : float;  (** [Unix.gettimeofday] at entry *)
  wall_s : float;
  work : int;  (** caller-defined; retired instructions for run spans *)
  minor_words : float;  (** minor-heap words allocated inside the span *)
  major_words : float;
}

(** Export: tables, JSON-lines traces, deterministic summaries. *)
module Sink : sig
  val spans : t -> span list
  (** Completed spans in completion order (oldest first, post-wrap). *)

  val counters : t -> (string * int) list
  (** Counter values sorted by name. *)

  val dropped_spans : t -> int
  (** Spans lost to ring wrap-around. *)

  val summary : t -> (string * int * int) list
  (** Per span name, sorted: (name, completions, total work).  Unlike
      {!spans} this is schedule-independent, hence comparable across
      [--jobs] values. *)

  val merge_into : dst:t -> t -> unit
  (** Fold a recorder into [dst]: spans appended in order, counters
      added by name, dropped counts accumulated.  Merging into or from
      {!disabled} is a no-op. *)

  val span_table : t -> Vp_util.Tabular.t
  val counter_table : t -> Vp_util.Tabular.t

  val write_trace : t -> path:string -> unit
  (** JSON-lines trace file (schema [vp-obs-trace/1], documented in
      DESIGN.md): a meta line, then one object per span in completion
      order, then one per counter sorted by name. *)

  val validate_line : string -> (unit, string) result
  (** Check one trace line against the schema (object shape, [type]
      tag, required keys). *)

  val validate_file : path:string -> (int, string) result
  (** Validate every line of a trace file; [Ok n] is the number of
      lines checked.  Fails on an empty file, a missing meta line, or
      any malformed line. *)
end
