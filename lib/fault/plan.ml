type snapshot_faults = {
  drop : float;
  duplicate : float;
  reorder : float;
  saturate : float;
  zero_counters : float;
  alias : float;
  truncate_frac : float;
}

type resource_faults = {
  fuel_frac : float option;
  max_package_instrs : int option;
  max_expansion_pct : float option;
}

type t = {
  name : string;
  seed : int;
  snapshot : snapshot_faults;
  resource : resource_faults;
}

let no_snapshot_faults =
  {
    drop = 0.;
    duplicate = 0.;
    reorder = 0.;
    saturate = 0.;
    zero_counters = 0.;
    alias = 0.;
    truncate_frac = 1.;
  }

let no_resource_faults =
  { fuel_frac = None; max_package_instrs = None; max_expansion_pct = None }

let v ?(seed = 0) ?(drop = 0.) ?(duplicate = 0.) ?(reorder = 0.)
    ?(saturate = 0.) ?(zero_counters = 0.) ?(alias = 0.)
    ?(truncate_frac = 1.) ?fuel_frac ?max_package_instrs ?max_expansion_pct
    name =
  {
    name;
    seed;
    snapshot =
      { drop; duplicate; reorder; saturate; zero_counters; alias; truncate_frac };
    resource = { fuel_frac; max_package_instrs; max_expansion_pct };
  }

let clean = v "clean"

let is_clean t =
  t.snapshot =
    { no_snapshot_faults with truncate_frac = t.snapshot.truncate_frac }
  && t.snapshot.truncate_frac >= 1.
  && t.resource = no_resource_faults

let with_seed t seed = { t with seed }

(* Each preset stresses one failure family hard enough to matter on
   the small A inputs; probabilities were chosen so a handful of seeds
   reliably trigger the fault without emptying the profile entirely. *)
let presets =
  [
    clean;
    v "drop-snapshots" ~drop:0.5;
    v "duplicate-reorder" ~duplicate:0.5 ~reorder:0.5;
    v "saturate-counters" ~saturate:0.6;
    v "zero-counters" ~zero_counters:0.6;
    v "alias-branches" ~alias:0.8;
    v "mid-phase-truncation" ~truncate_frac:0.4;
    v "fuel-starvation" ~fuel_frac:0.02;
    v "package-budget" ~max_package_instrs:40;
    v "region-collapse" ~max_package_instrs:4;
    v "expansion-exhausted" ~max_expansion_pct:0.;
  ]

let find_preset name = List.find_opt (fun p -> p.name = name) presets

let pp ppf t =
  let s = t.snapshot and r = t.resource in
  let fields =
    List.filter_map Fun.id
      [
        (if s.drop > 0. then Some (Printf.sprintf "drop=%.2f" s.drop) else None);
        (if s.duplicate > 0. then
           Some (Printf.sprintf "duplicate=%.2f" s.duplicate)
         else None);
        (if s.reorder > 0. then Some (Printf.sprintf "reorder=%.2f" s.reorder)
         else None);
        (if s.saturate > 0. then
           Some (Printf.sprintf "saturate=%.2f" s.saturate)
         else None);
        (if s.zero_counters > 0. then
           Some (Printf.sprintf "zero=%.2f" s.zero_counters)
         else None);
        (if s.alias > 0. then Some (Printf.sprintf "alias=%.2f" s.alias)
         else None);
        (if s.truncate_frac < 1. then
           Some (Printf.sprintf "truncate=%.2f" s.truncate_frac)
         else None);
        Option.map (Printf.sprintf "fuel=%.3f") r.fuel_frac;
        Option.map (Printf.sprintf "pkg-instrs=%d") r.max_package_instrs;
        Option.map (Printf.sprintf "expansion=%.1f%%") r.max_expansion_pct;
      ]
  in
  Format.fprintf ppf "%s[seed=%d%s]" t.name t.seed
    (match fields with
    | [] -> ""
    | fs -> "; " ^ String.concat ", " fs)
