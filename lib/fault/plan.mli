(** Fault plans: declarative descriptions of how to perturb the
    hardware→software boundary.

    The paper's pipeline is designed around a {e lossy} hardware
    profile — saturating BBB counters, capacity-evicted branches,
    phases that dissolve mid-snapshot.  A plan makes that lossiness an
    input instead of an accident: it names a set of snapshot-stream
    faults and resource faults, all driven by a {!Vp_util.Rng} seed so
    every injected fault is reproducible.  Plans carry no behaviour;
    {!Inject} interprets them. *)

type snapshot_faults = {
  drop : float;  (** probability each snapshot is dropped entirely *)
  duplicate : float;  (** probability each snapshot is delivered twice *)
  reorder : float;
      (** probability each adjacent snapshot pair arrives swapped *)
  saturate : float;
      (** per-entry probability both counters read fully saturated *)
  zero_counters : float;
      (** per-entry probability both counters read zero *)
  alias : float;
      (** per-snapshot probability two adjacent static branches fold
          into a single BBB entry (counts summed, saturating) *)
  truncate_frac : float;
      (** keep only the leading fraction of the profiled extent;
          [1.0] keeps everything *)
}

type resource_faults = {
  fuel_frac : float option;
      (** scale the profiling-run fuel budget by this fraction,
          forcing mid-phase exhaustion *)
  max_package_instrs : int option;
      (** static-instruction budget per package; larger packages are
          demoted *)
  max_expansion_pct : float option;
      (** total code-expansion budget; overruns drop packages
          largest-first, [0.0] forces the unmodified-image fallback *)
}

type t = {
  name : string;  (** stable identifier, used in reports and traces *)
  seed : int;  (** root seed for every probabilistic draw *)
  snapshot : snapshot_faults;
  resource : resource_faults;
}

val no_snapshot_faults : snapshot_faults
val no_resource_faults : resource_faults

val v :
  ?seed:int ->
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?saturate:float ->
  ?zero_counters:float ->
  ?alias:float ->
  ?truncate_frac:float ->
  ?fuel_frac:float ->
  ?max_package_instrs:int ->
  ?max_expansion_pct:float ->
  string ->
  t
(** [v name] builds a plan; omitted faults are inert. *)

val clean : t
(** The identity plan: every probability zero, every budget absent.
    Injecting it is guaranteed to be a no-op. *)

val is_clean : t -> bool

val with_seed : t -> int -> t
(** Same faults, different seed — one matrix row per seed. *)

val presets : t list
(** The chaos-matrix battery: [clean] plus plans that each stress one
    failure family (dropped/duplicated/reordered snapshots, saturated
    and zeroed counters, aliased branches, mid-phase truncation, fuel
    starvation, package-size budget, region collapse, exhausted
    expansion budget). *)

val find_preset : string -> t option

val pp : Format.formatter -> t -> unit
