(** Interpreter for {!Plan} fault plans.

    Injection happens at the hardware→software boundary: the snapshot
    list the detector hands the pipeline, and the resource budgets the
    driver runs under.  Every probabilistic draw comes from a keyed
    {!Vp_util.Rng.stream} of the plan's seed — one stream per fault
    family — so enabling one fault never perturbs the draws of
    another, and the same plan+seed always injects the same faults.

    Injecting {!Plan.clean} returns its inputs physically unchanged. *)

val fuel : plan:Plan.t -> int -> int
(** Apply the plan's [fuel_frac] to a fuel budget (floor 1). *)

val snapshots :
  plan:Plan.t -> counter_max:int -> Vp_hsd.Snapshot.t list ->
  Vp_hsd.Snapshot.t list
(** Perturb a detector snapshot stream per the plan: per-entry counter
    saturation/zeroing (to [counter_max]/0), adjacent static-branch
    aliasing (counts folded, saturating at [counter_max]), mid-phase
    truncation of the profiled extent, then per-snapshot drop,
    duplicate and adjacent reorder.  Snapshot ids are renumbered in
    delivery order whenever any fault is active. *)
