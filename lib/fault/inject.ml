module S = Vp_hsd.Snapshot
module R = Vp_util.Rng

let fuel ~(plan : Plan.t) budget =
  match plan.resource.fuel_frac with
  | None -> budget
  | Some f -> max 1 (int_of_float (float_of_int budget *. f))

(* One keyed stream per fault family: draws for (say) dropping never
   shift when saturation is toggled, which keeps plans composable and
   every fault attributable to its own knob. *)
let key_saturate = 1
let key_zero = 2
let key_alias = 3
let key_drop = 4
let key_duplicate = 5
let key_reorder = 6

let family (plan : Plan.t) key = R.stream (R.create ~seed:plan.seed) key

(* Counts folded across entries must clamp, never wrap or overshoot:
   the one shared clamp primitive is Vp_util.Counter.saturating_add. *)
let sat m a b = Vp_util.Counter.saturating_add ~max:m a b

let entry_faults ~(sf : Plan.snapshot_faults) ~rng_sat ~rng_zero ~rng_alias
    ~counter_max (snap : S.t) =
  let branches = snap.S.branches in
  let branches =
    if sf.saturate > 0. || sf.zero_counters > 0. then
      List.map
        (fun (e : S.entry) ->
          if sf.saturate > 0. && R.bool rng_sat sf.saturate then
            { e with S.executed = counter_max; taken = counter_max }
          else if sf.zero_counters > 0. && R.bool rng_zero sf.zero_counters
          then { e with S.executed = 0; taken = 0 }
          else e)
        branches
    else branches
  in
  let branches =
    if sf.alias > 0. && List.length branches >= 2 && R.bool rng_alias sf.alias
    then begin
      (* Fold entry [i+1] into entry [i]: two static branches now share
         one BBB entry, counts summed with counter saturation.  Entries
         stay ascending by pc because we keep the lower pc. *)
      let arr = Array.of_list branches in
      let i = R.int rng_alias (Array.length arr - 1) in
      let a = arr.(i) and b = arr.(i + 1) in
      let merged =
        {
          a with
          S.executed = sat counter_max a.S.executed b.S.executed;
          taken = sat counter_max a.S.taken b.S.taken;
        }
      in
      arr.(i) <- merged;
      Array.to_list arr
      |> List.filteri (fun j _ -> j <> i + 1)
    end
    else branches
  in
  { snap with S.branches }

let truncate ~frac snaps =
  match snaps with
  | [] -> []
  | _ ->
    let start =
      List.fold_left (fun acc (s : S.t) -> min acc s.S.detected_at)
        max_int snaps
    and stop =
      List.fold_left (fun acc (s : S.t) -> max acc s.S.ended_at) 0 snaps
    in
    let cut =
      start + int_of_float (frac *. float_of_int (stop - start))
    in
    List.filter_map
      (fun (s : S.t) ->
        if s.S.detected_at > cut then None
        else Some { s with S.ended_at = min s.S.ended_at cut })
      snaps

let reorder_adjacent rng p snaps =
  let arr = Array.of_list snaps in
  let i = ref 0 in
  while !i < Array.length arr - 1 do
    if R.bool rng p then begin
      let tmp = arr.(!i) in
      arr.(!i) <- arr.(!i + 1);
      arr.(!i + 1) <- tmp;
      incr i
    end;
    incr i
  done;
  Array.to_list arr

let snapshots ~(plan : Plan.t) ~counter_max snaps =
  let sf = plan.snapshot in
  let active =
    sf.drop > 0. || sf.duplicate > 0. || sf.reorder > 0. || sf.saturate > 0.
    || sf.zero_counters > 0. || sf.alias > 0. || sf.truncate_frac < 1.
  in
  if not active then snaps
  else begin
    let rng_sat = family plan key_saturate
    and rng_zero = family plan key_zero
    and rng_alias = family plan key_alias
    and rng_drop = family plan key_drop
    and rng_dup = family plan key_duplicate
    and rng_reorder = family plan key_reorder in
    let snaps =
      List.map
        (entry_faults ~sf ~rng_sat ~rng_zero ~rng_alias ~counter_max)
        snaps
    in
    let snaps =
      if sf.truncate_frac < 1. then truncate ~frac:sf.truncate_frac snaps
      else snaps
    in
    let snaps =
      if sf.drop > 0. then
        List.filter (fun _ -> not (R.bool rng_drop sf.drop)) snaps
      else snaps
    in
    let snaps =
      if sf.duplicate > 0. then
        List.concat_map
          (fun s -> if R.bool rng_dup sf.duplicate then [ s; s ] else [ s ])
          snaps
      else snaps
    in
    let snaps =
      if sf.reorder > 0. then reorder_adjacent rng_reorder sf.reorder snaps
      else snaps
    in
    List.mapi (fun i (s : S.t) -> { s with S.id = i }) snaps
  end
