module Instr = Vp_isa.Instr
module Image = Vp_prog.Image
module Cfg = Vp_cfg.Cfg
module Liveness = Vp_cfg.Liveness

type violation = {
  pkg : string option;
  what : string;
  addr : int option;
  label : string option;
}

type report = {
  packages : int;
  checked_instructions : int;
  exits_checked : int;
  patches_checked : int;
  links_checked : int;
  violations : violation list;
}

let ok r = r.violations = []

let pp_violation ppf v =
  let ctx =
    List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "pkg %s") v.pkg;
        Option.map (Printf.sprintf "addr 0x%x") v.addr;
        Option.map (Printf.sprintf "label %s") v.label;
      ]
  in
  Format.fprintf ppf "%s%s" v.what
    (match ctx with [] -> "" | c -> " (" ^ String.concat ", " c ^ ")")

let pp_report ppf r =
  Format.fprintf ppf
    "verified %d package(s): %d instructions, %d side exits, %d launch \
     patches, %d links — %s"
    r.packages r.checked_instructions r.exits_checked r.patches_checked
    r.links_checked
    (if ok r then "sound"
     else Printf.sprintf "%d violation(s)" (List.length r.violations));
  List.iter (fun v -> Format.fprintf ppf "@.  - %a" pp_violation v) r.violations

(* Function CFGs and liveness of the ORIGINAL image, recovered on
   demand.  The rewritten image is useless here: launch patches have
   already overwritten block terminators in it. *)
type oracle = {
  original : Image.t;
  cache : (string, Cfg.t * Liveness.t) Hashtbl.t;
}

let oracle_at o addr =
  match Image.sym_at o.original addr with
  | None -> None
  | Some sym ->
    (match Hashtbl.find_opt o.cache sym.Image.name with
    | Some cl -> Some cl
    | None ->
      let cfg = Cfg.recover o.original sym in
      let live = Liveness.compute cfg in
      Hashtbl.replace o.cache sym.Image.name (cfg, live);
      Some (cfg, live))

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* The left-most package of each group claims each launch address
   first — the same rule Emit applies, recomputed independently. *)
let expected_claims groups =
  let claimed = Hashtbl.create 16 in
  List.iter
    (fun (g : Linking.group) ->
      List.iter
        (fun (p : Pkg.t) ->
          List.iter
            (fun (_label, orig) ->
              if not (Hashtbl.mem claimed orig) then
                Hashtbl.replace claimed orig p.Pkg.id)
            p.Pkg.entries)
        g.Linking.ordered)
    groups;
  claimed

let check ~original (r : Emit.result) =
  let violations = ref [] in
  let push ?pkg ?addr ?label fmt =
    Printf.ksprintf
      (fun what -> violations := { pkg; what; addr; label } :: !violations)
      fmt
  in
  let image = r.Emit.image in
  let limit = original.Image.orig_limit in
  if image.Image.orig_limit <> limit then
    push "rewritten image moved orig_limit (%d -> %d)" limit
      image.Image.orig_limit;
  let oracle = { original; cache = Hashtbl.create 8 } in

  (* 1. Per-package structural validity. *)
  List.iter
    (fun (p : Pkg.t) ->
      match Pkg.validate p with
      | Ok () -> ()
      | Error e -> push ~pkg:p.Pkg.id "package invalid: %s" e)
    r.Emit.packages;

  (* 2. Control-flow closure of the appended code. *)
  let size = Image.size image in
  let pkg_at addr =
    Option.map (fun (s : Image.sym) -> s.Image.name) (Image.sym_at image addr)
  in
  let checked = ref 0 in
  for addr = limit to size - 1 do
    incr checked;
    let i = Image.fetch image addr in
    match Instr.target i with
    | None -> ()
    | Some (Instr.Label l) ->
      push ?pkg:(pkg_at addr) ~addr ~label:l "unresolved label in emitted code"
    | Some (Instr.Addr a) ->
      if a < 0 || a >= size then
        push ?pkg:(pkg_at addr) ~addr "control target 0x%x out of range" a
      else if Instr.is_control i && a >= limit && Image.sym_at image a = None
      then push ?pkg:(pkg_at addr) ~addr "control target 0x%x in no package" a
  done;

  (* 3. Side-exit liveness.  Exit blocks that linking retargeted are
     [Goto] terminators and are covered by closure + link agreement;
     the ones still leaving to original code carry the obligation that
     their recorded dummy consumers cover everything live there. *)
  let exits = ref 0 in
  List.iter
    (fun (p : Pkg.t) ->
      List.iter
        (fun (b : Pkg.block) ->
          match b.Pkg.term with
          | Pkg.Exit_jump target ->
            incr exits;
            if target < 0 || target >= limit then
              push ~pkg:p.Pkg.id ~label:b.Pkg.label ~addr:target
                "side exit leaves the original program"
            else (
              match oracle_at oracle target with
              | None ->
                push ~pkg:p.Pkg.id ~label:b.Pkg.label ~addr:target
                  "side exit targets no original function"
              | Some (cfg, live) ->
                (match Cfg.block_at cfg target with
                | Some blk when Cfg.start cfg blk = target ->
                  let need = Liveness.live_in live blk in
                  if not (subset need b.Pkg.live_out) then
                    push ~pkg:p.Pkg.id ~label:b.Pkg.label ~addr:target
                      "side exit drops live registers [%s]"
                      (String.concat ","
                         (List.filter_map
                            (fun rg ->
                              if List.mem rg b.Pkg.live_out then None
                              else Some (Vp_isa.Reg.name rg))
                            need))
                | _ ->
                  push ~pkg:p.Pkg.id ~label:b.Pkg.label ~addr:target
                    "side exit does not target a block leader"))
          | _ -> ())
        p.Pkg.blocks)
    r.Emit.packages;

  (* 4. Launch patches: equal to the recomputed claim set, each one a
     jump into the claiming package, everything else untouched. *)
  let claims = expected_claims r.Emit.groups in
  let patch_tbl = Hashtbl.create 16 in
  List.iter
    (fun (orig, target) -> Hashtbl.replace patch_tbl orig target)
    r.Emit.launch_patches;
  if Hashtbl.length patch_tbl <> List.length r.Emit.launch_patches then
    push "duplicate launch-patch addresses";
  Hashtbl.iter
    (fun orig _owner ->
      if not (Hashtbl.mem patch_tbl orig) then
        push ~addr:orig "claimed launch point never patched")
    claims;
  List.iter
    (fun (orig, target) ->
      (match Hashtbl.find_opt claims orig with
      | None -> push ~addr:orig "launch patch at unclaimed address"
      | Some owner ->
        (match Image.sym_at image target with
        | Some s when s.Image.name = owner && target >= limit -> ()
        | Some s ->
          push ~pkg:owner ~addr:orig
            "launch patch lands in %s, not the claiming package"
            s.Image.name
        | None -> push ~pkg:owner ~addr:orig "launch patch lands in no package"));
      if orig < 0 || orig >= limit then
        push ~addr:orig "launch patch outside the original program"
      else if Image.fetch image orig <> Instr.Jmp { target = Instr.Addr target }
      then push ~addr:orig "patched instruction is not the recorded jump")
    r.Emit.launch_patches;
  (* Reversibility: the patch set is exactly the original-code delta. *)
  for addr = 0 to limit - 1 do
    if
      (not (Hashtbl.mem patch_tbl addr))
      && Image.fetch image addr <> Image.fetch original addr
    then push ~addr "original code modified outside the launch-patch set"
  done;

  (* 5. Link agreement: shared root, and each link lands on the copy
     of the promised address under the promised inline context. *)
  let links = ref 0 in
  List.iter
    (fun (g : Linking.group) ->
      List.iter
        (fun (p : Pkg.t) ->
          if p.Pkg.root <> g.Linking.root then
            push ~pkg:p.Pkg.id "package root %s disagrees with group root %s"
              p.Pkg.root g.Linking.root)
        g.Linking.ordered;
      List.iter
        (fun (l : Linking.link) ->
          incr links;
          match
            List.find_opt
              (fun (p : Pkg.t) -> p.Pkg.id = l.Linking.to_pkg)
              r.Emit.packages
          with
          | None ->
            push ~pkg:l.Linking.from_pkg ~label:l.Linking.to_label
              "link targets missing package %s" l.Linking.to_pkg
          | Some dst ->
            (match Pkg.find_block dst l.Linking.to_label with
            | None ->
              push ~pkg:l.Linking.to_pkg ~label:l.Linking.to_label
                "link target block missing"
            | Some b ->
              let site = l.Linking.site in
              (match site.Pkg.cold_target with
              | Some cold when b.Pkg.orig_addr <> cold ->
                push ~pkg:l.Linking.to_pkg ~label:l.Linking.to_label
                  ~addr:b.Pkg.orig_addr
                  "link lands on 0x%x, promised 0x%x" b.Pkg.orig_addr cold
              | _ -> ());
              if b.Pkg.context <> site.Pkg.site_context then
                push ~pkg:l.Linking.to_pkg ~label:l.Linking.to_label
                  "link crosses inline contexts"))
        g.Linking.links)
    r.Emit.groups;

  {
    packages = List.length r.Emit.packages;
    checked_instructions = !checked;
    exits_checked = !exits;
    patches_checked = List.length r.Emit.launch_patches;
    links_checked = !links;
    violations = List.rev !violations;
  }
