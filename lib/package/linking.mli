(** Package transitions (Section 3.3.4).

    Packages sharing a root function cannot all own the single launch
    point, so cold exits of one package are retargeted to the copy of
    the same code in another package — provided the branch site's
    inline context is identical in both.  Links always go to the first
    compatible package to the "right" in a chosen ordering, wrapping;
    the left-most package owns shared launch points.  Orderings are
    ranked by the paper's accumulator formula over per-package ratios
    (incoming links / branch count) and the best ordering wins; the
    Figure 7 worked example (ratios 2/5, 2/5, 3/6 → 0.64) is a unit
    test. *)

type link = {
  from_pkg : string;
  site : Pkg.site;
  to_pkg : string;
  to_label : string;  (** target block label in [to_pkg] *)
}

type group = {
  root : string;
  ordered : Pkg.t list;
  links : link list;
  rank : float;
}

val rank_of_ratios : float list -> float

val links_for_ordering : Pkg.t list -> link list
(** Rightward-wrapping link resolution for one ordering. *)

val group_packages : ?linking:bool -> Pkg.t list -> group list
(** Group by root (insertion order preserved); with [linking] (default
    true) and more than one package in a group, search orderings
    (exhaustively up to 6 packages, greedily beyond) and keep the best
    by rank.  With [linking] off, groups keep natural order and carry
    no links. *)

type stats = {
  groups : int;
  linked_groups : int;  (** groups that ran the ordering search *)
  orderings_ranked : int;  (** candidate orderings evaluated *)
  greedy_fallbacks : int;  (** groups past the exhaustive-search cap *)
  links_resolved : int;  (** cross-package links resolved *)
}

val group_packages_with_stats :
  ?linking:bool -> Pkg.t list -> group list * stats
(** {!group_packages} plus where the ordering search spent its work. *)

val apply : group list -> Pkg.t list
(** Retarget each linked site's exit block to its cross-package
    destination; returns all packages in emission order. *)
