(** Package emission: linearise packages, append them to the binary
    image, and patch launch points.

    Linearisation walks blocks in package order, materialising a jump
    wherever a fall-through edge is not adjacent; inlined call sites
    expand to a return-address materialisation plus a jump.  All
    packages of a run share one label table, so cross-package links
    resolve like any other target.

    Launch points: every entry block's original address is patched
    with a jump to the entry's package copy.  When several packages of
    a root group share an entry address, the left-most package in the
    group's chosen ordering wins (Section 3.3.4). *)

type result = {
  image : Vp_prog.Image.t;  (** rewritten binary *)
  packages : Pkg.t list;  (** final packages, post-linking and transform *)
  groups : Linking.group list;
  launch_patches : (int * int) list;  (** original address -> package address *)
  package_instructions : int;  (** emitted package code size *)
  branch_map : (int * int) list;
      (** emitted conditional-branch address -> original branch pc, one
          entry per emitted [Br] whose block carries a site record;
          sorted.  This is the decoder ring that lets a profile taken
          over the rewritten image be folded back into original-image
          pc space (session drift detection). *)
}

val of_groups :
  ?transform:(protected:string list -> Pkg.t -> Pkg.t) ->
  Vp_prog.Image.t ->
  Linking.group list ->
  result
(** Emit already-grouped packages (see
    {!Linking.group_packages_with_stats}); the pipeline uses this to
    separate the linking stage from emission.  [transform] runs on
    each package after link resolution and before linearisation — the
    optimizer hook (layout, scheduling, superblock formation).
    [protected] names the package's blocks that are targets of
    cross-package links: they have unseen predecessors and must
    survive with their label and entry semantics intact.  Raises
    [Vp_util.Error.Error] if the rewritten image fails validation. *)

val emit :
  ?linking:bool ->
  ?transform:(protected:string list -> Pkg.t -> Pkg.t) ->
  Vp_prog.Image.t ->
  Pkg.t list ->
  result
(** [Linking.group_packages] followed by {!of_groups}. *)

val linearize : Pkg.t -> Vp_isa.Instr.t list
(** The instruction stream of one package with still-symbolic internal
    targets; exposed for tests. *)
