module Cfg = Vp_cfg.Cfg
module Image = Vp_prog.Image
module Instr = Vp_isa.Instr
module Region = Vp_region.Region

(* Mutable construction state for one package. *)
type state = {
  pkg_id : string;
  region : Region.t;
  roots : Roots.t;
  mutable blocks_rev : Pkg.block list;
  mutable sites_rev : Pkg.site list;
  contexts : (Pkg.context, int) Hashtbl.t;
  mutable next_ctx : int;
  mutable next_exit : int;
}

let ctx_id st ctx =
  match Hashtbl.find_opt st.contexts ctx with
  | Some id -> id
  | None ->
    let id = st.next_ctx in
    st.next_ctx <- id + 1;
    Hashtbl.replace st.contexts ctx id;
    id

let label st ctx addr = Printf.sprintf "%s$c%d$%x" st.pkg_id (ctx_id st ctx) addr

let fresh_exit st =
  let n = st.next_exit in
  st.next_exit <- n + 1;
  Printf.sprintf "%s$x%d" st.pkg_id n

(* An exit block leaving the package along [arc]; carries the live
   registers across the arc as dummy consumers for the optimizer. *)
let make_exit st view ctx (arc : Cfg.arc) =
  let cfg = Prune.cfg view in
  let target = Cfg.start cfg arc.Cfg.dst in
  let lbl = fresh_exit st in
  st.blocks_rev <-
    {
      Pkg.label = lbl;
      orig_addr = -1;
      context = ctx;
      body = [];
      term = Pkg.Exit_jump target;
      weight = 0;
      taken_prob = None;
      live_out = Prune.live_across view arc;
      is_exit = true;
    }
    :: st.blocks_rev;
  (lbl, target)

let find_arc cfg b kind =
  List.find_opt (fun (a : Cfg.arc) -> a.Cfg.kind = kind) (Cfg.succs cfg b)

(* Would inlining [callee] under [path] respect the recursion rule?
   A function may appear once on the path, and then only as the
   immediate caller making a direct self-recursive call. *)
let inline_allowed path callee =
  let occurrences = List.length (List.filter (( = ) callee) path) in
  occurrences = 0
  || occurrences = 1
     &&
     match List.rev path with last :: _ -> last = callee | [] -> false

let max_inline_depth = 8

(* Copy the selected blocks of [fname] under [ctx].  [ret_term] is the
   terminator replacing a return: [Pkg.Return] at root level or when
   the continuation is cold, [Pkg.Goto cont] for a hot continuation.
   Returns unit; blocks accumulate in [st]. *)
let rec copy_function st ~ctx ~path ~fname ~is_root ~ret_term =
  let view = Roots.view st.roots fname in
  let cfg = Prune.cfg view in
  let to_copy =
    if is_root then Prune.hot_blocks view else Prune.reachable_from_prologue view
  in
  let selected = Array.make (Cfg.num_blocks cfg) false in
  List.iter (fun b -> selected.(b) <- true) to_copy;
  let internal (a : Cfg.arc) =
    selected.(a.Cfg.dst)
    && Vp_region.Temperature.is_hot (Region.arc_temp (Prune.mf view) a)
    && Vp_region.Temperature.is_hot (Region.temp (Prune.mf view) a.Cfg.dst)
  in
  let target_label arc_opt ~fallback_exit =
    (* Label for a control transfer along [arc_opt]: a package-internal
       copy when the arc stays inside, an exit block otherwise.
       Returns (label, cold_target option): the cold target is the
       original address when the direction leaves the package. *)
    match arc_opt with
    | Some arc when internal arc -> (label st ctx (Cfg.start cfg arc.Cfg.dst), None)
    | Some arc ->
      let lbl, target = fallback_exit arc in
      (lbl, Some target)
    | None ->
      (* A control transfer with no recovered arc (target outside the
         function): treat as an exit to nowhere; cannot happen on
         builder-produced images. *)
      Vp_util.Error.failf ~stage:"build" "copy_function: dangling control transfer"
  in
  List.iter
    (fun b ->
      let instrs = Cfg.instrs cfg b in
      let terminator = Cfg.terminator cfg b in
      let body =
        match terminator with
        | Some _ -> List.filteri (fun i _ -> i < List.length instrs - 1) instrs
        | None -> instrs
      in
      let block_start = Cfg.start cfg b in
      let block_end = block_start + Cfg.len cfg b in
      let fallback_exit arc = make_exit st view ctx arc in
      let mk_term () =
        match terminator with
        | Some (Instr.Br { cond; src1; src2; target = Instr.Addr ta }) ->
          let taken_arc = find_arc cfg b Cfg.Taken in
          let fall_arc = find_arc cfg b Cfg.Fallthrough in
          let taken_lbl, taken_cold = target_label taken_arc ~fallback_exit in
          let fall_lbl, fall_cold = target_label fall_arc ~fallback_exit in
          ignore ta;
          let bias, cold_exit, cold_target =
            match (taken_cold, fall_cold) with
            | None, None -> (Pkg.U, None, None)
            | None, Some t -> (Pkg.T, Some fall_lbl, Some t)
            | Some t, None -> (Pkg.F, Some taken_lbl, Some t)
            | Some t, Some _ -> (Pkg.Neither, Some taken_lbl, Some t)
          in
          st.sites_rev <-
            {
              Pkg.orig_pc = block_end - 1;
              site_context = ctx;
              block_label = label st ctx block_start;
              bias;
              cold_exit;
              cold_target;
            }
            :: st.sites_rev;
          Pkg.Branch { cond; src1; src2; taken = taken_lbl; fall = fall_lbl }
        | Some (Instr.Jmp { target = Instr.Addr _ }) ->
          let arc = find_arc cfg b Cfg.Taken in
          let lbl, _ = target_label arc ~fallback_exit in
          Pkg.Goto lbl
        | Some (Instr.Call { target = Instr.Addr callee_entry }) -> (
          let call_site = block_end - 1 in
          let cont_arc = find_arc cfg b Cfg.Fallthrough in
          let callee_name =
            match Image.sym_at (Region.image st.region) callee_entry with
            | Some sym -> Some sym.Image.name
            | None -> None
          in
          let callee_in_region =
            match callee_name with
            | Some n -> Region.find_func st.region n <> None
            | None -> false
          in
          let do_inline =
            callee_in_region
            && (match callee_name with
               | Some n -> Roots.inlinable st.roots n && inline_allowed path n
               | None -> false)
            && List.length path < max_inline_depth
          in
          if do_inline then begin
            let callee = Option.get callee_name in
            let new_ctx = ctx @ [ call_site ] in
            let callee_ret_term =
              match cont_arc with
              | Some arc when internal arc ->
                Pkg.Goto (label st ctx (Cfg.start cfg arc.Cfg.dst))
              | Some _ | None ->
                (* Cold continuation: the restored ra already points at
                   the original continuation. *)
                Pkg.Return
            in
            copy_function st ~ctx:new_ctx ~path:(path @ [ callee ]) ~fname:callee
              ~is_root:false ~ret_term:callee_ret_term;
            let callee_cfg = Prune.cfg (Roots.view st.roots callee) in
            Pkg.Inlined_call
              {
                ra_value = call_site + 1;
                prologue = label st new_ctx (Cfg.start callee_cfg (Cfg.entry callee_cfg));
              }
          end
          else
            let next_lbl, _ =
              match cont_arc with
              | Some arc when internal arc ->
                (label st ctx (Cfg.start cfg arc.Cfg.dst), None)
              | Some arc ->
                let lbl, t = make_exit st view ctx arc in
                (lbl, Some t)
              | None -> Vp_util.Error.failf ~stage:"build" "call without continuation"
            in
            Pkg.Call_orig { callee = callee_entry; next = next_lbl })
        | Some Instr.Ret -> ret_term
        | Some Instr.Halt -> Pkg.Stop
        | Some (Instr.Br { target = Instr.Label _; _ })
        | Some (Instr.Jmp { target = Instr.Label _ })
        | Some (Instr.Call { target = Instr.Label _ }) ->
          Vp_util.Error.failf ~stage:"build" "unresolved label in image"
        | Some _ | None -> (
          (* Straight-line block: fall through. *)
          match find_arc cfg b Cfg.Fallthrough with
          | Some arc when internal arc ->
            Pkg.Fall (label st ctx (Cfg.start cfg arc.Cfg.dst))
          | Some arc ->
            let lbl, _ = make_exit st view ctx arc in
            Pkg.Goto lbl
          | None -> Vp_util.Error.failf ~stage:"build" "block without successor")
      in
      let term = mk_term () in
      st.blocks_rev <-
        {
          Pkg.label = label st ctx block_start;
          orig_addr = block_start;
          context = ctx;
          body;
          term;
          weight = Region.weight (Prune.mf view) b;
          taken_prob = Region.taken_prob (Prune.mf view) b;
          live_out = [];
          is_exit = false;
        }
        :: st.blocks_rev)
    to_copy

let build_one region roots ~prefix root =
  let st =
    {
      pkg_id = Printf.sprintf "%s$%s" prefix root;
      region;
      roots;
      blocks_rev = [];
      sites_rev = [];
      contexts = Hashtbl.create 8;
      next_ctx = 0;
      next_exit = 0;
    }
  in
  copy_function st ~ctx:[] ~path:[ root ] ~fname:root ~is_root:true
    ~ret_term:Pkg.Return;
  let view = Roots.view roots root in
  let cfg = Prune.cfg view in
  let entries =
    List.map
      (fun b -> (label st [] (Cfg.start cfg b), Cfg.start cfg b))
      (Prune.entry_blocks view)
  in
  {
    Pkg.id = st.pkg_id;
    region_id = (Region.snapshot region).Vp_hsd.Snapshot.id;
    root;
    blocks = List.rev st.blocks_rev;
    entries;
    sites = List.rev st.sites_rev;
  }

let build region ~prefix =
  let roots = Roots.compute region in
  List.map (fun (root, _) -> build_one region roots ~prefix root) (Roots.roots roots)
