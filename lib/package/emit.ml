module Instr = Vp_isa.Instr
module Reg = Vp_isa.Reg
module Image = Vp_prog.Image

type result = {
  image : Image.t;
  packages : Pkg.t list;
  groups : Linking.group list;
  launch_patches : (int * int) list;
  package_instructions : int;
  branch_map : (int * int) list;
}

(* One block's instruction stream; [next] is the label of the block
   that follows in layout order, letting fall-throughs stay implicit. *)
let block_instrs (b : Pkg.block) ~next =
  let jump_unless_adjacent l =
    if Some l = next then [] else [ Instr.Jmp { target = Instr.Label l } ]
  in
  let term_instrs =
    match b.Pkg.term with
    | Pkg.Fall l -> jump_unless_adjacent l
    | Pkg.Goto l -> [ Instr.Jmp { target = Instr.Label l } ]
    | Pkg.Branch { cond; src1; src2; taken; fall } ->
      Instr.Br { cond; src1; src2; target = Instr.Label taken }
      :: jump_unless_adjacent fall
    | Pkg.Call_orig { callee; next = n } ->
      Instr.Call { target = Instr.Addr callee } :: jump_unless_adjacent n
    | Pkg.Inlined_call { ra_value; prologue } ->
      [
        Instr.La { dst = Reg.ra; target = Instr.Addr ra_value };
        Instr.Jmp { target = Instr.Label prologue };
      ]
    | Pkg.Return -> [ Instr.Ret ]
    | Pkg.Exit_jump a -> [ Instr.Jmp { target = Instr.Addr a } ]
    | Pkg.Stop -> [ Instr.Halt ]
  in
  b.Pkg.body @ term_instrs

let linearize (p : Pkg.t) =
  let rec go = function
    | [] -> []
    | [ b ] -> block_instrs b ~next:None
    | b :: (nxt :: _ as rest) ->
      block_instrs b ~next:(Some nxt.Pkg.label) @ go rest
  in
  go p.Pkg.blocks

(* Like [linearize], but also returns each block label's offset. *)
let linearize_with_offsets p =
  let rec go pos chunks offsets = function
    | [] -> (List.concat (List.rev chunks), List.rev offsets)
    | b :: rest ->
      let next = match rest with nxt :: _ -> Some nxt.Pkg.label | [] -> None in
      let instrs = block_instrs b ~next in
      go
        (pos + List.length instrs)
        (instrs :: chunks)
        ((b.Pkg.label, pos) :: offsets)
        rest
  in
  go 0 [] [] p.Pkg.blocks

let of_groups ?(transform = fun ~protected:_ p -> p) image groups =
  let links = List.concat_map (fun g -> g.Linking.links) groups in
  let linked = Linking.apply groups in
  (* Blocks targeted by cross-package links have predecessors the
     transform cannot see; it must not absorb or shorten them. *)
  let final =
    List.map
      (fun (p : Pkg.t) ->
        let protected =
          List.filter_map
            (fun (l : Linking.link) ->
              if l.Linking.to_pkg = p.Pkg.id then Some l.Linking.to_label else None)
            links
        in
        transform ~protected p)
      linked
  in
  (* First pass: linearise everything and assign global addresses,
     accumulating sections in reverse (appending per package is
     quadratic). *)
  let base = Image.size image in
  let table = Hashtbl.create 256 in
  let sections =
    List.fold_left
      (fun (sections_rev, pos) p ->
        let instrs, offsets = linearize_with_offsets p in
        List.iter
          (fun (label, off) ->
            if Hashtbl.mem table label then
              Vp_util.Error.failf ~stage:"emit" ~label "duplicate label %s" label;
            Hashtbl.replace table label (pos + off))
          offsets;
        ((p, instrs) :: sections_rev, pos + List.length instrs))
      ([], base) final
    |> fst |> List.rev
  in
  let lookup label =
    match Hashtbl.find_opt table label with
    | Some a -> a
    | None -> Vp_util.Error.failf ~stage:"emit" ~label "undefined label %s" label
  in
  (* Second pass: resolve everything, then append all per-package
     symbols in one batch. *)
  let resolved =
    List.map
      (fun ((p : Pkg.t), instrs) ->
        (p.Pkg.id, Array.of_list (List.map (Instr.resolve lookup) instrs)))
      sections
  in
  let image', _starts = Image.append_many image resolved in
  let total =
    List.fold_left (fun acc (_, code) -> acc + Array.length code) 0 resolved
  in
  (* Launch points: left-most package of each group claims each entry
     address first. *)
  let claimed = Hashtbl.create 16 in
  List.iter
    (fun g ->
      List.iter
        (fun p ->
          List.iter
            (fun (label, orig_addr) ->
              if not (Hashtbl.mem claimed orig_addr) then
                Hashtbl.replace claimed orig_addr (lookup label))
            p.Pkg.entries)
        g.Linking.ordered)
    groups;
  let launch_patches =
    Hashtbl.fold (fun orig target acc -> (orig, target) :: acc) claimed []
    |> List.sort compare
  in
  let image'' =
    Image.patch image'
      (List.map
         (fun (orig, target) -> (orig, Instr.Jmp { target = Instr.Addr target }))
         launch_patches)
  in
  (match Image.validate image'' with
  | Ok () -> ()
  | Error e -> Vp_util.Error.failf ~stage:"emit" "invalid rewritten image: %s" e);
  (* Emitted conditional branch -> original branch pc.  Block bodies
     are straight-line, so a [Branch] terminator's [Br] sits exactly
     [|body|] instructions past the block label; the owning site (same
     block label) names the branch it was copied from.  Blocks without
     a site (e.g. synthesized by a transform) stay unmapped — profiles
     taken over the rewritten image simply drop those retirements. *)
  let branch_map =
    List.concat_map
      (fun (p : Pkg.t) ->
        List.filter_map
          (fun (b : Pkg.block) ->
            match b.Pkg.term with
            | Pkg.Branch _ -> (
              match
                List.find_opt
                  (fun (s : Pkg.site) -> s.Pkg.block_label = b.Pkg.label)
                  p.Pkg.sites
              with
              | Some s ->
                Some (lookup b.Pkg.label + List.length b.Pkg.body, s.Pkg.orig_pc)
              | None -> None)
            | _ -> None)
          p.Pkg.blocks)
      final
    |> List.sort compare
  in
  {
    image = image'';
    packages = final;
    groups;
    launch_patches;
    package_instructions = total;
    branch_map;
  }

let emit ?linking ?transform image pkgs =
  of_groups ?transform image (Linking.group_packages ?linking pkgs)
