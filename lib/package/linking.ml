type link = {
  from_pkg : string;
  site : Pkg.site;
  to_pkg : string;
  to_label : string;
}

type group = {
  root : string;
  ordered : Pkg.t list;
  links : link list;
  rank : float;
}

let rank_of_ratios = function
  | [] -> 0.0
  | r :: rest ->
    let acc = ref r in
    let weight = ref r in
    List.iter
      (fun ri ->
        weight := !weight *. ri;
        acc := !acc +. !weight)
      rest;
    !acc

(* A site with a cold direction links to the first package rightward
   (wrapping, excluding the source) holding a copy of the cold target
   under the identical inline context.

   The ordering search re-ranks the same package set under many
   candidate orders, so the [Pkg.copy_label] scans — the expensive,
   order-independent part — are memoised once per group: for each
   linkable site, [copies] records each package's copy label (indexed
   by the package's position in the base array). *)
type site_memo = {
  site : Pkg.site;
  copies : string option array;  (* by base index; [None] at the owner *)
}

(* Per base package index, its linkable sites in declaration order. *)
let memoize_sites arr =
  let n = Array.length arr in
  Array.mapi
    (fun i (p : Pkg.t) ->
      List.filter_map
        (fun (site : Pkg.site) ->
          match (site.Pkg.cold_exit, site.Pkg.cold_target, site.Pkg.bias) with
          | Some _, Some target, (Pkg.T | Pkg.F) ->
            let copies =
              Array.init n (fun j ->
                  if j = i then None
                  else Pkg.copy_label arr.(j) site.Pkg.site_context target)
            in
            Some { site; copies }
          | _ -> None)
        p.Pkg.sites)
    arr

(* Resolve links for one candidate order ([perm] maps position to base
   index), walking packages in candidate order so the link list is
   identical to a direct scan of the reordered list. *)
let links_for_permutation arr site_memos perm =
  let n = Array.length perm in
  let links = ref [] in
  Array.iteri
    (fun posn i ->
      List.iter
        (fun m ->
          let rec scan k =
            if k >= n - 1 then ()
            else
              let j = perm.((posn + 1 + k) mod n) in
              match m.copies.(j) with
              | Some to_label ->
                links :=
                  {
                    from_pkg = arr.(i).Pkg.id;
                    site = m.site;
                    to_pkg = arr.(j).Pkg.id;
                    to_label;
                  }
                  :: !links
              | None -> scan (k + 1)
          in
          scan 0)
        site_memos.(i))
    perm;
  List.rev !links

let rank_of_links arr branch_counts perm links =
  let n = Array.length arr in
  let incoming = Array.make n 0 in
  let index_of_id =
    let tbl = Hashtbl.create n in
    Array.iteri (fun i (p : Pkg.t) -> Hashtbl.replace tbl p.Pkg.id i) arr;
    fun id -> Hashtbl.find tbl id
  in
  List.iter
    (fun l -> let j = index_of_id l.to_pkg in incoming.(j) <- incoming.(j) + 1)
    links;
  let ratios =
    Array.to_list
      (Array.map
         (fun i ->
           if branch_counts.(i) = 0 then 0.0
           else float_of_int incoming.(i) /. float_of_int branch_counts.(i))
         perm)
  in
  rank_of_ratios ratios

let identity_perm n = Array.init n (fun i -> i)

let links_for_ordering ordered =
  let arr = Array.of_list ordered in
  links_for_permutation arr (memoize_sites arr) (identity_perm (Array.length arr))

(* Index permutations, leftmost element varying slowest; the head is
   the identity, which makes the fold below keep input order on ties. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

(* Beyond the exhaustive-search cap, build the order greedily: at each
   position try every remaining package (rest kept in input order) and
   keep the one whose completed ordering ranks highest. *)
let greedy_perm eval n =
  let chosen_rev = ref [] in
  let remaining = ref (List.init n (fun i -> i)) in
  for _ = 1 to n do
    let best =
      List.fold_left
        (fun best cand ->
          let perm =
            Array.of_list
              (List.rev_append !chosen_rev
                 (cand :: List.filter (fun j -> j <> cand) !remaining))
          in
          let rank, _ = eval perm in
          match best with
          | Some (best_rank, _) when best_rank >= rank -> best
          | _ -> Some (rank, cand))
        None !remaining
    in
    let cand = match best with Some (_, c) -> c | None -> assert false in
    chosen_rev := cand :: !chosen_rev;
    remaining := List.filter (fun j -> j <> cand) !remaining
  done;
  Array.of_list (List.rev !chosen_rev)

let max_exhaustive = 6

type stats = {
  groups : int;
  linked_groups : int;
  orderings_ranked : int;
  greedy_fallbacks : int;
  links_resolved : int;
}

let empty_stats =
  { groups = 0; linked_groups = 0; orderings_ranked = 0; greedy_fallbacks = 0; links_resolved = 0 }

let best_ordering pkgs =
  let arr = Array.of_list pkgs in
  let n = Array.length arr in
  let site_memos = memoize_sites arr in
  let branch_counts = Array.map Pkg.branch_count arr in
  let eval perm =
    let links = links_for_permutation arr site_memos perm in
    (rank_of_links arr branch_counts perm links, links)
  in
  let greedy = n > max_exhaustive in
  let candidates =
    if not greedy then
      List.map Array.of_list (permutations (List.init n (fun i -> i)))
    else begin
      Logs.warn (fun m ->
          m
            "Linking: %d packages share root %s; permutation search is capped \
             at %d, falling back to greedy rank-based ordering"
            n arr.(0).Pkg.root max_exhaustive);
      [ identity_perm n; greedy_perm eval n ]
    end
  in
  let scored =
    List.map
      (fun perm ->
        let rank, links = eval perm in
        (rank, perm, links))
      candidates
  in
  let best_rank, best_perm, best_links =
    List.fold_left
      (fun (best_rank, best_perm, best_links) (rank, perm, links) ->
        if rank > best_rank then (rank, perm, links)
        else (best_rank, best_perm, best_links))
      (match scored with
      | first :: _ -> first
      | [] -> (0.0, identity_perm n, []))
      scored
  in
  ( best_rank,
    Array.to_list (Array.map (fun i -> arr.(i)) best_perm),
    best_links,
    List.length candidates,
    greedy )

let group_packages_with_stats ?(linking = true) pkgs =
  let roots =
    List.rev
      (List.fold_left
         (fun acc p -> if List.mem p.Pkg.root acc then acc else p.Pkg.root :: acc)
         [] pkgs)
  in
  let stats = ref empty_stats in
  let groups =
    List.map
      (fun root ->
        let members = List.filter (fun p -> p.Pkg.root = root) pkgs in
        let g =
          if linking && List.length members > 1 then begin
            let rank, ordered, links, ranked, greedy = best_ordering members in
            stats :=
              {
                !stats with
                linked_groups = !stats.linked_groups + 1;
                orderings_ranked = !stats.orderings_ranked + ranked;
                greedy_fallbacks =
                  (!stats.greedy_fallbacks + if greedy then 1 else 0);
              };
            { root; ordered; links; rank }
          end
          else { root; ordered = members; links = []; rank = 0.0 }
        in
        stats :=
          {
            !stats with
            groups = !stats.groups + 1;
            links_resolved = !stats.links_resolved + List.length g.links;
          };
        g)
      roots
  in
  (groups, !stats)

let group_packages ?linking pkgs = fst (group_packages_with_stats ?linking pkgs)

(* Retarget the exit blocks chosen by links. *)
let apply groups =
  let retarget links p =
    let target_of label =
      List.find_opt (fun l -> l.from_pkg = p.Pkg.id && l.site.Pkg.cold_exit = Some label) links
    in
    Pkg.map_blocks
      (fun b ->
        if not b.Pkg.is_exit then b
        else
          match target_of b.Pkg.label with
          | Some l -> { b with Pkg.term = Pkg.Goto l.to_label }
          | None -> b)
      p
  in
  List.concat_map
    (fun g -> List.map (retarget g.links) g.ordered)
    groups
