(** Static soundness verification of emitted package images.

    An unsound rewrite is a crash, not a slowdown, so every image the
    packager emits is checked before anything simulates it.  The
    verifier re-derives its obligations from the original image — it
    shares no state with {!Emit} beyond the emitted {!Emit.result} —
    and checks four families:

    - {b control-flow closure}: every control target in appended code
      is a resolved address that lands inside package code or back in
      the original program; no unresolved labels survive emission.
    - {b side-exit liveness}: every [Exit_jump] leaves to the start of
      a recovered original-code block, and the registers live into
      that block (per {!Vp_cfg.Liveness} on the {e original} image)
      are all recorded in the exit block's [live_out] dummy consumers.
    - {b launch-point patching}: the patch set equals the left-most
      claim rule recomputed from the groups, each patch is a [Jmp]
      into the claiming package's section, and every unpatched
      original address is byte-identical to the original image — the
      rewrite is reversible.
    - {b link agreement}: linked packages share their group's root,
      and each cross-package link lands on a copy of the promised
      original address under the promised inline context.

    The verifier never raises on a malformed result; it reports. *)

type violation = {
  pkg : string option;  (** offending package id, when attributable *)
  what : string;
  addr : int option;
  label : string option;
}

type report = {
  packages : int;  (** packages checked *)
  checked_instructions : int;  (** appended instructions scanned *)
  exits_checked : int;  (** side exits with liveness obligations *)
  patches_checked : int;
  links_checked : int;
  violations : violation list;
}

val ok : report -> bool

val check : original:Vp_prog.Image.t -> Emit.result -> report
(** [check ~original r] verifies [r] against the pre-rewrite image
    [original].  [original] must be the image the packages were built
    from (launch patches overwrite it in [r.image], so obligations are
    recomputed from the clean copy). *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
