module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Reg = Vp_isa.Reg
module Image = Vp_prog.Image

type event = {
  pc : int;
  instr : Instr.t;
  taken : bool;
  next_pc : int;
  mem_addr : int option;
}

type outcome = {
  instructions : int;
  package_instructions : int;
  cond_branches : int;
  halted : bool;
  checksum : int;
  result : int;
  final_pc : int;
}

let target_addr = function
  | Instr.Addr a -> a
  | Instr.Label l -> Vp_util.Error.failf ~stage:"emulator" ~label:l "unresolved label %s" l

let operand_value st = function
  | Instr.Reg r -> State.reg st r
  | Instr.Imm n -> n

(* Unchecked array access inside the decoded hot loop: [pc] is
   validated against the image size at the top of each iteration, and
   every decoded table has exactly one entry per pc. *)
external ( .!() ) : 'a array -> int -> 'a = "%array_unsafe_get"

(* Cold path: an unresolved-label instruction actually executed.
   Re-read the boxed instruction to rebuild the exact message
   {!target_addr} would have produced. *)
let unresolved code pc =
  match Instr.target code.(pc) with
  | Some (Instr.Label l) ->
    Vp_util.Error.failf ~stage:"emulator" ~label:l "unresolved label %s" l
  | _ -> assert false

(* One bounded slice of decoded execution over an external [st]: starts
   from the state's current pc, retires at most [fuel] instructions, and
   leaves the final pc in the state so a later slice (possibly over a
   different image sharing the same address space) resumes exactly where
   this one stopped.  Counts in the outcome cover only this slice. *)
let decoded_slice st ~fuel ?on_branch ?on_event ?on_retire (d : Decode.t) =
  let instructions = ref 0 in
  let package_instructions = ref 0 in
  let cond_branches = ref 0 in
  let halted = ref false in
  let orig_limit = d.Decode.image.Image.orig_limit in
  let tag = d.Decode.tag in
  let dst = d.Decode.dst in
  let src1 = d.Decode.src1 in
  let src2 = d.Decode.src2 in
  let imm = d.Decode.imm in
  let alu_op = d.Decode.alu_op in
  let cond = d.Decode.cond in
  let target = d.Decode.target in
  let code = d.Decode.code in
  let size = Array.length tag in
  (* Per-instruction scratch, allocated once for the whole run: the
     retire loop writes plain ints and bools here instead of
     allocating an event record or a [mem_addr] option. *)
  let taken = ref false in
  let mem_addr = ref (-1) in
  let next = ref 0 in
  while (not !halted) && !instructions < fuel do
    let pc = State.pc st in
    if pc < 0 || pc >= size then
      Vp_util.Error.failf ~stage:"emulator" ~pc "pc 0x%x outside image" pc;
    incr instructions;
    if pc >= orig_limit then incr package_instructions;
    taken := false;
    mem_addr := -1;
    next := pc + 1;
    (match tag.!(pc) with
    | 0 (* Alu, register operand *) ->
      State.set_reg st dst.!(pc)
        (Op.eval_alu alu_op.!(pc) (State.reg st src1.!(pc))
           (State.reg st src2.!(pc)))
    | 1 (* Alu, immediate operand *) ->
      State.set_reg st dst.!(pc)
        (Op.eval_alu alu_op.!(pc) (State.reg st src1.!(pc)) imm.!(pc))
    | 2 (* Li *) -> State.set_reg st dst.!(pc) imm.!(pc)
    | 3 (* La *) -> State.set_reg st dst.!(pc) target.!(pc)
    | 4 (* Load *) ->
      let addr = State.reg st src1.!(pc) + imm.!(pc) in
      mem_addr := addr;
      State.set_reg st dst.!(pc) (State.mem st addr)
    | 5 (* Store *) ->
      let addr = State.reg st src1.!(pc) + imm.!(pc) in
      mem_addr := addr;
      let v = State.reg st dst.!(pc) in
      State.set_mem st addr v;
      (* ra spills hold code addresses; keep them out of the digest so
         original and rewritten binaries stay comparable. *)
      if not (Reg.equal dst.!(pc) Reg.ra) then State.bump_store_digest st addr v
    | 6 (* Br *) ->
      incr cond_branches;
      let t =
        Op.eval_cond cond.!(pc) (State.reg st src1.!(pc)) (State.reg st src2.!(pc))
      in
      taken := t;
      if t then next := target.!(pc);
      (match on_branch with Some f -> f ~pc ~taken:t | None -> ())
    | 7 (* Jmp *) ->
      taken := true;
      next := target.!(pc)
    | 8 (* Call *) ->
      taken := true;
      State.set_reg st Reg.ra (pc + 1);
      next := target.!(pc)
    | 9 (* Ret *) ->
      taken := true;
      let ra = State.reg st Reg.ra in
      if ra = State.halt_address then begin
        halted := true;
        next := State.halt_address
      end
      else next := ra
    | 10 (* Nop *) -> ()
    | 11 (* Halt *) ->
      halted := true;
      next := State.halt_address
    | 13 (* Br, unresolved label: fault only when taken *) ->
      incr cond_branches;
      let t =
        Op.eval_cond cond.!(pc) (State.reg st src1.!(pc)) (State.reg st src2.!(pc))
      in
      taken := t;
      if t then unresolved code pc;
      (match on_branch with Some f -> f ~pc ~taken:t | None -> ())
    | _ (* La/Jmp/Call with an unresolved label *) -> unresolved code pc);
    (match on_event with
    | Some f ->
      f
        {
          pc;
          instr = code.(pc);
          taken = !taken;
          next_pc = !next;
          mem_addr = (if !mem_addr < 0 then None else Some !mem_addr);
        }
    | None -> ());
    (match on_retire with
    | Some f -> f ~pc ~taken:!taken ~next_pc:!next ~mem_addr:!mem_addr
    | None -> ());
    if not !halted then State.set_pc st !next
  done;
  {
    instructions = !instructions;
    package_instructions = !package_instructions;
    cond_branches = !cond_branches;
    halted = !halted;
    checksum = State.checksum st;
    result = State.reg st Reg.ret_value;
    final_pc = State.pc st;
  }

let run_decoded ?(fuel = 200_000_000) ?(mem_words = 1 lsl 20) ?on_branch
    ?on_event ?on_retire (d : Decode.t) =
  let st = State.create ~mem_words d.Decode.image in
  let outcome = decoded_slice st ~fuel ?on_branch ?on_event ?on_retire d in
  (* The state never escapes this function; recycle its memory array. *)
  State.release st;
  outcome

let run ?fuel ?mem_words ?on_branch ?on_event ?on_retire image =
  run_decoded ?fuel ?mem_words ?on_branch ?on_event ?on_retire
    (Decode.of_image image)

(* Fuse the two retirement channels into the compiler's single sink,
   preserving the decoded loop's order: [on_event] (boxed record)
   first, then [on_retire] (plain ints).  With neither present the
   sink is [None] and exec selects the observer-free compiled
   variant. *)
let fused_sink image ~on_event ~on_retire =
  match (on_event, on_retire) with
  | None, None -> None
  | _ ->
    let code = image.Image.code in
    Some
      (fun ~pc ~taken ~next_pc ~mem_addr ->
        (match on_event with
        | Some f ->
          f
            {
              pc;
              instr = code.(pc);
              taken;
              next_pc;
              mem_addr = (if mem_addr < 0 then None else Some mem_addr);
            }
        | None -> ());
        match on_retire with
        | Some f -> f ~pc ~taken ~next_pc ~mem_addr
        | None -> ())

let compiled_slice st ~fuel ?on_branch ?on_event ?on_retire (c : Compile.t) =
  let image = (Compile.decode c).Decode.image in
  let sink = fused_sink image ~on_event ~on_retire in
  let r = Compile.exec c st ~fuel ?on_branch ?sink () in
  {
    instructions = r.Compile.instructions;
    package_instructions = r.Compile.package_instructions;
    cond_branches = r.Compile.cond_branches;
    halted = r.Compile.halted;
    checksum = State.checksum st;
    result = State.reg st Reg.ret_value;
    final_pc = State.pc st;
  }

let run_compiled ?(fuel = 200_000_000) ?(mem_words = 1 lsl 20) ?on_branch
    ?on_event ?on_retire (c : Compile.t) =
  let image = (Compile.decode c).Decode.image in
  let st = State.create ~mem_words image in
  let outcome = compiled_slice st ~fuel ?on_branch ?on_event ?on_retire c in
  State.release st;
  outcome

type backend = Reference | Decoded | Compiled

let backend_name = function
  | Reference -> "reference"
  | Decoded -> "decoded"
  | Compiled -> "compiled"

let backend_of_string = function
  | "reference" -> Some Reference
  | "decoded" -> Some Decoded
  | "compiled" -> Some Compiled
  | _ -> None

let all_backends = [ Reference; Decoded; Compiled ]

(* The original boxed interpreter, kept verbatim as the executable
   specification: the differential tests re-run every workload through
   it and require bit-identical outcomes from the decoded core. *)
let reference_slice st ~fuel ?on_branch ?on_event image =
  let instructions = ref 0 in
  let package_instructions = ref 0 in
  let cond_branches = ref 0 in
  let halted = ref false in
  let orig_limit = image.Image.orig_limit in
  let code = image.Image.code in
  let size = Array.length code in
  while (not !halted) && !instructions < fuel do
    let pc = State.pc st in
    if pc < 0 || pc >= size then
      Vp_util.Error.failf ~stage:"emulator" ~pc "pc 0x%x outside image" pc;
    let instr = code.(pc) in
    incr instructions;
    if pc >= orig_limit then incr package_instructions;
    let taken = ref false in
    let mem_addr = ref None in
    let next = ref (pc + 1) in
    (match instr with
    | Instr.Alu { op; dst; src1; src2 } ->
      State.set_reg st dst (Op.eval_alu op (State.reg st src1) (operand_value st src2))
    | Instr.Li { dst; imm } -> State.set_reg st dst imm
    | Instr.La { dst; target } -> State.set_reg st dst (target_addr target)
    | Instr.Load { dst; base; offset } ->
      let addr = State.reg st base + offset in
      mem_addr := Some addr;
      State.set_reg st dst (State.mem st addr)
    | Instr.Store { src; base; offset } ->
      let addr = State.reg st base + offset in
      mem_addr := Some addr;
      let v = State.reg st src in
      State.set_mem st addr v;
      if not (Reg.equal src Reg.ra) then State.bump_store_digest st addr v
    | Instr.Br { cond; src1; src2; target } ->
      incr cond_branches;
      let t = Op.eval_cond cond (State.reg st src1) (State.reg st src2) in
      taken := t;
      if t then next := target_addr target;
      (match on_branch with Some f -> f ~pc ~taken:t | None -> ())
    | Instr.Jmp { target } ->
      taken := true;
      next := target_addr target
    | Instr.Call { target } ->
      taken := true;
      State.set_reg st Reg.ra (pc + 1);
      next := target_addr target
    | Instr.Ret ->
      taken := true;
      let ra = State.reg st Reg.ra in
      if ra = State.halt_address then begin
        halted := true;
        next := State.halt_address
      end
      else next := ra
    | Instr.Nop -> ()
    | Instr.Halt ->
      halted := true;
      next := State.halt_address);
    (match on_event with
    | Some f ->
      f { pc; instr; taken = !taken; next_pc = !next; mem_addr = !mem_addr }
    | None -> ());
    if not !halted then State.set_pc st !next
  done;
  {
    instructions = !instructions;
    package_instructions = !package_instructions;
    cond_branches = !cond_branches;
    halted = !halted;
    checksum = State.checksum st;
    result = State.reg st Reg.ret_value;
    final_pc = State.pc st;
  }

let run_reference ?(fuel = 200_000_000) ?(mem_words = 1 lsl 20) ?on_branch
    ?on_event image =
  let st = State.create ~mem_words image in
  reference_slice st ~fuel ?on_branch ?on_event image

(* The reference interpreter has no native [on_retire]; adapt it onto
   the event stream so the backend choice is transparent to retire-feed
   consumers (telemetry, the timing model, session depth tracking). *)
let adapt_retire ~on_event ~on_retire =
  match on_retire with
  | None -> on_event
  | Some r ->
    Some
      (fun e ->
        (match on_event with Some f -> f e | None -> ());
        r ~pc:e.pc ~taken:e.taken ~next_pc:e.next_pc
          ~mem_addr:(match e.mem_addr with Some a -> a | None -> -1))

let run_slice ?(backend = Decoded) ~state ~fuel ?on_branch ?on_event ?on_retire
    image =
  match backend with
  | Decoded ->
    decoded_slice state ~fuel ?on_branch ?on_event ?on_retire
      (Decode.of_image image)
  | Compiled ->
    compiled_slice state ~fuel ?on_branch ?on_event ?on_retire
      (Compile.of_image image)
  | Reference ->
    let on_event = adapt_retire ~on_event ~on_retire in
    reference_slice state ~fuel ?on_branch ?on_event image

let run_backend ?(backend = Decoded) ?fuel ?mem_words ?on_branch ?on_event
    ?on_retire image =
  match backend with
  | Decoded ->
    run_decoded ?fuel ?mem_words ?on_branch ?on_event ?on_retire
      (Decode.of_image image)
  | Compiled ->
    run_compiled ?fuel ?mem_words ?on_branch ?on_event ?on_retire
      (Compile.of_image image)
  | Reference ->
    let on_event = adapt_retire ~on_event ~on_retire in
    run_reference ?fuel ?mem_words ?on_branch ?on_event image

let aggregate_branch_profile ?fuel ?mem_words image =
  let d = Decode.of_image image in
  (* pc-indexed counters instead of a hashtable: the per-branch cost
     is two array bumps, and the table shape is recovered once at the
     end for the callers that want it. *)
  let executed = Array.make (Decode.size d) 0 in
  let takens = Array.make (Decode.size d) 0 in
  let on_branch ~pc ~taken =
    executed.(pc) <- executed.(pc) + 1;
    if taken then takens.(pc) <- takens.(pc) + 1
  in
  let (_ : outcome) = run_decoded ?fuel ?mem_words ~on_branch d in
  Branch_profile.of_counts ~executed ~takens
