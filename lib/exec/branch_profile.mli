(** Whole-run aggregate branch profile: per-pc (executed, taken)
    counts behind an abstract type.

    Internally a pair of pc-indexed arrays — the shape the profiling
    hot path already accumulates into — so building one is free and
    lookups never hash.  Every traversal runs in ascending pc order,
    which keeps derived artifacts (fig9 category weights, aggregate
    pseudo-snapshots) deterministic. *)

type t

val of_counts : executed:int array -> takens:int array -> t
(** Wrap pc-indexed counter arrays (same length; ownership passes to
    the profile — do not mutate them afterwards).  Raises
    [Invalid_argument] on length mismatch. *)

val empty : t

val branches : t -> int
(** Static conditional branches with at least one execution. *)

val total_executed : t -> int
(** Dynamic conditional-branch executions, over all branches. *)

val find : t -> int -> (int * int) option
(** [(executed, taken)] for the branch at a pc; [None] when that pc
    never executed a conditional branch. *)

val executed : t -> int -> int
(** Executions at a pc; [0] when absent. *)

val iter : (pc:int -> executed:int -> taken:int -> unit) -> t -> unit
(** Visit profiled branches in ascending pc order. *)

val fold : (pc:int -> executed:int -> taken:int -> 'a -> 'a) -> t -> 'a -> 'a

val bindings : t -> (int * (int * int)) list
(** [(pc, (executed, taken))] ascending by pc — the classic table
    shape, for tests and diffing. *)
