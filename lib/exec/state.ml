module Reg = Vp_isa.Reg
module Image = Vp_prog.Image

exception Fault of string

type t = {
  regs : int array;
  memory : int array;
  stack_floor : int;
  mutable program_counter : int;
  mutable digest : int;
  dirty : int array;
  mutable n_dirty : int;  (* -1 once the journal overflows *)
}

let halt_address = -1

(* Unchecked array access for the per-instruction paths.  Register
   indices are in range by construction ([Reg.t] is a validated
   private int, [regs] has [Reg.count] slots); memory and journal
   indices are explicitly range-checked before the access. *)
external ( .!() ) : 'a array -> int -> 'a = "%array_unsafe_get"
external ( .!()<- ) : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

(* Addresses at or above the floor are stack: private scratch whose
   stores (spills, frame locals) are not part of observable behaviour. *)
let stack_floor_of mem_words = mem_words - min (mem_words / 4) (1 lsl 16)

(* Dirty-word journal: while it has not overflowed, every memory word
   that is currently nonzero has its address recorded in
   [dirty.(0 .. n_dirty - 1)].  Words only become nonzero through
   {!set_mem} (or the data initialisers in {!create}), both of which
   append to the journal on a zero-to-nonzero transition.  Reusing a
   released memory array then only has to re-zero the journaled words
   instead of memsetting the whole multi-megabyte array. *)
let dirty_cap = 1 lsl 16

(* Domain-local arena: the memory array is megabytes per state and
   every emulation run used to allocate a fresh one, making the
   allocator and major GC the dominant cost of short runs.  A run
   whose state provably dies (the emulator's own states) hands the
   whole state back via {!release}; the next {!create} on this domain
   steals its memory array and scrubs it via the journal.
   Steal-on-create empties the slot first, so two live states can
   never alias one array, even if a callback starts a nested run. *)
let arena : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let take_arena mem_words =
  let slot = Domain.DLS.get arena in
  match !slot with
  | Some old when Array.length old.memory = mem_words ->
    slot := None;
    let m = old.memory in
    if old.n_dirty < 0 then Array.fill m 0 mem_words 0
    else
      for i = 0 to old.n_dirty - 1 do
        m.!(old.dirty.!(i)) <- 0
      done;
    (m, old.dirty)
  | _ -> (Array.make mem_words 0, Array.make dirty_cap 0)

let release t = Domain.DLS.get arena := Some t

let journal t addr =
  if t.n_dirty >= 0 then begin
    if t.n_dirty < dirty_cap then begin
      t.dirty.!(t.n_dirty) <- addr;
      t.n_dirty <- t.n_dirty + 1
    end
    else t.n_dirty <- -1
  end

let create ~mem_words image =
  let regs = Array.make Reg.count 0 in
  regs.(Reg.to_int Reg.sp) <- mem_words;
  regs.(Reg.to_int Reg.ra) <- halt_address;
  let memory, dirty = take_arena mem_words in
  let t =
    {
      regs;
      memory;
      stack_floor = stack_floor_of mem_words;
      program_counter = image.Image.entry;
      digest = 0;
      dirty;
      n_dirty = 0;
    }
  in
  List.iter
    (fun (addr, v) ->
      if addr < 0 || addr >= mem_words then
        raise (Fault (Printf.sprintf "data initialiser at %d out of range" addr));
      if memory.(addr) = 0 && v <> 0 then journal t addr;
      memory.(addr) <- v)
    image.Image.data_init;
  t

let pc t = t.program_counter
let set_pc t v = t.program_counter <- v

let reg t r =
  let i = Reg.to_int r in
  if i = 0 then 0 else t.regs.!(i)

let set_reg t r v =
  let i = Reg.to_int r in
  if i <> 0 then t.regs.!(i) <- v

let mem t addr =
  if addr < 0 || addr >= Array.length t.memory then
    raise (Fault (Printf.sprintf "load from %d out of range (pc=0x%x)" addr t.program_counter))
  else t.memory.!(addr)

let set_mem t addr v =
  if addr < 0 || addr >= Array.length t.memory then
    raise (Fault (Printf.sprintf "store to %d out of range (pc=0x%x)" addr t.program_counter))
  else begin
    (* Zero-to-nonzero transition: this word must be journaled so the
       arena can scrub it.  Already-nonzero words are in the journal
       by the invariant above, and writing zero leaves nothing to
       scrub. *)
    if t.memory.!(addr) = 0 && v <> 0 then journal t addr;
    t.memory.!(addr) <- v
  end

let mem_words t = Array.length t.memory

let mix h v = (h * 31) + v

let store_digest t = t.digest

let bump_store_digest t addr v =
  if addr < t.stack_floor then t.digest <- mix (mix t.digest addr) v

(* The checksum compares semantic outcomes: the full store stream plus
   the result register.  Dead register values at halt are excluded —
   they legitimately differ once an optimizer sinks or deletes
   computations whose results the program never consumes (and the
   return-address register holds code addresses, which differ between
   an original binary and its packaged rewrite by construction). *)
let checksum t = mix t.digest t.regs.(Reg.to_int Reg.ret_value)
