(** Functional (architectural) emulation of a binary image.

    The emulator retires one instruction at a time over the predecoded
    form ({!Decode}) and exposes three observation channels:

    - [on_branch] fires at every conditional-branch retirement with
      the branch's static address and its outcome — exactly the event
      stream the Hot Spot Detector consumes;
    - [on_retire] fires at every retirement with plain int arguments —
      the allocation-free channel the trace-driven timing model uses;
    - [on_event] fires at every retirement with a boxed {!event}
      record (legacy tracing interface; allocates one record per
      retired instruction).

    All are optional; with only [on_branch] and [on_retire] the retire
    loop performs no per-instruction heap allocation. *)

type event = {
  pc : int;
  instr : Vp_isa.Instr.t;
  taken : bool;  (** meaningful for conditional branches; true for jumps *)
  next_pc : int;  (** {!State.halt_address} when the machine stops *)
  mem_addr : int option;  (** effective address of a load/store *)
}

type outcome = {
  instructions : int;  (** dynamic instructions retired *)
  package_instructions : int;  (** retired from appended package code *)
  cond_branches : int;
  halted : bool;  (** false when fuel ran out *)
  checksum : int;
  result : int;  (** value of [Reg.ret_value] when the machine stopped *)
  final_pc : int;
}

val run :
  ?fuel:int ->
  ?mem_words:int ->
  ?on_branch:(pc:int -> taken:bool -> unit) ->
  ?on_event:(event -> unit) ->
  ?on_retire:(pc:int -> taken:bool -> next_pc:int -> mem_addr:int -> unit) ->
  Vp_prog.Image.t ->
  outcome
(** Execute from the image entry until [Halt], a return to
    {!State.halt_address}, or fuel exhaustion (default fuel 200M).
    Decodes the image first; callers that run the same image many
    times should decode once and use {!run_decoded}.  [on_retire] is
    forwarded to {!run_decoded} — the allocation-free per-retirement
    sink the telemetry layer's interval samplers piggyback on.  Raises
    {!State.Fault} on out-of-range memory access and
    [Invalid_argument] on a jump outside the image or an executed
    unresolved label. *)

val run_decoded :
  ?fuel:int ->
  ?mem_words:int ->
  ?on_branch:(pc:int -> taken:bool -> unit) ->
  ?on_event:(event -> unit) ->
  ?on_retire:(pc:int -> taken:bool -> next_pc:int -> mem_addr:int -> unit) ->
  Decode.t ->
  outcome
(** {!run} over a predecoded image.  [on_retire] is the
    allocation-free equivalent of [on_event]: [mem_addr] is the
    effective address of a load/store and [-1] for every other
    instruction (no address in this machine is negative). *)

val run_compiled :
  ?fuel:int ->
  ?mem_words:int ->
  ?on_branch:(pc:int -> taken:bool -> unit) ->
  ?on_event:(event -> unit) ->
  ?on_retire:(pc:int -> taken:bool -> next_pc:int -> mem_addr:int -> unit) ->
  Compile.t ->
  outcome
(** {!run_decoded} over block-compiled closures ({!Compile}): whole
    basic blocks execute straight-line with per-block fuel checks and
    direct block-to-block dispatch.  Outcomes, checksums and
    observation streams are bit-identical to {!run_decoded}, which
    stays the differential oracle; [on_event]/[on_retire] are fused
    into one compiled retirement sink, and a run with no observers at
    all executes the observer-free compiled variant. *)

type backend = Reference | Decoded | Compiled
(** Which execution core runs the workload: the boxed reference
    interpreter (the executable specification), the decoded flat-array
    interpreter (the default), or the block-compiled threaded code. *)

val backend_name : backend -> string
(** ["reference"], ["decoded"] or ["compiled"]. *)

val backend_of_string : string -> backend option
(** Inverse of {!backend_name}; [None] on an unknown name. *)

val all_backends : backend list

val run_backend :
  ?backend:backend ->
  ?fuel:int ->
  ?mem_words:int ->
  ?on_branch:(pc:int -> taken:bool -> unit) ->
  ?on_event:(event -> unit) ->
  ?on_retire:(pc:int -> taken:bool -> next_pc:int -> mem_addr:int -> unit) ->
  Vp_prog.Image.t ->
  outcome
(** {!run} through the chosen backend (default [Decoded]), going
    through the decode/compile memos.  The reference backend has no
    native [on_retire]; it is adapted onto the event stream, so every
    backend serves the same observation channels. *)

val run_slice :
  ?backend:backend ->
  state:State.t ->
  fuel:int ->
  ?on_branch:(pc:int -> taken:bool -> unit) ->
  ?on_event:(event -> unit) ->
  ?on_retire:(pc:int -> taken:bool -> next_pc:int -> mem_addr:int -> unit) ->
  Vp_prog.Image.t ->
  outcome
(** One bounded slice of execution over an external {!State.t}: resume
    from the state's current pc, retire at most [fuel] instructions,
    and leave the final pc in the state so the next slice continues
    exactly where this one stopped.  The outcome's counts cover only
    this slice; [checksum]/[result] read the (cumulative) state.  The
    caller owns the state — [run_slice] neither creates nor releases
    it, so a long-running session can thread one machine state through
    many slices, switching images between slices (hot patching) as
    long as every image shares the address space of the one the state
    was created for.  Bit-identical across backends at arbitrary fuel
    boundaries, like {!run_backend}. *)

val run_reference :
  ?fuel:int ->
  ?mem_words:int ->
  ?on_branch:(pc:int -> taken:bool -> unit) ->
  ?on_event:(event -> unit) ->
  Vp_prog.Image.t ->
  outcome
(** The original boxed interpreter over [Instr.t], kept as the
    executable specification of {!run}: it allocates per instruction
    and is only used by differential tests, which require outcomes,
    checksums and observation streams bit-identical to {!run}'s. *)

val aggregate_branch_profile :
  ?fuel:int -> ?mem_words:int -> Vp_prog.Image.t -> Branch_profile.t
(** Whole-run (executed, taken) counts per static conditional branch —
    the traditional aggregate profile the paper contrasts against.
    Accumulated in pc-indexed arrays, not a per-branch hashtable. *)
