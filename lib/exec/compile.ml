(* Block-threaded closure compilation of a decoded image.

   The decoded core ({!Decode} + [Emulator.run_decoded]) still pays a
   per-instruction dispatch: fuel check, pc bounds check, tag load,
   match, operand loads, scratch writes, [State.set_pc].  This module
   removes all of it.  The image is partitioned into basic blocks and
   each block is compiled — once, at load time — into a single OCaml
   closure that executes the whole block straight-line over the
   {!State} arena: operands, immediates, ALU ops and branch conditions
   are baked into the closure environments, each instruction closure
   tail-calls its compile-time continuation, and block terminators
   dispatch directly into the successor block's closure through a
   block-indexed array (threaded code).  Fuel is checked once per
   block; a block that no longer fits in the remaining fuel falls back
   to a per-instruction interpreter at the boundary, so instruction
   accounting stays exact.

   Two variants of every block are compiled: a [fast] one with no
   observation calls at all, and an [observed] one that feeds the
   run's [on_branch]/[sink] closures (read from the per-run {!ctx}, so
   compiled code is reusable across runs and observers).  Outcomes,
   checksums and observation streams are bit-identical to
   [Emulator.run_decoded], which stays the differential oracle. *)

module Op = Vp_isa.Op
module Reg = Vp_isa.Reg
module Instr = Vp_isa.Instr
module Image = Vp_prog.Image

(* Unchecked array access on the compiled hot paths: block and pc
   indices are validated at partition/compile time or by the
   interpreter's own bounds check. *)
external ( .!() ) : 'a array -> int -> 'a = "%array_unsafe_get"

(* Per-run execution context.  Compiled closures are shared across
   runs; everything run-specific — state, fuel, counters, observer
   closures — lives here.  [fuel_left] counts down so the per-block
   check is one compare; retired instructions are recovered as
   [fuel - fuel_left]. *)
type ctx = {
  st : State.t;
  mutable fuel_left : int;
  mutable pkg : int;
  mutable branches : int;
  mutable halted : bool;
  on_branch : pc:int -> taken:bool -> unit;
  sink : pc:int -> taken:bool -> next_pc:int -> mem_addr:int -> unit;
}

type variant = {
  blocks : (ctx -> unit) array;
  enter : ctx -> int -> unit;  (* the boundary interpreter *)
}

type t = {
  decode : Decode.t;
  n_blocks : int;
  block_idx : int array;  (* pc -> block id at leaders, -1 mid-block *)
  block_start : int array;
  block_len : int array;
  fast : variant;
  observed : variant;
}

type result = {
  instructions : int;
  package_instructions : int;
  cond_branches : int;
  halted : bool;
}

let is_terminator tg =
  tg = Decode.tag_br || tg = Decode.tag_jmp || tg = Decode.tag_call
  || tg = Decode.tag_ret || tg = Decode.tag_halt
  || tg = Decode.tag_br_unresolved
  || tg = Decode.tag_jmp_unresolved
  || tg = Decode.tag_call_unresolved

(* Leaders: the image entry, every static control-flow target, every
   address materialised by [La] (insurance for computed returns), and
   the instruction after every terminator.  Every pc then belongs to
   exactly one block [leader .. next leader); a terminator can only
   sit at a block's last slot because its successor is a leader. *)
let partition (d : Decode.t) =
  let tag = d.Decode.tag and target = d.Decode.target in
  let n = Array.length tag in
  let leader = Array.make n false in
  if n > 0 then leader.(0) <- true;
  let entry = d.Decode.image.Image.entry in
  if entry >= 0 && entry < n then leader.(entry) <- true;
  for pc = 0 to n - 1 do
    let tg = tag.(pc) in
    if
      tg = Decode.tag_br || tg = Decode.tag_jmp || tg = Decode.tag_call
      || tg = Decode.tag_la
    then begin
      let t = target.(pc) in
      if t >= 0 && t < n then leader.(t) <- true
    end;
    if is_terminator tg && pc + 1 < n then leader.(pc + 1) <- true
  done;
  let nb = ref 0 in
  for pc = 0 to n - 1 do
    if leader.(pc) then incr nb
  done;
  let nb = !nb in
  let block_idx = Array.make n (-1) in
  let block_start = Array.make nb 0 in
  let block_len = Array.make nb 0 in
  let b = ref (-1) in
  for pc = 0 to n - 1 do
    if leader.(pc) then begin
      incr b;
      block_idx.(pc) <- !b;
      block_start.(!b) <- pc
    end;
    block_len.(!b) <- block_len.(!b) + 1
  done;
  (block_idx, block_start, block_len, nb)

let make_variant (d : Decode.t) ~block_idx ~block_start ~block_len ~nb
    ~observed =
  let tag = d.Decode.tag in
  let dst = d.Decode.dst in
  let src1 = d.Decode.src1 in
  let src2 = d.Decode.src2 in
  let imm = d.Decode.imm in
  let alu_op = d.Decode.alu_op in
  let cond = d.Decode.cond in
  let target = d.Decode.target in
  let code = d.Decode.code in
  let n = Array.length tag in
  let orig_limit = d.Decode.image.Image.orig_limit in
  (* Cold path: an unresolved-label instruction actually executed;
     rebuild the decoded interpreter's exact message lazily. *)
  let unres pc =
    match Instr.target code.(pc) with
    | Some (Instr.Label l) ->
      Vp_util.Error.failf ~stage:"emulator" ~label:l "unresolved label %s" l
    | _ -> assert false
  in
  let blocks = Array.make nb (fun (_ : ctx) -> assert false) in
  (* The boundary interpreter: entered at the run's start, on dynamic
     [Ret] targets, and whenever a block no longer fits in the
     remaining fuel.  It retires one instruction at a time with the
     decoded interpreter's exact semantics (including observer
     ordering) and re-enters compiled blocks as soon as a leader with
     sufficient fuel comes up.  All calls are tail calls. *)
  let rec interp (ctx : ctx) pc =
    if not ctx.halted then begin
      if ctx.fuel_left <= 0 then State.set_pc ctx.st pc
      else if pc < 0 || pc >= n then
        Vp_util.Error.failf ~stage:"emulator" ~pc "pc 0x%x outside image" pc
      else begin
        let b = block_idx.!(pc) in
        if b >= 0 && ctx.fuel_left >= block_len.!(b) then blocks.!(b) ctx
        else step ctx pc
      end
    end
  and step ctx pc =
    let st = ctx.st in
    ctx.fuel_left <- ctx.fuel_left - 1;
    if pc >= orig_limit then ctx.pkg <- ctx.pkg + 1;
    State.set_pc st pc;
    let taken = ref false in
    let mem_addr = ref (-1) in
    let next = ref (pc + 1) in
    (match tag.!(pc) with
    | 0 (* Alu, register operand *) ->
      State.set_reg st dst.!(pc)
        (Op.eval_alu alu_op.!(pc) (State.reg st src1.!(pc))
           (State.reg st src2.!(pc)))
    | 1 (* Alu, immediate operand *) ->
      State.set_reg st dst.!(pc)
        (Op.eval_alu alu_op.!(pc) (State.reg st src1.!(pc)) imm.!(pc))
    | 2 (* Li *) -> State.set_reg st dst.!(pc) imm.!(pc)
    | 3 (* La *) -> State.set_reg st dst.!(pc) target.!(pc)
    | 4 (* Load *) ->
      let addr = State.reg st src1.!(pc) + imm.!(pc) in
      mem_addr := addr;
      State.set_reg st dst.!(pc) (State.mem st addr)
    | 5 (* Store *) ->
      let addr = State.reg st src1.!(pc) + imm.!(pc) in
      mem_addr := addr;
      let v = State.reg st dst.!(pc) in
      State.set_mem st addr v;
      if not (Reg.equal dst.!(pc) Reg.ra) then State.bump_store_digest st addr v
    | 6 (* Br *) ->
      ctx.branches <- ctx.branches + 1;
      let t =
        Op.eval_cond cond.!(pc) (State.reg st src1.!(pc))
          (State.reg st src2.!(pc))
      in
      taken := t;
      if t then next := target.!(pc);
      ctx.on_branch ~pc ~taken:t
    | 7 (* Jmp *) ->
      taken := true;
      next := target.!(pc)
    | 8 (* Call *) ->
      taken := true;
      State.set_reg st Reg.ra (pc + 1);
      next := target.!(pc)
    | 9 (* Ret *) ->
      taken := true;
      let ra = State.reg st Reg.ra in
      if ra = State.halt_address then begin
        ctx.halted <- true;
        next := State.halt_address
      end
      else next := ra
    | 10 (* Nop *) -> ()
    | 11 (* Halt *) ->
      ctx.halted <- true;
      next := State.halt_address
    | 13 (* Br, unresolved label: fault only when taken *) ->
      ctx.branches <- ctx.branches + 1;
      let t =
        Op.eval_cond cond.!(pc) (State.reg st src1.!(pc))
          (State.reg st src2.!(pc))
      in
      taken := t;
      if t then unres pc;
      ctx.on_branch ~pc ~taken:t
    | _ (* La/Jmp/Call with an unresolved label *) -> unres pc);
    ctx.sink ~pc ~taken:!taken ~next_pc:!next ~mem_addr:!mem_addr;
    if not ctx.halted then interp ctx !next
  in
  (* Compile-time dispatch to a target address.  In-range targets are
     leaders by construction (branch/jump/call targets and fallthrough
     successors are all marked), so this is a direct jump into the
     target block's closure; its prologue re-checks fuel.  Out-of-range
     targets replicate the decoded loop exactly: the bounds fault only
     fires while fuel remains, otherwise the run ends with the bad pc
     as [final_pc]. *)
  let goto tgt =
    if tgt >= 0 && tgt < n then begin
      let b = block_idx.(tgt) in
      if b >= 0 then fun ctx -> blocks.!(b) ctx
      else fun ctx -> interp ctx tgt
    end
    else
      fun ctx ->
        if ctx.fuel_left > 0 then
          Vp_util.Error.failf ~stage:"emulator" ~pc:tgt "pc 0x%x outside image"
            tgt
        else State.set_pc ctx.st tgt
  in
  (* Retirement epilogue of a straight-line instruction: in the fast
     variant it is the continuation itself — observation costs nothing
     when nobody observes. *)
  let fin pc k =
    if observed then begin
      let np = pc + 1 in
      fun ctx ->
        ctx.sink ~pc ~taken:false ~next_pc:np ~mem_addr:(-1);
        k ctx
    end
    else k
  in
  (* One straight-line (non-terminator) instruction, specialized per
     tag and — for ALU ops — per operation, with operands and folded
     immediates in the closure environment.  Loads and stores publish
     the pc first so an out-of-range [State.Fault] carries the same pc
     context as the decoded interpreter's. *)
  let compile_straight pc k =
    let kk = fin pc k in
    match tag.(pc) with
    | 0 -> (
      let d0 = dst.(pc) and a = src1.(pc) and b = src2.(pc) in
      match alu_op.(pc) with
      | Op.Add | Op.Fadd ->
        fun ctx ->
          let st = ctx.st in
          State.set_reg st d0 (State.reg st a + State.reg st b);
          kk ctx
      | Op.Sub ->
        fun ctx ->
          let st = ctx.st in
          State.set_reg st d0 (State.reg st a - State.reg st b);
          kk ctx
      | Op.Mul | Op.Fmul ->
        fun ctx ->
          let st = ctx.st in
          State.set_reg st d0 (State.reg st a * State.reg st b);
          kk ctx
      | Op.Div | Op.Fdiv ->
        fun ctx ->
          let st = ctx.st in
          let bv = State.reg st b in
          State.set_reg st d0 (if bv = 0 then 0 else State.reg st a / bv);
          kk ctx
      | Op.Rem ->
        fun ctx ->
          let st = ctx.st in
          let bv = State.reg st b in
          State.set_reg st d0 (if bv = 0 then 0 else State.reg st a mod bv);
          kk ctx
      | Op.And ->
        fun ctx ->
          let st = ctx.st in
          State.set_reg st d0 (State.reg st a land State.reg st b);
          kk ctx
      | Op.Or ->
        fun ctx ->
          let st = ctx.st in
          State.set_reg st d0 (State.reg st a lor State.reg st b);
          kk ctx
      | Op.Xor ->
        fun ctx ->
          let st = ctx.st in
          State.set_reg st d0 (State.reg st a lxor State.reg st b);
          kk ctx
      | Op.Shl ->
        fun ctx ->
          let st = ctx.st in
          State.set_reg st d0 (State.reg st a lsl (State.reg st b land 63));
          kk ctx
      | Op.Shr ->
        fun ctx ->
          let st = ctx.st in
          State.set_reg st d0 (State.reg st a asr (State.reg st b land 63));
          kk ctx
      | Op.Slt ->
        fun ctx ->
          let st = ctx.st in
          State.set_reg st d0 (if State.reg st a < State.reg st b then 1 else 0);
          kk ctx)
    | 1 -> (
      let d0 = dst.(pc) and a = src1.(pc) and i = imm.(pc) in
      match alu_op.(pc) with
      | Op.Add | Op.Fadd ->
        fun ctx ->
          State.set_reg ctx.st d0 (State.reg ctx.st a + i);
          kk ctx
      | Op.Sub ->
        fun ctx ->
          State.set_reg ctx.st d0 (State.reg ctx.st a - i);
          kk ctx
      | Op.Mul | Op.Fmul ->
        fun ctx ->
          State.set_reg ctx.st d0 (State.reg ctx.st a * i);
          kk ctx
      | Op.Div | Op.Fdiv ->
        if i = 0 then
          fun ctx ->
            State.set_reg ctx.st d0 0;
            kk ctx
        else
          fun ctx ->
            State.set_reg ctx.st d0 (State.reg ctx.st a / i);
            kk ctx
      | Op.Rem ->
        if i = 0 then
          fun ctx ->
            State.set_reg ctx.st d0 0;
            kk ctx
        else
          fun ctx ->
            State.set_reg ctx.st d0 (State.reg ctx.st a mod i);
            kk ctx
      | Op.And ->
        fun ctx ->
          State.set_reg ctx.st d0 (State.reg ctx.st a land i);
          kk ctx
      | Op.Or ->
        fun ctx ->
          State.set_reg ctx.st d0 (State.reg ctx.st a lor i);
          kk ctx
      | Op.Xor ->
        fun ctx ->
          State.set_reg ctx.st d0 (State.reg ctx.st a lxor i);
          kk ctx
      | Op.Shl ->
        let s = i land 63 in
        fun ctx ->
          State.set_reg ctx.st d0 (State.reg ctx.st a lsl s);
          kk ctx
      | Op.Shr ->
        let s = i land 63 in
        fun ctx ->
          State.set_reg ctx.st d0 (State.reg ctx.st a asr s);
          kk ctx
      | Op.Slt ->
        fun ctx ->
          State.set_reg ctx.st d0 (if State.reg ctx.st a < i then 1 else 0);
          kk ctx)
    | 2 ->
      let d0 = dst.(pc) and i = imm.(pc) in
      fun ctx ->
        State.set_reg ctx.st d0 i;
        kk ctx
    | 3 ->
      let d0 = dst.(pc) and v = target.(pc) in
      fun ctx ->
        State.set_reg ctx.st d0 v;
        kk ctx
    | 4 ->
      let d0 = dst.(pc) and b = src1.(pc) and off = imm.(pc) in
      if observed then begin
        let np = pc + 1 in
        fun ctx ->
          let st = ctx.st in
          State.set_pc st pc;
          let addr = State.reg st b + off in
          State.set_reg st d0 (State.mem st addr);
          ctx.sink ~pc ~taken:false ~next_pc:np ~mem_addr:addr;
          k ctx
      end
      else
        fun ctx ->
          let st = ctx.st in
          State.set_pc st pc;
          let addr = State.reg st b + off in
          State.set_reg st d0 (State.mem st addr);
          k ctx
    | 5 ->
      let s0 = dst.(pc) and b = src1.(pc) and off = imm.(pc) in
      (* ra spills hold code addresses; keep them out of the digest so
         original and rewritten binaries stay comparable. *)
      let track = not (Reg.equal s0 Reg.ra) in
      if observed then begin
        let np = pc + 1 in
        fun ctx ->
          let st = ctx.st in
          State.set_pc st pc;
          let addr = State.reg st b + off in
          let v = State.reg st s0 in
          State.set_mem st addr v;
          if track then State.bump_store_digest st addr v;
          ctx.sink ~pc ~taken:false ~next_pc:np ~mem_addr:addr;
          k ctx
      end
      else if track then
        fun ctx ->
          let st = ctx.st in
          State.set_pc st pc;
          let addr = State.reg st b + off in
          let v = State.reg st s0 in
          State.set_mem st addr v;
          State.bump_store_digest st addr v;
          k ctx
      else
        fun ctx ->
          let st = ctx.st in
          State.set_pc st pc;
          let addr = State.reg st b + off in
          State.set_mem st addr (State.reg st s0);
          k ctx
    | 10 -> kk (* Nop compiles to nothing in the fast variant *)
    | 12 -> fun _ctx -> unres pc
    | _ -> assert false (* terminators are compiled by compile_term *)
  in
  (* A block's terminator: control transfer baked at compile time,
     observation stream in the decoded interpreter's exact order
     ([on_branch] inside the dispatch, retirement sink after, faults on
     unresolved taken branches before either). *)
  let compile_term pc =
    match tag.(pc) with
    | 6 ->
      let a = src1.(pc) and b = src2.(pc) in
      let tpc = target.(pc) and np = pc + 1 in
      let gt = goto tpc and gf = goto np in
      if observed then begin
        let test = Op.eval_cond cond.(pc) in
        fun ctx ->
          ctx.branches <- ctx.branches + 1;
          let st = ctx.st in
          let t = test (State.reg st a) (State.reg st b) in
          ctx.on_branch ~pc ~taken:t;
          if t then begin
            ctx.sink ~pc ~taken:true ~next_pc:tpc ~mem_addr:(-1);
            gt ctx
          end
          else begin
            ctx.sink ~pc ~taken:false ~next_pc:np ~mem_addr:(-1);
            gf ctx
          end
      end
      else begin
        match cond.(pc) with
        | Op.Eq ->
          fun ctx ->
            ctx.branches <- ctx.branches + 1;
            let st = ctx.st in
            if State.reg st a = State.reg st b then gt ctx else gf ctx
        | Op.Ne ->
          fun ctx ->
            ctx.branches <- ctx.branches + 1;
            let st = ctx.st in
            if State.reg st a <> State.reg st b then gt ctx else gf ctx
        | Op.Lt ->
          fun ctx ->
            ctx.branches <- ctx.branches + 1;
            let st = ctx.st in
            if State.reg st a < State.reg st b then gt ctx else gf ctx
        | Op.Le ->
          fun ctx ->
            ctx.branches <- ctx.branches + 1;
            let st = ctx.st in
            if State.reg st a <= State.reg st b then gt ctx else gf ctx
        | Op.Gt ->
          fun ctx ->
            ctx.branches <- ctx.branches + 1;
            let st = ctx.st in
            if State.reg st a > State.reg st b then gt ctx else gf ctx
        | Op.Ge ->
          fun ctx ->
            ctx.branches <- ctx.branches + 1;
            let st = ctx.st in
            if State.reg st a >= State.reg st b then gt ctx else gf ctx
      end
    | 7 ->
      let tpc = target.(pc) in
      let g = goto tpc in
      if observed then
        fun ctx ->
          ctx.sink ~pc ~taken:true ~next_pc:tpc ~mem_addr:(-1);
          g ctx
      else g
    | 8 ->
      let tpc = target.(pc) in
      let g = goto tpc in
      let link = pc + 1 in
      if observed then
        fun ctx ->
          State.set_reg ctx.st Reg.ra link;
          ctx.sink ~pc ~taken:true ~next_pc:tpc ~mem_addr:(-1);
          g ctx
      else
        fun ctx ->
          State.set_reg ctx.st Reg.ra link;
          g ctx
    | 9 ->
      (* The return target is dynamic; the interpreter's leader check
         re-enters compiled code immediately (call successors are
         leaders by construction). *)
      if observed then
        fun ctx ->
          let ra = State.reg ctx.st Reg.ra in
          if ra = State.halt_address then begin
            ctx.halted <- true;
            State.set_pc ctx.st pc;
            ctx.sink ~pc ~taken:true ~next_pc:State.halt_address ~mem_addr:(-1)
          end
          else begin
            ctx.sink ~pc ~taken:true ~next_pc:ra ~mem_addr:(-1);
            interp ctx ra
          end
      else
        fun ctx ->
          let ra = State.reg ctx.st Reg.ra in
          if ra = State.halt_address then begin
            ctx.halted <- true;
            State.set_pc ctx.st pc
          end
          else interp ctx ra
    | 11 ->
      if observed then
        fun ctx ->
          ctx.halted <- true;
          State.set_pc ctx.st pc;
          ctx.sink ~pc ~taken:false ~next_pc:State.halt_address ~mem_addr:(-1)
      else
        fun ctx ->
          ctx.halted <- true;
          State.set_pc ctx.st pc
    | 13 ->
      let a = src1.(pc) and b = src2.(pc) in
      let test = Op.eval_cond cond.(pc) in
      let np = pc + 1 in
      let g = goto np in
      if observed then
        fun ctx ->
          ctx.branches <- ctx.branches + 1;
          if test (State.reg ctx.st a) (State.reg ctx.st b) then unres pc;
          ctx.on_branch ~pc ~taken:false;
          ctx.sink ~pc ~taken:false ~next_pc:np ~mem_addr:(-1);
          g ctx
      else
        fun ctx ->
          ctx.branches <- ctx.branches + 1;
          if test (State.reg ctx.st a) (State.reg ctx.st b) then unres pc;
          g ctx
    | 14 | 15 -> fun _ctx -> unres pc
    | _ -> assert false
  in
  let rec compile_from pc stop =
    if pc = stop then begin
      if is_terminator tag.(pc) then compile_term pc
      else compile_straight pc (goto (pc + 1))
    end
    else compile_straight pc (compile_from (pc + 1) stop)
  in
  for b = 0 to nb - 1 do
    let start = block_start.(b) in
    let len = block_len.(b) in
    let stop = start + len - 1 in
    (* Whole-block package accounting: the block's pcs at or above
       [orig_limit], added in one bump. *)
    let pkg = if stop >= orig_limit then stop - max start orig_limit + 1 else 0 in
    let body = compile_from start stop in
    blocks.(b) <-
      (if pkg = 0 then
         fun ctx ->
           if ctx.fuel_left < len then interp ctx start
           else begin
             ctx.fuel_left <- ctx.fuel_left - len;
             body ctx
           end
       else
         fun ctx ->
           if ctx.fuel_left < len then interp ctx start
           else begin
             ctx.fuel_left <- ctx.fuel_left - len;
             ctx.pkg <- ctx.pkg + pkg;
             body ctx
           end)
  done;
  { blocks; enter = interp }

let compile (d : Decode.t) =
  let block_idx, block_start, block_len, nb = partition d in
  {
    decode = d;
    n_blocks = nb;
    block_idx;
    block_start;
    block_len;
    fast = make_variant d ~block_idx ~block_start ~block_len ~nb ~observed:false;
    observed =
      make_variant d ~block_idx ~block_start ~block_len ~nb ~observed:true;
  }

(* One-slot domain-local memo keyed by physical image identity,
   mirroring the decode memo: the pipelines run the same immutable
   image over and over, and the compiled form is pure data derived
   from it. *)
let memo : (Image.t * t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let of_image (image : Image.t) =
  let slot = Domain.DLS.get memo in
  match !slot with
  | Some (key, c) when key == image -> c
  | _ ->
    let c = compile (Decode.of_image image) in
    slot := Some (image, c);
    c

let decode t = t.decode
let block_count t = t.n_blocks
let block_of_pc t pc = t.block_idx.(pc)
let block_bounds t b = (t.block_start.(b), t.block_len.(b))

let noop_branch ~pc:_ ~taken:_ = ()
let noop_sink ~pc:_ ~taken:_ ~next_pc:_ ~mem_addr:_ = ()

let exec t st ~fuel ?on_branch ?sink () =
  let observe =
    (match on_branch with Some _ -> true | None -> false)
    || match sink with Some _ -> true | None -> false
  in
  let ctx =
    {
      st;
      fuel_left = fuel;
      pkg = 0;
      branches = 0;
      halted = false;
      on_branch = (match on_branch with Some f -> f | None -> noop_branch);
      sink = (match sink with Some f -> f | None -> noop_sink);
    }
  in
  let v = if observe then t.observed else t.fast in
  v.enter ctx (State.pc st);
  {
    instructions = fuel - ctx.fuel_left;
    package_instructions = ctx.pkg;
    cond_branches = ctx.branches;
    halted = ctx.halted;
  }
