(** Block-threaded closure compilation of a decoded image.

    {!of_image} partitions the image into basic blocks and compiles
    each block into one OCaml closure that executes the whole block
    straight-line over the {!State} arena: operands, immediates, ALU
    ops and branch conditions are baked into the closure environments
    at compile time, and block terminators dispatch directly into the
    successor block's closure through a block-indexed array (threaded
    code — every transfer is a tail call, so the OCaml stack stays
    flat).  Fuel is checked once per block; a block that no longer
    fits in the remaining fuel falls back to a boundary interpreter
    with per-instruction accounting, so outcomes are exact.

    Two specialized variants of every block are compiled: a fast one
    with no observation code at all, and an observed one feeding the
    run's [on_branch]/[sink] closures.  {!exec} picks the variant from
    the observers it is given; outcomes, checksums and observation
    streams are bit-identical to [Emulator.run_decoded], which stays
    the differential oracle. *)

type t

type result = {
  instructions : int;
  package_instructions : int;
  cond_branches : int;
  halted : bool;
}
(** Raw run counters; the caller owns the {!State} and derives
    checksum/result/final pc from it. *)

val compile : Decode.t -> t
(** Compile every basic block of the decoded image.  O(size); all
    specialization happens here so execution never matches on tags. *)

val of_image : Vp_prog.Image.t -> t
(** {!compile} through a one-slot domain-local memo keyed by physical
    image identity, like [Decode.of_image]. *)

val decode : t -> Decode.t

val block_count : t -> int

val block_of_pc : t -> int -> int
(** Block id when [pc] is a block leader, -1 mid-block. *)

val block_bounds : t -> int -> int * int
(** [(start pc, length)] of one block. *)

val exec :
  t ->
  State.t ->
  fuel:int ->
  ?on_branch:(pc:int -> taken:bool -> unit) ->
  ?sink:(pc:int -> taken:bool -> next_pc:int -> mem_addr:int -> unit) ->
  unit ->
  result
(** Run compiled code from the state's current pc until halt, a return
    to {!State.halt_address}, or fuel exhaustion, leaving the final pc
    in the state exactly as [Emulator.run_decoded] would.  [sink] is
    the fused retirement channel ([mem_addr] is -1 for non-memory
    instructions); observer-present runs use the observed compiled
    variant, observer-free runs the fast one. *)
