module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Reg = Vp_isa.Reg
module Image = Vp_prog.Image

type t = {
  image : Image.t;
  code : Instr.t array;
  tag : int array;
  dst : Reg.t array;
  src1 : Reg.t array;
  src2 : Reg.t array;
  imm : int array;
  alu_op : Op.alu array;
  cond : Op.cond array;
  target : int array;
  fu : Op.fu array;
  latency : int array;
  uses_off : int array;
  uses : Reg.t array;
  defs_off : int array;
  defs : Reg.t array;
}

let tag_alu_reg = 0
let tag_alu_imm = 1
let tag_li = 2
let tag_la = 3
let tag_load = 4
let tag_store = 5
let tag_br = 6
let tag_jmp = 7
let tag_call = 8
let tag_ret = 9
let tag_nop = 10
let tag_halt = 11
let tag_la_unresolved = 12
let tag_br_unresolved = 13
let tag_jmp_unresolved = 14
let tag_call_unresolved = 15

let decode (image : Image.t) =
  let code = image.Image.code in
  let n = Array.length code in
  let tag = Array.make n tag_nop in
  let dst = Array.make n Reg.zero in
  let src1 = Array.make n Reg.zero in
  let src2 = Array.make n Reg.zero in
  let imm = Array.make n 0 in
  let alu_op = Array.make n Op.Add in
  let cond = Array.make n Op.Eq in
  let target = Array.make n (-1) in
  let fu = Array.make n Op.Ialu in
  let latency = Array.make n 1 in
  let uses_off = Array.make (n + 1) 0 in
  let defs_off = Array.make (n + 1) 0 in
  for pc = 0 to n - 1 do
    uses_off.(pc + 1) <- uses_off.(pc) + List.length (Instr.uses code.(pc));
    defs_off.(pc + 1) <- defs_off.(pc) + List.length (Instr.defs code.(pc))
  done;
  let uses = Array.make uses_off.(n) Reg.zero in
  let defs = Array.make defs_off.(n) Reg.zero in
  for pc = 0 to n - 1 do
    let i = code.(pc) in
    List.iteri (fun k r -> uses.(uses_off.(pc) + k) <- r) (Instr.uses i);
    List.iteri (fun k r -> defs.(defs_off.(pc) + k) <- r) (Instr.defs i);
    fu.(pc) <- Instr.fu i;
    latency.(pc) <- Instr.latency i;
    match i with
    | Instr.Alu { op; dst = d; src1 = s1; src2 = Instr.Reg s2 } ->
      tag.(pc) <- tag_alu_reg;
      alu_op.(pc) <- op;
      dst.(pc) <- d;
      src1.(pc) <- s1;
      src2.(pc) <- s2
    | Instr.Alu { op; dst = d; src1 = s1; src2 = Instr.Imm k } ->
      tag.(pc) <- tag_alu_imm;
      alu_op.(pc) <- op;
      dst.(pc) <- d;
      src1.(pc) <- s1;
      imm.(pc) <- k
    | Instr.Li { dst = d; imm = k } ->
      tag.(pc) <- tag_li;
      dst.(pc) <- d;
      imm.(pc) <- k
    | Instr.La { dst = d; target = Instr.Addr a } ->
      tag.(pc) <- tag_la;
      dst.(pc) <- d;
      target.(pc) <- a
    | Instr.La { dst = d; target = Instr.Label _ } ->
      tag.(pc) <- tag_la_unresolved;
      dst.(pc) <- d
    | Instr.Load { dst = d; base; offset } ->
      tag.(pc) <- tag_load;
      dst.(pc) <- d;
      src1.(pc) <- base;
      imm.(pc) <- offset
    | Instr.Store { src; base; offset } ->
      tag.(pc) <- tag_store;
      dst.(pc) <- src;
      src1.(pc) <- base;
      imm.(pc) <- offset
    | Instr.Br { cond = c; src1 = s1; src2 = s2; target = tgt } -> (
      cond.(pc) <- c;
      src1.(pc) <- s1;
      src2.(pc) <- s2;
      match tgt with
      | Instr.Addr a ->
        tag.(pc) <- tag_br;
        target.(pc) <- a
      | Instr.Label _ -> tag.(pc) <- tag_br_unresolved)
    | Instr.Jmp { target = Instr.Addr a } ->
      tag.(pc) <- tag_jmp;
      target.(pc) <- a
    | Instr.Jmp { target = Instr.Label _ } -> tag.(pc) <- tag_jmp_unresolved
    | Instr.Call { target = Instr.Addr a } ->
      tag.(pc) <- tag_call;
      target.(pc) <- a
    | Instr.Call { target = Instr.Label _ } -> tag.(pc) <- tag_call_unresolved
    | Instr.Ret -> tag.(pc) <- tag_ret
    | Instr.Nop -> tag.(pc) <- tag_nop
    | Instr.Halt -> tag.(pc) <- tag_halt
  done;
  {
    image;
    code;
    tag;
    dst;
    src1;
    src2;
    imm;
    alu_op;
    cond;
    target;
    fu;
    latency;
    uses_off;
    uses;
    defs_off;
    defs;
  }

(* One-slot domain-local memo keyed by physical image identity: the
   pipelines decode the same immutable image over and over (timing
   model after functional run, repeated benchmark iterations), and a
   decoded form is pure data derived from it. *)
let memo : (Image.t * t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let of_image (image : Image.t) =
  let slot = Domain.DLS.get memo in
  match !slot with
  | Some (key, d) when key == image -> d
  | _ ->
    let d = decode image in
    slot := Some (image, d);
    d

let size t = Array.length t.tag

let slice_pc off payload t pc =
  if pc < 0 || pc >= size t then Vp_util.Error.failf ~stage:"decode" ~pc "pc 0x%x outside image" pc;
  List.init (off.(pc + 1) - off.(pc)) (fun k -> payload.(off.(pc) + k))

let uses_pc t pc = slice_pc t.uses_off t.uses t pc
let defs_pc t pc = slice_pc t.defs_off t.defs t pc
