(** Predecoded image: the flat, allocation-free execution form.

    {!of_image} lowers an image's [Instr.t array] into parallel int
    arrays once, at load time, so the emulator's retire loop and the
    timing model touch nothing but unboxed array cells.  Operands
    ([Reg.t] is an immediate int), ALU opcodes and branch conditions
    (constant constructors) all live in flat arrays; variable-length
    per-instruction register sets ([Instr.uses]/[Instr.defs], which
    allocate lists on every call) are frozen into CSR-style
    offset+payload arrays.

    Unresolved [Label] targets are NOT a decode-time error: the
    emulator only faults on them when the instruction actually
    executes (and, for a conditional branch, only when taken), and
    decode preserves exactly that behaviour via the [*_unresolved]
    tags, whose execution re-reads the boxed instruction to build the
    same error message lazily. *)

type t = {
  image : Vp_prog.Image.t;  (** the image this was decoded from *)
  code : Vp_isa.Instr.t array;  (** [image.code] — error messages, events *)
  tag : int array;  (** one of the [tag_*] constants below *)
  dst : Vp_isa.Reg.t array;  (** destination; the stored register for [Store] *)
  src1 : Vp_isa.Reg.t array;  (** first source; base register for [Load]/[Store] *)
  src2 : Vp_isa.Reg.t array;  (** register second operand ([tag_alu_reg], [tag_br]) *)
  imm : int array;  (** immediate operand, or [Load]/[Store] offset *)
  alu_op : Vp_isa.Op.alu array;
  cond : Vp_isa.Op.cond array;
  target : int array;  (** resolved control/[La] target address; -1 otherwise *)
  fu : Vp_isa.Op.fu array;  (** functional-unit class, per pc *)
  latency : int array;  (** base result latency, per pc *)
  uses_off : int array;  (** length [size + 1]; pc's uses are [uses_off.(pc), uses_off.(pc+1)) *)
  uses : Vp_isa.Reg.t array;
  defs_off : int array;  (** length [size + 1]; same layout as [uses_off] *)
  defs : Vp_isa.Reg.t array;
}

(** {2 Instruction tags}

    Grouped so that resolved control flow is contiguous
    ([tag_br .. tag_halt]) and every unresolved-label variant sits at
    or above [tag_la_unresolved]. *)

val tag_alu_reg : int  (** [Alu] with a register second operand *)

val tag_alu_imm : int  (** [Alu] with an immediate second operand *)

val tag_li : int

val tag_la : int

val tag_load : int

val tag_store : int

val tag_br : int

val tag_jmp : int

val tag_call : int

val tag_ret : int

val tag_nop : int

val tag_halt : int

val tag_la_unresolved : int

val tag_br_unresolved : int

val tag_jmp_unresolved : int

val tag_call_unresolved : int

val of_image : Vp_prog.Image.t -> t
(** Lower the image.  O(size); performs all list/variant traversal up
    front so execution never does. *)

val size : t -> int

val uses_pc : t -> int -> Vp_isa.Reg.t list
(** The decoded use set of one pc, as a list (test/debug helper; the
    hot paths read the CSR arrays directly). *)

val defs_pc : t -> int -> Vp_isa.Reg.t list
