(** Architectural machine state: 32 integer registers and a flat word
    memory.  Register 0 reads as zero and swallows writes.  The
    initial return address is {!halt_address}; a [Ret] landing there
    stops the machine, which is how the entry function terminates
    without a [Halt]. *)

type t

val halt_address : int
(** Sentinel return address (-1). *)

val create : mem_words:int -> Vp_prog.Image.t -> t
(** Fresh state: pc at the image entry, sp at the top of memory, ra at
    {!halt_address}, memory initialised from the image's data
    initialisers.  The memory array is taken from this domain's arena
    when a matching one was {!release}d, avoiding a multi-megabyte
    allocation per run. *)

val release : t -> unit
(** Return [t]'s memory array to the domain-local arena for the next
    {!create} to reuse.  The reuser re-zeroes only the words [t]
    actually dirtied (tracked in a journal), not the whole array.
    Only call when [t] is provably dead — the emulator does so when a
    run completes; states created directly need not bother. *)

val pc : t -> int
val set_pc : t -> int -> unit

val reg : t -> Vp_isa.Reg.t -> int
val set_reg : t -> Vp_isa.Reg.t -> int -> unit

exception Fault of string
(** Raised on out-of-range memory access, with pc context. *)

val mem : t -> int -> int
val set_mem : t -> int -> int -> unit

val mem_words : t -> int

val store_digest : t -> int
(** Running hash over the (address, value) store stream — divergence
    between an original and a rewritten binary shows up here.  Stores
    into the stack region (the top quarter of memory, capped at 64K
    words) are excluded: spills and frame locals are private scratch,
    and dead callee-save traffic legitimately differs once the
    optimizer deletes computations whose results the program never
    consumes. *)

val bump_store_digest : t -> int -> int -> unit
(** No-op for stack-region addresses (see {!store_digest}). *)

val checksum : t -> int
(** Final architectural checksum: the store digest folded with the
    result register.  Dead register values at halt are deliberately
    excluded so semantics-preserving optimizations (dead-code sinking)
    remain checksum-equal. *)
