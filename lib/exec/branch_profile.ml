type t = {
  executed : int array;
  takens : int array;
  branches : int;
  total_executed : int;
}

let of_counts ~executed ~takens =
  if Array.length executed <> Array.length takens then
    invalid_arg "Branch_profile.of_counts: array length mismatch";
  let branches = ref 0 and total = ref 0 in
  Array.iter
    (fun e ->
      if e > 0 then begin
        incr branches;
        total := !total + e
      end)
    executed;
  { executed; takens; branches = !branches; total_executed = !total }

let empty = of_counts ~executed:[||] ~takens:[||]
let branches t = t.branches
let total_executed t = t.total_executed

let find t pc =
  if pc < 0 || pc >= Array.length t.executed || t.executed.(pc) = 0 then None
  else Some (t.executed.(pc), t.takens.(pc))

let executed t pc =
  if pc < 0 || pc >= Array.length t.executed then 0 else t.executed.(pc)

let iter f t =
  Array.iteri
    (fun pc e -> if e > 0 then f ~pc ~executed:e ~taken:t.takens.(pc))
    t.executed

let fold f t init =
  let acc = ref init in
  iter (fun ~pc ~executed ~taken -> acc := f ~pc ~executed ~taken !acc) t;
  !acc

let bindings t =
  List.rev
    (fold (fun ~pc ~executed ~taken acc -> (pc, (executed, taken)) :: acc) t [])
