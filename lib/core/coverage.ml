module Emulator = Vp_exec.Emulator

type t = {
  coverage_pct : float;
  outcome : Emulator.outcome;
  equivalent : bool;
}

let measure ?(config = Config.default) (r : Driver.rewrite) =
  let obs = Config.obs config in
  Vp_obs.Span.record obs "coverage"
    ~work:(fun c -> c.outcome.Emulator.instructions)
  @@ fun () ->
  let outcome =
    Emulator.run ~fuel:(Config.fuel config)
      ~mem_words:(Config.mem_words config)
      (Driver.rewritten_image r)
  in
  if not outcome.Emulator.halted then
    Logs.warn (fun m ->
        m
          "coverage run truncated: fuel (%d) exhausted after %d instructions \
           on the rewritten binary"
          (Config.fuel config) outcome.Emulator.instructions);
  let original = r.Driver.source.Driver.outcome in
  {
    coverage_pct =
      Vp_util.Stats.pct outcome.Emulator.package_instructions
        outcome.Emulator.instructions;
    outcome;
    equivalent =
      outcome.Emulator.halted
      && outcome.Emulator.checksum = original.Emulator.checksum
      && outcome.Emulator.result = original.Emulator.result;
  }
