module Emulator = Vp_exec.Emulator
module Image = Vp_prog.Image

type t = {
  coverage_pct : float;
  outcome : Emulator.outcome;
  equivalent : bool;
  residency : Vp_telemetry.t;
}

(* pc -> residency lane.  Lane 0 is the original program; lane k > 0
   is the k-th symbol appended at or above [orig_limit] (one lane per
   emitted package group).  A flat array keeps the per-retirement
   attribution to one load. *)
let lanes_of_image image =
  let n = Image.size image in
  let lane_of = Array.make n 0 in
  let names = ref [ "orig" ] in
  let k = ref 0 in
  List.iter
    (fun (s : Image.sym) ->
      if s.Image.start >= image.Image.orig_limit then begin
        incr k;
        names := s.Image.name :: !names;
        for pc = s.Image.start to s.Image.start + s.Image.len - 1 do
          lane_of.(pc) <- !k
        done
      end)
    (Image.functions image);
  (lane_of, Array.of_list (List.rev !names))

let measure ?(config = Config.default) (r : Driver.rewrite) =
  let obs = Config.obs config in
  Vp_obs.Span.record obs "coverage"
    ~work:(fun c -> c.outcome.Emulator.instructions)
  @@ fun () ->
  let image = Driver.rewritten_image r in
  (* Per-run residency timeline: which address range (original code or
     which emitted package) retired each interval's instructions, plus
     the migration events between them. *)
  let tl = Vp_telemetry.create (Config.telemetry config) in
  let on_retire, tail_flush =
    if not (Vp_telemetry.enabled tl) then (None, fun () -> ())
    else begin
      let lane_of, lane_names = lanes_of_image image in
      let lanes = Array.length lane_names in
      let series =
        Array.init lanes (fun k ->
            Vp_telemetry.Series.register tl
              (Printf.sprintf "run.%s.instructions" lane_names.(k)))
      in
      let s_instr = Vp_telemetry.Series.register tl "run.instructions" in
      let counts = Array.make lanes 0 in
      let interval = Vp_telemetry.interval_length tl in
      let countdown = ref interval in
      let retired = ref 0 in
      let cur_lane = ref 0 in
      let flush n =
        Vp_telemetry.Series.push tl s_instr n;
        for k = 0 to lanes - 1 do
          Vp_telemetry.Series.push tl series.(k) counts.(k);
          counts.(k) <- 0
        done
      in
      ( Some
          (fun ~pc ~taken:_ ~next_pc:_ ~mem_addr:_ ->
            let lane = lane_of.(pc) in
            counts.(lane) <- counts.(lane) + 1;
            incr retired;
            if lane <> !cur_lane then begin
              let kind =
                if !cur_lane = 0 then "launch"
                else if lane = 0 then "side_exit"
                else "migrate"
              in
              let value = if lane = 0 then !cur_lane else lane in
              Vp_telemetry.Event.emit tl ~kind ~at:!retired ~value;
              cur_lane := lane
            end;
            decr countdown;
            if !countdown = 0 then begin
              countdown := interval;
              flush interval
            end),
        fun () ->
          let tail = interval - !countdown in
          if tail > 0 then flush tail )
    end
  in
  let outcome =
    Emulator.run_backend ~backend:(Config.backend config)
      ~fuel:(Config.fuel config) ~mem_words:(Config.mem_words config)
      ?on_retire image
  in
  tail_flush ();
  if not outcome.Emulator.halted then
    Logs.warn (fun m ->
        m
          "coverage run truncated: fuel (%d) exhausted after %d instructions \
           on the rewritten binary"
          (Config.fuel config) outcome.Emulator.instructions);
  let original = r.Driver.source.Driver.outcome in
  {
    coverage_pct =
      Vp_util.Stats.pct outcome.Emulator.package_instructions
        outcome.Emulator.instructions;
    outcome;
    equivalent =
      outcome.Emulator.halted
      && outcome.Emulator.checksum = original.Emulator.checksum
      && outcome.Emulator.result = original.Emulator.result;
    residency = tl;
  }
