(** End-to-end Vacuum Packing configuration.

    The type is abstract: build one with {!v} (every field defaulted)
    or {!experiment}, derive variants with the [with_*] setters, and
    read fields through the accessors.  Downstream code never
    constructs the record literally, so adding a field — like the
    {!obs} recorder — is not a breaking change.

    The four configurations evaluated in Figures 8 and 10 are the
    cross product of hot-block inference and package linking; build
    them with {!experiment}. *)

type t

type session = {
  epoch_fuel : int;
      (** retired instructions per epoch slice; 0 (the default) means
          auto — the baseline run's instruction count divided by
          [epochs], so a default session spans the whole program *)
  epochs : int;  (** default epoch count for [Session.run] (4) *)
  cache_pct : float;
      (** package cache budget as a percentage of the original image's
          static instruction count — the paper's Table 3 expansion
          budget repurposed as the cache-size knob (30.0) *)
  drift_threshold : float;
      (** [Similarity.score] at or above which a freshly detected phase
          is classified as a cached one re-observed rather than drift
          (0.5) *)
  patch_grace : int;
      (** extra instructions the session may run past an epoch boundary
          to reach a quiescent point before hot-patching (50_000) *)
  oracle : bool;
      (** run the per-epoch differential oracle: each activated image
          is executed standalone and must be architecturally
          equivalent to the original (true) *)
}

val default_session : session

val v :
  ?detector:Vp_hsd.Config.t ->
  ?history_size:int ->
  ?similarity:Vp_phase.Similarity.config ->
  ?identify:Vp_region.Identify.config ->
  ?linking:bool ->
  ?opt:Vp_opt.Opt.config ->
  ?cpu:Vp_cpu.Config.t ->
  ?backend:Vp_exec.Emulator.backend ->
  ?mem_words:int ->
  ?fuel:int ->
  ?obs:Vp_obs.t ->
  ?metrics:Vp_metrics.t ->
  ?telemetry:Vp_telemetry.config ->
  ?fault:Vp_fault.Plan.t ->
  ?degrade:bool ->
  ?session:session ->
  unit ->
  t
(** Every argument defaults to the corresponding {!default} field. *)

val default : t
(** [v ()]: Table 2 detector, inference and linking on, layout and
    scheduling on, observability disabled. *)

val experiment : inference:bool -> linking:bool -> t
(** One of the four Figure 8 / Figure 10 configurations.  Uses the
    paper's optimization set (relayout + rescheduling only); the
    library default additionally enables superblock formation. *)

val experiment_name : inference:bool -> linking:bool -> string

(** {1 Accessors} *)

val detector : t -> Vp_hsd.Config.t

val counter_max : t -> int
(** The saturation cap of the detector's BBB counters,
    [2^counter_bits - 1] (511 for the Table 2 detector).  Every
    software consumer of counter values — fault injection, fleet
    aggregation — must use this single derivation rather than
    re-deriving the width. *)

val history_size : t -> int
(** Hardware snapshot history (0 = record all). *)

val similarity : t -> Vp_phase.Similarity.config
val identify : t -> Vp_region.Identify.config
val linking : t -> bool
val opt : t -> Vp_opt.Opt.config
val cpu : t -> Vp_cpu.Config.t

val backend : t -> Vp_exec.Emulator.backend
(** Which emulation core every run in the pipeline uses — profiling,
    coverage, chaos oracles, fleet emulation and the timing model's
    retire feed all select it from here ([Decoded] by default, so the
    differential oracle's semantics are the baseline). *)

val mem_words : t -> int
val fuel : t -> int

val obs : t -> Vp_obs.t
(** The observability recorder the pipeline reports through;
    {!Vp_obs.disabled} by default. *)

val metrics : t -> Vp_metrics.t
(** The aggregated metrics registry (counters, gauges, histograms)
    the pipeline reports through; {!Vp_metrics.disabled} by
    default.  Like {!obs} this is a shared recorder; its {e stable}
    snapshot is byte-identical across [--jobs], shards and
    backends. *)

val telemetry : t -> Vp_telemetry.config
(** The run-time telemetry sampling configuration ({!Vp_telemetry.off}
    by default).  Unlike {!obs} this is a {e configuration}, not a
    shared recorder: each run (profiling, coverage, timing) creates
    its own per-run {!Vp_telemetry.t} from it, so timelines stay
    deterministic under any [Vacuum.Engine] schedule. *)

val fault : t -> Vp_fault.Plan.t option
(** The fault plan injected at the hardware→software boundary; [None]
    (the default) leaves the pipeline untouched. *)

val degrade : t -> bool
(** Graceful degradation (default [true]): stage failures and verifier
    rejections demote — drop the package, then the region, then fall
    back to the unmodified image — instead of raising. *)

val session : t -> session
(** The online re-optimization loop's knobs ({!default_session} by
    default); only [Vacuum.Session] reads them. *)

(** {1 Functional setters} *)

val with_detector : Vp_hsd.Config.t -> t -> t
(** Replace the detector model (tests use the tiny configuration). *)

val with_history_size : int -> t -> t
val with_similarity : Vp_phase.Similarity.config -> t -> t
val with_identify : Vp_region.Identify.config -> t -> t
val with_linking : bool -> t -> t
val with_opt : Vp_opt.Opt.config -> t -> t
val with_cpu : Vp_cpu.Config.t -> t -> t
val with_backend : Vp_exec.Emulator.backend -> t -> t
val with_mem_words : int -> t -> t
val with_fuel : int -> t -> t
val with_obs : Vp_obs.t -> t -> t
val with_metrics : Vp_metrics.t -> t -> t
val with_telemetry : Vp_telemetry.config -> t -> t
val with_fault : Vp_fault.Plan.t -> t -> t
val without_fault : t -> t
val with_degrade : bool -> t -> t

val with_session : session -> t -> t
val map_session : (session -> session) -> t -> t

val map_identify : (Vp_region.Identify.config -> Vp_region.Identify.config) -> t -> t
(** Rewrite the identify sub-configuration in place — the common case
    for experiment variants that tweak one nested knob. *)

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit
(** Indented JSON rendering of every effective field, including the
    [session.*] knobs — what `vpack stats` prints. *)

val to_json : t -> string
(** The same tree as {!pp} on a single line: a valid JSON object for
    machine consumers (epoch reports, trace tooling). *)
