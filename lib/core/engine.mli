(** The parallel experiment engine.

    The evaluation matrix — workloads × configurations, each cell a
    profile → rewrite → emulate/time chain — is a task DAG in which
    every (workload, configuration) cell is independent and all cells
    of one workload share a single profiling run.  The engine executes
    that DAG on a {!Vp_util.Pool} of domains and memoises every
    artefact, so the experiment tables afterwards read from caches.

    {b Determinism contract.}  Results are byte-identical for every
    [jobs] value, including [1] (the reference sequential schedule):
    each task works on isolated state — its own emulator state, cache
    and predictor models, and detector — created from pure inputs, and
    each DAG key is owned by exactly one task, so caches receive
    schedule-independent values.  Only the metrics in {!pp_summary}
    (wall-clock times) vary between runs; print them to stderr to keep
    stdout comparable. *)

type spec = { name : string; load : unit -> Vp_prog.Image.t }
(** A workload: a stable name (the cache key) and a pure image
    producer. *)

type cell = { key : string; config : Config.t }
(** A configuration column of the matrix, keyed for caching. *)

type metric = {
  kind : string;  (** [image], [profile], [rewrite], [coverage], [timing] *)
  label : string;
  wall_s : float;
  instructions : int;  (** instructions simulated by the task; 0 if none *)
  start_s : float;  (** [Unix.gettimeofday] when the task began *)
  domain : int;  (** OCaml domain id the task ran on — a Perfetto lane *)
}

type t

val create :
  ?jobs:int -> ?profile_config:Config.t -> ?obs:Vp_obs.t -> unit -> t
(** An engine running at most [jobs] tasks concurrently (default
    {!Vp_util.Pool.default_jobs}; [jobs <= 1] is sequential).
    [profile_config] (default {!Config.default}) governs the shared
    profiling runs.  With an enabled [obs] recorder, every memo miss is
    also recorded as a depth-0 span named [kind:label] with the task's
    wall time and simulated instructions, and {!run} flushes memo
    hit/miss counters. *)

val jobs : t -> int

val run :
  ?rewrites:bool ->
  ?timing:bool ->
  t ->
  specs:spec list ->
  cells:cell list ->
  unit ->
  unit
(** Execute the DAG: a [profile] task per spec, then per spec × cell a
    [rewrite] task feeding a [coverage] task (when [rewrites], default
    true) and a timing simulation of the rewritten image (when
    [timing], default false).  [timing] also simulates each original
    image once as the shared baseline.  If tasks failed, re-raises the
    exception of the first failed task by label order. *)

(** {2 Memoised accessors}

    Cache hits return the DAG's artefacts; misses compute sequentially
    (and are recorded as tasks), so ad-hoc lookups outside the matrix
    remain valid. *)

val image : t -> spec -> Vp_prog.Image.t
val profile : t -> spec -> Driver.profile
val rewrite : t -> spec -> cell -> Driver.rewrite
val coverage : t -> spec -> cell -> Coverage.t

val fleet : ?runs:int -> ?seed:int -> t -> spec -> Fleet.t
(** The memoised fleet aggregate for a workload: [runs] emulated user
    machines (default 64) derived from the shared profiling run with
    {!Fleet.default_noise} seeded by [seed] (default 42), aggregated
    against the profile's phase log.  Cache key is
    [(spec, runs, seed)]. *)

val session : ?epochs:int -> t -> spec -> cell -> Session.report
(** The memoised online re-optimization run for a workload under a
    cell's configuration: {!Session.run} over a fresh session on the
    workload's image.  [epochs] overrides the configured epoch count
    and is part of the cache key. *)

val baseline : t -> spec -> cpu:Vp_cpu.Config.t -> Vp_cpu.Pipeline.stats
(** Timing of the original image, shared across cells (the machine
    model is uniform over the matrix). *)

val optimized : t -> spec -> cell -> Vp_cpu.Pipeline.stats
(** Timing of the cell's rewritten image. *)

val truncated_profiles : t -> string list
(** Names of specs whose profiling run exhausted its fuel (sorted);
    non-empty means every derived metric reflects partial runs. *)

val metrics : t -> metric list

val pp_summary : Format.formatter -> t -> unit
(** The per-task metrics table plus memo-layer hit/miss counts and the
    task-seconds vs wall-seconds harness speedup. *)
