module Emulator = Vp_exec.Emulator
module State = Vp_exec.State
module Decode = Vp_exec.Decode
module Detector = Vp_hsd.Detector
module Snapshot = Vp_hsd.Snapshot
module Phase_log = Vp_phase.Phase_log
module Similarity = Vp_phase.Similarity
module Identify = Vp_region.Identify
module Build = Vp_package.Build
module Pkg = Vp_package.Pkg
module Emit = Vp_package.Emit
module Verify = Vp_package.Verify
module Image = Vp_prog.Image
module Counter = Vp_obs.Counter

let src = Logs.Src.create "vacuum.session" ~doc:"Vacuum online session"

module Log = (val Logs.src_log src : Logs.LOG)

(* One cached phase class.  [packages] are the region packages built
   from the ORIGINAL image (never from a rewritten one) so that each
   epoch's assembly starts from pristine code; [residency] is the
   decayed eviction signal.  A [rejected] entry is a tombstone: the
   ladder dropped all its packages, and keeping the representative
   around stops the same doomed phase from being rebuilt every time it
   is re-detected. *)
type entry = {
  id : int;
  representative : Snapshot.t;
  mutable packages : Pkg.t list;
  mutable residency : int;
  mutable rejected : bool;
  mutable hits : int;
  mutable last_seen : int;
  born : int;
}

let entry_size e = List.fold_left (fun a p -> a + Pkg.size p) 0 e.packages

type epoch_report = {
  epoch : int;
  slice : Emulator.outcome;
  grace_used : int;
  grace_package_instructions : int;
  phases_seen : int;
  new_entries : int list;
  matched_entries : int list;
  evicted : int list;
  cache_entries : int;
  cache_instructions : int;
  activated : bool;
  deferred : bool;
  fallback : bool;
  verifier_ok : bool;
  oracle_ok : bool option;
  drops : Driver.demotion list;
  coverage_pct : float;
  timeline : Vp_telemetry.t;
}

type report = {
  epochs : epoch_report list;
  instructions : int;
  package_instructions : int;
  cond_branches : int;
  halted : bool;
  coverage_pct : float;
  activations : int;
  final_cache_entries : int;
  final_image : Image.t;
  equivalent : bool option;
}

type t = {
  config : Config.t;
  original : Image.t;
  state : State.t;
  mutable image : Image.t;
  mutable emitted : Emit.result option;
  mutable halted : bool;
  mutable depth : int;
  mutable epoch : int;
  mutable next_id : int;
  mutable cache : entry list;  (* ascending id *)
  mutable dirty : bool;
  mutable retired : int;
  mutable branches : int;
  mutable package_retired : int;
  mutable baseline : Emulator.outcome option;
  mutable reports : epoch_report list;  (* reverse epoch order *)
}

let create ?(config = Config.default) image =
  (match Image.validate image with
  | Ok () -> ()
  | Error e -> Error.failf ~stage:"session" "invalid image: %s" e);
  {
    config;
    original = image;
    state = State.create ~mem_words:(Config.mem_words config) image;
    image;
    emitted = None;
    halted = false;
    depth = 0;
    epoch = 0;
    next_id = 0;
    cache = [];
    dirty = false;
    retired = 0;
    branches = 0;
    package_retired = 0;
    baseline = None;
    reports = [];
  }

let halted t = t.halted
let epochs_run t = t.epoch
let image t = t.image
let cache_entries t = List.length t.cache

(* A clean full run of the pristine original — the differential
   oracle's reference and the denominator of auto epoch fuel.  One per
   session, computed on first need. *)
let baseline t =
  match t.baseline with
  | Some o -> o
  | None ->
    let o =
      Emulator.run_backend
        ~backend:(Config.backend t.config)
        ~fuel:(Config.fuel t.config)
        ~mem_words:(Config.mem_words t.config)
        t.original
    in
    t.baseline <- Some o;
    o

let epoch_fuel t =
  let s = Config.session t.config in
  if s.Config.epoch_fuel > 0 then s.Config.epoch_fuel
  else
    let total = (baseline t).Emulator.instructions in
    Stdlib.max 1 ((total / Stdlib.max 1 s.Config.epochs) + 1)

(* pc -> original branch pc for the currently active image: identity
   below [orig_limit], the emitted branch map above it, -1 for package
   branches without a site (dropped from the detector's feed). *)
let branch_fold_map t =
  let n = Image.size t.image in
  let ol = t.image.Image.orig_limit in
  let map = Array.init n (fun pc -> if pc < ol then pc else -1) in
  (match t.emitted with
  | None -> ()
  | Some e -> List.iter (fun (pc, opc) -> if pc < n then map.(pc) <- opc) e.Emit.branch_map);
  map

let total_cache_size cache =
  List.fold_left (fun a e -> a + entry_size e) 0 cache

let cache_budget t =
  let s = Config.session t.config in
  int_of_float
    (s.Config.cache_pct /. 100.
    *. float_of_int (Image.static_instruction_count t.original))

(* Classify one freshly observed phase against the cache: best score
   wins, ties to the oldest entry; below the drift threshold the phase
   is new.  Scores are computed in original-pc space on both sides, so
   a phase re-observed through its own package code still matches. *)
let classify t (phase : Phase_log.phase) =
  let threshold = (Config.session t.config).Config.drift_threshold in
  let best =
    List.fold_left
      (fun acc e ->
        let s = Similarity.score phase.Phase_log.representative e.representative in
        match acc with
        | Some (_, bs) when bs >= s -> acc
        | _ when s >= threshold -> Some (e, s)
        | _ -> acc)
      None t.cache
  in
  Option.map fst best

let step t =
  if t.halted then
    Error.failf ~stage:"session" "step: the session's program has halted";
  let config = t.config in
  let obs = Config.obs config in
  let metrics = Config.metrics config in
  let session_cfg = Config.session config in
  let backend = Config.backend config in
  let fuel = epoch_fuel t in
  let epoch = t.epoch in
  (* Wall clock is volatile-only; never read when metrics are off so
     the disabled path stays branch-and-return. *)
  let wall0 =
    if Vp_metrics.enabled metrics then Unix.gettimeofday () else 0.0
  in
  let tl =
    Vp_telemetry.create
      ~name:(Printf.sprintf "epoch-%d" epoch)
      (Config.telemetry config)
  in
  let same = Similarity.same ~config:(Config.similarity config) in
  let detector =
    Detector.create ~config:(Config.detector config)
      ~history_size:(Config.history_size config) ~same ()
  in
  let ol = t.image.Image.orig_limit in
  let fold = branch_fold_map t in
  let lane_of, lane_names = Coverage.lanes_of_image t.image in
  let lane_branches = Array.make (Array.length lane_names) 0 in
  (* Depth of outstanding package-space return addresses: a [Call]
     retiring in package code produces one (ra = pc + 1 >= orig_limit),
     a [Ret] landing in package code consumes one.  The only other ra
     producer, the inlined-call [La], materialises an ORIGINAL
     continuation address, and this ISA has no indirect jumps besides
     [Ret] — so [depth = 0 && pc < orig_limit] implies no live
     reference into package code anywhere in the machine, and the
     image can be swapped under the running state. *)
  let tag = (Decode.of_image t.image).Decode.tag in
  let epoch_branches = ref 0 in
  let on_branch ~pc ~taken =
    incr epoch_branches;
    lane_branches.(lane_of.(pc)) <- lane_branches.(lane_of.(pc)) + 1;
    let opc = fold.(pc) in
    if opc >= 0 then Detector.on_branch detector ~pc:opc ~taken
  in
  let need_depth = ol < Image.size t.image in
  let telemetry_on = Vp_telemetry.enabled tl in
  let s_instr = Vp_telemetry.Series.register tl "session.instructions" in
  let s_branch = Vp_telemetry.Series.register tl "session.branches" in
  let s_pkg = Vp_telemetry.Series.register tl "session.package_instructions" in
  let interval = Vp_telemetry.interval_length tl in
  let countdown = ref interval in
  let last_branches = ref 0 in
  let pkg_now = ref 0 in
  let last_pkg = ref 0 in
  let flush n =
    Vp_telemetry.Series.push tl s_instr n;
    Vp_telemetry.Series.push tl s_branch (!epoch_branches - !last_branches);
    last_branches := !epoch_branches;
    Vp_telemetry.Series.push tl s_pkg (!pkg_now - !last_pkg);
    last_pkg := !pkg_now
  in
  let on_retire =
    if not (need_depth || telemetry_on) then None
    else
      Some
        (fun ~pc ~taken:_ ~next_pc ~mem_addr:_ ->
          if need_depth then begin
            if pc >= ol then begin
              if tag.(pc) = 8 (* Call *) then t.depth <- t.depth + 1
            end
            else if next_pc >= ol && tag.(pc) = 9 (* Ret *) then
              t.depth <- t.depth - 1
          end;
          if telemetry_on then begin
            if pc >= ol then incr pkg_now;
            decr countdown;
            if !countdown = 0 then begin
              countdown := interval;
              flush interval
            end
          end)
  in
  let run_chunk n =
    Emulator.run_slice ~backend ~state:t.state ~fuel:n ~on_branch ?on_retire
      t.image
  in
  let slice = run_chunk fuel in
  t.retired <- t.retired + slice.Emulator.instructions;
  t.branches <- t.branches + slice.Emulator.cond_branches;
  t.package_retired <- t.package_retired + slice.Emulator.package_instructions;
  t.halted <- slice.Emulator.halted;
  (* ---- drift classification ---- *)
  (* Fault plans apply at the same hardware→software boundary as the
     one-shot driver's: the epoch's raw snapshot stream is perturbed
     before classification ever sees it.  The plan seed is re-derived
     per epoch through [Rng.stream_seed], so epochs draw decorrelated
     faults yet the whole session stays deterministic under any
     [--jobs] count. *)
  let raw_snapshots =
    match Config.fault config with
    | Some plan when not (Vp_fault.Plan.is_clean plan) ->
      let plan =
        Vp_fault.Plan.with_seed plan
          (Vp_util.Rng.stream_seed
             (Vp_util.Rng.create ~seed:plan.Vp_fault.Plan.seed)
             epoch)
      in
      Counter.bump obs "fault.runs" 1;
      Vp_fault.Inject.snapshots ~plan
        ~counter_max:(Config.counter_max config)
        (Detector.snapshots detector)
    | _ -> Detector.snapshots detector
  in
  let log =
    Phase_log.build ~similarity:(Config.similarity config) raw_snapshots
  in
  let phases = Phase_log.phases log in
  let matched = ref [] in
  let fresh = ref [] in
  let extent_credit = Hashtbl.create 8 in
  List.iter
    (fun (phase : Phase_log.phase) ->
      match classify t phase with
      | Some e ->
        e.hits <- e.hits + 1;
        e.last_seen <- epoch;
        Vp_metrics.Counter.bump metrics "session.cache.hits" 1;
        if not (List.mem e.id !matched) then matched := e.id :: !matched;
        Hashtbl.replace extent_credit e.id
          (Phase_log.extent phase
          + Option.value ~default:0 (Hashtbl.find_opt extent_credit e.id))
      | None ->
        let id = t.next_id in
        t.next_id <- id + 1;
        Counter.bump obs "session.drifts" 1;
        Vp_metrics.Counter.bump metrics "session.drifts" 1;
        Vp_metrics.Flight.note metrics ~kind:"drift"
          ~label:(string_of_int id);
        Vp_telemetry.Event.emit tl ~kind:"drift" ~at:t.retired ~value:id;
        let build_packages () =
          let region, _stats =
            Identify.identify_with_stats ~config:(Config.identify config)
              t.original phase.Phase_log.representative
          in
          Build.build region ~prefix:(Printf.sprintf "pkg$s%d" id)
        in
        let packages =
          if not (Config.degrade config) then build_packages ()
          else
            try build_packages () with
            | Error.Error e ->
              Log.warn (fun m ->
                  m "session: dropping drifted phase %d: %a" id Error.pp e);
              []
            | exn ->
              Log.warn (fun m ->
                  m "session: dropping drifted phase %d: %s" id
                    (Printexc.to_string exn));
              []
        in
        let e =
          {
            id;
            representative = phase.Phase_log.representative;
            packages;
            residency = Phase_log.extent phase;
            rejected = packages = [];
            hits = 1;
            last_seen = epoch;
            born = epoch;
          }
        in
        if e.rejected then
          Vp_metrics.Counter.bump metrics "session.cache.tombstones" 1;
        t.cache <- t.cache @ [ e ];
        fresh := id :: !fresh;
        t.dirty <- true)
    phases;
  (* ---- residency update: decay, then integrate this epoch's lane
     branches and the extents of matched detections ---- *)
  let lane_entry name =
    List.find_opt
      (fun e -> List.exists (fun (p : Pkg.t) -> p.Pkg.id = name) e.packages)
      t.cache
  in
  List.iter
    (fun e -> if not (List.mem e.id !fresh) then e.residency <- e.residency / 2)
    t.cache;
  Array.iteri
    (fun lane count ->
      if lane > 0 && count > 0 then
        match lane_entry lane_names.(lane) with
        | Some e -> e.residency <- e.residency + count
        | None -> ())
    lane_branches;
  Hashtbl.iter
    (fun id credit ->
      match List.find_opt (fun e -> e.id = id) t.cache with
      | Some e -> e.residency <- e.residency + credit
      | None -> ())
    extent_credit;
  (* ---- bounded cache: evict least-resident-first until the Table 3
     expansion budget holds; ties go to the oldest entry ---- *)
  let budget = cache_budget t in
  let evicted = ref [] in
  let rec evict () =
    if total_cache_size t.cache > budget then begin
      let candidates = List.filter (fun e -> entry_size e > 0) t.cache in
      match candidates with
      | [] -> ()
      | first :: rest ->
        let victim =
          List.fold_left
            (fun v e ->
              if
                e.residency < v.residency
                || (e.residency = v.residency && e.id < v.id)
              then e
              else v)
            first rest
        in
        t.cache <- List.filter (fun e -> e.id <> victim.id) t.cache;
        evicted := victim.id :: !evicted;
        Counter.bump obs "session.evictions" 1;
        Vp_metrics.Counter.bump metrics "session.cache.evictions" 1;
        Vp_metrics.Flight.note metrics ~kind:"evict"
          ~label:(string_of_int victim.id);
        Vp_telemetry.Event.emit tl ~kind:"evict" ~at:t.retired ~value:victim.id;
        t.dirty <- true;
        evict ()
    end
  in
  evict ();
  (* ---- re-assembly and hot patching ---- *)
  let activated = ref false in
  let deferred = ref false in
  let fallback = ref false in
  let verifier_ok = ref true in
  let oracle_ok = ref None in
  let drops = ref [] in
  let grace_used = ref 0 in
  let grace_pkg = ref 0 in
  let assembly_input =
    List.concat_map (fun e -> e.packages)
      (List.filter (fun e -> not e.rejected) t.cache)
  in
  if t.dirty && assembly_input = [] && t.emitted = None then
    (* Nothing survives screening and nothing is live: there is no
       image to build and none to withdraw, so don't "activate" a
       byte-copy of the original. *)
    t.dirty <- false;
  if t.dirty && not t.halted then begin
    let input = assembly_input in
    let assembly = Driver.assemble ~config ~original:t.original input in
    drops := assembly.Driver.drops;
    fallback :=
      List.exists
        (fun (d : Driver.demotion) -> d.Driver.rung = Driver.Fallback_image)
        assembly.Driver.drops;
    verifier_ok := Verify.ok assembly.Driver.checks;
    (* Walk ladder drops back into the cache so a rejected package is
       not rebuilt and re-rejected every epoch. *)
    let surviving_ids =
      List.map (fun (p : Pkg.t) -> p.Pkg.id) assembly.Driver.survivors
    in
    List.iter
      (fun e ->
        if e.packages <> [] then begin
          let kept =
            List.filter
              (fun (p : Pkg.t) -> List.mem p.Pkg.id surviving_ids)
              e.packages
          in
          if List.length kept < List.length e.packages then begin
            e.packages <- kept;
            if kept = [] then begin
              e.rejected <- true;
              Vp_metrics.Counter.bump metrics "session.cache.tombstones" 1
            end
          end
        end)
      t.cache;
    let ok_to_activate =
      !verifier_ok
      &&
      if not session_cfg.Config.oracle then true
      else begin
        (* Differential oracle: the candidate image, run standalone
           from a clean state, must compute exactly what the original
           computes. *)
        let b = baseline t in
        let o =
          Emulator.run_backend ~backend ~fuel:(Config.fuel config)
            ~mem_words:(Config.mem_words config)
            assembly.Driver.assembled.Emit.image
        in
        let ok =
          o.Emulator.checksum = b.Emulator.checksum
          && o.Emulator.result = b.Emulator.result
          && o.Emulator.halted = b.Emulator.halted
        in
        oracle_ok := Some ok;
        if not ok then begin
          Counter.bump obs "session.oracle_failures" 1;
          Vp_metrics.Counter.bump metrics "session.oracle_failures" 1;
          Vp_metrics.Flight.note metrics ~kind:"oracle" ~label:"failure";
          Vp_metrics.Flight.dump metrics ~obs ~reason:"oracle-failure"
            ~label:(Printf.sprintf "epoch-%d" epoch) ()
        end;
        ok
      end
    in
    if ok_to_activate then begin
      (* Quiescence: seek a safe launch point — original code, no live
         package-space return address — within the grace budget. *)
      let safe () = State.pc t.state < ol && t.depth = 0 in
      let remaining = ref session_cfg.Config.patch_grace in
      while (not (safe ())) && !remaining > 0 && not t.halted do
        let chunk = Stdlib.min 128 !remaining in
        let o = run_chunk chunk in
        remaining := !remaining - o.Emulator.instructions;
        grace_used := !grace_used + o.Emulator.instructions;
        grace_pkg := !grace_pkg + o.Emulator.package_instructions;
        t.retired <- t.retired + o.Emulator.instructions;
        t.branches <- t.branches + o.Emulator.cond_branches;
        t.package_retired <- t.package_retired + o.Emulator.package_instructions;
        t.halted <- o.Emulator.halted;
        if o.Emulator.instructions = 0 then remaining := 0
      done;
      if t.halted then ()
      else if safe () then begin
        t.image <- assembly.Driver.assembled.Emit.image;
        t.emitted <- Some assembly.Driver.assembled;
        t.depth <- 0;
        t.dirty <- false;
        activated := true;
        Counter.bump obs "session.activations" 1;
        Vp_metrics.Counter.bump metrics "session.activations" 1;
        Vp_telemetry.Event.emit tl ~kind:"activate" ~at:t.retired ~value:epoch
      end
      else begin
        deferred := true;
        Counter.bump obs "session.deferrals" 1;
        Vp_metrics.Counter.bump metrics "session.deferrals" 1;
        Vp_telemetry.Event.emit tl ~kind:"defer" ~at:t.retired ~value:t.depth
      end
    end
  end;
  if telemetry_on then begin
    let tail = interval - !countdown in
    if tail > 0 then flush tail
  end;
  t.epoch <- epoch + 1;
  let total_instr = slice.Emulator.instructions + !grace_used in
  let total_pkg = slice.Emulator.package_instructions + !grace_pkg in
  let coverage_pct =
    if total_instr = 0 then 0.0
    else 100.0 *. float_of_int total_pkg /. float_of_int total_instr
  in
  (* Stable per-epoch distributions (schedule-independent values). *)
  Vp_metrics.Histogram.observe metrics "session.epoch.instructions"
    total_instr;
  Vp_metrics.Histogram.observe metrics "session.grace.instructions"
    !grace_used;
  Vp_metrics.Histogram.observe metrics "session.cache.entries"
    (List.length t.cache);
  Vp_metrics.Histogram.observe metrics "session.cache.instructions"
    (total_cache_size t.cache);
  if Vp_metrics.enabled metrics then
    Vp_metrics.Histogram.observe ~volatile:true metrics
      "session.epoch.wall_us"
      (int_of_float ((Unix.gettimeofday () -. wall0) *. 1e6));
  let r =
    {
      epoch;
      slice;
      grace_used = !grace_used;
      grace_package_instructions = !grace_pkg;
      phases_seen = List.length phases;
      new_entries = List.rev !fresh;
      matched_entries = List.sort compare !matched;
      evicted = List.rev !evicted;
      cache_entries = List.length t.cache;
      cache_instructions = total_cache_size t.cache;
      activated = !activated;
      deferred = !deferred;
      fallback = !fallback;
      verifier_ok = !verifier_ok;
      oracle_ok = !oracle_ok;
      drops = !drops;
      coverage_pct;
      timeline = tl;
    }
  in
  t.reports <- r :: t.reports;
  r

let report t =
  let epochs = List.rev t.reports in
  let activations =
    List.length (List.filter (fun r -> r.activated) epochs)
  in
  let coverage_pct =
    if t.retired = 0 then 0.0
    else 100.0 *. float_of_int t.package_retired /. float_of_int t.retired
  in
  let equivalent =
    if not t.halted then None
    else
      let b = baseline t in
      Some
        (b.Emulator.halted
        && State.checksum t.state = b.Emulator.checksum
        && State.reg t.state Vp_isa.Reg.ret_value = b.Emulator.result)
  in
  {
    epochs;
    instructions = t.retired;
    package_instructions = t.package_retired;
    cond_branches = t.branches;
    halted = t.halted;
    coverage_pct;
    activations;
    final_cache_entries = List.length t.cache;
    final_image = t.image;
    equivalent;
  }

let run ?epochs t =
  let n =
    match epochs with
    | Some n -> n
    | None -> (Config.session t.config).Config.epochs
  in
  while t.epoch < n && not t.halted do
    ignore (step t)
  done;
  report t

let pp_epoch ppf (r : epoch_report) =
  Format.fprintf ppf
    "epoch %d: %d instrs (%d grace), %d phases, +%d new, %d matched, %d \
     evicted, cache %d/%d instrs, %s%s coverage %.1f%%"
    r.epoch
    (r.slice.Emulator.instructions + r.grace_used)
    r.grace_used r.phases_seen
    (List.length r.new_entries)
    (List.length r.matched_entries)
    (List.length r.evicted)
    r.cache_entries r.cache_instructions
    (if r.activated then "activated"
     else if r.deferred then "deferred"
     else "steady")
    (match r.oracle_ok with
    | Some true -> " oracle-ok"
    | Some false -> " ORACLE-FAILED"
    | None -> "")
    r.coverage_pct

let pp_report ppf (r : report) =
  Format.fprintf ppf "@[<v>";
  List.iter (fun e -> Format.fprintf ppf "%a@," pp_epoch e) r.epochs;
  Format.fprintf ppf
    "session: %d epochs, %d instrs, coverage %.1f%%, %d activations, %d \
     cached, %s%s@]"
    (List.length r.epochs) r.instructions r.coverage_pct r.activations
    r.final_cache_entries
    (if r.halted then "halted" else "running")
    (match r.equivalent with
    | Some true -> ", equivalent"
    | Some false -> ", NOT EQUIVALENT"
    | None -> "")
