(** The end-to-end Vacuum Packing pipeline.

    {!profile} runs the binary once under the Hot Spot Detector,
    collecting phase snapshots, the filtered phase log, and (in the
    same run) a traditional aggregate branch profile for comparison.
    {!rewrite_of_profile} then performs region identification, package
    construction, linking and emission; it is configuration-dependent
    but reuses the profile, so the four Figure 8 configurations share
    one profiling run per workload. *)

type profile = {
  image : Vp_prog.Image.t;
  outcome : Vp_exec.Emulator.outcome;  (** the profiled original run *)
  snapshots : Vp_hsd.Snapshot.t list;
  log : Vp_phase.Phase_log.t;
  aggregate : Vp_exec.Branch_profile.t;
      (** per-branch whole-run (executed, taken) *)
  detections : int;  (** raw hardware detections *)
  truncated : bool;
      (** the profiling run exhausted its fuel before halting; any
          metric derived from this profile reflects a partial run.  A
          [Logs] warning is emitted when this is set. *)
  timeline : Vp_telemetry.t;
      (** per-run interval time-series of the profiling run
          ([profile.instructions], [profile.branches], [profile.hdc],
          [profile.bbb_occupancy], [profile.bbb_candidates] plus
          [detect]/[record]/[rearm] events, all in retired-branch
          stamps).  {!Vp_telemetry.disabled} unless the configuration
          enables telemetry; owned by this profile, so results stay
          byte-identical under any [Engine] schedule. *)
}

type region_info = {
  phase : Vp_phase.Phase_log.phase;
  region : Vp_region.Region.t;
  stats : Vp_region.Identify.stats;
}

type rewrite = {
  source : profile;
  regions : region_info list;
  packages : Vp_package.Pkg.t list;
  emitted : Vp_package.Emit.result;
}

val profile : ?config:Config.t -> Vp_prog.Image.t -> profile

val rewrite_of_profile : ?config:Config.t -> profile -> rewrite

val rewrite : ?config:Config.t -> Vp_prog.Image.t -> rewrite
(** [profile] followed by [rewrite_of_profile]. *)

val rewritten_image : rewrite -> Vp_prog.Image.t
