(** The end-to-end Vacuum Packing pipeline.

    {!profile} runs the binary once under the Hot Spot Detector,
    collecting phase snapshots, the filtered phase log, and (in the
    same run) a traditional aggregate branch profile for comparison.
    {!rewrite_of_profile} then performs region identification, package
    construction, linking and emission; it is configuration-dependent
    but reuses the profile, so the four Figure 8 configurations share
    one profiling run per workload.

    When the configuration carries a {!Config.fault} plan, the plan is
    injected at the hardware→software boundary: resource faults scale
    the profiling fuel before the run, snapshot faults perturb the
    detector's output after it.  When {!Config.degrade} is on (the
    default), stage failures and verifier rejections never escape as
    exceptions — the pipeline walks the demotion ladder instead
    ({!Drop_package} → {!Drop_region} → {!Fallback_image}), and every
    step taken is recorded in {!rewrite.demotions} and the
    [degrade.*] observability counters.  Every emitted image is
    checked by {!Vp_package.Verify} before it is handed to anything
    that simulates it. *)

type profile = {
  image : Vp_prog.Image.t;
  outcome : Vp_exec.Emulator.outcome;  (** the profiled original run *)
  snapshots : Vp_hsd.Snapshot.t list;
  log : Vp_phase.Phase_log.t;
  aggregate : Vp_exec.Branch_profile.t;
      (** per-branch whole-run (executed, taken) *)
  detections : int;  (** raw hardware detections *)
  truncated : bool;
      (** the profiling run exhausted its fuel before halting; any
          metric derived from this profile reflects a partial run.  A
          [Logs] warning is emitted, a structured warning is appended
          to {!profile.warnings}, and the [profile.truncated] counter
          is bumped when this is set. *)
  timeline : Vp_telemetry.t;
      (** per-run interval time-series of the profiling run
          ([profile.instructions], [profile.branches], [profile.hdc],
          [profile.bbb_occupancy], [profile.bbb_candidates] plus
          [detect]/[record]/[rearm] events, all in retired-branch
          stamps).  {!Vp_telemetry.disabled} unless the configuration
          enables telemetry; owned by this profile, so results stay
          byte-identical under any [Engine] schedule. *)
  warnings : Error.t list;
      (** structured degradation warnings (truncation, an active fault
          plan) — the payloads [vpack stats] and {!Report} surface *)
}

type region_info = {
  phase : Vp_phase.Phase_log.phase;
  region : Vp_region.Region.t;
  stats : Vp_region.Identify.stats;
}

type rung = Drop_package | Drop_region | Fallback_image
(** The demotion ladder, smallest loss first: give up one package,
    give up a region's packages, give up rewriting entirely (the
    emitted image is the original, unmodified). *)

type demotion = { rung : rung; error : Error.t }

type rewrite = {
  source : profile;
  regions : region_info list;
  packages : Vp_package.Pkg.t list;  (** packages that survived screening *)
  emitted : Vp_package.Emit.result;
  demotions : demotion list;  (** ladder steps taken, in order *)
  verification : Vp_package.Verify.report;
      (** soundness report for [emitted.image]; always [ok] when
          degradation is on — rejected packages were demoted away *)
}

val rung_name : rung -> string
val pp_demotion : Format.formatter -> demotion -> unit

val profile : ?config:Config.t -> Vp_prog.Image.t -> profile

val profile_of_events :
  ?config:Config.t ->
  ?instructions:int ->
  Vp_prog.Image.t ->
  (int * bool) array ->
  profile
(** Build a profile from an {e external} retired-branch stream —
    (pc, taken) per retired conditional branch, e.g. a decoded
    [vp-retire-trace/1] file — without running the emulator.  The
    stream drives the detector exactly as a live run's [on_branch]
    would; fault plans, filtering and counters apply identically, so
    [rewrite_of_profile] packages an ingested profile the same way it
    packages a live one.  Events outside the image still reach the
    detector (hardware records whatever pc retires) but are excluded
    from the aggregate branch profile and reported in [warnings];
    negative pcs are dropped outright.  The synthesized outcome has
    [halted = true], checksum 0 and [instructions] (default: the
    event count), so consumers needing a real run — speedup, the
    differential oracle — must run the image themselves. *)

val with_snapshots :
  ?similarity:Vp_phase.Similarity.config ->
  profile ->
  Vp_hsd.Snapshot.t list ->
  profile
(** Replace a profile's snapshot stream and rebuild its phase log,
    keeping the run outcome and aggregate counts.  This is the single
    entry point for synthetic streams — the aggregate baseline's
    one-phase profile, the fleet aggregator's per-class consensus
    snapshots — so every downstream consumer sees a log built the same
    way the pipeline builds it. *)

type assembly = {
  survivors : Vp_package.Pkg.t list;  (** packages that survived screening *)
  assembled : Vp_package.Emit.result;
  checks : Vp_package.Verify.report;
  drops : demotion list;  (** ladder steps taken, in order *)
}

val assemble :
  ?config:Config.t -> original:Vp_prog.Image.t -> Vp_package.Pkg.t list -> assembly
(** The packaging back half as a standalone primitive: screen the
    given packages (structural validity plus any fault-plan resource
    budgets, measured against [original]), link, emit against the
    pristine [original] image, and verify, walking the demotion ladder
    exactly as {!rewrite_of_profile} does.  [Vacuum.Session] calls
    this every epoch to re-emit its package cache; the one-shot driver
    is now a composition of {!profile}, region/package construction,
    and this. *)

val rewrite_of_profile : ?config:Config.t -> profile -> rewrite

val rewrite : ?config:Config.t -> Vp_prog.Image.t -> rewrite
(** [profile] followed by [rewrite_of_profile]. *)

val rewritten_image : rewrite -> Vp_prog.Image.t
