module Emulator = Vp_exec.Emulator
module Detector = Vp_hsd.Detector
module Phase_log = Vp_phase.Phase_log
module Identify = Vp_region.Identify
module Build = Vp_package.Build
module Linking = Vp_package.Linking
module Emit = Vp_package.Emit
module Span = Vp_obs.Span
module Counter = Vp_obs.Counter

let src = Logs.Src.create "vacuum.driver" ~doc:"Vacuum pipeline driver"

module Log = (val Logs.src_log src : Logs.LOG)

type profile = {
  image : Vp_prog.Image.t;
  outcome : Emulator.outcome;
  snapshots : Vp_hsd.Snapshot.t list;
  log : Phase_log.t;
  aggregate : Vp_exec.Branch_profile.t;
  detections : int;
  truncated : bool;
  timeline : Vp_telemetry.t;
}

type region_info = {
  phase : Phase_log.phase;
  region : Vp_region.Region.t;
  stats : Identify.stats;
}

type rewrite = {
  source : profile;
  regions : region_info list;
  packages : Vp_package.Pkg.t list;
  emitted : Emit.result;
}

let profile ?(config = Config.default) image =
  let obs = Config.obs config in
  Span.record obs "profile"
    ~work:(fun p -> p.outcome.Emulator.instructions)
  @@ fun () ->
  let same = Vp_phase.Similarity.same ~config:(Config.similarity config) in
  let detector =
    Detector.create ~config:(Config.detector config)
      ~history_size:(Config.history_size config) ~same ()
  in
  (* Per-run timeline: created fresh for this profile run so traces
     are deterministic regardless of how Engine schedules runs across
     domains.  When telemetry is off this is the shared [disabled]
     value and the emulator receives no [on_retire] sink at all. *)
  let tl = Vp_telemetry.create (Config.telemetry config) in
  let on_retire, tail_flush =
    if not (Vp_telemetry.enabled tl) then (None, fun () -> ())
    else begin
      let s_instr = Vp_telemetry.Series.register tl "profile.instructions" in
      let s_branch = Vp_telemetry.Series.register tl "profile.branches" in
      let s_hdc = Vp_telemetry.Series.register tl "profile.hdc" in
      let s_occ = Vp_telemetry.Series.register tl "profile.bbb_occupancy" in
      let s_cand = Vp_telemetry.Series.register tl "profile.bbb_candidates" in
      Detector.set_hooks detector
        ~on_detect:(fun ~branches ~detections ->
          Vp_telemetry.Event.emit tl ~kind:"detect" ~at:branches
            ~value:detections)
        ~on_record:(fun ~branches ~id ->
          Vp_telemetry.Event.emit tl ~kind:"record" ~at:branches ~value:id)
        ~on_rearm:(fun ~branches ~rearms ->
          Vp_telemetry.Event.emit tl ~kind:"rearm" ~at:branches ~value:rearms);
      let interval = Vp_telemetry.interval_length tl in
      let countdown = ref interval in
      let last_branches = ref 0 in
      let flush n =
        Vp_telemetry.Series.push tl s_instr n;
        let b = Detector.branches_seen detector in
        Vp_telemetry.Series.push tl s_branch (b - !last_branches);
        last_branches := b;
        Vp_telemetry.Series.push tl s_hdc (Detector.hdc_value detector);
        Vp_telemetry.Series.push tl s_occ (Detector.bbb_occupancy detector);
        Vp_telemetry.Series.push tl s_cand (Detector.bbb_candidates detector)
      in
      ( Some
          (fun ~pc:_ ~taken:_ ~next_pc:_ ~mem_addr:_ ->
            decr countdown;
            if !countdown = 0 then begin
              countdown := interval;
              flush interval
            end),
        fun () ->
          let tail = interval - !countdown in
          if tail > 0 then flush tail )
    end
  in
  (* pc-indexed counters sized by the image: the per-branch profiling
     cost is two array bumps and the detector call — no hashing, no
     tuple allocation.  The same arrays back the aggregate-profile
     consumers (fig9, the aggregate baseline) via
     {!Vp_exec.Branch_profile}. *)
  let n = Vp_prog.Image.size image in
  let executed = Array.make n 0 in
  let takens = Array.make n 0 in
  let on_branch ~pc ~taken =
    Detector.on_branch detector ~pc ~taken;
    executed.(pc) <- executed.(pc) + 1;
    if taken then takens.(pc) <- takens.(pc) + 1
  in
  let outcome =
    Emulator.run ~fuel:(Config.fuel config)
      ~mem_words:(Config.mem_words config) ~on_branch ?on_retire image
  in
  tail_flush ();
  let aggregate = Vp_exec.Branch_profile.of_counts ~executed ~takens in
  let snapshots = Detector.snapshots detector in
  Counter.bump obs "detector.detections" (Detector.detections detector);
  Counter.bump obs "detector.rearms" (Detector.rearms detector);
  Counter.bump obs "detector.recordings" (Detector.recordings detector);
  Counter.bump obs "detector.history_suppressed"
    (Detector.history_suppressed detector);
  let log, filter_stats =
    Phase_log.build_with_stats ~similarity:(Config.similarity config) snapshots
  in
  Counter.bump obs "phases.merged" filter_stats.Phase_log.merged;
  Counter.bump obs "phases.unique" filter_stats.Phase_log.new_classes;
  Counter.bump obs "phases.rejected_missing"
    filter_stats.Phase_log.rejected_missing;
  Counter.bump obs "phases.rejected_bias_flips"
    filter_stats.Phase_log.rejected_bias_flips;
  let truncated = not outcome.Emulator.halted in
  if truncated then
    Log.warn (fun m ->
        m
          "profile truncated: fuel (%d) exhausted after %d instructions; \
           coverage and speedup would reflect a partial run"
          (Config.fuel config) outcome.Emulator.instructions);
  {
    image;
    outcome;
    snapshots;
    log;
    aggregate;
    detections = Detector.detections detector;
    truncated;
    timeline = tl;
  }

let rewrite_of_profile ?(config = Config.default) source =
  let obs = Config.obs config in
  let regions =
    Span.record obs "regions" ~work:(List.length) @@ fun () ->
    List.map
      (fun (phase : Phase_log.phase) ->
        let region, stats =
          Identify.identify_with_stats ~config:(Config.identify config)
            source.image
            phase.Phase_log.representative
        in
        { phase; region; stats })
      (Phase_log.phases source.log)
  in
  List.iter
    (fun info ->
      Counter.bump obs "identify.hot_blocks" info.stats.Identify.hot_blocks;
      Counter.bump obs "identify.inference_rounds"
        info.stats.Identify.inference_rounds;
      Counter.bump obs "identify.grown_blocks" info.stats.Identify.grown_blocks)
    regions;
  let packages =
    Span.record obs "packages" ~work:(List.length) @@ fun () ->
    List.concat_map
      (fun info ->
        Build.build info.region
          ~prefix:(Printf.sprintf "pkg$p%d" info.phase.Phase_log.id))
      regions
  in
  List.iter
    (fun (p : Vp_package.Pkg.t) ->
      Counter.bump obs "build.blocks" (List.length p.Vp_package.Pkg.blocks);
      Counter.bump obs "build.exit_blocks"
        (List.length
           (List.filter
              (fun (b : Vp_package.Pkg.block) -> b.Vp_package.Pkg.is_exit)
              p.Vp_package.Pkg.blocks)))
    packages;
  let groups, link_stats =
    Span.record obs "link"
      ~work:(fun (_, s) -> s.Linking.orderings_ranked)
    @@ fun () ->
    Linking.group_packages_with_stats ~linking:(Config.linking config) packages
  in
  Counter.bump obs "link.groups" link_stats.Linking.groups;
  Counter.bump obs "link.linked_groups" link_stats.Linking.linked_groups;
  Counter.bump obs "link.orderings_ranked" link_stats.Linking.orderings_ranked;
  Counter.bump obs "link.greedy_fallbacks" link_stats.Linking.greedy_fallbacks;
  Counter.bump obs "link.links" link_stats.Linking.links_resolved;
  let transform ~protected pkg =
    Vp_opt.Opt.transform ~config:(Config.opt config) ~protected pkg
  in
  let emitted =
    Span.record obs "emit"
      ~work:(fun e -> e.Emit.package_instructions)
    @@ fun () -> Emit.of_groups ~transform source.image groups
  in
  { source; regions; packages; emitted }

let rewrite ?config image =
  rewrite_of_profile ?config (profile ?config image)

let rewritten_image r = r.emitted.Emit.image
