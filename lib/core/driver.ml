module Emulator = Vp_exec.Emulator
module Detector = Vp_hsd.Detector
module Phase_log = Vp_phase.Phase_log
module Identify = Vp_region.Identify
module Build = Vp_package.Build
module Emit = Vp_package.Emit

let src = Logs.Src.create "vacuum.driver" ~doc:"Vacuum pipeline driver"

module Log = (val Logs.src_log src : Logs.LOG)

type profile = {
  image : Vp_prog.Image.t;
  outcome : Emulator.outcome;
  snapshots : Vp_hsd.Snapshot.t list;
  log : Phase_log.t;
  aggregate : (int, int * int) Hashtbl.t;
  detections : int;
  truncated : bool;
}

type region_info = {
  phase : Phase_log.phase;
  region : Vp_region.Region.t;
  stats : Identify.stats;
}

type rewrite = {
  source : profile;
  regions : region_info list;
  packages : Vp_package.Pkg.t list;
  emitted : Emit.result;
}

let profile ?(config = Config.default) image =
  let same = Vp_phase.Similarity.same ~config:config.Config.similarity in
  let detector =
    Detector.create ~config:config.Config.detector
      ~history_size:config.Config.history_size ~same ()
  in
  (* pc-indexed counters sized by the image: the per-branch profiling
     cost is two array bumps and the detector call — no hashing, no
     tuple allocation.  The classic table shape is rebuilt once below
     for the aggregate-profile consumers (fig9, the aggregate
     baseline). *)
  let n = Vp_prog.Image.size image in
  let executed = Array.make n 0 in
  let takens = Array.make n 0 in
  let on_branch ~pc ~taken =
    Detector.on_branch detector ~pc ~taken;
    executed.(pc) <- executed.(pc) + 1;
    if taken then takens.(pc) <- takens.(pc) + 1
  in
  let outcome =
    Emulator.run ~fuel:config.Config.fuel ~mem_words:config.Config.mem_words
      ~on_branch image
  in
  let aggregate = Emulator.branch_counts_to_table executed takens in
  let snapshots = Detector.snapshots detector in
  let truncated = not outcome.Emulator.halted in
  if truncated then
    Log.warn (fun m ->
        m
          "profile truncated: fuel (%d) exhausted after %d instructions; \
           coverage and speedup would reflect a partial run"
          config.Config.fuel outcome.Emulator.instructions);
  {
    image;
    outcome;
    snapshots;
    log = Phase_log.build ~similarity:config.Config.similarity snapshots;
    aggregate;
    detections = Detector.detections detector;
    truncated;
  }

let rewrite_of_profile ?(config = Config.default) source =
  let regions =
    List.map
      (fun (phase : Phase_log.phase) ->
        let region, stats =
          Identify.identify_with_stats ~config:config.Config.identify source.image
            phase.Phase_log.representative
        in
        { phase; region; stats })
      (Phase_log.phases source.log)
  in
  let packages =
    List.concat_map
      (fun info ->
        Build.build info.region
          ~prefix:(Printf.sprintf "pkg$p%d" info.phase.Phase_log.id))
      regions
  in
  let transform ~protected pkg =
    Vp_opt.Opt.transform ~config:config.Config.opt ~protected pkg
  in
  let emitted =
    Emit.emit ~linking:config.Config.linking ~transform source.image packages
  in
  { source; regions; packages; emitted }

let rewrite ?config image =
  rewrite_of_profile ?config (profile ?config image)

let rewritten_image r = r.emitted.Emit.image
