module Emulator = Vp_exec.Emulator
module Detector = Vp_hsd.Detector
module Phase_log = Vp_phase.Phase_log
module Identify = Vp_region.Identify
module Build = Vp_package.Build
module Linking = Vp_package.Linking
module Emit = Vp_package.Emit
module Pkg = Vp_package.Pkg
module Verify = Vp_package.Verify
module Span = Vp_obs.Span
module Counter = Vp_obs.Counter

let src = Logs.Src.create "vacuum.driver" ~doc:"Vacuum pipeline driver"

module Log = (val Logs.src_log src : Logs.LOG)

type profile = {
  image : Vp_prog.Image.t;
  outcome : Emulator.outcome;
  snapshots : Vp_hsd.Snapshot.t list;
  log : Phase_log.t;
  aggregate : Vp_exec.Branch_profile.t;
  detections : int;
  truncated : bool;
  timeline : Vp_telemetry.t;
  warnings : Error.t list;
}

type region_info = {
  phase : Phase_log.phase;
  region : Vp_region.Region.t;
  stats : Identify.stats;
}

type rung = Drop_package | Drop_region | Fallback_image

type demotion = { rung : rung; error : Error.t }

type rewrite = {
  source : profile;
  regions : region_info list;
  packages : Vp_package.Pkg.t list;
  emitted : Emit.result;
  demotions : demotion list;
  verification : Verify.report;
}

let rung_name = function
  | Drop_package -> "drop-package"
  | Drop_region -> "drop-region"
  | Fallback_image -> "fallback-image"

let pp_demotion ppf d =
  Format.fprintf ppf "%s: %a" (rung_name d.rung) Error.pp d.error

(* The software back half of profiling, shared by the emulator-driven
   [profile] and the external-trace [profile_of_events]: fault
   injection at the hardware→software boundary, detector and filter
   accounting, phase-log construction, truncation warnings. *)
let finish_profile ~config ~image ~fuel ~outcome ~detector ~executed ~takens
    ~timeline ~extra_warnings =
  let obs = Config.obs config in
  Vp_metrics.Histogram.observe (Config.metrics config)
    "driver.profile.instructions" outcome.Emulator.instructions;
  let aggregate = Vp_exec.Branch_profile.of_counts ~executed ~takens in
  let plan = Config.fault config in
  let snapshots = Detector.snapshots detector in
  let snapshots, fault_warnings =
    match plan with
    | Some plan when not (Vp_fault.Plan.is_clean plan) ->
      let counter_max = Config.counter_max config in
      let faulted = Vp_fault.Inject.snapshots ~plan ~counter_max snapshots in
      Counter.bump obs "fault.runs" 1;
      ( faulted,
        [
          Error.v ~stage:"fault" "plan %s active (%d -> %d snapshots)"
            plan.Vp_fault.Plan.name (List.length snapshots)
            (List.length faulted);
        ] )
    | _ -> (snapshots, [])
  in
  Counter.bump obs "detector.detections" (Detector.detections detector);
  Counter.bump obs "detector.rearms" (Detector.rearms detector);
  Counter.bump obs "detector.recordings" (Detector.recordings detector);
  Counter.bump obs "detector.history_suppressed"
    (Detector.history_suppressed detector);
  let log, filter_stats =
    Phase_log.build_with_stats ~similarity:(Config.similarity config) snapshots
  in
  Counter.bump obs "phases.merged" filter_stats.Phase_log.merged;
  Counter.bump obs "phases.unique" filter_stats.Phase_log.new_classes;
  Counter.bump obs "phases.rejected_missing"
    filter_stats.Phase_log.rejected_missing;
  Counter.bump obs "phases.rejected_bias_flips"
    filter_stats.Phase_log.rejected_bias_flips;
  let truncated = not outcome.Emulator.halted in
  let truncation_warnings =
    if truncated then begin
      Counter.bump obs "profile.truncated" 1;
      Log.warn (fun m ->
          m
            "profile truncated: fuel (%d) exhausted after %d instructions; \
             coverage and speedup would reflect a partial run"
            fuel outcome.Emulator.instructions);
      [
        Error.v ~stage:"profile"
          "truncated: fuel (%d) exhausted after %d instructions" fuel
          outcome.Emulator.instructions;
      ]
    end
    else []
  in
  {
    image;
    outcome;
    snapshots;
    log;
    aggregate;
    detections = Detector.detections detector;
    truncated;
    timeline;
    warnings = truncation_warnings @ fault_warnings @ extra_warnings;
  }

let profile ?(config = Config.default) image =
  let obs = Config.obs config in
  Span.record obs "profile"
    ~work:(fun p -> p.outcome.Emulator.instructions)
  @@ fun () ->
  let same = Vp_phase.Similarity.same ~config:(Config.similarity config) in
  let detector =
    Detector.create ~config:(Config.detector config)
      ~history_size:(Config.history_size config) ~same ()
  in
  (* Per-run timeline: created fresh for this profile run so traces
     are deterministic regardless of how Engine schedules runs across
     domains.  When telemetry is off this is the shared [disabled]
     value and the emulator receives no [on_retire] sink at all. *)
  let tl = Vp_telemetry.create (Config.telemetry config) in
  let on_retire, tail_flush =
    if not (Vp_telemetry.enabled tl) then (None, fun () -> ())
    else begin
      let s_instr = Vp_telemetry.Series.register tl "profile.instructions" in
      let s_branch = Vp_telemetry.Series.register tl "profile.branches" in
      let s_hdc = Vp_telemetry.Series.register tl "profile.hdc" in
      let s_occ = Vp_telemetry.Series.register tl "profile.bbb_occupancy" in
      let s_cand = Vp_telemetry.Series.register tl "profile.bbb_candidates" in
      Detector.set_hooks detector
        ~on_detect:(fun ~branches ~detections ->
          Vp_telemetry.Event.emit tl ~kind:"detect" ~at:branches
            ~value:detections)
        ~on_record:(fun ~branches ~id ->
          Vp_telemetry.Event.emit tl ~kind:"record" ~at:branches ~value:id)
        ~on_rearm:(fun ~branches ~rearms ->
          Vp_telemetry.Event.emit tl ~kind:"rearm" ~at:branches ~value:rearms);
      let interval = Vp_telemetry.interval_length tl in
      let countdown = ref interval in
      let last_branches = ref 0 in
      let flush n =
        Vp_telemetry.Series.push tl s_instr n;
        let b = Detector.branches_seen detector in
        Vp_telemetry.Series.push tl s_branch (b - !last_branches);
        last_branches := b;
        Vp_telemetry.Series.push tl s_hdc (Detector.hdc_value detector);
        Vp_telemetry.Series.push tl s_occ (Detector.bbb_occupancy detector);
        Vp_telemetry.Series.push tl s_cand (Detector.bbb_candidates detector)
      in
      ( Some
          (fun ~pc:_ ~taken:_ ~next_pc:_ ~mem_addr:_ ->
            decr countdown;
            if !countdown = 0 then begin
              countdown := interval;
              flush interval
            end),
        fun () ->
          let tail = interval - !countdown in
          if tail > 0 then flush tail )
    end
  in
  (* pc-indexed counters sized by the image: the per-branch profiling
     cost is two array bumps and the detector call — no hashing, no
     tuple allocation.  The same arrays back the aggregate-profile
     consumers (fig9, the aggregate baseline) via
     {!Vp_exec.Branch_profile}. *)
  let n = Vp_prog.Image.size image in
  let executed = Array.make n 0 in
  let takens = Array.make n 0 in
  let on_branch ~pc ~taken =
    Detector.on_branch detector ~pc ~taken;
    executed.(pc) <- executed.(pc) + 1;
    if taken then takens.(pc) <- takens.(pc) + 1
  in
  (* Resource faults scale the fuel budget before the run; snapshot
     faults perturb the detector's output after it.  Both happen at
     the hardware→software boundary — the emulator and detector
     internals never see the plan, which is why the retire path stays
     closure-free when no plan is configured. *)
  let plan = Config.fault config in
  let fuel =
    match plan with
    | None -> Config.fuel config
    | Some plan -> Vp_fault.Inject.fuel ~plan (Config.fuel config)
  in
  let outcome =
    Emulator.run_backend ~backend:(Config.backend config) ~fuel
      ~mem_words:(Config.mem_words config) ~on_branch ?on_retire image
  in
  tail_flush ();
  finish_profile ~config ~image ~fuel ~outcome ~detector ~executed ~takens
    ~timeline:tl ~extra_warnings:[]

(* External-trace ingestion: the same software pipeline fed by a
   recorded (pc, taken) stream — a [vp-retire-trace/1] file, a PMU
   shim — instead of a live emulator run.  The detector replays the
   stream exactly as [on_branch] would have seen it; events whose pc
   falls outside the image (a trace captured against a different
   build, or hostile input) still reach the detector — real hardware
   records whatever pc retires — but are excluded from the pc-indexed
   aggregate arrays and surfaced as a warning.  The outcome is
   synthesized ([halted = true], no checksum), so speedup numbers that
   need a real run are out of scope; packaging, verification and
   rewriting are not. *)
let profile_of_events ?(config = Config.default) ?(instructions = 0) image
    events =
  let obs = Config.obs config in
  Span.record obs "ingest"
    ~work:(fun p -> p.outcome.Emulator.cond_branches)
  @@ fun () ->
  let same = Vp_phase.Similarity.same ~config:(Config.similarity config) in
  let detector =
    Detector.create ~config:(Config.detector config)
      ~history_size:(Config.history_size config) ~same ()
  in
  let tl = Vp_telemetry.create (Config.telemetry config) in
  let n = Vp_prog.Image.size image in
  let executed = Array.make n 0 in
  let takens = Array.make n 0 in
  let alien = ref 0 in
  Array.iter
    (fun (pc, taken) ->
      if pc < 0 then incr alien
      else begin
        Detector.on_branch detector ~pc ~taken;
        if pc < n then begin
          executed.(pc) <- executed.(pc) + 1;
          if taken then takens.(pc) <- takens.(pc) + 1
        end
        else incr alien
      end)
    events;
  let cond_branches = Array.length events in
  let instructions = if instructions > 0 then instructions else cond_branches in
  let outcome =
    {
      Emulator.instructions;
      package_instructions = 0;
      cond_branches;
      halted = true;
      checksum = 0;
      result = 0;
      final_pc = -1;
    }
  in
  let extra_warnings =
    if !alien = 0 then []
    else
      [
        Error.v ~stage:"ingest"
          "%d trace event(s) fall outside the image (size %d)" !alien n;
      ]
  in
  finish_profile ~config ~image ~fuel:(Config.fuel config) ~outcome ~detector
    ~executed ~takens ~timeline:tl ~extra_warnings

(* The demotion ladder.  Whenever a stage fails — a region that cannot
   be identified or built, a package that fails structural validation
   or a resource budget, an emission error, a verifier rejection — the
   pipeline gives up the smallest thing that makes the failure go
   away: first the offending package, then the whole region, and as a
   last resort every package, leaving the image unmodified.  A
   demoted result is always still a sound result. *)

let make_demoter ~obs ~metrics =
  let demotions = ref [] in
  let demote rung error =
    demotions := { rung; error } :: !demotions;
    Counter.bump obs ("degrade." ^ rung_name rung) 1;
    Vp_metrics.Counter.bump metrics ("demote." ^ rung_name rung) 1;
    Vp_metrics.Flight.note metrics ~kind:"demote" ~label:(rung_name rung);
    if rung = Fallback_image then
      Vp_metrics.Flight.dump metrics ~obs ~reason:"fallback-image"
        ~label:"driver" ();
    Log.warn (fun m -> m "%a" pp_demotion { rung; error })
  in
  (demotions, demote)

(* In degraded mode any stage failure becomes a payload; typed
   pipeline errors keep their context, anything else is wrapped. *)
let wrap_stage ~degrade stage f =
  try Ok (f ()) with
  | Error.Error e -> Result.Error e
  | exn when degrade ->
    Result.Error (Error.v ~stage "%s" (Printexc.to_string exn))

(* The packaging back half — screening, linking, emission,
   verification, and the demotion ladder over all of them — factored
   out of [rewrite_of_profile] so the session loop can re-emit its
   package cache against the pristine original image each epoch.
   [demote] records rung decisions into the caller's ledger;
   [on_screened] fires between screening and emission (the one-shot
   driver injects its per-region bookkeeping there). *)
let assemble_parts ~config ~demote ~on_screened ~original packages =
  let obs = Config.obs config in
  let degrade = Config.degrade config in
  let plan = Config.fault config in
  (* Package screening: structural validity plus the plan's resource
     budgets.  Per-package overruns drop that package; the expansion
     budget drops packages largest-first until the total fits. *)
  let screen pkgs =
    let pkgs =
      List.filter
        (fun (p : Pkg.t) ->
          match Pkg.validate p with
          | Ok () -> (
            match plan with
            | Some
                {
                  Vp_fault.Plan.resource =
                    { max_package_instrs = Some budget; _ };
                  _;
                }
              when Pkg.size p > budget ->
              let e =
                Error.v ~stage:"build" ~label:p.Pkg.id
                  "package size %d exceeds budget %d" (Pkg.size p) budget
              in
              if degrade then begin
                demote Drop_package e;
                false
              end
              else raise (Error.Error e)
            | _ -> true)
          | Result.Error msg ->
            let e =
              Error.v ~stage:"build" ~label:p.Pkg.id "invalid package: %s" msg
            in
            if degrade then begin
              demote Drop_package e;
              false
            end
            else raise (Error.Error e))
        pkgs
    in
    match plan with
    | Some
        { Vp_fault.Plan.resource = { max_expansion_pct = Some pct; _ }; _ } ->
      let budget =
        int_of_float
          (pct /. 100.
          *. float_of_int (Vp_prog.Image.static_instruction_count original))
      in
      let total ps = List.fold_left (fun a p -> a + Pkg.size p) 0 ps in
      let rec trim ps =
        if total ps <= budget then ps
        else
          match ps with
          | [] -> []
          | _ ->
            let largest =
              List.fold_left
                (fun acc p -> if Pkg.size p > Pkg.size acc then p else acc)
                (List.hd ps) ps
            in
            let e =
              Error.v ~stage:"build" ~label:largest.Pkg.id
                "expansion budget %.1f%% exhausted (total %d > %d)" pct
                (total ps) budget
            in
            if degrade then begin
              demote Drop_package e;
              trim (List.filter (fun p -> p != largest) ps)
            end
            else raise (Error.Error e)
      in
      (* A budget with no room at all is not a sequence of package
         drops, it is the bottom rung: keep the image unmodified. *)
      if budget <= 0 && pkgs <> [] then
        let e =
          Error.v ~stage:"build"
            "expansion budget %.1f%% leaves no room for packages" pct
        in
        if degrade then begin
          demote Fallback_image e;
          []
        end
        else raise (Error.Error e)
      else trim pkgs
    | _ -> pkgs
  in
  let screened = screen packages in
  on_screened screened;
  let transform ~protected pkg =
    Vp_opt.Opt.transform ~config:(Config.opt config) ~protected pkg
  in
  let link_and_emit pkgs =
    let groups, link_stats =
      Span.record obs "link"
        ~work:(fun (_, s) -> s.Linking.orderings_ranked)
      @@ fun () ->
      Linking.group_packages_with_stats ~linking:(Config.linking config) pkgs
    in
    Counter.bump obs "link.groups" link_stats.Linking.groups;
    Counter.bump obs "link.linked_groups" link_stats.Linking.linked_groups;
    Counter.bump obs "link.orderings_ranked"
      link_stats.Linking.orderings_ranked;
    Counter.bump obs "link.greedy_fallbacks"
      link_stats.Linking.greedy_fallbacks;
    Counter.bump obs "link.links" link_stats.Linking.links_resolved;
    Emit.of_groups ~transform original groups
  in
  (* The package id is a prefix of every label it emits, so a label-
     carrying emission error can be walked back to its package. *)
  let owner_of (pkgs : Pkg.t list) (e : Error.t) =
    match e.Error.label with
    | None -> None
    | Some l ->
      List.find_opt
        (fun (p : Pkg.t) ->
          p.Pkg.id = l || String.starts_with ~prefix:(p.Pkg.id ^ "$") l)
        pkgs
  in
  let verify emitted = Verify.check ~original emitted in
  let fallback e =
    demote Fallback_image e;
    let emitted = link_and_emit [] in
    (emitted, verify emitted)
  in
  let rec emit_verified pkgs budget =
    let attempt =
      if degrade then wrap_stage ~degrade "emit" (fun () -> link_and_emit pkgs)
      else Ok (link_and_emit pkgs)
    in
    match attempt with
    | Result.Error e when budget <= 0 -> fallback e
    | Result.Error e -> (
      match owner_of pkgs e with
      | Some p ->
        demote Drop_package e;
        emit_verified (List.filter (fun q -> q != p) pkgs) (budget - 1)
      | None -> fallback e)
    | Ok emitted ->
      let report =
        Span.record obs "verify"
          ~work:(fun (r : Verify.report) -> r.Verify.checked_instructions)
        @@ fun () -> verify emitted
      in
      if Verify.ok report then (emitted, report)
      else begin
        Counter.bump obs "verify.rejections" 1;
        let metrics = Config.metrics config in
        Vp_metrics.Counter.bump metrics "verify.rejections" 1;
        Vp_metrics.Flight.note metrics ~kind:"verify" ~label:"rejection";
        Vp_metrics.Flight.dump metrics ~obs ~reason:"verifier-rejection"
          ~label:"driver" ();
        let first = List.hd report.Verify.violations in
        let e =
          Error.v ~stage:"verify" ?label:first.Verify.label
            ?pc:first.Verify.addr "%d violation(s): %s"
            (List.length report.Verify.violations)
            first.Verify.what
        in
        if not degrade then raise (Error.Error e)
        else begin
          let bad =
            List.filter_map (fun v -> v.Verify.pkg) report.Verify.violations
            |> List.sort_uniq compare
          in
          let offending =
            List.filter (fun (p : Pkg.t) -> List.mem p.Pkg.id bad) pkgs
          in
          if offending = [] || budget <= 0 then fallback e
          else begin
            List.iter
              (fun (p : Pkg.t) ->
                demote Drop_package
                  (Error.v ~stage:"verify" ~label:p.Pkg.id
                     "package rejected by the soundness verifier"))
              offending;
            emit_verified
              (List.filter (fun p -> not (List.memq p offending)) pkgs)
              (budget - 1)
          end
        end
      end
  in
  let emitted, verification =
    Span.record obs "emit"
      ~work:(fun ((e : Emit.result), _) -> e.Emit.package_instructions)
    @@ fun () -> emit_verified screened (List.length screened + 1)
  in
  (screened, emitted, verification)

type assembly = {
  survivors : Pkg.t list;
  assembled : Emit.result;
  checks : Verify.report;
  drops : demotion list;
}

let assemble ?(config = Config.default) ~original packages =
  let demotions, demote =
    make_demoter ~obs:(Config.obs config) ~metrics:(Config.metrics config)
  in
  let survivors, assembled, checks =
    assemble_parts ~config ~demote ~on_screened:ignore ~original packages
  in
  { survivors; assembled; checks; drops = List.rev !demotions }

let rewrite_of_profile ?(config = Config.default) source =
  let obs = Config.obs config in
  let degrade = Config.degrade config in
  let demotions, demote =
    make_demoter ~obs ~metrics:(Config.metrics config)
  in
  let wrap stage f = wrap_stage ~degrade stage f in
  let regions =
    Span.record obs "regions" ~work:(List.length) @@ fun () ->
    List.filter_map
      (fun (phase : Phase_log.phase) ->
        match
          wrap "identify" (fun () ->
              Identify.identify_with_stats ~config:(Config.identify config)
                source.image
                phase.Phase_log.representative)
        with
        | Ok (region, stats) -> Some { phase; region; stats }
        | Result.Error e when degrade ->
          demote Drop_region e;
          None
        | Result.Error e -> raise (Error.Error e))
      (Phase_log.phases source.log)
  in
  List.iter
    (fun info ->
      Counter.bump obs "identify.hot_blocks" info.stats.Identify.hot_blocks;
      Counter.bump obs "identify.inference_rounds"
        info.stats.Identify.inference_rounds;
      Counter.bump obs "identify.grown_blocks" info.stats.Identify.grown_blocks)
    regions;
  let packages =
    Span.record obs "packages" ~work:(List.length) @@ fun () ->
    List.concat_map
      (fun info ->
        match
          wrap "build" (fun () ->
              Build.build info.region
                ~prefix:(Printf.sprintf "pkg$p%d" info.phase.Phase_log.id))
        with
        | Ok pkgs -> pkgs
        | Result.Error e when degrade ->
          demote Drop_region e;
          []
        | Result.Error e -> raise (Error.Error e))
      regions
  in
  List.iter
    (fun (p : Pkg.t) ->
      Counter.bump obs "build.blocks" (List.length p.Pkg.blocks);
      Counter.bump obs "build.exit_blocks"
        (List.length
           (List.filter (fun (b : Pkg.block) -> b.Pkg.is_exit) p.Pkg.blocks)))
    packages;
  let on_screened screened =
    (* A region whose every package was screened away is itself gone —
       unless screening already fell back wholesale, which subsumes the
       per-region accounting. *)
    if not (List.exists (fun d -> d.rung = Fallback_image) !demotions) then
      List.iter
        (fun info ->
          let rid = info.phase.Phase_log.id in
          let had =
            List.exists (fun (p : Pkg.t) -> p.Pkg.region_id = rid) packages
          and kept =
            List.exists (fun (p : Pkg.t) -> p.Pkg.region_id = rid) screened
          in
          if had && not kept then
            demote Drop_region
              (Error.v ~stage:"build" "region %d lost all its packages" rid))
        regions
  in
  let screened, emitted, verification =
    assemble_parts ~config ~demote ~on_screened ~original:source.image packages
  in
  {
    source;
    regions;
    packages = screened;
    emitted;
    demotions = List.rev !demotions;
    verification;
  }

let with_snapshots ?similarity p snapshots =
  { p with snapshots; log = Phase_log.build ?similarity snapshots }

let rewrite ?config image =
  rewrite_of_profile ?config (profile ?config image)

let rewritten_image r = r.emitted.Emit.image
