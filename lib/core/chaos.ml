module Emulator = Vp_exec.Emulator
module Plan = Vp_fault.Plan
module Rng = Vp_util.Rng
module Tabular = Vp_util.Tabular

type cell = {
  plan : Plan.t;
  seed_index : int;
  snapshots : int;
  packages : int;
  coverage_pct : float;
  expansion_pct : float;
  truncated : bool;
  drop_package : int;
  drop_region : int;
  fallback_image : int;
  verified : bool;
  equivalent : bool;
}

type result = {
  baseline : Emulator.outcome;
  cells : cell list;
}

let ok r = List.for_all (fun c -> c.equivalent && c.verified) r.cells

let run_cell ?(config = Config.default) ~baseline ~plan image =
  let cell_config =
    config |> Config.with_fault plan |> Config.with_degrade true
  in
  let r = Driver.rewrite ~config:cell_config image in
  (* The oracle runs the rewritten image under the CLEAN fuel budget:
     a fuel-starvation plan truncates the profile, never the check.
     Compare against the separately computed clean baseline — the
     profile outcome is the wrong reference once fuel is faulted. *)
  let outcome =
    Emulator.run_backend ~backend:(Config.backend config)
      ~fuel:(Config.fuel config) ~mem_words:(Config.mem_words config)
      (Driver.rewritten_image r)
  in
  let count rung =
    List.length
      (List.filter (fun (d : Driver.demotion) -> d.Driver.rung = rung)
         r.Driver.demotions)
  in
  {
    plan;
    seed_index = plan.Plan.seed;
    snapshots = List.length r.Driver.source.Driver.snapshots;
    packages = List.length r.Driver.packages;
    coverage_pct =
      Vp_util.Stats.pct outcome.Emulator.package_instructions
        outcome.Emulator.instructions;
    expansion_pct = (Expansion.measure r).Expansion.increase_pct;
    truncated = r.Driver.source.Driver.truncated;
    drop_package = count Driver.Drop_package;
    drop_region = count Driver.Drop_region;
    fallback_image = count Driver.Fallback_image;
    verified = Vp_package.Verify.ok r.Driver.verification;
    equivalent =
      outcome.Emulator.halted
      && outcome.Emulator.checksum = baseline.Emulator.checksum
      && outcome.Emulator.result = baseline.Emulator.result;
  }

let matrix ?(config = Config.default) ?(plans = Plan.presets) ?(seeds = 5)
    ?(seed = 0) ?(jobs = 1) image =
  let baseline =
    Emulator.run_backend ~backend:(Config.backend config)
      ~fuel:(Config.fuel config) ~mem_words:(Config.mem_words config) image
  in
  let root = Rng.create ~seed in
  let tasks =
    List.concat
      (List.mapi
         (fun pi plan ->
           let plan_stream = Rng.stream root pi in
           List.init seeds (fun si ->
               let plan =
                 Plan.with_seed plan (Rng.stream_seed plan_stream si)
               in
               (plan, si)))
         plans)
  in
  let cells =
    Vp_util.Pool.map ~jobs
      (fun (plan, si) ->
        let c = run_cell ~config ~baseline ~plan image in
        { c with seed_index = si })
      tasks
  in
  { baseline; cells }

let table r =
  let t =
    Tabular.create
      ~header:
        [
          ("plan", Tabular.Left);
          ("seed", Tabular.Right);
          ("snaps", Tabular.Right);
          ("pkgs", Tabular.Right);
          ("cover%", Tabular.Right);
          ("expand%", Tabular.Right);
          ("drops p/r/f", Tabular.Right);
          ("trunc", Tabular.Right);
          ("verified", Tabular.Right);
          ("oracle", Tabular.Right);
        ]
  in
  List.iter
    (fun c ->
      Tabular.add_row t
        [
          c.plan.Plan.name;
          string_of_int c.seed_index;
          string_of_int c.snapshots;
          string_of_int c.packages;
          Tabular.cell_pct c.coverage_pct;
          Tabular.cell_pct c.expansion_pct;
          Printf.sprintf "%d/%d/%d" c.drop_package c.drop_region
            c.fallback_image;
          (if c.truncated then "yes" else "-");
          (if c.verified then "ok" else "REJECTED");
          (if c.equivalent then "ok" else "FAILED");
        ])
    r.cells;
  Tabular.render t
