(** Fleet-scale profile aggregation.

    A deployed Vacuum Packing system does not profile on the build
    machine: thousands of user machines each run the binary under
    their own Hot Spot Detector and ship the resulting snapshot stream
    (as [vp-profile-wire/1], {!Vp_aggregate.Wire}) back to an
    aggregation service, which merges them into one consensus profile
    per binary and feeds that to the packaging pipeline.  This module
    is that service's core: it emulates the fleet (each machine is the
    workload's profiling run seen through a mild per-machine fault
    plan), classifies every incoming snapshot against the base run's
    phase log, aggregates per class on a sharded {!Vp_util.Pool}, and
    turns the per-class aggregates back into a {!Driver.profile} the
    existing {!Driver.rewrite_of_profile} path consumes.

    {b Determinism.}  Machine noise draws from {!Vp_util.Rng.stream}
    keyed by run index, and {!Vp_aggregate.Shard} merges in fixed
    order with an associative profile algebra, so the aggregate — and
    its {!t.digest} — is byte-identical for every [shards] and [jobs]
    setting. *)

type t = {
  runs : int;  (** run streams ingested *)
  classes : (int * Vp_aggregate.Profile.t) list;
      (** per-phase-class consensus profiles, sorted by class id (the
          ids of the base profile's phase log) *)
  stats : Vp_aggregate.Shard.stats;
  digest : int;
      (** order-fixed digest of the whole aggregate; equal digests
          mean byte-identical aggregates, whatever sharding produced
          them *)
}

val default_noise : Vp_fault.Plan.t
(** The per-machine perturbation plan [fleet-noise]: a few percent of
    snapshots dropped, duplicated or reordered, a few percent of
    counters saturated or zeroed. *)

val emulate_runs :
  ?config:Config.t ->
  ?noise:Vp_fault.Plan.t ->
  ?seed:int ->
  runs:int ->
  Driver.profile ->
  Vp_aggregate.Wire.run list
(** Derive [runs] per-machine snapshot streams from one profiling run.
    Machine [i]'s faults are seeded from stream [i] of [seed] (default
    42), so the fleet is a pure function of (profile, noise, seed,
    runs).  Raises a typed {!Error} if [runs <= 0]. *)

val classifier :
  ?config:Config.t -> Driver.profile -> Vp_hsd.Snapshot.t -> int option
(** Classify a snapshot against the base profile's phase-log
    representatives with {!Vp_phase.Similarity.same} — first match in
    ascending phase-id order, [None] when no phase claims it.  Pure;
    safe on worker domains. *)

val aggregate :
  ?config:Config.t ->
  ?shards:int ->
  ?jobs:int ->
  base:Driver.profile ->
  Vp_aggregate.Wire.run list ->
  t
(** Classify and aggregate a fleet's run streams against [base]'s
    phase log. *)

val consensus_snapshots :
  ?config:Config.t -> t -> Vp_hsd.Snapshot.t list
(** One synthetic snapshot per non-empty class, counts scaled back
    into the hardware counter range ({!Vp_aggregate.Profile.to_snapshot}
    with the configuration's {!Config.counter_max}). *)

val profile_of_fleet : ?config:Config.t -> base:Driver.profile -> t -> Driver.profile
(** [base] with its snapshot stream and phase log replaced by the
    fleet consensus ({!Driver.with_snapshots}). *)

val rewrite :
  ?config:Config.t ->
  ?noise:Vp_fault.Plan.t ->
  ?seed:int ->
  ?shards:int ->
  ?jobs:int ->
  runs:int ->
  Vp_prog.Image.t ->
  Driver.rewrite * t
(** The end-to-end fleet pipeline: profile once, emulate [runs]
    machines, aggregate, package from the consensus profile. *)
