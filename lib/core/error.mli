(** The pipeline's typed error channel, re-exported at the public
    surface: [Vacuum.Error.Error] is the one exception pipeline stages
    raise, and {!pp}/{!to_string} render its structured payload
    (stage, pc, label, workload).  [vpack] catches it at top level and
    maps it to a clean exit code. *)

include module type of Vp_util.Error
(** @inline *)
