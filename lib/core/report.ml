module Phase_log = Vp_phase.Phase_log
module Categorize = Vp_phase.Categorize
module Emulator = Vp_exec.Emulator

type t = {
  name : string;
  config_name : string;
  instructions : int;
  raw_detections : int;
  recordings : int;
  unique_phases : int;
  transitions : int;
  coverage : Coverage.t;
  expansion : Expansion.t;
  categories : Categorize.weights;
  speedup : Speedup.t option;
  warnings : Error.t list;
  demotions : Driver.demotion list;
}

let evaluate_profile ?(config = Config.default) ?(timing = true) ~name
    (profile : Driver.profile) =
  let r = Driver.rewrite_of_profile ~config profile in
  let coverage = Coverage.measure ~config r in
  let expansion = Expansion.measure r in
  let categories =
    Categorize.weighted profile.Driver.log ~dynamic:profile.Driver.aggregate
  in
  let speedup = if timing then Some (Speedup.measure ~config r) else None in
  {
    name;
    config_name =
      Config.experiment_name
        ~inference:(Config.identify config).Vp_region.Identify.block_inference
        ~linking:(Config.linking config);
    instructions = profile.Driver.outcome.Emulator.instructions;
    raw_detections = profile.Driver.detections;
    recordings = List.length profile.Driver.snapshots;
    unique_phases = Phase_log.unique_count profile.Driver.log;
    transitions = Phase_log.transitions profile.Driver.log;
    coverage;
    expansion;
    categories;
    speedup;
    warnings = profile.Driver.warnings;
    demotions = r.Driver.demotions;
  }

let evaluate ?config ?timing ~name image =
  evaluate_profile ?config ?timing ~name (Driver.profile ?config image)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s (%s)@,\
    \  dynamic instructions   %d@,\
    \  detections/recordings  %d/%d@,\
    \  unique phases          %d (%d transitions)@,\
    \  coverage               %.1f%%%s@,\
    \  code expansion         +%.1f%% (selected %.1f%%, replication %.2f)@]"
    t.name t.config_name t.instructions t.raw_detections t.recordings
    t.unique_phases t.transitions t.coverage.Coverage.coverage_pct
    (if t.coverage.Coverage.equivalent then "" else " [NOT EQUIVALENT]")
    t.expansion.Expansion.increase_pct t.expansion.Expansion.selected_pct
    t.expansion.Expansion.replication;
  (match t.speedup with
  | Some s -> Format.fprintf fmt "@,  speedup                %.3fx" s.Speedup.speedup
  | None -> ());
  List.iter
    (fun w -> Format.fprintf fmt "@,  warning: %a" Error.pp w)
    t.warnings;
  List.iter
    (fun d -> Format.fprintf fmt "@,  demoted: %a" Driver.pp_demotion d)
    t.demotions
