module Snapshot = Vp_hsd.Snapshot
module Emulator = Vp_exec.Emulator

let snapshot_of_profile ?(min_share = 0.001) (p : Driver.profile) =
  let total = p.Driver.outcome.Emulator.cond_branches in
  let floor_count =
    max 1 (int_of_float (min_share *. float_of_int total))
  in
  let branches =
    Vp_exec.Branch_profile.fold
      (fun ~pc ~executed ~taken acc ->
        if executed >= floor_count then { Snapshot.pc; executed; taken } :: acc
        else acc)
      p.Driver.aggregate []
    |> List.rev
  in
  { Snapshot.id = 0; detected_at = 0; ended_at = total; branches }

let as_single_phase ?min_share (p : Driver.profile) =
  Driver.with_snapshots p [ snapshot_of_profile ?min_share p ]

let rewrite ?(config = Config.default) ?(min_share = 0.001) p =
  (* The paper's absolute arc threshold (16) is calibrated to 9-bit
     saturating hardware counters.  Aggregate counts are exact, so the
     equivalent selection threshold scales with the run: the same
     [min_share] floor used for branch selection. *)
  let total = p.Driver.outcome.Emulator.cond_branches in
  let floor_count = max 1 (int_of_float (min_share *. float_of_int total)) in
  let config =
    Config.map_identify
      (fun identify ->
        {
          identify with
          Vp_region.Identify.marking =
            {
              identify.Vp_region.Identify.marking with
              Vp_region.Marking.hot_arc_weight_threshold = floor_count;
            };
        })
      config
  in
  Driver.rewrite_of_profile ~config (as_single_phase ~min_share p)
