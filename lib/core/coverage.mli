(** Figure 8 metric: the percentage of dynamic instructions retired
    from package code when the rewritten binary runs, plus the
    rewrite-correctness check (the packaged binary must compute
    exactly what the original computed). *)

type t = {
  coverage_pct : float;
  outcome : Vp_exec.Emulator.outcome;  (** the rewritten run *)
  equivalent : bool;  (** checksum and result match the original *)
  residency : Vp_telemetry.t;
      (** per-run address-range attribution of the rewritten run:
          series [run.instructions], [run.orig.instructions], and one
          [run.<package-symbol>.instructions] per emitted package,
          plus [launch] (original to package), [side_exit] (package to
          original) and [migrate] (package to package) events stamped
          with the retired-instruction index.  Summing a package lane
          over all intervals reproduces that package's share of
          [outcome.package_instructions] — the Figure 8 numerator.
          {!Vp_telemetry.disabled} unless the configuration enables
          telemetry. *)
}

val measure : ?config:Config.t -> Driver.rewrite -> t

val lanes_of_image : Vp_prog.Image.t -> int array * string array
(** pc -> residency lane, plus lane names.  Lane 0 is the original
    program ("orig"); lane k > 0 is the k-th symbol appended at or
    above [orig_limit] (one lane per emitted package), named by its
    symbol.  Shared with [Vacuum.Session], whose cache-eviction signal
    integrates these lanes per epoch. *)
