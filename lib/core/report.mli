(** One-stop evaluation of a workload: profile once, rewrite under a
    configuration, and gather every paper metric.  The benchmark
    harness and the CLI both render from this record. *)

type t = {
  name : string;
  config_name : string;
  instructions : int;  (** original dynamic instructions *)
  raw_detections : int;
  recordings : int;  (** snapshots after hardware-side filtering *)
  unique_phases : int;
  transitions : int;
  coverage : Coverage.t;
  expansion : Expansion.t;
  categories : Vp_phase.Categorize.weights;
  speedup : Speedup.t option;  (** omitted when timing is skipped *)
  warnings : Error.t list;  (** profile warnings (truncation, fault plan) *)
  demotions : Driver.demotion list;  (** demotion-ladder steps taken *)
}

val evaluate :
  ?config:Config.t ->
  ?timing:bool ->
  name:string ->
  Vp_prog.Image.t ->
  t
(** [timing] (default true) controls whether the cycle-level
    simulations run (they dominate wall-clock cost). *)

val evaluate_profile :
  ?config:Config.t ->
  ?timing:bool ->
  name:string ->
  Driver.profile ->
  t
(** Reuse an existing profiling run (the four-configuration
    experiments share one). *)

val pp : Format.formatter -> t -> unit
