(** The online re-optimization loop (ROADMAP item 2).

    Where {!Driver} performs one offline profile → package → rewrite
    pass, a session keeps one machine running and re-optimizes it in
    epochs:

    + run one fuel-bounded slice of the {e currently active} image,
      feeding the Hot Spot Detector with branch outcomes folded back
      into original-pc space through {!Vp_package.Emit.result}
      [branch_map] — so profiling continues over the rewritten image;
    + classify each detected phase against the package cache with
      {!Vp_phase.Similarity.score}: at or above the drift threshold it
      is a cached phase re-observed, below it is {e drift} and a new
      region is identified and packaged from the pristine original;
    + bound the cache by the paper's Table 3 expansion budget
      ([Config.session.cache_pct] of the original's static size),
      evicting least-resident-first — the residency signal integrates
      the PR 4 per-package telemetry lanes plus matched phase extents,
      halved each epoch;
    + re-assemble every cached package against the original image
      through {!Driver.assemble} (screening, linking, emission,
      verification, and the demotion ladder), then hot-patch the
      running machine: the swap happens only at a {e quiescent} point
      — pc in original code and no live package-space return address —
      sought within a bounded grace window, deferred to the next epoch
      otherwise;
    + optionally check the differential oracle: the candidate image,
      run standalone, must be architecturally equivalent to the
      original before it may be activated.

    Determinism: a session is single-owner like a {!Driver.profile}
    run (per-epoch timelines, fresh detectors), so N-epoch runs are
    byte-identical under any job count and across execution backends.
    When the program halts inside a session, the continuously-patched
    machine's final checksum is compared against a clean run of the
    original — the end-to-end equivalence verdict in
    {!report.equivalent}. *)

type epoch_report = {
  epoch : int;  (** 0-based *)
  slice : Vp_exec.Emulator.outcome;  (** the epoch's profiling slice *)
  grace_used : int;  (** instructions spent seeking a safe patch point *)
  grace_package_instructions : int;
  phases_seen : int;  (** unique phases in this epoch's log *)
  new_entries : int list;  (** cache ids created (drift) *)
  matched_entries : int list;  (** cache ids re-observed *)
  evicted : int list;  (** cache ids evicted *)
  cache_entries : int;
  cache_instructions : int;  (** cached package code, static instrs *)
  activated : bool;  (** a re-assembled image was hot-patched in *)
  deferred : bool;  (** assembly ready but no quiescent point found *)
  fallback : bool;  (** the ladder hit [Fallback_image] this epoch *)
  verifier_ok : bool;
  oracle_ok : bool option;  (** [None] when the oracle is off or idle *)
  drops : Driver.demotion list;
  coverage_pct : float;  (** package share of this epoch's instructions *)
  timeline : Vp_telemetry.t;
      (** per-epoch interval series ([session.instructions],
          [session.branches], [session.package_instructions]) and
          [drift]/[evict]/[activate]/[defer] events, named ["epoch-K"]
          so a multi-epoch vp-timeline-trace/1 file keeps epochs
          distinguishable *)
}

type report = {
  epochs : epoch_report list;
  instructions : int;  (** total retired across all epochs *)
  package_instructions : int;
  cond_branches : int;
  halted : bool;
  coverage_pct : float;  (** whole-session Figure 8 metric *)
  activations : int;
  final_cache_entries : int;
  final_image : Vp_prog.Image.t;
  equivalent : bool option;
      (** end-to-end oracle: once the program halts, the live-patched
          machine must have computed exactly what the original would
          have ([None] while still running) *)
}

type t

val create : ?config:Config.t -> Vp_prog.Image.t -> t
(** A session over the given original image: one persistent machine
    state positioned at the entry point, an empty package cache, the
    original image active.  Raises on an invalid image. *)

val step : t -> epoch_report
(** Run one epoch (slice, classify, evict, re-assemble, patch).
    Raises [Error.Error] with stage ["session"] if the program has
    already halted. *)

val run : ?epochs:int -> t -> report
(** Step until [epochs] total epochs have run (default
    [Config.session.epochs]) or the program halts, then {!report}.
    Counting is absolute, so [step; step; run ~epochs:4] continues at
    epoch 2 and is identical to [run ~epochs:4] from scratch. *)

val report : t -> report
(** The report so far without running anything. *)

val halted : t -> bool

val epochs_run : t -> int

val image : t -> Vp_prog.Image.t
(** The currently active (possibly hot-patched) image. *)

val cache_entries : t -> int

val pp_epoch : Format.formatter -> epoch_report -> unit
val pp_report : Format.formatter -> report -> unit
