(** The chaos matrix: the full pipeline under every fault plan.

    Each cell runs profile → rewrite → verify with one {!Vp_fault}
    plan at one seed, then runs the rewritten image with a {e clean}
    fuel budget and checks the differential oracle: whatever the fault
    plan did to the profile, the rewritten binary must compute exactly
    what the original computed.  Coverage and expansion may degrade —
    to zero, at the bottom of the demotion ladder — but correctness
    may not.

    Cell seeds derive from {!Vp_util.Rng.stream} keyed by (plan index,
    seed index), so a matrix is byte-identical whichever [jobs] count
    (and hence schedule) runs it. *)

type cell = {
  plan : Vp_fault.Plan.t;  (** with the cell's derived seed *)
  seed_index : int;
  snapshots : int;  (** snapshots the software saw post-injection *)
  packages : int;  (** packages surviving the ladder *)
  coverage_pct : float;  (** clean-fuel run of the rewritten image *)
  expansion_pct : float;
  truncated : bool;  (** the (possibly fuel-starved) profile run *)
  drop_package : int;  (** demotions per rung *)
  drop_region : int;
  fallback_image : int;
  verified : bool;  (** final emitted image passed the verifier *)
  equivalent : bool;  (** the differential oracle *)
}

type result = {
  baseline : Vp_exec.Emulator.outcome;  (** clean run of the original *)
  cells : cell list;  (** plan-major, then seed order *)
}

val ok : result -> bool
(** Every cell equivalent and verified. *)

val run_cell :
  ?config:Config.t ->
  baseline:Vp_exec.Emulator.outcome ->
  plan:Vp_fault.Plan.t ->
  Vp_prog.Image.t ->
  cell
(** One cell; the plan already carries its derived seed.  Degradation
    is forced on (chaos is the ladder's test harness). *)

val matrix :
  ?config:Config.t ->
  ?plans:Vp_fault.Plan.t list ->
  ?seeds:int ->
  ?seed:int ->
  ?jobs:int ->
  Vp_prog.Image.t ->
  result
(** Run [plans] (default {!Vp_fault.Plan.presets}) × [seeds] (default
    5) cells on a {!Vp_util.Pool} of [jobs] workers (default 1).
    [seed] (default 0) roots the stream derivation. *)

val table : result -> string
(** Aligned text table, one row per cell — byte-identical under any
    [jobs]. *)
