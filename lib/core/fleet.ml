module Snapshot = Vp_hsd.Snapshot
module Profile = Vp_aggregate.Profile
module Wire = Vp_aggregate.Wire
module Shard = Vp_aggregate.Shard
module Phase_log = Vp_phase.Phase_log
module Rng = Vp_util.Rng

let src = Logs.Src.create "vacuum.fleet" ~doc:"Fleet profile aggregation"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  runs : int;
  classes : (int * Profile.t) list;
  stats : Shard.stats;
  digest : int;
}

(* Mild per-machine perturbation: each emulated user machine sees the
   workload's snapshot stream through its own lossy hardware — a few
   snapshots dropped or delivered twice, a few counters saturated or
   zeroed.  Strong enough that no two machines ship identical streams,
   weak enough that the fleet consensus still recovers the phases. *)
let default_noise =
  Vp_fault.Plan.v ~drop:0.05 ~duplicate:0.03 ~reorder:0.02 ~saturate:0.03
    ~zero_counters:0.01 "fleet-noise"

let emulate_runs ?(config = Config.default) ?(noise = default_noise)
    ?(seed = 42) ~runs (base : Driver.profile) =
  if runs <= 0 then
    Error.failf ~stage:"fleet" "fleet size must be positive (got %d)" runs;
  let counter_max = Config.counter_max config in
  let root = Rng.create ~seed in
  (* Each machine's faults draw from its own splittable stream keyed by
     the run index, so the fleet is identical whatever order (or
     schedule) the runs are materialised in. *)
  List.init runs (fun i ->
      let plan = Vp_fault.Plan.with_seed noise (Rng.stream_seed root i) in
      let snapshots =
        if Vp_fault.Plan.is_clean plan then base.Driver.snapshots
        else
          Vp_fault.Inject.snapshots ~plan ~counter_max base.Driver.snapshots
      in
      { Wire.run_id = i; weight = 1; counter_max; snapshots })

let classifier ?(config = Config.default) (base : Driver.profile) =
  let same = Vp_phase.Similarity.same ~config:(Config.similarity config) in
  let reps =
    List.map
      (fun (ph : Phase_log.phase) ->
        (ph.Phase_log.id, ph.Phase_log.representative))
      (Phase_log.phases base.Driver.log)
  in
  fun snap ->
    List.find_map
      (fun (id, rep) -> if same rep snap then Some id else None)
      reps

(* Order-fixed FNV mix over the per-class digests: one integer that
   pins down the whole aggregate, printed by [vpack aggregate] so CI
   can assert shard/job invariance by diffing stdout. *)
let digest_classes classes =
  List.fold_left
    (fun h (id, p) ->
      let h = (h lxor id) * 0x100000001b3 land max_int in
      (h lxor Profile.digest p) * 0x100000001b3 land max_int)
    0xbf29ce484222325 classes

let aggregate ?(config = Config.default) ?shards ?jobs ~base wire_runs =
  let counter_max = Config.counter_max config in
  let classify = classifier ~config base in
  let metrics = Config.metrics config in
  let wall0 = if Vp_metrics.enabled metrics then Unix.gettimeofday () else 0.0 in
  let classes, stats =
    Shard.aggregate_classes ?shards ?jobs ~counter_max ~classify wire_runs
  in
  (* Stable merge totals are shard/job-invariant; throughput is wall
     clock, hence a (volatile) gauge. *)
  Vp_metrics.Counter.bump metrics "aggregate.runs" stats.Shard.runs;
  Vp_metrics.Counter.bump metrics "aggregate.snapshots" stats.Shard.snapshots;
  Vp_metrics.Counter.bump metrics "aggregate.classified" stats.Shard.classified;
  if Vp_metrics.enabled metrics then begin
    let dt = Unix.gettimeofday () -. wall0 in
    Vp_metrics.Gauge.set metrics "aggregate.snapshots_per_sec"
      (int_of_float (float_of_int stats.Shard.snapshots /. Float.max dt 1e-9))
  end;
  Log.debug (fun m ->
      m "aggregated %d runs (%d snapshots, %d dropped) into %d classes"
        stats.Shard.runs stats.Shard.snapshots stats.Shard.dropped
        (List.length classes));
  {
    runs = stats.Shard.runs;
    classes;
    stats;
    digest = digest_classes classes;
  }

let consensus_snapshots ?(config = Config.default) t =
  let counter_max = Config.counter_max config in
  List.filter_map
    (fun (id, p) ->
      let s = Profile.to_snapshot ~id ~scale_to:counter_max p in
      if s.Snapshot.branches = [] then None else Some s)
    t.classes

let profile_of_fleet ?(config = Config.default) ~base t =
  Driver.with_snapshots
    ~similarity:(Config.similarity config)
    base
    (consensus_snapshots ~config t)

let rewrite ?(config = Config.default) ?noise ?seed ?shards ?jobs ~runs image
    =
  let base = Driver.profile ~config image in
  let wire = emulate_runs ~config ?noise ?seed ~runs base in
  let t = aggregate ~config ?shards ?jobs ~base wire in
  (Driver.rewrite_of_profile ~config (profile_of_fleet ~config ~base t), t)
