module Pool = Vp_util.Pool
module Tabular = Vp_util.Tabular
module Emulator = Vp_exec.Emulator
module Pipeline = Vp_cpu.Pipeline

type spec = { name : string; load : unit -> Vp_prog.Image.t }
type cell = { key : string; config : Config.t }

type metric = {
  kind : string;
  label : string;
  wall_s : float;
  instructions : int;
  start_s : float;
  domain : int;
}

type t = {
  jobs : int;
  profile_config : Config.t;
  obs : Vp_obs.t;
  lock : Mutex.t;
  images : (string, Vp_prog.Image.t) Hashtbl.t;
  profiles : (string, Driver.profile) Hashtbl.t;
  rewrites : (string * string, Driver.rewrite) Hashtbl.t;
  coverages : (string * string, Coverage.t) Hashtbl.t;
  fleets : (string * string, Fleet.t) Hashtbl.t;
  sessions : (string * string, Session.report) Hashtbl.t;
  baselines : (string, Pipeline.stats) Hashtbl.t;
  optimizeds : (string * string, Pipeline.stats) Hashtbl.t;
  mutable metrics : metric list;
  mutable hits : int;
  mutable misses : int;
  mutable truncated_rev : string list;
  mutable dag_wall_s : float;
}

let create ?(jobs = Pool.default_jobs ()) ?(profile_config = Config.default)
    ?(obs = Vp_obs.disabled) () =
  {
    jobs = Stdlib.max 1 jobs;
    profile_config;
    obs;
    lock = Mutex.create ();
    images = Hashtbl.create 32;
    profiles = Hashtbl.create 32;
    rewrites = Hashtbl.create 64;
    coverages = Hashtbl.create 64;
    fleets = Hashtbl.create 16;
    sessions = Hashtbl.create 16;
    baselines = Hashtbl.create 32;
    optimizeds = Hashtbl.create 64;
    metrics = [];
    hits = 0;
    misses = 0;
    truncated_rev = [];
    dag_wall_s = 0.0;
  }

let jobs t = t.jobs

let now () = Unix.gettimeofday ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* The memo layer: every cache goes through here so hits and misses
   are counted, and every miss is timed and recorded as a task metric.
   During {!run} the DAG assigns each key to exactly one task, so the
   unlocked compute never races with itself on a key; outside the DAG
   this is ordinary sequential memoisation. *)
let memo t table ~kind ~label ~instructions key compute =
  match
    locked t (fun () ->
        match Hashtbl.find_opt table key with
        | Some v ->
          t.hits <- t.hits + 1;
          Some v
        | None ->
          t.misses <- t.misses + 1;
          None)
  with
  | Some v -> v
  | None ->
    let t0 = now () in
    let v = compute () in
    let wall_s = now () -. t0 in
    let work = instructions v in
    Vp_obs.Span.note t.obs (kind ^ ":" ^ label) ~wall_s ~work;
    Vp_metrics.Histogram.observe ~volatile:true
      (Config.metrics t.profile_config) "engine.task.wall_us"
      (int_of_float (wall_s *. 1e6));
    locked t (fun () ->
        Hashtbl.replace table key v;
        t.metrics <-
          {
            kind;
            label;
            wall_s;
            instructions = work;
            start_s = t0;
            domain = (Domain.self () :> int);
          }
          :: t.metrics);
    v

let image t spec =
  memo t t.images ~kind:"image" ~label:spec.name
    ~instructions:(fun _ -> 0)
    spec.name spec.load

let profile t spec =
  let p =
    memo t t.profiles ~kind:"profile" ~label:spec.name
      ~instructions:(fun (p : Driver.profile) ->
        p.Driver.outcome.Emulator.instructions)
      spec.name
      (fun () -> Driver.profile ~config:t.profile_config (image t spec))
  in
  if p.Driver.truncated then
    locked t (fun () ->
        if not (List.mem spec.name t.truncated_rev) then
          t.truncated_rev <- spec.name :: t.truncated_rev);
  p

let cell_label spec cell = spec.name ^ " [" ^ cell.key ^ "]"

let rewrite t spec cell =
  memo t t.rewrites ~kind:"rewrite" ~label:(cell_label spec cell)
    ~instructions:(fun _ -> 0)
    (spec.name, cell.key)
    (fun () -> Driver.rewrite_of_profile ~config:cell.config (profile t spec))

let coverage t spec cell =
  memo t t.coverages ~kind:"coverage" ~label:(cell_label spec cell)
    ~instructions:(fun (c : Coverage.t) ->
      c.Coverage.outcome.Emulator.instructions)
    (spec.name, cell.key)
    (fun () -> Coverage.measure ~config:cell.config (rewrite t spec cell))

let fleet ?(runs = 64) ?(seed = 42) t spec =
  let key = Printf.sprintf "fleet:r%d:s%d" runs seed in
  memo t t.fleets ~kind:"fleet"
    ~label:(spec.name ^ " [" ^ key ^ "]")
    ~instructions:(fun (f : Fleet.t) -> f.Fleet.stats.Vp_aggregate.Shard.snapshots)
    (spec.name, key)
    (fun () ->
      let base = profile t spec in
      Fleet.aggregate ~config:t.profile_config ~base
        (Fleet.emulate_runs ~config:t.profile_config ~seed ~runs base))

let session ?epochs t spec cell =
  let key =
    match epochs with
    | None -> cell.key
    | Some n -> Printf.sprintf "%s:e%d" cell.key n
  in
  memo t t.sessions ~kind:"session"
    ~label:(spec.name ^ " [" ^ key ^ "]")
    ~instructions:(fun (r : Session.report) -> r.Session.instructions)
    (spec.name, key)
    (fun () ->
      Session.run ?epochs (Session.create ~config:cell.config (image t spec)))

let baseline t spec ~cpu =
  memo t t.baselines ~kind:"timing" ~label:(spec.name ^ " [baseline]")
    ~instructions:(fun (s : Pipeline.stats) -> s.Pipeline.instructions)
    spec.name
    (fun () ->
      Pipeline.simulate ~config:cpu
        ~backend:(Config.backend t.profile_config)
        (image t spec))

let optimized t spec cell =
  memo t t.optimizeds ~kind:"timing" ~label:(cell_label spec cell)
    ~instructions:(fun (s : Pipeline.stats) -> s.Pipeline.instructions)
    (spec.name, cell.key)
    (fun () ->
      Pipeline.simulate
        ~config:(Config.cpu cell.config)
        ~backend:(Config.backend cell.config)
        (Driver.rewritten_image (rewrite t spec cell)))

let truncated_profiles t =
  locked t (fun () -> List.sort compare t.truncated_rev)

(* ------------------------------------------------------------------ *)
(* The bench matrix as a task DAG: one profile task per workload; off
   each completed profile, one rewrite task per cell, which in turn
   spawns the coverage run and (optionally) the timing simulation of
   its rewritten image; the original-image timing baseline also keys
   off nothing but the image and runs beside the rewrites. *)

let run ?(rewrites = true) ?(timing = false) t ~specs ~cells () =
  let t0 = now () in
  let hits0, misses0 = locked t (fun () -> (t.hits, t.misses)) in
  let errors = ref [] in
  let guard label f () =
    try f ()
    with e -> locked t (fun () -> errors := (label, e) :: !errors)
  in
  let pool =
    Pool.create ~jobs:t.jobs
      ?hooks:(Vp_metrics.Sched.hooks (Config.metrics t.profile_config))
      ()
  in
  List.iter
    (fun spec ->
      Pool.submit pool
        (guard ("profile " ^ spec.name) (fun () ->
             ignore (profile t spec);
             (if timing then
                match cells with
                | cell :: _ ->
                  (* The machine model is uniform across cells. *)
                  Pool.submit pool
                    (guard (spec.name ^ " [baseline]") (fun () ->
                         ignore (baseline t spec ~cpu:(Config.cpu cell.config))))
                | [] -> ());
             if rewrites then
               List.iter
                 (fun cell ->
                   Pool.submit pool
                     (guard
                        ("rewrite " ^ cell_label spec cell)
                        (fun () ->
                          ignore (rewrite t spec cell);
                          Pool.submit pool
                            (guard
                               ("coverage " ^ cell_label spec cell)
                               (fun () -> ignore (coverage t spec cell)));
                          if timing then
                            Pool.submit pool
                              (guard
                                 ("timing " ^ cell_label spec cell)
                                 (fun () -> ignore (optimized t spec cell))))))
                 cells)))
    specs;
  Pool.wait pool;
  Pool.shutdown pool;
  t.dag_wall_s <- t.dag_wall_s +. (now () -. t0);
  let hits1, misses1 = locked t (fun () -> (t.hits, t.misses)) in
  Vp_obs.Counter.bump t.obs "engine.memo_hits" (hits1 - hits0);
  Vp_obs.Counter.bump t.obs "engine.memo_misses" (misses1 - misses0);
  let metrics = Config.metrics t.profile_config in
  Vp_metrics.Counter.bump metrics "engine.memo_hits" (hits1 - hits0);
  Vp_metrics.Counter.bump metrics "engine.memo_misses" (misses1 - misses0);
  (* Deterministic error surfacing: re-raise the failure with the
     lexicographically first task label, whatever the schedule was. *)
  match List.sort compare !errors with
  | [] -> ()
  | (_, e) :: _ -> raise e

(* ------------------------------------------------------------------ *)

let metrics t = locked t (fun () -> t.metrics)

let kind_order = function
  | "image" -> 0
  | "profile" -> 1
  | "rewrite" -> 2
  | "coverage" -> 3
  | "fleet" -> 4
  | "session" -> 5
  | "timing" -> 6
  | _ -> 7

let summary_table t =
  let ms =
    List.sort
      (fun a b ->
        compare (kind_order a.kind, a.kind, a.label) (kind_order b.kind, b.kind, b.label))
      (metrics t)
  in
  let tab =
    Tabular.create
      ~header:
        [
          ("task", Tabular.Left);
          ("target", Tabular.Left);
          ("wall", Tabular.Right);
          ("instrs simulated", Tabular.Right);
        ]
  in
  List.iter
    (fun m ->
      Tabular.add_row tab
        [
          m.kind;
          m.label;
          Printf.sprintf "%.3f s" m.wall_s;
          (if m.instructions = 0 then "-"
           else Printf.sprintf "%.1fM" (float_of_int m.instructions /. 1e6));
        ])
    ms;
  Tabular.add_separator tab;
  let task_wall = List.fold_left (fun acc m -> acc +. m.wall_s) 0.0 ms in
  let instrs = List.fold_left (fun acc m -> acc + m.instructions) 0 ms in
  Tabular.add_row tab
    [
      "total";
      Printf.sprintf "%d tasks" (List.length ms);
      Printf.sprintf "%.3f s" task_wall;
      Printf.sprintf "%.1fM" (float_of_int instrs /. 1e6);
    ];
  tab

let pp_summary fmt t =
  Format.fprintf fmt "per-task metrics (jobs=%d):@." t.jobs;
  Format.fprintf fmt "%s@." (String.trim (Tabular.render (summary_table t)));
  let task_wall =
    List.fold_left (fun acc m -> acc +. m.wall_s) 0.0 (metrics t)
  in
  let hits, misses = locked t (fun () -> (t.hits, t.misses)) in
  Format.fprintf fmt "memo layer: %d hits, %d misses@." hits misses;
  if t.dag_wall_s > 0.0 then
    (* The wall figure is the one to compare across --jobs runs; the
       concurrency ratio over-reads on an oversubscribed machine
       because descheduled time still counts against each task. *)
    Format.fprintf fmt
      "engine: %.3f s wall for the task DAG (%.3f s aggregate task time, \
       avg concurrency %.2f)@."
      t.dag_wall_s task_wall
      (task_wall /. t.dag_wall_s)
