include Vp_util.Error
