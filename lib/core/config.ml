type t = {
  detector : Vp_hsd.Config.t;
  history_size : int;
  similarity : Vp_phase.Similarity.config;
  identify : Vp_region.Identify.config;
  linking : bool;
  opt : Vp_opt.Opt.config;
  cpu : Vp_cpu.Config.t;
  backend : Vp_exec.Emulator.backend;
  mem_words : int;
  fuel : int;
  obs : Vp_obs.t;
  telemetry : Vp_telemetry.config;
  fault : Vp_fault.Plan.t option;
  degrade : bool;
}

let v ?(detector = Vp_hsd.Config.default) ?(history_size = 0)
    ?(similarity = Vp_phase.Similarity.default)
    ?(identify = Vp_region.Identify.default) ?(linking = true)
    ?(opt = Vp_opt.Opt.default) ?(cpu = Vp_cpu.Config.default)
    ?(backend = Vp_exec.Emulator.Decoded) ?(mem_words = 1 lsl 20)
    ?(fuel = 200_000_000) ?(obs = Vp_obs.disabled)
    ?(telemetry = Vp_telemetry.off) ?fault ?(degrade = true) () =
  {
    detector;
    history_size;
    similarity;
    identify;
    linking;
    opt;
    cpu;
    backend;
    mem_words;
    fuel;
    obs;
    telemetry;
    fault;
    degrade;
  }

let default = v ()

let experiment ~inference ~linking =
  {
    default with
    identify = { default.identify with Vp_region.Identify.block_inference = inference };
    linking;
    (* The paper's speedup study applies relayout and rescheduling
       only; superblock formation is this repository's extension and
       is measured separately (ablation-superblock). *)
    opt = Vp_opt.Opt.paper;
  }

let experiment_name ~inference ~linking =
  Printf.sprintf "%s inference, %s linking"
    (if inference then "with" else "no")
    (if linking then "with" else "no")

let detector t = t.detector
let counter_max t = (1 lsl t.detector.Vp_hsd.Config.counter_bits) - 1
let history_size t = t.history_size
let similarity t = t.similarity
let identify t = t.identify
let linking t = t.linking
let opt t = t.opt
let cpu t = t.cpu
let backend t = t.backend
let mem_words t = t.mem_words
let fuel t = t.fuel
let obs t = t.obs
let telemetry t = t.telemetry
let fault t = t.fault
let degrade t = t.degrade
let with_detector detector t = { t with detector }
let with_history_size history_size t = { t with history_size }
let with_similarity similarity t = { t with similarity }
let with_identify identify t = { t with identify }
let with_linking linking t = { t with linking }
let with_opt opt t = { t with opt }
let with_cpu cpu t = { t with cpu }
let with_backend backend t = { t with backend }
let with_mem_words mem_words t = { t with mem_words }
let with_fuel fuel t = { t with fuel }
let with_obs obs t = { t with obs }
let with_telemetry telemetry t = { t with telemetry }
let with_fault fault t = { t with fault = Some fault }
let without_fault t = { t with fault = None }
let with_degrade degrade t = { t with degrade }

let map_identify f t = { t with identify = f t.identify }
