type session = {
  epoch_fuel : int;
  epochs : int;
  cache_pct : float;
  drift_threshold : float;
  patch_grace : int;
  oracle : bool;
}

let default_session =
  {
    epoch_fuel = 0;
    epochs = 4;
    cache_pct = 30.0;
    drift_threshold = 0.5;
    patch_grace = 50_000;
    oracle = true;
  }

type t = {
  detector : Vp_hsd.Config.t;
  history_size : int;
  similarity : Vp_phase.Similarity.config;
  identify : Vp_region.Identify.config;
  linking : bool;
  opt : Vp_opt.Opt.config;
  cpu : Vp_cpu.Config.t;
  backend : Vp_exec.Emulator.backend;
  mem_words : int;
  fuel : int;
  obs : Vp_obs.t;
  metrics : Vp_metrics.t;
  telemetry : Vp_telemetry.config;
  fault : Vp_fault.Plan.t option;
  degrade : bool;
  session : session;
}

let v ?(detector = Vp_hsd.Config.default) ?(history_size = 0)
    ?(similarity = Vp_phase.Similarity.default)
    ?(identify = Vp_region.Identify.default) ?(linking = true)
    ?(opt = Vp_opt.Opt.default) ?(cpu = Vp_cpu.Config.default)
    ?(backend = Vp_exec.Emulator.Decoded) ?(mem_words = 1 lsl 20)
    ?(fuel = 200_000_000) ?(obs = Vp_obs.disabled)
    ?(metrics = Vp_metrics.disabled) ?(telemetry = Vp_telemetry.off) ?fault
    ?(degrade = true) ?(session = default_session) () =
  {
    detector;
    history_size;
    similarity;
    identify;
    linking;
    opt;
    cpu;
    backend;
    mem_words;
    fuel;
    obs;
    metrics;
    telemetry;
    fault;
    degrade;
    session;
  }

let default = v ()

let experiment ~inference ~linking =
  {
    default with
    identify = { default.identify with Vp_region.Identify.block_inference = inference };
    linking;
    (* The paper's speedup study applies relayout and rescheduling
       only; superblock formation is this repository's extension and
       is measured separately (ablation-superblock). *)
    opt = Vp_opt.Opt.paper;
  }

let experiment_name ~inference ~linking =
  Printf.sprintf "%s inference, %s linking"
    (if inference then "with" else "no")
    (if linking then "with" else "no")

let detector t = t.detector
let counter_max t = (1 lsl t.detector.Vp_hsd.Config.counter_bits) - 1
let history_size t = t.history_size
let similarity t = t.similarity
let identify t = t.identify
let linking t = t.linking
let opt t = t.opt
let cpu t = t.cpu
let backend t = t.backend
let mem_words t = t.mem_words
let fuel t = t.fuel
let obs t = t.obs
let metrics t = t.metrics
let telemetry t = t.telemetry
let fault t = t.fault
let degrade t = t.degrade
let session t = t.session
let with_detector detector t = { t with detector }
let with_history_size history_size t = { t with history_size }
let with_similarity similarity t = { t with similarity }
let with_identify identify t = { t with identify }
let with_linking linking t = { t with linking }
let with_opt opt t = { t with opt }
let with_cpu cpu t = { t with cpu }
let with_backend backend t = { t with backend }
let with_mem_words mem_words t = { t with mem_words }
let with_fuel fuel t = { t with fuel }
let with_obs obs t = { t with obs }
let with_metrics metrics t = { t with metrics }
let with_telemetry telemetry t = { t with telemetry }
let with_fault fault t = { t with fault = Some fault }
let without_fault t = { t with fault = None }
let with_degrade degrade t = { t with degrade }
let with_session session t = { t with session }
let map_session f t = { t with session = f t.session }

let map_identify f t = { t with identify = f t.identify }

(* Rendering.  One internal JSON tree feeds both the single-line
   [to_json] (machine consumers: `vpack stats`, epoch reports) and the
   indented [pp] (humans), so the two can never disagree about what
   the effective configuration is. *)

type json =
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_str of string
  | J_obj of (string * json) list

let json_of_cache (g : Vp_cpu.Config.cache_geometry) =
  J_obj
    [
      ("size_bytes", J_int g.Vp_cpu.Config.size_bytes);
      ("line_bytes", J_int g.Vp_cpu.Config.line_bytes);
      ("assoc", J_int g.Vp_cpu.Config.assoc);
    ]

let json_of_t t =
  let d = t.detector in
  let s = t.similarity in
  let i = t.identify in
  let m = i.Vp_region.Identify.marking in
  let o = t.opt in
  let c = t.cpu in
  let se = t.session in
  J_obj
    [
      ( "detector",
        J_obj
          [
            ("sets", J_int d.Vp_hsd.Config.sets);
            ("assoc", J_int d.Vp_hsd.Config.assoc);
            ("counter_bits", J_int d.Vp_hsd.Config.counter_bits);
            ("candidate_threshold", J_int d.Vp_hsd.Config.candidate_threshold);
            ("refresh_interval", J_int d.Vp_hsd.Config.refresh_interval);
            ("clear_interval", J_int d.Vp_hsd.Config.clear_interval);
            ("hdc_bits", J_int d.Vp_hsd.Config.hdc_bits);
            ("hdc_inc", J_int d.Vp_hsd.Config.hdc_inc);
            ("hdc_dec", J_int d.Vp_hsd.Config.hdc_dec);
          ] );
      ("history_size", J_int t.history_size);
      ( "similarity",
        J_obj
          [
            ("missing_fraction", J_float s.Vp_phase.Similarity.missing_fraction);
            ("bias_threshold", J_float s.Vp_phase.Similarity.bias_threshold);
            ("max_bias_flips", J_int s.Vp_phase.Similarity.max_bias_flips);
          ] );
      ( "identify",
        J_obj
          [
            ("block_inference", J_bool i.Vp_region.Identify.block_inference);
            ("max_blocks", J_int i.Vp_region.Identify.max_blocks);
            ("max_connector", J_int i.Vp_region.Identify.max_connector);
            ( "marking",
              J_obj
                [
                  ( "arc_hot_fraction",
                    J_float m.Vp_region.Marking.arc_hot_fraction );
                  ( "hot_arc_weight_threshold",
                    J_int m.Vp_region.Marking.hot_arc_weight_threshold );
                ] );
          ] );
      ("linking", J_bool t.linking);
      ( "opt",
        J_obj
          [
            ("layout", J_bool o.Vp_opt.Opt.layout);
            ("scheduling", J_bool o.Vp_opt.Opt.scheduling);
            ("sinking", J_bool o.Vp_opt.Opt.sinking);
            ("superblocks", J_bool o.Vp_opt.Opt.superblocks);
            ("flip_threshold", J_float o.Vp_opt.Opt.flip_threshold);
          ] );
      ( "cpu",
        J_obj
          [
            ("issue_width", J_int c.Vp_cpu.Config.issue_width);
            ("ialu_units", J_int c.Vp_cpu.Config.ialu_units);
            ("fp_units", J_int c.Vp_cpu.Config.fp_units);
            ("mem_units", J_int c.Vp_cpu.Config.mem_units);
            ("branch_units", J_int c.Vp_cpu.Config.branch_units);
            ("l1i", json_of_cache c.Vp_cpu.Config.l1i);
            ("l1d", json_of_cache c.Vp_cpu.Config.l1d);
            ("l2", json_of_cache c.Vp_cpu.Config.l2);
            ("l2_latency", J_int c.Vp_cpu.Config.l2_latency);
            ("memory_latency", J_int c.Vp_cpu.Config.memory_latency);
            ("branch_resolution", J_int c.Vp_cpu.Config.branch_resolution);
            ("gshare_history_bits", J_int c.Vp_cpu.Config.gshare_history_bits);
            ("btb_entries", J_int c.Vp_cpu.Config.btb_entries);
            ("ras_entries", J_int c.Vp_cpu.Config.ras_entries);
            ("instr_bytes", J_int c.Vp_cpu.Config.instr_bytes);
            ("word_bytes", J_int c.Vp_cpu.Config.word_bytes);
          ] );
      ("backend", J_str (Vp_exec.Emulator.backend_name t.backend));
      ("mem_words", J_int t.mem_words);
      ("fuel", J_int t.fuel);
      ("obs", J_bool (Vp_obs.enabled t.obs));
      ("metrics", J_bool (Vp_metrics.enabled t.metrics));
      ( "telemetry",
        J_obj
          [
            ("enabled", J_bool t.telemetry.Vp_telemetry.enabled);
            ("interval", J_int t.telemetry.Vp_telemetry.interval);
          ] );
      ( "fault",
        match t.fault with
        | None -> J_str "none"
        | Some p -> J_str p.Vp_fault.Plan.name );
      ("degrade", J_bool t.degrade);
      ( "session",
        J_obj
          [
            ("epoch_fuel", J_int se.epoch_fuel);
            ("epochs", J_int se.epochs);
            ("cache_pct", J_float se.cache_pct);
            ("drift_threshold", J_float se.drift_threshold);
            ("patch_grace", J_int se.patch_grace);
            ("oracle", J_bool se.oracle);
          ] );
    ]

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let float_lit f =
  let s = Printf.sprintf "%g" f in
  (* keep JSON numbers that happen to be integral parseable as floats *)
  if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec render_compact b = function
  | J_bool v -> Buffer.add_string b (if v then "true" else "false")
  | J_int n -> Buffer.add_string b (string_of_int n)
  | J_float f -> Buffer.add_string b (float_lit f)
  | J_str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | J_obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun k (name, v) ->
        if k > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape name);
        Buffer.add_string b "\":";
        render_compact b v)
      fields;
    Buffer.add_char b '}'

let to_json t =
  let b = Buffer.create 1024 in
  render_compact b (json_of_t t);
  Buffer.contents b

let rec render_indented b indent = function
  | J_obj fields ->
    let pad = String.make indent ' ' in
    Buffer.add_string b "{\n";
    List.iteri
      (fun k (name, v) ->
        if k > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad;
        Buffer.add_string b "  \"";
        Buffer.add_string b (escape name);
        Buffer.add_string b "\": ";
        render_indented b (indent + 2) v)
      fields;
    Buffer.add_char b '\n';
    Buffer.add_string b pad;
    Buffer.add_char b '}'
  | j -> render_compact b j

let pp ppf t =
  let b = Buffer.create 1024 in
  render_indented b 0 (json_of_t t);
  Format.pp_print_string ppf (Buffer.contents b)
