module Pipeline = Vp_cpu.Pipeline

type t = {
  baseline : Pipeline.stats;
  optimized : Pipeline.stats;
  speedup : float;
}

let measure ?(config = Config.default) (r : Driver.rewrite) =
  let obs = Config.obs config in
  let time name image =
    Vp_obs.Span.record obs name ~work:(fun s -> s.Pipeline.instructions)
    @@ fun () ->
    Pipeline.simulate ~config:(Config.cpu config)
      ~backend:(Config.backend config) ~fuel:(Config.fuel config)
      ~mem_words:(Config.mem_words config) image
  in
  let baseline = time "timing:baseline" r.Driver.source.Driver.image in
  let optimized = time "timing:optimized" (Driver.rewritten_image r) in
  List.iter
    (fun (tag, (s : Pipeline.stats)) ->
      Vp_obs.Counter.bump obs
        ("cpu." ^ tag ^ ".fetch_line_buffer_hits")
        s.Pipeline.fetch_line_buffer_hits;
      Vp_obs.Counter.bump obs
        ("cpu." ^ tag ^ ".data_line_buffer_hits")
        s.Pipeline.data_line_buffer_hits)
    [ ("baseline", baseline); ("optimized", optimized) ];
  { baseline; optimized; speedup = Pipeline.speedup ~baseline ~optimized }
