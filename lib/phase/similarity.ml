module Snapshot = Vp_hsd.Snapshot

type config = {
  missing_fraction : float;
  bias_threshold : float;
  max_bias_flips : int;
}

let default = { missing_fraction = 0.3; bias_threshold = 0.9; max_bias_flips = 0 }

(* Degenerate working sets are legitimate inputs here: merged fleet
   profiles hand the classifier empty and singleton snapshots (faulted
   streams, censored-away entries), so every function below is total —
   no division by a zero branch count, no raise.  An empty snapshot is
   missing nothing (fraction 0), and anything is fully missing from an
   empty snapshot (fraction 1, by the guarded division below never
   actually dividing by zero). *)
let missing_fraction a b =
  match a.Snapshot.branches with
  | [] -> 0.0
  | branches ->
    let missing =
      List.length (List.filter (fun e -> Snapshot.find b e.Snapshot.pc = None) branches)
    in
    float_of_int missing /. float_of_int (List.length branches)

let bias_flips ?(threshold = 0.9) a b =
  List.fold_left
    (fun acc ea ->
      match Snapshot.find b ea.Snapshot.pc with
      | None -> acc
      | Some eb -> (
        match (Snapshot.bias ~threshold ea, Snapshot.bias ~threshold eb) with
        | Snapshot.Taken, Snapshot.Not_taken | Snapshot.Not_taken, Snapshot.Taken ->
          acc + 1
        | _ -> acc))
    0 a.Snapshot.branches

(* Weighted overlap in [0, 1]: Jaccard over the pc -> executed maps
   (sum of minima over sum of maxima).  Two empty snapshots are
   identical (1.0); an empty snapshot shares nothing with a non-empty
   one (0.0); when every counter in both reads zero the weights carry
   no signal, so the score falls back to plain set Jaccard over the
   pcs.  Total on any input, per the lenient contract above. *)
let score a b =
  match (a.Snapshot.branches, b.Snapshot.branches) with
  | [], [] -> 1.0
  | [], _ | _, [] -> 0.0
  | abr, bbr ->
    let weight_of snap pc =
      match Snapshot.find snap pc with
      | Some e -> e.Snapshot.executed
      | None -> 0
    in
    let pcs =
      List.sort_uniq compare
        (List.map (fun e -> e.Snapshot.pc) abr
        @ List.map (fun e -> e.Snapshot.pc) bbr)
    in
    let num, den, inter =
      List.fold_left
        (fun (num, den, inter) pc ->
          let wa = max 0 (weight_of a pc) and wb = max 0 (weight_of b pc) in
          let both = Snapshot.find a pc <> None && Snapshot.find b pc <> None in
          (num + min wa wb, den + max wa wb, if both then inter + 1 else inter))
        (0, 0, 0) pcs
    in
    if den > 0 then float_of_int num /. float_of_int den
    else float_of_int inter /. float_of_int (List.length pcs)

type verdict = Same | Too_many_missing | Too_many_bias_flips

let verdict ?(config = default) a b =
  if
    missing_fraction a b >= config.missing_fraction
    || missing_fraction b a >= config.missing_fraction
  then Too_many_missing
  else if bias_flips ~threshold:config.bias_threshold a b > config.max_bias_flips
  then Too_many_bias_flips
  else Same

let same ?config a b = verdict ?config a b = Same
