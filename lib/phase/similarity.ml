module Snapshot = Vp_hsd.Snapshot

type config = {
  missing_fraction : float;
  bias_threshold : float;
  max_bias_flips : int;
}

let default = { missing_fraction = 0.3; bias_threshold = 0.9; max_bias_flips = 0 }

let missing_fraction a b =
  match a.Snapshot.branches with
  | [] -> 0.0
  | branches ->
    let missing =
      List.length (List.filter (fun e -> Snapshot.find b e.Snapshot.pc = None) branches)
    in
    float_of_int missing /. float_of_int (List.length branches)

let bias_flips ?(threshold = 0.9) a b =
  List.fold_left
    (fun acc ea ->
      match Snapshot.find b ea.Snapshot.pc with
      | None -> acc
      | Some eb -> (
        match (Snapshot.bias ~threshold ea, Snapshot.bias ~threshold eb) with
        | Snapshot.Taken, Snapshot.Not_taken | Snapshot.Not_taken, Snapshot.Taken ->
          acc + 1
        | _ -> acc))
    0 a.Snapshot.branches

type verdict = Same | Too_many_missing | Too_many_bias_flips

let verdict ?(config = default) a b =
  if
    missing_fraction a b >= config.missing_fraction
    || missing_fraction b a >= config.missing_fraction
  then Too_many_missing
  else if bias_flips ~threshold:config.bias_threshold a b > config.max_bias_flips
  then Too_many_bias_flips
  else Same

let same ?config a b = verdict ?config a b = Same
