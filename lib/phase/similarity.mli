(** Hot-spot similarity, per Section 3.1 of the paper.

    Two hot spots are the {e same} phase unless:
    - 30 % or more of one's branches are missing from the other (in
      either direction), or
    - more than [max_bias_flips] branches common to both are biased in
      both and flip direction (taken vs. not-taken) between them.
      The paper uses a threshold of a single varying biased branch,
      i.e. [max_bias_flips = 0]. *)

type config = {
  missing_fraction : float;  (** default 0.3 *)
  bias_threshold : float;  (** what counts as biased; default 0.9 *)
  max_bias_flips : int;  (** tolerated flipped biased branches; default 0 *)
}

val default : config

val missing_fraction : Vp_hsd.Snapshot.t -> Vp_hsd.Snapshot.t -> float
(** Fraction of the first snapshot's branches absent from the second.
    Total on degenerate inputs, per the lenient never-raise contract
    shared with [Vp_region.Marking]: an empty snapshot is missing
    nothing (0.0), and any non-empty snapshot is fully missing from an
    empty one (1.0) — merged fleet profiles routinely produce both. *)

val score : Vp_hsd.Snapshot.t -> Vp_hsd.Snapshot.t -> float
(** Symmetric weighted overlap in [[0, 1]]: Jaccard similarity of the
    pc -> executed maps (sum of per-pc minima over sum of maxima).
    Defined on every input: two empty snapshots score 1.0, an empty
    against a non-empty scores 0.0, and when every counter in both
    snapshots reads zero the score degrades to set Jaccard over the
    pcs.  The fleet aggregator uses it to rank phase-class matches;
    {!verdict} remains the paper's accept/reject criterion. *)

val bias_flips : ?threshold:float -> Vp_hsd.Snapshot.t -> Vp_hsd.Snapshot.t -> int
(** Branches biased in both snapshots with opposite directions. *)

type verdict = Same | Too_many_missing | Too_many_bias_flips
(** Why two snapshots are (not) the same phase: the first criterion
    that fails, in the paper's order — missing-branch fraction first,
    then biased-branch flips.  Degenerate snapshots get a defined
    verdict rather than an exception: empty vs. empty is [Same] (both
    describe the same, vacuous, working set), empty vs. non-empty is
    [Too_many_missing]. *)

val verdict :
  ?config:config -> Vp_hsd.Snapshot.t -> Vp_hsd.Snapshot.t -> verdict

val same : ?config:config -> Vp_hsd.Snapshot.t -> Vp_hsd.Snapshot.t -> bool
(** [same a b = (verdict a b = Same)]. *)
