(** Hot-spot similarity, per Section 3.1 of the paper.

    Two hot spots are the {e same} phase unless:
    - 30 % or more of one's branches are missing from the other (in
      either direction), or
    - more than [max_bias_flips] branches common to both are biased in
      both and flip direction (taken vs. not-taken) between them.
      The paper uses a threshold of a single varying biased branch,
      i.e. [max_bias_flips = 0]. *)

type config = {
  missing_fraction : float;  (** default 0.3 *)
  bias_threshold : float;  (** what counts as biased; default 0.9 *)
  max_bias_flips : int;  (** tolerated flipped biased branches; default 0 *)
}

val default : config

val missing_fraction : Vp_hsd.Snapshot.t -> Vp_hsd.Snapshot.t -> float
(** Fraction of the first snapshot's branches absent from the second. *)

val bias_flips : ?threshold:float -> Vp_hsd.Snapshot.t -> Vp_hsd.Snapshot.t -> int
(** Branches biased in both snapshots with opposite directions. *)

type verdict = Same | Too_many_missing | Too_many_bias_flips
(** Why two snapshots are (not) the same phase: the first criterion
    that fails, in the paper's order — missing-branch fraction first,
    then biased-branch flips. *)

val verdict :
  ?config:config -> Vp_hsd.Snapshot.t -> Vp_hsd.Snapshot.t -> verdict

val same : ?config:config -> Vp_hsd.Snapshot.t -> Vp_hsd.Snapshot.t -> bool
(** [same a b = (verdict a b = Same)]. *)
