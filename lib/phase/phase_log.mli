(** Software filtering of raw hot-spot recordings into unique phases.

    The hardware re-detects a stable phase every detection cycle, so
    the raw snapshot stream contains long runs of near-identical
    records.  This pass groups snapshots into equivalence classes by
    {!Similarity.same} against each class representative (the first
    member), yielding the unique phases the region-formation pipeline
    processes — "software filtering eliminates all redundant hot spot
    detections", Section 3.1. *)

type phase = {
  id : int;
  representative : Vp_hsd.Snapshot.t;
  occurrences : Vp_hsd.Snapshot.t list;  (** every merged recording, in order *)
}

type t

val build : ?similarity:Similarity.config -> Vp_hsd.Snapshot.t list -> t

type stats = {
  raw : int;  (** snapshots fed in *)
  merged : int;  (** snapshots folded into an existing class *)
  new_classes : int;  (** = {!unique_count} of the result *)
  rejected_missing : int;
      (** class comparisons failed on the missing-branch fraction *)
  rejected_bias_flips : int;
      (** class comparisons failed on biased-branch flips *)
}
(** Where the software filter spent its decisions.  The rejection
    counts are per {e comparison} (a snapshot opening class [n] was
    rejected against all [n] earlier representatives). *)

val build_with_stats :
  ?similarity:Similarity.config -> Vp_hsd.Snapshot.t list -> t * stats

val phases : t -> phase list
(** Unique phases in first-detection order. *)

val timeline : t -> (int * int * int) list
(** [(start, stop, phase_id)] intervals in execution order — the
    program's phase schedule as the detector saw it. *)

val raw_count : t -> int
val unique_count : t -> int

val extent : phase -> int
(** Total dynamic branches covered by all occurrences of the phase. *)

val transitions : t -> int
(** Adjacent timeline intervals with different phase ids. *)

val pp : Format.formatter -> t -> unit
