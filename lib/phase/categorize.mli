(** Figure 9: categorisation of hot-spot branch behaviour across
    phases.

    A static branch appearing in exactly one unique phase is [Unique]
    (biased or unbiased within that phase).  A branch appearing in
    several phases is [Multi]; if it is biased in at least one phase,
    the swing of its per-phase taken fractions picks the bucket
    (> 0.7 high, 0.4–0.7 low, otherwise same); a multi branch never
    biased in any phase is [Multi_no_bias].  [Uncaptured] covers
    dynamic branch executions whose static branch never appeared in
    any hot spot. *)

type category =
  | Unique_biased
  | Unique_unbiased
  | Multi_high
  | Multi_low
  | Multi_same
  | Multi_no_bias
  | Uncaptured

val all_categories : category list
val category_name : category -> string

val of_branch : ?bias_threshold:float -> float list -> category
(** Categorise from the per-phase taken fractions of one branch
    (one element per unique phase containing it; must be non-empty). *)

val classify :
  ?bias_threshold:float -> Phase_log.t -> (int * category) list
(** Category of every static branch appearing in at least one phase,
    ascending by pc. *)

type weights = (category * float) list
(** Percentage of dynamic branch executions per category; sums to 100
    when any branches executed. *)

val weighted :
  ?bias_threshold:float ->
  Phase_log.t ->
  dynamic:Vp_exec.Branch_profile.t ->
  weights
(** [dynamic] is the whole-run (executed, taken) profile — from
    {!Vp_exec.Emulator.aggregate_branch_profile} or
    [Driver.profile.aggregate]. *)

val pp_weights : Format.formatter -> weights -> unit
