module Snapshot = Vp_hsd.Snapshot

type phase = {
  id : int;
  representative : Snapshot.t;
  occurrences : Snapshot.t list;
}

type t = { phases : phase list; schedule : (int * int * int) list; raw : int }

type stats = {
  raw : int;
  merged : int;
  new_classes : int;
  rejected_missing : int;
  rejected_bias_flips : int;
}

let build_with_stats ?(similarity = Similarity.default) snapshots =
  let classes : (int * Snapshot.t * Snapshot.t list ref) list ref = ref [] in
  let schedule_rev = ref [] in
  let merged = ref 0 in
  let rejected_missing = ref 0 in
  let rejected_bias = ref 0 in
  List.iter
    (fun snap ->
      let assigned =
        List.find_opt
          (fun (_, rep, _) ->
            match Similarity.verdict ~config:similarity snap rep with
            | Similarity.Same -> true
            | Similarity.Too_many_missing ->
              incr rejected_missing;
              false
            | Similarity.Too_many_bias_flips ->
              incr rejected_bias;
              false)
          !classes
      in
      let id =
        match assigned with
        | Some (id, _, members) ->
          members := snap :: !members;
          incr merged;
          id
        | None ->
          let id = List.length !classes in
          classes := !classes @ [ (id, snap, ref [ snap ]) ];
          id
      in
      schedule_rev := (snap.Snapshot.detected_at, snap.Snapshot.ended_at, id) :: !schedule_rev)
    snapshots;
  let phases =
    List.map
      (fun (id, rep, members) ->
        { id; representative = rep; occurrences = List.rev !members })
      !classes
  in
  let raw = List.length snapshots in
  ( { phases; schedule = List.rev !schedule_rev; raw },
    {
      raw;
      merged = !merged;
      new_classes = List.length phases;
      rejected_missing = !rejected_missing;
      rejected_bias_flips = !rejected_bias;
    } )

let build ?similarity snapshots = fst (build_with_stats ?similarity snapshots)

let phases t = t.phases

(* Merge adjacent same-phase intervals for a readable schedule. *)
let timeline t =
  let rec merge = function
    | (s1, e1, p1) :: (s2, e2, p2) :: rest when p1 = p2 && e1 = s2 ->
      merge ((s1, e2, p1) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  merge t.schedule

let raw_count (t : t) = t.raw
let unique_count t = List.length t.phases

let extent p =
  List.fold_left (fun acc s -> acc + Snapshot.extent s) 0 p.occurrences

let transitions t =
  let tl = timeline t in
  let rec count = function
    | (_, _, a) :: ((_, _, b) :: _ as rest) ->
      (if a <> b then 1 else 0) + count rest
    | _ -> 0
  in
  count tl

let pp fmt (t : t) =
  Format.fprintf fmt "@[<v>%d raw recordings, %d unique phases@," t.raw
    (unique_count t);
  List.iter
    (fun p ->
      Format.fprintf fmt "phase %d: %d occurrences, extent %d, %d branches@," p.id
        (List.length p.occurrences) (extent p)
        (List.length p.representative.Snapshot.branches))
    t.phases;
  Format.fprintf fmt "@]"
