module Snapshot = Vp_hsd.Snapshot

type category =
  | Unique_biased
  | Unique_unbiased
  | Multi_high
  | Multi_low
  | Multi_same
  | Multi_no_bias
  | Uncaptured

let all_categories =
  [
    Unique_biased;
    Unique_unbiased;
    Multi_high;
    Multi_low;
    Multi_same;
    Multi_no_bias;
    Uncaptured;
  ]

let category_name = function
  | Unique_biased -> "unique biased"
  | Unique_unbiased -> "unique unbiased"
  | Multi_high -> "multi high"
  | Multi_low -> "multi low"
  | Multi_same -> "multi same"
  | Multi_no_bias -> "multi no bias"
  | Uncaptured -> "uncaptured"

let biased threshold f = f >= threshold || f <= 1.0 -. threshold

let of_branch ?(bias_threshold = 0.9) fractions =
  match fractions with
  | [] -> Vp_util.Error.failf ~stage:"categorize" "of_branch: no phases"
  | [ f ] -> if biased bias_threshold f then Unique_biased else Unique_unbiased
  | fs ->
    if not (List.exists (biased bias_threshold) fs) then Multi_no_bias
    else
      let swing = List.fold_left max neg_infinity fs -. List.fold_left min infinity fs in
      if swing > 0.7 then Multi_high
      else if swing > 0.4 then Multi_low
      else Multi_same

let per_branch_fractions log =
  let table : (int, float list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (p : Phase_log.phase) ->
      List.iter
        (fun e ->
          let fs = Option.value ~default:[] (Hashtbl.find_opt table e.Snapshot.pc) in
          Hashtbl.replace table e.Snapshot.pc (Snapshot.taken_fraction e :: fs))
        p.Phase_log.representative.Snapshot.branches)
    (Phase_log.phases log);
  table

let classify ?bias_threshold log =
  let table = per_branch_fractions log in
  Hashtbl.fold (fun pc fs acc -> (pc, of_branch ?bias_threshold fs) :: acc) table []
  |> List.sort compare

type weights = (category * float) list

let weighted ?bias_threshold log ~dynamic =
  let categories = classify ?bias_threshold log in
  let category_of = Hashtbl.create 256 in
  List.iter (fun (pc, c) -> Hashtbl.replace category_of pc c) categories;
  let totals = Hashtbl.create 8 in
  let grand = ref 0 in
  Vp_exec.Branch_profile.iter
    (fun ~pc ~executed ~taken:_ ->
      let c =
        Option.value ~default:Uncaptured (Hashtbl.find_opt category_of pc)
      in
      grand := !grand + executed;
      Hashtbl.replace totals c
        (executed + Option.value ~default:0 (Hashtbl.find_opt totals c)))
    dynamic;
  List.map
    (fun c ->
      let n = Option.value ~default:0 (Hashtbl.find_opt totals c) in
      (c, Vp_util.Stats.pct n !grand))
    all_categories

let pp_weights fmt ws =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (c, pct) -> Format.fprintf fmt "%-16s %5.1f%%@," (category_name c) pct)
    ws;
  Format.fprintf fmt "@]"
