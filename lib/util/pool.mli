(** A fixed-size domain pool (hand-rolled on [Domain]/[Mutex]/
    [Condition]) with a deterministic gather.

    With [jobs <= 1] no domains are spawned and [submit] runs the task
    immediately on the calling domain — the reference sequential
    schedule.  With [jobs > 1], [jobs] worker domains drain a FIFO
    queue; tasks may submit continuation tasks, forming a DAG.

    Determinism contract: tasks must be pure up to their own isolated
    state and write results to disjoint slots, so gathered results are
    independent of the schedule.  {!run} and {!map} return results in
    submission order under any [jobs]. *)

type t

type hooks = {
  on_submit : depth:int -> unit;
      (** After a task is enqueued; [depth] is the queue length at
          that instant ([0] in sequential mode). *)
  on_start : domain:int -> depth:int -> unit;
      (** Before a task runs; [domain] is the dense worker index
          [0 .. jobs-1] ([0] in sequential mode). *)
  on_finish : domain:int -> unit;  (** After the task returned. *)
}
(** Scheduler observation points, called on the submitting/worker
    domain {e outside} the pool mutex.  Hooks must not raise and
    must not call back into the pool.  Readings are inherently
    schedule-dependent — consumers (e.g. [Vp_metrics.Sched]) must
    tag them volatile.  [None] hooks cost nothing. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> ?hooks:hooks -> unit -> t
(** Spawn a pool of [jobs] workers (default {!default_jobs}); values
    [<= 1] select the in-caller sequential mode. *)

val jobs : t -> int

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task.  Tasks must capture their own errors — an escaping
    exception is swallowed, never propagated.  May be called from
    within a running task.  Raises [Invalid_argument] after
    {!shutdown}. *)

val wait : t -> unit
(** Block until every submitted task (including tasks submitted by
    tasks) has finished. *)

val shutdown : t -> unit
(** Stop accepting work, drain the queue, and join the workers.
    Idempotent; a no-op in sequential mode. *)

val run : jobs:int -> ?hooks:hooks -> (unit -> 'a) list -> 'a list
(** Run independent thunks on a fresh pool; results in input order.
    If any task raised, re-raises the exception of the earliest failed
    task (by input position) after all tasks finish. *)

val map : jobs:int -> ?hooks:hooks -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f l] is [run ~jobs (List.map (fun x () -> f x) l)]. *)
