(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    every experiment is exactly reproducible.  The generator is
    splitmix64, which has a full 2^64 period and passes BigCrush; it is
    more than adequate for workload synthesis and property tests. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next : t -> int
(** Next raw 62-bit non-negative value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range
    [lo, hi].  Requires [lo <= hi]. *)

val float : t -> float
(** Uniform draw from [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** Derive an independent generator; advances the parent. *)

val stream : t -> int -> t
(** [stream t key] derives an independent generator keyed by [key]
    {e without} advancing [t]: the result depends only on [t]'s
    current state and the key.  This is the splittable-stream entry
    point for work fanned out across domains — deriving stream [k] for
    every cell of a matrix yields the same generators whatever order
    (or schedule) the cells run in, unlike {!split}.  Distinct keys
    give decorrelated streams. *)

val stream_seed : t -> int -> int
(** The non-negative seed [stream t key] embodies — for APIs that take
    a seed rather than a generator. *)
