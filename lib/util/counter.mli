(** Saturating hardware-style counters.

    The Branch Behavior Buffer tracks each branch with a pair of
    fixed-width counters (executed, taken).  The paper requires that on
    saturation the *taken fraction* is preserved, which the classic
    implementation achieves by halving both counters when the executed
    counter would overflow.  This module packages that behaviour. *)

type t
(** A mutable (executed, taken) counter pair of a given bit width. *)

val create : bits:int -> t
(** Fresh pair of [bits]-wide counters, both zero. *)

val reset : t -> unit

val max_value : t -> int
(** Largest representable count: [2^bits - 1]. *)

val record : t -> taken:bool -> unit
(** Record one retirement.  If the executed counter is at its maximum,
    both counters are halved first so the taken fraction survives. *)

val saturating_add : max:int -> int -> int -> int
(** [saturating_add ~max a b] is [a + b] clamped into [[0, max]]:
    negative operands are treated as zero and a sum at or past [max]
    (including one that would wrap the native int) reads [max].  This
    is the one clamped-add primitive every software-side merge path —
    fault-injected branch aliasing, fleet profile aggregation — goes
    through, so counts near the 9-bit cap can never overshoot or
    wrap. *)

val add : t -> executed:int -> taken:int -> unit
(** Merge a whole observed (executed, taken) pair into the counter,
    clamping each component at {!max_value} (no halving: a merge is a
    software combination of already-recorded observations, not a new
    retirement).  The pair invariant [taken <= executed] is preserved
    even when only the executed side clamps. *)

val incr : t -> taken:bool -> unit
(** Saturating single increment: a no-op once the executed counter has
    reached {!max_value}.  Contrast {!record}, which models the
    hardware's halving behaviour — [incr] is the software merge path's
    increment, where an already-saturated count must stay put. *)

val is_saturated : t -> bool
(** The executed counter has reached {!max_value}. *)

val executed : t -> int
val taken : t -> int

val taken_fraction : t -> float
(** [taken / executed]; 0 when nothing was recorded. *)

val halvings : t -> int
(** How many times saturation forced a halving — exposed for tests and
    for estimating true execution magnitude. *)
