type t = {
  max_value : int;
  mutable executed : int;
  mutable taken : int;
  mutable halvings : int;
}

let create ~bits =
  assert (bits > 0 && bits < 62);
  { max_value = (1 lsl bits) - 1; executed = 0; taken = 0; halvings = 0 }

let reset t =
  t.executed <- 0;
  t.taken <- 0;
  t.halvings <- 0

let max_value t = t.max_value

let record t ~taken =
  if t.executed >= t.max_value then begin
    t.executed <- t.executed / 2;
    t.taken <- t.taken / 2;
    t.halvings <- t.halvings + 1
  end;
  t.executed <- t.executed + 1;
  if taken then t.taken <- t.taken + 1

(* Clamped addition shared by every software-side merge path.  The
   sum is computed before clamping, so [a] and [b] near [max] must not
   be able to overflow the native int — counter widths are < 62 bits
   (enforced by [create]), which leaves headroom for any pairwise
   sum. *)
let saturating_add ~max:m a b =
  let a = if a < 0 then 0 else a in
  let b = if b < 0 then 0 else b in
  let s = a + b in
  if s > m || s < 0 then m else s

let is_saturated t = t.executed >= t.max_value

let add t ~executed ~taken =
  t.executed <- saturating_add ~max:t.max_value t.executed executed;
  (* The pair invariant taken <= executed must survive the clamp:
     executed may have hit the cap while taken had headroom left. *)
  t.taken <- min (saturating_add ~max:t.max_value t.taken taken) t.executed

let incr t ~taken =
  if not (is_saturated t) then begin
    t.executed <- t.executed + 1;
    if taken then t.taken <- t.taken + 1
  end

let executed t = t.executed
let taken t = t.taken

let taken_fraction t =
  if t.executed = 0 then 0.0
  else float_of_int t.taken /. float_of_int t.executed

let halvings t = t.halvings
