type t = {
  stage : string;
  what : string;
  pc : int option;
  label : string option;
  workload : string option;
}

exception Error of t

let v ?pc ?label ?workload ~stage fmt =
  Printf.ksprintf (fun what -> { stage; what; pc; label; workload }) fmt

let failf ?pc ?label ?workload ~stage fmt =
  Printf.ksprintf
    (fun what -> raise (Error { stage; what; pc; label; workload }))
    fmt

let in_workload workload f =
  try f () with
  | Error ({ workload = None; _ } as e) ->
    raise (Error { e with workload = Some workload })

let pp ppf e =
  Format.fprintf ppf "%s: %s" e.stage e.what;
  let ctx =
    List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "pc 0x%x") e.pc;
        Option.map (Printf.sprintf "label %s") e.label;
        Option.map (Printf.sprintf "workload %s") e.workload;
      ]
  in
  if ctx <> [] then Format.fprintf ppf " (%s)" (String.concat ", " ctx)

let to_string e = Format.asprintf "%a" pp e
