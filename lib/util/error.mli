(** The pipeline's typed error channel.

    Stages raise {!Error} with a structured payload instead of bare
    [Failure]/[Invalid_argument], so callers (the CLI in particular)
    can report which stage failed, at which pc or label, on which
    workload — and exit cleanly instead of printing a backtrace.

    Programmer-API misuse (bad [Reg.of_int] index, builder DSL abuse,
    [Tabular] row overflow) stays on [Invalid_argument]: those are
    bugs in the calling code, not pipeline failures. *)

type t = {
  stage : string;  (** the failing stage, e.g. ["emulator"], ["emit"] *)
  what : string;  (** human-readable description *)
  pc : int option;  (** faulting address, when known *)
  label : string option;  (** faulting label/symbol, when known *)
  workload : string option;  (** workload context, added by {!in_workload} *)
}

exception Error of t

val v :
  ?pc:int ->
  ?label:string ->
  ?workload:string ->
  stage:string ->
  ('a, unit, string, t) format4 ->
  'a
(** [v ~stage fmt ...] builds a payload without raising — for warnings
    and demotion records that are reported rather than thrown. *)

val failf :
  ?pc:int ->
  ?label:string ->
  ?workload:string ->
  stage:string ->
  ('a, unit, string, 'b) format4 ->
  'a
(** [failf ~stage fmt ...] raises {!Error} with the formatted
    description and the given context fields. *)

val in_workload : string -> (unit -> 'a) -> 'a
(** Run a thunk, stamping any escaping {!Error} that lacks workload
    context with the given workload name. *)

val pp : Format.formatter -> t -> unit
(** [stage: what (pc 0x..., label ..., workload ...)]. *)

val to_string : t -> string
