type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finaliser: mixes the incremented counter into an
   avalanche-quality output word. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  assert (bound > 0);
  next t mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t = Stdlib.float_of_int (next t) /. 4611686018427387904.0

let bool t p = float t < p

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t =
  let seed = next t in
  create ~seed

(* Keyed derivation: a pure function of (parent state, key).  Unlike
   {!split} it does not advance the parent, so sibling streams are
   identical no matter which order — or on which domain — they are
   created.  Two mixing rounds keep nearby keys decorrelated. *)
let stream t key =
  let z =
    Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (key + 1)))
  in
  { state = mix (mix z) }

let stream_seed t key = Int64.to_int (Int64.shift_right_logical (stream t key).state 2)
