(* A hand-rolled domain pool on Domain/Mutex/Condition (OCaml 5).

   Two modes share one interface:

   - [jobs <= 1]: no domains are spawned; [submit] runs the task
     immediately on the calling domain, so a DAG drains depth-first in
     submission order.  This is the reference sequential schedule.
   - [jobs > 1]: [jobs] worker domains pull tasks from a FIFO queue.
     Tasks may [submit] further tasks (DAG continuations); [wait]
     blocks until the transitive closure has drained.

   Determinism is the caller's contract: tasks must write to disjoint
   slots and be pure up to their own isolated state, so the gather
   (e.g. [map], which stores by index) is schedule-independent. *)

type hooks = {
  on_submit : depth:int -> unit;
  on_start : domain:int -> depth:int -> unit;
  on_finish : domain:int -> unit;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  drained : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable pending : int;  (* queued + running *)
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
  hooks : hooks option;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Hooks run on the calling/worker domain, outside the pool mutex,
   and must not raise.  [index] is the dense worker slot (0 in
   sequential mode), not [Domain.self]. *)
let worker t index =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopped do
      Condition.wait t.work_available t.mutex
    done;
    if Queue.is_empty t.queue then (* stopped and drained *)
      Mutex.unlock t.mutex
    else begin
      let task = Queue.pop t.queue in
      let depth = Queue.length t.queue in
      Mutex.unlock t.mutex;
      (match t.hooks with
      | Some h -> h.on_start ~domain:index ~depth
      | None -> ());
      task ();
      (match t.hooks with Some h -> h.on_finish ~domain:index | None -> ());
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.drained;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ?(jobs = default_jobs ()) ?hooks () =
  let t =
    {
      jobs = Stdlib.max 1 jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      drained = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      stopped = false;
      domains = [];
      hooks;
    }
  in
  if t.jobs > 1 then
    t.domains <- List.init t.jobs (fun i -> Domain.spawn (fun () -> worker t i));
  t

let jobs t = t.jobs

let submit t task =
  (* A task must capture its own errors into a result slot; anything
     that escapes is swallowed here so one task can neither kill a
     worker domain nor wedge [wait]. *)
  let guarded () = try task () with _ -> () in
  if t.jobs <= 1 then begin
    match t.hooks with
    | None -> guarded ()
    | Some h ->
      h.on_submit ~depth:0;
      h.on_start ~domain:0 ~depth:0;
      guarded ();
      h.on_finish ~domain:0
  end
  else begin
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    t.pending <- t.pending + 1;
    Queue.push guarded t.queue;
    let depth = Queue.length t.queue in
    Condition.signal t.work_available;
    Mutex.unlock t.mutex;
    match t.hooks with Some h -> h.on_submit ~depth | None -> ()
  end

let wait t =
  if t.jobs > 1 then begin
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.drained t.mutex
    done;
    Mutex.unlock t.mutex
  end

let shutdown t =
  if t.jobs > 1 then begin
    Mutex.lock t.mutex;
    t.stopped <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let run ~jobs ?hooks tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let results : _ option array = Array.make n None in
  let errors : exn option array = Array.make n None in
  let pool = create ~jobs ?hooks () in
  Array.iteri
    (fun i task ->
      submit pool (fun () ->
          match task () with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e))
    tasks;
  wait pool;
  shutdown pool;
  (* Deterministic gather: results in submission order; the earliest
     failed slot's exception is re-raised regardless of schedule. *)
  Array.iter (function Some e -> raise e | None -> ()) errors;
  Array.to_list
    (Array.mapi
       (fun i -> function
         | Some v -> v
         | None -> invalid_arg (Printf.sprintf "Pool.run: task %d lost" i))
       results)

let map ~jobs ?hooks f items = run ~jobs ?hooks (List.map (fun x () -> f x) items)
