test/support/progs.ml: Array List Vp_isa Vp_prog Vp_util
