test/support/gen.ml: Array List Printf Vp_isa Vp_prog Vp_util
