test/support/progs.mli: Vp_prog
