test/support/gen.mli: Vp_prog
