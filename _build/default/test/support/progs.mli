(** Small builder programs shared by the test suites.  Every program's
    entry function leaves its interesting result in the return-value
    register before halting, so tests can check [outcome.result]. *)

val sum_to_n : int -> Vp_prog.Program.t
(** Loop-based sum of 0..n-1. *)

val factorial : int -> Vp_prog.Program.t
(** Self-recursive factorial — exercises call/return, frame handling
    and call-graph recursion detection. *)

val call_chain : int -> Vp_prog.Program.t
(** main -> alpha -> beta -> gamma; gamma adds a constant; the result
    threads back up.  Argument is the value passed in. *)

val spill_heavy : int -> Vp_prog.Program.t
(** Sums [n] values held in more virtual registers than there are
    physical temporaries, forcing stack-slot allocation. *)

val two_phase : iters_per_phase:int -> repeats:int -> Vp_prog.Program.t
(** Alternates between two distinct hot loops (different functions)
    [repeats] times; the canonical phased workload for detector and
    pipeline tests. *)

val biased_branch : iters:int -> bias_mod:int -> Vp_prog.Program.t
(** One loop with a branch taken on multiples of [bias_mod] — handy
    for profile-accuracy checks. *)

val global_rw : unit -> Vp_prog.Program.t
(** Writes then reads initialised global data. *)

val random_arith : seed:int -> Vp_prog.Program.t
(** A randomly generated straight-line arithmetic program over many
    virtual registers; used for differential property tests. *)
