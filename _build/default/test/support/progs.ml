module B = Vp_prog.Builder
module Op = Vp_isa.Op

let sum_to_n n =
  let b = B.create () in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let acc = B.vreg fb in
      let i = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K n) (fun () ->
          B.alu fb Op.Add acc acc (B.V i));
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"

let factorial n =
  let b = B.create () in
  B.func b "fact" ~nargs:1 (fun fb args ->
      let x = args.(0) in
      B.if_ fb (Op.Le, x, B.K 1)
        (fun () ->
          let one = B.vreg fb in
          B.li fb one 1;
          B.ret fb (Some one))
        (fun () ->
          let xm1 = B.vreg fb in
          B.alu fb Op.Sub xm1 x (B.K 1);
          let sub = B.call fb "fact" [ xm1 ] in
          let r = B.vreg fb in
          B.alu fb Op.Mul r x (B.V sub);
          B.ret fb (Some r)));
  B.func b "main" ~nargs:0 (fun fb _ ->
      let arg = B.vreg fb in
      B.li fb arg n;
      let r = B.call fb "fact" [ arg ] in
      B.ret fb (Some r);
      B.halt fb);
  B.program b ~entry:"main"

let call_chain v =
  let b = B.create () in
  B.func b "gamma" ~nargs:1 (fun fb args ->
      let r = B.vreg fb in
      B.alu fb Op.Add r args.(0) (B.K 100);
      B.ret fb (Some r));
  B.func b "beta" ~nargs:1 (fun fb args ->
      let r = B.call fb "gamma" [ args.(0) ] in
      let r2 = B.vreg fb in
      B.alu fb Op.Mul r2 r (B.K 2);
      B.ret fb (Some r2));
  B.func b "alpha" ~nargs:1 (fun fb args ->
      let r = B.call fb "beta" [ args.(0) ] in
      let r2 = B.vreg fb in
      B.alu fb Op.Add r2 r (B.K 1);
      B.ret fb (Some r2));
  B.func b "main" ~nargs:0 (fun fb _ ->
      let x = B.vreg fb in
      B.li fb x v;
      let r = B.call fb "alpha" [ x ] in
      B.ret fb (Some r);
      B.halt fb);
  B.program b ~entry:"main"

let spill_heavy n =
  let b = B.create () in
  B.func b "main" ~nargs:0 (fun fb _ ->
      (* Allocate well past the physical temporary budget. *)
      let vals = List.init 30 (fun i ->
          let v = B.vreg fb in
          B.li fb v (i + 1);
          v)
      in
      let acc = B.vreg fb in
      B.li fb acc 0;
      List.iteri
        (fun i v -> if i < n then B.alu fb Op.Add acc acc (B.V v))
        vals;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"

let two_phase ~iters_per_phase ~repeats =
  let b = B.create () in
  let cell = B.global b ~words:1 in
  B.func b "phase_a" ~nargs:1 (fun fb args ->
      let acc = B.vreg fb in
      let i = B.vreg fb in
      B.mov fb acc args.(0);
      B.for_ fb i ~from:(B.K 0) ~below:(B.K iters_per_phase) (fun () ->
          B.alu fb Op.Add acc acc (B.V i);
          B.alu fb Op.Xor acc acc (B.K 3));
      B.ret fb (Some acc));
  B.func b "phase_b" ~nargs:1 (fun fb args ->
      let acc = B.vreg fb in
      let i = B.vreg fb in
      B.mov fb acc args.(0);
      B.for_ fb i ~from:(B.K 0) ~below:(B.K iters_per_phase) (fun () ->
          B.alu fb Op.Mul acc acc (B.K 3);
          B.alu fb Op.And acc acc (B.K 0xFFFF));
      B.ret fb (Some acc));
  B.func b "main" ~nargs:0 (fun fb _ ->
      let acc = B.vreg fb in
      let r = B.vreg fb in
      B.li fb acc 1;
      B.for_ fb r ~from:(B.K 0) ~below:(B.K repeats) (fun () ->
          let a = B.call fb "phase_a" [ acc ] in
          B.mov fb acc a;
          let c = B.call fb "phase_b" [ acc ] in
          B.mov fb acc c);
      B.store_abs fb acc cell;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"

let biased_branch ~iters ~bias_mod =
  let b = B.create () in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let acc = B.vreg fb in
      let i = B.vreg fb in
      let m = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K iters) (fun () ->
          B.alu fb Op.Rem m i (B.K bias_mod);
          (* Taken-biased when bias_mod is large: the common case jumps
             to the else arm. *)
          B.if_ fb (Op.Eq, m, B.K 0)
            (fun () -> B.alu fb Op.Add acc acc (B.K 10))
            (fun () -> B.alu fb Op.Add acc acc (B.K 1)));
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"

let global_rw () =
  let b = B.create () in
  let src = B.global_init b [ 5; 6; 7 ] in
  let dst = B.global b ~words:3 in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let acc = B.vreg fb in
      let v = B.vreg fb in
      B.li fb acc 0;
      List.iter
        (fun k ->
          B.load_abs fb v (src + k);
          B.alu fb Op.Mul v v (B.K 2);
          B.store_abs fb v (dst + k);
          B.load_abs fb v (dst + k);
          B.alu fb Op.Add acc acc (B.V v))
        [ 0; 1; 2 ];
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"

let random_arith ~seed =
  let rng = Vp_util.Rng.create ~seed in
  let b = B.create () in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let nvals = 8 + Vp_util.Rng.int rng 30 in
      let vals = Array.init nvals (fun i ->
          let v = B.vreg fb in
          B.li fb v (Vp_util.Rng.int_in rng (-100) 100 * (i + 1));
          v)
      in
      let safe_ops = [| Op.Add; Op.Sub; Op.Mul; Op.And; Op.Or; Op.Xor; Op.Slt |] in
      for _ = 1 to 60 do
        let op = safe_ops.(Vp_util.Rng.int rng (Array.length safe_ops)) in
        let d = vals.(Vp_util.Rng.int rng nvals) in
        let s1 = vals.(Vp_util.Rng.int rng nvals) in
        let s2 =
          if Vp_util.Rng.bool rng 0.5 then B.V vals.(Vp_util.Rng.int rng nvals)
          else B.K (Vp_util.Rng.int_in rng (-50) 50)
        in
        B.alu fb op d s1 s2
      done;
      let acc = B.vreg fb in
      B.li fb acc 0;
      Array.iter (fun v -> B.alu fb Op.Xor acc acc (B.V v)) vals;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"
