(* Tests for the textual assembly: instruction syntax, program parsing,
   printer/parser roundtrips on builder programs and workloads, and
   error reporting. *)

module Asm = Vp_prog.Asm
module Program = Vp_prog.Program
module Instr = Vp_isa.Instr
module Emulator = Vp_exec.Emulator
module Progs = Vp_test_support.Progs
module Registry = Vp_workloads.Registry

let parse_ok s =
  match Asm.parse_instr s with
  | Ok i -> i
  | Error e -> Alcotest.failf "parse %S: %s" s e

let roundtrip_instr s =
  Alcotest.(check string) s s (Instr.to_string (parse_ok s))

let test_instr_syntax () =
  List.iter roundtrip_instr
    [
      "add t0, t1, #5";
      "add t0, t1, t2";
      "sub a0, a1, #-3";
      "mul t3, t3, t3";
      "fdiv t5, t6, #16";
      "li t0, #42";
      "li t0, #-42";
      "la t2, some_label";
      "ld t0, 4(sp)";
      "st t1, -2(t0)";
      "beq t0, t1, loop";
      "bge zero, a0, 0x1f";
      "jmp exit";
      "call helper";
      "ret";
      "nop";
      "halt";
    ]

let test_instr_errors () =
  List.iter
    (fun s ->
      match Asm.parse_instr s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [
      "";
      "frobnicate t0";
      "add t0, t1";
      "add x9, t1, #5";
      "li t0, 42";  (* missing # *)
      "ld t0, sp";
      "beq t0, #1, loop";  (* branches compare registers *)
      "ret t0";
    ]

let source =
  {|
; a classic: sum 0..n-1
.data 20
.init 16 7
.func sum
sum$entry:
  li t0, #0
  li t1, #0
sum$head:
  bge t1, a0, sum$done
  add t0, t0, t1
  add t1, t1, #1
  jmp sum$head
sum$done:
  add a0, t0, #0
  ret
.func main
main$entry:
  ld a0, 16(zero)     ; n comes from initialised memory
  call sum
  halt
.entry main
|}

let test_parse_and_run () =
  match Asm.parse_program source with
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Asm.pp_error e)
  | Ok p ->
    Alcotest.(check int) "two functions" 2 (List.length p.Program.funcs);
    Alcotest.(check int) "data break" 20 p.Program.data_break;
    let o = Emulator.run (Program.layout p) in
    Alcotest.(check bool) "halted" true o.Emulator.halted;
    Alcotest.(check int) "sum 0..6" 21 o.Emulator.result

let test_program_roundtrip_handwritten () =
  match Asm.parse_program source with
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Asm.pp_error e)
  | Ok p -> (
    let printed = Asm.print_program p in
    match Asm.parse_program printed with
    | Error e -> Alcotest.failf "reparse: %s" (Format.asprintf "%a" Asm.pp_error e)
    | Ok p' -> Alcotest.(check bool) "structurally equal" true (p = p'))

let roundtrip_program name p =
  let printed = Asm.print_program p in
  match Asm.parse_program printed with
  | Error e ->
    Alcotest.failf "%s reparse: %s" name (Format.asprintf "%a" Asm.pp_error e)
  | Ok p' ->
    Alcotest.(check bool) (name ^ " roundtrips") true (p = p');
    (* And the behaviour is identical. *)
    let a = Emulator.run ~fuel:2_000_000 (Program.layout p) in
    let b = Emulator.run ~fuel:2_000_000 (Program.layout p') in
    Alcotest.(check int) (name ^ " same checksum") a.Emulator.checksum b.Emulator.checksum

let test_builder_roundtrips () =
  roundtrip_program "factorial" (Progs.factorial 8);
  roundtrip_program "two_phase" (Progs.two_phase ~iters_per_phase:50 ~repeats:2);
  roundtrip_program "spill_heavy" (Progs.spill_heavy 30);
  roundtrip_program "global_rw" (Progs.global_rw ())

let test_workload_roundtrips () =
  (* The full Table 1 programs, structural roundtrip only (no run). *)
  List.iter
    (fun (bench, input) ->
      let w = Option.get (Registry.find ~bench ~input) in
      let p = w.Registry.program () in
      let printed = Asm.print_program p in
      match Asm.parse_program printed with
      | Error e ->
        Alcotest.failf "%s: %s" (Registry.name w) (Format.asprintf "%a" Asm.pp_error e)
      | Ok p' ->
        Alcotest.(check bool) (Registry.name w ^ " roundtrips") true (p = p'))
    [ ("134.perl", "B"); ("181.mcf", "A"); ("130.li", "B") ]

let test_auto_split () =
  (* Code after a control instruction lands in an auto-labelled block. *)
  let src = ".func f\nf$b:\n  jmp f$b\n  ret\n.entry f\n" in
  match Asm.parse_program src with
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Asm.pp_error e)
  | Ok p ->
    let f = List.hd p.Program.funcs in
    Alcotest.(check int) "two blocks" 2 (List.length (Vp_prog.Func.blocks f))

let test_program_errors () =
  let expect_error src fragment =
    match Asm.parse_program src with
    | Ok _ -> Alcotest.failf "should fail: %s" fragment
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S (got %S)" fragment e.Asm.message)
        true
        (let n = String.length fragment and h = String.length e.Asm.message in
         let rec go i = i + n <= h && (String.sub e.Asm.message i n = fragment || go (i + 1)) in
         go 0)
  in
  expect_error ".func f\nf$b:\n  ret\n" "missing .entry";
  expect_error "  add t0, t1, #2\n.entry x" "outside any block";
  expect_error ".func f\nf$b:\n  bogus t1\n.entry f" "cannot parse";
  expect_error ".func f\nf$b:\n  jmp nowhere\n.entry f\n.func g" "no blocks"

(* Property: random builder programs roundtrip. *)
let prop_random_roundtrip =
  QCheck.Test.make ~name:"random programs roundtrip through assembly" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let p = Progs.random_arith ~seed in
      match Asm.parse_program (Asm.print_program p) with
      | Ok p' -> p = p'
      | Error _ -> false)

let () =
  Alcotest.run "vp_asm"
    [
      ( "instr",
        [
          Alcotest.test_case "syntax roundtrip" `Quick test_instr_syntax;
          Alcotest.test_case "errors" `Quick test_instr_errors;
        ] );
      ( "program",
        [
          Alcotest.test_case "parse and run" `Quick test_parse_and_run;
          Alcotest.test_case "handwritten roundtrip" `Quick
            test_program_roundtrip_handwritten;
          Alcotest.test_case "builder roundtrips" `Quick test_builder_roundtrips;
          Alcotest.test_case "workload roundtrips" `Quick test_workload_roundtrips;
          Alcotest.test_case "auto split" `Quick test_auto_split;
          Alcotest.test_case "errors" `Quick test_program_errors;
          QCheck_alcotest.to_alcotest prop_random_roundtrip;
        ] );
    ]
