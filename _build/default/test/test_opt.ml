(* Tests for vp_opt: weight propagation, layout (branch flipping and
   hot chaining), and the list scheduler's dependence preservation. *)

module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Reg = Vp_isa.Reg
module Pkg = Vp_package.Pkg
module Weights = Vp_opt.Weights
module Layout = Vp_opt.Layout_opt
module Schedule = Vp_opt.Schedule
module Opt = Vp_opt.Opt
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator
module Progs = Vp_test_support.Progs

let t0 = Reg.of_int 8
let t1 = Reg.of_int 9
let t2 = Reg.of_int 10
let t3 = Reg.of_int 11

(* A small hand-built package: entry -> loop head -> body -> head,
   with a biased branch exiting to an exit block. *)
let block ?(orig = -1) ?(weight = 0) ?taken_prob ?(body = []) ?(exit_ = false)
    ?(live = []) label term =
  {
    Pkg.label;
    orig_addr = orig;
    context = [];
    body;
    term;
    weight;
    taken_prob;
    live_out = live;
    is_exit = exit_;
  }

let loop_package =
  {
    Pkg.id = "pkg$test";
    region_id = 0;
    root = "f";
    blocks =
      [
        block "entry" ~orig:0 (Pkg.Fall "head");
        block "head" ~orig:1 ~taken_prob:0.02
          (Pkg.Branch
             { cond = Op.Ge; src1 = t0; src2 = t1; taken = "exit0"; fall = "body" });
        block "body" ~orig:2
          ~body:[ Instr.Alu { op = Op.Add; dst = t2; src1 = t2; src2 = Instr.Reg t0 } ]
          (Pkg.Goto "head");
        block "exit0" ~exit_:true ~live:[ t2 ] (Pkg.Exit_jump 99);
      ];
    entries = [ ("entry", 0) ];
    sites =
      [
        {
          Pkg.orig_pc = 1;
          site_context = [];
          block_label = "head";
          bias = Pkg.F;
          cold_exit = Some "exit0";
          cold_target = Some 99;
        };
      ];
  }

let test_weights_entry_injection () =
  let w = Weights.compute loop_package in
  Alcotest.(check bool) "entry has weight" true (Weights.block w "entry" >= 1.0);
  (* The loop amplifies: head weight far above entry. *)
  Alcotest.(check bool) "loop amplified" true (Weights.block w "head" > 10.0);
  Alcotest.(check bool) "body close to head" true
    (Weights.block w "body" > 0.9 *. Weights.block w "head" *. 0.9)

let test_weights_arc_split () =
  let w = Weights.compute loop_package in
  let head = Weights.block w "head" in
  let to_exit = Weights.arc w "head" "exit0" in
  let to_body = Weights.arc w "head" "body" in
  Alcotest.(check (float 1e-6)) "split sums to head" head (to_exit +. to_body);
  Alcotest.(check bool) "cold exit lighter" true (to_exit < to_body)

let test_weights_unknown_label () =
  let w = Weights.compute loop_package in
  Alcotest.(check (float 1e-9)) "unknown is zero" 0.0 (Weights.block w "ghost")

let test_flip_branches () =
  let biased =
    {
      loop_package with
      Pkg.blocks =
        List.map
          (fun (b : Pkg.block) ->
            if b.Pkg.label = "head" then { b with Pkg.taken_prob = Some 0.9 } else b)
          loop_package.Pkg.blocks;
    }
  in
  let flipped = Layout.flip_branches biased in
  let head = Option.get (Pkg.find_block flipped "head") in
  (match head.Pkg.term with
  | Pkg.Branch { cond; taken; fall; _ } ->
    Alcotest.(check string) "condition negated" "lt" (Op.cond_name cond);
    Alcotest.(check string) "taken now body" "body" taken;
    Alcotest.(check string) "fall now exit" "exit0" fall
  | _ -> Alcotest.fail "head lost its branch");
  match head.Pkg.taken_prob with
  | Some p -> Alcotest.(check (float 1e-9)) "probability flipped" 0.1 p
  | None -> Alcotest.fail "taken_prob dropped"

let test_flip_leaves_unbiased () =
  let flipped = Layout.flip_branches loop_package in
  let head = Option.get (Pkg.find_block flipped "head") in
  match head.Pkg.term with
  | Pkg.Branch { taken; _ } -> Alcotest.(check string) "unchanged" "exit0" taken
  | _ -> Alcotest.fail "branch lost"

let test_layout_exits_sink () =
  let ordered = Layout.run loop_package in
  let last = List.nth ordered.Pkg.blocks (List.length ordered.Pkg.blocks - 1) in
  Alcotest.(check bool) "exit block last" true last.Pkg.is_exit;
  (* Same blocks, just reordered. *)
  Alcotest.(check int) "same count" (List.length loop_package.Pkg.blocks)
    (List.length ordered.Pkg.blocks)

let test_layout_hot_chain_adjacency () =
  let ordered = Layout.run loop_package in
  let labels = List.map (fun (b : Pkg.block) -> b.Pkg.label) ordered.Pkg.blocks in
  (* After flipping (head is ft-biased already), body should directly
     follow head so the hot arc falls through. *)
  let rec adjacent = function
    | "head" :: next :: _ -> next = "body"
    | _ :: rest -> adjacent rest
    | [] -> false
  in
  Alcotest.(check bool) "body follows head" true (adjacent labels)

(* --- scheduler --- *)

(* Reference evaluator for straight-line code over registers and a
   tiny memory. *)
let eval instrs =
  let regs = Array.make Reg.count 0 in
  Array.iteri (fun i _ -> regs.(i) <- i * 17) regs;
  regs.(0) <- 0;
  let mem = Array.make 64 5 in
  List.iter
    (fun i ->
      match i with
      | Instr.Alu { op; dst; src1; src2 } ->
        let b = match src2 with Instr.Reg r -> regs.(Reg.to_int r) | Instr.Imm n -> n in
        if Reg.to_int dst <> 0 then
          regs.(Reg.to_int dst) <- Op.eval_alu op regs.(Reg.to_int src1) b
      | Instr.Li { dst; imm } -> if Reg.to_int dst <> 0 then regs.(Reg.to_int dst) <- imm
      | Instr.Load { dst; base; offset } ->
        if Reg.to_int dst <> 0 then
          regs.(Reg.to_int dst) <- mem.((regs.(Reg.to_int base) + offset) land 63)
      | Instr.Store { src; base; offset } ->
        mem.((regs.(Reg.to_int base) + offset) land 63) <- regs.(Reg.to_int src)
      | _ -> invalid_arg "eval: control instruction")
    instrs;
  (Array.to_list regs, Array.to_list mem)

let random_straightline rng len =
  let module R = Vp_util.Rng in
  List.init len (fun _ ->
      let reg () = Reg.of_int (8 + R.int rng 8) in
      match R.int rng 5 with
      | 0 -> Instr.Li { dst = reg (); imm = R.int_in rng (-50) 50 }
      | 1 | 2 ->
        let ops = [| Op.Add; Op.Sub; Op.Mul; Op.Xor; Op.And; Op.Or |] in
        Instr.Alu
          {
            op = ops.(R.int rng 6);
            dst = reg ();
            src1 = reg ();
            src2 = (if R.bool rng 0.5 then Instr.Reg (reg ()) else Instr.Imm (R.int rng 20));
          }
      | 3 -> Instr.Load { dst = reg (); base = Reg.zero; offset = R.int rng 60 }
      | _ -> Instr.Store { src = reg (); base = Reg.zero; offset = R.int rng 60 })

let prop_schedule_preserves_semantics =
  QCheck.Test.make ~name:"scheduling preserves straight-line semantics" ~count:200
    QCheck.(pair (int_range 0 100_000) (int_range 0 40))
    (fun (seed, len) ->
      let rng = Vp_util.Rng.create ~seed in
      let body = random_straightline rng len in
      let scheduled = Schedule.schedule_body body in
      List.length scheduled = List.length body && eval body = eval scheduled)

let prop_schedule_is_permutation =
  QCheck.Test.make ~name:"schedule is a permutation" ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Vp_util.Rng.create ~seed in
      let body = random_straightline rng 30 in
      let scheduled = Schedule.schedule_body body in
      List.sort compare (List.map Instr.to_string body)
      = List.sort compare (List.map Instr.to_string scheduled))

let test_schedule_hides_latency () =
  (* Two independent multiply chains interleave; in program order they
     are serialised one after the other. *)
  let chain dst =
    List.init 4 (fun _ ->
        Instr.Alu { op = Op.Mul; dst; src1 = dst; src2 = Instr.Imm 3 })
  in
  let body = chain t0 @ chain t1 in
  let before = Schedule.estimate_cycles body in
  let after = Schedule.estimate_cycles (Schedule.schedule_body body) in
  Alcotest.(check bool)
    (Printf.sprintf "compaction (%d -> %d)" before after)
    true (after <= before)

let test_schedule_store_load_order () =
  let body =
    [
      Instr.Li { dst = t0; imm = 42 };
      Instr.Store { src = t0; base = Reg.zero; offset = 7 };
      Instr.Load { dst = t1; base = Reg.zero; offset = 7 };
      Instr.Li { dst = t3; imm = 9 };
      Instr.Store { src = t3; base = Reg.zero; offset = 7 };
    ]
  in
  let scheduled = Schedule.schedule_body body in
  Alcotest.(check bool) "load result correct" true (eval body = eval scheduled)

(* --- exit sinking --- *)

module Sink = Vp_opt.Sink

(* A block computing two values: one feeds the branch (kept), one is
   live only across the exit (sunk). *)
let sink_package extra_body exit_live =
  {
    Pkg.id = "pkg$sink";
    region_id = 0;
    root = "f";
    blocks =
      [
        block "b" ~orig:0
          ~body:
            (extra_body
            @ [ Instr.Alu { op = Op.Add; dst = t3; src1 = t0; src2 = Instr.Imm 1 } ])
          (Pkg.Branch
             { cond = Op.Ge; src1 = t3; src2 = t0; taken = "ex"; fall = "next" });
        block "next" ~orig:5 Pkg.Return;
        block "ex" ~exit_:true ~live:exit_live (Pkg.Exit_jump 50);
      ];
    entries = [ ("b", 0) ];
    sites = [];
  }

let body_of p label = (Option.get (Pkg.find_block p label)).Pkg.body

let test_sink_moves_exit_only_value () =
  let p = sink_package [ Instr.Li { dst = t2; imm = 42 } ] [ t2 ] in
  let p', stats = Sink.run p in
  Alcotest.(check int) "one sunk" 1 stats.Sink.sunk;
  Alcotest.(check int) "none deleted" 0 stats.Sink.deleted;
  Alcotest.(check int) "hot body shrank" 1 (List.length (body_of p' "b"));
  (match body_of p' "ex" with
  | [ Instr.Li { imm = 42; _ } ] -> ()
  | _ -> Alcotest.fail "li not rematerialised at exit");
  (* The branch input stays. *)
  match body_of p' "b" with
  | [ Instr.Alu _ ] -> ()
  | _ -> Alcotest.fail "branch producer disturbed"

let test_sink_deletes_fully_dead () =
  let p = sink_package [ Instr.Li { dst = t2; imm = 7 } ] [] in
  let _, stats = Sink.run p in
  Alcotest.(check int) "deleted" 1 stats.Sink.deleted;
  Alcotest.(check int) "not sunk" 0 stats.Sink.sunk

let test_sink_dependency_chain () =
  let p =
    sink_package
      [
        Instr.Li { dst = t2; imm = 5 };
        Instr.Alu { op = Op.Mul; dst = t1; src1 = t2; src2 = Instr.Imm 3 };
      ]
      [ t1 ]
  in
  let p', stats = Sink.run p in
  Alcotest.(check int) "both sunk" 2 stats.Sink.sunk;
  match body_of p' "ex" with
  | [ Instr.Li _; Instr.Alu _ ] -> ()
  | _ -> Alcotest.fail "chain order lost at exit"

let test_sink_keeps_internally_live () =
  (* t2 is also consumed on the internal path (folded into the result
     register before a halt): it must not sink. *)
  let base = sink_package [ Instr.Li { dst = t2; imm = 9 } ] [ t2 ] in
  let p =
    {
      base with
      Pkg.blocks =
        List.map
          (fun (b : Pkg.block) ->
            if b.Pkg.label = "next" then
              {
                b with
                Pkg.body =
                  [
                    Instr.Alu
                      { op = Op.Add; dst = Reg.ret_value; src1 = t2; src2 = Instr.Imm 0 };
                  ];
                term = Pkg.Stop;
              }
            else b)
          base.Pkg.blocks;
    }
  in
  let _, stats = Sink.run p in
  Alcotest.(check int) "nothing sunk" 0 stats.Sink.sunk;
  Alcotest.(check int) "nothing deleted" 0 stats.Sink.deleted

let test_sink_end_to_end_equivalence () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let d = Vp_hsd.Detector.create ~config:Vp_hsd.Config.tiny () in
  let orig =
    Emulator.run
      ~on_branch:(fun ~pc ~taken -> Vp_hsd.Detector.on_branch d ~pc ~taken)
      img
  in
  let log = Vp_phase.Phase_log.build (Vp_hsd.Detector.snapshots d) in
  let pkgs =
    List.concat_map
      (fun (p : Vp_phase.Phase_log.phase) ->
        let region =
          Vp_region.Identify.identify img p.Vp_phase.Phase_log.representative
        in
        Vp_package.Build.build region
          ~prefix:(Printf.sprintf "pkg$p%d" p.Vp_phase.Phase_log.id))
      (Vp_phase.Phase_log.phases log)
  in
  let transform ~protected p = Opt.transform ~config:Opt.with_sinking ~protected p in
  let result = Vp_package.Emit.emit ~transform img pkgs in
  let rewritten = Emulator.run result.Vp_package.Emit.image in
  Alcotest.(check int) "result" orig.Emulator.result rewritten.Emulator.result;
  Alcotest.(check int) "checksum" orig.Emulator.checksum rewritten.Emulator.checksum

(* --- superblock formation --- *)

module Superblock = Vp_opt.Superblock

let chain_package =
  {
    Pkg.id = "pkg$chain";
    region_id = 0;
    root = "f";
    blocks =
      [
        block "a" ~orig:0 ~body:[ Instr.Li { dst = t0; imm = 1 } ] (Pkg.Goto "b");
        block "b" ~orig:2 ~body:[ Instr.Li { dst = t1; imm = 2 } ] (Pkg.Fall "c");
        block "c" ~orig:4
          ~body:[ Instr.Alu { op = Op.Add; dst = t2; src1 = t0; src2 = Instr.Reg t1 } ]
          Pkg.Return;
      ];
    entries = [ ("a", 0) ];
    sites = [];
  }

let test_superblock_merges_chain () =
  let p, stats = Superblock.run chain_package in
  Alcotest.(check int) "two merges" 2 stats.Superblock.merged;
  Alcotest.(check int) "single block" 1 (List.length p.Pkg.blocks);
  let b = List.hd p.Pkg.blocks in
  Alcotest.(check string) "entry label survives" "a" b.Pkg.label;
  Alcotest.(check int) "bodies concatenated" 3 (List.length b.Pkg.body);
  match b.Pkg.term with
  | Pkg.Return -> ()
  | _ -> Alcotest.fail "terminator not inherited"

let test_superblock_respects_protected () =
  let p, stats = Superblock.run ~protected:[ "b" ] chain_package in
  Alcotest.(check int) "only c merged" 1 stats.Superblock.merged;
  Alcotest.(check int) "two blocks" 2 (List.length p.Pkg.blocks)

let test_superblock_no_merge_multiple_preds () =
  (* Two blocks jump to the same target: no merge. *)
  let p =
    {
      chain_package with
      Pkg.blocks =
        [
          block "a" ~orig:0
            (Pkg.Branch
               { cond = Op.Eq; src1 = t0; src2 = t1; taken = "c"; fall = "b" });
          block "b" ~orig:2 (Pkg.Goto "c");
          block "c" ~orig:4 Pkg.Return;
        ];
    }
  in
  let _, stats = Superblock.run p in
  Alcotest.(check int) "no merges" 0 stats.Superblock.merged

let hoist_package ~taken_live =
  (* a branches to exit (live set configurable) or falls into b, whose
     prefix computes into t2/t3. *)
  {
    Pkg.id = "pkg$hoist";
    region_id = 0;
    root = "f";
    blocks =
      [
        block "a" ~orig:0
          ~body:[ Instr.Li { dst = t0; imm = 3 } ]
          (Pkg.Branch
             { cond = Op.Ge; src1 = t0; src2 = t1; taken = "ex"; fall = "b" });
        block "b" ~orig:3
          ~body:
            [
              Instr.Li { dst = t2; imm = 9 };
              Instr.Alu { op = Op.Mul; dst = t3; src1 = t2; src2 = Instr.Imm 7 };
              Instr.Store { src = t3; base = Reg.zero; offset = 5 };
            ]
          Pkg.Return;
        block "ex" ~exit_:true ~live:taken_live (Pkg.Exit_jump 50);
      ];
    entries = [ ("a", 0) ];
    sites = [];
  }

let test_superblock_hoists_speculatively () =
  let p, stats = Superblock.run (hoist_package ~taken_live:[ t1 ]) in
  Alcotest.(check int) "two hoisted" 2 stats.Superblock.hoisted;
  let a = Option.get (Pkg.find_block p "a") in
  let b = Option.get (Pkg.find_block p "b") in
  Alcotest.(check int) "a grew" 3 (List.length a.Pkg.body);
  (* The store stays put: not pure. *)
  Alcotest.(check int) "b keeps the store" 1 (List.length b.Pkg.body)

let test_superblock_hoist_blocked_by_taken_liveness () =
  (* t2 live on the taken path: the prefix must not be speculated. *)
  let p, stats = Superblock.run (hoist_package ~taken_live:[ t2 ]) in
  Alcotest.(check int) "nothing hoisted" 0 stats.Superblock.hoisted;
  let a = Option.get (Pkg.find_block p "a") in
  Alcotest.(check int) "a unchanged" 1 (List.length a.Pkg.body)

let test_superblock_hoist_blocked_by_branch_sources () =
  (* The branch reads t2: a prefix defining t2 cannot move above it. *)
  let base = hoist_package ~taken_live:[] in
  let p =
    {
      base with
      Pkg.blocks =
        List.map
          (fun (b : Pkg.block) ->
            if b.Pkg.label = "a" then
              {
                b with
                Pkg.term =
                  Pkg.Branch
                    { cond = Op.Ge; src1 = t2; src2 = t1; taken = "ex"; fall = "b" };
              }
            else b)
          base.Pkg.blocks;
    }
  in
  let _, stats = Superblock.run p in
  Alcotest.(check int) "t2 def not hoisted" 0 stats.Superblock.hoisted

let test_opt_transform_end_to_end_equivalence () =
  (* The whole pipeline with aggressive optimization must compute the
     same results as with no optimization at all. *)
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let with_config opt_config =
    let d = Vp_hsd.Detector.create ~config:Vp_hsd.Config.tiny () in
    let o = Emulator.run ~on_branch:(fun ~pc ~taken -> Vp_hsd.Detector.on_branch d ~pc ~taken) img in
    let log = Vp_phase.Phase_log.build (Vp_hsd.Detector.snapshots d) in
    let pkgs =
      List.concat_map
        (fun (p : Vp_phase.Phase_log.phase) ->
          let region = Vp_region.Identify.identify img p.Vp_phase.Phase_log.representative in
          Vp_package.Build.build region
            ~prefix:(Printf.sprintf "pkg$p%d" p.Vp_phase.Phase_log.id))
        (Vp_phase.Phase_log.phases log)
    in
    let transform ~protected p = Opt.transform ~config:opt_config ~protected p in
    let result = Vp_package.Emit.emit ~transform img pkgs in
    (o, Emulator.run result.Vp_package.Emit.image)
  in
  let orig, optimized = with_config Opt.default in
  let _, plain = with_config Opt.none in
  Alcotest.(check int) "optimized result" orig.Emulator.result optimized.Emulator.result;
  Alcotest.(check int) "optimized checksum" orig.Emulator.checksum optimized.Emulator.checksum;
  Alcotest.(check int) "plain checksum" orig.Emulator.checksum plain.Emulator.checksum

let () =
  Alcotest.run "vp_opt"
    [
      ( "weights",
        [
          Alcotest.test_case "entry injection" `Quick test_weights_entry_injection;
          Alcotest.test_case "arc split" `Quick test_weights_arc_split;
          Alcotest.test_case "unknown label" `Quick test_weights_unknown_label;
        ] );
      ( "layout",
        [
          Alcotest.test_case "flip branches" `Quick test_flip_branches;
          Alcotest.test_case "flip leaves unbiased" `Quick test_flip_leaves_unbiased;
          Alcotest.test_case "exits sink" `Quick test_layout_exits_sink;
          Alcotest.test_case "hot chain adjacency" `Quick test_layout_hot_chain_adjacency;
        ] );
      ( "schedule",
        [
          QCheck_alcotest.to_alcotest prop_schedule_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_schedule_is_permutation;
          Alcotest.test_case "hides latency" `Quick test_schedule_hides_latency;
          Alcotest.test_case "store/load order" `Quick test_schedule_store_load_order;
          Alcotest.test_case "end-to-end equivalence" `Quick
            test_opt_transform_end_to_end_equivalence;
        ] );
      ( "superblock",
        [
          Alcotest.test_case "merges chains" `Quick test_superblock_merges_chain;
          Alcotest.test_case "respects protected" `Quick test_superblock_respects_protected;
          Alcotest.test_case "multiple preds" `Quick test_superblock_no_merge_multiple_preds;
          Alcotest.test_case "speculative hoist" `Quick test_superblock_hoists_speculatively;
          Alcotest.test_case "hoist vs taken liveness" `Quick
            test_superblock_hoist_blocked_by_taken_liveness;
          Alcotest.test_case "hoist vs branch sources" `Quick
            test_superblock_hoist_blocked_by_branch_sources;
        ] );
      ( "sink",
        [
          Alcotest.test_case "moves exit-only value" `Quick test_sink_moves_exit_only_value;
          Alcotest.test_case "deletes dead" `Quick test_sink_deletes_fully_dead;
          Alcotest.test_case "dependency chain" `Quick test_sink_dependency_chain;
          Alcotest.test_case "keeps internally live" `Quick test_sink_keeps_internally_live;
          Alcotest.test_case "end-to-end equivalence" `Quick test_sink_end_to_end_equivalence;
        ] );
    ]
