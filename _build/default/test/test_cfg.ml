(* Tests for vp_cfg: CFG recovery from images, dominators, natural
   loops, liveness and the call graph. *)

module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Reg = Vp_isa.Reg
module Program = Vp_prog.Program
module Image = Vp_prog.Image
module Cfg = Vp_cfg.Cfg
module Dom = Vp_cfg.Dom
module Loops = Vp_cfg.Loops
module Liveness = Vp_cfg.Liveness
module Callgraph = Vp_cfg.Callgraph
module Progs = Vp_test_support.Progs
module B = Vp_prog.Builder

let cfg_of p name =
  let img = Program.layout p in
  let sym = Option.get (Image.find_sym img name) in
  Cfg.recover img sym

let test_recover_loop_shape () =
  let cfg = cfg_of (Progs.sum_to_n 10) "main" in
  (* A for-loop yields at least: prologue, init, head, body, inc, exit
     chain, epilogue. *)
  Alcotest.(check bool) "several blocks" true (Cfg.num_blocks cfg >= 5);
  (* Exactly one conditional branch: the loop test. *)
  let branches =
    List.init (Cfg.num_blocks cfg) (fun b -> Cfg.branch_addr cfg b)
    |> List.filter_map Fun.id
  in
  Alcotest.(check int) "one cond branch" 1 (List.length branches);
  (* There must be a back edge: the loop. *)
  Alcotest.(check bool) "back edge" true (Cfg.back_edges cfg <> [])

let test_recover_block_partition () =
  let cfg = cfg_of (Progs.sum_to_n 10) "main" in
  let sym = Cfg.sym cfg in
  (* Blocks tile the function exactly. *)
  let total = List.init (Cfg.num_blocks cfg) (Cfg.len cfg) |> List.fold_left ( + ) 0 in
  Alcotest.(check int) "blocks tile range" sym.Image.len total;
  for b = 0 to Cfg.num_blocks cfg - 1 do
    (* At most one control instruction, and only at the end. *)
    let is = Cfg.instrs cfg b in
    List.iteri
      (fun i ins ->
        if i < List.length is - 1 then
          Alcotest.(check bool) "control only last" false (Instr.is_control ins))
      is
  done

let test_block_at_lookup () =
  let cfg = cfg_of (Progs.sum_to_n 10) "main" in
  let sym = Cfg.sym cfg in
  for addr = sym.Image.start to sym.Image.start + sym.Image.len - 1 do
    match Cfg.block_at cfg addr with
    | Some b ->
      Alcotest.(check bool) "addr within block" true
        (addr >= Cfg.start cfg b && addr < Cfg.start cfg b + Cfg.len cfg b)
    | None -> Alcotest.fail "address not covered"
  done;
  Alcotest.(check (option int)) "outside range" None
    (Cfg.block_at cfg (sym.Image.start + sym.Image.len))

let test_arcs_consistency () =
  let cfg = cfg_of (Progs.two_phase ~iters_per_phase:5 ~repeats:2) "main" in
  (* Every succ arc appears as a pred arc of its destination. *)
  List.iter
    (fun (a : Cfg.arc) ->
      Alcotest.(check bool) "succ has matching pred" true
        (List.exists (fun (p : Cfg.arc) -> p = a) (Cfg.preds cfg a.Cfg.dst)))
    (Cfg.arcs cfg);
  (* Conditional branch blocks have exactly two successors (taken +
     fallthrough) when both targets are intra-function. *)
  for b = 0 to Cfg.num_blocks cfg - 1 do
    match Cfg.terminator cfg b with
    | Some (Instr.Br _) ->
      Alcotest.(check int) "br has two succs" 2 (List.length (Cfg.succs cfg b))
    | Some (Instr.Jmp _) ->
      Alcotest.(check int) "jmp has one succ" 1 (List.length (Cfg.succs cfg b))
    | _ -> ()
  done

let test_call_sites () =
  let cfg = cfg_of (Progs.call_chain 1) "beta" in
  let img = Cfg.image cfg in
  let sites = Cfg.call_sites cfg in
  Alcotest.(check int) "one call" 1 (List.length sites);
  let _, callee = List.hd sites in
  match Image.sym_at img callee with
  | Some s -> Alcotest.(check string) "calls gamma" "gamma" s.Image.name
  | None -> Alcotest.fail "callee not found"

let test_dominators_linear () =
  let cfg = cfg_of (Progs.call_chain 1) "gamma" in
  let dom = Dom.compute cfg in
  (* Straight-line function: every block dominated by entry. *)
  for b = 0 to Cfg.num_blocks cfg - 1 do
    if Dom.reachable dom b then
      Alcotest.(check bool) "entry dominates" true (Dom.dominates dom 0 b)
  done;
  Alcotest.(check (option int)) "entry idom" None (Dom.idom dom 0)

let test_dominators_loop () =
  let cfg = cfg_of (Progs.sum_to_n 10) "main" in
  let dom = Dom.compute cfg in
  let back = Cfg.back_edges cfg in
  List.iter
    (fun (src, dst) ->
      Alcotest.(check bool) "loop header dominates latch" true (Dom.dominates dom dst src))
    back

let test_natural_loops () =
  let cfg = cfg_of (Progs.sum_to_n 10) "main" in
  let loops = Loops.compute cfg in
  Alcotest.(check int) "one loop" 1 (List.length (Loops.loops loops));
  let l = List.hd (Loops.loops loops) in
  Alcotest.(check bool) "body nonempty" true (List.length l.Loops.body >= 2);
  Alcotest.(check bool) "header in body" true (List.mem l.Loops.header l.Loops.body);
  (* Depth is 1 inside, 0 at entry. *)
  Alcotest.(check int) "entry depth" 0 (Loops.depth loops 0);
  List.iter
    (fun b -> Alcotest.(check bool) "body depth >= 1" true (Loops.depth loops b >= 1))
    l.Loops.body

let test_nested_loops_depth () =
  let b = B.create () in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let i = B.vreg fb in
      let j = B.vreg fb in
      let acc = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K 10) (fun () ->
          B.for_ fb j ~from:(B.K 0) ~below:(B.K 10) (fun () ->
              B.alu fb Op.Add acc acc (B.V j)));
      B.ret fb (Some acc);
      B.halt fb);
  let cfg = cfg_of (B.program b ~entry:"main") "main" in
  let loops = Loops.compute cfg in
  Alcotest.(check int) "two loops" 2 (List.length (Loops.loops loops));
  let max_depth =
    List.init (Cfg.num_blocks cfg) (Loops.depth loops) |> List.fold_left max 0
  in
  Alcotest.(check int) "max depth two" 2 max_depth

let test_liveness_straightline () =
  let cfg = cfg_of (Progs.call_chain 1) "gamma" in
  let live = Liveness.compute cfg in
  (* sp is live everywhere in a framed function. *)
  Alcotest.(check bool) "sp live at entry" true (List.mem Reg.sp (Liveness.live_in live 0))

let test_liveness_arg_flows_to_use () =
  (* gamma uses its argument: a0 must be live-in at the prologue. *)
  let cfg = cfg_of (Progs.call_chain 1) "gamma" in
  let live = Liveness.compute cfg in
  Alcotest.(check bool) "a0 live at entry" true
    (List.mem (Reg.arg 0) (Liveness.live_in live 0))

let test_liveness_dead_value () =
  (* A register defined and never used afterwards is not live-out of
     its defining block. *)
  let b = B.create () in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let dead = B.vreg fb in
      let live_v = B.vreg fb in
      B.li fb dead 42;
      B.li fb live_v 1;
      B.ret fb (Some live_v);
      B.halt fb);
  let cfg = cfg_of (B.program b ~entry:"main") "main" in
  let live = Liveness.compute cfg in
  (* Find the block containing the li of 42; the dead temp (t0=r8)
     must not be live at function exit blocks.  We check the weaker,
     robust property: r8 is not live-in at the epilogue. *)
  let epilogue = Cfg.num_blocks cfg - 1 in
  Alcotest.(check bool) "dead temp not live at epilogue" true
    (not (List.mem (Reg.of_int 8) (Liveness.live_in live epilogue)))

let test_live_across_arc () =
  let cfg = cfg_of (Progs.sum_to_n 10) "main" in
  let live = Liveness.compute cfg in
  List.iter
    (fun (a : Cfg.arc) ->
      Alcotest.(check (list int)) "live across = live-in of dst"
        (List.map Reg.to_int (Liveness.live_in live a.Cfg.dst))
        (List.map Reg.to_int (Liveness.live_across live a)))
    (Cfg.arcs cfg)

let test_callgraph_structure () =
  let img = Program.layout (Progs.call_chain 1) in
  let cg = Callgraph.of_image img in
  Alcotest.(check int) "four functions" 4 (List.length (Callgraph.functions cg));
  let callees = List.map (fun e -> e.Callgraph.callee) (Callgraph.callees cg "main") in
  Alcotest.(check (list string)) "main calls alpha" [ "alpha" ] callees;
  Alcotest.(check int) "gamma has one caller" 1 (List.length (Callgraph.callers cg "gamma"));
  Alcotest.(check bool) "no recursion" false (Callgraph.is_self_recursive cg "beta");
  Alcotest.(check (list (pair string string))) "no back edges" []
    (Callgraph.back_edges cg ~entry:"main")

let test_callgraph_recursion () =
  let img = Program.layout (Progs.factorial 5) in
  let cg = Callgraph.of_image img in
  Alcotest.(check bool) "fact self-recursive" true (Callgraph.is_self_recursive cg "fact");
  Alcotest.(check (list (pair string string))) "back edge fact->fact"
    [ ("fact", "fact") ]
    (Callgraph.back_edges cg ~entry:"main")

(* Property: recovered blocks always tile the function and arcs stay
   in-bounds, over random programs. *)
let prop_recovery_tiles =
  QCheck.Test.make ~name:"recovery tiles random functions" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let img = Program.layout (Progs.random_arith ~seed) in
      List.for_all
        (fun sym ->
          let cfg = Cfg.recover img sym in
          let n = Cfg.num_blocks cfg in
          let total = List.init n (Cfg.len cfg) |> List.fold_left ( + ) 0 in
          total = sym.Image.len
          && List.for_all
               (fun (a : Cfg.arc) -> a.Cfg.src < n && a.Cfg.dst < n)
               (Cfg.arcs cfg))
        (Image.functions img))

let () =
  Alcotest.run "vp_cfg"
    [
      ( "recovery",
        [
          Alcotest.test_case "loop shape" `Quick test_recover_loop_shape;
          Alcotest.test_case "block partition" `Quick test_recover_block_partition;
          Alcotest.test_case "block_at" `Quick test_block_at_lookup;
          Alcotest.test_case "arc consistency" `Quick test_arcs_consistency;
          Alcotest.test_case "call sites" `Quick test_call_sites;
          QCheck_alcotest.to_alcotest prop_recovery_tiles;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "linear" `Quick test_dominators_linear;
          Alcotest.test_case "loop" `Quick test_dominators_loop;
        ] );
      ( "loops",
        [
          Alcotest.test_case "natural loops" `Quick test_natural_loops;
          Alcotest.test_case "nested depth" `Quick test_nested_loops_depth;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "straight line" `Quick test_liveness_straightline;
          Alcotest.test_case "arg flows" `Quick test_liveness_arg_flows_to_use;
          Alcotest.test_case "dead value" `Quick test_liveness_dead_value;
          Alcotest.test_case "live across arc" `Quick test_live_across_arc;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "structure" `Quick test_callgraph_structure;
          Alcotest.test_case "recursion" `Quick test_callgraph_recursion;
        ] );
    ]
