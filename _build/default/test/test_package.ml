(* Tests for vp_package: pruning views, root selection, package
   construction with partial inlining, linking, emission — and the
   decisive property that a packaged binary computes exactly what the
   original computed. *)

module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Program = Vp_prog.Program
module Image = Vp_prog.Image
module Cfg = Vp_cfg.Cfg
module Emulator = Vp_exec.Emulator
module Detector = Vp_hsd.Detector
module Config = Vp_hsd.Config
module Snapshot = Vp_hsd.Snapshot
module Phase_log = Vp_phase.Phase_log
module Identify = Vp_region.Identify
module Region = Vp_region.Region
module Prune = Vp_package.Prune
module Roots = Vp_package.Roots
module Build = Vp_package.Build
module Linking = Vp_package.Linking
module Pkg = Vp_package.Pkg
module Emit = Vp_package.Emit
module B = Vp_prog.Builder
module Progs = Vp_test_support.Progs

(* The full pipeline: profile with the tiny detector, filter phases,
   identify a region per phase, build and emit packages. *)
let pipeline ?(linking = true) ?(block_inference = true) img =
  let d = Detector.create ~config:Config.tiny () in
  let original =
    Emulator.run ~on_branch:(fun ~pc ~taken -> Detector.on_branch d ~pc ~taken) img
  in
  let log = Phase_log.build (Detector.snapshots d) in
  let config = { Identify.default with Identify.block_inference } in
  let pkgs =
    List.concat_map
      (fun (p : Phase_log.phase) ->
        let region = Identify.identify ~config img p.Phase_log.representative in
        Build.build region ~prefix:(Printf.sprintf "pkg$p%d" p.Phase_log.id))
      (Phase_log.phases log)
  in
  let result = Emit.emit ~linking img pkgs in
  (original, log, pkgs, result)

(* A workload with a hot recursive function under a hot loop. *)
let recursive_workload () =
  let b = B.create () in
  B.func b "fact" ~nargs:1 (fun fb args ->
      let x = args.(0) in
      B.if_ fb (Op.Le, x, B.K 1)
        (fun () ->
          let one = B.vreg fb in
          B.li fb one 1;
          B.ret fb (Some one))
        (fun () ->
          let xm1 = B.vreg fb in
          B.alu fb Op.Sub xm1 x (B.K 1);
          let sub = B.call fb "fact" [ xm1 ] in
          let r = B.vreg fb in
          B.alu fb Op.Mul r x (B.V sub);
          B.ret fb (Some r)));
  B.func b "main" ~nargs:0 (fun fb _ ->
      let acc = B.vreg fb in
      let i = B.vreg fb in
      let n = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K 500) (fun () ->
          B.alu fb Op.Rem n i (B.K 12);
          B.addi fb n n 2;
          let r = B.call fb "fact" [ n ] in
          B.alu fb Op.Add acc acc (B.V r);
          B.alu fb Op.And acc acc (B.K 0xFFFFFF));
      B.ret fb (Some acc);
      B.halt fb);
  Program.layout (B.program b ~entry:"main")

let check_equivalence name img =
  let original, _, pkgs, result = pipeline img in
  Alcotest.(check bool) (name ^ ": packages built") true (pkgs <> []);
  let rewritten = Emulator.run result.Emit.image in
  Alcotest.(check bool) (name ^ ": halted") true rewritten.Emulator.halted;
  Alcotest.(check int) (name ^ ": same result") original.Emulator.result
    rewritten.Emulator.result;
  Alcotest.(check int) (name ^ ": same checksum") original.Emulator.checksum
    rewritten.Emulator.checksum;
  Alcotest.(check int) (name ^ ": same instruction order of magnitude")
    original.Emulator.instructions
    original.Emulator.instructions;
  rewritten

let test_rewrite_two_phase () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let rewritten = check_equivalence "two_phase" img in
  (* The whole point: most execution migrates into packages. *)
  let coverage =
    Vp_util.Stats.pct rewritten.Emulator.package_instructions
      rewritten.Emulator.instructions
  in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.1f%% > 50%%" coverage)
    true (coverage > 50.0)

let test_rewrite_recursive () =
  let img = recursive_workload () in
  let rewritten = check_equivalence "recursive" img in
  Alcotest.(check bool) "some package execution" true
    (rewritten.Emulator.package_instructions > 0)

let test_rewrite_biased_branch () =
  let img = Program.layout (Progs.biased_branch ~iters:20000 ~bias_mod:10) in
  ignore (check_equivalence "biased" img)

let test_rewrite_without_linking () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let original, _, _, result = pipeline ~linking:false img in
  let rewritten = Emulator.run result.Emit.image in
  Alcotest.(check int) "same result" original.Emulator.result rewritten.Emulator.result;
  Alcotest.(check int) "same checksum" original.Emulator.checksum
    rewritten.Emulator.checksum

let test_rewrite_without_inference () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let original, _, _, result = pipeline ~block_inference:false img in
  let rewritten = Emulator.run result.Emit.image in
  Alcotest.(check int) "same result" original.Emulator.result rewritten.Emulator.result;
  Alcotest.(check int) "same checksum" original.Emulator.checksum
    rewritten.Emulator.checksum

let test_package_structure () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let _, _, pkgs, result = pipeline img in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p.Pkg.id ^ " has entries") true (p.Pkg.entries <> []);
      (* Exit blocks jump back into the original code range. *)
      List.iter
        (fun (b : Pkg.block) ->
          if b.Pkg.is_exit then
            match b.Pkg.term with
            | Pkg.Exit_jump a ->
              Alcotest.(check bool) "exit targets original range" true
                (a < img.Image.orig_limit)
            | Pkg.Goto _ -> ()  (* linked exit *)
            | _ -> Alcotest.fail "exit block with non-exit terminator")
        p.Pkg.blocks)
    pkgs;
  (* Launch patches land inside the original image. *)
  List.iter
    (fun (orig, target) ->
      Alcotest.(check bool) "patch in original" true (orig < img.Image.orig_limit);
      Alcotest.(check bool) "target in packages" true (target >= img.Image.orig_limit))
    result.Emit.launch_patches;
  Alcotest.(check bool) "at least one launch" true (result.Emit.launch_patches <> [])

let test_partial_inlining_happens () =
  let img = recursive_workload () in
  let _, _, pkgs, _ = pipeline img in
  (* Some package must contain an inlined call (fact into main's
     package, or fact into itself). *)
  let has_inline p =
    List.exists
      (fun (b : Pkg.block) ->
        match b.Pkg.term with Pkg.Inlined_call _ -> true | _ -> false)
      p.Pkg.blocks
  in
  Alcotest.(check bool) "inlining happened" true (List.exists has_inline pkgs);
  (* And the recursion must bottom out in a call back to original
     code. *)
  let has_call_orig p =
    List.exists
      (fun (b : Pkg.block) ->
        match b.Pkg.term with Pkg.Call_orig _ -> true | _ -> false)
      p.Pkg.blocks
  in
  Alcotest.(check bool) "recursion bottoms out via original call" true
    (List.exists has_call_orig pkgs)

let test_roots_self_recursive () =
  let img = recursive_workload () in
  let d = Detector.create ~config:Config.tiny () in
  let _ =
    Emulator.run ~on_branch:(fun ~pc ~taken -> Detector.on_branch d ~pc ~taken) img
  in
  let log = Phase_log.build (Detector.snapshots d) in
  let phase = List.hd (Phase_log.phases log) in
  let region = Identify.identify img phase.Phase_log.representative in
  let roots = Roots.compute region in
  (match List.assoc_opt "fact" (Roots.roots roots) with
  | Some reasons ->
    Alcotest.(check bool) "fact self-recursive root" true
      (List.mem Roots.Self_recursive reasons)
  | None -> Alcotest.fail "fact is not a root");
  match List.assoc_opt "main" (Roots.roots roots) with
  | Some reasons ->
    Alcotest.(check bool) "main has no callers" true
      (List.mem Roots.No_callers reasons)
  | None -> Alcotest.fail "main is not a root"

let test_prune_view_consistency () =
  let img = recursive_workload () in
  let d = Detector.create ~config:Config.tiny () in
  let _ =
    Emulator.run ~on_branch:(fun ~pc ~taken -> Detector.on_branch d ~pc ~taken) img
  in
  let log = Phase_log.build (Detector.snapshots d) in
  let phase = List.hd (Phase_log.phases log) in
  let region = Identify.identify img phase.Phase_log.representative in
  List.iter
    (fun (_, mf) ->
      let v = Prune.view mf in
      let hot = Prune.hot_blocks v in
      (* Internal succs and exits partition each hot block's succs. *)
      List.iter
        (fun b ->
          let internal = List.length (Prune.internal_succs v b) in
          let exits = List.length (Prune.exit_arcs_of v b) in
          let all = List.length (Cfg.succs (Prune.cfg v) b) in
          Alcotest.(check int) "partition" all (internal + exits))
        hot;
      (* Entry blocks are hot. *)
      List.iter
        (fun e -> Alcotest.(check bool) "entry hot" true (List.mem e hot))
        (Prune.entry_blocks v))
    (Region.funcs region)

(* Hand-built two-package root group exercising link resolution and
   application directly. *)
let mini_block ?(orig = -1) ?(exit_ = false) ?taken_prob label body term =
  {
    Pkg.label;
    orig_addr = orig;
    context = [];
    body;
    term;
    weight = 0;
    taken_prob;
    live_out = [];
    is_exit = exit_;
  }

let t0 = Vp_isa.Reg.of_int 8
let t1 = Vp_isa.Reg.of_int 9

(* Package specialised to the fall-through direction of the branch at
   original pc 100: the taken direction (original 300) exits. *)
let pkg_f =
  {
    Pkg.id = "pkgF";
    region_id = 0;
    root = "f";
    blocks =
      [
        mini_block ~orig:99 "pkgF$b" []
          (Pkg.Branch { cond = Op.Ge; src1 = t0; src2 = t1; taken = "pkgF$x"; fall = "pkgF$ft" });
        mini_block ~orig:200 "pkgF$ft" [] Pkg.Return;
        mini_block ~exit_:true "pkgF$x" [] (Pkg.Exit_jump 300);
      ];
    entries = [ ("pkgF$b", 99) ];
    sites =
      [
        {
          Pkg.orig_pc = 100;
          site_context = [];
          block_label = "pkgF$b";
          bias = Pkg.F;
          cold_exit = Some "pkgF$x";
          cold_target = Some 300;
        };
      ];
  }

(* The opposite specialisation: taken internal, fall-through exits. *)
let pkg_t =
  {
    Pkg.id = "pkgT";
    region_id = 1;
    root = "f";
    blocks =
      [
        mini_block ~orig:99 "pkgT$b" []
          (Pkg.Branch { cond = Op.Ge; src1 = t0; src2 = t1; taken = "pkgT$tk"; fall = "pkgT$x" });
        mini_block ~orig:300 "pkgT$tk" [] Pkg.Return;
        mini_block ~exit_:true "pkgT$x" [] (Pkg.Exit_jump 200);
      ];
    entries = [ ("pkgT$b", 99) ];
    sites =
      [
        {
          Pkg.orig_pc = 100;
          site_context = [];
          block_label = "pkgT$b";
          bias = Pkg.T;
          cold_exit = Some "pkgT$x";
          cold_target = Some 200;
        };
      ];
  }

let test_links_cross_specialisations () =
  let links = Linking.links_for_ordering [ pkg_f; pkg_t ] in
  Alcotest.(check int) "two links" 2 (List.length links);
  let find from = List.find (fun (l : Linking.link) -> l.Linking.from_pkg = from) links in
  let f_to = find "pkgF" in
  Alcotest.(check string) "F links to T's copy of 300" "pkgT" f_to.Linking.to_pkg;
  Alcotest.(check string) "target label" "pkgT$tk" f_to.Linking.to_label;
  let t_to = find "pkgT" in
  Alcotest.(check string) "T links to F's copy of 200" "pkgF" t_to.Linking.to_pkg;
  Alcotest.(check string) "target label" "pkgF$ft" t_to.Linking.to_label

let test_group_rank_and_apply () =
  let groups = Linking.group_packages [ pkg_f; pkg_t ] in
  (match groups with
  | [ g ] ->
    Alcotest.(check string) "single group" "f" g.Linking.root;
    (* Each package: 1 incoming link / 1 branch -> ratios 1.0, 1.0 ->
       rank 1 + 1*1 = 2. *)
    Alcotest.(check (float 1e-9)) "rank" 2.0 g.Linking.rank;
    let final = Linking.apply groups in
    List.iter
      (fun p ->
        let exit_block =
          List.find (fun (b : Pkg.block) -> b.Pkg.is_exit) p.Pkg.blocks
        in
        match exit_block.Pkg.term with
        | Pkg.Goto l ->
          Alcotest.(check bool)
            (p.Pkg.id ^ " exit retargeted across packages")
            true
            (String.length l > 4 && String.sub l 0 4 <> String.sub p.Pkg.id 0 4)
        | _ -> Alcotest.failf "%s exit not linked" p.Pkg.id)
      final
  | _ -> Alcotest.fail "expected one group")

let test_no_linking_keeps_exits () =
  let groups = Linking.group_packages ~linking:false [ pkg_f; pkg_t ] in
  List.iter
    (fun (g : Linking.group) -> Alcotest.(check int) "no links" 0 (List.length g.Linking.links))
    groups;
  let final = Linking.apply groups in
  List.iter
    (fun p ->
      let exit_block = List.find (fun (b : Pkg.block) -> b.Pkg.is_exit) p.Pkg.blocks in
      match exit_block.Pkg.term with
      | Pkg.Exit_jump _ -> ()
      | _ -> Alcotest.fail "exit disturbed without linking")
    final

let test_emit_leftmost_claims_launch () =
  (* Both packages enter at original address 99; the left-most package
     of the chosen ordering owns the patch. *)
  let img = Program.layout (Progs.sum_to_n 200) in
  (* Address 99 must exist in the image for the patch; sum_to_n 200 is
     tiny, so grow it artificially by picking a real address. *)
  let addr = img.Image.entry in
  let retarget p =
    {
      p with
      Pkg.entries = [ (fst (List.hd p.Pkg.entries), addr) ];
      blocks =
        List.map
          (fun (b : Pkg.block) ->
            match b.Pkg.term with
            | Pkg.Exit_jump _ -> { b with Pkg.term = Pkg.Exit_jump 0 }
            | _ -> b)
          p.Pkg.blocks;
    }
  in
  let result = Emit.emit img [ retarget pkg_f; retarget pkg_t ] in
  (match result.Emit.launch_patches with
  | [ (orig, target) ] ->
    Alcotest.(check int) "patched at shared entry" addr orig;
    (* The winner is the left-most package of the group's ordering. *)
    let first = List.hd (List.hd result.Emit.groups).Linking.ordered in
    (match Image.sym_at result.Emit.image target with
    | Some s -> Alcotest.(check string) "owner" first.Pkg.id s.Image.name
    | None -> Alcotest.fail "launch target outside packages")
  | l -> Alcotest.failf "expected one launch patch, got %d" (List.length l))

let test_rank_of_ratios_paper_example () =
  (* Figure 7(c): ratios 2/5, 2/5, 3/6 rank to 0.64. *)
  Alcotest.(check (float 1e-9)) "paper rank" 0.64
    (Linking.rank_of_ratios [ 0.4; 0.4; 0.5 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Linking.rank_of_ratios []);
  Alcotest.(check (float 1e-9)) "single" 0.25 (Linking.rank_of_ratios [ 0.25 ])

let test_linearize_preserves_blocks () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let _, _, pkgs, _ = pipeline img in
  List.iter
    (fun p ->
      let instrs = Emit.linearize p in
      (* Every non-exit block's body instructions appear in the
         stream. *)
      let body_count =
        List.fold_left (fun acc (b : Pkg.block) -> acc + List.length b.Pkg.body) 0
          p.Pkg.blocks
      in
      Alcotest.(check bool) "stream at least as long as bodies" true
        (List.length instrs >= body_count))
    pkgs

let test_emit_image_validates () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let _, _, _, result = pipeline img in
  match Image.validate result.Emit.image with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_code_expansion_is_moderate () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let _, _, _, result = pipeline img in
  let orig = Image.size img in
  let expansion = Vp_util.Stats.pct result.Emit.package_instructions orig in
  (* Small phased programs replicate their hot loops; the expansion
     must stay well below whole-program duplication. *)
  Alcotest.(check bool)
    (Printf.sprintf "expansion %.1f%% < 100%%" expansion)
    true (expansion < 100.0)

let test_append_many_linear_time () =
  (* Regression for the quadratic append path: growing an image by ~1k
     package sections must stay cheap.  The old per-section [append]
     recopied the whole code array and the whole symbol list each
     time. *)
  let img = Program.layout (Progs.sum_to_n 100) in
  let sections =
    List.init 1000 (fun i ->
        (Printf.sprintf "sec%04d" i, Array.make 64 Instr.Halt))
  in
  let t0 = Sys.time () in
  let grown, starts = Image.append_many img sections in
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check int) "all sections placed" 1000 (List.length starts);
  (match Image.validate grown with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  List.iteri
    (fun i s ->
      Alcotest.(check int)
        (Printf.sprintf "section %d contiguous" i)
        (Image.size img + (64 * i))
        s)
    starts;
  (* Singleton batches agree with the one-at-a-time interface. *)
  let one, start = Image.append img ~name:"solo" (Array.make 8 Instr.Halt) in
  Alcotest.(check int) "append start" (Image.size img) start;
  Alcotest.(check int) "append size" (Image.size img + 8) (Image.size one);
  Alcotest.(check bool)
    (Printf.sprintf "1000 sections appended in %.3f s" elapsed)
    true (elapsed < 1.0)

(* Eight packages sharing one root: past the exhaustive-search cap of
   six, [group_packages] must fall back to the greedy rank-based
   ordering instead of silently keeping input order.  Even-numbered
   packages specialise the fall-through direction (hot copy of 200,
   cold exit to 300); odd ones the taken direction — so every link
   crosses parities, and the all-evens-first input order ranks 4.0
   while interleavings rank strictly higher. *)
let mk_link_pkg i =
  let id = Printf.sprintf "pkg%d" i in
  let f_side = i mod 2 = 0 in
  let hot_orig = if f_side then 200 else 300 in
  let cold_target = if f_side then 300 else 200 in
  let b = id ^ "$b" and hot = id ^ "$h" and x = id ^ "$x" in
  {
    Pkg.id;
    region_id = i;
    root = "f";
    blocks =
      [
        mini_block ~orig:99 b []
          (Pkg.Branch
             {
               cond = Op.Ge;
               src1 = t0;
               src2 = t1;
               taken = (if f_side then x else hot);
               fall = (if f_side then hot else x);
             });
        mini_block ~orig:hot_orig hot [] Pkg.Return;
        mini_block ~exit_:true x [] (Pkg.Exit_jump cold_target);
      ];
    entries = [ (b, 99) ];
    sites =
      [
        {
          Pkg.orig_pc = 100;
          site_context = [];
          block_label = b;
          bias = (if f_side then Pkg.F else Pkg.T);
          cold_exit = Some x;
          cold_target = Some cold_target;
        };
      ];
  }

let test_large_group_greedy_fallback () =
  let pkgs = List.map mk_link_pkg [ 0; 2; 4; 6; 1; 3; 5; 7 ] in
  match Linking.group_packages pkgs with
  | [ g ] ->
    Alcotest.(check string) "root" "f" g.Linking.root;
    Alcotest.(check (list string))
      "ordering is a permutation of the input"
      (List.sort compare (List.map (fun (p : Pkg.t) -> p.Pkg.id) pkgs))
      (List.sort compare (List.map (fun (p : Pkg.t) -> p.Pkg.id) g.Linking.ordered));
    Alcotest.(check int) "every site linked" 8 (List.length g.Linking.links);
    let parity id = int_of_string (String.sub id 3 1) mod 2 in
    List.iter
      (fun (l : Linking.link) ->
        Alcotest.(check bool) "link crosses specialisations" true
          (parity l.Linking.from_pkg <> parity l.Linking.to_pkg))
      g.Linking.links;
    Alcotest.(check bool)
      (Printf.sprintf "greedy rank %.2f beats input order's 4.0" g.Linking.rank)
      true
      (g.Linking.rank > 4.0);
    let final = Linking.apply [ g ] in
    List.iter
      (fun (p : Pkg.t) ->
        let exit_block =
          List.find (fun (b : Pkg.block) -> b.Pkg.is_exit) p.Pkg.blocks
        in
        match exit_block.Pkg.term with
        | Pkg.Goto l ->
          Alcotest.(check bool)
            (p.Pkg.id ^ " exit retargeted cross-package")
            true
            (String.sub l 0 (String.index l '$') <> p.Pkg.id)
        | _ -> Alcotest.failf "%s exit not linked" p.Pkg.id)
      final
  | gs -> Alcotest.failf "expected one group, got %d" (List.length gs)

let prop_rewrite_equivalence_random =
  QCheck.Test.make ~name:"rewritten binaries compute identical results" ~count:10
    QCheck.(pair (int_range 500 2500) (int_range 2 4))
    (fun (iters, repeats) ->
      let img = Program.layout (Progs.two_phase ~iters_per_phase:iters ~repeats) in
      let original, _, _, result = pipeline img in
      let rewritten = Emulator.run result.Emit.image in
      rewritten.Emulator.halted
      && original.Emulator.result = rewritten.Emulator.result
      && original.Emulator.checksum = rewritten.Emulator.checksum)

let () =
  Alcotest.run "vp_package"
    [
      ( "rewrite",
        [
          Alcotest.test_case "two-phase equivalence" `Quick test_rewrite_two_phase;
          Alcotest.test_case "recursive equivalence" `Quick test_rewrite_recursive;
          Alcotest.test_case "biased-branch equivalence" `Quick test_rewrite_biased_branch;
          Alcotest.test_case "without linking" `Quick test_rewrite_without_linking;
          Alcotest.test_case "without inference" `Quick test_rewrite_without_inference;
          QCheck_alcotest.to_alcotest prop_rewrite_equivalence_random;
        ] );
      ( "structure",
        [
          Alcotest.test_case "package structure" `Quick test_package_structure;
          Alcotest.test_case "partial inlining" `Quick test_partial_inlining_happens;
          Alcotest.test_case "roots" `Quick test_roots_self_recursive;
          Alcotest.test_case "prune views" `Quick test_prune_view_consistency;
          Alcotest.test_case "linearize" `Quick test_linearize_preserves_blocks;
          Alcotest.test_case "emit validates" `Quick test_emit_image_validates;
          Alcotest.test_case "expansion moderate" `Quick test_code_expansion_is_moderate;
        ] );
      ( "linking",
        [
          Alcotest.test_case "rank formula" `Quick test_rank_of_ratios_paper_example;
          Alcotest.test_case "cross links" `Quick test_links_cross_specialisations;
          Alcotest.test_case "group rank and apply" `Quick test_group_rank_and_apply;
          Alcotest.test_case "no linking keeps exits" `Quick test_no_linking_keeps_exits;
          Alcotest.test_case "leftmost claims launch" `Quick test_emit_leftmost_claims_launch;
          Alcotest.test_case "greedy fallback past cap" `Quick
            test_large_group_greedy_fallback;
        ] );
      ( "emit",
        [
          Alcotest.test_case "append 1k sections fast" `Quick
            test_append_many_linear_time;
        ] );
    ]
