(* Tests for vp_workloads: every Table 1 program builds, validates,
   runs deterministically and shows phased behaviour. *)

module Registry = Vp_workloads.Registry
module Program = Vp_prog.Program
module Image = Vp_prog.Image
module Emulator = Vp_exec.Emulator
module Callgraph = Vp_cfg.Callgraph
module Detector = Vp_hsd.Detector

let test_registry_inventory () =
  Alcotest.(check bool) "at least 12 benches" true
    (List.length Registry.benches >= 12);
  Alcotest.(check bool) "at least 19 rows" true (List.length Registry.all >= 19);
  let names = List.map Registry.name Registry.all in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  (match Registry.find ~bench:"134.perl" ~input:"A" with
  | Some _ -> ()
  | None -> Alcotest.fail "perl/A missing");
  Alcotest.(check int) "three perl inputs" 3
    (List.length (Registry.find_bench "134.perl"))

let test_all_images_validate () =
  List.iter
    (fun w ->
      let img = Program.layout (w.Registry.program ()) in
      match Image.validate img with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Registry.name w) e)
    Registry.all

let test_all_have_cold_ballast () =
  List.iter
    (fun w ->
      let img = Program.layout (w.Registry.program ()) in
      let names = List.map (fun (s : Image.sym) -> s.Image.name) (Image.functions img) in
      Alcotest.(check bool)
        (Registry.name w ^ " has ballast")
        true
        (List.mem "ballast_0" names))
    Registry.all

let test_callgraphs_rooted_at_main () =
  List.iter
    (fun w ->
      let img = Program.layout (w.Registry.program ()) in
      let cg = Callgraph.of_image img in
      Alcotest.(check bool)
        (Registry.name w ^ " main present")
        true
        (List.mem "main" (Callgraph.functions cg));
      Alcotest.(check bool)
        (Registry.name w ^ " main calls something")
        true
        (Callgraph.callees cg "main" <> []))
    Registry.all

(* Running all 16 full workloads is minutes of work; take the smaller
   input of each multi-input bench and cap the rest by fuel. *)
let quick_run w =
  Emulator.run ~fuel:50_000_000 (Program.layout (w.Registry.program ()))

let test_small_inputs_halt () =
  List.iter
    (fun (bench, input) ->
      match Registry.find ~bench ~input with
      | Some w ->
        let o = quick_run w in
        Alcotest.(check bool) (Registry.name w ^ " halts") true o.Emulator.halted;
        Alcotest.(check bool)
          (Registry.name w ^ " does real work")
          true
          (o.Emulator.instructions > 100_000)
      | None -> Alcotest.failf "%s/%s missing" bench input)
    [ ("130.li", "B"); ("134.perl", "B"); ("132.ijpeg", "B"); ("255.vortex", "B") ]

let test_determinism () =
  let w = Option.get (Registry.find ~bench:"134.perl" ~input:"B") in
  let a = quick_run w in
  let b = quick_run w in
  Alcotest.(check int) "same checksum" a.Emulator.checksum b.Emulator.checksum;
  Alcotest.(check int) "same instructions" a.Emulator.instructions b.Emulator.instructions

let test_phased_behaviour () =
  (* The flagship phase workloads must produce at least two distinct
     phases under the default (full-size) detector. *)
  List.iter
    (fun (bench, input, min_phases) ->
      let w = Option.get (Registry.find ~bench ~input) in
      let img = Program.layout (w.Registry.program ()) in
      let d = Detector.create () in
      let _ =
        Emulator.run ~on_branch:(fun ~pc ~taken -> Detector.on_branch d ~pc ~taken) img
      in
      let log = Vp_phase.Phase_log.build (Detector.snapshots d) in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s has >= %d phases (got %d)" bench input min_phases
           (Vp_phase.Phase_log.unique_count log))
        true
        (Vp_phase.Phase_log.unique_count log >= min_phases))
    [ ("134.perl", "B", 2); ("132.ijpeg", "B", 3) ]

let test_ballast_is_cold () =
  (* No detected hot-spot branch may live in ballast code. *)
  let w = Option.get (Registry.find ~bench:"134.perl" ~input:"B") in
  let img = Program.layout (w.Registry.program ()) in
  let d = Detector.create () in
  let _ =
    Emulator.run ~on_branch:(fun ~pc ~taken -> Detector.on_branch d ~pc ~taken) img
  in
  List.iter
    (fun snap ->
      List.iter
        (fun pc ->
          match Image.sym_at img pc with
          | Some s ->
            Alcotest.(check bool)
              (Printf.sprintf "branch 0x%x not in %s" pc s.Image.name)
              false
              (String.length s.Image.name >= 7 && String.sub s.Image.name 0 7 = "ballast")
          | None -> Alcotest.fail "snapshot branch outside image")
        (Vp_hsd.Snapshot.branch_pcs snap))
    (Detector.snapshots d)

let () =
  Alcotest.run "vp_workloads"
    [
      ( "registry",
        [
          Alcotest.test_case "inventory" `Quick test_registry_inventory;
          Alcotest.test_case "images validate" `Quick test_all_images_validate;
          Alcotest.test_case "cold ballast present" `Quick test_all_have_cold_ballast;
          Alcotest.test_case "callgraphs" `Quick test_callgraphs_rooted_at_main;
        ] );
      ( "execution",
        [
          Alcotest.test_case "small inputs halt" `Slow test_small_inputs_halt;
          Alcotest.test_case "determinism" `Slow test_determinism;
          Alcotest.test_case "phased behaviour" `Slow test_phased_behaviour;
          Alcotest.test_case "ballast is cold" `Slow test_ballast_is_cold;
        ] );
    ]
