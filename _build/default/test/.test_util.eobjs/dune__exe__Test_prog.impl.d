test/test_prog.ml: Alcotest Array List Option QCheck QCheck_alcotest Vp_isa Vp_prog Vp_test_support
