test/test_phase.mli:
