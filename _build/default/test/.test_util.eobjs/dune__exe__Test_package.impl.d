test/test_package.ml: Alcotest Array List Printf QCheck QCheck_alcotest String Sys Vp_cfg Vp_exec Vp_hsd Vp_isa Vp_package Vp_phase Vp_prog Vp_region Vp_test_support Vp_util
