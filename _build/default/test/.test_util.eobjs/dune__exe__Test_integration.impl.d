test/test_integration.ml: Alcotest Format List Vacuum Vp_exec Vp_hsd Vp_opt Vp_package Vp_prog Vp_test_support
