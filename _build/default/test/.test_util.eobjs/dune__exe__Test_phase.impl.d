test/test_phase.ml: Alcotest Gen Hashtbl List QCheck QCheck_alcotest Vp_hsd Vp_phase
