test/test_isa.ml: Alcotest Fmt List QCheck QCheck_alcotest Vp_isa
