test/test_workloads.ml: Alcotest List Option Printf String Vp_cfg Vp_exec Vp_hsd Vp_phase Vp_prog Vp_workloads
