test/test_exec.ml: Alcotest Hashtbl List QCheck QCheck_alcotest Vp_exec Vp_isa Vp_prog Vp_test_support
