test/test_core.ml: Alcotest Format Hashtbl Lazy List Option Printf String Vacuum Vp_cpu Vp_exec Vp_hsd Vp_package Vp_phase Vp_prog Vp_region Vp_test_support Vp_workloads
