test/test_opt.ml: Alcotest Array List Option Printf QCheck QCheck_alcotest Vp_exec Vp_hsd Vp_isa Vp_opt Vp_package Vp_phase Vp_prog Vp_region Vp_test_support Vp_util
