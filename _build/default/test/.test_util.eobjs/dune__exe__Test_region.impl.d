test/test_region.ml: Alcotest Fun List Option QCheck QCheck_alcotest Vp_cfg Vp_hsd Vp_isa Vp_prog Vp_region Vp_test_support
