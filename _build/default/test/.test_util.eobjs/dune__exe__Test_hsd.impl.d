test/test_hsd.ml: Alcotest List Printf QCheck QCheck_alcotest Vp_exec Vp_hsd Vp_isa Vp_prog Vp_test_support Vp_util
