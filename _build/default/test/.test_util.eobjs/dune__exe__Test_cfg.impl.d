test/test_cfg.ml: Alcotest Fun List Option QCheck QCheck_alcotest Vp_cfg Vp_isa Vp_prog Vp_test_support
