test/test_asm.ml: Alcotest Format List Option Printf QCheck QCheck_alcotest String Vp_exec Vp_isa Vp_prog Vp_test_support Vp_workloads
