test/test_util.ml: Alcotest Array Atomic Domain Gen List Printf QCheck QCheck_alcotest String Vp_util
