test/test_util.ml: Alcotest Array Gen List QCheck QCheck_alcotest String Vp_util
