test/test_cpu.ml: Alcotest List Printf QCheck QCheck_alcotest Vp_cpu Vp_exec Vp_isa Vp_prog Vp_test_support
