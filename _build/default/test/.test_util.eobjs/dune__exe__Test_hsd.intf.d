test/test_hsd.mli:
