(* Tests for vp_isa: register conventions, operation semantics,
   instruction classification and dataflow summaries. *)

module Reg = Vp_isa.Reg
module Op = Vp_isa.Op
module Instr = Vp_isa.Instr

let reg = Alcotest.testable (Fmt.of_to_string Reg.name) Reg.equal

let test_reg_conventions () =
  Alcotest.(check int) "zero is r0" 0 (Reg.to_int Reg.zero);
  Alcotest.(check int) "sp is r1" 1 (Reg.to_int Reg.sp);
  Alcotest.(check int) "ra is r2" 2 (Reg.to_int Reg.ra);
  Alcotest.check reg "ret value is a0" (Reg.arg 0) Reg.ret_value;
  Alcotest.(check int) "temp count" (32 - 8) (List.length Reg.temps);
  Alcotest.(check bool) "a0 not temp" false (Reg.is_temp (Reg.arg 0));
  Alcotest.(check bool) "t0 is temp" true (Reg.is_temp (Reg.of_int 8))

let test_reg_bounds () =
  Alcotest.check_raises "of_int 32" (Invalid_argument "Reg.of_int") (fun () ->
      ignore (Reg.of_int 32));
  Alcotest.check_raises "of_int -1" (Invalid_argument "Reg.of_int") (fun () ->
      ignore (Reg.of_int (-1)));
  Alcotest.check_raises "arg 5" (Invalid_argument "Reg.arg") (fun () ->
      ignore (Reg.arg 5))

let test_reg_names_unique () =
  let names = List.init 32 (fun i -> Reg.name (Reg.of_int i)) in
  Alcotest.(check int) "all distinct" 32 (List.length (List.sort_uniq compare names))

let test_alu_semantics () =
  let check op a b expect =
    Alcotest.(check int) (Op.alu_name op) expect (Op.eval_alu op a b)
  in
  check Op.Add 3 4 7;
  check Op.Sub 3 4 (-1);
  check Op.Mul 3 4 12;
  check Op.Div 12 4 3;
  check Op.Div 7 0 0;
  check Op.Rem 7 3 1;
  check Op.Rem 7 0 0;
  check Op.And 12 10 8;
  check Op.Or 12 10 14;
  check Op.Xor 12 10 6;
  check Op.Shl 1 4 16;
  check Op.Shr (-16) 2 (-4);
  check Op.Slt 1 2 1;
  check Op.Slt 2 1 0;
  check Op.Fadd 3 4 7;
  check Op.Fmul 3 4 12;
  check Op.Fdiv 12 4 3

let test_cond_semantics () =
  let check c a b expect =
    Alcotest.(check bool) (Op.cond_name c) expect (Op.eval_cond c a b)
  in
  check Op.Eq 1 1 true;
  check Op.Ne 1 1 false;
  check Op.Lt 1 2 true;
  check Op.Le 2 2 true;
  check Op.Gt 2 1 true;
  check Op.Ge 1 2 false

let test_negate_cond_involutive () =
  List.iter
    (fun c ->
      Alcotest.(check string) "double negation" (Op.cond_name c)
        (Op.cond_name (Op.negate_cond (Op.negate_cond c))))
    Op.all_cond

let prop_negate_cond_complements =
  QCheck.Test.make ~name:"negated condition complements" ~count:500
    QCheck.(triple (int_bound 5) (int_range (-50) 50) (int_range (-50) 50))
    (fun (ci, a, b) ->
      let c = List.nth Op.all_cond ci in
      Op.eval_cond c a b <> Op.eval_cond (Op.negate_cond c) a b)

let test_fu_assignment () =
  Alcotest.(check string) "add on ialu" "ialu" (Op.fu_name (Op.alu_fu Op.Add));
  Alcotest.(check string) "mul on fp" "fp" (Op.fu_name (Op.alu_fu Op.Mul));
  Alcotest.(check string) "div long" "long_fp" (Op.fu_name (Op.alu_fu Op.Div));
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Op.alu_name op ^ " latency positive")
        true
        (Op.alu_latency op >= 1))
    Op.all_alu

let t0 = Reg.of_int 8
let t1 = Reg.of_int 9

let test_instr_classification () =
  let br = Instr.Br { cond = Op.Eq; src1 = t0; src2 = t1; target = Instr.Addr 0 } in
  let call = Instr.Call { target = Instr.Addr 4 } in
  Alcotest.(check bool) "br is cond" true (Instr.is_cond_branch br);
  Alcotest.(check bool) "call not cond" false (Instr.is_cond_branch call);
  Alcotest.(check bool) "call is control" true (Instr.is_control call);
  Alcotest.(check bool) "ret is control" true (Instr.is_control Instr.Ret);
  Alcotest.(check bool) "alu not control" false
    (Instr.is_control (Instr.Li { dst = t0; imm = 1 }));
  Alcotest.(check bool) "load is mem" true
    (Instr.is_mem (Instr.Load { dst = t0; base = t1; offset = 0 }))

let test_instr_target_rewriting () =
  let br = Instr.Br { cond = Op.Eq; src1 = t0; src2 = t1; target = Instr.Label "x" } in
  let resolved = Instr.resolve (fun _ -> 99) br in
  (match Instr.target resolved with
  | Some (Instr.Addr 99) -> ()
  | _ -> Alcotest.fail "resolve failed");
  let moved = Instr.retarget (fun a -> a + 1) resolved in
  (match Instr.target moved with
  | Some (Instr.Addr 100) -> ()
  | _ -> Alcotest.fail "retarget failed");
  (* retarget leaves labels alone *)
  let still = Instr.retarget (fun a -> a + 1) br in
  match Instr.target still with
  | Some (Instr.Label "x") -> ()
  | _ -> Alcotest.fail "label disturbed"

let test_instr_with_target_invalid () =
  Alcotest.check_raises "ret has no target"
    (Invalid_argument "Instr.with_target: instruction has no target") (fun () ->
      ignore (Instr.with_target Instr.Ret (Instr.Addr 0)))

let test_instr_defs_uses () =
  let alu = Instr.Alu { op = Op.Add; dst = t0; src1 = t1; src2 = Instr.Reg Reg.sp } in
  Alcotest.(check (list int)) "alu defs" [ 8 ]
    (List.map Reg.to_int (Instr.defs alu));
  Alcotest.(check (list int)) "alu uses" [ 9; 1 ]
    (List.map Reg.to_int (Instr.uses alu));
  let call = Instr.Call { target = Instr.Addr 0 } in
  Alcotest.(check bool) "call defs ra" true (List.mem Reg.ra (Instr.defs call));
  Alcotest.(check bool) "call uses sp" true (List.mem Reg.sp (Instr.uses call));
  Alcotest.(check bool) "ret uses ra" true (List.mem Reg.ra (Instr.uses Instr.Ret));
  let store = Instr.Store { src = t0; base = t1; offset = 4 } in
  Alcotest.(check int) "store defs nothing" 0 (List.length (Instr.defs store))

let test_instr_printing () =
  let i = Instr.Alu { op = Op.Add; dst = t0; src1 = t1; src2 = Instr.Imm 5 } in
  Alcotest.(check string) "alu text" "add t0, t1, #5" (Instr.to_string i);
  let br = Instr.Br { cond = Op.Lt; src1 = t0; src2 = t1; target = Instr.Addr 16 } in
  Alcotest.(check string) "br text" "blt t0, t1, 0x10" (Instr.to_string br)

let prop_shift_masking_total =
  QCheck.Test.make ~name:"shifts never raise" ~count:1000
    QCheck.(pair int int)
    (fun (a, b) ->
      let _ = Op.eval_alu Op.Shl a b in
      let _ = Op.eval_alu Op.Shr a b in
      true)

let () =
  Alcotest.run "vp_isa"
    [
      ( "reg",
        [
          Alcotest.test_case "conventions" `Quick test_reg_conventions;
          Alcotest.test_case "bounds" `Quick test_reg_bounds;
          Alcotest.test_case "names unique" `Quick test_reg_names_unique;
        ] );
      ( "op",
        [
          Alcotest.test_case "alu semantics" `Quick test_alu_semantics;
          Alcotest.test_case "cond semantics" `Quick test_cond_semantics;
          Alcotest.test_case "negate involutive" `Quick test_negate_cond_involutive;
          Alcotest.test_case "fu assignment" `Quick test_fu_assignment;
          QCheck_alcotest.to_alcotest prop_negate_cond_complements;
          QCheck_alcotest.to_alcotest prop_shift_masking_total;
        ] );
      ( "instr",
        [
          Alcotest.test_case "classification" `Quick test_instr_classification;
          Alcotest.test_case "target rewriting" `Quick test_instr_target_rewriting;
          Alcotest.test_case "with_target invalid" `Quick test_instr_with_target_invalid;
          Alcotest.test_case "defs/uses" `Quick test_instr_defs_uses;
          Alcotest.test_case "printing" `Quick test_instr_printing;
        ] );
    ]
