examples/quickstart.ml: Array List Printf Vacuum Vp_cpu Vp_exec Vp_hsd Vp_isa Vp_package Vp_phase Vp_prog
