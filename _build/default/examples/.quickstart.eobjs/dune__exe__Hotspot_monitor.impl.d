examples/hotspot_monitor.ml: List Option Printf Vp_exec Vp_hsd Vp_phase Vp_prog Vp_workloads
