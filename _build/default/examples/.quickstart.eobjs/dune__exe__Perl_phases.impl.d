examples/perl_phases.ml: List Option Printf String Vacuum Vp_package Vp_phase Vp_prog Vp_workloads
