examples/optimizer_report.ml: List Option Printf Vacuum Vp_cpu Vp_opt Vp_package Vp_prog Vp_workloads
