examples/quickstart.mli:
