examples/perl_phases.mli:
