examples/assembly_workflow.mli:
