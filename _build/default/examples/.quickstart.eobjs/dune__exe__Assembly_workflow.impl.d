examples/assembly_workflow.ml: Format List Printf Vacuum Vp_exec Vp_hsd Vp_package Vp_phase Vp_prog
