examples/optimizer_report.mli:
