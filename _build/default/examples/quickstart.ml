(* Quickstart: build a small two-phase program with the Builder DSL,
   run the whole Vacuum Packing pipeline on it, and check that the
   rewritten binary computes the same answer faster.

     dune exec examples/quickstart.exe *)

module B = Vp_prog.Builder
module Op = Vp_isa.Op
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator

(* A program that spends a while summing, then a while multiplying —
   two phases the hardware detector can tell apart. *)
let program () =
  let b = B.create () in
  B.func b "sum_phase" ~nargs:1 (fun fb args ->
      let acc = B.vreg fb in
      let i = B.vreg fb in
      B.mov fb acc args.(0);
      B.for_ fb i ~from:(B.K 0) ~below:(B.K 4000) (fun () ->
          B.alu fb Op.Add acc acc (B.V i);
          B.alu fb Op.And acc acc (B.K 0xFFFFF));
      B.ret fb (Some acc));
  B.func b "scale_phase" ~nargs:1 (fun fb args ->
      let acc = B.vreg fb in
      let i = B.vreg fb in
      B.mov fb acc args.(0);
      B.for_ fb i ~from:(B.K 0) ~below:(B.K 4000) (fun () ->
          B.alu fb Op.Mul acc acc (B.K 3);
          B.alu fb Op.And acc acc (B.K 0xFFFF));
      B.ret fb (Some acc));
  B.func b "main" ~nargs:0 (fun fb _ ->
      let acc = B.vreg fb in
      let round = B.vreg fb in
      B.li fb acc 1;
      B.for_ fb round ~from:(B.K 0) ~below:(B.K 4) (fun () ->
          let s = B.call fb "sum_phase" [ acc ] in
          B.mov fb acc s;
          let m = B.call fb "scale_phase" [ acc ] in
          B.mov fb acc m);
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"

let () =
  let image = Program.layout (program ()) in
  Printf.printf "original binary: %d instructions\n" (Vp_prog.Image.size image);

  (* The tiny detector configuration suits a program this small; real
     workloads use the default Table 2 configuration. *)
  let config = Vacuum.Config.with_detector Vp_hsd.Config.tiny Vacuum.Config.default in

  (* 1. Profile: one run under the Hot Spot Detector. *)
  let profile = Vacuum.Driver.profile ~config image in
  Printf.printf "profiled %d instructions, %d hot-spot recordings, %d unique phases\n"
    profile.Vacuum.Driver.outcome.Emulator.instructions
    (List.length profile.Vacuum.Driver.snapshots)
    (Vp_phase.Phase_log.unique_count profile.Vacuum.Driver.log);

  (* 2. Rewrite: identify regions, extract and link packages, emit. *)
  let rewrite = Vacuum.Driver.rewrite_of_profile ~config profile in
  List.iter
    (fun p ->
      Printf.printf "  package %-24s root=%-12s %3d blocks, %d entries\n"
        p.Vp_package.Pkg.id p.Vp_package.Pkg.root
        (List.length p.Vp_package.Pkg.blocks)
        (List.length p.Vp_package.Pkg.entries))
    rewrite.Vacuum.Driver.packages;

  (* 3. Evaluate: coverage, equivalence, speedup. *)
  let coverage = Vacuum.Coverage.measure ~config rewrite in
  Printf.printf "coverage: %.1f%% of execution now runs in packages\n"
    coverage.Vacuum.Coverage.coverage_pct;
  Printf.printf "equivalent to original: %b (result %d)\n"
    coverage.Vacuum.Coverage.equivalent
    coverage.Vacuum.Coverage.outcome.Emulator.result;

  let speedup = Vacuum.Speedup.measure ~config rewrite in
  Printf.printf "cycles: %d -> %d  (speedup %.3fx)\n"
    speedup.Vacuum.Speedup.baseline.Vp_cpu.Pipeline.cycles
    speedup.Vacuum.Speedup.optimized.Vp_cpu.Pipeline.cycles
    speedup.Vacuum.Speedup.speedup
