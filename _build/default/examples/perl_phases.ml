(* The paper's Section 3.3.4 scenario on the 134.perl analogue: a
   command-interpreter loop serves as the root function of several
   phase packages sharing one launch point, and package linking lets
   execution migrate to the package matching the current phase.

     dune exec examples/perl_phases.exe *)

module Registry = Vp_workloads.Registry
module Program = Vp_prog.Program
module Phase_log = Vp_phase.Phase_log
module Linking = Vp_package.Linking
module Pkg = Vp_package.Pkg

let () =
  let w = Option.get (Registry.find ~bench:"134.perl" ~input:"B") in
  let image = Program.layout (w.Registry.program ()) in

  let profile = Vacuum.Driver.profile image in
  Printf.printf "=== phase schedule (dynamic branch intervals) ===\n";
  List.iter
    (fun (start, stop, phase) ->
      Printf.printf "  [%8d, %8d)  phase %d\n" start stop phase)
    (Phase_log.timeline profile.Vacuum.Driver.log);
  Printf.printf "%d raw recordings collapsed into %d unique phases\n\n"
    (Phase_log.raw_count profile.Vacuum.Driver.log)
    (Phase_log.unique_count profile.Vacuum.Driver.log);

  let rewrite = Vacuum.Driver.rewrite_of_profile profile in

  Printf.printf "=== packages and their roots ===\n";
  List.iter
    (fun p ->
      Printf.printf "  %-28s root=%-12s %2d branch sites, %d entries\n" p.Pkg.id
        p.Pkg.root (Pkg.branch_count p)
        (List.length p.Pkg.entries))
    rewrite.Vacuum.Driver.packages;

  Printf.printf "\n=== linking groups (shared launch points) ===\n";
  List.iter
    (fun (g : Linking.group) ->
      Printf.printf "  root %-12s rank %.3f ordering [%s]\n" g.Linking.root
        g.Linking.rank
        (String.concat " -> "
           (List.map (fun p -> p.Pkg.id) g.Linking.ordered));
      List.iter
        (fun (l : Linking.link) ->
          Printf.printf "    link: %s branch@0x%x (%s-biased) --> %s\n"
            l.Linking.from_pkg l.Linking.site.Pkg.orig_pc
            (match l.Linking.site.Pkg.bias with
            | Pkg.T -> "taken"
            | Pkg.F -> "fall-through"
            | Pkg.U -> "un"
            | Pkg.Neither -> "dead")
            l.Linking.to_pkg)
        g.Linking.links)
    rewrite.Vacuum.Driver.emitted.Vp_package.Emit.groups;

  (* Coverage with and without linking: the paper's Figure 8 bars. *)
  Printf.printf "\n=== coverage, with and without linking ===\n";
  List.iter
    (fun linking ->
      let config = Vacuum.Config.experiment ~inference:true ~linking in
      let r = Vacuum.Driver.rewrite_of_profile ~config profile in
      let c = Vacuum.Coverage.measure ~config r in
      Printf.printf "  linking %-3s -> %.1f%% of execution in packages (equivalent: %b)\n"
        (if linking then "on" else "off")
        c.Vacuum.Coverage.coverage_pct c.Vacuum.Coverage.equivalent)
    [ false; true ]
