(* The whole system without the OCaml DSL: a program written in
   textual assembly goes through the assembler, the emulator, the Hot
   Spot Detector and the packaging pipeline.

     dune exec examples/assembly_workflow.exe *)

module Asm = Vp_prog.Asm
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator

(* Two phases: a long polynomial-evaluation loop, then a long
   bit-mixing loop, repeated.  The rare branch inside each loop gives
   the packages something to specialise. *)
let source =
  {|
; vector of coefficients
.data 80

.func poly
poly$entry:
  li t0, #0          ; acc
  li t1, #0          ; i
poly$head:
  bge t1, a0, poly$done
  mul t0, t0, #3
  add t0, t0, t1
  and t2, t1, #63
  bne t2, zero, poly$skip
  xor t0, t0, #255   ; rare path: once every 64 iterations
poly$skip:
  and t0, t0, #1048575
  add t1, t1, #1
  jmp poly$head
poly$done:
  add a0, t0, #0
  ret

.func mix
mix$entry:
  li t0, #0
  li t1, #0
mix$head:
  bge t1, a0, mix$done
  shl t2, a1, #3
  xor t2, t2, t1
  add t0, t0, t2
  and t0, t0, #1048575
  add t1, t1, #1
  jmp mix$head
mix$done:
  add a0, t0, #0
  ret

.func main
main$entry:
  li t3, #0          ; round counter
  li t4, #1          ; running value
main$loop:
  li t5, #4
  bge t3, t5, main$done
  li a0, #6000
  call poly
  add t4, a0, t4
  li a0, #6000
  add a1, t4, #0
  call mix
  xor t4, t4, a0
  add t3, t3, #1
  jmp main$loop
main$done:
  add a0, t4, #0
  halt
.entry main
|}

let () =
  let program =
    match Asm.parse_program source with
    | Ok p -> p
    | Error e ->
      Format.eprintf "assembly error: %a@." Asm.pp_error e;
      exit 1
  in
  let image = Program.layout program in
  Printf.printf "assembled %d instructions across %d functions\n"
    (Vp_prog.Image.size image)
    (List.length program.Program.funcs);

  let config = Vacuum.Config.with_detector Vp_hsd.Config.tiny Vacuum.Config.default in
  let profile = Vacuum.Driver.profile ~config image in
  Printf.printf "run: %d instructions, result %d\n"
    profile.Vacuum.Driver.outcome.Emulator.instructions
    profile.Vacuum.Driver.outcome.Emulator.result;
  Printf.printf "detected %d unique phases from %d recordings\n"
    (Vp_phase.Phase_log.unique_count profile.Vacuum.Driver.log)
    (List.length profile.Vacuum.Driver.snapshots);

  let rewrite = Vacuum.Driver.rewrite_of_profile ~config profile in
  List.iter
    (fun p ->
      Printf.printf "  %-22s %2d blocks rooted at %s\n" p.Vp_package.Pkg.id
        (List.length p.Vp_package.Pkg.blocks)
        p.Vp_package.Pkg.root)
    rewrite.Vacuum.Driver.packages;

  let coverage = Vacuum.Coverage.measure ~config rewrite in
  Printf.printf "rewritten binary: %.1f%% of execution in packages, equivalent=%b\n"
    coverage.Vacuum.Coverage.coverage_pct coverage.Vacuum.Coverage.equivalent
