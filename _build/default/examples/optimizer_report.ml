(* What the package optimizer actually does: take the gzip analogue's
   packages, show branch flipping and block re-layout, estimate the
   schedule compaction per block, and time original vs. rewritten
   binaries on the EPIC model under all four paper configurations.

     dune exec examples/optimizer_report.exe *)

module Registry = Vp_workloads.Registry
module Program = Vp_prog.Program
module Pkg = Vp_package.Pkg
module Schedule = Vp_opt.Schedule
module Weights = Vp_opt.Weights
module Pipeline = Vp_cpu.Pipeline

let () =
  let w = Option.get (Registry.find ~bench:"164.gzip" ~input:"A") in
  let image = Program.layout (w.Registry.program ()) in
  let profile = Vacuum.Driver.profile image in
  let rewrite = Vacuum.Driver.rewrite_of_profile profile in

  (* Pick the largest package: gzip's deflate loop nest. *)
  let pkg =
    List.fold_left
      (fun best p ->
        if List.length p.Pkg.blocks > List.length best.Pkg.blocks then p else best)
      (List.hd rewrite.Vacuum.Driver.packages)
      rewrite.Vacuum.Driver.packages
  in
  Printf.printf "package %s (%d blocks)\n\n" pkg.Pkg.id (List.length pkg.Pkg.blocks);

  (* Layout: hottest chain first, exits pushed to the bottom. *)
  let laid_out = Vp_opt.Layout_opt.run pkg in
  let weights = Weights.compute laid_out in
  Printf.printf "=== block layout after relayout (hot chains first, exits sink) ===\n";
  List.iteri
    (fun i (b : Pkg.block) ->
      if i < 12 || b.Pkg.is_exit then
        Printf.printf "  %2d. %-32s weight %10.1f%s\n" i b.Pkg.label
          (Weights.block weights b.Pkg.label)
          (if b.Pkg.is_exit then "  [exit]" else ""))
    laid_out.Pkg.blocks;

  (* Scheduling: per-block cycle estimates before/after. *)
  Printf.printf "\n=== local schedule compaction (top blocks) ===\n";
  let interesting =
    List.filter (fun (b : Pkg.block) -> List.length b.Pkg.body >= 4) pkg.Pkg.blocks
  in
  List.iteri
    (fun i (b : Pkg.block) ->
      if i < 8 then begin
        let before = Schedule.estimate_cycles b.Pkg.body in
        let after = Schedule.estimate_cycles (Schedule.schedule_body b.Pkg.body) in
        Printf.printf "  %-32s %2d instrs: %2d -> %2d cycles\n" b.Pkg.label
          (List.length b.Pkg.body) before after
      end)
    interesting;

  (* Figure 10 for this workload: all four configurations. *)
  Printf.printf "\n=== speedup on the Table 2 EPIC model ===\n";
  let baseline = Pipeline.simulate image in
  Printf.printf "  original:              %9d cycles (IPC %.2f)\n"
    baseline.Pipeline.cycles baseline.Pipeline.ipc;
  List.iter
    (fun (inference, linking) ->
      let config = Vacuum.Config.experiment ~inference ~linking in
      let r = Vacuum.Driver.rewrite_of_profile ~config profile in
      let optimized = Pipeline.simulate (Vacuum.Driver.rewritten_image r) in
      Printf.printf "  %-22s %9d cycles (IPC %.2f)  speedup %.3fx\n"
        (Vacuum.Config.experiment_name ~inference ~linking)
        optimized.Pipeline.cycles optimized.Pipeline.ipc
        (Pipeline.speedup ~baseline ~optimized))
    [ (false, false); (false, true); (true, false); (true, true) ]
