(* Watch the Hot Spot Detector hardware at work: feed it the retired
   branch stream of the mpeg2dec analogue and report detections,
   recording traffic, and the effect of the hardware snapshot history
   of [4] on the amount of data the hardware has to dump.

     dune exec examples/hotspot_monitor.exe *)

module Registry = Vp_workloads.Registry
module Program = Vp_prog.Program
module Image = Vp_prog.Image
module Emulator = Vp_exec.Emulator
module Detector = Vp_hsd.Detector
module Snapshot = Vp_hsd.Snapshot

let run_with_history image history_size =
  let same = Vp_phase.Similarity.same in
  let d = Detector.create ~history_size ~same () in
  let (_ : Emulator.outcome) =
    Emulator.run ~on_branch:(fun ~pc ~taken -> Detector.on_branch d ~pc ~taken) image
  in
  d

let () =
  let w = Option.get (Registry.find ~bench:"mpeg2dec" ~input:"A") in
  let image = Program.layout (w.Registry.program ()) in

  let d = run_with_history image 0 in
  Printf.printf "branches retired:   %d\n" (Detector.branches_seen d);
  Printf.printf "raw detections:     %d\n" (Detector.detections d);
  Printf.printf "snapshots recorded: %d\n\n" (Detector.recordings d);

  Printf.printf "=== first snapshots (BBB contents at detection) ===\n";
  List.iteri
    (fun i snap ->
      if i < 3 then begin
        Printf.printf "hot spot %d, detected at branch %d, extent %d branches:\n"
          snap.Snapshot.id snap.Snapshot.detected_at (Snapshot.extent snap);
        List.iter
          (fun e ->
            let f = Snapshot.taken_fraction e in
            let where =
              match Image.sym_at image e.Snapshot.pc with
              | Some s -> s.Image.name
              | None -> "?"
            in
            Printf.printf "  branch 0x%-5x in %-18s exec %3d taken %3d (%.2f %s)\n"
              e.Snapshot.pc where e.Snapshot.executed e.Snapshot.taken f
              (match Snapshot.bias e with
              | Snapshot.Taken -> "taken-biased"
              | Snapshot.Not_taken -> "fall-biased"
              | Snapshot.Unbiased -> "unbiased"))
          snap.Snapshot.branches
      end)
    (Detector.snapshots d);

  (* The BBB enhancement of [4]: a short history of recorded hot spots
     suppresses re-recording of the phase the hardware just saw. *)
  Printf.printf "\n=== hardware snapshot history (recording traffic) ===\n";
  List.iter
    (fun h ->
      let d = run_with_history image h in
      Printf.printf "  history %d -> %4d recordings (of %d detections)\n" h
        (Detector.recordings d) (Detector.detections d))
    [ 0; 1; 2; 4 ]
