lib/cpu/predictor.mli: Config
