lib/cpu/config.ml: Format Printf
