lib/cpu/cache.ml: Array Config
