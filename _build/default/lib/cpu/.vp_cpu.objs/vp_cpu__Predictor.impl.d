lib/cpu/predictor.ml: Array Config
