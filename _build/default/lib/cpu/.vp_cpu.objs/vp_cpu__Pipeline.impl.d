lib/cpu/pipeline.ml: Array Cache Config Format Hashtbl List Option Predictor Printf Vp_exec Vp_isa
