lib/cpu/pipeline.ml: Array Cache Config Format Hashtbl List Option Predictor Vp_exec Vp_isa
