lib/cpu/pipeline.mli: Config Format Vp_prog
