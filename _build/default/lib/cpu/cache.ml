type t = {
  sets : int;
  assoc : int;
  line_bytes : int;
  tags : int array;  (* sets * assoc, -1 = invalid *)
  lru : int array;  (* higher = more recently used *)
  mutable clock : int;
  mutable access_count : int;
  mutable miss_count : int;
}

let create (g : Config.cache_geometry) =
  let lines = g.Config.size_bytes / g.Config.line_bytes in
  let sets = max 1 (lines / g.Config.assoc) in
  {
    sets;
    assoc = g.Config.assoc;
    line_bytes = g.Config.line_bytes;
    tags = Array.make (sets * g.Config.assoc) (-1);
    lru = Array.make (sets * g.Config.assoc) 0;
    clock = 0;
    access_count = 0;
    miss_count = 0;
  }

let access t ~addr =
  t.access_count <- t.access_count + 1;
  t.clock <- t.clock + 1;
  let line = addr / t.line_bytes in
  let set = line mod t.sets in
  let base = set * t.assoc in
  let rec find i =
    if i >= t.assoc then None
    else if t.tags.(base + i) = line then Some (base + i)
    else find (i + 1)
  in
  match find 0 with
  | Some slot ->
    t.lru.(slot) <- t.clock;
    true
  | None ->
    t.miss_count <- t.miss_count + 1;
    (* LRU victim (invalid slots have lru 0 and lose ties). *)
    let victim = ref base in
    for i = 1 to t.assoc - 1 do
      if t.lru.(base + i) < t.lru.(!victim) then victim := base + i
    done;
    t.tags.(!victim) <- line;
    t.lru.(!victim) <- t.clock;
    false

let accesses t = t.access_count
let misses t = t.miss_count

let miss_rate t =
  if t.access_count = 0 then 0.0
  else float_of_int t.miss_count /. float_of_int t.access_count

let reset_stats t =
  t.access_count <- 0;
  t.miss_count <- 0
