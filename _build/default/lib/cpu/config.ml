type cache_geometry = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
}

type t = {
  issue_width : int;
  ialu_units : int;
  fp_units : int;
  mem_units : int;
  branch_units : int;
  l1i : cache_geometry;
  l1d : cache_geometry;
  l2 : cache_geometry;
  l2_latency : int;
  memory_latency : int;
  branch_resolution : int;
  gshare_history_bits : int;
  btb_entries : int;
  ras_entries : int;
  instr_bytes : int;
  word_bytes : int;
}

let default =
  {
    issue_width = 8;
    ialu_units = 5;
    fp_units = 3;
    mem_units = 3;
    branch_units = 3;
    l1i = { size_bytes = 64 * 1024; line_bytes = 64; assoc = 4 };
    l1d = { size_bytes = 64 * 1024; line_bytes = 64; assoc = 4 };
    l2 = { size_bytes = 512 * 1024; line_bytes = 64; assoc = 8 };
    l2_latency = 7;
    memory_latency = 60;
    branch_resolution = 7;
    gshare_history_bits = 10;
    btb_entries = 1024;
    ras_entries = 32;
    instr_bytes = 8;
    word_bytes = 8;
  }

let pp fmt t =
  let row name value = Format.fprintf fmt "  %-28s %s@," name value in
  Format.fprintf fmt "@[<v>";
  row "Instruction issue" (Printf.sprintf "%d units" t.issue_width);
  row "Integer ALU" (Printf.sprintf "%d units" t.ialu_units);
  row "Floating point unit" (Printf.sprintf "%d units" t.fp_units);
  row "Memory unit" (Printf.sprintf "%d units" t.mem_units);
  row "Branch unit" (Printf.sprintf "%d units" t.branch_units);
  row "L1 data cache" (Printf.sprintf "%d KB" (t.l1d.size_bytes / 1024));
  row "L1 instruction cache" (Printf.sprintf "%d KB" (t.l1i.size_bytes / 1024));
  row "Unified L2 cache" (Printf.sprintf "%d KB" (t.l2.size_bytes / 1024));
  row "L2 latency" (Printf.sprintf "%d cycles" t.l2_latency);
  row "Memory latency" (Printf.sprintf "%d cycles" t.memory_latency);
  row "Branch resolution" (Printf.sprintf "%d cycles" t.branch_resolution);
  row "Branch predictor"
    (Printf.sprintf "%d-bit history gshare" t.gshare_history_bits);
  row "BTB size" (Printf.sprintf "%d entry" t.btb_entries);
  row "RAS size" (Printf.sprintf "%d entry" t.ras_entries);
  Format.fprintf fmt "@]"
