(** Set-associative LRU cache model shared by the I-cache, D-cache and
    L2 of the timing pipeline. *)

type t

val create : Config.cache_geometry -> t

val access : t -> addr:int -> bool
(** True on hit; a miss installs the line (allocate-on-miss, LRU
    victim). *)

val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float

val reset_stats : t -> unit
