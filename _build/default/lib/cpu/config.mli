(** The simulated EPIC machine of the paper's Table 2.

    Note on the cache rows: Table 2 as printed lists an L1 instruction
    cache of 512 KB above a unified L2 of 64 KB — an L2 smaller than
    the L1 it backs, almost certainly a typesetting artifact.  The
    default here uses 64 KB L1I / 64 KB L1D / 512 KB L2; all three are
    configuration fields. *)

type cache_geometry = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
}

type t = {
  issue_width : int;  (** 8 *)
  ialu_units : int;  (** 5 *)
  fp_units : int;  (** 3 *)
  mem_units : int;  (** 3 *)
  branch_units : int;  (** 3 *)
  l1i : cache_geometry;
  l1d : cache_geometry;
  l2 : cache_geometry;
  l2_latency : int;  (** extra cycles on an L1 miss hitting L2 *)
  memory_latency : int;  (** extra cycles on an L2 miss *)
  branch_resolution : int;  (** 7-cycle misprediction penalty *)
  gshare_history_bits : int;  (** 10 *)
  btb_entries : int;  (** 1024 *)
  ras_entries : int;  (** 32 *)
  instr_bytes : int;  (** bytes per instruction for I-cache indexing *)
  word_bytes : int;  (** bytes per data word for D-cache indexing *)
}

val default : t

val pp : Format.formatter -> t -> unit
(** Table 2-style rendering used by the benchmark harness. *)
