type t = {
  history_mask : int;
  mutable history : int;
  counters : int array;  (* 2-bit saturating *)
  btb_tags : int array;
  btb_targets : int array;
  ras : int array;
  mutable ras_top : int;  (* number of valid entries, wraps *)
  mutable n_branches : int;
  mutable n_mispredictions : int;
  mutable n_btb_lookups : int;
  mutable n_btb_misses : int;
  mutable n_returns : int;
  mutable n_ras_misses : int;
}

type stats = {
  branches : int;
  mispredictions : int;
  btb_lookups : int;
  btb_misses : int;
  returns : int;
  ras_misses : int;
}

let create (cfg : Config.t) =
  let table_size = 1 lsl cfg.Config.gshare_history_bits in
  {
    history_mask = table_size - 1;
    history = 0;
    counters = Array.make table_size 1;
    btb_tags = Array.make cfg.Config.btb_entries (-1);
    btb_targets = Array.make cfg.Config.btb_entries 0;
    ras = Array.make cfg.Config.ras_entries 0;
    ras_top = 0;
    n_branches = 0;
    n_mispredictions = 0;
    n_btb_lookups = 0;
    n_btb_misses = 0;
    n_returns = 0;
    n_ras_misses = 0;
  }

let predict_branch t ~pc ~taken =
  t.n_branches <- t.n_branches + 1;
  let index = (pc lxor t.history) land t.history_mask in
  let counter = t.counters.(index) in
  let prediction = counter >= 2 in
  t.counters.(index) <-
    (if taken then min 3 (counter + 1) else max 0 (counter - 1));
  t.history <- ((t.history lsl 1) lor if taken then 1 else 0) land t.history_mask;
  let correct = prediction = taken in
  if not correct then t.n_mispredictions <- t.n_mispredictions + 1;
  correct

let btb_lookup t ~pc ~target =
  t.n_btb_lookups <- t.n_btb_lookups + 1;
  let n = Array.length t.btb_tags in
  let slot = pc mod n in
  let hit = t.btb_tags.(slot) = pc && t.btb_targets.(slot) = target in
  if not hit then begin
    t.n_btb_misses <- t.n_btb_misses + 1;
    t.btb_tags.(slot) <- pc;
    t.btb_targets.(slot) <- target
  end;
  hit

let call_push t ~return_addr =
  let n = Array.length t.ras in
  t.ras.(t.ras_top mod n) <- return_addr;
  t.ras_top <- t.ras_top + 1

let ret_predict t ~actual =
  t.n_returns <- t.n_returns + 1;
  let n = Array.length t.ras in
  let correct =
    if t.ras_top = 0 then false
    else begin
      t.ras_top <- t.ras_top - 1;
      t.ras.(t.ras_top mod n) = actual
    end
  in
  if not correct then t.n_ras_misses <- t.n_ras_misses + 1;
  correct

let stats t =
  {
    branches = t.n_branches;
    mispredictions = t.n_mispredictions;
    btb_lookups = t.n_btb_lookups;
    btb_misses = t.n_btb_misses;
    returns = t.n_returns;
    ras_misses = t.n_ras_misses;
  }
