module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Reg = Vp_isa.Reg
module Emulator = Vp_exec.Emulator

type stats = {
  cycles : int;
  instructions : int;
  ipc : float;
  branch_mispredicts : int;
  ras_mispredicts : int;
  taken_redirects : int;
  icache_misses : int;
  dcache_misses : int;
  l2_misses : int;
  fetch_stall_cycles : int;
  data_stall_cycles : int;
}

let fu_index = function
  | Op.Ialu -> 0
  | Op.Fp | Op.Long_fp -> 1
  | Op.Mem -> 2
  | Op.Control -> 3

let simulate_internal ?(config = Config.default) ?fuel ?mem_words ?on_branch_progress
    image =
  let l1i = Cache.create config.Config.l1i in
  let l1d = Cache.create config.Config.l1d in
  let l2 = Cache.create config.Config.l2 in
  let pred = Predictor.create config in
  let fu_limit =
    [|
      config.Config.ialu_units;
      config.Config.fp_units;
      config.Config.mem_units;
      config.Config.branch_units;
    |]
  in
  let fu_used = Array.make 4 0 in
  let reg_ready = Array.make Reg.count 0 in
  let cycle = ref 0 in
  let width_used = ref 0 in
  let fetch_ready = ref 0 in
  let fetch_stalls = ref 0 in
  let data_stalls = ref 0 in
  let taken_redirects = ref 0 in
  let instructions = ref 0 in
  let advance_to c =
    if c > !cycle then begin
      cycle := c;
      width_used := 0;
      Array.fill fu_used 0 4 0
    end
  in
  (* Memory-hierarchy charge for one access; returns extra latency. *)
  let hierarchy cache addr =
    if Cache.access cache ~addr then 0
    else if Cache.access l2 ~addr then config.Config.l2_latency
    else config.Config.l2_latency + config.Config.memory_latency
  in
  let on_event (e : Emulator.event) =
    incr instructions;
    (* Fetch: I-cache access for this instruction's line. *)
    let fetch_pen = hierarchy l1i (e.Emulator.pc * config.Config.instr_bytes) in
    if fetch_pen > 0 then fetch_ready := max !fetch_ready (!cycle + fetch_pen);
    (* Earliest issue: fetch and operands. *)
    let op_ready =
      List.fold_left
        (fun acc r -> max acc reg_ready.(Reg.to_int r))
        0
        (Instr.uses e.Emulator.instr)
    in
    let earliest = max !fetch_ready op_ready in
    if earliest > !cycle then begin
      (if !fetch_ready >= op_ready then
         fetch_stalls := !fetch_stalls + (earliest - !cycle)
       else data_stalls := !data_stalls + (earliest - !cycle));
      advance_to earliest
    end;
    (* Structural hazards: issue width and FU availability. *)
    let fu = fu_index (Instr.fu e.Emulator.instr) in
    while
      !width_used >= config.Config.issue_width || fu_used.(fu) >= fu_limit.(fu)
    do
      advance_to (!cycle + 1)
    done;
    fu_used.(fu) <- fu_used.(fu) + 1;
    incr width_used;
    (* Result latency, plus D-cache behaviour for memory operations. *)
    let latency =
      match e.Emulator.instr with
      | Instr.Load _ ->
        let pen =
          match e.Emulator.mem_addr with
          | Some a -> hierarchy l1d (a * config.Config.word_bytes)
          | None -> 0
        in
        Instr.latency e.Emulator.instr + pen
      | Instr.Store _ ->
        (match e.Emulator.mem_addr with
        | Some a -> ignore (hierarchy l1d (a * config.Config.word_bytes))
        | None -> ());
        Instr.latency e.Emulator.instr
      | i -> Instr.latency i
    in
    List.iter
      (fun r -> reg_ready.(Reg.to_int r) <- !cycle + latency)
      (Instr.defs e.Emulator.instr);
    (* Control flow: fetch redirects and mispredictions.  Every
       conditional branch must consult the predictor and fire
       [on_branch_progress]: the emulator and the HSD count every
       [Br], so skipping any here would silently shift phase
       attribution in {!simulate_phases}. *)
    (match e.Emulator.instr with
    | Instr.Br { target = Instr.Label l; _ } ->
      invalid_arg
        (Printf.sprintf "Pipeline: unresolved label %s in branch at 0x%x" l
           e.Emulator.pc)
    | Instr.Br { target = Instr.Addr target; _ } ->
      let correct = Predictor.predict_branch pred ~pc:e.Emulator.pc ~taken:e.Emulator.taken in
      if not correct then
        fetch_ready := max !fetch_ready (!cycle + config.Config.branch_resolution)
      else if e.Emulator.taken then begin
        let btb_hit = Predictor.btb_lookup pred ~pc:e.Emulator.pc ~target in
        incr taken_redirects;
        fetch_ready := max !fetch_ready (!cycle + if btb_hit then 1 else 2)
      end;
      (match on_branch_progress with
      | Some f -> f ~cycles:!cycle ~instructions:!instructions
      | None -> ())
    | Instr.Jmp _ -> fetch_ready := max !fetch_ready (!cycle + 1)
    | Instr.Call _ ->
      Predictor.call_push pred ~return_addr:(e.Emulator.pc + 1);
      fetch_ready := max !fetch_ready (!cycle + 1)
    | Instr.Ret ->
      let correct = Predictor.ret_predict pred ~actual:e.Emulator.next_pc in
      fetch_ready :=
        max !fetch_ready
          (!cycle + if correct then 1 else config.Config.branch_resolution)
    | _ -> ())
  in
  let (_ : Emulator.outcome) = Emulator.run ?fuel ?mem_words ~on_event image in
  let pstats = Predictor.stats pred in
  let total_cycles = !cycle + 1 in
  {
    cycles = total_cycles;
    instructions = !instructions;
    ipc =
      (if total_cycles = 0 then 0.0
       else float_of_int !instructions /. float_of_int total_cycles);
    branch_mispredicts = pstats.Predictor.mispredictions;
    ras_mispredicts = pstats.Predictor.ras_misses;
    taken_redirects = !taken_redirects;
    icache_misses = Cache.misses l1i;
    dcache_misses = Cache.misses l1d;
    l2_misses = Cache.misses l2;
    fetch_stall_cycles = !fetch_stalls;
    data_stall_cycles = !data_stalls;
  }

let simulate ?config ?fuel ?mem_words image =
  simulate_internal ?config ?fuel ?mem_words image

type phase_stats = {
  phase : int;
  branches : int;
  seg_cycles : int;
  seg_instructions : int;
  seg_ipc : float;
}

let simulate_phases ?config ?fuel ?mem_words ~timeline image =
  (* The timeline gives [(start, stop, phase)] intervals in dynamic
     conditional-branch indices; attribute cycle/instruction deltas to
     the phase active at each retired branch (interval gaps — detector
     warmup — attribute to phase -1). *)
  let acc : (int, int * int * int) Hashtbl.t = Hashtbl.create 8 in
  let branch_index = ref 0 in
  let last_cycles = ref 0 in
  let last_instructions = ref 0 in
  (* The timeline is sorted and branch indices arrive monotonically, so
     a cursor suffices. *)
  let remaining = ref timeline in
  let phase_of i =
    let rec advance () =
      match !remaining with
      | (_, e, _) :: rest when i >= e ->
        remaining := rest;
        advance ()
      | _ -> ()
    in
    advance ();
    match !remaining with
    | (s, _, p) :: _ when i >= s -> p
    | _ -> -1
  in
  let on_branch_progress ~cycles ~instructions =
    incr branch_index;
    let p = phase_of !branch_index in
    let b, c, n = Option.value ~default:(0, 0, 0) (Hashtbl.find_opt acc p) in
    Hashtbl.replace acc p
      (b + 1, c + (cycles - !last_cycles), n + (instructions - !last_instructions));
    last_cycles := cycles;
    last_instructions := instructions
  in
  let (_ : stats) =
    simulate_internal ?config ?fuel ?mem_words ~on_branch_progress image
  in
  Hashtbl.fold
    (fun phase (branches, seg_cycles, seg_instructions) l ->
      {
        phase;
        branches;
        seg_cycles;
        seg_instructions;
        seg_ipc =
          (if seg_cycles = 0 then 0.0
           else float_of_int seg_instructions /. float_of_int seg_cycles);
      }
      :: l)
    acc []
  |> List.sort (fun a b -> compare a.phase b.phase)

let speedup ~baseline ~optimized =
  if optimized.cycles = 0 then 0.0
  else float_of_int baseline.cycles /. float_of_int optimized.cycles

let pp fmt s =
  Format.fprintf fmt
    "@[<v>cycles %d, instructions %d, IPC %.3f@,\
     mispredicts %d (ras %d), taken redirects %d@,\
     misses: L1I %d, L1D %d, L2 %d@,\
     stalls: fetch %d, data %d@]"
    s.cycles s.instructions s.ipc s.branch_mispredicts s.ras_mispredicts
    s.taken_redirects s.icache_misses s.dcache_misses s.l2_misses
    s.fetch_stall_cycles s.data_stall_cycles
