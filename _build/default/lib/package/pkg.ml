module Instr = Vp_isa.Instr

type context = int list

type term =
  | Fall of string
  | Goto of string
  | Branch of {
      cond : Vp_isa.Op.cond;
      src1 : Vp_isa.Reg.t;
      src2 : Vp_isa.Reg.t;
      taken : string;
      fall : string;
    }
  | Call_orig of { callee : int; next : string }
  | Inlined_call of { ra_value : int; prologue : string }
  | Return
  | Exit_jump of int
  | Stop

type block = {
  label : string;
  orig_addr : int;
  context : context;
  body : Instr.t list;
  term : term;
  weight : int;
  taken_prob : float option;
  live_out : Vp_isa.Reg.t list;
  is_exit : bool;
}

type bias = T | F | U | Neither

type site = {
  orig_pc : int;
  site_context : context;
  block_label : string;
  bias : bias;
  cold_exit : string option;
  cold_target : int option;
}

type t = {
  id : string;
  region_id : int;
  root : string;
  blocks : block list;
  entries : (string * int) list;
  sites : site list;
}

let find_block t label = List.find_opt (fun b -> b.label = label) t.blocks

let copy_label t context addr =
  List.find_opt
    (fun b -> (not b.is_exit) && b.context = context && b.orig_addr = addr)
    t.blocks
  |> Option.map (fun b -> b.label)

let branch_count t = List.length t.sites

(* Terminator footprint in emitted instructions.  [Fall] may still
   cost a jump after linearisation; we count the worst case so code-
   expansion numbers are conservative. *)
let term_size = function
  | Fall _ | Goto _ | Branch _ | Return | Exit_jump _ | Stop -> 1
  | Call_orig _ -> 1
  | Inlined_call _ -> 2

let block_size b = List.length b.body + term_size b.term

let size t = List.fold_left (fun acc b -> acc + block_size b) 0 t.blocks

let static_instructions t =
  List.fold_left
    (fun acc b -> if b.is_exit then acc else acc + block_size b)
    0 t.blocks

let map_blocks f t = { t with blocks = List.map f t.blocks }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let labels = Hashtbl.create 64 in
  let rec check_dups = function
    | [] -> Ok ()
    | b :: rest ->
      if Hashtbl.mem labels b.label then err "duplicate label %s" b.label
      else begin
        Hashtbl.replace labels b.label b;
        check_dups rest
      end
  in
  let resolves ~cross_ok l =
    if Hashtbl.mem labels l then Ok ()
    else if cross_ok then Ok ()
    else err "dangling target %s" l
  in
  let ( let* ) = Result.bind in
  let* () = check_dups t.blocks in
  let rec check_blocks = function
    | [] -> Ok ()
    | b :: rest ->
      let* () =
        if List.exists Instr.is_control b.body then
          err "control instruction inside body of %s" b.label
        else Ok ()
      in
      let targets =
        match b.term with
        | Fall l | Goto l -> [ l ]
        | Branch { taken; fall; _ } -> [ taken; fall ]
        | Call_orig { next; _ } -> [ next ]
        | Inlined_call { prologue; _ } -> [ prologue ]
        | Return | Exit_jump _ | Stop -> []
      in
      let rec check_targets = function
        | [] -> check_blocks rest
        | l :: more ->
          (* Linked exit blocks may point into another package. *)
          let* () = resolves ~cross_ok:b.is_exit l in
          check_targets more
      in
      check_targets targets
  in
  let* () = check_blocks t.blocks in
  let rec check_entries = function
    | [] -> Ok ()
    | (l, _) :: rest ->
      let* () = resolves ~cross_ok:false l in
      check_entries rest
  in
  let* () = check_entries t.entries in
  let rec check_sites = function
    | [] -> Ok ()
    | s :: rest ->
      let* () = resolves ~cross_ok:false s.block_label in
      let* () =
        match s.cold_exit with
        | Some l -> resolves ~cross_ok:false l
        | None -> Ok ()
      in
      check_sites rest
  in
  check_sites t.sites

let pp_term fmt = function
  | Fall l -> Format.fprintf fmt "fall %s" l
  | Goto l -> Format.fprintf fmt "goto %s" l
  | Branch { taken; fall; _ } -> Format.fprintf fmt "branch %s / %s" taken fall
  | Call_orig { callee; next } -> Format.fprintf fmt "call 0x%x then %s" callee next
  | Inlined_call { prologue; ra_value } ->
    Format.fprintf fmt "inlined-call %s (ra 0x%x)" prologue ra_value
  | Return -> Format.pp_print_string fmt "return"
  | Exit_jump a -> Format.fprintf fmt "exit 0x%x" a
  | Stop -> Format.pp_print_string fmt "stop"

let pp fmt t =
  Format.fprintf fmt "@[<v>package %s (root %s, region %d)@," t.id t.root t.region_id;
  List.iter
    (fun b ->
      Format.fprintf fmt "  %s%s @@%x: %d instrs, %a@," b.label
        (if b.is_exit then " [exit]" else "")
        b.orig_addr (List.length b.body) pp_term b.term)
    t.blocks;
  Format.fprintf fmt "@]"
