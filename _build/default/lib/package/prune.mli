(** Pruned views of marked functions (Section 3.3.1): the hot subgraph
    a package copies, the exits it must preserve, and the
    prologue/epilogue conditions partial inlining depends on.  Live
    registers across exit arcs come from {!Vp_cfg.Liveness} on the
    recovered CFG, so exit blocks can carry sound dummy-consumer
    sets. *)

type view

val view : Vp_region.Region.mf -> view

val mf : view -> Vp_region.Region.mf
val cfg : view -> Vp_cfg.Cfg.t

val hot_blocks : view -> int list

val internal_succs : view -> int -> Vp_cfg.Cfg.arc list
(** Hot arcs to hot blocks. *)

val exit_arcs_of : view -> int -> Vp_cfg.Cfg.arc list
(** Arcs leaving the hot code from this (hot) block. *)

val entry_blocks : view -> int list
(** Hot blocks with no incoming internal arc, CFG back edges
    ignored — the package entry candidates of the root function. *)

val reachable_from_prologue : view -> int list
(** Hot blocks reachable from the function entry through internal
    arcs; inlining copies exactly these. *)

val has_prologue : view -> bool
(** The function's entry block is hot. *)

val ret_blocks : view -> int list

val inlinable : view -> bool
(** Prologue present, and some hot return block is reachable from it
    through hot code — the paper's partial-inlining precondition. *)

val live_across : view -> Vp_cfg.Cfg.arc -> Vp_isa.Reg.t list
