(** Root-function selection (Section 3.3.2).

    Over the region call graph (hot call sites between region
    functions), a function is a root when:
    - it has no in-region callers, ignoring call-graph back edges; or
    - it is not inlinable (no prologue, no epilogue, or no hot path
      between them), so no caller can absorb it; or
    - it is self-recursive (one copy may still be inlined into
      itself). *)

type reason = No_callers | Not_inlinable | Self_recursive

type t

val compute : Vp_region.Region.t -> t

val roots : t -> (string * reason list) list
(** Root functions in region insertion order with every reason that
    applies. *)

val is_root : t -> string -> bool

val region_callees : t -> string -> (int * string) list
(** Hot call sites of a function into region functions:
    [(site_address, callee_name)]. *)

val view : t -> string -> Prune.view
(** The pruned view of a region function (cached). *)

val inlinable : t -> string -> bool
