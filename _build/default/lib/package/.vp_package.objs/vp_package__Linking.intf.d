lib/package/linking.mli: Pkg
