lib/package/pkg.mli: Format Vp_isa
