lib/package/linking.ml: Array Hashtbl List Logs Pkg
