lib/package/linking.ml: Array List Pkg
