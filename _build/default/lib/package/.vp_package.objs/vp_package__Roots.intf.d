lib/package/roots.mli: Prune Vp_region
