lib/package/prune.mli: Vp_cfg Vp_isa Vp_region
