lib/package/roots.ml: Hashtbl List Option Prune Vp_cfg Vp_prog Vp_region
