lib/package/prune.ml: Array Fun List Vp_cfg Vp_isa Vp_region
