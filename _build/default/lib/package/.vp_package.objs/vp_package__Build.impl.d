lib/package/build.ml: Array Hashtbl List Option Pkg Printf Prune Roots Vp_cfg Vp_hsd Vp_isa Vp_prog Vp_region
