lib/package/build.mli: Pkg Roots Vp_region
