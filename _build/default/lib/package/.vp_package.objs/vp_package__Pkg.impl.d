lib/package/pkg.ml: Format Hashtbl List Option Printf Result Vp_isa
