lib/package/emit.ml: Array Hashtbl Linking List Pkg Printf Vp_isa Vp_prog
