lib/package/emit.mli: Linking Pkg Vp_isa Vp_prog
