(** Package construction (Section 3.3.3): one package per root
    function of a region, copying the root's hot blocks and partially
    inlining hot callees.

    Inlining decisions: a callee is inlined when it is a region
    function, passes the prologue/epilogue/path test, and does not
    already appear on the inline path — except that a direct
    self-recursive call is inlined exactly once (the paper's single
    self-copy).  Calls that are not inlined become calls to the
    original code; since launch points redirect hot entries into
    packages, deep recursive calls re-enter the package on their own.

    At every inlined call site the original continuation address is
    still materialised into [ra], so a cold exit into original callee
    code returns to original caller code correctly. *)

val build : Vp_region.Region.t -> prefix:string -> Pkg.t list
(** One package per root, in region insertion order.  [prefix] seeds
    package ids (e.g. ["pkg$p3"]). *)

val build_one :
  Vp_region.Region.t -> Roots.t -> prefix:string -> string -> Pkg.t
(** Build the package rooted at the given function. *)
