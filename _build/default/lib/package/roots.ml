module Cfg = Vp_cfg.Cfg
module Image = Vp_prog.Image
module Region = Vp_region.Region

type reason = No_callers | Not_inlinable | Self_recursive

type t = {
  region : Region.t;
  views : (string * Prune.view) list;
  calls : (string * (int * string) list) list;  (* caller -> sites *)
  root_list : (string * reason list) list;
}

(* Hot call sites of [mf] whose callee is a region function, with the
   call instruction's address. *)
let call_sites_of region name mf =
  let cfg = Region.cfg mf in
  List.filter_map
    (fun (b, callee_addr) ->
      match Image.sym_at (Region.image region) callee_addr with
      | Some sym when Region.find_func region sym.Image.name <> None ->
        let site = Cfg.start cfg b + Cfg.len cfg b - 1 in
        Some (site, sym.Image.name)
      | Some _ | None -> None)
    (Region.hot_call_sites mf)
  |> List.sort compare
  |> fun sites ->
  ignore name;
  sites

(* DFS back edges over the region call graph, starting from functions
   with no in-region callers, then any unvisited ones. *)
let callgraph_back_edges funcs calls =
  let adj name =
    List.sort_uniq compare (List.map snd (List.assoc name calls))
  in
  let has_callers name =
    List.exists (fun (caller, sites) ->
        caller <> name && List.exists (fun (_, callee) -> callee = name) sites)
      calls
  in
  let state = Hashtbl.create 16 in
  let back = ref [] in
  let rec dfs name =
    Hashtbl.replace state name `Grey;
    List.iter
      (fun callee ->
        match Hashtbl.find_opt state callee with
        | Some `Grey -> back := (name, callee) :: !back
        | Some `Black -> ()
        | None -> dfs callee)
      (adj name);
    Hashtbl.replace state name `Black
  in
  List.iter (fun name -> if not (has_callers name) then dfs name) funcs;
  List.iter (fun name -> if not (Hashtbl.mem state name) then dfs name) funcs;
  List.sort_uniq compare !back

let compute region =
  let funcs = List.map fst (Region.funcs region) in
  let views =
    List.map (fun (name, mf) -> (name, Prune.view mf)) (Region.funcs region)
  in
  let calls =
    List.map
      (fun (name, mf) -> (name, call_sites_of region name mf))
      (Region.funcs region)
  in
  let back = callgraph_back_edges funcs calls in
  let root_list =
    List.filter_map
      (fun name ->
        let self_recursive =
          List.exists (fun (_, callee) -> callee = name) (List.assoc name calls)
        in
        let callers =
          List.concat_map
            (fun (caller, sites) ->
              List.filter_map
                (fun (_, callee) ->
                  if
                    callee = name
                    && not (List.mem (caller, callee) back)
                    && caller <> name
                  then Some caller
                  else None)
                sites)
            calls
        in
        let reasons =
          (if callers = [] then [ No_callers ] else [])
          @ (if not (Prune.inlinable (List.assoc name views)) then [ Not_inlinable ]
             else [])
          @ if self_recursive then [ Self_recursive ] else []
        in
        if reasons = [] then None else Some (name, reasons))
      funcs
  in
  { region; views; calls; root_list }

let roots t = t.root_list

let is_root t name = List.mem_assoc name t.root_list

let region_callees t name = Option.value ~default:[] (List.assoc_opt name t.calls)

let view t name = List.assoc name t.views

let inlinable t name = Prune.inlinable (view t name)
