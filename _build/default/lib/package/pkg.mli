(** The package intermediate representation.

    A package is a connected piece of code extracted from one region
    (Section 3.3): copies of hot blocks of the root function with hot
    callees partially inlined, explicit exit blocks on every path that
    leaves the hot code, and entry blocks reachable from original-code
    launch points.  Blocks carry symbolic labels; {!Emit} linearises
    and resolves them to image addresses.

    Each block remembers its {e inline context} — the list of original
    call-site addresses from the root down to the copy — because
    package linking may only connect branch sites with identical
    contexts (Section 3.3.4). *)

type context = int list
(** Original call-site addresses, root-first; [[]] for root-level
    blocks. *)

type term =
  | Fall of string  (** fall through to the labelled block *)
  | Goto of string
  | Branch of {
      cond : Vp_isa.Op.cond;
      src1 : Vp_isa.Reg.t;
      src2 : Vp_isa.Reg.t;
      taken : string;
      fall : string;
    }
  | Call_orig of { callee : int; next : string }
      (** call original code at [callee], continue at [next] *)
  | Inlined_call of { ra_value : int; prologue : string }
      (** materialise the original continuation address into [ra] and
          jump to the inlined callee's prologue copy *)
  | Return
  | Exit_jump of int  (** leave the package to an original address *)
  | Stop  (** halt *)

type block = {
  label : string;
  orig_addr : int;  (** original start address; -1 for synthetic blocks *)
  context : context;
  body : Vp_isa.Instr.t list;  (** straight-line, no control instructions *)
  term : term;
  weight : int;  (** region weight estimate (for layout) *)
  taken_prob : float option;  (** for [Branch] terminators *)
  live_out : Vp_isa.Reg.t list;
      (** exit blocks: registers live along the exited arc — the
          paper's dummy consumers, constraining the optimizer *)
  is_exit : bool;
}

type bias = T | F | U | Neither
(** Branch-site bias within this package: [T]aken direction internal
    and fall-through cold, [F] the reverse, [U] both internal,
    [Neither] both cold. *)

type site = {
  orig_pc : int;  (** original address of the conditional branch *)
  site_context : context;
  block_label : string;
  bias : bias;
  cold_exit : string option;  (** the exit block of the cold direction *)
  cold_target : int option;  (** original address the cold direction reaches *)
}

type t = {
  id : string;
  region_id : int;  (** unique hot-spot / phase id *)
  root : string;  (** root function name *)
  blocks : block list;  (** copy order; entries first *)
  entries : (string * int) list;  (** entry label, original address *)
  sites : site list;
}

val find_block : t -> string -> block option

val copy_label : t -> context -> int -> string option
(** Label of this package's copy of the original block at the given
    address under the given context, if present. *)

val branch_count : t -> int
(** Conditional branch sites — the denominator of the linking rank. *)

val size : t -> int
(** Static instructions, terminators included (exit blocks count 1). *)

val static_instructions : t -> int
(** Instructions attributable to selected original code: like {!size}
    but without synthetic exit blocks. *)

val map_blocks : (block -> block) -> t -> t

val validate : t -> (unit, string) result
(** Structural soundness: unique block labels; every internal
    terminator target and entry label resolves to a block of this
    package (exit blocks may also target other packages after
    linking); bodies are straight-line; every site's block and cold
    exit exist. *)

val pp : Format.formatter -> t -> unit
