type link = {
  from_pkg : string;
  site : Pkg.site;
  to_pkg : string;
  to_label : string;
}

type group = {
  root : string;
  ordered : Pkg.t list;
  links : link list;
  rank : float;
}

let rank_of_ratios = function
  | [] -> 0.0
  | r :: rest ->
    let acc = ref r in
    let weight = ref r in
    List.iter
      (fun ri ->
        weight := !weight *. ri;
        acc := !acc +. !weight)
      rest;
    !acc

(* A site with a cold direction links to the first package rightward
   (wrapping, excluding the source) holding a copy of the cold target
   under the identical inline context. *)
let links_for_ordering ordered =
  let n = List.length ordered in
  let arr = Array.of_list ordered in
  let links = ref [] in
  Array.iteri
    (fun i p ->
      List.iter
        (fun (site : Pkg.site) ->
          match (site.Pkg.cold_exit, site.Pkg.cold_target, site.Pkg.bias) with
          | Some _, Some target, (Pkg.T | Pkg.F) ->
            let rec scan k =
              if k >= n - 1 then ()
              else
                let q = arr.((i + 1 + k) mod n) in
                (match Pkg.copy_label q site.Pkg.site_context target with
                | Some to_label ->
                  links :=
                    {
                      from_pkg = p.Pkg.id;
                      site;
                      to_pkg = q.Pkg.id;
                      to_label;
                    }
                    :: !links
                | None -> scan (k + 1))
            in
            scan 0
          | _ -> ())
        p.Pkg.sites)
    arr;
  List.rev !links

let rank_of_ordering ordered =
  let links = links_for_ordering ordered in
  let incoming p =
    List.length (List.filter (fun l -> l.to_pkg = p.Pkg.id) links)
  in
  let ratios =
    List.map
      (fun p ->
        let branches = Pkg.branch_count p in
        if branches = 0 then 0.0
        else float_of_int (incoming p) /. float_of_int branches)
      ordered
  in
  (rank_of_ratios ratios, links)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let best_ordering pkgs =
  let candidates =
    if List.length pkgs <= 6 then permutations pkgs else [ pkgs ]
  in
  let scored =
    List.map
      (fun ordering ->
        let rank, links = rank_of_ordering ordering in
        (rank, ordering, links))
      candidates
  in
  List.fold_left
    (fun (best_rank, best_ord, best_links) (rank, ord, links) ->
      if rank > best_rank then (rank, ord, links) else (best_rank, best_ord, best_links))
    (match scored with
    | first :: _ -> first
    | [] -> (0.0, pkgs, []))
    scored

let group_packages ?(linking = true) pkgs =
  let roots =
    List.fold_left
      (fun acc p -> if List.mem p.Pkg.root acc then acc else acc @ [ p.Pkg.root ])
      [] pkgs
  in
  List.map
    (fun root ->
      let members = List.filter (fun p -> p.Pkg.root = root) pkgs in
      if linking && List.length members > 1 then
        let rank, ordered, links = best_ordering members in
        { root; ordered; links; rank }
      else { root; ordered = members; links = []; rank = 0.0 })
    roots

(* Retarget the exit blocks chosen by links. *)
let apply groups =
  let retarget links p =
    let target_of label =
      List.find_opt (fun l -> l.from_pkg = p.Pkg.id && l.site.Pkg.cold_exit = Some label) links
    in
    Pkg.map_blocks
      (fun b ->
        if not b.Pkg.is_exit then b
        else
          match target_of b.Pkg.label with
          | Some l -> { b with Pkg.term = Pkg.Goto l.to_label }
          | None -> b)
      p
  in
  List.concat_map
    (fun g -> List.map (retarget g.links) g.ordered)
    groups
