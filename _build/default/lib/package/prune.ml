module Cfg = Vp_cfg.Cfg
module Liveness = Vp_cfg.Liveness
module Region = Vp_region.Region
module T = Vp_region.Temperature
module Instr = Vp_isa.Instr

type view = {
  mf : Region.mf;
  live : Liveness.t;
  hot : bool array;  (* block -> hot *)
}

let view mf =
  let cfg = Region.cfg mf in
  let hot = Array.init (Cfg.num_blocks cfg) (fun b -> T.is_hot (Region.temp mf b)) in
  { mf; live = Liveness.compute cfg; hot }

let mf v = v.mf
let cfg v = Region.cfg v.mf

let hot_blocks v =
  List.filter (fun b -> v.hot.(b)) (List.init (Array.length v.hot) Fun.id)

let arc_internal v (a : Cfg.arc) =
  v.hot.(a.Cfg.src) && v.hot.(a.Cfg.dst)
  && T.is_hot (Region.arc_temp v.mf a)

let internal_succs v b =
  List.filter (arc_internal v) (Cfg.succs (cfg v) b)

let exit_arcs_of v b =
  if not v.hot.(b) then []
  else List.filter (fun a -> not (arc_internal v a)) (Cfg.succs (cfg v) b)

let entry_blocks v =
  List.filter
    (fun b ->
      v.hot.(b)
      && not
           (List.exists (arc_internal v)
              (Cfg.preds_ignoring_back_edges (cfg v) b)))
    (hot_blocks v)

let reachable_from_prologue v =
  let c = cfg v in
  let entry = Cfg.entry c in
  if not v.hot.(entry) then []
  else begin
    let seen = Array.make (Cfg.num_blocks c) false in
    let rec dfs b =
      if not seen.(b) then begin
        seen.(b) <- true;
        List.iter (fun (a : Cfg.arc) -> dfs a.Cfg.dst) (internal_succs v b)
      end
    in
    dfs entry;
    List.filter (fun b -> seen.(b)) (List.init (Cfg.num_blocks c) Fun.id)
  end

let has_prologue v = v.hot.(Cfg.entry (cfg v))

let ret_blocks v =
  List.filter
    (fun b ->
      match Cfg.terminator (cfg v) b with
      | Some Instr.Ret -> true
      | _ -> false)
    (hot_blocks v)

let inlinable v =
  has_prologue v
  &&
  let reach = reachable_from_prologue v in
  List.exists (fun b -> List.mem b reach) (ret_blocks v)

let live_across v a = Liveness.live_across v.live a
