module Snapshot = Vp_hsd.Snapshot

type phase = {
  id : int;
  representative : Snapshot.t;
  occurrences : Snapshot.t list;
}

type t = { phases : phase list; schedule : (int * int * int) list; raw : int }

let build ?(similarity = Similarity.default) snapshots =
  let classes : (int * Snapshot.t * Snapshot.t list ref) list ref = ref [] in
  let schedule_rev = ref [] in
  List.iter
    (fun snap ->
      let assigned =
        List.find_opt
          (fun (_, rep, _) -> Similarity.same ~config:similarity snap rep)
          !classes
      in
      let id =
        match assigned with
        | Some (id, _, members) ->
          members := snap :: !members;
          id
        | None ->
          let id = List.length !classes in
          classes := !classes @ [ (id, snap, ref [ snap ]) ];
          id
      in
      schedule_rev := (snap.Snapshot.detected_at, snap.Snapshot.ended_at, id) :: !schedule_rev)
    snapshots;
  let phases =
    List.map
      (fun (id, rep, members) ->
        { id; representative = rep; occurrences = List.rev !members })
      !classes
  in
  { phases; schedule = List.rev !schedule_rev; raw = List.length snapshots }

let phases t = t.phases

(* Merge adjacent same-phase intervals for a readable schedule. *)
let timeline t =
  let rec merge = function
    | (s1, e1, p1) :: (s2, e2, p2) :: rest when p1 = p2 && e1 = s2 ->
      merge ((s1, e2, p1) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  merge t.schedule

let raw_count t = t.raw
let unique_count t = List.length t.phases

let extent p =
  List.fold_left (fun acc s -> acc + Snapshot.extent s) 0 p.occurrences

let transitions t =
  let tl = timeline t in
  let rec count = function
    | (_, _, a) :: ((_, _, b) :: _ as rest) ->
      (if a <> b then 1 else 0) + count rest
    | _ -> 0
  in
  count tl

let pp fmt t =
  Format.fprintf fmt "@[<v>%d raw recordings, %d unique phases@," t.raw
    (unique_count t);
  List.iter
    (fun p ->
      Format.fprintf fmt "phase %d: %d occurrences, extent %d, %d branches@," p.id
        (List.length p.occurrences) (extent p)
        (List.length p.representative.Snapshot.branches))
    t.phases;
  Format.fprintf fmt "@]"
