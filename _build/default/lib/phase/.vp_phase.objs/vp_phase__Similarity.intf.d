lib/phase/similarity.mli: Vp_hsd
