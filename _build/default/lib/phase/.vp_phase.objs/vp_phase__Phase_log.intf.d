lib/phase/phase_log.mli: Format Similarity Vp_hsd
