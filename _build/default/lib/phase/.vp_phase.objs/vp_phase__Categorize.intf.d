lib/phase/categorize.mli: Format Hashtbl Phase_log
