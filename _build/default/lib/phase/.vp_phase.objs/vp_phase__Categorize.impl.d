lib/phase/categorize.ml: Format Hashtbl List Option Phase_log Vp_hsd Vp_util
