lib/phase/phase_log.ml: Format List Similarity Vp_hsd
