lib/phase/similarity.ml: List Vp_hsd
