type config = {
  layout : bool;
  scheduling : bool;
  sinking : bool;
  superblocks : bool;
  flip_threshold : float;
}

let default =
  {
    layout = true;
    scheduling = true;
    sinking = false;
    superblocks = true;
    flip_threshold = 0.5;
  }

let paper = { default with superblocks = false }

let none =
  {
    layout = false;
    scheduling = false;
    sinking = false;
    superblocks = false;
    flip_threshold = 0.5;
  }

let with_sinking = { default with sinking = true }

let transform ?(config = default) ?(protected = []) pkg =
  let pkg = if config.sinking then fst (Sink.run pkg) else pkg in
  let pkg =
    if config.superblocks then fst (Superblock.run ~protected pkg) else pkg
  in
  let pkg =
    if config.layout then
      let flipped = Layout_opt.flip_branches ~threshold:config.flip_threshold pkg in
      let weights = Weights.compute flipped in
      Layout_opt.order_blocks weights flipped
    else pkg
  in
  if config.scheduling then Schedule.run pkg else pkg
