module Pkg = Vp_package.Pkg

type t = {
  blocks : (string, float) Hashtbl.t;
  arcs : (string * string, float) Hashtbl.t;
}

(* Internal successor edges of a block with transfer probabilities. *)
let succ_probs ~clamp (b : Pkg.block) =
  let p =
    match b.Pkg.taken_prob with
    | Some p -> min clamp (max (1.0 -. clamp) p)
    | None -> 0.5
  in
  match b.Pkg.term with
  | Pkg.Fall l | Pkg.Goto l -> [ (l, 1.0) ]
  | Pkg.Branch { taken; fall; _ } -> [ (taken, p); (fall, 1.0 -. p) ]
  | Pkg.Call_orig { next; _ } -> [ (next, 1.0) ]
  | Pkg.Inlined_call { prologue; _ } -> [ (prologue, 1.0) ]
  | Pkg.Return | Pkg.Exit_jump _ | Pkg.Stop -> []

let compute ?(iterations = 64) ?(clamp = 0.99) (pkg : Pkg.t) =
  let weight = Hashtbl.create 64 in
  let injection = Hashtbl.create 8 in
  List.iter (fun (label, _) -> Hashtbl.replace injection label 1.0) pkg.Pkg.entries;
  (* Inlined-callee returns rejoin the caller; their targets need no
     injection — flow arrives through the Goto edges. *)
  let edges =
    List.map (fun b -> (b.Pkg.label, succ_probs ~clamp b)) pkg.Pkg.blocks
  in
  List.iter (fun b -> Hashtbl.replace weight b.Pkg.label 0.0) pkg.Pkg.blocks;
  for _ = 1 to iterations do
    let incoming = Hashtbl.create 64 in
    List.iter
      (fun (src, succs) ->
        let w = Option.value ~default:0.0 (Hashtbl.find_opt weight src) in
        List.iter
          (fun (dst, p) ->
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt incoming dst) in
            Hashtbl.replace incoming dst (prev +. (w *. p)))
          succs)
      edges;
    List.iter
      (fun b ->
        let label = b.Pkg.label in
        let inj = Option.value ~default:0.0 (Hashtbl.find_opt injection label) in
        let inc = Option.value ~default:0.0 (Hashtbl.find_opt incoming label) in
        Hashtbl.replace weight label (inj +. inc))
      pkg.Pkg.blocks
  done;
  let arcs = Hashtbl.create 64 in
  List.iter
    (fun (src, succs) ->
      let w = Option.value ~default:0.0 (Hashtbl.find_opt weight src) in
      List.iter (fun (dst, p) -> Hashtbl.replace arcs (src, dst) (w *. p)) succs)
    edges;
  { blocks = weight; arcs }

let block t label = Option.value ~default:0.0 (Hashtbl.find_opt t.blocks label)

let arc t src dst = Option.value ~default:0.0 (Hashtbl.find_opt t.arcs (src, dst))

let hottest_first t (pkg : Pkg.t) =
  List.stable_sort
    (fun a b -> compare (block t b.Pkg.label) (block t a.Pkg.label))
    pkg.Pkg.blocks
