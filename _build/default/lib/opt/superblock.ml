module Instr = Vp_isa.Instr
module Reg = Vp_isa.Reg
module Pkg = Vp_package.Pkg

type stats = { merged : int; hoisted : int }

let pure = function
  | Instr.Alu _ | Instr.Li _ | Instr.La _ -> true
  | Instr.Load _ | Instr.Store _ | Instr.Br _ | Instr.Jmp _ | Instr.Call _
  | Instr.Ret | Instr.Nop | Instr.Halt ->
    false

(* Package-internal predecessor counts by label. *)
let pred_counts (blocks : Pkg.block list) =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (b : Pkg.block) ->
      List.iter
        (fun l ->
          Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
        (Pkg_flow.succ_labels b.Pkg.term))
    blocks;
  counts

(* One merging round: absorb the first eligible single-predecessor
   target of an unconditional transfer.  Returns None at fix-point. *)
let merge_once ~protected blocks =
  let counts = pred_counts blocks in
  let by_label = Hashtbl.create 64 in
  List.iter (fun (b : Pkg.block) -> Hashtbl.replace by_label b.Pkg.label b) blocks;
  let eligible (a : Pkg.block) =
    match a.Pkg.term with
    | Pkg.Fall l | Pkg.Goto l -> (
      match Hashtbl.find_opt by_label l with
      | Some b
        when (not b.Pkg.is_exit)
             && (not a.Pkg.is_exit)
             && l <> a.Pkg.label
             && Option.value ~default:0 (Hashtbl.find_opt counts l) = 1
             && not (List.mem l protected) ->
        Some (a, b)
      | _ -> None)
    | _ -> None
  in
  let rec find = function
    | [] -> None
    | a :: rest -> ( match eligible a with Some pair -> Some pair | None -> find rest)
  in
  match find blocks with
  | None -> None
  | Some (a, b) ->
    let merged =
      {
        a with
        Pkg.body = a.Pkg.body @ b.Pkg.body;
        term = b.Pkg.term;
        taken_prob = b.Pkg.taken_prob;
        weight = max a.Pkg.weight b.Pkg.weight;
      }
    in
    Some
      ( List.filter_map
          (fun (c : Pkg.block) ->
            if c.Pkg.label = a.Pkg.label then Some merged
            else if c.Pkg.label = b.Pkg.label then None
            else Some c)
          blocks,
        (b.Pkg.label, a.Pkg.label) )

let overlap regs mask =
  List.exists (fun r -> mask land (1 lsl Reg.to_int r) <> 0) regs

let mask_of regs = List.fold_left (fun m r -> m lor (1 lsl Reg.to_int r)) 0 regs

(* Hoist the eligible pure prefix of each branch's single-predecessor
   fall-through successor above the branch. *)
let hoist ~protected ~max_hoist (pkg : Pkg.t) =
  let live = Sink.live_in pkg in
  let counts = pred_counts pkg.Pkg.blocks in
  let by_label = Hashtbl.create 64 in
  List.iter (fun (b : Pkg.block) -> Hashtbl.replace by_label b.Pkg.label b) pkg.Pkg.blocks;
  let hoisted = ref 0 in
  (* Per-target prefix removals, applied in one rebuild pass. *)
  let moved : (string, Instr.t list) Hashtbl.t = Hashtbl.create 8 in
  let additions : (string, Instr.t list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (a : Pkg.block) ->
      match a.Pkg.term with
      | Pkg.Branch { taken; fall; src1; src2; _ }
        when taken <> fall
             && (not (List.mem fall protected))
             && (not (Hashtbl.mem moved fall))
             && Option.value ~default:0 (Hashtbl.find_opt counts fall) = 1 -> (
        match Hashtbl.find_opt by_label fall with
        | Some b when not b.Pkg.is_exit ->
          let live_taken =
            mask_of (Option.value ~default:[] (Hashtbl.find_opt live taken))
          in
          let forbidden = live_taken lor mask_of [ src1; src2 ] in
          let rec prefix n acc = function
            | i :: rest
              when n < max_hoist && pure i
                   && not (overlap (Instr.defs i) forbidden) ->
              prefix (n + 1) (i :: acc) rest
            | _ -> List.rev acc
          in
          let p = prefix 0 [] b.Pkg.body in
          if p <> [] then begin
            hoisted := !hoisted + List.length p;
            Hashtbl.replace moved fall p;
            Hashtbl.replace additions a.Pkg.label p
          end
        | _ -> ())
      | _ -> ())
    pkg.Pkg.blocks;
  let blocks =
    List.map
      (fun (b : Pkg.block) ->
        let body =
          match Hashtbl.find_opt moved b.Pkg.label with
          | Some p ->
            let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l) in
            drop (List.length p) b.Pkg.body
          | None -> b.Pkg.body
        in
        let body =
          match Hashtbl.find_opt additions b.Pkg.label with
          | Some p -> body @ p
          | None -> body
        in
        { b with Pkg.body })
      pkg.Pkg.blocks
  in
  ({ pkg with Pkg.blocks }, !hoisted)

let run ?(protected = []) ?(max_hoist = 4) (pkg : Pkg.t) =
  let protected = List.map fst pkg.Pkg.entries @ protected in
  let merged = ref 0 in
  let blocks = ref pkg.Pkg.blocks in
  let renames = Hashtbl.create 8 in
  let continue_ = ref true in
  while !continue_ do
    match merge_once ~protected !blocks with
    | Some (blocks', (absorbed, into)) ->
      incr merged;
      Hashtbl.replace renames absorbed into;
      blocks := blocks'
    | None -> continue_ := false
  done;
  (* An absorbed branch block's site now lives in its absorber; follow
     rename chains so metadata stays resolvable. *)
  let rec resolve l =
    match Hashtbl.find_opt renames l with Some l' -> resolve l' | None -> l
  in
  let sites =
    List.map
      (fun (s : Pkg.site) -> { s with Pkg.block_label = resolve s.Pkg.block_label })
      pkg.Pkg.sites
  in
  let pkg = { pkg with Pkg.blocks = !blocks; sites } in
  let pkg, hoisted = hoist ~protected ~max_hoist pkg in
  (pkg, { merged = !merged; hoisted })
