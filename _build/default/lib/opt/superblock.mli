(** Superblock formation — the "near-global scheduling" scope the
    paper motivates regions with (Section 2): once a package isolates
    a phase's hot code, single-entry fall-through chains can be merged
    into superblocks, widening the list scheduler's window across
    former block boundaries and deleting unconditional jumps outright.

    Two transformations, both semantics-preserving:

    - {e chain merging}: a block ending in an unconditional transfer
      to a block with exactly one package-internal predecessor absorbs
      it (bodies concatenate, the terminator is inherited) — the jump
      disappears and the scheduler sees one straight line;
    - {e speculative hoisting}: pure register computations at the top
      of a branch's single-predecessor fall-through successor move
      above the branch when their results are dead on the taken path —
      classic restricted speculation filling the branch's issue slots.

    Blocks named in [protected] (package entries and cross-package
    link targets, which have predecessors this pass cannot see) are
    never absorbed or shortened. *)

type stats = { merged : int; hoisted : int }

val run : ?protected:string list -> ?max_hoist:int -> Vp_package.Pkg.t ->
  Vp_package.Pkg.t * stats
(** [max_hoist] bounds instructions hoisted per branch (default 4). *)
