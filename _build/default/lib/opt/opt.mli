(** The package transformation pipeline plugged into
    {!Vp_package.Emit.emit}'s [transform] hook: branch flipping and
    hot-chain layout, then local list scheduling. *)

type config = {
  layout : bool;
  scheduling : bool;
  sinking : bool;
      (** exit-block sinking (Section 5.4's suggested redundancy
          elimination).  Off by default, as in the paper's study;
          the [ablation-sink] bench measures it. *)
  superblocks : bool;
      (** superblock formation: chain merging and speculative
          hoisting, widening the scheduler's scope to the region
          level (Section 2's motivation).  On by default. *)
  flip_threshold : float;  (** taken probability above which a branch flips *)
}

val default : config
(** Everything the library offers except sinking: layout, scheduling
    and superblock formation. *)

val paper : config
(** Exactly the paper's Section 5.4 study: relayout and rescheduling
    only — no superblocks, no sinking.  The Figure 8/10 experiment
    configurations use this. *)

val none : config
(** All passes off — the identity transform. *)

val with_sinking : config
(** [default] plus exit-block sinking. *)

val transform :
  ?config:config -> ?protected:string list -> Vp_package.Pkg.t -> Vp_package.Pkg.t
(** [protected] names blocks with predecessors outside this package
    (cross-package link targets); superblock formation never absorbs
    them. *)
