module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Reg = Vp_isa.Reg
module Pkg = Vp_package.Pkg

type machine = {
  issue_width : int;
  ialu : int;
  fp : int;
  mem : int;
  branch : int;
}

let epic_default = { issue_width = 8; ialu = 5; fp = 3; mem = 3; branch = 3 }

let fu_slot = function
  | Op.Ialu -> `Ialu
  | Op.Fp | Op.Long_fp -> `Fp
  | Op.Mem -> `Mem
  | Op.Control -> `Branch

let slot_count machine = function
  | `Ialu -> machine.ialu
  | `Fp -> machine.fp
  | `Mem -> machine.mem
  | `Branch -> machine.branch

(* Registers that create dependences: the zero register is neither
   really written nor meaningfully read. *)
let dep_regs regs = List.filter (fun r -> not (Reg.equal r Reg.zero)) regs

(* Dependence edges as predecessor lists: preds.(i) = list of (j, min
   latency) with j < i that must issue before i. *)
let dependences instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let preds = Array.make n [] in
  let add i j lat = preds.(i) <- (j, lat) :: preds.(i) in
  for i = 0 to n - 1 do
    let defs_i = dep_regs (Instr.defs arr.(i)) in
    let uses_i = dep_regs (Instr.uses arr.(i)) in
    for j = 0 to i - 1 do
      let defs_j = dep_regs (Instr.defs arr.(j)) in
      let uses_j = dep_regs (Instr.uses arr.(j)) in
      let overlap a b = List.exists (fun r -> List.exists (Reg.equal r) b) a in
      (* RAW: j defines something i uses — full latency. *)
      if overlap defs_j uses_i then add i j (Instr.latency arr.(j));
      (* WAW: both define — next cycle is enough on this machine. *)
      if overlap defs_j defs_i then add i j 1;
      (* WAR: j uses what i defines — same cycle would be fine on a
         register-read-at-issue machine; keep order with latency 0. *)
      if overlap uses_j defs_i then add i j 0;
      (* Memory ordering: stores are barriers. *)
      let mem_dep =
        (Instr.is_store arr.(j) && Instr.is_mem arr.(i))
        || (Instr.is_mem arr.(j) && Instr.is_store arr.(i))
      in
      if mem_dep then add i j 1
    done
  done;
  preds

(* Latency-weighted height of each node: longest path to any sink. *)
let heights instrs preds =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let succs = Array.make n [] in
  Array.iteri
    (fun i ps -> List.iter (fun (j, lat) -> succs.(j) <- (i, lat) :: succs.(j)) ps)
    preds;
  let h = Array.make n 0 in
  for i = n - 1 downto 0 do
    h.(i) <-
      List.fold_left
        (fun acc (succ, lat) -> max acc (h.(succ) + max 1 lat))
        (Instr.latency arr.(i))
        succs.(i)
  done;
  h

let schedule_body ?(machine = epic_default) instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  if n <= 1 then instrs
  else begin
    let preds = dependences instrs in
    let h = heights instrs preds in
    let issued = Array.make n (-1) in
    (* issue cycle, -1 = not yet *)
    let order = ref [] in
    let remaining = ref n in
    let cycle = ref 0 in
    while !remaining > 0 do
      let width = ref 0 in
      let used = Hashtbl.create 4 in
      let slot_free s =
        Option.value ~default:0 (Hashtbl.find_opt used s) < slot_count machine s
      in
      let take s =
        Hashtbl.replace used s (1 + Option.value ~default:0 (Hashtbl.find_opt used s))
      in
      (* Ready: unissued, all preds issued with latency satisfied. *)
      let progressed = ref true in
      while !progressed && !width < machine.issue_width do
        progressed := false;
        let candidates =
          List.filter
            (fun i ->
              issued.(i) < 0
              && List.for_all
                   (fun (j, lat) -> issued.(j) >= 0 && issued.(j) + lat <= !cycle)
                   preds.(i)
              && slot_free (fu_slot (Instr.fu arr.(i))))
            (List.init n Fun.id)
          |> List.sort (fun a b -> compare (h.(b), a) (h.(a), b))
        in
        match candidates with
        | i :: _ ->
          issued.(i) <- !cycle;
          take (fu_slot (Instr.fu arr.(i)));
          order := i :: !order;
          incr width;
          decr remaining;
          progressed := true
        | [] -> ()
      done;
      incr cycle
    done;
    List.rev_map (fun i -> arr.(i)) !order
  end

let estimate_cycles ?(machine = epic_default) instrs =
  (* In-order issue of the body as given, tracking operand readiness
     and FU occupancy per cycle. *)
  let ready = Array.make Reg.count 0 in
  let cycle = ref 0 in
  let width = ref 0 in
  let used = Hashtbl.create 4 in
  let advance () =
    incr cycle;
    width := 0;
    Hashtbl.reset used
  in
  List.iter
    (fun i ->
      let operand_ready =
        List.fold_left
          (fun acc r -> max acc ready.(Reg.to_int r))
          0
          (dep_regs (Instr.uses i))
      in
      while
        !cycle < operand_ready
        || !width >= machine.issue_width
        || Option.value ~default:0 (Hashtbl.find_opt used (fu_slot (Instr.fu i)))
           >= slot_count machine (fu_slot (Instr.fu i))
      do
        advance ()
      done;
      let s = fu_slot (Instr.fu i) in
      Hashtbl.replace used s (1 + Option.value ~default:0 (Hashtbl.find_opt used s));
      incr width;
      List.iter
        (fun r -> ready.(Reg.to_int r) <- !cycle + Instr.latency i)
        (dep_regs (Instr.defs i)))
    instrs;
  !cycle + 1

let run ?machine pkg =
  Pkg.map_blocks
    (fun b -> { b with Pkg.body = schedule_body ?machine b.Pkg.body })
    pkg
