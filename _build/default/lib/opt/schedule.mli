(** Local list scheduling of package blocks for the Table 2 EPIC
    machine (Section 5.4 "rescheduling").

    Within each block's straight-line body, instructions are reordered
    by latency-weighted critical path under true/anti/output register
    dependences and conservative memory ordering (stores are barriers
    against all memory operations; loads may pass loads).  The
    terminator is not part of the body and always stays last.
    Reordering respects dependences, so architectural semantics are
    unchanged — the equivalence property tests cover this. *)

type machine = {
  issue_width : int;
  ialu : int;
  fp : int;  (** shared by FP and long-latency FP operations *)
  mem : int;
  branch : int;
}

val epic_default : machine
(** 8-issue, 5 integer ALUs, 3 FP, 3 memory, 3 branch. *)

val schedule_body :
  ?machine:machine -> Vp_isa.Instr.t list -> Vp_isa.Instr.t list
(** Reorder one straight-line body.  The result is a permutation of
    the input that respects all dependences. *)

val estimate_cycles : ?machine:machine -> Vp_isa.Instr.t list -> int
(** Cycles the machine needs for this body in order, used to report
    schedule compaction. *)

val run : ?machine:machine -> Vp_package.Pkg.t -> Vp_package.Pkg.t
(** Schedule every block body of a package. *)
