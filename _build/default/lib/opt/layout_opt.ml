module Pkg = Vp_package.Pkg
module Op = Vp_isa.Op

let flip_branches ?(threshold = 0.5) pkg =
  Pkg.map_blocks
    (fun b ->
      match (b.Pkg.term, b.Pkg.taken_prob) with
      | Pkg.Branch { cond; src1; src2; taken; fall }, Some p when p > threshold ->
        {
          b with
          Pkg.term =
            Pkg.Branch
              { cond = Op.negate_cond cond; src1; src2; taken = fall; fall = taken };
          taken_prob = Some (1.0 -. p);
        }
      | _ -> b)
    pkg

let successors (b : Pkg.block) =
  match b.Pkg.term with
  | Pkg.Fall l | Pkg.Goto l -> [ l ]
  | Pkg.Branch { taken; fall; _ } -> [ fall; taken ]
  | Pkg.Call_orig { next; _ } -> [ next ]
  | Pkg.Inlined_call { prologue; _ } -> [ prologue ]
  | Pkg.Return | Pkg.Exit_jump _ | Pkg.Stop -> []

let order_blocks weights (pkg : Pkg.t) =
  let by_label = Hashtbl.create 64 in
  List.iter (fun b -> Hashtbl.replace by_label b.Pkg.label b) pkg.Pkg.blocks;
  let placed = Hashtbl.create 64 in
  let order = ref [] in
  let place b =
    Hashtbl.replace placed b.Pkg.label ();
    order := b :: !order
  in
  (* Chain from a seed: keep appending the heaviest unplaced successor. *)
  let rec chain b =
    place b;
    let next =
      successors b
      |> List.filter_map (fun l ->
             match Hashtbl.find_opt by_label l with
             | Some s when (not (Hashtbl.mem placed l)) && not s.Pkg.is_exit ->
               Some (s, Weights.arc weights b.Pkg.label l)
             | _ -> None)
      |> List.sort (fun (_, wa) (_, wb) -> compare wb wa)
    in
    match next with
    | (s, _) :: _ -> chain s
    | [] -> ()
  in
  (* Seeds: entries first (hottest entry first), then remaining hot
     blocks by weight. *)
  let entry_blocks =
    List.filter_map (fun (l, _) -> Hashtbl.find_opt by_label l) pkg.Pkg.entries
    |> List.stable_sort (fun a b ->
           compare (Weights.block weights b.Pkg.label) (Weights.block weights a.Pkg.label))
  in
  List.iter (fun b -> if not (Hashtbl.mem placed b.Pkg.label) then chain b) entry_blocks;
  List.iter
    (fun b ->
      if (not (Hashtbl.mem placed b.Pkg.label)) && not b.Pkg.is_exit then chain b)
    (Weights.hottest_first weights pkg);
  (* Exit blocks sink to the bottom, in original order. *)
  List.iter
    (fun b -> if not (Hashtbl.mem placed b.Pkg.label) then place b)
    pkg.Pkg.blocks;
  { pkg with Pkg.blocks = List.rev !order }

let run pkg =
  let flipped = flip_branches pkg in
  let weights = Weights.compute flipped in
  order_blocks weights flipped
