(** Exit-block sinking — the redundancy-elimination optimization the
    paper suggests in Section 5.4: "moves cold instructions (those
    whose results are not consumed within the hot package) to the side
    exit block".

    A pure computation (ALU / load-immediate / load-address) whose
    result is live only along exit paths is removed from the hot block
    and re-materialised at the top of each exit block that needs it —
    the exit blocks' dummy-consumer sets (the live registers across the
    exited arc) drive the analysis.  Fully dead computations are
    deleted outright.

    Safety conditions, all checked per instruction: the value is dead
    on every internal path out of the defining block; none of the
    instruction's sources is redefined between it and the block end (so
    the exit block sees the same operand values); the instruction has
    no memory or control side effect. *)

type stats = {
  sunk : int;  (** instructions moved to exit blocks *)
  deleted : int;  (** fully dead instructions removed *)
}

val run : Vp_package.Pkg.t -> Vp_package.Pkg.t * stats

val live_in : Vp_package.Pkg.t -> (string, Vp_isa.Reg.t list) Hashtbl.t
(** Package-level live-in per block label (exposed for tests).  Exit
    blocks seed their out-set with the recorded live registers across
    the exited arc; returns use the calling convention's registers;
    halts use the result register. *)
