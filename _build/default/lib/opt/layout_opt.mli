(** Package code layout (Section 5.4 "relayout"): flip biased branches
    so the likely direction falls through, then greedily chain blocks
    so hot arcs become adjacent and exit blocks sink to the bottom —
    the Hot-Cold-Optimization-style placement the package structure
    enables. *)

val flip_branches : ?threshold:float -> Vp_package.Pkg.t -> Vp_package.Pkg.t
(** Negate branch conditions whose taken probability exceeds
    [threshold] (default 0.5) so the hot direction falls through;
    taken probabilities are updated accordingly. *)

val order_blocks : Weights.t -> Vp_package.Pkg.t -> Vp_package.Pkg.t
(** Reorder blocks into hot chains: start from the hottest unplaced
    block, repeatedly append the heaviest-flow unplaced successor;
    exit blocks always sink to the end. *)

val run : Vp_package.Pkg.t -> Vp_package.Pkg.t
(** [flip_branches] followed by [order_blocks] with freshly computed
    weights. *)
