lib/opt/sink.mli: Hashtbl Vp_isa Vp_package
