lib/opt/pkg_flow.mli: Vp_isa Vp_package
