lib/opt/weights.ml: Hashtbl List Option Vp_package
