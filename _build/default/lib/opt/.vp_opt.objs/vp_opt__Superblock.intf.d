lib/opt/superblock.mli: Vp_package
