lib/opt/layout_opt.ml: Hashtbl List Vp_isa Vp_package Weights
