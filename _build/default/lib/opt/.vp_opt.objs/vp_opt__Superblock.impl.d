lib/opt/superblock.ml: Hashtbl List Option Pkg_flow Sink Vp_isa Vp_package
