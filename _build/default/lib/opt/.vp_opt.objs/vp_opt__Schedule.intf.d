lib/opt/schedule.mli: Vp_isa Vp_package
