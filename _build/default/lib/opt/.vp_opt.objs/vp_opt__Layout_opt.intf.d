lib/opt/layout_opt.mli: Vp_package Weights
