lib/opt/opt.mli: Vp_package
