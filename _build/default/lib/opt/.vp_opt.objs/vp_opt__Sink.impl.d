lib/opt/sink.ml: Array Hashtbl List Option Pkg_flow Vp_isa Vp_package
