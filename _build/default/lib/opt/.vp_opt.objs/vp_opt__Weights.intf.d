lib/opt/weights.mli: Vp_package
