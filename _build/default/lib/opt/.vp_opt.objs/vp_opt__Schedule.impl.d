lib/opt/schedule.ml: Array Fun Hashtbl List Option Vp_isa Vp_package
