lib/opt/pkg_flow.ml: Vp_isa Vp_package
