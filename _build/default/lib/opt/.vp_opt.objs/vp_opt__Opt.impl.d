lib/opt/opt.ml: Layout_opt Schedule Sink Superblock Weights
