module Instr = Vp_isa.Instr
module Reg = Vp_isa.Reg
module Pkg = Vp_package.Pkg

let succ_labels = function
  | Pkg.Fall l | Pkg.Goto l -> [ l ]
  | Pkg.Branch { taken; fall; _ } -> [ taken; fall ]
  | Pkg.Call_orig { next; _ } -> [ next ]
  | Pkg.Inlined_call { prologue; _ } -> [ prologue ]
  | Pkg.Return | Pkg.Exit_jump _ | Pkg.Stop -> []

let term_uses = function
  | Pkg.Branch { src1; src2; _ } -> [ src1; src2 ]
  | Pkg.Call_orig _ -> Instr.uses (Instr.Call { target = Instr.Addr 0 })
  | Pkg.Inlined_call _ ->
    (* Transfers into the inlined prologue: argument registers and the
       stack pointer flow in, like a call. *)
    Instr.uses (Instr.Call { target = Instr.Addr 0 })
  | Pkg.Return -> Instr.uses Instr.Ret
  | Pkg.Exit_jump _ -> []
  | Pkg.Stop -> [ Reg.ret_value ]
  | Pkg.Fall _ | Pkg.Goto _ -> []

let term_defs = function
  | Pkg.Call_orig _ -> Instr.defs (Instr.Call { target = Instr.Addr 0 })
  | Pkg.Inlined_call _ -> [ Reg.ra ]
  | Pkg.Branch _ | Pkg.Return | Pkg.Exit_jump _ | Pkg.Stop | Pkg.Fall _
  | Pkg.Goto _ ->
    []
