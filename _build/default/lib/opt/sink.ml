module Instr = Vp_isa.Instr
module Reg = Vp_isa.Reg
module Pkg = Vp_package.Pkg

type stats = { sunk : int; deleted : int }

let mask_of regs = List.fold_left (fun m r -> m lor (1 lsl Reg.to_int r)) 0 regs

let regs_of mask =
  List.filter
    (fun r -> mask land (1 lsl Reg.to_int r) <> 0)
    (List.init Reg.count Reg.of_int)

let succ_labels = Pkg_flow.succ_labels
let term_uses = Pkg_flow.term_uses
let term_defs = Pkg_flow.term_defs

(* Backward liveness over the package graph.  Exit blocks' terminal
   contribution is their recorded dummy-consumer set. *)
let liveness (pkg : Pkg.t) =
  let blocks = Array.of_list pkg.Pkg.blocks in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i b -> Hashtbl.replace index b.Pkg.label i) blocks;
  let n = Array.length blocks in
  let live_in = Array.make n 0 in
  let live_out = Array.make n 0 in
  let terminal_mask (b : Pkg.block) =
    (* Exit blocks carry the live set across the exited arc even after
       linking retargets their terminator to another package. *)
    if b.Pkg.is_exit then mask_of b.Pkg.live_out
    else mask_of (term_uses b.Pkg.term)
  in
  let transfer (b : Pkg.block) out =
    let after_body = out lor mask_of (term_uses b.Pkg.term) in
    let after_body = (after_body land lnot (mask_of (term_defs b.Pkg.term)))
                     lor mask_of (term_uses b.Pkg.term) in
    List.fold_left
      (fun live i ->
        (live land lnot (mask_of (Instr.defs i))) lor mask_of (Instr.uses i))
      after_body (List.rev b.Pkg.body)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let b = blocks.(i) in
      let out =
        List.fold_left
          (fun acc l ->
            match Hashtbl.find_opt index l with
            | Some j -> acc lor live_in.(j)
            | None -> acc)
          (terminal_mask b) (succ_labels b.Pkg.term)
      in
      let inn = transfer b out in
      if out <> live_out.(i) || inn <> live_in.(i) then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  (blocks, index, live_in, live_out)

let live_in pkg =
  let blocks, _, live_in, _ = liveness pkg in
  let table = Hashtbl.create 64 in
  Array.iteri
    (fun i (b : Pkg.block) -> Hashtbl.replace table b.Pkg.label (regs_of live_in.(i)))
    blocks;
  table

(* Only pure register computations may move. *)
let sinkable = function
  | Instr.Alu _ | Instr.Li _ | Instr.La _ -> true
  | Instr.Load _ | Instr.Store _ | Instr.Br _ | Instr.Jmp _ | Instr.Call _
  | Instr.Ret | Instr.Nop | Instr.Halt ->
    false

let run (pkg : Pkg.t) =
  let blocks, index, live_in, _ = liveness pkg in
  let exit_of label =
    match Hashtbl.find_opt index label with
    | Some j when blocks.(j).Pkg.is_exit -> Some j
    | _ -> None
  in
  (* Sunk instructions per exit block, kept in original order. *)
  let pending : (int, Instr.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let sunk = ref 0 in
  let deleted = ref 0 in
  let new_blocks =
    Array.map
      (fun (b : Pkg.block) ->
        if b.Pkg.is_exit then b
        else begin
          let exit_succs = List.filter_map exit_of (succ_labels b.Pkg.term) in
          let internal_mask =
            List.fold_left
              (fun acc l ->
                match Hashtbl.find_opt index l with
                | Some j when not blocks.(j).Pkg.is_exit -> acc lor live_in.(j)
                | _ -> acc)
              (mask_of (term_uses b.Pkg.term))
              (succ_labels b.Pkg.term)
          in
          (* Walk the body backwards, tracking (a) registers read later
             inside this block, (b) registers whose defining instruction
             must stay because something after it was kept, i.e. the
             sources redefined below the current point. *)
          let kept = ref [] in
          let live_later = ref internal_mask in
          let redefined_below = ref 0 in
          (* Registers a sunk instruction reads at each exit: their
             producers must also sink (or stay, which the stability
             check guarantees is safe). *)
          let sunk_uses = Hashtbl.create 4 in
          let sunk_uses_of j = Option.value ~default:0 (Hashtbl.find_opt sunk_uses j) in
          let exit_live j = live_in.(j) lor sunk_uses_of j in
          List.iter
            (fun i ->
              let defs = mask_of (Instr.defs i) in
              let uses = mask_of (Instr.uses i) in
              let needed_internally = defs land !live_later <> 0 in
              let sources_stable = uses land !redefined_below = 0 in
              let wanted_exits =
                List.filter (fun j -> defs land exit_live j <> 0) exit_succs
              in
              (* A def overwritten by a kept instruction below never
                 reaches the exits — what they see is the newer value —
                 so such an instruction is dead here, not sinkable. *)
              let def_stable = defs land !redefined_below = 0 in
              if
                sinkable i && defs <> 0
                && not needed_internally
                && sources_stable
              then
                if wanted_exits = [] || not def_stable then incr deleted
                else begin
                  incr sunk;
                  List.iter
                    (fun j ->
                      Hashtbl.replace sunk_uses j (sunk_uses_of j lor uses);
                      let cell =
                        match Hashtbl.find_opt pending j with
                        | Some c -> c
                        | None ->
                          let c = ref [] in
                          Hashtbl.replace pending j c;
                          c
                      in
                      cell := i :: !cell)
                    wanted_exits
                end
              else begin
                kept := i :: !kept;
                live_later := (!live_later land lnot defs) lor uses;
                redefined_below := !redefined_below lor defs
              end)
            (List.rev b.Pkg.body);
          { b with Pkg.body = !kept }
        end)
      blocks
  in
  let final =
    Array.mapi
      (fun i (b : Pkg.block) ->
        match Hashtbl.find_opt pending i with
        | Some cell -> { b with Pkg.body = !cell @ b.Pkg.body }
        | None -> b)
      new_blocks
    |> Array.to_list
  in
  ({ pkg with Pkg.blocks = final }, { sunk = !sunk; deleted = !deleted })
