(** Block and arc weight estimation inside a package from the taken
    probabilities recorded by the HSD — the method of [4] (Section
    5.4): entry blocks inject unit flow, every block forwards its
    weight along its terminator split by taken probability, and the
    system is iterated to an approximate fix-point.  Probabilities are
    clamped away from 1 so every cycle is a contraction and the
    iteration converges. *)

type t

val compute : ?iterations:int -> ?clamp:float -> Vp_package.Pkg.t -> t
(** Defaults: 64 iterations, clamp 0.99. *)

val block : t -> string -> float
(** Estimated relative execution weight of a labelled block (0 for
    unknown labels). *)

val arc : t -> string -> string -> float
(** Estimated flow from one block to another; 0 when there is no
    direct terminator edge. *)

val hottest_first : t -> Vp_package.Pkg.t -> Vp_package.Pkg.block list
(** The package's blocks sorted by descending weight. *)
