(** Shared package-graph helpers for the optimizer passes: successor
    labels and register effects of package terminators. *)

val succ_labels : Vp_package.Pkg.term -> string list
(** Package-internal successor labels of a terminator. *)

val term_uses : Vp_package.Pkg.term -> Vp_isa.Reg.t list
(** Registers a terminator reads, including the interprocedural
    summaries of calls and returns and the halt's result register. *)

val term_defs : Vp_package.Pkg.term -> Vp_isa.Reg.t list
