type t = {
  sets : int;
  assoc : int;
  counter_bits : int;
  candidate_threshold : int;
  refresh_interval : int;
  clear_interval : int;
  hdc_bits : int;
  hdc_inc : int;
  hdc_dec : int;
}

let default =
  {
    sets = 512;
    assoc = 4;
    counter_bits = 9;
    candidate_threshold = 16;
    refresh_interval = 8192;
    clear_interval = 65526;
    hdc_bits = 13;
    hdc_inc = 2;
    hdc_dec = 1;
  }

let tiny =
  {
    default with
    sets = 1;
    assoc = 4;
    candidate_threshold = 4;
    refresh_interval = 256;
    clear_interval = 2048;
    hdc_bits = 8;
  }

let capacity t = t.sets * t.assoc

let hdc_max t = (1 lsl t.hdc_bits) - 1

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.sets <= 0 then err "sets must be positive"
  else if t.assoc <= 0 then err "assoc must be positive"
  else if t.counter_bits <= 0 || t.counter_bits >= 62 then err "bad counter width"
  else if t.candidate_threshold <= 0 then err "candidate threshold must be positive"
  else if t.candidate_threshold > (1 lsl t.counter_bits) - 1 then
    err "candidate threshold exceeds counter range"
  else if t.refresh_interval <= 0 || t.clear_interval <= 0 then err "bad timer interval"
  else if t.hdc_bits <= 0 || t.hdc_bits >= 62 then err "bad HDC width"
  else if t.hdc_inc <= 0 || t.hdc_dec <= 0 then err "HDC steps must be positive"
  else Ok ()
