(** The Branch Behavior Buffer: a set-associative table profiling
    retiring conditional branches, after Merten et al. (ISCA 1999).

    Each entry tracks one static branch with saturating executed/taken
    counters and a {e candidate} flag that sets once the executed
    count reaches the candidate threshold.  A missing branch installs
    into an invalid or non-candidate way of its set; when every way
    holds a candidate the newcomer is dropped — the contention
    lossiness the paper's inference rules compensate for. *)

type t

type verdict =
  | Candidate  (** retired branch is a candidate (drives the HDC down) *)
  | Non_candidate  (** tracked but below threshold *)
  | Dropped  (** not tracked: set full of candidates *)

val create : Config.t -> t

val record : t -> pc:int -> taken:bool -> verdict

val refresh : t -> unit
(** Zero the counters of every non-candidate entry (refresh timer). *)

val clear : t -> unit
(** Invalidate everything (clear timer / phase end). *)

val snapshot_entries : t -> Snapshot.entry list
(** Candidate entries, ascending by pc. *)

val occupancy : t -> int
(** Valid entries. *)

val candidates : t -> int

val tracked : t -> pc:int -> bool
