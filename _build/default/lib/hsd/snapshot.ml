type entry = { pc : int; executed : int; taken : int }

type t = {
  id : int;
  detected_at : int;
  ended_at : int;
  branches : entry list;
}

let taken_fraction e =
  if e.executed = 0 then 0.0 else float_of_int e.taken /. float_of_int e.executed

type bias = Taken | Not_taken | Unbiased

let bias ?(threshold = 0.9) e =
  let f = taken_fraction e in
  if f >= threshold then Taken
  else if f <= 1.0 -. threshold then Not_taken
  else Unbiased

let branch_pcs t = List.map (fun e -> e.pc) t.branches

let find t pc = List.find_opt (fun e -> e.pc = pc) t.branches

let max_executed t = List.fold_left (fun acc e -> max acc e.executed) 0 t.branches

let total_executed t = List.fold_left (fun acc e -> acc + e.executed) 0 t.branches

let extent t = t.ended_at - t.detected_at

let pp fmt t =
  Format.fprintf fmt "@[<v>hotspot %d [%d, %d) %d branches@," t.id t.detected_at
    t.ended_at (List.length t.branches);
  List.iter
    (fun e ->
      Format.fprintf fmt "  %6x exec %4d taken %4d (%.2f)@," e.pc e.executed e.taken
        (taken_fraction e))
    t.branches;
  Format.fprintf fmt "@]"
