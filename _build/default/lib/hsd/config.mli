(** Hot Spot Detector configuration (the HSD rows of the paper's
    Table 2). *)

type t = {
  sets : int;  (** BBB sets (512) *)
  assoc : int;  (** BBB associativity (4) *)
  counter_bits : int;  (** executed/taken counter width (9) *)
  candidate_threshold : int;  (** executions before a branch is a candidate (16) *)
  refresh_interval : int;  (** branches between non-candidate refreshes (8192) *)
  clear_interval : int;  (** branches between full clears when idle (65526) *)
  hdc_bits : int;  (** hot spot detection counter width (13) *)
  hdc_inc : int;  (** HDC increment on non-candidate branches (2) *)
  hdc_dec : int;  (** HDC decrement on candidate branches (1) *)
}

val default : t
(** The paper's Table 2 values. *)

val tiny : t
(** A 4-entry, fully-associative-like configuration mirroring the
    Figure 3 worked example; used by tests to exercise contention. *)

val capacity : t -> int
(** Total BBB entries. *)

val hdc_max : t -> int

val validate : t -> (unit, string) result
