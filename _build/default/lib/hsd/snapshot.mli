(** A hot-spot snapshot: the Branch Behavior Buffer contents recorded
    at a phase detection, plus the dynamic extent over which the phase
    was active.  This is the only profile information the software
    pipeline ever sees — deliberately lossy, per the paper. *)

type entry = {
  pc : int;  (** static address of the conditional branch *)
  executed : int;  (** saturating executed count at snapshot time *)
  taken : int;  (** saturating taken count at snapshot time *)
}

type t = {
  id : int;  (** detection order, from 0 *)
  detected_at : int;  (** dynamic branch index of the detection *)
  ended_at : int;  (** dynamic branch index when the phase dissolved *)
  branches : entry list;  (** ascending by pc *)
}

val taken_fraction : entry -> float

type bias = Taken | Not_taken | Unbiased

val bias : ?threshold:float -> entry -> bias
(** Direction bias; an entry is biased when its taken fraction is at
    least [threshold] (default 0.9) or at most 1 - threshold. *)

val branch_pcs : t -> int list
(** Ascending. *)

val find : t -> int -> entry option

val max_executed : t -> int
(** Largest executed count among entries; the region-marking pass uses
    it to scale the hot/cold arc rule. *)

val total_executed : t -> int

val extent : t -> int
(** [ended_at - detected_at]: dynamic branches spent in the phase. *)

val pp : Format.formatter -> t -> unit
