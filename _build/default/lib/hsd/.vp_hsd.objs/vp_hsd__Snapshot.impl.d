lib/hsd/snapshot.ml: Format List
