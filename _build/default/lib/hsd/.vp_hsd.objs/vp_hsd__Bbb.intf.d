lib/hsd/bbb.mli: Config Snapshot
