lib/hsd/bbb.ml: Array Config List Snapshot Vp_util
