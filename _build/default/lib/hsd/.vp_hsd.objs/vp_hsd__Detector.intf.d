lib/hsd/detector.mli: Config Snapshot
