lib/hsd/snapshot.mli: Format
