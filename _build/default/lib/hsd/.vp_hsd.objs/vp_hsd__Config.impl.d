lib/hsd/config.ml: Printf
