lib/hsd/config.mli:
