lib/hsd/detector.ml: Bbb Config List Snapshot Stdlib
