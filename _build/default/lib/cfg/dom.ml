type t = {
  idom : int option array;
  rpo_index : int array;  (* -1 for unreachable *)
}

let reverse_postorder cfg =
  let n = Cfg.num_blocks cfg in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    visited.(b) <- true;
    List.iter
      (fun (a : Cfg.arc) -> if not visited.(a.dst) then dfs a.dst)
      (Cfg.succs cfg b);
    order := b :: !order
  in
  if n > 0 then dfs (Cfg.entry cfg);
  (!order, visited)

let compute cfg =
  let n = Cfg.num_blocks cfg in
  let rpo, visited = reverse_postorder cfg in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let idom = Array.make n None in
  if n > 0 then begin
    let entry = Cfg.entry cfg in
    idom.(entry) <- Some entry;
    let intersect a b =
      (* Walk the two candidate dominators up the tree until they meet;
         higher rpo index means deeper in the order. *)
      let rec go a b =
        if a = b then a
        else if rpo_index.(a) > rpo_index.(b) then
          go (Option.get idom.(a)) b
        else go a (Option.get idom.(b))
      in
      go a b
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun b ->
          if b <> entry then begin
            let processed_preds =
              List.filter_map
                (fun (a : Cfg.arc) ->
                  if visited.(a.src) && idom.(a.src) <> None then Some a.src
                  else None)
                (Cfg.preds cfg b)
            in
            match processed_preds with
            | [] -> ()
            | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> Some new_idom then begin
                idom.(b) <- Some new_idom;
                changed := true
              end
          end)
        rpo
    done;
    (* Normalise: the entry's idom is reported as None. *)
    idom.(entry) <- None;
    (* Mark entry reachable through rpo_index; idom for entry stays None. *)
    ()
  end;
  { idom; rpo_index }

let reachable t b = t.rpo_index.(b) >= 0

let idom t b = if reachable t b then t.idom.(b) else None

let dominates t a b =
  if not (reachable t a && reachable t b) then false
  else
    let rec climb x =
      if x = a then true
      else match t.idom.(x) with None -> false | Some p -> climb p
    in
    climb b
