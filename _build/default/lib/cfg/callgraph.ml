module Instr = Vp_isa.Instr
module Image = Vp_prog.Image

type edge = { caller : string; callee : string; site : int }

type t = { funcs : string list; edges : edge list }

let of_image image =
  let syms = Image.functions image in
  let edges = ref [] in
  List.iter
    (fun (s : Image.sym) ->
      for addr = s.Image.start to s.Image.start + s.Image.len - 1 do
        match Image.fetch image addr with
        | Instr.Call { target = Instr.Addr a } -> (
          match Image.sym_at image a with
          | Some callee ->
            edges := { caller = s.Image.name; callee = callee.Image.name; site = addr } :: !edges
          | None -> ())
        | _ -> ()
      done)
    syms;
  { funcs = List.map (fun (s : Image.sym) -> s.Image.name) syms; edges = List.rev !edges }

let functions t = t.funcs
let edges t = t.edges

let callees t name = List.filter (fun e -> e.caller = name) t.edges
let callers t name = List.filter (fun e -> e.callee = name) t.edges

let is_self_recursive t name =
  List.exists (fun e -> e.caller = name && e.callee = name) t.edges

let back_edges t ~entry =
  let adj name =
    List.sort_uniq compare (List.map (fun e -> e.callee) (callees t name))
  in
  let state = Hashtbl.create 16 in
  let back = ref [] in
  let rec dfs name =
    Hashtbl.replace state name `Grey;
    List.iter
      (fun callee ->
        match Hashtbl.find_opt state callee with
        | Some `Grey -> back := (name, callee) :: !back
        | Some `Black -> ()
        | None -> dfs callee)
      (adj name);
    Hashtbl.replace state name `Black
  in
  if List.mem entry t.funcs then dfs entry;
  (* Functions unreachable from the entry still get classified so that
     recursion among them is not mistaken for forward calls. *)
  List.iter (fun f -> if not (Hashtbl.mem state f) then dfs f) t.funcs;
  List.sort_uniq compare !back

let pp fmt t =
  Format.fprintf fmt "@[<v>callgraph:@,";
  List.iter
    (fun e -> Format.fprintf fmt "  %s -> %s @@%x@," e.caller e.callee e.site)
    t.edges;
  Format.fprintf fmt "@]"
