(** Natural-loop detection from dominators and back edges.  Used by
    the layout and scheduling passes to prioritise loop bodies and by
    workload sanity tests. *)

type loop = {
  header : int;
  body : int list;  (** includes the header; ascending block ids *)
  back_edge_srcs : int list;
}

type t

val compute : Cfg.t -> t

val loops : t -> loop list
(** Outermost first (by header reverse-postorder), headers unique —
    back edges sharing a header merge into one loop. *)

val depth : t -> int -> int
(** Loop-nesting depth of a block; 0 outside any loop. *)

val innermost_header : t -> int -> int option
