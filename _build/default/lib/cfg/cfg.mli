(** Control-flow graph recovery from a binary image.

    This is the post-link view: blocks are discovered by scanning a
    function's address range for leaders (the function entry, branch
    targets, and the instruction after any control instruction), with
    no access to compiler metadata.  Blocks are identified by their
    index in ascending address order; block 0 is the function entry.

    Arcs carry the direction that produced them: [Taken] for branch
    and jump targets, [Fallthrough] for the not-taken direction and
    for straight-line continuation (including continuation after a
    call). *)

type arc_kind = Taken | Fallthrough

type arc = { src : int; dst : int; kind : arc_kind }

type t

val recover : Vp_prog.Image.t -> Vp_prog.Image.sym -> t
(** Build the CFG of one function from the image.  Branch targets
    outside the function's range do not create intra-function arcs. *)

val sym : t -> Vp_prog.Image.sym
val image : t -> Vp_prog.Image.t

val num_blocks : t -> int
val entry : t -> int
(** Always 0. *)

val start : t -> int -> int
(** Start address of a block. *)

val len : t -> int -> int

val block_at : t -> int -> int option
(** Block containing the given address, if inside this function. *)

val instrs : t -> int -> Vp_isa.Instr.t list
(** Instruction sequence of a block. *)

val terminator : t -> int -> Vp_isa.Instr.t option
(** The block's trailing control instruction, if any. *)

val branch_addr : t -> int -> int option
(** Address of the block's conditional branch, when its terminator is
    one — the key the Branch Behavior Buffer profiles. *)

val succs : t -> int -> arc list
val preds : t -> int -> arc list
val arcs : t -> arc list
(** Every intra-function arc, in deterministic order. *)

val call_sites : t -> (int * int) list
(** [(block, callee_entry_address)] for every block ending in a call. *)

val back_edges : t -> (int * int) list
(** DFS back edges from the entry: arcs (src, dst) closing a cycle.
    Unreachable blocks contribute none. *)

val preds_ignoring_back_edges : t -> int -> arc list

val pp : Format.formatter -> t -> unit
