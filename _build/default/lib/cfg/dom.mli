(** Dominator computation over a recovered CFG (iterative Cooper–
    Harvey–Kennedy on reverse postorder).  Blocks unreachable from the
    entry have no dominator information and report [None]. *)

type t

val compute : Cfg.t -> t

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry and for unreachable
    blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does [a] dominate [b]?  Reflexive.  False when
    either block is unreachable (except [a = b] reachable). *)

val reachable : t -> int -> bool
