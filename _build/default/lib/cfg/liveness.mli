(** Backward live-register analysis over a recovered CFG.

    The packager uses live-in sets to build exit blocks: when a hot
    block's cold arc is cut, the registers live along that arc (the
    live-in of the cold target) are recorded as dummy consumers so the
    optimizer cannot delete or reorder their producers unsoundly.

    Blocks with no successors (returns, halts) seed their live-out
    with the terminator's own uses; [Ret]'s uses already include the
    return-value register, the stack pointer and [ra]. *)

type t

val compute : Cfg.t -> t

val live_in : t -> int -> Vp_isa.Reg.t list
(** Ascending register order. *)

val live_out : t -> int -> Vp_isa.Reg.t list

val live_across : t -> Cfg.arc -> Vp_isa.Reg.t list
(** Registers live along an arc = live-in of the destination. *)
