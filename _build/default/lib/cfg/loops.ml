type loop = {
  header : int;
  body : int list;
  back_edge_srcs : int list;
}

type t = { loops : loop list; depth : int array; inner : int option array }

let natural_loop cfg header srcs =
  (* Standard worklist: everything that reaches a latch without passing
     through the header. *)
  let in_body = Hashtbl.create 16 in
  Hashtbl.replace in_body header ();
  let rec add b =
    if not (Hashtbl.mem in_body b) then begin
      Hashtbl.replace in_body b ();
      List.iter (fun (a : Cfg.arc) -> add a.src) (Cfg.preds cfg b)
    end
  in
  List.iter add srcs;
  Hashtbl.fold (fun b () acc -> b :: acc) in_body [] |> List.sort compare

let compute cfg =
  let n = Cfg.num_blocks cfg in
  let dom = Dom.compute cfg in
  (* Group back edges by header, keeping only true natural-loop back
     edges (header dominates the latch). *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (src, dst) ->
      if Dom.dominates dom dst src then
        Hashtbl.replace by_header dst (src :: (Option.value ~default:[] (Hashtbl.find_opt by_header dst))))
    (Cfg.back_edges cfg);
  let loops =
    Hashtbl.fold
      (fun header srcs acc ->
        { header; body = natural_loop cfg header srcs; back_edge_srcs = List.sort compare srcs }
        :: acc)
      by_header []
    |> List.sort (fun a b -> compare a.header b.header)
  in
  let depth = Array.make n 0 in
  let inner = Array.make n None in
  (* Process loops from largest body to smallest so the innermost loop
     writes last. *)
  let by_size =
    List.sort (fun a b -> compare (List.length b.body) (List.length a.body)) loops
  in
  List.iter
    (fun l ->
      List.iter
        (fun b ->
          depth.(b) <- depth.(b) + 1;
          inner.(b) <- Some l.header)
        l.body)
    by_size;
  { loops; depth; inner }

let loops t = t.loops
let depth t b = t.depth.(b)
let innermost_header t b = t.inner.(b)
