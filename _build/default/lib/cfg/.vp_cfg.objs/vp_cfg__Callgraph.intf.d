lib/cfg/callgraph.mli: Format Vp_prog
