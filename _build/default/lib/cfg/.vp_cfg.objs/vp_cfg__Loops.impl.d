lib/cfg/loops.ml: Array Cfg Dom Hashtbl List Option
