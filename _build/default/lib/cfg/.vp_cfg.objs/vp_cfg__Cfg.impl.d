lib/cfg/cfg.ml: Array Format Hashtbl List Printf String Vp_isa Vp_prog
