lib/cfg/liveness.mli: Cfg Vp_isa
