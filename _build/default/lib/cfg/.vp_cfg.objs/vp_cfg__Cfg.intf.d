lib/cfg/cfg.mli: Format Vp_isa Vp_prog
