lib/cfg/callgraph.ml: Format Hashtbl List Vp_isa Vp_prog
