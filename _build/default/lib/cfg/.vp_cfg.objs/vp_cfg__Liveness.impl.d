lib/cfg/liveness.ml: Array Cfg List Vp_isa
