(** Whole-image call graph: one node per symbol, an edge per static
    call site. *)

type edge = {
  caller : string;
  callee : string;
  site : int;  (** address of the call instruction *)
}

type t

val of_image : Vp_prog.Image.t -> t

val functions : t -> string list
val edges : t -> edge list

val callees : t -> string -> edge list
val callers : t -> string -> edge list

val is_self_recursive : t -> string -> bool

val back_edges : t -> entry:string -> (string * string) list
(** DFS back edges of the call graph starting at [entry]; recursion
    cycles appear here.  Multi-edges between the same pair collapse. *)

val pp : Format.formatter -> t -> unit
