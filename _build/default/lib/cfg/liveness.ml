module Instr = Vp_isa.Instr
module Reg = Vp_isa.Reg

(* Register sets as int bitmasks; 32 registers fit one word. *)
type t = { live_in : int array; live_out : int array }

let mask_of regs = List.fold_left (fun m r -> m lor (1 lsl Reg.to_int r)) 0 regs

let regs_of mask =
  List.filter (fun r -> mask land (1 lsl Reg.to_int r) <> 0)
    (List.init Reg.count Reg.of_int)

(* Transfer over one block, backwards: live_in = gen U (live_out - kill). *)
let block_transfer instrs live_out =
  List.fold_left
    (fun live i ->
      let def = mask_of (Instr.defs i) in
      let use = mask_of (Instr.uses i) in
      (live land lnot def) lor use)
    live_out (List.rev instrs)

let compute cfg =
  let n = Cfg.num_blocks cfg in
  let live_in = Array.make n 0 in
  let live_out = Array.make n 0 in
  let bodies = Array.init n (Cfg.instrs cfg) in
  (* Seed: blocks without successors keep their terminator's uses
     visible (the transfer function includes them via gen, so no extra
     seeding needed beyond an empty out-set). *)
  let changed = ref true in
  while !changed do
    changed := false;
    for b = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc (a : Cfg.arc) -> acc lor live_in.(a.dst))
          0 (Cfg.succs cfg b)
      in
      let inn = block_transfer bodies.(b) out in
      if out <> live_out.(b) || inn <> live_in.(b) then begin
        live_out.(b) <- out;
        live_in.(b) <- inn;
        changed := true
      end
    done
  done;
  { live_in; live_out }

let live_in t b = regs_of t.live_in.(b)
let live_out t b = regs_of t.live_out.(b)
let live_across t (a : Cfg.arc) = regs_of t.live_in.(a.dst)
