let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (logsum /. float_of_int (List.length xs))

let percentile xs p =
  match xs with
  | [] -> 0.0
  | xs ->
    let sorted = List.sort compare xs in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    arr.(idx)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let pct num den = 100.0 *. ratio num den

let histogram ~bins ~lo ~hi xs =
  assert (bins > 0 && hi > lo);
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let bucket x =
    let b = int_of_float ((x -. lo) /. width) in
    max 0 (min (bins - 1) b)
  in
  List.iter (fun x -> counts.(bucket x) <- counts.(bucket x) + 1) xs;
  counts
