(** Small statistics helpers used by the evaluation harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0, 100], nearest-rank on the sorted
    list; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on fewer than two samples. *)

val ratio : int -> int -> float
(** [ratio num den] as a float; 0 when [den] is 0. *)

val pct : int -> int -> float
(** [pct num den] = 100 * num / den; 0 when [den] is 0. *)

val histogram : bins:int -> lo:float -> hi:float -> float list -> int array
(** Fixed-width histogram; values outside [lo, hi] clamp to the end
    bins. *)
