(** Fixed-width text tables for the benchmark harness output.

    The harness regenerates the paper's tables and figures as aligned
    text; this module handles column sizing and alignment. *)

type align = Left | Right

type t

val create : header:(string * align) list -> t
(** A table with the given column headers and alignments. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Append a horizontal rule row. *)

val render : t -> string
(** The fully formatted table, including header rule. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float with a fixed number of decimals (default 1). *)

val cell_pct : float -> string
(** Format a percentage with one decimal, no % sign. *)
