type align = Left | Right

type row = Cells of string list | Separator

type t = {
  header : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~header = { header; rows = [] }

let width t = List.length t.header

let add_row t cells =
  let n = List.length cells in
  if n > width t then invalid_arg "Tabular.add_row: too many cells";
  let padded = cells @ List.init (width t - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let headers = List.map fst t.header in
  let aligns = List.map snd t.header in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        let cell_width = function
          | Cells cells -> String.length (List.nth cells i)
          | Separator -> 0
        in
        List.fold_left (fun acc r -> max acc (cell_width r)) (String.length h) rows)
      headers
  in
  let pad align w s =
    let n = String.length s in
    if n >= w then s
    else
      let fill = String.make (w - n) ' ' in
      match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let render_cells cells =
    let padded = List.map2 (fun (w, a) s -> pad a w s) (List.combine widths aligns) cells in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  let body =
    List.map (function Cells cells -> render_cells cells | Separator -> rule) rows
  in
  String.concat "\n" ((render_cells headers :: rule :: body))

let print t =
  print_string (render t);
  print_newline ()

let cell_float ?(decimals = 1) x = Printf.sprintf "%.*f" decimals x

let cell_pct x = Printf.sprintf "%.1f" x
