type t = {
  max_value : int;
  mutable executed : int;
  mutable taken : int;
  mutable halvings : int;
}

let create ~bits =
  assert (bits > 0 && bits < 62);
  { max_value = (1 lsl bits) - 1; executed = 0; taken = 0; halvings = 0 }

let reset t =
  t.executed <- 0;
  t.taken <- 0;
  t.halvings <- 0

let max_value t = t.max_value

let record t ~taken =
  if t.executed >= t.max_value then begin
    t.executed <- t.executed / 2;
    t.taken <- t.taken / 2;
    t.halvings <- t.halvings + 1
  end;
  t.executed <- t.executed + 1;
  if taken then t.taken <- t.taken + 1

let executed t = t.executed
let taken t = t.taken

let taken_fraction t =
  if t.executed = 0 then 0.0
  else float_of_int t.taken /. float_of_int t.executed

let halvings t = t.halvings
