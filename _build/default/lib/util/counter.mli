(** Saturating hardware-style counters.

    The Branch Behavior Buffer tracks each branch with a pair of
    fixed-width counters (executed, taken).  The paper requires that on
    saturation the *taken fraction* is preserved, which the classic
    implementation achieves by halving both counters when the executed
    counter would overflow.  This module packages that behaviour. *)

type t
(** A mutable (executed, taken) counter pair of a given bit width. *)

val create : bits:int -> t
(** Fresh pair of [bits]-wide counters, both zero. *)

val reset : t -> unit

val max_value : t -> int
(** Largest representable count: [2^bits - 1]. *)

val record : t -> taken:bool -> unit
(** Record one retirement.  If the executed counter is at its maximum,
    both counters are halved first so the taken fraction survives. *)

val executed : t -> int
val taken : t -> int

val taken_fraction : t -> float
(** [taken / executed]; 0 when nothing was recorded. *)

val halvings : t -> int
(** How many times saturation forced a halving — exposed for tests and
    for estimating true execution magnitude. *)
