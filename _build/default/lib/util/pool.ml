(* A hand-rolled domain pool on Domain/Mutex/Condition (OCaml 5).

   Two modes share one interface:

   - [jobs <= 1]: no domains are spawned; [submit] runs the task
     immediately on the calling domain, so a DAG drains depth-first in
     submission order.  This is the reference sequential schedule.
   - [jobs > 1]: [jobs] worker domains pull tasks from a FIFO queue.
     Tasks may [submit] further tasks (DAG continuations); [wait]
     blocks until the transitive closure has drained.

   Determinism is the caller's contract: tasks must write to disjoint
   slots and be pure up to their own isolated state, so the gather
   (e.g. [map], which stores by index) is schedule-independent. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  drained : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable pending : int;  (* queued + running *)
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopped do
      Condition.wait t.work_available t.mutex
    done;
    if Queue.is_empty t.queue then (* stopped and drained *)
      Mutex.unlock t.mutex
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      task ();
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.drained;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ?(jobs = default_jobs ()) () =
  let t =
    {
      jobs = Stdlib.max 1 jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      drained = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      stopped = false;
      domains = [];
    }
  in
  if t.jobs > 1 then
    t.domains <- List.init t.jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let submit t task =
  (* A task must capture its own errors into a result slot; anything
     that escapes is swallowed here so one task can neither kill a
     worker domain nor wedge [wait]. *)
  let guarded () = try task () with _ -> () in
  if t.jobs <= 1 then guarded ()
  else begin
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    t.pending <- t.pending + 1;
    Queue.push guarded t.queue;
    Condition.signal t.work_available;
    Mutex.unlock t.mutex
  end

let wait t =
  if t.jobs > 1 then begin
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.drained t.mutex
    done;
    Mutex.unlock t.mutex
  end

let shutdown t =
  if t.jobs > 1 then begin
    Mutex.lock t.mutex;
    t.stopped <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let run ~jobs tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let results : _ option array = Array.make n None in
  let errors : exn option array = Array.make n None in
  let pool = create ~jobs () in
  Array.iteri
    (fun i task ->
      submit pool (fun () ->
          match task () with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e))
    tasks;
  wait pool;
  shutdown pool;
  (* Deterministic gather: results in submission order; the earliest
     failed slot's exception is re-raised regardless of schedule. *)
  Array.iter (function Some e -> raise e | None -> ()) errors;
  Array.to_list
    (Array.mapi
       (fun i -> function
         | Some v -> v
         | None -> invalid_arg (Printf.sprintf "Pool.run: task %d lost" i))
       results)

let map ~jobs f items = run ~jobs (List.map (fun x () -> f x) items)
