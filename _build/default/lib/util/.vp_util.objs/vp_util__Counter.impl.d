lib/util/counter.ml:
