lib/util/tabular.mli:
