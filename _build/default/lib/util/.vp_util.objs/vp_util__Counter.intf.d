lib/util/counter.mli:
