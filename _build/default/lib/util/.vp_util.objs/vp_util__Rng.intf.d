lib/util/rng.mli:
