lib/util/stats.mli:
