lib/util/pool.ml: Array Condition Domain List Mutex Printf Queue Stdlib
