lib/util/pool.mli:
