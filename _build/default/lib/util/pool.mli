(** A fixed-size domain pool (hand-rolled on [Domain]/[Mutex]/
    [Condition]) with a deterministic gather.

    With [jobs <= 1] no domains are spawned and [submit] runs the task
    immediately on the calling domain — the reference sequential
    schedule.  With [jobs > 1], [jobs] worker domains drain a FIFO
    queue; tasks may submit continuation tasks, forming a DAG.

    Determinism contract: tasks must be pure up to their own isolated
    state and write results to disjoint slots, so gathered results are
    independent of the schedule.  {!run} and {!map} return results in
    submission order under any [jobs]. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] workers (default {!default_jobs}); values
    [<= 1] select the in-caller sequential mode. *)

val jobs : t -> int

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task.  Tasks must capture their own errors — an escaping
    exception is swallowed, never propagated.  May be called from
    within a running task.  Raises [Invalid_argument] after
    {!shutdown}. *)

val wait : t -> unit
(** Block until every submitted task (including tasks submitted by
    tasks) has finished. *)

val shutdown : t -> unit
(** Stop accepting work, drain the queue, and join the workers.
    Idempotent; a no-op in sequential mode. *)

val run : jobs:int -> (unit -> 'a) list -> 'a list
(** Run independent thunks on a fresh pool; results in input order.
    If any task raised, re-raises the exception of the earliest failed
    task (by input position) after all tasks finish. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f l] is [run ~jobs (List.map (fun x () -> f x) l)]. *)
