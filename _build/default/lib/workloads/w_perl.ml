module B = Vp_prog.Builder
module Op = Vp_isa.Op

let script_len = 512
let buffer_len = 64

let program ~scale =
  let b = B.create () in
  let ballast_entry = Common.ballast b ~units:205 in
  let script = B.global b ~words:script_len in
  let buffer = B.global b ~words:buffer_len in
  let result = B.global b ~words:1 in

  (* String commands: scan/transform the buffer. *)
  B.func b "handle_str" ~nargs:2 (fun fb args ->
      let op = args.(0) in
      let arg = args.(1) in
      let i = B.vreg fb in
      let addr = B.vreg fb in
      let ch = B.vreg fb in
      let acc = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K buffer_len) (fun () ->
          B.alu fb Op.Add addr i (B.K buffer);
          B.load fb ch ~base:addr ~off:0;
          B.if_ fb (Op.Eq, op, B.K 0)
            (fun () ->
              (* upcase-ish transform *)
              B.alu fb Op.Xor ch ch (B.V arg);
              B.store fb ch ~base:addr ~off:0)
            (fun () ->
              (* hash scan *)
              B.alu fb Op.Mul acc acc (B.K 33);
              B.alu fb Op.Add acc acc (B.V ch);
              B.alu fb Op.And acc acc (B.K 0xFFFFF)));
      B.ret fb (Some acc));

  (* Numeric commands: arithmetic reduction chains. *)
  B.func b "handle_num" ~nargs:2 (fun fb args ->
      let op = args.(0) in
      let arg = args.(1) in
      let i = B.vreg fb in
      let acc = B.vreg fb in
      let t = B.vreg fb in
      B.mov fb acc arg;
      B.for_ fb i ~from:(B.K 1) ~below:(B.K 48) (fun () ->
          B.if_ fb (Op.Eq, op, B.K 2)
            (fun () ->
              B.alu fb Op.Mul t acc (B.V i);
              B.alu fb Op.Add acc acc (B.V t))
            (fun () ->
              B.alu fb Op.Div t acc (B.V i);
              B.alu fb Op.Xor acc acc (B.V t));
          B.alu fb Op.And acc acc (B.K 0x3FFFFF));
      B.ret fb (Some acc));

  (* The interpreter loop: the shared root function. *)
  B.func b "interp" ~nargs:1 (fun fb args ->
      let reps = args.(0) in
      let r = B.vreg fb in
      let pc = B.vreg fb in
      let addr = B.vreg fb in
      let cmd = B.vreg fb in
      let arg = B.vreg fb in
      let acc = B.vreg fb in
      B.li fb acc 7;
      B.for_ fb r ~from:(B.K 0) ~below:(B.V reps) (fun () ->
          B.for_ fb pc ~from:(B.K 0) ~below:(B.K script_len) (fun () ->
              B.alu fb Op.Add addr pc (B.K script);
              B.load fb cmd ~base:addr ~off:0;
              B.alu fb Op.And arg acc (B.K 0xFF);
              B.addi fb arg arg 3;
              (* Dispatch: string commands are 0-1, numeric 2-3.  The
                 class test is strongly biased one way per script
                 half, flipping between phases. *)
              B.if_ fb (Op.Le, cmd, B.K 1)
                (fun () ->
                  let v = B.call fb "handle_str" [ cmd; arg ] in
                  Common.checksum_mix fb ~acc ~value:v)
                (fun () ->
                  let v = B.call fb "handle_num" [ cmd; arg ] in
                  Common.checksum_mix fb ~acc ~value:v)));
      B.ret fb (Some acc));

  B.func b "main" ~nargs:0 (fun fb _ ->
      (* One cold pass over the init/ballast code: executed, never hot. *)
      let ballast_seed = B.vreg fb in
      B.li fb ballast_seed 1;
      B.call_void fb ballast_entry [ ballast_seed ];
      (* Script: first half string commands, second half numeric. *)
      let i = B.vreg fb in
      let addr = B.vreg fb in
      let cmd = B.vreg fb in
      B.for_ fb i ~from:(B.K 0) ~below:(B.K script_len) (fun () ->
          B.alu fb Op.Add addr i (B.K script);
          B.if_ fb (Op.Lt, i, B.K (script_len / 2))
            (fun () -> B.alu fb Op.And cmd i (B.K 1))
            (fun () ->
              B.alu fb Op.And cmd i (B.K 1);
              B.addi fb cmd cmd 2);
          B.store fb cmd ~base:addr ~off:0);
      (* Buffer contents. *)
      let x = B.vreg fb in
      B.li fb x 0x51ef;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K buffer_len) (fun () ->
          Common.lcg_step fb x;
          B.alu fb Op.Add addr i (B.K buffer);
          B.store fb x ~base:addr ~off:0);
      (* Run the script; each half is one long phase because the
         interpreter finishes all string commands before reaching the
         numeric ones. *)
      let reps = B.vreg fb in
      B.li fb reps (6 * scale);
      let v = B.call fb "interp" [ reps ] in
      B.store_abs fb v result;
      B.ret fb (Some v);
      B.halt fb);
  B.program b ~entry:"main"
