(** mpeg2dec analogue (MediaBench): video decoding with an IDCT-heavy
    intra-frame phase and a memory-copy-heavy motion-compensation
    phase, alternating in an I,P,P,P group-of-pictures pattern. *)

val program : scale:int -> Vp_prog.Program.t
