(** 175.vpr analogue: FPGA place-and-route with a simulated-annealing
    placement phase (unbiased accept/reject branches) followed by a
    wavefront routing phase over a grid. *)

val program : scale:int -> Vp_prog.Program.t
