module B = Vp_prog.Builder
module Op = Vp_isa.Op

let input_words = 8192
let window = 256
let out_words = 8192

let program ~scale =
  let b = B.create () in
  let ballast_entry = Common.ballast b ~units:57 in
  let input = B.global b ~words:input_words in
  let output = B.global b ~words:out_words in
  let restored = B.global b ~words:input_words in
  let result = B.global b ~words:1 in

  (* Shared helper with stable behaviour across phases. *)
  B.func b "crc_update" ~nargs:2 (fun fb args ->
      let crc = args.(0) in
      let word = args.(1) in
      let r = B.vreg fb in
      let bit = B.vreg fb in
      B.alu fb Op.Xor r crc (B.V word);
      let i = B.vreg fb in
      B.for_ fb i ~from:(B.K 0) ~below:(B.K 4) (fun () ->
          B.alu fb Op.And bit r (B.K 1);
          B.alu fb Op.Shr r r (B.K 1);
          B.when_ fb (Op.Ne, bit, B.K 0) (fun () ->
              B.alu fb Op.Xor r r (B.K 0xEDB883)));
      B.ret fb (Some r));

  (* Phase 1: deflate — backwards match search in a sliding window. *)
  B.func b "deflate" ~nargs:0 (fun fb _ ->
      let pos = B.vreg fb in
      let cand = B.vreg fb in
      let len = B.vreg fb in
      let best = B.vreg fb in
      let a = B.vreg fb in
      let va = B.vreg fb in
      let vb = B.vreg fb in
      let crc = B.vreg fb in
      let outpos = B.vreg fb in
      B.li fb crc 0xFFFF;
      B.li fb outpos 0;
      B.for_ fb pos ~from:(B.K window) ~below:(B.K input_words) (fun () ->
          B.li fb best 0;
          (* Try a handful of window candidates. *)
          B.for_ fb cand ~from:(B.K 1) ~below:(B.K 9) (fun () ->
              B.li fb len 0;
              B.while_ fb (fun () -> (Op.Lt, len, B.K 16)) (fun () ->
                  B.alu fb Op.Add a pos (B.V len) ;
                  B.when_ fb (Op.Ge, a, B.K input_words) (fun () -> B.break_ fb);
                  B.alu fb Op.Add a a (B.K input);
                  B.load fb va ~base:a ~off:0;
                  B.alu fb Op.Mul a cand (B.K 29);
                  B.alu fb Op.And a a (B.K (window - 1));
                  B.alu fb Op.Sub a pos (B.V a);
                  B.alu fb Op.Add a a (B.V len);
                  B.alu fb Op.Add a a (B.K input);
                  B.load fb vb ~base:a ~off:0;
                  B.alu fb Op.And va va (B.K 0xFF);
                  B.alu fb Op.And vb vb (B.K 0xFF);
                  B.when_ fb (Op.Ne, va, B.V vb) (fun () -> B.break_ fb);
                  B.addi fb len len 1);
              B.when_ fb (Op.Gt, len, B.V best) (fun () -> B.mov fb best len));
          (* Emit a token and fold it into the CRC. *)
          B.alu fb Op.And a outpos (B.K (out_words - 1));
          B.alu fb Op.Add a a (B.K output);
          B.store fb best ~base:a ~off:0;
          B.addi fb outpos outpos 1;
          let c = B.call fb "crc_update" [ crc; best ] in
          B.mov fb crc c);
      B.ret fb (Some crc));

  (* Phase 2: inflate — token decode with copy-back. *)
  B.func b "inflate" ~nargs:0 (fun fb _ ->
      let i = B.vreg fb in
      let a = B.vreg fb in
      let tok = B.vreg fb in
      let crc = B.vreg fb in
      let v = B.vreg fb in
      B.li fb crc 0xAAAA;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K out_words) (fun () ->
          B.alu fb Op.Add a i (B.K output);
          B.load fb tok ~base:a ~off:0;
          B.if_ fb (Op.Eq, tok, B.K 0)
            (fun () ->
              (* Literal: copy through. *)
              B.alu fb Op.And a i (B.K (input_words - 1));
              B.alu fb Op.Add a a (B.K input);
              B.load fb v ~base:a ~off:0;
              B.alu fb Op.And a i (B.K (input_words - 1));
              B.alu fb Op.Add a a (B.K restored);
              B.store fb v ~base:a ~off:0)
            (fun () ->
              (* Match: replay [tok] words. *)
              let k = B.vreg fb in
              B.for_ fb k ~from:(B.K 0) ~below:(B.V tok) (fun () ->
                  B.alu fb Op.Add a i (B.V k);
                  B.alu fb Op.And a a (B.K (input_words - 1));
                  B.alu fb Op.Add a a (B.K restored);
                  B.load fb v ~base:a ~off:0;
                  B.addi fb v v 1;
                  B.store fb v ~base:a ~off:0));
          let c = B.call fb "crc_update" [ crc; tok ] in
          B.mov fb crc c);
      B.ret fb (Some crc));

  B.func b "main" ~nargs:0 (fun fb _ ->
      (* One cold pass over the init/ballast code: executed, never hot. *)
      let ballast_seed = B.vreg fb in
      B.li fb ballast_seed 1;
      B.call_void fb ballast_entry [ ballast_seed ];
      let i = B.vreg fb in
      let a = B.vreg fb in
      let x = B.vreg fb in
      let v = B.vreg fb in
      B.li fb x 0x1dea;
      (* Compressible input: small alphabet with runs. *)
      B.for_ fb i ~from:(B.K 0) ~below:(B.K input_words) (fun () ->
          Common.lcg_draw fb ~dst:v ~state:x ~bound:7;
          B.alu fb Op.Add a i (B.K input);
          B.store fb v ~base:a ~off:0);
      let rep = B.vreg fb in
      let acc = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb rep ~from:(B.K 0) ~below:(B.K scale) (fun () ->
          let c1 = B.call fb "deflate" [] in
          Common.checksum_mix fb ~acc ~value:c1;
          let c2 = B.call fb "inflate" [] in
          Common.checksum_mix fb ~acc ~value:c2);
      B.store_abs fb acc result;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"
