(** 181.mcf analogue: network-simplex refinement alternating between
    an arc-pricing scan and a pivot/update pass.  Both phases live in
    the same [simplex] root function, steered by a mode flag whose
    bias flips with the phase — the shared-launch-point situation
    where the paper reports large linking gains for mcf. *)

val program : scale:int -> Vp_prog.Program.t
