module B = Vp_prog.Builder
module Op = Vp_isa.Op

let lcg_step fb x =
  B.alu fb Op.Mul x x (B.K 1103515245);
  B.alu fb Op.Add x x (B.K 12345);
  B.alu fb Op.And x x (B.K 0x3FFFFFFF)

let lcg_draw fb ~dst ~state ~bound =
  lcg_step fb state;
  B.alu fb Op.Rem dst state (B.K bound)

let fill_array fb ~base ~len ~seed =
  let x = B.vreg fb in
  let i = B.vreg fb in
  let addr = B.vreg fb in
  B.li fb x seed;
  B.for_ fb i ~from:(B.K 0) ~below:(B.K len) (fun () ->
      lcg_step fb x;
      B.alu fb Op.Add addr i (B.K base);
      B.store fb x ~base:addr ~off:0)

let sum_array fb ~dst ~base ~len =
  let i = B.vreg fb in
  let addr = B.vreg fb in
  let v = B.vreg fb in
  B.li fb dst 0;
  B.for_ fb i ~from:(B.K 0) ~below:(B.K len) (fun () ->
      B.alu fb Op.Add addr i (B.K base);
      B.load fb v ~base:addr ~off:0;
      B.alu fb Op.Add dst dst (B.V v))

let checksum_mix fb ~acc ~value =
  B.alu fb Op.Mul acc acc (B.K 31);
  B.alu fb Op.Add acc acc (B.V value);
  B.alu fb Op.And acc acc (B.K 0xFFFFFF)

let ballast b ~units =
  assert (units > 0);
  let name i = Printf.sprintf "ballast_%d" i in
  for i = 0 to units - 1 do
    B.func b (name i) ~nargs:1 (fun fb args ->
        let x = args.(0) in
        let t = B.vreg fb in
        let u = B.vreg fb in
        let k = B.vreg fb in
        (* A dozen arithmetic statements whose operators rotate with
           the function index, so the bodies differ structurally. *)
        let ops = [| Op.Add; Op.Xor; Op.Mul; Op.Or; Op.Sub; Op.And |] in
        B.li fb t (i * 37);
        B.li fb u ((i * 101) land 0xFFF);
        for j = 0 to 11 do
          let op = ops.((i + j) mod Array.length ops) in
          B.alu fb op t t (K ((j * 13) + 1));
          B.alu fb op u u (V t)
        done;
        (* A short data-dependent diamond and a tiny loop. *)
        B.if_ fb (Op.Lt, u, K 0)
          (fun () -> B.alu fb Op.Sub u x (V u))
          (fun () -> B.alu fb Op.Add u u (V x));
        B.for_ fb k ~from:(K 0) ~below:(K ((i mod 3) + 2)) (fun () ->
            B.alu fb Op.Shl t t (K 1);
            B.alu fb Op.Xor t t (V k);
            B.alu fb Op.And t t (K 0xFFFFF));
        if i + 1 < units then begin
          let r = B.call fb (name (i + 1)) [ u ] in
          B.alu fb Op.Add u u (V r);
          B.ret fb (Some u)
        end
        else B.ret fb (Some u))
  done;
  name 0
