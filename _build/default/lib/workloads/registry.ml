type t = {
  bench : string;
  input : string;
  description : string;
  program : unit -> Vp_prog.Program.t;
}

let entry bench input description program = { bench; input; description; program }

let all =
  [
    entry "099.go" "A" "alternating territory/tactics evaluation" (fun () ->
        W_go.program ~scale:2);
    entry "124.m88ksim" "A" "two-pass loader then fetch-execute loop" (fun () ->
        W_m88ksim.program ~scale:2);
    entry "130.li" "A" "evaluator with weak callers of a hot lookup" (fun () ->
        W_li.program ~scale:2);
    entry "130.li" "B" "smaller run of the same evaluator" (fun () ->
        W_li.program ~scale:1);
    entry "130.li" "C" "longer reduced-reference run" (fun () ->
        W_li.program ~scale:3);
    entry "132.ijpeg" "A" "convert/DCT/entropy pipeline, 96x96 image" (fun () ->
        W_ijpeg.program ~scale:3 ~width:96 ~height:96);
    entry "132.ijpeg" "B" "convert/DCT/entropy pipeline, 64x64 image" (fun () ->
        W_ijpeg.program ~scale:3 ~width:64 ~height:64);
    entry "132.ijpeg" "C" "convert/DCT/entropy pipeline, 128x96 scenery" (fun () ->
        W_ijpeg.program ~scale:2 ~width:128 ~height:96);
    entry "164.gzip" "A" "deflate then inflate over a synthetic corpus" (fun () ->
        W_gzip.program ~scale:2);
    entry "175.vpr" "A" "annealing placement then wavefront routing" (fun () ->
        W_vpr.program ~scale:2);
    entry "181.mcf" "A" "alternating pricing and pivot passes" (fun () ->
        W_mcf.program ~scale:2);
    entry "134.perl" "A" "string-command half then numeric-command half" (fun () ->
        W_perl.program ~scale:3);
    entry "134.perl" "B" "shorter script run" (fun () -> W_perl.program ~scale:1);
    entry "134.perl" "C" "minimal script run" (fun () -> W_perl.program ~scale:2);
    entry "255.vortex" "A" "insert/lookup/traverse database phases" (fun () ->
        W_vortex.program ~scale:2);
    entry "255.vortex" "B" "smaller database run" (fun () ->
        W_vortex.program ~scale:1);
    entry "197.parser" "A" "tokenise then build linkages" (fun () ->
        W_parser.program ~scale:2);
    entry "300.twolf" "A" "net-cost and row-overlap refinement stages" (fun () ->
        W_twolf.program ~scale:2);
    entry "mpeg2dec" "A" "I/P frame decoding group-of-pictures pattern" (fun () ->
        W_mpeg2dec.program ~scale:2);
  ]

let find ~bench ~input =
  List.find_opt (fun t -> t.bench = bench && t.input = input) all

let find_bench bench = List.filter (fun t -> t.bench = bench) all

let name t = t.bench ^ "/" ^ t.input

let benches =
  List.fold_left
    (fun acc t -> if List.mem t.bench acc then acc else acc @ [ t.bench ])
    [] all
