(** 132.ijpeg analogue: an image-compression pipeline with three
    sequential whole-image phases — colour conversion, blocked
    DCT/quantisation (exercising the FP units), and entropy coding
    with data-dependent branches. *)

val program : scale:int -> width:int -> height:int -> Vp_prog.Program.t
