module B = Vp_prog.Builder
module Op = Vp_isa.Op

let program ~scale ~width ~height =
  let pixels = width * height in
  let b = B.create () in
  let ballast_entry = Common.ballast b ~units:72 in
  let image = B.global b ~words:pixels in
  let coeffs = B.global b ~words:pixels in
  let out = B.global b ~words:pixels in
  let result = B.global b ~words:1 in

  (* Phase 1: colour conversion — pure per-pixel arithmetic. *)
  B.func b "color_convert" ~nargs:0 (fun fb _ ->
      let i = B.vreg fb in
      let addr = B.vreg fb in
      let px = B.vreg fb in
      let y = B.vreg fb in
      let acc = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K pixels) (fun () ->
          B.alu fb Op.Add addr i (B.K image);
          B.load fb px ~base:addr ~off:0;
          B.alu fb Op.Mul y px (B.K 77);
          B.alu fb Op.Shr y y (B.K 8);
          B.alu fb Op.And y y (B.K 0xFF);
          B.store fb y ~base:addr ~off:0;
          B.alu fb Op.Add acc acc (B.V y));
      B.ret fb (Some acc));

  (* Phase 2: 8x8 blocked transform and quantisation — multiply
     heavy, exercising the FP unit class of the machine model. *)
  B.func b "dct_quantize" ~nargs:0 (fun fb _ ->
      let bx = B.vreg fb in
      let by = B.vreg fb in
      let u = B.vreg fb in
      let v = B.vreg fb in
      let addr = B.vreg fb in
      let s = B.vreg fb in
      let t = B.vreg fb in
      let acc = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb by ~from:(B.K 0) ~below:(B.K (height / 8)) (fun () ->
          B.for_ fb bx ~from:(B.K 0) ~below:(B.K (width / 8)) (fun () ->
              B.for_ fb u ~from:(B.K 0) ~below:(B.K 8) (fun () ->
                  B.li fb s 0;
                  B.for_ fb v ~from:(B.K 0) ~below:(B.K 8) (fun () ->
                      (* addr = ((by*8+u)*width + bx*8+v) *)
                      B.alu fb Op.Mul addr by (B.K 8);
                      B.alu fb Op.Add addr addr (B.V u);
                      B.alu fb Op.Mul addr addr (B.K width);
                      B.alu fb Op.Mul t bx (B.K 8);
                      B.alu fb Op.Add addr addr (B.V t);
                      B.alu fb Op.Add addr addr (B.V v);
                      B.alu fb Op.Add addr addr (B.K image);
                      B.load fb t ~base:addr ~off:0;
                      B.alu fb Op.Fmul t t (B.K 181);
                      B.alu fb Op.Shr t t (B.K 7);
                      B.alu fb Op.Fadd s s (B.V t));
                  (* Quantise the row sum. *)
                  B.alu fb Op.Fdiv s s (B.K 16);
                  B.alu fb Op.Mul addr by (B.K 8);
                  B.alu fb Op.Add addr addr (B.V u);
                  B.alu fb Op.Mul addr addr (B.K (width / 8));
                  B.alu fb Op.Add addr addr (B.V bx);
                  B.alu fb Op.And addr addr (B.K (pixels - 1));
                  B.alu fb Op.Add addr addr (B.K coeffs);
                  B.store fb s ~base:addr ~off:0;
                  B.alu fb Op.Add acc acc (B.V s);
                  B.alu fb Op.And acc acc (B.K 0xFFFFF))));
      B.ret fb (Some acc));

  (* Phase 3: entropy coding — run-length with data-dependent
     branches. *)
  B.func b "entropy_encode" ~nargs:0 (fun fb _ ->
      let i = B.vreg fb in
      let addr = B.vreg fb in
      let c = B.vreg fb in
      let run = B.vreg fb in
      let bits = B.vreg fb in
      let outpos = B.vreg fb in
      B.li fb run 0;
      B.li fb bits 0;
      B.li fb outpos 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K pixels) (fun () ->
          B.alu fb Op.Add addr i (B.K coeffs);
          B.load fb c ~base:addr ~off:0;
          B.alu fb Op.And c c (B.K 0xFF);
          B.if_ fb (Op.Eq, c, B.K 0)
            (fun () -> B.addi fb run run 1)
            (fun () ->
              (* Emit (run, value). *)
              B.alu fb Op.Shl bits run (B.K 4);
              B.alu fb Op.Or bits bits (B.V c);
              B.alu fb Op.And bits bits (B.K 0xFFFFF);
              B.alu fb Op.And addr outpos (B.K (pixels - 1));
              B.alu fb Op.Add addr addr (B.K out);
              B.store fb bits ~base:addr ~off:0;
              B.addi fb outpos outpos 1;
              B.li fb run 0));
      B.ret fb (Some outpos));

  B.func b "main" ~nargs:0 (fun fb _ ->
      (* One cold pass over the init/ballast code: executed, never hot. *)
      let ballast_seed = B.vreg fb in
      B.li fb ballast_seed 1;
      B.call_void fb ballast_entry [ ballast_seed ];
      let i = B.vreg fb in
      let addr = B.vreg fb in
      let x = B.vreg fb in
      B.li fb x 0xface;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K pixels) (fun () ->
          Common.lcg_step fb x;
          B.alu fb Op.Add addr i (B.K image);
          B.store fb x ~base:addr ~off:0);
      let rep = B.vreg fb in
      let acc = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb rep ~from:(B.K 0) ~below:(B.K scale) (fun () ->
          let r1 = B.call fb "color_convert" [] in
          Common.checksum_mix fb ~acc ~value:r1;
          let r2 = B.call fb "dct_quantize" [] in
          Common.checksum_mix fb ~acc ~value:r2;
          let r3 = B.call fb "entropy_encode" [] in
          Common.checksum_mix fb ~acc ~value:r3);
      B.store_abs fb acc result;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"
