(** 197.parser analogue: natural-language-style parsing in two
    whole-input phases driven from one [process] root — tokenisation
    (character-class branch tree) and linkage building (nested token
    matching with a binary-search dictionary callee).  The shared
    root gives linking its coverage win, as the paper reports for
    parser. *)

val program : scale:int -> Vp_prog.Program.t
