(** Shared building blocks for the synthetic Table 1 workloads.

    Everything here emits code {e into the program} — randomness, for
    instance, is an in-program linear congruential generator, so
    workload behaviour is a property of the binary, exactly as it
    would be for a real benchmark. *)

module B = Vp_prog.Builder

val lcg_step : B.fb -> B.vreg -> unit
(** Advance an in-program LCG state register:
    [x := (x * 1103515245 + 12345) land 0x3FFFFFFF]. *)

val lcg_draw : B.fb -> dst:B.vreg -> state:B.vreg -> bound:int -> unit
(** Advance the state and put a pseudo-uniform draw from [0, bound)
    in [dst]. *)

val fill_array : B.fb -> base:int -> len:int -> seed:int -> unit
(** Emit a loop filling a global array with LCG values. *)

val sum_array : B.fb -> dst:B.vreg -> base:int -> len:int -> unit
(** Emit a loop summing a global array into [dst]. *)

val checksum_mix : B.fb -> acc:B.vreg -> value:B.vreg -> unit
(** [acc := (acc * 31 + value) land 0xFFFFFF] — cheap in-program
    digest so results are data-dependent end to end. *)

val ballast : B.t -> units:int -> string
(** Generate [units] cold functions (roughly 60 instructions each,
    with per-function structural variation) chained by calls, and
    return the name of the chain's entry.  Workloads call the chain
    once during initialisation: the code executes — it is genuinely
    cold, not dead — but never becomes hot, reproducing the large
    cold-code mass of real binaries that the paper's Table 3
    percentages are measured against. *)
