module B = Vp_prog.Builder
module Op = Vp_isa.Op

let section_words = 2048
let image_words = 4096

let program ~scale =
  let b = B.create () in
  let ballast_entry = Common.ballast b ~units:85 in
  let section = B.global b ~words:section_words in
  let image = B.global b ~words:image_words in
  let result = B.global b ~words:1 in

  (* Two-pass loader: kind 0 relocates (adds a base offset to words
     that look like addresses), kind 1 copies with a parity checksum.
     The [kind] test is the flipped-bias branch shared by both
     phases. *)
  B.func b "load_section" ~nargs:2 (fun fb args ->
      let kind = args.(0) in
      let passes = args.(1) in
      let p = B.vreg fb in
      let i = B.vreg fb in
      let addr = B.vreg fb in
      let word = B.vreg fb in
      let dst = B.vreg fb in
      let acc = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb p ~from:(B.K 0) ~below:(B.V passes) (fun () ->
          B.for_ fb i ~from:(B.K 0) ~below:(B.K section_words) (fun () ->
              B.alu fb Op.Add addr i (B.K section);
              B.load fb word ~base:addr ~off:0;
              B.if_ fb (Op.Eq, kind, B.K 0)
                (fun () ->
                  (* Relocation pass: rebase address-like words. *)
                  B.alu fb Op.Add word word (B.K 0x1000);
                  B.alu fb Op.And word word (B.K 0x3FFFFFFF);
                  B.store fb word ~base:addr ~off:0)
                (fun () ->
                  (* Copy pass: move into the simulated memory image. *)
                  B.alu fb Op.And dst word (B.K (image_words - 1));
                  B.alu fb Op.Add dst dst (B.K image);
                  B.store fb word ~base:dst ~off:0;
                  Common.checksum_mix fb ~acc ~value:word)));
      B.ret fb (Some acc));

  (* Fetch-decode-execute over the memory image. *)
  B.func b "simulate" ~nargs:1 (fun fb args ->
      let steps = args.(0) in
      let s = B.vreg fb in
      let pc = B.vreg fb in
      let addr = B.vreg fb in
      let insn = B.vreg fb in
      let opcode = B.vreg fb in
      let acc = B.vreg fb in
      let tmp = B.vreg fb in
      B.li fb acc 1;
      B.li fb pc 0;
      B.for_ fb s ~from:(B.K 0) ~below:(B.V steps) (fun () ->
          B.alu fb Op.And pc pc (B.K (image_words - 1));
          B.alu fb Op.Add addr pc (B.K image);
          B.load fb insn ~base:addr ~off:0;
          B.alu fb Op.And opcode insn (B.K 3);
          (* Decode tree: four instruction classes. *)
          B.if_ fb (Op.Le, opcode, B.K 1)
            (fun () ->
              B.if_ fb (Op.Eq, opcode, B.K 0)
                (fun () -> B.alu fb Op.Add acc acc (B.V insn))
                (fun () -> B.alu fb Op.Xor acc acc (B.V insn)))
            (fun () ->
              B.if_ fb (Op.Eq, opcode, B.K 2)
                (fun () ->
                  (* Load-class: indirect read. *)
                  B.alu fb Op.Shr tmp insn (B.K 2);
                  B.alu fb Op.And tmp tmp (B.K (image_words - 1));
                  B.alu fb Op.Add tmp tmp (B.K image);
                  B.load fb tmp ~base:tmp ~off:0;
                  B.alu fb Op.Add acc acc (B.V tmp))
                (fun () ->
                  (* Branch-class: pc redirect. *)
                  B.alu fb Op.Add pc pc (B.V insn)));
          B.addi fb pc pc 1;
          B.alu fb Op.And acc acc (B.K 0xFFFFFF));
      B.ret fb (Some acc));

  B.func b "main" ~nargs:0 (fun fb _ ->
      (* One cold pass over the init/ballast code: executed, never hot. *)
      let ballast_seed = B.vreg fb in
      B.li fb ballast_seed 1;
      B.call_void fb ballast_entry [ ballast_seed ];
      let seed_i = B.vreg fb in
      let x = B.vreg fb in
      let addr = B.vreg fb in
      (* Synthesise the input binary in place. *)
      B.li fb x 0x2317;
      B.for_ fb seed_i ~from:(B.K 0) ~below:(B.K section_words) (fun () ->
          Common.lcg_step fb x;
          B.alu fb Op.Add addr seed_i (B.K section);
          B.store fb x ~base:addr ~off:0);
      let passes = B.vreg fb in
      B.li fb passes (24 * scale);
      let kind0 = B.vreg fb in
      B.li fb kind0 0;
      let r1 = B.call fb "load_section" [ kind0; passes ] in
      let kind1 = B.vreg fb in
      B.li fb kind1 1;
      let r2 = B.call fb "load_section" [ kind1; passes ] in
      let steps = B.vreg fb in
      B.li fb steps (60_000 * scale);
      let r3 = B.call fb "simulate" [ steps ] in
      let acc = B.vreg fb in
      B.mov fb acc r1;
      Common.checksum_mix fb ~acc ~value:r2;
      Common.checksum_mix fb ~acc ~value:r3;
      B.store_abs fb acc result;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"
