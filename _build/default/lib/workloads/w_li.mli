(** 130.li analogue: a lisp-ish evaluator in which one hot caller
    ([eval_list]) and several weakly executed callers ([eval_setq],
    [eval_define]) all call the important [lookup] routine.

    Only the hot caller is detected, so [lookup] is partially inlined
    into its package and never becomes a root function; the weak
    callers keep calling original code, losing roughly a tenth of
    execution — the 130.li coverage characteristic the paper reports
    in Section 5.1. *)

val program : scale:int -> Vp_prog.Program.t
