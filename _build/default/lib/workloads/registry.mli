(** The Table 1 benchmark/input inventory.  Programs are built on
    demand; equal entries always rebuild identical binaries. *)

type t = {
  bench : string;  (** paper benchmark name, e.g. "124.m88ksim" *)
  input : string;  (** input label, e.g. "A" *)
  description : string;
  program : unit -> Vp_prog.Program.t;
}

val all : t list
(** Table 1 order. *)

val find : bench:string -> input:string -> t option

val find_bench : string -> t list
(** All inputs of one benchmark. *)

val name : t -> string
(** ["124.m88ksim/A"]. *)

val benches : string list
(** Distinct benchmark names, Table 1 order. *)
