(** 134.perl analogue: a command interpreter whose script begins with
    a long run of string commands and ends with a long run of numeric
    commands.

    The command-dispatch loop is the root function of both phases —
    the paper's canonical example (Section 3.3.4) of one launch point
    serving several phase packages, resolved by package linking. *)

val program : scale:int -> Vp_prog.Program.t
