module B = Vp_prog.Builder
module Op = Vp_isa.Op

let frame_dim = 64
let frame_words = frame_dim * frame_dim

let program ~scale =
  let b = B.create () in
  let ballast_entry = Common.ballast b ~units:80 in
  let frame = B.global b ~words:frame_words in
  let reference = B.global b ~words:frame_words in
  let coeffs = B.global b ~words:frame_words in
  let result = B.global b ~words:1 in

  (* Intra frame: blocked inverse transform, multiply-heavy. *)
  B.func b "decode_intra" ~nargs:0 (fun fb _ ->
      let blk = B.vreg fb in
      let i = B.vreg fb in
      let a = B.vreg fb in
      let v = B.vreg fb in
      let s = B.vreg fb in
      let acc = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb blk ~from:(B.K 0) ~below:(B.K (frame_words / 64)) (fun () ->
          B.li fb s 0;
          B.for_ fb i ~from:(B.K 0) ~below:(B.K 64) (fun () ->
              B.alu fb Op.Mul a blk (B.K 64);
              B.alu fb Op.Add a a (B.V i);
              B.alu fb Op.Add a a (B.K coeffs);
              B.load fb v ~base:a ~off:0;
              B.alu fb Op.Fmul v v (B.K 2217);
              B.alu fb Op.Shr v v (B.K 10);
              B.alu fb Op.Fadd s s (B.V v);
              B.alu fb Op.And s s (B.K 0xFFFF));
          B.for_ fb i ~from:(B.K 0) ~below:(B.K 64) (fun () ->
              B.alu fb Op.Mul a blk (B.K 64);
              B.alu fb Op.Add a a (B.V i);
              B.alu fb Op.Add a a (B.K frame);
              B.alu fb Op.Xor v s (B.V i);
              B.alu fb Op.And v v (B.K 0xFF);
              B.store fb v ~base:a ~off:0);
          B.alu fb Op.Add acc acc (B.V s);
          B.alu fb Op.And acc acc (B.K 0xFFFFF));
      B.ret fb (Some acc));

  (* Predicted frame: motion compensation — offset copy plus residual. *)
  B.func b "decode_predicted" ~nargs:1 (fun fb args ->
      let motion = args.(0) in
      let i = B.vreg fb in
      let a = B.vreg fb in
      let src = B.vreg fb in
      let v = B.vreg fb in
      let r = B.vreg fb in
      let acc = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K frame_words) (fun () ->
          B.alu fb Op.Add src i (B.V motion);
          B.alu fb Op.And src src (B.K (frame_words - 1));
          B.alu fb Op.Add src src (B.K reference);
          B.load fb v ~base:src ~off:0;
          B.alu fb Op.Add a i (B.K coeffs);
          B.load fb r ~base:a ~off:0;
          B.alu fb Op.And r r (B.K 0xF);
          B.alu fb Op.Add v v (B.V r);
          B.alu fb Op.And v v (B.K 0xFF);
          B.alu fb Op.Add a i (B.K frame);
          B.store fb v ~base:a ~off:0;
          B.alu fb Op.Add acc acc (B.V v));
      B.ret fb (Some acc));

  (* Reference update after each frame. *)
  B.func b "commit_frame" ~nargs:0 (fun fb _ ->
      let i = B.vreg fb in
      let a = B.vreg fb in
      let v = B.vreg fb in
      B.for_ fb i ~from:(B.K 0) ~below:(B.K frame_words) (fun () ->
          B.alu fb Op.Add a i (B.K frame);
          B.load fb v ~base:a ~off:0;
          B.alu fb Op.Add a i (B.K reference);
          B.store fb v ~base:a ~off:0);
      B.ret fb None);

  B.func b "main" ~nargs:0 (fun fb _ ->
      (* One cold pass over the init/ballast code: executed, never hot. *)
      let ballast_seed = B.vreg fb in
      B.li fb ballast_seed 1;
      B.call_void fb ballast_entry [ ballast_seed ];
      let i = B.vreg fb in
      let a = B.vreg fb in
      let x = B.vreg fb in
      B.li fb x 0x3d;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K frame_words) (fun () ->
          Common.lcg_step fb x;
          B.alu fb Op.Add a i (B.K coeffs);
          B.store fb x ~base:a ~off:0);
      let gop = B.vreg fb in
      let f = B.vreg fb in
      let acc = B.vreg fb in
      let motion = B.vreg fb in
      B.li fb acc 0;
      (* Groups of pictures: I P P P, with several intra repeats so
         each phase is long enough to be detected. *)
      B.for_ fb gop ~from:(B.K 0) ~below:(B.K (2 * scale)) (fun () ->
          B.for_ fb f ~from:(B.K 0) ~below:(B.K 5) (fun () ->
              let r = B.call fb "decode_intra" [] in
              Common.checksum_mix fb ~acc ~value:r);
          B.call_void fb "commit_frame" [];
          B.for_ fb f ~from:(B.K 0) ~below:(B.K 15) (fun () ->
              B.alu fb Op.And motion f (B.K 31);
              B.addi fb motion motion 1;
              let r = B.call fb "decode_predicted" [ motion ] in
              Common.checksum_mix fb ~acc ~value:r;
              B.call_void fb "commit_frame" []));
      B.store_abs fb acc result;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"
