(** 099.go analogue: a board-game engine alternating between long
    territory-evaluation and tactical-reading phases over a 19x19
    board.  Both phases share helper routines, producing the Multi
    branch behaviour the paper observes for go (Section 5.3). *)

val program : scale:int -> Vp_prog.Program.t
