module B = Vp_prog.Builder
module Op = Vp_isa.Op

let text_len = 6144
let dict_len = 512
let token_cap = 6144

let program ~scale =
  let b = B.create () in
  let ballast_entry = Common.ballast b ~units:90 in
  let text = B.global b ~words:text_len in
  let dict = B.global b ~words:dict_len in
  let tokens = B.global b ~words:token_cap in
  let result = B.global b ~words:1 in

  (* Binary search in the sorted dictionary. *)
  B.func b "dict_find" ~nargs:1 (fun fb args ->
      let key = args.(0) in
      let lo = B.vreg fb in
      let hi = B.vreg fb in
      let mid = B.vreg fb in
      let a = B.vreg fb in
      let v = B.vreg fb in
      let res = B.vreg fb in
      B.li fb lo 0;
      B.li fb hi dict_len;
      B.li fb res (-1);
      B.while_ fb (fun () -> (Op.Lt, lo, B.V hi)) (fun () ->
          B.alu fb Op.Add mid lo (B.V hi);
          B.alu fb Op.Shr mid mid (B.K 1);
          B.alu fb Op.Add a mid (B.K dict);
          B.load fb v ~base:a ~off:0;
          B.if_ fb (Op.Eq, v, B.V key)
            (fun () ->
              B.mov fb res mid;
              B.break_ fb)
            (fun () ->
              B.if_ fb (Op.Lt, v, B.V key)
                (fun () -> B.addi fb lo mid 1)
                (fun () -> B.mov fb hi mid)));
      B.ret fb (Some res));

  (* Both phases inside one root: the launch point is shared. *)
  B.func b "process" ~nargs:1 (fun fb args ->
      let phase = args.(0) in
      let acc = B.vreg fb in
      B.li fb acc 0;
      B.if_ fb (Op.Eq, phase, B.K 0)
        (fun () ->
          (* Tokenise: character-class branch tree. *)
          let i = B.vreg fb in
          let a = B.vreg fb in
          let ch = B.vreg fb in
          let tok = B.vreg fb in
          let npos = B.vreg fb in
          B.li fb npos 0;
          B.for_ fb i ~from:(B.K 0) ~below:(B.K text_len) (fun () ->
              B.alu fb Op.Add a i (B.K text);
              B.load fb ch ~base:a ~off:0;
              B.alu fb Op.And ch ch (B.K 0x7F);
              B.if_ fb (Op.Lt, ch, B.K 32)
                (fun () -> B.li fb tok 1)  (* whitespace-ish *)
                (fun () ->
                  B.if_ fb (Op.Lt, ch, B.K 64)
                    (fun () ->
                      B.alu fb Op.And tok ch (B.K 0xF);
                      B.addi fb tok tok 2)  (* punctuation-ish *)
                    (fun () ->
                      B.alu fb Op.And tok ch (B.K 0x3F);
                      B.addi fb tok tok 20));  (* word-ish *)
              B.alu fb Op.And a npos (B.K (token_cap - 1));
              B.alu fb Op.Add a a (B.K tokens);
              B.store fb tok ~base:a ~off:0;
              B.addi fb npos npos 1;
              B.alu fb Op.Add acc acc (B.V tok)))
        (fun () ->
          (* Build linkages: match token pairs at widening distances,
             consulting the dictionary. *)
          let i = B.vreg fb in
          let d = B.vreg fb in
          let a = B.vreg fb in
          let t1 = B.vreg fb in
          let t2 = B.vreg fb in
          B.for_ fb d ~from:(B.K 1) ~below:(B.K 5) (fun () ->
              B.for_ fb i ~from:(B.K 0) ~below:(B.K (token_cap - 8)) (fun () ->
                  B.alu fb Op.Add a i (B.K tokens);
                  B.load fb t1 ~base:a ~off:0;
                  B.alu fb Op.Add a a (B.V d);
                  B.load fb t2 ~base:a ~off:0;
                  B.when_ fb (Op.Eq, t1, B.V t2) (fun () ->
                      B.alu fb Op.Mul t1 t1 (B.K 67);
                      B.alu fb Op.And t1 t1 (B.K 0xFFFF);
                      let hit = B.call fb "dict_find" [ t1 ] in
                      B.alu fb Op.Add acc acc (B.V hit);
                      B.alu fb Op.And acc acc (B.K 0xFFFFF)))));
      B.ret fb (Some acc));

  B.func b "main" ~nargs:0 (fun fb _ ->
      (* One cold pass over the init/ballast code: executed, never hot. *)
      let ballast_seed = B.vreg fb in
      B.li fb ballast_seed 1;
      B.call_void fb ballast_entry [ ballast_seed ];
      let i = B.vreg fb in
      let a = B.vreg fb in
      let x = B.vreg fb in
      let v = B.vreg fb in
      B.li fb x 0x9afe;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K text_len) (fun () ->
          Common.lcg_draw fb ~dst:v ~state:x ~bound:128;
          B.alu fb Op.Add a i (B.K text);
          B.store fb v ~base:a ~off:0);
      (* Sorted dictionary: monotone keys. *)
      let key = B.vreg fb in
      B.li fb key 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K dict_len) (fun () ->
          Common.lcg_draw fb ~dst:v ~state:x ~bound:120;
          B.alu fb Op.Add key key (B.V v);
          B.addi fb key key 1;
          B.alu fb Op.Add a i (B.K dict);
          B.store fb key ~base:a ~off:0);
      let rep = B.vreg fb in
      let acc = B.vreg fb in
      let phase = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb rep ~from:(B.K 0) ~below:(B.K (3 * scale)) (fun () ->
          B.li fb phase 0;
          let r1 = B.call fb "process" [ phase ] in
          Common.checksum_mix fb ~acc ~value:r1;
          B.li fb phase 1;
          let r2 = B.call fb "process" [ phase ] in
          Common.checksum_mix fb ~acc ~value:r2);
      B.store_abs fb acc result;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"
