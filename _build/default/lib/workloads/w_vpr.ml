module B = Vp_prog.Builder
module Op = Vp_isa.Op

let cells = 512
let grid_dim = 64
let grid_words = grid_dim * grid_dim

let program ~scale =
  let b = B.create () in
  let ballast_entry = Common.ballast b ~units:137 in
  let pos_x = B.global b ~words:cells in
  let pos_y = B.global b ~words:cells in
  let nets = B.global b ~words:cells in
  let grid = B.global b ~words:grid_words in
  let result = B.global b ~words:1 in

  (* Wirelength contribution of one cell: distance to its net peer. *)
  B.func b "cell_cost" ~nargs:1 (fun fb args ->
      let c = args.(0) in
      let a = B.vreg fb in
      let peer = B.vreg fb in
      let x1 = B.vreg fb in
      let y1 = B.vreg fb in
      let x2 = B.vreg fb in
      let y2 = B.vreg fb in
      let d = B.vreg fb in
      let zero = B.vreg fb in
      B.li fb zero 0;
      B.alu fb Op.Add a c (B.K nets);
      B.load fb peer ~base:a ~off:0;
      B.alu fb Op.Add a c (B.K pos_x);
      B.load fb x1 ~base:a ~off:0;
      B.alu fb Op.Add a c (B.K pos_y);
      B.load fb y1 ~base:a ~off:0;
      B.alu fb Op.Add a peer (B.K pos_x);
      B.load fb x2 ~base:a ~off:0;
      B.alu fb Op.Add a peer (B.K pos_y);
      B.load fb y2 ~base:a ~off:0;
      B.alu fb Op.Sub d x1 (B.V x2);
      B.when_ fb (Op.Lt, d, B.K 0) (fun () -> B.alu fb Op.Sub d zero (B.V d));
      let dy = B.vreg fb in
      B.alu fb Op.Sub dy y1 (B.V y2);
      B.when_ fb (Op.Lt, dy, B.K 0) (fun () -> B.alu fb Op.Sub dy zero (B.V dy));
      B.alu fb Op.Add d d (B.V dy);
      B.ret fb (Some d));

  (* Phase 1: annealing placement. *)
  B.func b "place" ~nargs:1 (fun fb args ->
      let moves = args.(0) in
      let m = B.vreg fb in
      let x = B.vreg fb in
      let c = B.vreg fb in
      let a = B.vreg fb in
      let old_x = B.vreg fb in
      let new_x = B.vreg fb in
      let before = B.vreg fb in
      let after = B.vreg fb in
      let accepted = B.vreg fb in
      B.li fb x 0x7ace;
      B.li fb accepted 0;
      B.for_ fb m ~from:(B.K 0) ~below:(B.V moves) (fun () ->
          Common.lcg_draw fb ~dst:c ~state:x ~bound:cells;
          let b1 = B.call fb "cell_cost" [ c ] in
          B.mov fb before b1;
          (* Propose a horizontal move. *)
          B.alu fb Op.Add a c (B.K pos_x);
          B.load fb old_x ~base:a ~off:0;
          Common.lcg_draw fb ~dst:new_x ~state:x ~bound:grid_dim;
          B.store fb new_x ~base:a ~off:0;
          let a1 = B.call fb "cell_cost" [ c ] in
          B.mov fb after a1;
          (* Accept improvements; reject (and undo) the rest — a
             near-50/50 branch, the vpr signature. *)
          B.if_ fb (Op.Le, after, B.V before)
            (fun () -> B.addi fb accepted accepted 1)
            (fun () ->
              B.alu fb Op.Add a c (B.K pos_x);
              B.store fb old_x ~base:a ~off:0));
      B.ret fb (Some accepted));

  (* Phase 2: wavefront routing over the congestion grid. *)
  B.func b "route" ~nargs:1 (fun fb args ->
      let waves = args.(0) in
      let w = B.vreg fb in
      let i = B.vreg fb in
      let a = B.vreg fb in
      let v = B.vreg fb in
      let n = B.vreg fb in
      let total = B.vreg fb in
      B.li fb total 0;
      B.for_ fb w ~from:(B.K 0) ~below:(B.V waves) (fun () ->
          B.for_ fb i ~from:(B.K 0) ~below:(B.K grid_words) (fun () ->
              B.alu fb Op.Add a i (B.K grid);
              B.load fb v ~base:a ~off:0;
              (* Expand the wave where cost is low. *)
              B.if_ fb (Op.Lt, v, B.K 8)
                (fun () ->
                  B.alu fb Op.Add n i (B.K 1);
                  B.alu fb Op.And n n (B.K (grid_words - 1));
                  B.alu fb Op.Add n n (B.K grid);
                  B.load fb n ~base:n ~off:0;
                  B.alu fb Op.Add v v (B.V n);
                  B.alu fb Op.And v v (B.K 0xF);
                  B.store fb v ~base:a ~off:0;
                  B.addi fb total total 1)
                (fun () ->
                  B.alu fb Op.Shr v v (B.K 1);
                  B.store fb v ~base:a ~off:0)));
      B.ret fb (Some total));

  B.func b "main" ~nargs:0 (fun fb _ ->
      (* One cold pass over the init/ballast code: executed, never hot. *)
      let ballast_seed = B.vreg fb in
      B.li fb ballast_seed 1;
      B.call_void fb ballast_entry [ ballast_seed ];
      let i = B.vreg fb in
      let a = B.vreg fb in
      let x = B.vreg fb in
      let v = B.vreg fb in
      B.li fb x 0x5eed;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K cells) (fun () ->
          Common.lcg_draw fb ~dst:v ~state:x ~bound:grid_dim;
          B.alu fb Op.Add a i (B.K pos_x);
          B.store fb v ~base:a ~off:0;
          Common.lcg_draw fb ~dst:v ~state:x ~bound:grid_dim;
          B.alu fb Op.Add a i (B.K pos_y);
          B.store fb v ~base:a ~off:0;
          Common.lcg_draw fb ~dst:v ~state:x ~bound:cells;
          B.alu fb Op.Add a i (B.K nets);
          B.store fb v ~base:a ~off:0);
      B.for_ fb i ~from:(B.K 0) ~below:(B.K grid_words) (fun () ->
          Common.lcg_draw fb ~dst:v ~state:x ~bound:16;
          B.alu fb Op.Add a i (B.K grid);
          B.store fb v ~base:a ~off:0);
      let moves = B.vreg fb in
      let waves = B.vreg fb in
      B.li fb moves (25_000 * scale);
      B.li fb waves (24 * scale);
      let r1 = B.call fb "place" [ moves ] in
      let r2 = B.call fb "route" [ waves ] in
      let acc = B.vreg fb in
      B.mov fb acc r1;
      Common.checksum_mix fb ~acc ~value:r2;
      B.store_abs fb acc result;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"
