module B = Vp_prog.Builder
module Op = Vp_isa.Op

let arcs = 4096
let nodes = 512

let program ~scale =
  let b = B.create () in
  let ballast_entry = Common.ballast b ~units:28 in
  let arc_cost = B.global b ~words:arcs in
  let arc_from = B.global b ~words:arcs in
  let arc_to = B.global b ~words:arcs in
  let potential = B.global b ~words:nodes in
  let flow = B.global b ~words:arcs in
  let result = B.global b ~words:1 in

  (* The simplex engine: mode 0 prices arcs (scan, rare violations);
     mode 1 pivots (update flows along a cycle).  One function, two
     behaviours — the mode branch flips bias between phases. *)
  B.func b "simplex" ~nargs:2 (fun fb args ->
      let mode = args.(0) in
      let rounds = args.(1) in
      let r = B.vreg fb in
      let i = B.vreg fb in
      let a = B.vreg fb in
      let c = B.vreg fb in
      let u = B.vreg fb in
      let v = B.vreg fb in
      let red = B.vreg fb in
      let best = B.vreg fb in
      B.li fb best 0;
      B.for_ fb r ~from:(B.K 0) ~below:(B.V rounds) (fun () ->
          B.for_ fb i ~from:(B.K 0) ~below:(B.K arcs) (fun () ->
              B.if_ fb (Op.Eq, mode, B.K 0)
                (fun () ->
                  (* Pricing: reduced cost = cost - pot[from] + pot[to]. *)
                  B.alu fb Op.Add a i (B.K arc_cost);
                  B.load fb c ~base:a ~off:0;
                  B.alu fb Op.Add a i (B.K arc_from);
                  B.load fb u ~base:a ~off:0;
                  B.alu fb Op.Add a u (B.K potential);
                  B.load fb u ~base:a ~off:0;
                  B.alu fb Op.Add a i (B.K arc_to);
                  B.load fb v ~base:a ~off:0;
                  B.alu fb Op.Add a v (B.K potential);
                  B.load fb v ~base:a ~off:0;
                  B.alu fb Op.Sub red c (B.V u);
                  B.alu fb Op.Add red red (B.V v);
                  (* Violations are rare. *)
                  B.when_ fb (Op.Lt, red, B.K (-1000)) (fun () ->
                      B.mov fb best i))
                (fun () ->
                  (* Pivot: push flow along a short synthetic cycle. *)
                  B.alu fb Op.Add a i (B.K flow);
                  B.load fb c ~base:a ~off:0;
                  B.alu fb Op.Add c c (B.V best);
                  B.alu fb Op.And c c (B.K 0xFFFF);
                  B.store fb c ~base:a ~off:0;
                  B.alu fb Op.And u i (B.K (nodes - 1));
                  B.alu fb Op.Add a u (B.K potential);
                  B.load fb v ~base:a ~off:0;
                  B.alu fb Op.Xor v v (B.V c);
                  B.alu fb Op.And v v (B.K 0x3FFF);
                  B.store fb v ~base:a ~off:0)));
      B.ret fb (Some best));

  B.func b "main" ~nargs:0 (fun fb _ ->
      (* One cold pass over the init/ballast code: executed, never hot. *)
      let ballast_seed = B.vreg fb in
      B.li fb ballast_seed 1;
      B.call_void fb ballast_entry [ ballast_seed ];
      let i = B.vreg fb in
      let a = B.vreg fb in
      let x = B.vreg fb in
      let v = B.vreg fb in
      B.li fb x 0xc0de;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K arcs) (fun () ->
          Common.lcg_draw fb ~dst:v ~state:x ~bound:10_000;
          B.alu fb Op.Add a i (B.K arc_cost);
          B.store fb v ~base:a ~off:0;
          Common.lcg_draw fb ~dst:v ~state:x ~bound:nodes;
          B.alu fb Op.Add a i (B.K arc_from);
          B.store fb v ~base:a ~off:0;
          Common.lcg_draw fb ~dst:v ~state:x ~bound:nodes;
          B.alu fb Op.Add a i (B.K arc_to);
          B.store fb v ~base:a ~off:0);
      B.for_ fb i ~from:(B.K 0) ~below:(B.K nodes) (fun () ->
          Common.lcg_draw fb ~dst:v ~state:x ~bound:5000;
          B.alu fb Op.Add a i (B.K potential);
          B.store fb v ~base:a ~off:0);
      (* Alternate long pricing and pivot phases. *)
      let iter = B.vreg fb in
      let acc = B.vreg fb in
      let mode = B.vreg fb in
      let rounds = B.vreg fb in
      B.li fb acc 0;
      B.li fb rounds 10;
      B.for_ fb iter ~from:(B.K 0) ~below:(B.K (4 * scale)) (fun () ->
          B.alu fb Op.And mode iter (B.K 1);
          let r = B.call fb "simplex" [ mode; rounds ] in
          Common.checksum_mix fb ~acc ~value:r);
      B.store_abs fb acc result;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"
