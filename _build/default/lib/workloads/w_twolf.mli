(** 300.twolf analogue: standard-cell placement refinement alternating
    between a net-cost evaluation phase and a row-overlap penalty
    phase, both inside one [refine] root steered by a stage flag —
    another shared-launch-point workload where linking recovers
    coverage. *)

val program : scale:int -> Vp_prog.Program.t
