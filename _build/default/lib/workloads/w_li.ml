module B = Vp_prog.Builder
module Op = Vp_isa.Op

let table_len = 256
let probe_depth = 12

let program ~scale =
  let b = B.create () in
  let ballast_entry = Common.ballast b ~units:29 in
  let table = B.global b ~words:table_len in
  let values = B.global b ~words:table_len in
  let result = B.global b ~words:1 in

  (* The important callee: a linear-probe symbol lookup whose inner
     loop dominates execution. *)
  B.func b "lookup" ~nargs:1 (fun fb args ->
      let key = args.(0) in
      let slot = B.vreg fb in
      let i = B.vreg fb in
      let addr = B.vreg fb in
      let stored = B.vreg fb in
      let found = B.vreg fb in
      B.alu fb Op.And slot key (B.K (table_len - 1));
      B.li fb found 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K probe_depth) (fun () ->
          B.alu fb Op.Add addr slot (B.K table);
          B.load fb stored ~base:addr ~off:0;
          B.when_ fb (Op.Eq, stored, B.V key) (fun () ->
              B.alu fb Op.Add addr slot (B.K values);
              B.load fb found ~base:addr ~off:0;
              B.break_ fb);
          B.addi fb slot slot 1;
          B.alu fb Op.And slot slot (B.K (table_len - 1)));
      B.ret fb (Some found));

  (* Hot caller: the recursive expression evaluator (xlisp's xleval).
     Self-recursion makes it a root function with its own launch
     point, so execution re-enters its package at every call. *)
  B.func b "eval_node" ~nargs:2 (fun fb args ->
      let seed = args.(0) in
      let depth = args.(1) in
      B.if_ fb (Op.Le, depth, B.K 0)
        (fun () ->
          let v = B.call fb "lookup" [ seed ] in
          B.ret fb (Some v))
        (fun () ->
          let d1 = B.vreg fb in
          let k1 = B.vreg fb in
          let k2 = B.vreg fb in
          let acc = B.vreg fb in
          B.alu fb Op.Sub d1 depth (B.K 1);
          B.alu fb Op.Mul k1 seed (B.K 7);
          B.alu fb Op.And k1 k1 (B.K 0xFFFF);
          let left = B.call fb "eval_node" [ k1; d1 ] in
          B.alu fb Op.Mul k2 seed (B.K 11);
          B.addi fb k2 k2 3;
          B.alu fb Op.And k2 k2 (B.K 0xFFFF);
          let right = B.call fb "eval_node" [ k2; d1 ] in
          let v = B.call fb "lookup" [ seed ] in
          B.alu fb Op.Add acc left (B.V right);
          B.alu fb Op.Add acc acc (B.V v);
          B.ret fb (Some acc)));

  (* Weak caller 1: straight-line assignment path, calls lookup once
     and does a heavier arithmetic epilogue so the missed execution is
     noticeable. *)
  B.func b "eval_setq" ~nargs:1 (fun fb args ->
      let seed = args.(0) in
      let v = B.call fb "lookup" [ seed ] in
      let acc = B.vreg fb in
      let i = B.vreg fb in
      B.mov fb acc v;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K 40) (fun () ->
          B.alu fb Op.Mul acc acc (B.K 17);
          B.alu fb Op.Add acc acc (B.V i);
          B.alu fb Op.And acc acc (B.K 0xFFFFF));
      B.ret fb (Some acc));

  (* Weak caller 2. *)
  B.func b "eval_define" ~nargs:1 (fun fb args ->
      let seed = args.(0) in
      let k = B.vreg fb in
      B.alu fb Op.Xor k seed (B.K 0x55);
      let v = B.call fb "lookup" [ k ] in
      let addr = B.vreg fb in
      let acc = B.vreg fb in
      B.alu fb Op.And addr v (B.K (table_len - 1));
      B.alu fb Op.Add addr addr (B.K values);
      B.alu fb Op.Add acc v (B.V seed);
      B.store fb acc ~base:addr ~off:0;
      B.ret fb (Some acc));

  B.func b "main" ~nargs:0 (fun fb _ ->
      (* One cold pass over the init/ballast code: executed, never hot. *)
      let ballast_seed = B.vreg fb in
      B.li fb ballast_seed 1;
      B.call_void fb ballast_entry [ ballast_seed ];
      (* Populate the symbol table. *)
      let i = B.vreg fb in
      let addr = B.vreg fb in
      let x = B.vreg fb in
      B.li fb x 0x9e37 ;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K table_len) (fun () ->
          Common.lcg_step fb x;
          B.alu fb Op.Add addr i (B.K table);
          B.store fb x ~base:addr ~off:0;
          B.alu fb Op.Add addr i (B.K values);
          B.store fb i ~base:addr ~off:0);
      let iter = B.vreg fb in
      let sel = B.vreg fb in
      let acc = B.vreg fb in
      let seed = B.vreg fb in
      B.li fb acc 0;
      B.li fb x 0x1234;
      B.for_ fb iter ~from:(B.K 0) ~below:(B.K (2_500 * scale)) (fun () ->
          Common.lcg_draw fb ~dst:sel ~state:x ~bound:100;
          B.alu fb Op.And seed x (B.K 0xFFFF);
          (* 98% of iterations take the hot evaluator; two weak
             callers split the rest.  The weak direction stays under
             the HSD arc-weight threshold even with saturated
             counters, so the weak callers are never detected. *)
          B.if_ fb (Op.Lt, sel, B.K 98)
            (fun () ->
              let depth = B.vreg fb in
              B.li fb depth 3;
              let v = B.call fb "eval_node" [ seed; depth ] in
              Common.checksum_mix fb ~acc ~value:v)
            (fun () ->
              B.if_ fb (Op.Eq, sel, B.K 98)
                (fun () ->
                  let v = B.call fb "eval_setq" [ seed ] in
                  Common.checksum_mix fb ~acc ~value:v)
                (fun () ->
                  let v = B.call fb "eval_define" [ seed ] in
                  Common.checksum_mix fb ~acc ~value:v)));
      B.store_abs fb acc result;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"
