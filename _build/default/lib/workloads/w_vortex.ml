module B = Vp_prog.Builder
module Op = Vp_isa.Op

let buckets = 1024
let store_words = 4096

let program ~scale =
  let b = B.create () in
  let ballast_entry = Common.ballast b ~units:107 in
  let keys = B.global b ~words:store_words in
  let vals = B.global b ~words:store_words in
  let result = B.global b ~words:1 in

  B.func b "hash_key" ~nargs:1 (fun fb args ->
      let k = args.(0) in
      let h = B.vreg fb in
      B.alu fb Op.Mul h k (B.K 2654435761);
      B.alu fb Op.Shr h h (B.K 8);
      B.alu fb Op.And h h (B.K (buckets - 1));
      B.ret fb (Some h));

  (* Phase 1: insert — open addressing with linear probing. *)
  B.func b "db_insert" ~nargs:2 (fun fb args ->
      let key = args.(0) in
      let value = args.(1) in
      let h = B.call fb "hash_key" [ key ] in
      let slot = B.vreg fb in
      let a = B.vreg fb in
      let existing = B.vreg fb in
      let tries = B.vreg fb in
      B.alu fb Op.Mul slot h (B.K (store_words / buckets));
      B.li fb tries 0;
      B.while_ fb (fun () -> (Op.Lt, tries, B.K 32)) (fun () ->
          B.alu fb Op.And slot slot (B.K (store_words - 1));
          B.alu fb Op.Add a slot (B.K keys);
          B.load fb existing ~base:a ~off:0;
          B.when_ fb (Op.Eq, existing, B.K 0) (fun () ->
              B.store fb key ~base:a ~off:0;
              B.alu fb Op.Add a slot (B.K vals);
              B.store fb value ~base:a ~off:0;
              B.break_ fb);
          B.addi fb slot slot 1;
          B.addi fb tries tries 1);
      B.ret fb (Some slot));

  (* Phase 2: lookup. *)
  B.func b "db_lookup" ~nargs:1 (fun fb args ->
      let key = args.(0) in
      let h = B.call fb "hash_key" [ key ] in
      let slot = B.vreg fb in
      let a = B.vreg fb in
      let stored = B.vreg fb in
      let found = B.vreg fb in
      let tries = B.vreg fb in
      B.alu fb Op.Mul slot h (B.K (store_words / buckets));
      B.li fb found 0;
      B.li fb tries 0;
      B.while_ fb (fun () -> (Op.Lt, tries, B.K 32)) (fun () ->
          B.alu fb Op.And slot slot (B.K (store_words - 1));
          B.alu fb Op.Add a slot (B.K keys);
          B.load fb stored ~base:a ~off:0;
          B.when_ fb (Op.Eq, stored, B.V key) (fun () ->
              B.alu fb Op.Add a slot (B.K vals);
              B.load fb found ~base:a ~off:0;
              B.break_ fb);
          B.when_ fb (Op.Eq, stored, B.K 0) (fun () -> B.break_ fb);
          B.addi fb slot slot 1;
          B.addi fb tries tries 1);
      B.ret fb (Some found));

  (* Phase 3: traversal with field update. *)
  B.func b "db_traverse" ~nargs:0 (fun fb _ ->
      let i = B.vreg fb in
      let a = B.vreg fb in
      let k = B.vreg fb in
      let v = B.vreg fb in
      let live = B.vreg fb in
      B.li fb live 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K store_words) (fun () ->
          B.alu fb Op.Add a i (B.K keys);
          B.load fb k ~base:a ~off:0;
          B.when_ fb (Op.Ne, k, B.K 0) (fun () ->
              B.alu fb Op.Add a i (B.K vals);
              B.load fb v ~base:a ~off:0;
              B.alu fb Op.Mul v v (B.K 3);
              B.alu fb Op.And v v (B.K 0xFFFFF);
              B.store fb v ~base:a ~off:0;
              B.addi fb live live 1));
      B.ret fb (Some live));

  B.func b "main" ~nargs:0 (fun fb _ ->
      (* One cold pass over the init/ballast code: executed, never hot. *)
      let ballast_seed = B.vreg fb in
      B.li fb ballast_seed 1;
      B.call_void fb ballast_entry [ ballast_seed ];
      let phase_len = 9_000 * scale in
      let i = B.vreg fb in
      let x = B.vreg fb in
      let k = B.vreg fb in
      let acc = B.vreg fb in
      B.li fb x 0xdb;
      B.li fb acc 0;
      (* Bulk insert. *)
      B.for_ fb i ~from:(B.K 0) ~below:(B.K phase_len) (fun () ->
          Common.lcg_draw fb ~dst:k ~state:x ~bound:0xFFFF;
          B.addi fb k k 1;
          let slot = B.call fb "db_insert" [ k; i ] in
          Common.checksum_mix fb ~acc ~value:slot);
      (* Point lookups. *)
      B.li fb x 0xdb;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K phase_len) (fun () ->
          Common.lcg_draw fb ~dst:k ~state:x ~bound:0xFFFF;
          B.addi fb k k 1;
          let v = B.call fb "db_lookup" [ k ] in
          Common.checksum_mix fb ~acc ~value:v);
      (* Traversals. *)
      B.for_ fb i ~from:(B.K 0) ~below:(B.K (6 * scale)) (fun () ->
          let live = B.call fb "db_traverse" [] in
          Common.checksum_mix fb ~acc ~value:live);
      B.store_abs fb acc result;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"
