module B = Vp_prog.Builder
module Op = Vp_isa.Op

let dim = 19
let board_words = dim * dim

let program ~scale =
  let b = B.create () in
  let ballast_entry = Common.ballast b ~units:16 in
  let board = B.global b ~words:board_words in
  let influence = B.global b ~words:board_words in
  let result = B.global b ~words:1 in

  (* Shared helper: stone colour at a point, with boundary check —
     called from both phases, so its branches appear in multiple hot
     spots with phase-dependent bias. *)
  B.func b "stone_at" ~nargs:1 (fun fb args ->
      let p = args.(0) in
      let v = B.vreg fb in
      B.li fb v 0;
      B.when_ fb (Op.Ge, p, B.K 0) (fun () ->
          B.when_ fb (Op.Lt, p, B.K board_words) (fun () ->
              let addr = B.vreg fb in
              B.alu fb Op.Add addr p (B.K board);
              B.load fb v ~base:addr ~off:0));
      B.ret fb (Some v));

  (* Phase 1: territory evaluation — dense sweep with neighbour
     influence accumulation. *)
  B.func b "eval_territory" ~nargs:1 (fun fb args ->
      let sweeps = args.(0) in
      let s = B.vreg fb in
      let p = B.vreg fb in
      let acc = B.vreg fb in
      let n = B.vreg fb in
      let total = B.vreg fb in
      let addr = B.vreg fb in
      B.li fb total 0;
      B.for_ fb s ~from:(B.K 0) ~below:(B.V sweeps) (fun () ->
          B.for_ fb p ~from:(B.K 0) ~below:(B.K board_words) (fun () ->
              B.li fb acc 0;
              List.iter
                (fun delta ->
                  B.alu fb Op.Add n p (B.K delta);
                  let v = B.call fb "stone_at" [ n ] in
                  B.alu fb Op.Add acc acc (B.V v))
                [ -dim; -1; 1; dim ];
              B.alu fb Op.Add addr p (B.K influence);
              B.store fb acc ~base:addr ~off:0;
              B.alu fb Op.Add total total (B.V acc);
              B.alu fb Op.And total total (B.K 0xFFFFF)));
      B.ret fb (Some total));

  (* Phase 2: tactical reading — chain following with data-dependent
     exits. *)
  B.func b "read_tactics" ~nargs:1 (fun fb args ->
      let probes = args.(0) in
      let t = B.vreg fb in
      let pos = B.vreg fb in
      let steps = B.vreg fb in
      let total = B.vreg fb in
      let x = B.vreg fb in
      B.li fb total 0;
      B.li fb x 0xbeef;
      B.for_ fb t ~from:(B.K 0) ~below:(B.V probes) (fun () ->
          Common.lcg_draw fb ~dst:pos ~state:x ~bound:board_words;
          B.li fb steps 0;
          B.while_ fb (fun () -> (Op.Lt, steps, B.K 24)) (fun () ->
              let v = B.call fb "stone_at" [ pos ] in
              B.when_ fb (Op.Eq, v, B.K 0) (fun () -> B.break_ fb);
              (* Follow the chain: step direction depends on stone. *)
              B.if_ fb (Op.Gt, v, B.K 1)
                (fun () -> B.addi fb pos pos 1)
                (fun () -> B.addi fb pos pos dim);
              B.when_ fb (Op.Ge, pos, B.K board_words) (fun () ->
                  B.alu fb Op.Sub pos pos (B.K board_words));
              B.addi fb steps steps 1);
          B.alu fb Op.Add total total (B.V steps);
          B.alu fb Op.And total total (B.K 0xFFFFF));
      B.ret fb (Some total));

  B.func b "main" ~nargs:0 (fun fb _ ->
      (* One cold pass over the init/ballast code: executed, never hot. *)
      let ballast_seed = B.vreg fb in
      B.li fb ballast_seed 1;
      B.call_void fb ballast_entry [ ballast_seed ];
      (* Random board: 0 empty, 1 black, 2 white-ish values. *)
      let i = B.vreg fb in
      let addr = B.vreg fb in
      let x = B.vreg fb in
      let v = B.vreg fb in
      B.li fb x 0x60d;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K board_words) (fun () ->
          Common.lcg_draw fb ~dst:v ~state:x ~bound:3;
          B.alu fb Op.Add addr i (B.K board);
          B.store fb v ~base:addr ~off:0);
      let move = B.vreg fb in
      let acc = B.vreg fb in
      B.li fb acc 0;
      (* Alternate long evaluation and reading phases, one per
         "move". *)
      B.for_ fb move ~from:(B.K 0) ~below:(B.K (4 * scale)) (fun () ->
          let sweeps = B.vreg fb in
          B.li fb sweeps 14;
          let t1 = B.call fb "eval_territory" [ sweeps ] in
          Common.checksum_mix fb ~acc ~value:t1;
          let probes = B.vreg fb in
          B.li fb probes 3000;
          let t2 = B.call fb "read_tactics" [ probes ] in
          Common.checksum_mix fb ~acc ~value:t2);
      B.store_abs fb acc result;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"
