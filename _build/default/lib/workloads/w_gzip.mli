(** 164.gzip analogue: LZ-style compression with a long match-search
    phase followed by a decompression phase; a CRC helper runs in both
    phases with stable bias (a Multi-Same branch source). *)

val program : scale:int -> Vp_prog.Program.t
