(** 255.vortex analogue: an object database exercised in three
    sequential phases — bulk insert into a hashed store, point
    lookups, and a full traversal with field updates — all sharing a
    hashing helper. *)

val program : scale:int -> Vp_prog.Program.t
