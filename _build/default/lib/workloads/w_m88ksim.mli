(** 124.m88ksim analogue: a processor simulator that first loads a
    binary in two passes over its image — relocation, then copy — and
    then enters a fetch-decode-execute loop.

    The two loader passes run the same hot loop in the same function
    with a flipped branch bias, so they are detected as two distinct
    phases sharing one launch point: the scenario the paper names for
    m88ksim when motivating package linking (Section 5.1). *)

val program : scale:int -> Vp_prog.Program.t
