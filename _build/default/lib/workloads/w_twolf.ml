module B = Vp_prog.Builder
module Op = Vp_isa.Op

let num_cells = 768
let num_rows = 32
let row_cap = 64

let program ~scale =
  let b = B.create () in
  let ballast_entry = Common.ballast b ~units:57 in
  let cell_x = B.global b ~words:num_cells in
  let cell_row = B.global b ~words:num_cells in
  let net_peer = B.global b ~words:num_cells in
  let row_fill = B.global b ~words:num_rows in
  let result = B.global b ~words:1 in

  B.func b "refine" ~nargs:2 (fun fb args ->
      let stage = args.(0) in
      let rounds = args.(1) in
      let r = B.vreg fb in
      let c = B.vreg fb in
      let a = B.vreg fb in
      let x1 = B.vreg fb in
      let x2 = B.vreg fb in
      let peer = B.vreg fb in
      let cost = B.vreg fb in
      let row = B.vreg fb in
      let fill = B.vreg fb in
      B.li fb cost 0;
      B.for_ fb r ~from:(B.K 0) ~below:(B.V rounds) (fun () ->
          B.if_ fb (Op.Eq, stage, B.K 0)
            (fun () ->
              (* Stage 0: half-perimeter net cost over all cells. *)
              B.for_ fb c ~from:(B.K 0) ~below:(B.K num_cells) (fun () ->
                  B.alu fb Op.Add a c (B.K net_peer);
                  B.load fb peer ~base:a ~off:0;
                  B.alu fb Op.Add a c (B.K cell_x);
                  B.load fb x1 ~base:a ~off:0;
                  B.alu fb Op.Add a peer (B.K cell_x);
                  B.load fb x2 ~base:a ~off:0;
                  B.alu fb Op.Sub x1 x1 (B.V x2);
                  B.when_ fb (Op.Lt, x1, B.K 0) (fun () ->
                      B.alu fb Op.Mul x1 x1 (B.K (-1)));
                  B.alu fb Op.Add cost cost (B.V x1);
                  B.alu fb Op.And cost cost (B.K 0xFFFFF)))
            (fun () ->
              (* Stage 1: row-overlap penalties with a rebalance. *)
              B.for_ fb c ~from:(B.K 0) ~below:(B.K num_cells) (fun () ->
                  B.alu fb Op.Add a c (B.K cell_row);
                  B.load fb row ~base:a ~off:0;
                  B.alu fb Op.Add a row (B.K row_fill);
                  B.load fb fill ~base:a ~off:0;
                  B.if_ fb (Op.Gt, fill, B.K row_cap)
                    (fun () ->
                      (* Overfull: migrate the cell to the next row. *)
                      B.addi fb row row 1;
                      B.alu fb Op.And row row (B.K (num_rows - 1));
                      B.alu fb Op.Add a c (B.K cell_row);
                      B.store fb row ~base:a ~off:0;
                      B.addi fb cost cost 7)
                    (fun () ->
                      B.addi fb fill fill 1;
                      B.store fb fill ~base:a ~off:0);
                  B.alu fb Op.And cost cost (B.K 0xFFFFF))));
      B.ret fb (Some cost));

  B.func b "main" ~nargs:0 (fun fb _ ->
      (* One cold pass over the init/ballast code: executed, never hot. *)
      let ballast_seed = B.vreg fb in
      B.li fb ballast_seed 1;
      B.call_void fb ballast_entry [ ballast_seed ];
      let i = B.vreg fb in
      let a = B.vreg fb in
      let x = B.vreg fb in
      let v = B.vreg fb in
      B.li fb x 0x201f;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K num_cells) (fun () ->
          Common.lcg_draw fb ~dst:v ~state:x ~bound:1000;
          B.alu fb Op.Add a i (B.K cell_x);
          B.store fb v ~base:a ~off:0;
          Common.lcg_draw fb ~dst:v ~state:x ~bound:num_rows;
          B.alu fb Op.Add a i (B.K cell_row);
          B.store fb v ~base:a ~off:0;
          Common.lcg_draw fb ~dst:v ~state:x ~bound:num_cells;
          B.alu fb Op.Add a i (B.K net_peer);
          B.store fb v ~base:a ~off:0);
      let iter = B.vreg fb in
      let acc = B.vreg fb in
      let stage = B.vreg fb in
      let rounds = B.vreg fb in
      B.li fb acc 0;
      B.li fb rounds 40;
      B.for_ fb iter ~from:(B.K 0) ~below:(B.K (4 * scale)) (fun () ->
          B.alu fb Op.And stage iter (B.K 1);
          let r = B.call fb "refine" [ stage; rounds ] in
          Common.checksum_mix fb ~acc ~value:r);
      B.store_abs fb acc result;
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"
