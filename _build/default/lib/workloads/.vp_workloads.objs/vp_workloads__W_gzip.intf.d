lib/workloads/w_gzip.mli: Vp_prog
