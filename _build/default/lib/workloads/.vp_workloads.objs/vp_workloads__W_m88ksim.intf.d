lib/workloads/w_m88ksim.mli: Vp_prog
