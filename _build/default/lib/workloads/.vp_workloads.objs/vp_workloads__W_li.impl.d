lib/workloads/w_li.ml: Array Common Vp_isa Vp_prog
