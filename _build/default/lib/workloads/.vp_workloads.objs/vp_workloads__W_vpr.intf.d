lib/workloads/w_vpr.mli: Vp_prog
