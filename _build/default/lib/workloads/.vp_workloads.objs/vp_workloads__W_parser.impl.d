lib/workloads/w_parser.ml: Array Common Vp_isa Vp_prog
