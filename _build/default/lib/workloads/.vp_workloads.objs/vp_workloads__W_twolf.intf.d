lib/workloads/w_twolf.mli: Vp_prog
