lib/workloads/w_gzip.ml: Array Common Vp_isa Vp_prog
