lib/workloads/w_li.mli: Vp_prog
