lib/workloads/common.ml: Array Printf Vp_isa Vp_prog
