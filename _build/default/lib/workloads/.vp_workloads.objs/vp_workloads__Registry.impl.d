lib/workloads/registry.ml: List Vp_prog W_go W_gzip W_ijpeg W_li W_m88ksim W_mcf W_mpeg2dec W_parser W_perl W_twolf W_vortex W_vpr
