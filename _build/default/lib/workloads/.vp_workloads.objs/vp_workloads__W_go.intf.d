lib/workloads/w_go.mli: Vp_prog
