lib/workloads/w_perl.ml: Array Common Vp_isa Vp_prog
