lib/workloads/w_go.ml: Array Common List Vp_isa Vp_prog
