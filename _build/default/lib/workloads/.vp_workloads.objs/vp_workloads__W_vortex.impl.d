lib/workloads/w_vortex.ml: Array Common Vp_isa Vp_prog
