lib/workloads/w_mpeg2dec.mli: Vp_prog
