lib/workloads/registry.mli: Vp_prog
