lib/workloads/w_ijpeg.ml: Common Vp_isa Vp_prog
