lib/workloads/common.mli: Vp_prog
