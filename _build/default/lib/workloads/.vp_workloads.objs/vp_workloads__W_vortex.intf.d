lib/workloads/w_vortex.mli: Vp_prog
