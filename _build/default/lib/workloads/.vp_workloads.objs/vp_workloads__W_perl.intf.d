lib/workloads/w_perl.mli: Vp_prog
