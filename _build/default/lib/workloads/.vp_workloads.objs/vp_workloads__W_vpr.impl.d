lib/workloads/w_vpr.ml: Array Common Vp_isa Vp_prog
