lib/workloads/w_m88ksim.ml: Array Common Vp_isa Vp_prog
