lib/workloads/w_twolf.ml: Array Common Vp_isa Vp_prog
