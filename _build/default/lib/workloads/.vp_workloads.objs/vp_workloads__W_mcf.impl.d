lib/workloads/w_mcf.ml: Array Common Vp_isa Vp_prog
