lib/workloads/w_mcf.mli: Vp_prog
