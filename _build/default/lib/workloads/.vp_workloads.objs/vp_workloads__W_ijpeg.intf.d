lib/workloads/w_ijpeg.mli: Vp_prog
