lib/workloads/w_mpeg2dec.ml: Array Common Vp_isa Vp_prog
