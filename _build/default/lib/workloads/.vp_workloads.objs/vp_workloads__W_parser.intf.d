lib/workloads/w_parser.mli: Vp_prog
