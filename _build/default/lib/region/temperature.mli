(** Block and arc temperatures (Section 3.2).  Blocks start [Unknown]
    (or [Hot] when they contain a snapshot branch); arcs start [Hot],
    [Cold] or [Unknown].  Inference only refines [Unknown] — a known
    temperature never changes, and on a conflicting double assignment
    [Hot] wins (tracked for diagnostics). *)

type t = Hot | Cold | Unknown

val is_hot : t -> bool
val is_cold : t -> bool
val is_known : t -> bool

val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
