(** The mutable region representation shared by the marking, inference
    and growth passes: per-function CFGs annotated with block/arc
    temperatures, weights and taken probabilities.

    A region corresponds to one unique hot spot.  Functions enter the
    region lazily — when a snapshot branch lands in them, or when the
    interprocedural call rule pulls a callee in. *)

type mf
(** A marked function. *)

type t

val create : Vp_prog.Image.t -> Vp_hsd.Snapshot.t -> t

val image : t -> Vp_prog.Image.t
val snapshot : t -> Vp_hsd.Snapshot.t

val add_func : t -> string -> mf
(** Recover and add the function's CFG if not present (all blocks
    [Unknown]); return its marked function either way.  Raises
    [Invalid_argument] on an unknown symbol. *)

val find_func : t -> string -> mf option
val funcs : t -> (string * mf) list
(** Insertion order. *)

(** {1 Marked-function accessors} *)

val cfg : mf -> Vp_cfg.Cfg.t

val temp : mf -> int -> Temperature.t

val set_temp : mf -> int -> Temperature.t -> bool
(** Refine a block temperature.  Returns true when something changed.
    [Unknown] never overwrites a known value; on a Hot/Cold conflict
    the block stays (or becomes) [Hot] and the conflict counter
    increments. *)

val weight : mf -> int -> int
val add_weight : mf -> int -> int -> unit

val taken_prob : mf -> int -> float option
val set_taken_prob : mf -> int -> float -> unit

val force_hot : mf -> int -> unit
(** Overwrite a block temperature to [Hot] regardless of its current
    value, without counting a conflict — used by the opportunistic
    connector adoption of {!Growth}, which deliberately overrides a
    [Cold] inference. *)

val arc_temp : mf -> Vp_cfg.Cfg.arc -> Temperature.t
val set_arc_temp : mf -> Vp_cfg.Cfg.arc -> Temperature.t -> bool

val force_hot_arc : mf -> Vp_cfg.Cfg.arc -> unit
val arc_weight : mf -> Vp_cfg.Cfg.arc -> int
val set_arc_weight : mf -> Vp_cfg.Cfg.arc -> int -> unit

(** {1 Derived views} *)

val hot_blocks : mf -> int list
val hot_arcs : mf -> Vp_cfg.Cfg.arc list
(** Arcs with [Hot] temperature whose endpoints are both [Hot]. *)

val exit_arcs : mf -> Vp_cfg.Cfg.arc list
(** Arcs leaving the selected code: [Hot] source block, but the arc or
    its destination is not [Hot]. *)

val hot_call_sites : mf -> (int * int) list
(** [(block, callee_entry)] for [Hot] blocks ending in a call. *)

val selected_instructions : t -> int
(** Static instructions in all [Hot] blocks of the region. *)

val conflicts : t -> int
(** Hot/Cold double-assignment count (diagnostics). *)

val pp : Format.formatter -> t -> unit
