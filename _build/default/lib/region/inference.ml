module Cfg = Vp_cfg.Cfg
module Image = Vp_prog.Image
module T = Temperature

(* One sweep over a single marked function; returns true when any
   temperature changed. *)
let sweep_function region block_inference (mf : Region.mf) =
  let cfg = Region.cfg mf in
  let changed = ref false in
  let note b = if b then changed := true in
  let block_rules_allowed b =
    block_inference
    ||
    match Cfg.terminator cfg b with
    | Some (Vp_isa.Instr.Br _) -> false
    | _ -> true
  in
  for b = 0 to Cfg.num_blocks cfg - 1 do
    let ins = Cfg.preds cfg b in
    let outs = Cfg.succs cfg b in
    let temps arcs = List.map (Region.arc_temp mf) arcs in
    (* Statements 3-4 solve *unknown* temperatures only (Figure 4,
       statement 1); a known block never changes. *)
    if T.equal (Region.temp mf b) T.Unknown && block_rules_allowed b then begin
      let all_cold arcs =
        arcs <> [] && List.for_all T.is_cold (temps arcs)
      in
      if all_cold ins || all_cold outs then note (Region.set_temp mf b T.Cold);
      (* Statement 4: any adjacent Hot arc => Hot. *)
      if List.exists T.is_hot (temps ins) || List.exists T.is_hot (temps outs) then
        note (Region.set_temp mf b T.Hot)
    end;
    (match Region.temp mf b with
    | T.Cold ->
      (* Statement 6: every arc of a Cold block is Cold. *)
      List.iter (fun a -> note (Region.set_arc_temp mf a T.Cold)) (ins @ outs)
    | T.Hot ->
      (* Statement 7: all-but-one known-Cold => the remaining arc is
         Hot.  Applies separately to the in- and out-arc sets. *)
      let infer_last arcs =
        match List.filter (fun a -> not (T.is_cold (Region.arc_temp mf a))) arcs with
        | [ single ] -> note (Region.set_arc_temp mf single T.Hot)
        | [] | _ :: _ :: _ -> ()
      in
      infer_last ins;
      infer_last outs
    | T.Unknown -> ())
  done;
  (* Statement 9: Hot call block => callee prologue Hot.  May add new
     functions to the region. *)
  List.iter
    (fun (_, callee_addr) ->
      match Image.sym_at (Region.image region) callee_addr with
      | Some sym ->
        let callee = Region.add_func region sym.Image.name in
        note (Region.set_temp callee (Cfg.entry (Region.cfg callee)) T.Hot)
      | None -> ())
    (Region.hot_call_sites mf);
  !changed

let run ?(block_inference = true) region =
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr rounds;
    (* [funcs] is re-read every sweep: the call rule may have added
       functions. *)
    let changed =
      List.fold_left
        (fun acc (_, mf) -> sweep_function region block_inference mf || acc)
        false (Region.funcs region)
    in
    continue_ := changed
  done;
  !rounds
