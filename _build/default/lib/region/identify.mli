(** Step 2 top level: from a hot-spot snapshot to an identified hot
    region — marking, inference to fix-point, heuristic growth, and a
    settling inference pass over the grown region. *)

type config = {
  block_inference : bool;  (** Figure 8/10 "inference" knob *)
  max_blocks : int;  (** heuristic-growth budget per entry; paper uses 1 *)
  max_connector : int;
      (** instruction budget for loop-connector adoption (Section 3.2's
          exit-minimisation goal); 0 disables *)
  marking : Marking.config;
}

val default : config

val identify : ?config:config -> Vp_prog.Image.t -> Vp_hsd.Snapshot.t -> Region.t

type stats = {
  functions : int;
  hot_blocks : int;
  selected_instructions : int;
  inference_rounds : int;
  grown_blocks : int;
}

val identify_with_stats :
  ?config:config -> Vp_prog.Image.t -> Vp_hsd.Snapshot.t -> Region.t * stats
