(** Step 2 initialisation (Section 3.2.1): superimpose one hot-spot
    snapshot onto recovered CFGs.

    Every block containing a snapshot branch becomes [Hot] with the
    branch's executed count as weight and taken fraction as taken
    probability.  The branch's out-arcs get weights from the taken and
    executed counters and a temperature: [Hot] when the direction
    carries at least [arc_hot_fraction] of the branch's flow {e or}
    more than [hot_arc_weight_threshold] executions, [Cold]
    otherwise. *)

type config = {
  arc_hot_fraction : float;  (** default 0.25 *)
  hot_arc_weight_threshold : int;  (** default 16, the HSD candidate threshold *)
}

val default : config

val mark : ?config:config -> Region.t -> unit
(** Raises [Invalid_argument] if a snapshot branch address does not
    terminate a recovered block (cannot happen on images produced by
    {!Vp_prog.Program.layout}). *)
