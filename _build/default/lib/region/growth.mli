(** Heuristic hot-region growth (Section 3.2.3, plus the
    exit-minimisation goal of Section 3.2).

    Three expansions after inference settles:

    1. {e Unknown-arc adoption}: any [Unknown] arc between two [Hot]
       blocks is included (made [Hot]) — nothing is known against it
       and removing it as an exit improves connectivity.  [Cold] arcs
       between [Hot] blocks stay excluded: the package specialises to
       the phase.
    2. {e Loop-connector adoption}: the paper's first design goal is
       to "minimize the number of exits by opportunistically including
       infrequent paths when inclusion is associated with little or no
       cost".  The canonical case is a loop nest: the inner loop's
       exit direction is genuinely infrequent (so marked [Cold]), yet
       it leads through a branch-free, call-free connector of a couple
       of instructions — the outer-loop latch — straight back to a
       [Hot] loop header.  Excluding it would force an exit on every
       outer iteration.  A cold exit chain is adopted when it is
       branch-free and call-free, totals at most [max_connector]
       instructions, and closes into a [Hot] block through a CFG back
       edge.  Rare specialised arms rejoin {e forward}, so they remain
       excluded and phase specialisation is preserved.
    3. {e Entry predecessor growth}: aiming for a single launch point,
       each entry block (a [Hot] block with no [Hot] in-arc from a
       [Hot] block, back edges ignored) grows backwards through
       non-[Cold] predecessor blocks and arcs until another [Hot]
       block is reached, adopting at most [max_blocks] blocks per
       entry (the paper uses MAX_BLOCKS = 1). *)

val grow : ?max_blocks:int -> ?max_connector:int -> Region.t -> int
(** Returns the number of blocks adopted (connectors plus predecessor
    growth).  [max_connector] defaults to 6; 0 disables connector
    adoption. *)
