lib/region/marking.ml: List Printf Region Temperature Vp_cfg Vp_hsd Vp_prog
