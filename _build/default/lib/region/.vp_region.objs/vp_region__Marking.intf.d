lib/region/marking.mli: Region
