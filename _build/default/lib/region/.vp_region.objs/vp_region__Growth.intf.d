lib/region/growth.mli: Region
