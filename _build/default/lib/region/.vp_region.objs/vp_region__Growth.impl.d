lib/region/growth.ml: Fun List Queue Region Temperature Vp_cfg Vp_isa
