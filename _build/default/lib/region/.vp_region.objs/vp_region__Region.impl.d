lib/region/region.ml: Array Format Fun Hashtbl List Option Printf Temperature Vp_cfg Vp_hsd Vp_prog
