lib/region/temperature.ml: Format
