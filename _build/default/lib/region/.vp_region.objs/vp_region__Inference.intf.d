lib/region/inference.mli: Region
