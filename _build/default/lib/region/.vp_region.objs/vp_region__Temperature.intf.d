lib/region/temperature.mli: Format
