lib/region/inference.ml: List Region Temperature Vp_cfg Vp_isa Vp_prog
