lib/region/region.mli: Format Temperature Vp_cfg Vp_hsd Vp_prog
