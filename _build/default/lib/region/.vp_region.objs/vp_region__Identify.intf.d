lib/region/identify.mli: Marking Region Vp_hsd Vp_prog
