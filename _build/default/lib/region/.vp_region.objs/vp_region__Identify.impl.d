lib/region/identify.ml: Growth Inference List Marking Region
