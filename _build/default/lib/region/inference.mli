(** The temperature-inference fix-point of Figure 4 / Figure 5.

    Rules applied until nothing changes, across all functions of the
    region (the call rule pulls new functions in mid-flight):

    - {e blocks} (statements 3–4): a block is [Cold] when all of its
      in-arcs, or all of its out-arcs, are known [Cold] (at least one
      arc required); a block is [Hot] when any adjacent arc is [Hot];
    - {e arcs} (statements 6–7): every arc of a [Cold] block is
      [Cold]; if all but one of a [Hot] block's out-arcs (or in-arcs)
      are known [Cold], the remaining arc is [Hot] — including the
      degenerate single-arc case;
    - {e calls} (statement 9): the prologue (entry block) of the
      callee of a [Hot] call block is [Hot].

    With [block_inference = false] (the "no inference" configuration
    of Figures 8 and 10), the block rules only apply to blocks that do
    not end in a conditional branch — the profile is trusted to be
    complete for branches — while the arc and call rules still run. *)

val run : ?block_inference:bool -> Region.t -> int
(** Iterate to fix-point; returns the number of sweeps performed
    (at least 1; a second call returns exactly 1 because nothing
    changes — the fix-point is idempotent). *)
