type t = Hot | Cold | Unknown

let is_hot = function Hot -> true | Cold | Unknown -> false
let is_cold = function Cold -> true | Hot | Unknown -> false
let is_known = function Hot | Cold -> true | Unknown -> false

let name = function Hot -> "hot" | Cold -> "cold" | Unknown -> "unknown"

let pp fmt t = Format.pp_print_string fmt (name t)

let equal a b =
  match (a, b) with
  | Hot, Hot | Cold, Cold | Unknown, Unknown -> true
  | (Hot | Cold | Unknown), _ -> false
