module Cfg = Vp_cfg.Cfg
module T = Temperature

let adopt_unknown_arcs mf =
  let cfg = Region.cfg mf in
  List.iter
    (fun (a : Cfg.arc) ->
      if
        T.equal (Region.arc_temp mf a) T.Unknown
        && T.is_hot (Region.temp mf a.Cfg.src)
        && T.is_hot (Region.temp mf a.Cfg.dst)
      then ignore (Region.set_arc_temp mf a T.Hot))
    (Cfg.arcs cfg)

(* A Hot block is an entry when no non-back-edge predecessor arc both
   is Hot and comes from a Hot block. *)
let entry_blocks mf =
  let cfg = Region.cfg mf in
  List.filter
    (fun b ->
      T.is_hot (Region.temp mf b)
      && not
           (List.exists
              (fun (a : Cfg.arc) ->
                T.is_hot (Region.arc_temp mf a) && T.is_hot (Region.temp mf a.Cfg.src))
              (Cfg.preds_ignoring_back_edges cfg b)))
    (List.init (Cfg.num_blocks cfg) Fun.id)

let grow_entry mf ~max_blocks entry =
  let cfg = Region.cfg mf in
  let adopted = ref 0 in
  (* Walk backwards breadth-first through non-Cold predecessors. *)
  let queue = Queue.create () in
  Queue.add entry queue;
  while (not (Queue.is_empty queue)) && !adopted < max_blocks do
    let b = Queue.take queue in
    List.iter
      (fun (a : Cfg.arc) ->
        if !adopted < max_blocks && not (T.is_cold (Region.arc_temp mf a)) then begin
          let p = a.Cfg.src in
          match Region.temp mf p with
          | T.Hot ->
            (* Reached existing hot code: connect and stop this path. *)
            ignore (Region.set_arc_temp mf a T.Hot)
          | T.Unknown ->
            ignore (Region.set_temp mf p T.Hot);
            ignore (Region.set_arc_temp mf a T.Hot);
            incr adopted;
            Queue.add p queue
          | T.Cold -> ()
        end)
      (Cfg.preds_ignoring_back_edges cfg b)
  done;
  !adopted

(* A block is a pure connector when it cannot branch, call or leave
   the function: only straight-line code ending in a fall-through or
   an unconditional jump. *)
let connector_block cfg b =
  match Cfg.terminator cfg b with
  | None | Some (Vp_isa.Instr.Jmp _) -> true
  | Some _ -> false

(* Try to adopt the exit chain starting along [arc]: walk single-
   successor, branch-free, call-free blocks within the instruction
   budget, and adopt the chain when it rejoins a Hot block.  Only
   directions the phase actually traversed qualify: a marked arc needs
   a non-zero profile weight, while an Unknown arc (no information
   against it) qualifies outright.  Phase-defining fully-biased cold
   arms have weight zero and are never adopted, preserving package
   specialisation. *)
let adopt_connector mf ~max_connector (arc : Cfg.arc) =
  let cfg = Region.cfg mf in
  let back = Cfg.back_edges cfg in
  (* A traversed direction may rejoin anywhere; an untraversed one
     only qualifies when the chain closes a loop (back-edge rejoin),
     so phase-defining biased arms stay excluded. *)
  let traversed =
    match Region.arc_temp mf arc with
    | T.Unknown -> true
    | T.Cold -> Region.arc_weight mf arc >= 1
    | T.Hot -> false
  in
  match Region.arc_temp mf arc with
  | T.Hot -> 0
  | T.Unknown | T.Cold ->
    let rec walk b budget chain_rev arcs_rev =
      if T.is_hot (Region.temp mf b) then begin
        let closing_arc =
          match arcs_rev with (a : Cfg.arc) :: _ -> a | [] -> arc
        in
        let closes_loop = List.mem (closing_arc.Cfg.src, closing_arc.Cfg.dst) back in
        if traversed || closes_loop then begin
          List.iter (Region.force_hot mf) chain_rev;
          List.iter (Region.force_hot_arc mf) (arc :: arcs_rev);
          (* Count even zero-length chains as progress so the formation
             loop reruns inference over the newly hot arc. *)
          1 + List.length chain_rev
        end
        else 0
      end
      else if budget < Cfg.len cfg b || not (connector_block cfg b) then 0
      else
        match Cfg.succs cfg b with
        | [ next ] ->
          walk next.Cfg.dst (budget - Cfg.len cfg b) (b :: chain_rev)
            (next :: arcs_rev)
        | [] | _ :: _ :: _ -> 0
    in
    walk arc.Cfg.dst max_connector [] []

let adopt_loop_connectors mf ~max_connector =
  if max_connector <= 0 then 0
  else
    List.fold_left
      (fun acc arc -> acc + adopt_connector mf ~max_connector arc)
      0 (Region.exit_arcs mf)

let grow ?(max_blocks = 1) ?(max_connector = 6) region =
  let total = ref 0 in
  List.iter (fun (_, mf) -> adopt_unknown_arcs mf) (Region.funcs region);
  List.iter
    (fun (_, mf) -> total := !total + adopt_loop_connectors mf ~max_connector)
    (Region.funcs region);
  List.iter
    (fun (_, mf) ->
      List.iter
        (fun entry -> total := !total + grow_entry mf ~max_blocks entry)
        (entry_blocks mf))
    (Region.funcs region);
  !total
