type config = {
  block_inference : bool;
  max_blocks : int;
  max_connector : int;
  marking : Marking.config;
}

let default =
  { block_inference = true; max_blocks = 1; max_connector = 6;
    marking = Marking.default }

type stats = {
  functions : int;
  hot_blocks : int;
  selected_instructions : int;
  inference_rounds : int;
  grown_blocks : int;
}

(* Inference and growth enable each other: an adopted predecessor lets
   the arc rules reach the next loop level, whose latch the connector
   rule can then close.  Iterate the pair to a fix-point (bounded; each
   round only ever adds blocks, so termination is structural). *)
let max_formation_rounds = 12

let identify_with_stats ?(config = default) image snapshot =
  let region = Region.create image snapshot in
  Marking.mark ~config:config.marking region;
  let rounds = ref 0 in
  let grown = ref 0 in
  let continue_ = ref true in
  let iterations = ref 0 in
  while !continue_ && !iterations < max_formation_rounds do
    incr iterations;
    rounds := !rounds + Inference.run ~block_inference:config.block_inference region;
    let g =
      Growth.grow ~max_blocks:config.max_blocks ~max_connector:config.max_connector
        region
    in
    grown := !grown + g;
    continue_ := g > 0
  done;
  let rounds = !rounds and grown = !grown in
  let rounds' = 0 in
  let stats =
    {
      functions = List.length (Region.funcs region);
      hot_blocks =
        List.fold_left
          (fun acc (_, mf) -> acc + List.length (Region.hot_blocks mf))
          0 (Region.funcs region);
      selected_instructions = Region.selected_instructions region;
      inference_rounds = rounds + rounds';
      grown_blocks = grown;
    }
  in
  (region, stats)

let identify ?config image snapshot = fst (identify_with_stats ?config image snapshot)
