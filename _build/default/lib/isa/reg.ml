type t = int

let count = 32

let of_int i =
  if i < 0 || i >= count then invalid_arg "Reg.of_int"
  else i

let to_int r = r

let zero = 0
let sp = 1
let ra = 2

let arg i =
  if i < 0 || i > 4 then invalid_arg "Reg.arg"
  else 3 + i

let ret_value = arg 0

let first_temp = 8

let temps = List.init (count - first_temp) (fun i -> first_temp + i)

let is_temp r = r >= first_temp

let name r =
  if r = zero then "zero"
  else if r = sp then "sp"
  else if r = ra then "ra"
  else if r >= 3 && r <= 7 then Printf.sprintf "a%d" (r - 3)
  else Printf.sprintf "t%d" (r - first_temp)

let pp fmt r = Format.pp_print_string fmt (name r)

let equal = Int.equal
let compare = Int.compare
