(** Operation kinds, functional-unit classes and latencies.

    The simulated machine is the EPIC model of the paper's Table 2:
    five functional-unit classes (integer ALU, FP, long-latency FP,
    memory, control).  Every ALU operation carries a class and a
    result latency used by both the list scheduler and the timing
    model. *)

type alu =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Slt  (** set if less-than (signed) *)
  | Fadd (** floating-style add: exercises the FP unit class *)
  | Fmul (** floating-style multiply *)
  | Fdiv (** long-latency floating divide *)

type cond = Eq | Ne | Lt | Le | Gt | Ge
(** Comparison for conditional branches, signed. *)

type fu = Ialu | Fp | Long_fp | Mem | Control
(** Functional-unit classes of Table 2. *)

val alu_fu : alu -> fu
val alu_latency : alu -> int
(** Cycles from issue to result availability. *)

val eval_alu : alu -> int -> int -> int
(** Architectural semantics on 63-bit OCaml ints.  Division and
    remainder by zero yield 0 (hardware-style quiet result) so random
    programs never trap. *)

val eval_cond : cond -> int -> int -> bool

val negate_cond : cond -> cond
(** The complementary condition, used when the layout pass flips a
    branch so the likely successor falls through. *)

val alu_name : alu -> string
val cond_name : cond -> string
val fu_name : fu -> string

val all_alu : alu list
val all_cond : cond list

val pp_alu : Format.formatter -> alu -> unit
val pp_cond : Format.formatter -> cond -> unit
