type alu =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Slt
  | Fadd
  | Fmul
  | Fdiv

type cond = Eq | Ne | Lt | Le | Gt | Ge

type fu = Ialu | Fp | Long_fp | Mem | Control

let alu_fu = function
  | Add | Sub | And | Or | Xor | Shl | Shr | Slt -> Ialu
  | Mul | Fadd | Fmul -> Fp
  | Div | Rem | Fdiv -> Long_fp

let alu_latency = function
  | Add | Sub | And | Or | Xor | Shl | Shr | Slt -> 1
  | Mul -> 3
  | Fadd -> 3
  | Fmul -> 4
  | Div | Rem -> 8
  | Fdiv -> 12

(* Shift amounts are masked to six bits so that adversarial property
   tests cannot trigger undefined OCaml shift behaviour. *)
let eval_alu op a b =
  match op with
  | Add | Fadd -> a + b
  | Sub -> a - b
  | Mul | Fmul -> a * b
  | Div | Fdiv -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)
  | Slt -> if a < b then 1 else 0

let eval_cond c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Slt -> "slt"
  | Fadd -> "fadd"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let fu_name = function
  | Ialu -> "ialu"
  | Fp -> "fp"
  | Long_fp -> "long_fp"
  | Mem -> "mem"
  | Control -> "control"

let all_alu = [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Slt; Fadd; Fmul; Fdiv ]
let all_cond = [ Eq; Ne; Lt; Le; Gt; Ge ]

let pp_alu fmt op = Format.pp_print_string fmt (alu_name op)
let pp_cond fmt c = Format.pp_print_string fmt (cond_name c)
