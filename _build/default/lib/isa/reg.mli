(** Architectural registers and the software register convention.

    The machine has 32 integer registers.  [r0] reads as zero and
    ignores writes.  The builder DSL and the partial inliner both rely
    on the convention encoded here:

    - [r0]            hardwired zero
    - [r1] = [sp]     stack pointer
    - [r2] = [ra]     return-address (link) register, written by call
    - [r3]..[r7]      argument registers; [r3] also carries the return value
    - [r8]..[r31]     allocatable temporaries (callee-saved) *)

type t = private int
(** Register number in [0, 31]. *)

val count : int
(** Number of architectural registers (32). *)

val of_int : int -> t
(** Raises [Invalid_argument] outside [0, count). *)

val to_int : t -> int

val zero : t
val sp : t
val ra : t

val arg : int -> t
(** [arg i] is the i-th argument register, [i] in [0, 4]. *)

val ret_value : t
(** The return-value register (same as [arg 0]). *)

val first_temp : int
(** Index of the first allocatable temporary (8). *)

val temps : t list
(** All allocatable temporaries in ascending order. *)

val is_temp : t -> bool

val name : t -> string
(** Conventional name: ["zero"], ["sp"], ["ra"], ["a0"].. ["a4"],
    ["t0"].. ["t23"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
val compare : t -> t -> int
