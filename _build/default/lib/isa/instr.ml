type target = Label of string | Addr of int

type operand = Reg of Reg.t | Imm of int

type t =
  | Alu of { op : Op.alu; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Li of { dst : Reg.t; imm : int }
  | La of { dst : Reg.t; target : target }
  | Load of { dst : Reg.t; base : Reg.t; offset : int }
  | Store of { src : Reg.t; base : Reg.t; offset : int }
  | Br of { cond : Op.cond; src1 : Reg.t; src2 : Reg.t; target : target }
  | Jmp of { target : target }
  | Call of { target : target }
  | Ret
  | Nop
  | Halt

let is_cond_branch = function Br _ -> true | _ -> false

let is_control = function
  | Br _ | Jmp _ | Call _ | Ret | Halt -> true
  | Alu _ | Li _ | La _ | Load _ | Store _ | Nop -> false

let is_terminator = is_control

let is_call = function Call _ -> true | _ -> false
let is_return = function Ret -> true | _ -> false
let is_load = function Load _ -> true | _ -> false
let is_store = function Store _ -> true | _ -> false
let is_mem i = is_load i || is_store i

let target = function
  | Br { target; _ } | Jmp { target } | Call { target } | La { target; _ } ->
    Some target
  | Alu _ | Li _ | Load _ | Store _ | Ret | Nop | Halt -> None

let with_target i t =
  match i with
  | Br b -> Br { b with target = t }
  | Jmp _ -> Jmp { target = t }
  | Call _ -> Call { target = t }
  | La l -> La { l with target = t }
  | Alu _ | Li _ | Load _ | Store _ | Ret | Nop | Halt ->
    invalid_arg "Instr.with_target: instruction has no target"

let map_target f i =
  match target i with
  | None -> i
  | Some t -> (
    match f t with
    | None -> i
    | Some t' -> with_target i t')

let resolve lookup i =
  let f = function
    | Label name -> Some (Addr (lookup name))
    | Addr _ -> None
  in
  map_target f i

let retarget remap i =
  let f = function
    | Addr a -> Some (Addr (remap a))
    | Label _ -> None
  in
  map_target f i

let arg_regs = List.init 5 Reg.arg

let defs = function
  | Alu { dst; _ } | Li { dst; _ } | La { dst; _ } | Load { dst; _ } -> [ dst ]
  | Call _ -> Reg.ra :: arg_regs
  | Store _ | Br _ | Jmp _ | Ret | Nop | Halt -> []

let uses = function
  | Alu { src1; src2 = Reg r; _ } -> [ src1; r ]
  | Alu { src1; src2 = Imm _; _ } -> [ src1 ]
  | Li _ | La _ | Jmp _ | Nop | Halt -> []
  | Load { base; _ } -> [ base ]
  | Store { src; base; _ } -> [ src; base ]
  | Br { src1; src2; _ } -> [ src1; src2 ]
  | Call _ -> Reg.sp :: arg_regs
  | Ret -> [ Reg.ra; Reg.sp; Reg.ret_value ]

let fu = function
  | Alu { op; _ } -> Op.alu_fu op
  | Li _ | La _ -> Op.Ialu
  | Load _ | Store _ -> Op.Mem
  | Br _ | Jmp _ | Call _ | Ret | Halt -> Op.Control
  | Nop -> Op.Ialu

let latency = function
  | Alu { op; _ } -> Op.alu_latency op
  | Li _ | La _ -> 1
  | Load _ -> 2
  | Store _ -> 1
  | Br _ | Jmp _ | Call _ | Ret | Halt | Nop -> 1

let pp_target fmt = function
  | Label name -> Format.fprintf fmt "%s" name
  | Addr a -> Format.fprintf fmt "0x%x" a

let pp_operand fmt = function
  | Reg r -> Reg.pp fmt r
  | Imm i -> Format.fprintf fmt "#%d" i

let pp fmt = function
  | Alu { op; dst; src1; src2 } ->
    Format.fprintf fmt "%a %a, %a, %a" Op.pp_alu op Reg.pp dst Reg.pp src1
      pp_operand src2
  | Li { dst; imm } -> Format.fprintf fmt "li %a, #%d" Reg.pp dst imm
  | La { dst; target } -> Format.fprintf fmt "la %a, %a" Reg.pp dst pp_target target
  | Load { dst; base; offset } ->
    Format.fprintf fmt "ld %a, %d(%a)" Reg.pp dst offset Reg.pp base
  | Store { src; base; offset } ->
    Format.fprintf fmt "st %a, %d(%a)" Reg.pp src offset Reg.pp base
  | Br { cond; src1; src2; target } ->
    Format.fprintf fmt "b%a %a, %a, %a" Op.pp_cond cond Reg.pp src1 Reg.pp src2
      pp_target target
  | Jmp { target } -> Format.fprintf fmt "jmp %a" pp_target target
  | Call { target } -> Format.fprintf fmt "call %a" pp_target target
  | Ret -> Format.pp_print_string fmt "ret"
  | Nop -> Format.pp_print_string fmt "nop"
  | Halt -> Format.pp_print_string fmt "halt"

let to_string i = Format.asprintf "%a" pp i
