(** Instructions of the simulated EPIC-flavoured ISA.

    One instruction occupies one address unit.  Before layout, control
    transfers name {!target} labels; layout resolves every label to an
    absolute address, and the binary image only ever contains resolved
    instructions.

    Control semantics:
    - [Br] compares two registers and jumps to the target when the
      condition holds, otherwise falls through.
    - [Call] writes the return address (pc + 1) into [Reg.ra] and
      jumps; there is no hardware stack, so functions that make calls
      spill [ra] in their prologue.
    - [Ret] jumps to the address held in [Reg.ra].
    - [Halt] stops the machine (used only by the top-level driver). *)

type target = Label of string | Addr of int

type operand = Reg of Reg.t | Imm of int

type t =
  | Alu of { op : Op.alu; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Li of { dst : Reg.t; imm : int }  (** load immediate *)
  | La of { dst : Reg.t; target : target }  (** load code address *)
  | Load of { dst : Reg.t; base : Reg.t; offset : int }
  | Store of { src : Reg.t; base : Reg.t; offset : int }
  | Br of { cond : Op.cond; src1 : Reg.t; src2 : Reg.t; target : target }
  | Jmp of { target : target }
  | Call of { target : target }
  | Ret
  | Nop
  | Halt

(** {1 Classification} *)

val is_cond_branch : t -> bool
(** Conditional branches are the only instructions profiled by the
    Branch Behavior Buffer. *)

val is_control : t -> bool
(** Any instruction that can redirect the pc. *)

val is_terminator : t -> bool
(** Ends a basic block: [Br], [Jmp], [Call], [Ret], [Halt].  Per the
    paper, a block contains at most one branch or call, always last. *)

val is_call : t -> bool
val is_return : t -> bool
val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool

(** {1 Targets} *)

val target : t -> target option
(** The label/address a control instruction may transfer to.  [Ret]
    has none (indirect through [ra]). *)

val with_target : t -> target -> t
(** Replace the target of a control instruction; raises
    [Invalid_argument] on instructions without one. *)

val resolve : (string -> int) -> t -> t
(** Resolve [Label] targets to [Addr] using the given symbol lookup. *)

val retarget : (int -> int) -> t -> t
(** Rewrite resolved [Addr] targets through an address map; leaves
    labels untouched. *)

(** {1 Dataflow} *)

val defs : t -> Reg.t list
(** Registers written.  [Call] defines [ra] and the argument registers
    (the callee may overwrite them); writes to [Reg.zero] are
    discarded by the machine but still reported here. *)

val uses : t -> Reg.t list
(** Registers read.  [Call] uses [sp] and all argument registers
    (conservative interprocedural summary); [Ret] uses [ra], [sp] and
    the return-value register. *)

(** {1 Machine mapping} *)

val fu : t -> Op.fu
val latency : t -> int
(** Base result latency, before cache effects. *)

(** {1 Printing} *)

val pp_target : Format.formatter -> target -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
