lib/isa/op.ml: Format
