(** Figure 10 metric: cycle counts of the original and the packaged
    binary on the Table 2 EPIC timing model, and their ratio. *)

type t = {
  baseline : Vp_cpu.Pipeline.stats;
  optimized : Vp_cpu.Pipeline.stats;
  speedup : float;
}

val measure : ?config:Config.t -> Driver.rewrite -> t
