(** The baseline Vacuum Packing argues against: traditional
    {e aggregate} profile packing.

    Instead of one region per detected phase, the whole-run branch
    profile is turned into a single pseudo-snapshot and packaged once.
    The profile is exact (software instrumentation has no saturating
    counters and misses nothing), which is the aggregate approach's
    advantage — but a branch that flips bias between phases averages
    out to unbiased, so the packages cannot specialise, and the layout
    pass loses its direction information exactly on the paper's
    Multi-High branches.

    The bench harness compares coverage and speedup of aggregate
    packing against phase packing on every workload
    ([baseline-aggregate]). *)

val snapshot_of_profile :
  ?min_share:float -> Driver.profile -> Vp_hsd.Snapshot.t
(** Collapse the whole-run branch profile into one snapshot.  A branch
    qualifies when its executions are at least [min_share] (default
    0.001) of all retired conditional branches — the selection
    threshold a traditional profile-guided optimizer would apply. *)

val as_single_phase : ?min_share:float -> Driver.profile -> Driver.profile
(** The same profile with its phase log replaced by the single
    aggregate pseudo-phase, ready for {!Driver.rewrite_of_profile}. *)

val rewrite :
  ?config:Config.t -> ?min_share:float -> Driver.profile -> Driver.rewrite
(** Package the aggregate pseudo-phase under the given configuration. *)
