module Emulator = Vp_exec.Emulator

type t = {
  coverage_pct : float;
  outcome : Emulator.outcome;
  equivalent : bool;
}

let measure ?(config = Config.default) (r : Driver.rewrite) =
  let outcome =
    Emulator.run ~fuel:config.Config.fuel ~mem_words:config.Config.mem_words
      (Driver.rewritten_image r)
  in
  if not outcome.Emulator.halted then
    Logs.warn (fun m ->
        m
          "coverage run truncated: fuel (%d) exhausted after %d instructions \
           on the rewritten binary"
          config.Config.fuel outcome.Emulator.instructions);
  let original = r.Driver.source.Driver.outcome in
  {
    coverage_pct =
      Vp_util.Stats.pct outcome.Emulator.package_instructions
        outcome.Emulator.instructions;
    outcome;
    equivalent =
      outcome.Emulator.halted
      && outcome.Emulator.checksum = original.Emulator.checksum
      && outcome.Emulator.result = original.Emulator.result;
  }
