type t = {
  detector : Vp_hsd.Config.t;
  history_size : int;
  similarity : Vp_phase.Similarity.config;
  identify : Vp_region.Identify.config;
  linking : bool;
  opt : Vp_opt.Opt.config;
  cpu : Vp_cpu.Config.t;
  mem_words : int;
  fuel : int;
}

let default =
  {
    detector = Vp_hsd.Config.default;
    history_size = 0;
    similarity = Vp_phase.Similarity.default;
    identify = Vp_region.Identify.default;
    linking = true;
    opt = Vp_opt.Opt.default;
    cpu = Vp_cpu.Config.default;
    mem_words = 1 lsl 20;
    fuel = 200_000_000;
  }

let experiment ~inference ~linking =
  {
    default with
    identify = { default.identify with Vp_region.Identify.block_inference = inference };
    linking;
    (* The paper's speedup study applies relayout and rescheduling
       only; superblock formation is this repository's extension and
       is measured separately (ablation-superblock). *)
    opt = Vp_opt.Opt.paper;
  }

let experiment_name ~inference ~linking =
  Printf.sprintf "%s inference, %s linking"
    (if inference then "with" else "no")
    (if linking then "with" else "no")

let with_detector detector t = { t with detector }
