lib/core/speedup.ml: Config Driver Vp_cpu
