lib/core/report.ml: Config Coverage Driver Expansion Format List Speedup Vp_exec Vp_phase Vp_region
