lib/core/report.mli: Config Coverage Driver Expansion Format Speedup Vp_phase Vp_prog
