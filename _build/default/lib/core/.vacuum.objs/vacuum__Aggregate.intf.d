lib/core/aggregate.mli: Config Driver Vp_hsd
