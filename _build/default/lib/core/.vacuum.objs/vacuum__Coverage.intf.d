lib/core/coverage.mli: Config Driver Vp_exec
