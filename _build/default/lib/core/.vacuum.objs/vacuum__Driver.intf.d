lib/core/driver.mli: Config Hashtbl Vp_exec Vp_hsd Vp_package Vp_phase Vp_prog Vp_region
