lib/core/engine.ml: Config Coverage Driver Format Fun Hashtbl List Mutex Printf Stdlib String Unix Vp_cpu Vp_exec Vp_prog Vp_util
