lib/core/config.ml: Printf Vp_cpu Vp_hsd Vp_opt Vp_phase Vp_region
