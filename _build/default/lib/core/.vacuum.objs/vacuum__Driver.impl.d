lib/core/driver.ml: Config Hashtbl List Logs Option Printf Vp_exec Vp_hsd Vp_opt Vp_package Vp_phase Vp_prog Vp_region
