lib/core/expansion.mli: Driver
