lib/core/config.mli: Vp_cpu Vp_hsd Vp_opt Vp_phase Vp_region
