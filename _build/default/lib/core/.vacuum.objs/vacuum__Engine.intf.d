lib/core/engine.mli: Config Coverage Driver Format Vp_cpu Vp_prog
