lib/core/speedup.mli: Config Driver Vp_cpu
