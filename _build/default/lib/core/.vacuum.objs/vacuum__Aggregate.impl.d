lib/core/aggregate.ml: Config Driver Hashtbl List Vp_exec Vp_hsd Vp_phase Vp_region
