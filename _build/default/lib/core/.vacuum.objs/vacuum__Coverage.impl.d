lib/core/coverage.ml: Config Driver Vp_exec Vp_util
