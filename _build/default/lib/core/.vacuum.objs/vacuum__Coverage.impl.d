lib/core/coverage.ml: Config Driver Logs Vp_exec Vp_util
