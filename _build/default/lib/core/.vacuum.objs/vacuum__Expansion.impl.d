lib/core/expansion.ml: Driver Hashtbl List Vp_cfg Vp_package Vp_prog Vp_region Vp_util
