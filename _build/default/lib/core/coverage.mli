(** Figure 8 metric: the percentage of dynamic instructions retired
    from package code when the rewritten binary runs, plus the
    rewrite-correctness check (the packaged binary must compute
    exactly what the original computed). *)

type t = {
  coverage_pct : float;
  outcome : Vp_exec.Emulator.outcome;  (** the rewritten run *)
  equivalent : bool;  (** checksum and result match the original *)
}

val measure : ?config:Config.t -> Driver.rewrite -> t
