(** End-to-end Vacuum Packing configuration.

    The four configurations evaluated in Figures 8 and 10 are the
    cross product of hot-block inference and package linking; build
    them with {!experiment}. *)

type t = {
  detector : Vp_hsd.Config.t;
  history_size : int;  (** hardware snapshot history (0 = record all) *)
  similarity : Vp_phase.Similarity.config;
  identify : Vp_region.Identify.config;
  linking : bool;
  opt : Vp_opt.Opt.config;
  cpu : Vp_cpu.Config.t;
  mem_words : int;
  fuel : int;
}

val default : t
(** Table 2 detector, inference and linking on, layout and scheduling
    on. *)

val experiment : inference:bool -> linking:bool -> t
(** One of the four Figure 8 / Figure 10 configurations.  Uses the
    paper's optimization set (relayout + rescheduling only); the
    library default additionally enables superblock formation. *)

val experiment_name : inference:bool -> linking:bool -> string

val with_detector : Vp_hsd.Config.t -> t -> t
(** Replace the detector model (tests use the tiny configuration). *)
