(** Table 3 metrics: static code growth from packaging, the fraction
    of original static instructions selected into at least one
    package, and the resulting replication factor. *)

type t = {
  original_static : int;  (** instructions in the original image *)
  package_static : int;  (** instructions emitted as packages *)
  increase_pct : float;  (** 100 * package / original *)
  selected_static : int;
      (** distinct original instructions selected into >= 1 package *)
  selected_pct : float;
  replication : float;  (** package_static / selected_static *)
}

val measure : Driver.rewrite -> t
