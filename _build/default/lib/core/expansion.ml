module Image = Vp_prog.Image
module Cfg = Vp_cfg.Cfg
module Region = Vp_region.Region

type t = {
  original_static : int;
  package_static : int;
  increase_pct : float;
  selected_static : int;
  selected_pct : float;
  replication : float;
}

(* Distinct original instruction addresses inside a hot block of any
   region — "selected to be a part of at least one package". *)
let selected_addresses regions =
  let selected = Hashtbl.create 1024 in
  List.iter
    (fun (info : Driver.region_info) ->
      List.iter
        (fun (_, mf) ->
          let cfg = Region.cfg mf in
          List.iter
            (fun b ->
              for addr = Cfg.start cfg b to Cfg.start cfg b + Cfg.len cfg b - 1 do
                Hashtbl.replace selected addr ()
              done)
            (Region.hot_blocks mf))
        (Region.funcs info.Driver.region))
    regions;
  Hashtbl.length selected

let measure (r : Driver.rewrite) =
  let original_static = Image.size r.Driver.source.Driver.image in
  let package_static = r.Driver.emitted.Vp_package.Emit.package_instructions in
  let selected_static = selected_addresses r.Driver.regions in
  {
    original_static;
    package_static;
    increase_pct = Vp_util.Stats.pct package_static original_static;
    selected_static;
    selected_pct = Vp_util.Stats.pct selected_static original_static;
    replication =
      (if selected_static = 0 then 0.0
       else float_of_int package_static /. float_of_int selected_static);
  }
