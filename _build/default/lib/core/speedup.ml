module Pipeline = Vp_cpu.Pipeline

type t = {
  baseline : Pipeline.stats;
  optimized : Pipeline.stats;
  speedup : float;
}

let measure ?(config = Config.default) (r : Driver.rewrite) =
  let time image =
    Pipeline.simulate ~config:config.Config.cpu ~fuel:config.Config.fuel
      ~mem_words:config.Config.mem_words image
  in
  let baseline = time r.Driver.source.Driver.image in
  let optimized = time (Driver.rewritten_image r) in
  { baseline; optimized; speedup = Pipeline.speedup ~baseline ~optimized }
