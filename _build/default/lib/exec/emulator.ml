module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Reg = Vp_isa.Reg
module Image = Vp_prog.Image

type event = {
  pc : int;
  instr : Instr.t;
  taken : bool;
  next_pc : int;
  mem_addr : int option;
}

type outcome = {
  instructions : int;
  package_instructions : int;
  cond_branches : int;
  halted : bool;
  checksum : int;
  result : int;
  final_pc : int;
}

let target_addr = function
  | Instr.Addr a -> a
  | Instr.Label l -> invalid_arg (Printf.sprintf "Emulator: unresolved label %s" l)

let operand_value st = function
  | Instr.Reg r -> State.reg st r
  | Instr.Imm n -> n

let run ?(fuel = 200_000_000) ?(mem_words = 1 lsl 20) ?on_branch ?on_event image =
  let st = State.create ~mem_words image in
  let instructions = ref 0 in
  let package_instructions = ref 0 in
  let cond_branches = ref 0 in
  let halted = ref false in
  let orig_limit = image.Image.orig_limit in
  let code = image.Image.code in
  let size = Array.length code in
  while (not !halted) && !instructions < fuel do
    let pc = State.pc st in
    if pc < 0 || pc >= size then
      invalid_arg (Printf.sprintf "Emulator: pc 0x%x outside image" pc);
    let instr = code.(pc) in
    incr instructions;
    if pc >= orig_limit then incr package_instructions;
    let taken = ref false in
    let mem_addr = ref None in
    let next = ref (pc + 1) in
    (match instr with
    | Instr.Alu { op; dst; src1; src2 } ->
      State.set_reg st dst (Op.eval_alu op (State.reg st src1) (operand_value st src2))
    | Instr.Li { dst; imm } -> State.set_reg st dst imm
    | Instr.La { dst; target } -> State.set_reg st dst (target_addr target)
    | Instr.Load { dst; base; offset } ->
      let addr = State.reg st base + offset in
      mem_addr := Some addr;
      State.set_reg st dst (State.mem st addr)
    | Instr.Store { src; base; offset } ->
      let addr = State.reg st base + offset in
      mem_addr := Some addr;
      let v = State.reg st src in
      State.set_mem st addr v;
      (* ra spills hold code addresses; keep them out of the digest so
         original and rewritten binaries stay comparable. *)
      if not (Reg.equal src Reg.ra) then State.bump_store_digest st addr v
    | Instr.Br { cond; src1; src2; target } ->
      incr cond_branches;
      let t = Op.eval_cond cond (State.reg st src1) (State.reg st src2) in
      taken := t;
      if t then next := target_addr target;
      (match on_branch with Some f -> f ~pc ~taken:t | None -> ())
    | Instr.Jmp { target } ->
      taken := true;
      next := target_addr target
    | Instr.Call { target } ->
      taken := true;
      State.set_reg st Reg.ra (pc + 1);
      next := target_addr target
    | Instr.Ret ->
      taken := true;
      let ra = State.reg st Reg.ra in
      if ra = State.halt_address then begin
        halted := true;
        next := State.halt_address
      end
      else next := ra
    | Instr.Nop -> ()
    | Instr.Halt ->
      halted := true;
      next := State.halt_address);
    (match on_event with
    | Some f ->
      f { pc; instr; taken = !taken; next_pc = !next; mem_addr = !mem_addr }
    | None -> ());
    if not !halted then State.set_pc st !next
  done;
  {
    instructions = !instructions;
    package_instructions = !package_instructions;
    cond_branches = !cond_branches;
    halted = !halted;
    checksum = State.checksum st;
    result = State.reg st Reg.ret_value;
    final_pc = State.pc st;
  }

let aggregate_branch_profile ?fuel ?mem_words image =
  let table = Hashtbl.create 256 in
  let on_branch ~pc ~taken =
    let executed, takens =
      Option.value ~default:(0, 0) (Hashtbl.find_opt table pc)
    in
    Hashtbl.replace table pc (executed + 1, if taken then takens + 1 else takens)
  in
  let (_ : outcome) = run ?fuel ?mem_words ~on_branch image in
  table
