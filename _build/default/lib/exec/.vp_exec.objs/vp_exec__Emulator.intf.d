lib/exec/emulator.mli: Hashtbl Vp_isa Vp_prog
