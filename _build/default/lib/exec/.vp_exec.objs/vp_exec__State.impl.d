lib/exec/state.ml: Array List Printf Vp_isa Vp_prog
