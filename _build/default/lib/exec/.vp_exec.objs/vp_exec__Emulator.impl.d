lib/exec/emulator.ml: Array Hashtbl Option Printf State Vp_isa Vp_prog
