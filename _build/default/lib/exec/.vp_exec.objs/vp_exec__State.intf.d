lib/exec/state.mli: Vp_isa Vp_prog
