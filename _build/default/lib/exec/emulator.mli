(** Functional (architectural) emulation of a binary image.

    The emulator retires one instruction at a time and exposes two
    observation channels:

    - [on_branch] fires at every conditional-branch retirement with
      the branch's static address and its outcome — exactly the event
      stream the Hot Spot Detector consumes;
    - [on_event] fires at every retirement with full detail (used by
      the trace-driven timing model).

    Both are optional and the fast path allocates nothing when
    [on_event] is absent. *)

type event = {
  pc : int;
  instr : Vp_isa.Instr.t;
  taken : bool;  (** meaningful for conditional branches; true for jumps *)
  next_pc : int;  (** {!State.halt_address} when the machine stops *)
  mem_addr : int option;  (** effective address of a load/store *)
}

type outcome = {
  instructions : int;  (** dynamic instructions retired *)
  package_instructions : int;  (** retired from appended package code *)
  cond_branches : int;
  halted : bool;  (** false when fuel ran out *)
  checksum : int;
  result : int;  (** value of [Reg.ret_value] when the machine stopped *)
  final_pc : int;
}

val run :
  ?fuel:int ->
  ?mem_words:int ->
  ?on_branch:(pc:int -> taken:bool -> unit) ->
  ?on_event:(event -> unit) ->
  Vp_prog.Image.t ->
  outcome
(** Execute from the image entry until [Halt], a return to
    {!State.halt_address}, or fuel exhaustion (default fuel 200M).
    Raises {!State.Fault} on out-of-range memory access and
    [Invalid_argument] on a jump outside the image. *)

val aggregate_branch_profile :
  ?fuel:int -> ?mem_words:int -> Vp_prog.Image.t -> (int, int * int) Hashtbl.t
(** Whole-run (executed, taken) counts per static conditional branch —
    the traditional aggregate profile the paper contrasts against. *)
