module Reg = Vp_isa.Reg
module Image = Vp_prog.Image

exception Fault of string

type t = {
  regs : int array;
  memory : int array;
  stack_floor : int;
  mutable program_counter : int;
  mutable digest : int;
}

let halt_address = -1

(* Addresses at or above the floor are stack: private scratch whose
   stores (spills, frame locals) are not part of observable behaviour. *)
let stack_floor_of mem_words = mem_words - min (mem_words / 4) (1 lsl 16)

let create ~mem_words image =
  let regs = Array.make Reg.count 0 in
  regs.(Reg.to_int Reg.sp) <- mem_words;
  regs.(Reg.to_int Reg.ra) <- halt_address;
  let memory = Array.make mem_words 0 in
  List.iter
    (fun (addr, v) ->
      if addr < 0 || addr >= mem_words then
        raise (Fault (Printf.sprintf "data initialiser at %d out of range" addr));
      memory.(addr) <- v)
    image.Image.data_init;
  {
    regs;
    memory;
    stack_floor = stack_floor_of mem_words;
    program_counter = image.Image.entry;
    digest = 0;
  }

let pc t = t.program_counter
let set_pc t v = t.program_counter <- v

let reg t r =
  let i = Reg.to_int r in
  if i = 0 then 0 else t.regs.(i)

let set_reg t r v =
  let i = Reg.to_int r in
  if i <> 0 then t.regs.(i) <- v

let mem t addr =
  if addr < 0 || addr >= Array.length t.memory then
    raise (Fault (Printf.sprintf "load from %d out of range (pc=0x%x)" addr t.program_counter))
  else t.memory.(addr)

let set_mem t addr v =
  if addr < 0 || addr >= Array.length t.memory then
    raise (Fault (Printf.sprintf "store to %d out of range (pc=0x%x)" addr t.program_counter))
  else t.memory.(addr) <- v

let mem_words t = Array.length t.memory

let mix h v = (h * 31) + v

let store_digest t = t.digest

let bump_store_digest t addr v =
  if addr < t.stack_floor then t.digest <- mix (mix t.digest addr) v

(* The checksum compares semantic outcomes: the full store stream plus
   the result register.  Dead register values at halt are excluded —
   they legitimately differ once an optimizer sinks or deletes
   computations whose results the program never consumes (and the
   return-address register holds code addresses, which differ between
   an original binary and its packaged rewrite by construction). *)
let checksum t = mix t.digest t.regs.(Reg.to_int Reg.ret_value)
