(** Whole programs, pre-layout, and the layout pass that links them
    into an {!Image}. *)

type t = {
  funcs : Func.t list;
  entry : string;  (** entry function name *)
  data_init : (int * int) list;  (** initial memory contents *)
  data_break : int;  (** first data address unused by globals *)
}

val v :
  ?data_init:(int * int) list -> ?data_break:int -> entry:string -> Func.t list -> t
(** Raises [Invalid_argument] on duplicate function names, duplicate
    labels across functions, or a missing entry function. *)

val find_func : t -> string -> Func.t option

val static_size : t -> int
(** Total instruction count. *)

val layout : t -> Image.t
(** Place functions in list order, blocks in function order, resolve
    every label to an absolute address.  Function-name labels resolve
    to entry addresses, so calls may target function names directly.
    Raises [Invalid_argument] on an undefined label. *)

val pp : Format.formatter -> t -> unit
