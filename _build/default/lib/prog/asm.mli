(** Textual assembly for the simulated ISA.

    The printer emits exactly the disassembly syntax of
    {!Vp_isa.Instr.pp}; the parser accepts it back, so
    [parse (print p)] reproduces [p] structurally.  Example source:

    {v
.func sum
sum$entry:
  li t0, #0
  li t1, #0
sum$loop:
  bge t1, a0, sum$done
  add t0, t0, t1
  add t1, t1, #1
  jmp sum$loop
sum$done:
  add a0, t0, #0
  ret
.func main
main$entry:
  li a0, #10
  call sum
  halt
.entry main
    v}

    Blocks hold at most one control instruction, always last; the
    parser splits automatically after a control instruction, deriving
    a fresh continuation label, so hand-written code need not label
    every fall-through block.

    Directives: [.func NAME] starts a function (its first label opens
    the entry block); [.entry NAME] selects the entry function;
    [.data BREAK] sets the first free data address; [.init ADDR VALUE]
    adds a memory initialiser.  [#] introduces immediates; [;] starts
    a comment running to end of line.  Control targets may be label
    names or absolute [0x..] addresses. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_program : string -> (Program.t, error) result

val print_program : Program.t -> string

val parse_instr : string -> (Vp_isa.Instr.t, string) result
(** One instruction, exposed for tests and tooling. *)
